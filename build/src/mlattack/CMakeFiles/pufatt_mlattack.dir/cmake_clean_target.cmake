file(REMOVE_RECURSE
  "libpufatt_mlattack.a"
)
