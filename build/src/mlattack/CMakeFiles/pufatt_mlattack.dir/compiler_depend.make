# Empty compiler generated dependencies file for pufatt_mlattack.
# This may be replaced when dependencies are built.
