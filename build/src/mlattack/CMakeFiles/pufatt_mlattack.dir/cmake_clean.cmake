file(REMOVE_RECURSE
  "CMakeFiles/pufatt_mlattack.dir/attack.cpp.o"
  "CMakeFiles/pufatt_mlattack.dir/attack.cpp.o.d"
  "CMakeFiles/pufatt_mlattack.dir/dataset.cpp.o"
  "CMakeFiles/pufatt_mlattack.dir/dataset.cpp.o.d"
  "CMakeFiles/pufatt_mlattack.dir/logreg.cpp.o"
  "CMakeFiles/pufatt_mlattack.dir/logreg.cpp.o.d"
  "libpufatt_mlattack.a"
  "libpufatt_mlattack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pufatt_mlattack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
