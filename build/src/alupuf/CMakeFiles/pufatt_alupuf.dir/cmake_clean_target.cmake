file(REMOVE_RECURSE
  "libpufatt_alupuf.a"
)
