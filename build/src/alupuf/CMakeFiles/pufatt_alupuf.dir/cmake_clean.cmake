file(REMOVE_RECURSE
  "CMakeFiles/pufatt_alupuf.dir/aging_tuner.cpp.o"
  "CMakeFiles/pufatt_alupuf.dir/aging_tuner.cpp.o.d"
  "CMakeFiles/pufatt_alupuf.dir/alu_puf.cpp.o"
  "CMakeFiles/pufatt_alupuf.dir/alu_puf.cpp.o.d"
  "CMakeFiles/pufatt_alupuf.dir/arbiter_puf.cpp.o"
  "CMakeFiles/pufatt_alupuf.dir/arbiter_puf.cpp.o.d"
  "CMakeFiles/pufatt_alupuf.dir/obfuscation.cpp.o"
  "CMakeFiles/pufatt_alupuf.dir/obfuscation.cpp.o.d"
  "CMakeFiles/pufatt_alupuf.dir/pipeline.cpp.o"
  "CMakeFiles/pufatt_alupuf.dir/pipeline.cpp.o.d"
  "libpufatt_alupuf.a"
  "libpufatt_alupuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pufatt_alupuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
