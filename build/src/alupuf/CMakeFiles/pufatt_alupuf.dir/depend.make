# Empty dependencies file for pufatt_alupuf.
# This may be replaced when dependencies are built.
