file(REMOVE_RECURSE
  "CMakeFiles/pufatt_support.dir/bitvec.cpp.o"
  "CMakeFiles/pufatt_support.dir/bitvec.cpp.o.d"
  "CMakeFiles/pufatt_support.dir/rng.cpp.o"
  "CMakeFiles/pufatt_support.dir/rng.cpp.o.d"
  "CMakeFiles/pufatt_support.dir/stats.cpp.o"
  "CMakeFiles/pufatt_support.dir/stats.cpp.o.d"
  "CMakeFiles/pufatt_support.dir/table.cpp.o"
  "CMakeFiles/pufatt_support.dir/table.cpp.o.d"
  "libpufatt_support.a"
  "libpufatt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pufatt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
