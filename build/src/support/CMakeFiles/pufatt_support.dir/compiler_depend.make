# Empty compiler generated dependencies file for pufatt_support.
# This may be replaced when dependencies are built.
