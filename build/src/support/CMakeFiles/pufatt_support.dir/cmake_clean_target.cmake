file(REMOVE_RECURSE
  "libpufatt_support.a"
)
