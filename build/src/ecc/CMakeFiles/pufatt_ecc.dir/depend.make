# Empty dependencies file for pufatt_ecc.
# This may be replaced when dependencies are built.
