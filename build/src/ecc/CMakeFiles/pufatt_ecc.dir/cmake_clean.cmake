file(REMOVE_RECURSE
  "CMakeFiles/pufatt_ecc.dir/bch.cpp.o"
  "CMakeFiles/pufatt_ecc.dir/bch.cpp.o.d"
  "CMakeFiles/pufatt_ecc.dir/gf2_matrix.cpp.o"
  "CMakeFiles/pufatt_ecc.dir/gf2_matrix.cpp.o.d"
  "CMakeFiles/pufatt_ecc.dir/gf2m.cpp.o"
  "CMakeFiles/pufatt_ecc.dir/gf2m.cpp.o.d"
  "CMakeFiles/pufatt_ecc.dir/helper_data.cpp.o"
  "CMakeFiles/pufatt_ecc.dir/helper_data.cpp.o.d"
  "CMakeFiles/pufatt_ecc.dir/linear_code.cpp.o"
  "CMakeFiles/pufatt_ecc.dir/linear_code.cpp.o.d"
  "CMakeFiles/pufatt_ecc.dir/reed_muller.cpp.o"
  "CMakeFiles/pufatt_ecc.dir/reed_muller.cpp.o.d"
  "libpufatt_ecc.a"
  "libpufatt_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pufatt_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
