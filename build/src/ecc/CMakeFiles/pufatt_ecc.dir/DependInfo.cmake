
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/bch.cpp" "src/ecc/CMakeFiles/pufatt_ecc.dir/bch.cpp.o" "gcc" "src/ecc/CMakeFiles/pufatt_ecc.dir/bch.cpp.o.d"
  "/root/repo/src/ecc/gf2_matrix.cpp" "src/ecc/CMakeFiles/pufatt_ecc.dir/gf2_matrix.cpp.o" "gcc" "src/ecc/CMakeFiles/pufatt_ecc.dir/gf2_matrix.cpp.o.d"
  "/root/repo/src/ecc/gf2m.cpp" "src/ecc/CMakeFiles/pufatt_ecc.dir/gf2m.cpp.o" "gcc" "src/ecc/CMakeFiles/pufatt_ecc.dir/gf2m.cpp.o.d"
  "/root/repo/src/ecc/helper_data.cpp" "src/ecc/CMakeFiles/pufatt_ecc.dir/helper_data.cpp.o" "gcc" "src/ecc/CMakeFiles/pufatt_ecc.dir/helper_data.cpp.o.d"
  "/root/repo/src/ecc/linear_code.cpp" "src/ecc/CMakeFiles/pufatt_ecc.dir/linear_code.cpp.o" "gcc" "src/ecc/CMakeFiles/pufatt_ecc.dir/linear_code.cpp.o.d"
  "/root/repo/src/ecc/reed_muller.cpp" "src/ecc/CMakeFiles/pufatt_ecc.dir/reed_muller.cpp.o" "gcc" "src/ecc/CMakeFiles/pufatt_ecc.dir/reed_muller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pufatt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
