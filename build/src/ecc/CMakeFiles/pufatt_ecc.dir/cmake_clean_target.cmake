file(REMOVE_RECURSE
  "libpufatt_ecc.a"
)
