file(REMOVE_RECURSE
  "libpufatt_cpu.a"
)
