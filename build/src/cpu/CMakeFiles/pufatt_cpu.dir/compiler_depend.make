# Empty compiler generated dependencies file for pufatt_cpu.
# This may be replaced when dependencies are built.
