file(REMOVE_RECURSE
  "CMakeFiles/pufatt_cpu.dir/assembler.cpp.o"
  "CMakeFiles/pufatt_cpu.dir/assembler.cpp.o.d"
  "CMakeFiles/pufatt_cpu.dir/disassembler.cpp.o"
  "CMakeFiles/pufatt_cpu.dir/disassembler.cpp.o.d"
  "CMakeFiles/pufatt_cpu.dir/isa.cpp.o"
  "CMakeFiles/pufatt_cpu.dir/isa.cpp.o.d"
  "CMakeFiles/pufatt_cpu.dir/machine.cpp.o"
  "CMakeFiles/pufatt_cpu.dir/machine.cpp.o.d"
  "libpufatt_cpu.a"
  "libpufatt_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pufatt_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
