
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/assembler.cpp" "src/cpu/CMakeFiles/pufatt_cpu.dir/assembler.cpp.o" "gcc" "src/cpu/CMakeFiles/pufatt_cpu.dir/assembler.cpp.o.d"
  "/root/repo/src/cpu/disassembler.cpp" "src/cpu/CMakeFiles/pufatt_cpu.dir/disassembler.cpp.o" "gcc" "src/cpu/CMakeFiles/pufatt_cpu.dir/disassembler.cpp.o.d"
  "/root/repo/src/cpu/isa.cpp" "src/cpu/CMakeFiles/pufatt_cpu.dir/isa.cpp.o" "gcc" "src/cpu/CMakeFiles/pufatt_cpu.dir/isa.cpp.o.d"
  "/root/repo/src/cpu/machine.cpp" "src/cpu/CMakeFiles/pufatt_cpu.dir/machine.cpp.o" "gcc" "src/cpu/CMakeFiles/pufatt_cpu.dir/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pufatt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
