# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("netlist")
subdirs("variation")
subdirs("timingsim")
subdirs("ecc")
subdirs("alupuf")
subdirs("cpu")
subdirs("swat")
subdirs("core")
subdirs("mlattack")
subdirs("fpga")
