# Empty dependencies file for pufatt_netlist.
# This may be replaced when dependencies are built.
