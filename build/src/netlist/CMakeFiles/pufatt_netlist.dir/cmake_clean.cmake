file(REMOVE_RECURSE
  "CMakeFiles/pufatt_netlist.dir/builder.cpp.o"
  "CMakeFiles/pufatt_netlist.dir/builder.cpp.o.d"
  "CMakeFiles/pufatt_netlist.dir/netlist.cpp.o"
  "CMakeFiles/pufatt_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/pufatt_netlist.dir/techmap.cpp.o"
  "CMakeFiles/pufatt_netlist.dir/techmap.cpp.o.d"
  "libpufatt_netlist.a"
  "libpufatt_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pufatt_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
