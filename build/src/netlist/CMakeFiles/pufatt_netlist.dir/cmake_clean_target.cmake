file(REMOVE_RECURSE
  "libpufatt_netlist.a"
)
