# Empty dependencies file for pufatt_variation.
# This may be replaced when dependencies are built.
