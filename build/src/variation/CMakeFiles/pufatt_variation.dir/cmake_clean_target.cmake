file(REMOVE_RECURSE
  "libpufatt_variation.a"
)
