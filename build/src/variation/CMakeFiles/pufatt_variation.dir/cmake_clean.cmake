file(REMOVE_RECURSE
  "CMakeFiles/pufatt_variation.dir/aging.cpp.o"
  "CMakeFiles/pufatt_variation.dir/aging.cpp.o.d"
  "CMakeFiles/pufatt_variation.dir/chip.cpp.o"
  "CMakeFiles/pufatt_variation.dir/chip.cpp.o.d"
  "CMakeFiles/pufatt_variation.dir/delay_model.cpp.o"
  "CMakeFiles/pufatt_variation.dir/delay_model.cpp.o.d"
  "CMakeFiles/pufatt_variation.dir/quadtree.cpp.o"
  "CMakeFiles/pufatt_variation.dir/quadtree.cpp.o.d"
  "libpufatt_variation.a"
  "libpufatt_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pufatt_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
