# Empty compiler generated dependencies file for pufatt_swat.
# This may be replaced when dependencies are built.
