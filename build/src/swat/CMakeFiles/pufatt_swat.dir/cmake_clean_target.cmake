file(REMOVE_RECURSE
  "libpufatt_swat.a"
)
