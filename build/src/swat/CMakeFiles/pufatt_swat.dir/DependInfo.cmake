
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/swat/checksum.cpp" "src/swat/CMakeFiles/pufatt_swat.dir/checksum.cpp.o" "gcc" "src/swat/CMakeFiles/pufatt_swat.dir/checksum.cpp.o.d"
  "/root/repo/src/swat/program.cpp" "src/swat/CMakeFiles/pufatt_swat.dir/program.cpp.o" "gcc" "src/swat/CMakeFiles/pufatt_swat.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/pufatt_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pufatt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
