file(REMOVE_RECURSE
  "CMakeFiles/pufatt_swat.dir/checksum.cpp.o"
  "CMakeFiles/pufatt_swat.dir/checksum.cpp.o.d"
  "CMakeFiles/pufatt_swat.dir/program.cpp.o"
  "CMakeFiles/pufatt_swat.dir/program.cpp.o.d"
  "libpufatt_swat.a"
  "libpufatt_swat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pufatt_swat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
