file(REMOVE_RECURSE
  "libpufatt_core.a"
)
