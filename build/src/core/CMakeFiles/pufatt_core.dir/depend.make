# Empty dependencies file for pufatt_core.
# This may be replaced when dependencies are built.
