
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/channel.cpp" "src/core/CMakeFiles/pufatt_core.dir/channel.cpp.o" "gcc" "src/core/CMakeFiles/pufatt_core.dir/channel.cpp.o.d"
  "/root/repo/src/core/crp_database.cpp" "src/core/CMakeFiles/pufatt_core.dir/crp_database.cpp.o" "gcc" "src/core/CMakeFiles/pufatt_core.dir/crp_database.cpp.o.d"
  "/root/repo/src/core/distributed.cpp" "src/core/CMakeFiles/pufatt_core.dir/distributed.cpp.o" "gcc" "src/core/CMakeFiles/pufatt_core.dir/distributed.cpp.o.d"
  "/root/repo/src/core/enrollment.cpp" "src/core/CMakeFiles/pufatt_core.dir/enrollment.cpp.o" "gcc" "src/core/CMakeFiles/pufatt_core.dir/enrollment.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/pufatt_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/pufatt_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/puf_adapter.cpp" "src/core/CMakeFiles/pufatt_core.dir/puf_adapter.cpp.o" "gcc" "src/core/CMakeFiles/pufatt_core.dir/puf_adapter.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/pufatt_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/pufatt_core.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/alupuf/CMakeFiles/pufatt_alupuf.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/pufatt_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/swat/CMakeFiles/pufatt_swat.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/pufatt_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pufatt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/pufatt_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/timingsim/CMakeFiles/pufatt_timingsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/pufatt_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
