file(REMOVE_RECURSE
  "CMakeFiles/pufatt_core.dir/channel.cpp.o"
  "CMakeFiles/pufatt_core.dir/channel.cpp.o.d"
  "CMakeFiles/pufatt_core.dir/crp_database.cpp.o"
  "CMakeFiles/pufatt_core.dir/crp_database.cpp.o.d"
  "CMakeFiles/pufatt_core.dir/distributed.cpp.o"
  "CMakeFiles/pufatt_core.dir/distributed.cpp.o.d"
  "CMakeFiles/pufatt_core.dir/enrollment.cpp.o"
  "CMakeFiles/pufatt_core.dir/enrollment.cpp.o.d"
  "CMakeFiles/pufatt_core.dir/protocol.cpp.o"
  "CMakeFiles/pufatt_core.dir/protocol.cpp.o.d"
  "CMakeFiles/pufatt_core.dir/puf_adapter.cpp.o"
  "CMakeFiles/pufatt_core.dir/puf_adapter.cpp.o.d"
  "CMakeFiles/pufatt_core.dir/serialize.cpp.o"
  "CMakeFiles/pufatt_core.dir/serialize.cpp.o.d"
  "libpufatt_core.a"
  "libpufatt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pufatt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
