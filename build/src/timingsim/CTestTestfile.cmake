# CMake generated Testfile for 
# Source directory: /root/repo/src/timingsim
# Build directory: /root/repo/build/src/timingsim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
