
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timingsim/arbiter.cpp" "src/timingsim/CMakeFiles/pufatt_timingsim.dir/arbiter.cpp.o" "gcc" "src/timingsim/CMakeFiles/pufatt_timingsim.dir/arbiter.cpp.o.d"
  "/root/repo/src/timingsim/event_sim.cpp" "src/timingsim/CMakeFiles/pufatt_timingsim.dir/event_sim.cpp.o" "gcc" "src/timingsim/CMakeFiles/pufatt_timingsim.dir/event_sim.cpp.o.d"
  "/root/repo/src/timingsim/timing_sim.cpp" "src/timingsim/CMakeFiles/pufatt_timingsim.dir/timing_sim.cpp.o" "gcc" "src/timingsim/CMakeFiles/pufatt_timingsim.dir/timing_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/pufatt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pufatt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
