file(REMOVE_RECURSE
  "libpufatt_timingsim.a"
)
