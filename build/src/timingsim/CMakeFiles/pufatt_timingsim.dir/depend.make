# Empty dependencies file for pufatt_timingsim.
# This may be replaced when dependencies are built.
