file(REMOVE_RECURSE
  "CMakeFiles/pufatt_timingsim.dir/arbiter.cpp.o"
  "CMakeFiles/pufatt_timingsim.dir/arbiter.cpp.o.d"
  "CMakeFiles/pufatt_timingsim.dir/event_sim.cpp.o"
  "CMakeFiles/pufatt_timingsim.dir/event_sim.cpp.o.d"
  "CMakeFiles/pufatt_timingsim.dir/timing_sim.cpp.o"
  "CMakeFiles/pufatt_timingsim.dir/timing_sim.cpp.o.d"
  "libpufatt_timingsim.a"
  "libpufatt_timingsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pufatt_timingsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
