# Empty dependencies file for pufatt_fpga.
# This may be replaced when dependencies are built.
