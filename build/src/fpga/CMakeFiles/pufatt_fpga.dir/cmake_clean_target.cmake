file(REMOVE_RECURSE
  "libpufatt_fpga.a"
)
