file(REMOVE_RECURSE
  "CMakeFiles/pufatt_fpga.dir/board.cpp.o"
  "CMakeFiles/pufatt_fpga.dir/board.cpp.o.d"
  "CMakeFiles/pufatt_fpga.dir/pdl.cpp.o"
  "CMakeFiles/pufatt_fpga.dir/pdl.cpp.o.d"
  "CMakeFiles/pufatt_fpga.dir/resources.cpp.o"
  "CMakeFiles/pufatt_fpga.dir/resources.cpp.o.d"
  "libpufatt_fpga.a"
  "libpufatt_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pufatt_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
