# Empty compiler generated dependencies file for fnr_error_correction.
# This may be replaced when dependencies are built.
