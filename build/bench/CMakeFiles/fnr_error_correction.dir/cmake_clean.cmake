file(REMOVE_RECURSE
  "CMakeFiles/fnr_error_correction.dir/fnr_error_correction.cpp.o"
  "CMakeFiles/fnr_error_correction.dir/fnr_error_correction.cpp.o.d"
  "fnr_error_correction"
  "fnr_error_correction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnr_error_correction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
