# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fnr_error_correction.
