file(REMOVE_RECURSE
  "CMakeFiles/overclocking.dir/overclocking.cpp.o"
  "CMakeFiles/overclocking.dir/overclocking.cpp.o.d"
  "overclocking"
  "overclocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overclocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
