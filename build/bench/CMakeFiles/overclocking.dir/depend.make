# Empty dependencies file for overclocking.
# This may be replaced when dependencies are built.
