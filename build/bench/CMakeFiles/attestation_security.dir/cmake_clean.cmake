file(REMOVE_RECURSE
  "CMakeFiles/attestation_security.dir/attestation_security.cpp.o"
  "CMakeFiles/attestation_security.dir/attestation_security.cpp.o.d"
  "attestation_security"
  "attestation_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attestation_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
