# Empty dependencies file for attestation_security.
# This may be replaced when dependencies are built.
