# Empty compiler generated dependencies file for fig4_intrachip_hd.
# This may be replaced when dependencies are built.
