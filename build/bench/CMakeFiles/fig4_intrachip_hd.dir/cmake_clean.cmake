file(REMOVE_RECURSE
  "CMakeFiles/fig4_intrachip_hd.dir/fig4_intrachip_hd.cpp.o"
  "CMakeFiles/fig4_intrachip_hd.dir/fig4_intrachip_hd.cpp.o.d"
  "fig4_intrachip_hd"
  "fig4_intrachip_hd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_intrachip_hd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
