file(REMOVE_RECURSE
  "CMakeFiles/fpga_measurements.dir/fpga_measurements.cpp.o"
  "CMakeFiles/fpga_measurements.dir/fpga_measurements.cpp.o.d"
  "fpga_measurements"
  "fpga_measurements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_measurements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
