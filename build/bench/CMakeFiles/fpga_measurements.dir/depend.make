# Empty dependencies file for fpga_measurements.
# This may be replaced when dependencies are built.
