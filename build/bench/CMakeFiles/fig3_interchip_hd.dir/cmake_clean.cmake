file(REMOVE_RECURSE
  "CMakeFiles/fig3_interchip_hd.dir/fig3_interchip_hd.cpp.o"
  "CMakeFiles/fig3_interchip_hd.dir/fig3_interchip_hd.cpp.o.d"
  "fig3_interchip_hd"
  "fig3_interchip_hd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_interchip_hd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
