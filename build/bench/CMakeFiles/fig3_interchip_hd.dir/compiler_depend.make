# Empty compiler generated dependencies file for fig3_interchip_hd.
# This may be replaced when dependencies are built.
