# Empty compiler generated dependencies file for table1_resources.
# This may be replaced when dependencies are built.
