file(REMOVE_RECURSE
  "CMakeFiles/table1_resources.dir/table1_resources.cpp.o"
  "CMakeFiles/table1_resources.dir/table1_resources.cpp.o.d"
  "table1_resources"
  "table1_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
