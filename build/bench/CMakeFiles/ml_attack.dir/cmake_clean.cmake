file(REMOVE_RECURSE
  "CMakeFiles/ml_attack.dir/ml_attack.cpp.o"
  "CMakeFiles/ml_attack.dir/ml_attack.cpp.o.d"
  "ml_attack"
  "ml_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
