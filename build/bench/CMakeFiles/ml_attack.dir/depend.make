# Empty dependencies file for ml_attack.
# This may be replaced when dependencies are built.
