# Empty compiler generated dependencies file for aging_tuning.
# This may be replaced when dependencies are built.
