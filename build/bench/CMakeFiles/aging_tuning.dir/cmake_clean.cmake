file(REMOVE_RECURSE
  "CMakeFiles/aging_tuning.dir/aging_tuning.cpp.o"
  "CMakeFiles/aging_tuning.dir/aging_tuning.cpp.o.d"
  "aging_tuning"
  "aging_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aging_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
