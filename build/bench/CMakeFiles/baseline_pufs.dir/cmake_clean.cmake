file(REMOVE_RECURSE
  "CMakeFiles/baseline_pufs.dir/baseline_pufs.cpp.o"
  "CMakeFiles/baseline_pufs.dir/baseline_pufs.cpp.o.d"
  "baseline_pufs"
  "baseline_pufs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_pufs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
