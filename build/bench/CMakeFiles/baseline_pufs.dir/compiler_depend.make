# Empty compiler generated dependencies file for baseline_pufs.
# This may be replaced when dependencies are built.
