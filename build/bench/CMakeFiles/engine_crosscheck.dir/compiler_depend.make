# Empty compiler generated dependencies file for engine_crosscheck.
# This may be replaced when dependencies are built.
