file(REMOVE_RECURSE
  "CMakeFiles/engine_crosscheck.dir/engine_crosscheck.cpp.o"
  "CMakeFiles/engine_crosscheck.dir/engine_crosscheck.cpp.o.d"
  "engine_crosscheck"
  "engine_crosscheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
