# Empty compiler generated dependencies file for protocol_edge_test.
# This may be replaced when dependencies are built.
