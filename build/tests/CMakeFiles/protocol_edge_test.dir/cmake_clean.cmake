file(REMOVE_RECURSE
  "CMakeFiles/protocol_edge_test.dir/protocol_edge_test.cpp.o"
  "CMakeFiles/protocol_edge_test.dir/protocol_edge_test.cpp.o.d"
  "protocol_edge_test"
  "protocol_edge_test.pdb"
  "protocol_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
