file(REMOVE_RECURSE
  "CMakeFiles/mlattack_test.dir/mlattack_test.cpp.o"
  "CMakeFiles/mlattack_test.dir/mlattack_test.cpp.o.d"
  "mlattack_test"
  "mlattack_test.pdb"
  "mlattack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlattack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
