# Empty compiler generated dependencies file for mlattack_test.
# This may be replaced when dependencies are built.
