file(REMOVE_RECURSE
  "CMakeFiles/timingsim_test.dir/timingsim_test.cpp.o"
  "CMakeFiles/timingsim_test.dir/timingsim_test.cpp.o.d"
  "timingsim_test"
  "timingsim_test.pdb"
  "timingsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timingsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
