# Empty dependencies file for timingsim_test.
# This may be replaced when dependencies are built.
