file(REMOVE_RECURSE
  "CMakeFiles/event_sim_test.dir/event_sim_test.cpp.o"
  "CMakeFiles/event_sim_test.dir/event_sim_test.cpp.o.d"
  "event_sim_test"
  "event_sim_test.pdb"
  "event_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
