# Empty dependencies file for full_alu_test.
# This may be replaced when dependencies are built.
