file(REMOVE_RECURSE
  "CMakeFiles/full_alu_test.dir/full_alu_test.cpp.o"
  "CMakeFiles/full_alu_test.dir/full_alu_test.cpp.o.d"
  "full_alu_test"
  "full_alu_test.pdb"
  "full_alu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_alu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
