file(REMOVE_RECURSE
  "CMakeFiles/fpga_test.dir/fpga_test.cpp.o"
  "CMakeFiles/fpga_test.dir/fpga_test.cpp.o.d"
  "fpga_test"
  "fpga_test.pdb"
  "fpga_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
