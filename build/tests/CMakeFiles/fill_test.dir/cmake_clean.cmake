file(REMOVE_RECURSE
  "CMakeFiles/fill_test.dir/fill_test.cpp.o"
  "CMakeFiles/fill_test.dir/fill_test.cpp.o.d"
  "fill_test"
  "fill_test.pdb"
  "fill_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fill_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
