# Empty compiler generated dependencies file for fill_test.
# This may be replaced when dependencies are built.
