file(REMOVE_RECURSE
  "CMakeFiles/distributed_test.dir/distributed_test.cpp.o"
  "CMakeFiles/distributed_test.dir/distributed_test.cpp.o.d"
  "distributed_test"
  "distributed_test.pdb"
  "distributed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
