# Empty dependencies file for ecc_test.
# This may be replaced when dependencies are built.
