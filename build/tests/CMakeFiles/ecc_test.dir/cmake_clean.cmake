file(REMOVE_RECURSE
  "CMakeFiles/ecc_test.dir/ecc_test.cpp.o"
  "CMakeFiles/ecc_test.dir/ecc_test.cpp.o.d"
  "ecc_test"
  "ecc_test.pdb"
  "ecc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
