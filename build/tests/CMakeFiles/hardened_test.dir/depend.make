# Empty dependencies file for hardened_test.
# This may be replaced when dependencies are built.
