file(REMOVE_RECURSE
  "CMakeFiles/hardened_test.dir/hardened_test.cpp.o"
  "CMakeFiles/hardened_test.dir/hardened_test.cpp.o.d"
  "hardened_test"
  "hardened_test.pdb"
  "hardened_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardened_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
