file(REMOVE_RECURSE
  "CMakeFiles/aging_test.dir/aging_test.cpp.o"
  "CMakeFiles/aging_test.dir/aging_test.cpp.o.d"
  "aging_test"
  "aging_test.pdb"
  "aging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
