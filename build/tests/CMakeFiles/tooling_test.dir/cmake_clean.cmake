file(REMOVE_RECURSE
  "CMakeFiles/tooling_test.dir/tooling_test.cpp.o"
  "CMakeFiles/tooling_test.dir/tooling_test.cpp.o.d"
  "tooling_test"
  "tooling_test.pdb"
  "tooling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tooling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
