file(REMOVE_RECURSE
  "CMakeFiles/swat_test.dir/swat_test.cpp.o"
  "CMakeFiles/swat_test.dir/swat_test.cpp.o.d"
  "swat_test"
  "swat_test.pdb"
  "swat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
