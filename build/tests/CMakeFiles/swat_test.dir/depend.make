# Empty dependencies file for swat_test.
# This may be replaced when dependencies are built.
