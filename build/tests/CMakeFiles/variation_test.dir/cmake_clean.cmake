file(REMOVE_RECURSE
  "CMakeFiles/variation_test.dir/variation_test.cpp.o"
  "CMakeFiles/variation_test.dir/variation_test.cpp.o.d"
  "variation_test"
  "variation_test.pdb"
  "variation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
