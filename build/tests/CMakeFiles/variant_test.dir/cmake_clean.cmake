file(REMOVE_RECURSE
  "CMakeFiles/variant_test.dir/variant_test.cpp.o"
  "CMakeFiles/variant_test.dir/variant_test.cpp.o.d"
  "variant_test"
  "variant_test.pdb"
  "variant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
