# Empty compiler generated dependencies file for variant_test.
# This may be replaced when dependencies are built.
