file(REMOVE_RECURSE
  "CMakeFiles/alupuf_test.dir/alupuf_test.cpp.o"
  "CMakeFiles/alupuf_test.dir/alupuf_test.cpp.o.d"
  "alupuf_test"
  "alupuf_test.pdb"
  "alupuf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alupuf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
