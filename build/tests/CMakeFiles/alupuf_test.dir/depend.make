# Empty dependencies file for alupuf_test.
# This may be replaced when dependencies are built.
