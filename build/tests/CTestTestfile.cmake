# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/variation_test[1]_include.cmake")
include("/root/repo/build/tests/timingsim_test[1]_include.cmake")
include("/root/repo/build/tests/ecc_test[1]_include.cmake")
include("/root/repo/build/tests/alupuf_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/swat_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/mlattack_test[1]_include.cmake")
include("/root/repo/build/tests/fpga_test[1]_include.cmake")
include("/root/repo/build/tests/aging_test[1]_include.cmake")
include("/root/repo/build/tests/tooling_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/hardened_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_edge_test[1]_include.cmake")
include("/root/repo/build/tests/event_sim_test[1]_include.cmake")
include("/root/repo/build/tests/full_alu_test[1]_include.cmake")
include("/root/repo/build/tests/fill_test[1]_include.cmake")
include("/root/repo/build/tests/distributed_test[1]_include.cmake")
include("/root/repo/build/tests/variant_test[1]_include.cmake")
