file(REMOVE_RECURSE
  "CMakeFiles/overclocking_attack_demo.dir/overclocking_attack_demo.cpp.o"
  "CMakeFiles/overclocking_attack_demo.dir/overclocking_attack_demo.cpp.o.d"
  "overclocking_attack_demo"
  "overclocking_attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overclocking_attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
