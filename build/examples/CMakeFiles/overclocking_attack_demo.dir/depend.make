# Empty dependencies file for overclocking_attack_demo.
# This may be replaced when dependencies are built.
