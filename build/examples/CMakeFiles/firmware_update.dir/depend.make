# Empty dependencies file for firmware_update.
# This may be replaced when dependencies are built.
