file(REMOVE_RECURSE
  "CMakeFiles/firmware_update.dir/firmware_update.cpp.o"
  "CMakeFiles/firmware_update.dir/firmware_update.cpp.o.d"
  "firmware_update"
  "firmware_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firmware_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
