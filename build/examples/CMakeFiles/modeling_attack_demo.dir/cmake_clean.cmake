file(REMOVE_RECURSE
  "CMakeFiles/modeling_attack_demo.dir/modeling_attack_demo.cpp.o"
  "CMakeFiles/modeling_attack_demo.dir/modeling_attack_demo.cpp.o.d"
  "modeling_attack_demo"
  "modeling_attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modeling_attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
