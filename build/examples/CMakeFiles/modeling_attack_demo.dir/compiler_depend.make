# Empty compiler generated dependencies file for modeling_attack_demo.
# This may be replaced when dependencies are built.
