file(REMOVE_RECURSE
  "CMakeFiles/distributed_attestation.dir/distributed_attestation.cpp.o"
  "CMakeFiles/distributed_attestation.dir/distributed_attestation.cpp.o.d"
  "distributed_attestation"
  "distributed_attestation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_attestation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
