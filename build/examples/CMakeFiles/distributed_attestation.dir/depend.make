# Empty dependencies file for distributed_attestation.
# This may be replaced when dependencies are built.
