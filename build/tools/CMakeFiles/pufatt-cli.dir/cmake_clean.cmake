file(REMOVE_RECURSE
  "CMakeFiles/pufatt-cli.dir/pufatt_cli.cpp.o"
  "CMakeFiles/pufatt-cli.dir/pufatt_cli.cpp.o.d"
  "pufatt-cli"
  "pufatt-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pufatt-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
