# Empty compiler generated dependencies file for pufatt-cli.
# This may be replaced when dependencies are built.
