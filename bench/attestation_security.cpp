// Attestation security experiments (paper Section 4.2): full protocol runs
// on the PR32 prover with the gate-level ALU PUF attached, against every
// adversary the paper analyses:
//   honest prover            -> accepted
//   naive malware            -> checksum mismatch
//   redirection malware      -> time bound exceeded
//   redirection + overclock  -> PUF corruption detected
//   proxy (oracle) adversary -> time bound exceeded, bandwidth-dependent
#include <cstdio>

#include "core/enrollment.hpp"
#include "core/protocol.hpp"
#include "ecc/reed_muller.hpp"
#include "support/table.hpp"

using namespace pufatt;
using namespace pufatt::core;

namespace {

double with_channel(const Channel& channel, const CpuProver::Outcome& outcome) {
  return outcome.compute_us +
         channel.round_trip_us(8, outcome.response.wire_bytes());
}

}  // namespace

int main() {
  std::printf("=== PUFatt attestation protocol: adversary matrix ===\n\n");

  const ecc::ReedMuller1 code(5);
  auto profile = DeviceProfile::standard();
  profile.swat.rounds = 2048;
  profile.swat.puf_interval = 64;
  profile.swat.attest_words = 4096;
  profile.layout = swat::SwatLayout::standard(profile.swat);

  support::Xoshiro256pp rng(0xA77E57);
  const alupuf::PufDevice device(profile.puf_config, 20'250'704, code);
  std::vector<std::uint32_t> payload(3000);
  for (auto& w : payload) w = static_cast<std::uint32_t>(rng.next());
  const auto record =
      enroll(device, profile, make_enrolled_image(profile, payload));
  const Verifier verifier(record, code);
  const Channel channel;

  std::printf("device profile: %u SWAT rounds, PUF every %u rounds, "
              "%u-word attested region, base clock %.0f MHz\n",
              profile.swat.rounds, profile.swat.puf_interval,
              profile.swat.attest_words, profile.base_clock_mhz);
  std::printf("honest cycle count: %llu (%.1f us at base clock)\n\n",
              static_cast<unsigned long long>(record.honest_cycles),
              static_cast<double>(record.honest_cycles) /
                  record.profile.base_clock_mhz);

  support::Table table({"scenario", "runs", "accepted", "verdict (typical)",
                        "cycles vs honest"});

  auto run_scenario = [&](const char* name, CpuProver& prover, int runs) {
    int accepted = 0;
    VerifyStatus last = VerifyStatus::kAccepted;
    std::uint64_t cycles = 0;
    for (int i = 0; i < runs; ++i) {
      const auto request = verifier.make_request(rng);
      const auto outcome = prover.respond(request);
      const auto result = verifier.verify(request, outcome.response,
                                          with_channel(channel, outcome));
      if (result.accepted()) ++accepted;
      last = result.status;
      cycles = outcome.cycles;
    }
    table.add_row({name, std::to_string(runs), std::to_string(accepted),
                   to_string(last),
                   support::Table::num(static_cast<double>(cycles) /
                                           static_cast<double>(
                                               record.honest_cycles),
                                       3) +
                       "x"});
  };

  {
    CpuProver honest(device, record, CpuProver::Variant::kHonest, 1);
    run_scenario("honest prover", honest, 10);
  }
  {
    auto tampered = record;
    for (std::size_t w = 3000; w < 3400; ++w) {
      tampered.enrolled_image[w] ^= 0xBAD00BADu;  // implanted malware
    }
    CpuProver naive(device, tampered, CpuProver::Variant::kHonest, 2);
    run_scenario("naive malware (no hiding)", naive, 5);
  }
  {
    CpuProver redirect(device, record, CpuProver::Variant::kRedirectMalware, 3);
    run_scenario("redirection malware @ base clock", redirect, 5);
  }
  {
    CpuProver overclocked(device, record, CpuProver::Variant::kRedirectMalware,
                          4, record.profile.base_clock_mhz * 1.35);
    run_scenario("redirection malware @ 1.35x clock", overclocked, 5);
  }
  {
    const alupuf::PufDevice impostor_chip(profile.puf_config, 666, code);
    CpuProver impostor(impostor_chip, record, CpuProver::Variant::kHonest, 5);
    run_scenario("impersonation (wrong die)", impostor, 5);
  }
  std::printf("%s\n", table.render().c_str());

  // --- proxy attack: elapsed time vs oracle channel bandwidth -----------------
  std::printf("proxy (oracle) adversary: elapsed vs deadline across oracle "
              "channel bandwidths (accomplice 100x faster)\n\n");
  support::Table proxy_table({"oracle bandwidth", "latency", "elapsed (us)",
                              "deadline (us)", "result"});
  for (const double mbps : {0.25, 1.0, 10.0, 100.0, 10000.0}) {
    ProxyAttackParams params;
    params.accomplice_speedup = 100.0;
    params.oracle_channel.bandwidth_bps = mbps * 1e6;
    params.oracle_channel.latency_us = mbps < 50.0 ? 2000.0 : 5.0;
    const auto request = verifier.make_request(rng);
    const auto outcome = proxy_attack(device, record, request, params, rng);
    const double elapsed =
        outcome.elapsed_us +
        channel.round_trip_us(8, outcome.response.wire_bytes());
    const auto result = verifier.verify(request, outcome.response, elapsed);
    proxy_table.add_row(
        {support::Table::num(mbps, 2) + " Mbps",
         support::Table::num(params.oracle_channel.latency_us, 0) + " us",
         support::Table::num(elapsed, 0),
         support::Table::num(result.deadline_us, 0), to_string(result.status)});
  }
  std::printf("%s\n", proxy_table.render().c_str());
  std::printf(
      "reading: with a realistic sensor-node oracle link the proxy blows\n"
      "the deadline by orders of magnitude (the paper's bandwidth\n"
      "assumption); only a physically implausible near-zero-latency link\n"
      "reduces the proxy to the honest device.\n");
  return 0;
}
