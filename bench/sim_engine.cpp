// Timing-engine throughput bench: scalar vs batched SoA vs bit-sliced
// evaluation, plus shard-parallel CRP generation.
//
// Four sweeps on the 32-bit ALU PUF circuit:
//   1. engine level — TimingSimulator::run vs run_batch (shared delays,
//      the verifier-emulation workload), with an exact divergence count
//      (values and settle times compared bitwise per net), then the
//      bit-sliced engine (64 lanes per uint64_t word) over the same
//      challenges with the same exact divergence check;
//   2. device level — AluPuf::eval vs eval_batch (per-lane noisy delays,
//      the CRP-generation workload);
//   3. CRP generation — collect_alu_raw_parallel at 1/2/4/8 threads with a
//      dataset digest that must be invariant across thread counts;
//   4. CRP generation by engine — SoA vs bit-sliced kernels under
//      collect_alu_raw_parallel, with a digest that must be invariant
//      across engines (engine choice must never move the dataset bytes).
//
// Results go to stdout and BENCH_sim_engine.json (same schema family as
// BENCH_service_throughput.json).  `--smoke` runs a tiny sweep as a ctest
// smoke test labeled 'bench'; the full run backs the acceptance criteria
// (>= 4x single-thread batched speedup at the engine level, >= 5x
// bit-sliced speedup over the best SoA batch point, >= 1.2x at the device
// level where per-lane noise sampling rides along, measurably faster CRP
// generation on the bit-sliced engine, zero divergence, thread- and
// engine-invariant parallel datasets).
//
// Timing claims are measured interleaved best-of-N (contender and baseline
// alternate inside one loop) so a noisy-neighbour blip on a shared host
// hits both sides instead of deciding the claim.  Scaling claims are
// hardware-aware: on an N-core host, T threads can only be expected to
// scale to min(T, N); beyond that we require no regression.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "alupuf/alu_puf.hpp"
#include "mlattack/dataset.hpp"
#include "netlist/builder.hpp"
#include "support/table.hpp"
#include "timingsim/bitslice.hpp"
#include "timingsim/timing_sim.hpp"
#include "variation/chip.hpp"

using namespace pufatt;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t dataset_digest(const std::vector<mlattack::Example>& examples) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& e : examples) {
    const unsigned char label = e.label ? 1 : 0;
    h = fnv1a(h, &label, 1);
    h = fnv1a(h, e.features.data(), e.features.size() * sizeof(double));
  }
  return h;
}

struct BatchPoint {
  std::size_t batch = 0;
  double evals_per_s = 0.0;
  double speedup_vs_scalar = 0.0;
  std::size_t divergence = 0;
};

struct SlicePoint {
  std::size_t batch = 0;
  double evals_per_s = 0.0;
  double speedup_vs_scalar = 0.0;
  std::size_t divergence = 0;
};

struct DevicePoint {
  const char* path = "";
  double evals_per_s = 0.0;
};

struct EnginePoint {
  const char* engine = "";
  double crps_per_s = 0.0;
  std::uint64_t digest = 0;
};

struct ThreadPoint {
  std::size_t threads = 0;
  double wall_s = 0.0;
  double crps_per_s = 0.0;
  double speedup_vs_1 = 0.0;
  std::uint64_t digest = 0;
};

void write_json(const char* path, bool smoke, std::size_t engine_evals,
                std::size_t crp_count, double scalar_evals_per_s,
                const std::vector<BatchPoint>& batch_sweep,
                const std::vector<SlicePoint>& slice_sweep,
                const std::vector<DevicePoint>& device_sweep,
                const std::vector<ThreadPoint>& thread_sweep,
                const std::vector<EnginePoint>& engine_sweep,
                double batch_speedup_top, std::size_t total_divergence,
                bool thread_invariant, bool scaling_ok, bool speedup_ok,
                double device_speedup, bool device_speedup_ok,
                double bitslice_speedup, bool bitslice_speedup_ok,
                double gen_crps_bitslice_speedup, bool gen_crps_bitslice_ok,
                bool engine_invariant) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"bench\": \"sim_engine\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f,
               "  \"workload\": {\"puf_width\": 32, \"engine_evals\": %zu, "
               "\"crp_count\": %zu, \"hardware_concurrency\": %u},\n",
               engine_evals, crp_count, std::thread::hardware_concurrency());
  std::fprintf(f, "  \"scalar_evals_per_s\": %.1f,\n", scalar_evals_per_s);
  std::fprintf(f, "  \"batch_sweep\": [\n");
  for (std::size_t i = 0; i < batch_sweep.size(); ++i) {
    const auto& p = batch_sweep[i];
    std::fprintf(f,
                 "    {\"batch\": %zu, \"evals_per_s\": %.1f, "
                 "\"speedup_vs_scalar\": %.3f, \"divergence\": %zu}%s\n",
                 p.batch, p.evals_per_s, p.speedup_vs_scalar, p.divergence,
                 i + 1 < batch_sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"slice_sweep\": [\n");
  for (std::size_t i = 0; i < slice_sweep.size(); ++i) {
    const auto& p = slice_sweep[i];
    std::fprintf(f,
                 "    {\"batch\": %zu, \"evals_per_s\": %.1f, "
                 "\"speedup_vs_scalar\": %.3f, \"divergence\": %zu}%s\n",
                 p.batch, p.evals_per_s, p.speedup_vs_scalar, p.divergence,
                 i + 1 < slice_sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"device_sweep\": [\n");
  for (std::size_t i = 0; i < device_sweep.size(); ++i) {
    const auto& p = device_sweep[i];
    std::fprintf(f, "    {\"path\": \"%s\", \"evals_per_s\": %.1f}%s\n",
                 p.path, p.evals_per_s,
                 i + 1 < device_sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"thread_sweep\": [\n");
  for (std::size_t i = 0; i < thread_sweep.size(); ++i) {
    const auto& p = thread_sweep[i];
    std::fprintf(f,
                 "    {\"threads\": %zu, \"wall_s\": %.4f, "
                 "\"crps_per_s\": %.1f, \"speedup_vs_1\": %.3f, "
                 "\"digest\": \"%016llx\"}%s\n",
                 p.threads, p.wall_s, p.crps_per_s, p.speedup_vs_1,
                 static_cast<unsigned long long>(p.digest),
                 i + 1 < thread_sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"gen_crps_engines\": [\n");
  for (std::size_t i = 0; i < engine_sweep.size(); ++i) {
    const auto& p = engine_sweep[i];
    std::fprintf(f,
                 "    {\"engine\": \"%s\", \"crps_per_s\": %.1f, "
                 "\"digest\": \"%016llx\"}%s\n",
                 p.engine, p.crps_per_s,
                 static_cast<unsigned long long>(p.digest),
                 i + 1 < engine_sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"claims\": {\"batch_speedup_top\": %.3f, "
               "\"batch_speedup_ok\": %s, \"divergence\": %zu, "
               "\"divergence_ok\": %s, \"thread_invariant\": %s, "
               "\"scaling_ok\": %s, \"device_batch_speedup\": %.3f, "
               "\"device_batch_speedup_ok\": %s, "
               "\"bitslice_speedup\": %.3f, \"bitslice_speedup_ok\": %s, "
               "\"gen_crps_bitslice_speedup\": %.3f, "
               "\"gen_crps_bitslice_ok\": %s, \"engine_invariant\": %s}\n",
               batch_speedup_top, speedup_ok ? "true" : "false",
               total_divergence, total_divergence == 0 ? "true" : "false",
               thread_invariant ? "true" : "false",
               scaling_ok ? "true" : "false", device_speedup,
               device_speedup_ok ? "true" : "false", bitslice_speedup,
               bitslice_speedup_ok ? "true" : "false",
               gen_crps_bitslice_speedup,
               gen_crps_bitslice_ok ? "true" : "false",
               engine_invariant ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("=== Timing-engine throughput: scalar vs batched (%s) ===\n\n",
              smoke ? "smoke" : "full");

  const std::size_t engine_evals = smoke ? 1024 : 16384;
  const std::size_t device_evals = smoke ? 512 : 4096;
  const std::size_t crp_count = smoke ? 2048 : 20000;
  const std::size_t crp_block = 256;

  // ---- workload: 32-bit ALU PUF circuit, one manufactured chip ----------
  const auto circuit = netlist::build_alu_puf_circuit(32);
  const variation::ChipInstance chip(circuit.net, {}, {}, 31415);
  const auto delays = chip.nominal_delays(variation::Environment::nominal());
  const timingsim::TimingSimulator sim(circuit.net);
  support::Xoshiro256pp rng(0xBEEF);

  std::vector<support::BitVector> challenges;
  challenges.reserve(engine_evals);
  for (std::size_t i = 0; i < engine_evals; ++i) {
    challenges.push_back(
        support::BitVector::random(circuit.net.num_inputs(), rng));
  }

  // ---- 1. engine level: scalar baseline ---------------------------------
  std::vector<timingsim::SignalState> states;
  auto t0 = Clock::now();
  double sink = 0.0;
  for (const auto& c : challenges) {
    sim.run(c, delays, states);
    sink += states.back().time_ps;
  }
  const double scalar_s = seconds_since(t0);
  const double scalar_evals_per_s = engine_evals / scalar_s;

  // ---- 1b. engine level: batched sweep + exact divergence count ---------
  std::vector<BatchPoint> batch_sweep;
  std::size_t total_divergence = 0;
  timingsim::BatchState batch_states;
  std::vector<std::uint8_t> lanes;
  for (const std::size_t B : {16u, 64u, 256u}) {
    t0 = Clock::now();
    for (std::size_t base = 0; base < engine_evals; base += B) {
      const std::size_t n = std::min<std::size_t>(B, engine_evals - base);
      timingsim::pack_input_lanes(challenges.data() + base, n,
                                  circuit.net.num_inputs(), lanes);
      sim.run_batch(lanes.data(), n, delays, batch_states);
      sink += batch_states.time_ps(circuit.race0[0], 0);
    }
    const double wall = seconds_since(t0);
    BatchPoint p;
    p.batch = B;
    p.evals_per_s = engine_evals / wall;
    p.speedup_vs_scalar = p.evals_per_s / scalar_evals_per_s;
    // Divergence: recheck one pass at this batch size against scalar.
    for (std::size_t base = 0; base < engine_evals; base += B) {
      const std::size_t n = std::min<std::size_t>(B, engine_evals - base);
      timingsim::pack_input_lanes(challenges.data() + base, n,
                                  circuit.net.num_inputs(), lanes);
      sim.run_batch(lanes.data(), n, delays, batch_states);
      for (std::size_t b = 0; b < n; ++b) {
        sim.run(challenges[base + b], delays, states);
        for (std::size_t g = 0; g < circuit.net.num_gates(); ++g) {
          const auto id = static_cast<netlist::GateId>(g);
          if (batch_states.value(id, b) != states[g].value ||
              batch_states.time_ps(id, b) != states[g].time_ps) {
            ++p.divergence;
          }
        }
      }
    }
    total_divergence += p.divergence;
    batch_sweep.push_back(p);
  }

  // ---- 1c. engine level: bit-sliced (64 lanes per word) -----------------
  // Interleaved best-of-N against an SoA B=256 reference so the headline
  // bitslice_speedup compares two rates measured under the same load.
  const timingsim::BitSliceEngine slice(sim.compiled(), delays);
  timingsim::BitSliceState slice_state;
  std::vector<std::uint64_t> input_words;
  const std::size_t slice_batches[] = {64, 256, 512};
  std::vector<SlicePoint> slice_sweep(std::size(slice_batches));
  double soa_ref_best = 0.0;
  const int engine_reps = smoke ? 1 : 5;
  for (int rep = 0; rep < engine_reps; ++rep) {
    // SoA reference pass (B=256, same chunking as the sweep above).
    t0 = Clock::now();
    for (std::size_t base = 0; base < engine_evals; base += 256) {
      const std::size_t n = std::min<std::size_t>(256, engine_evals - base);
      timingsim::pack_input_lanes(challenges.data() + base, n,
                                  circuit.net.num_inputs(), lanes);
      sim.run_batch(lanes.data(), n, delays, batch_states);
      sink += batch_states.time_ps(circuit.race0[0], 0);
    }
    soa_ref_best = std::max(soa_ref_best, engine_evals / seconds_since(t0));
    for (std::size_t i = 0; i < std::size(slice_batches); ++i) {
      const std::size_t B = slice_batches[i];
      t0 = Clock::now();
      for (std::size_t base = 0; base < engine_evals; base += B) {
        const std::size_t n = std::min<std::size_t>(B, engine_evals - base);
        timingsim::pack_input_words(challenges.data() + base, n,
                                    circuit.net.num_inputs(), input_words);
        slice.run(input_words.data(), n, slice_state);
        sink += slice.time_ps(slice_state, circuit.race0[0], 0);
      }
      slice_sweep[i].batch = B;
      slice_sweep[i].evals_per_s = std::max(
          slice_sweep[i].evals_per_s, engine_evals / seconds_since(t0));
    }
  }
  // Divergence: recheck one B=256 pass bitwise against scalar, all gates.
  for (std::size_t base = 0; base < engine_evals; base += 256) {
    const std::size_t n = std::min<std::size_t>(256, engine_evals - base);
    timingsim::pack_input_words(challenges.data() + base, n,
                                circuit.net.num_inputs(), input_words);
    slice.run(input_words.data(), n, slice_state);
    for (std::size_t b = 0; b < n; ++b) {
      sim.run(challenges[base + b], delays, states);
      for (std::size_t g = 0; g < circuit.net.num_gates(); ++g) {
        const auto id = static_cast<netlist::GateId>(g);
        if (slice.value(slice_state, id, b) != states[g].value ||
            slice.time_ps(slice_state, id, b) != states[g].time_ps) {
          ++slice_sweep[1].divergence;
        }
      }
    }
  }
  for (auto& p : slice_sweep) {
    p.speedup_vs_scalar = p.evals_per_s / scalar_evals_per_s;
    total_divergence += p.divergence;
  }

  // ---- 2. device level: noisy eval vs eval_batch ------------------------
  const alupuf::AluPufConfig puf_config;  // width 32
  const alupuf::AluPuf puf(puf_config, 777);
  const auto env = variation::Environment::nominal();
  puf.prewarm(env);
  std::vector<alupuf::Challenge> device_challenges;
  device_challenges.reserve(device_evals);
  for (std::size_t i = 0; i < device_evals; ++i) {
    device_challenges.push_back(
        support::BitVector::random(puf.challenge_bits(), rng));
  }
  std::vector<DevicePoint> device_sweep;
  {
    support::Xoshiro256pp eval_rng(42);
    t0 = Clock::now();
    for (const auto& c : device_challenges) {
      sink += puf.eval(c, env, eval_rng).popcount();
    }
    device_sweep.push_back({"scalar_eval", device_evals / seconds_since(t0)});
  }
  {
    support::Xoshiro256pp eval_rng(42);
    alupuf::AluPufBatchScratch scratch;
    t0 = Clock::now();
    for (std::size_t base = 0; base < device_evals; base += 256) {
      const std::size_t n = std::min<std::size_t>(256, device_evals - base);
      const auto responses =
          puf.eval_batch(device_challenges.data() + base, n, env, eval_rng,
                         nullptr, &scratch);
      sink += responses[0].popcount();
    }
    device_sweep.push_back({"eval_batch", device_evals / seconds_since(t0)});
  }

  // ---- 3. shard-parallel CRP generation ---------------------------------
  std::vector<ThreadPoint> thread_sweep;
  bool thread_invariant = true;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    mlattack::ParallelCrpConfig config;
    config.threads = threads;
    config.block = crp_block;
    config.seed = 99;
    t0 = Clock::now();
    const auto dataset =
        mlattack::collect_alu_raw_parallel(puf, 0, crp_count, config);
    ThreadPoint p;
    p.threads = threads;
    p.wall_s = seconds_since(t0);
    p.crps_per_s = crp_count / p.wall_s;
    p.digest = dataset_digest(dataset);
    p.speedup_vs_1 =
        thread_sweep.empty() ? 1.0 : p.crps_per_s / thread_sweep[0].crps_per_s;
    if (!thread_sweep.empty() && p.digest != thread_sweep[0].digest) {
      thread_invariant = false;
    }
    thread_sweep.push_back(p);
  }

  // ---- 3b. CRP generation by engine: SoA vs bit-sliced -------------------
  // Same shard-parallel collector, only the timing kernel differs; the
  // dataset digest must not move (engine-independence is the contract the
  // gen_crps_engine_parity ctest checks at the CLI layer).  Interleaved
  // best-of-N, 2 worker threads (the fleet-enrollment shape).
  std::vector<EnginePoint> engine_sweep = {{"batch", 0.0, 0},
                                           {"bitslice", 0.0, 0}};
  const int crp_reps = smoke ? 1 : 3;
  for (int rep = 0; rep < crp_reps; ++rep) {
    for (auto& point : engine_sweep) {
      mlattack::ParallelCrpConfig config;
      config.threads = 2;
      config.block = crp_block;
      config.seed = 99;
      config.engine = std::strcmp(point.engine, "bitslice") == 0
                          ? timingsim::BatchEngine::kBitslice
                          : timingsim::BatchEngine::kBatch;
      t0 = Clock::now();
      const auto dataset =
          mlattack::collect_alu_raw_parallel(puf, 0, crp_count, config);
      point.crps_per_s =
          std::max(point.crps_per_s, crp_count / seconds_since(t0));
      point.digest = dataset_digest(dataset);
    }
  }
  const bool engine_invariant =
      engine_sweep[0].digest == engine_sweep[1].digest &&
      engine_sweep[0].digest == thread_sweep[0].digest;

  // ---- claims ------------------------------------------------------------
  double batch_speedup_top = 0.0;
  for (const auto& p : batch_sweep) {
    batch_speedup_top = std::max(batch_speedup_top, p.speedup_vs_scalar);
  }
  const bool speedup_ok = batch_speedup_top >= 4.0;
  // Bit-sliced engine: the tentpole claim.  Best bit-sliced point vs the
  // interleaved SoA reference — 64 lanes per word must clear 5x the SoA
  // batch engine on the shared-delay workload.
  double slice_best = 0.0;
  for (const auto& p : slice_sweep) {
    slice_best = std::max(slice_best, p.evals_per_s);
  }
  const double bitslice_speedup = slice_best / soa_ref_best;
  const bool bitslice_speedup_ok = bitslice_speedup >= 5.0;
  // CRP generation rides the noisy lane-delay path where ziggurat noise
  // sampling takes a fixed share of the wall clock, so the bar is lower:
  // measurably faster, >= 1.15x (measured ~1.5x on the reference host).
  const double gen_crps_bitslice_speedup =
      engine_sweep[1].crps_per_s / engine_sweep[0].crps_per_s;
  const bool gen_crps_bitslice_ok = gen_crps_bitslice_speedup >= 1.15;
  // Device level: the noisy batch path (ziggurat noise fill, gate-major
  // SoA writes) must actually beat per-challenge eval — the regression
  // this sweep exists to catch.
  const double device_speedup =
      device_sweep[1].evals_per_s / device_sweep[0].evals_per_s;
  const bool device_speedup_ok = device_speedup >= 1.2;
  // Hardware-aware shard scaling: expect ~linear up to the core count,
  // and no worse than 0.7x the single-thread rate when oversubscribed.
  const std::size_t cores =
      std::max(1u, std::thread::hardware_concurrency());
  bool scaling_ok = true;
  for (const auto& p : thread_sweep) {
    const double expected = static_cast<double>(
        std::min<std::size_t>(p.threads, cores));
    if (p.speedup_vs_1 < 0.7 * expected) scaling_ok = false;
  }

  // ---- report ------------------------------------------------------------
  support::Table table({"sweep", "config", "rate", "note"});
  table.add_row({"engine", "scalar",
                 support::Table::num(scalar_evals_per_s, 0) + " eval/s",
                 "baseline"});
  for (const auto& p : batch_sweep) {
    table.add_row({"engine", "batch B=" + std::to_string(p.batch),
                   support::Table::num(p.evals_per_s, 0) + " eval/s",
                   support::Table::num(p.speedup_vs_scalar, 2) + "x, " +
                       std::to_string(p.divergence) + " diverge"});
  }
  for (const auto& p : slice_sweep) {
    table.add_row({"engine", "bitslice B=" + std::to_string(p.batch),
                   support::Table::num(p.evals_per_s, 0) + " eval/s",
                   support::Table::num(p.speedup_vs_scalar, 2) + "x, " +
                       std::to_string(p.divergence) + " diverge"});
  }
  for (const auto& p : device_sweep) {
    table.add_row({"device", p.path,
                   support::Table::num(p.evals_per_s, 0) + " eval/s",
                   "noisy"});
  }
  for (const auto& p : thread_sweep) {
    table.add_row({"crp-gen", std::to_string(p.threads) + " thread(s)",
                   support::Table::num(p.crps_per_s, 0) + " crp/s",
                   support::Table::num(p.speedup_vs_1, 2) + "x"});
  }
  for (const auto& p : engine_sweep) {
    table.add_row({"crp-gen", std::string("engine ") + p.engine,
                   support::Table::num(p.crps_per_s, 0) + " crp/s",
                   "2 threads"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "claims: batch speedup %.2fx (need >= 4 in full mode) | bitslice "
      "%.2fx vs SoA (need >= 5 in full mode) | device batch %.2fx (need >= "
      "1.2 in full mode) | crp-gen bitslice %.2fx (need >= 1.15 in full "
      "mode) | divergence %zu | thread-invariant %s | engine-invariant %s | "
      "scaling ok (vs %zu cores) %s\n(sink %.1f)\n",
      batch_speedup_top, bitslice_speedup, device_speedup,
      gen_crps_bitslice_speedup, total_divergence,
      thread_invariant ? "yes" : "NO", engine_invariant ? "yes" : "NO",
      cores, scaling_ok ? "yes" : "NO", sink);

  write_json("BENCH_sim_engine.json", smoke, engine_evals, crp_count,
             scalar_evals_per_s, batch_sweep, slice_sweep, device_sweep,
             thread_sweep, engine_sweep, batch_speedup_top, total_divergence,
             thread_invariant, scaling_ok, speedup_ok, device_speedup,
             device_speedup_ok, bitslice_speedup, bitslice_speedup_ok,
             gen_crps_bitslice_speedup, gen_crps_bitslice_ok,
             engine_invariant);

  // Smoke mode gates only correctness — divergence plus thread and engine
  // invariance.  All timing claims (>= 4x engine speedup, >= 5x bit-sliced,
  // device batch, crp-gen engine, shard scaling) gate only the full run:
  // the smoke workloads are tiny and ctest runs them alongside other tests
  // (often on one loaded core, worse under sanitizers), so any wall-clock
  // assertion there is pure flake.
  bool ok = total_divergence == 0 && thread_invariant && engine_invariant;
  if (!smoke) {
    ok = ok && speedup_ok && scaling_ok && device_speedup_ok &&
         bitslice_speedup_ok && gen_crps_bitslice_ok;
  }
  return ok ? 0 : 1;
}
