// Overclocking study (paper Section 4.2, "Overclocking Attack Resiliency"):
// sweep the prover clock and measure
//   1. PUF response corruption (setup-time violations on the carry chain),
//   2. the verifier's reliability-weighted reconstruction distance,
//   3. full-protocol outcomes for the honest program and the redirection
//      malware at each clock.
// The paper's condition: T_ALU + T_set < T_cycle; the base clock is chosen
// with minimal headroom so any useful overclock corrupts responses.
#include <cstdio>

#include "core/enrollment.hpp"
#include "core/protocol.hpp"
#include "core/puf_adapter.hpp"
#include "ecc/helper_data.hpp"
#include "ecc/reed_muller.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace pufatt;
using namespace pufatt::core;

int main() {
  std::printf("=== Overclocking: PUF corruption and protocol outcomes ===\n\n");

  const ecc::ReedMuller1 code(5);
  auto profile = DeviceProfile::standard();
  profile.swat.rounds = 1024;
  profile.swat.attest_words = 2048;
  profile.layout = swat::SwatLayout::standard(profile.swat);

  support::Xoshiro256pp rng(0x0C10C);
  const alupuf::PufDevice device(profile.puf_config, 314159, code);
  const alupuf::PufEmulator emulator(32, device.export_model(), code);
  const ecc::SyndromeHelper helper(code);
  const auto record =
      enroll(device, profile,
             make_enrolled_image(profile, std::vector<std::uint32_t>(1500, 7)));
  const Verifier verifier(record, code);
  const Channel channel;

  const double t_alu =
      device.raw_puf().max_settle_ps(variation::Environment::nominal());
  const double base_mhz = record.profile.base_clock_mhz;  // set per die
  std::printf("T_ALU (worst-case carry chain settle): %.0f ps\n", t_alu);
  std::printf("enrolled base clock %.0f MHz -> cycle %.0f ps, capture "
              "deadline %.0f ps\n\n",
              base_mhz, 1e6 / base_mhz, 1e6 / base_mhz - 20.0);

  support::Table table({"clock multiple", "MHz", "deadline (ps)",
                        "weighted dist / call (ps)", "honest program",
                        "redirect malware"});

  const auto env = variation::Environment::nominal();
  for (const double mult : {1.0, 1.05, 1.1, 1.15, 1.2, 1.3, 1.5, 2.0, 2.5}) {
    const double mhz = base_mhz * mult;
    const alupuf::ClockConstraint clock{1e6 / mhz, 20.0};

    // Reliability-weighted reconstruction distance per PUF call at this
    // clock (the verifier's response-authenticity statistic).
    support::OnlineStats weighted;
    for (int call = 0; call < 25; ++call) {
      std::array<alupuf::Challenge, 8> challenges;
      for (auto& c : challenges) {
        const auto a = static_cast<std::uint32_t>(rng.next());
        c = challenge_from_u64((static_cast<std::uint64_t>(a) << 32) |
                               static_cast<std::uint32_t>(~a));
      }
      const auto out = device.query_raw(challenges, env, rng, &clock);
      double w = 0.0;
      for (int r = 0; r < 8; ++r) {
        const auto llr = emulator.raw_emulator().eval_soft(challenges[r]);
        const auto rec = helper.reproduce_soft(llr, out.helpers[r]);
        if (!rec) continue;
        for (std::size_t i = 0; i < llr.size(); ++i) {
          if (rec->get(i) != (llr[i] < 0.0)) w += std::abs(llr[i]);
        }
      }
      weighted.add(w);
    }

    auto attempt = [&](CpuProver::Variant variant, std::uint64_t seed) {
      CpuProver prover(device, record, variant, seed, mhz);
      const auto request = verifier.make_request(rng);
      const auto outcome = prover.respond(request);
      const double elapsed =
          outcome.compute_us +
          channel.round_trip_us(8, outcome.response.wire_bytes());
      return to_string(verifier.verify(request, outcome.response, elapsed).status);
    };

    table.add_row({support::Table::num(mult, 2), support::Table::num(mhz, 0),
                   support::Table::num(1e6 / mhz - 20.0, 0),
                   support::Table::num(weighted.mean(), 1),
                   attempt(CpuProver::Variant::kHonest, 900 + mult * 10),
                   attempt(CpuProver::Variant::kRedirectMalware,
                           950 + mult * 10)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: the enrolled clock leaves ~6%% headroom over T_ALU+T_set.\n"
      "The redirection overhead (~16%%) exceeds the verifier's 5%% time\n"
      "slack, so hiding it needs >= ~1.11x overclock — which already\n"
      "violates the capture deadline and corrupts PUF responses.  The\n"
      "verifier's weighted-distance budget (60 ps/call, ANDed over all 32\n"
      "PUF calls) then rejects the transcript: the paper's \"wrong\n"
      "responses from the ALU PUF\" failure mode.\n");
  return 0;
}
