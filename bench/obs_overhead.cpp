// Observability overhead bench: what does the tracing/metrics subsystem
// cost the two hot paths it instruments?
//
// Two workloads, three tracer modes each:
//   1. service level — attestation sessions through the worker pool
//      (the serve-demo workload, small fleet) with (a) no tracer wired,
//      (b) a tracer attached but disabled — the always-on production
//      configuration, whose cost is one relaxed load + branch per hook —
//      and (c) a tracer enabled at sample rate 1.0;
//   2. engine level — TimingSimulator::run_batch with the global tracer
//      off vs on (the per-batch span + occupancy counters).
//
// Results go to stdout and BENCH_obs_overhead.json (stable schema).
// `--smoke` runs a tiny sweep as a ctest smoke test labeled 'bench' and
// gates only correctness: untraced/disabled runs must record zero spans,
// an enabled run must produce the expected span tree.  The full run
// additionally enforces the acceptance criterion that tracing-disabled
// throughput stays within 2% of the untraced baseline (best-of-reps on
// both sides to damp scheduler noise).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/distributed.hpp"
#include "core/enrollment.hpp"
#include "ecc/reed_muller.hpp"
#include "netlist/builder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/device_registry.hpp"
#include "service/emulator_cache.hpp"
#include "service/verifier_pool.hpp"
#include "timingsim/timing_sim.hpp"
#include "variation/chip.hpp"

using namespace pufatt;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

const ecc::ReedMuller1& code() {
  static const ecc::ReedMuller1 instance(5);
  return instance;
}

struct Fleet {
  struct Device {
    std::string id;
    std::unique_ptr<alupuf::PufDevice> device;
    core::EnrollmentRecord record;
  };
  std::vector<Device> devices;
  service::DeviceRegistry registry{4};

  explicit Fleet(std::size_t count) {
    const auto profile = core::DistributedParams::small_profile();
    support::Xoshiro256pp rng(0x0BE7);
    std::vector<std::uint32_t> firmware(600);
    for (auto& word : firmware) word = static_cast<std::uint32_t>(rng.next());
    const auto image = core::make_enrolled_image(profile, firmware);
    devices.resize(count);
    for (std::size_t d = 0; d < count; ++d) {
      devices[d].id = "unit-" + std::to_string(d);
      devices[d].device = std::make_unique<alupuf::PufDevice>(
          profile.puf_config, 0xFAB0 + d, code());
      devices[d].record = core::enroll(*devices[d].device, profile, image);
      registry.store(devices[d].id, devices[d].record);
    }
  }
};

/// One pooled run of `sessions` fixed-seed jobs; returns sessions/s.
double run_service(Fleet& fleet, std::size_t sessions, obs::Tracer* tracer) {
  service::EmulatorCache cache(fleet.registry, code(), fleet.devices.size());
  service::PoolConfig config;
  config.workers = 2;
  config.queue_capacity = sessions;
  config.tracer = tracer;
  service::VerifierPool pool(cache, config);

  const auto t0 = Clock::now();
  for (std::size_t s = 0; s < sessions; ++s) {
    const std::size_t d = s % fleet.devices.size();
    service::AttestationJob job;
    job.device_id = fleet.devices[d].id;
    job.channel_seed = 0xC0DE + 31 * s;
    job.rng_seed = 0xF1E1D + 17 * s;
    job.tag = s;
    auto prover = std::make_shared<core::CpuProver>(
        *fleet.devices[d].device, fleet.devices[d].record,
        core::CpuProver::Variant::kHonest, job.rng_seed ^ 0xF00D);
    job.responder = [prover](const core::AttestationRequest& request) {
      auto outcome = prover->respond(request);
      return core::ProverReply{std::move(outcome.response),
                               outcome.compute_us};
    };
    (void)pool.submit(std::move(job));
  }
  pool.drain();
  return static_cast<double>(sessions) / seconds_since(t0);
}

double best_of(std::size_t reps, const std::function<double()>& run) {
  double best = 0.0;
  for (std::size_t r = 0; r < reps; ++r) best = std::max(best, run());
  return best;
}

void write_json(bool smoke, std::size_t sessions, double svc_untraced,
                double svc_disabled, double svc_enabled, std::size_t evals,
                std::size_t batch, double eng_untraced, double eng_traced,
                std::size_t spans_recorded, bool ok) {
  std::FILE* f = std::fopen("BENCH_obs_overhead.json", "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"obs_overhead\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"trace_compiled\": %s,\n",
               obs::kTraceCompiled ? "true" : "false");
  std::fprintf(f, "  \"service\": {\n");
  std::fprintf(f, "    \"sessions\": %zu,\n", sessions);
  std::fprintf(f, "    \"workers\": 2,\n");
  std::fprintf(f, "    \"sessions_per_s\": {\"untraced\": %.1f, "
               "\"tracer_disabled\": %.1f, \"tracer_enabled\": %.1f},\n",
               svc_untraced, svc_disabled, svc_enabled);
  std::fprintf(f, "    \"disabled_over_untraced\": %.4f,\n",
               svc_disabled / svc_untraced);
  std::fprintf(f, "    \"enabled_over_untraced\": %.4f\n",
               svc_enabled / svc_untraced);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"engine\": {\n");
  std::fprintf(f, "    \"evals\": %zu,\n", evals);
  std::fprintf(f, "    \"batch\": %zu,\n", batch);
  std::fprintf(f, "    \"evals_per_s\": {\"untraced\": %.0f, "
               "\"traced\": %.0f},\n", eng_untraced, eng_traced);
  std::fprintf(f, "    \"traced_over_untraced\": %.4f\n",
               eng_traced / eng_untraced);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"spans_recorded\": %zu,\n", spans_recorded);
  std::fprintf(f, "  \"ok\": %s\n", ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("=== Observability overhead: untraced vs disabled vs enabled "
              "(%s) ===\n\n", smoke ? "smoke" : "full");

  const std::size_t sessions = smoke ? 12 : 200;
  const std::size_t reps = smoke ? 1 : 3;
  Fleet fleet(3);

  // ---- 1. service level --------------------------------------------------
  const double svc_untraced =
      best_of(reps, [&] { return run_service(fleet, sessions, nullptr); });

  obs::Tracer disabled_tracer;  // attached, never enabled
  const double svc_disabled = best_of(
      reps, [&] { return run_service(fleet, sessions, &disabled_tracer); });

  obs::Tracer enabled_tracer;
  enabled_tracer.set_enabled(true);
  std::size_t spans_recorded = 0;
  const double svc_enabled = best_of(reps, [&] {
    enabled_tracer.clear();
    const double rate = run_service(fleet, sessions, &enabled_tracer);
    spans_recorded = enabled_tracer.records().size();
    return rate;
  });

  std::printf("service (%zu sessions, 2 workers, best of %zu):\n", sessions,
              reps);
  std::printf("  untraced        %8.1f sessions/s\n", svc_untraced);
  std::printf("  tracer disabled %8.1f sessions/s (%.1f%% of untraced)\n",
              svc_disabled, 100.0 * svc_disabled / svc_untraced);
  std::printf("  tracer enabled  %8.1f sessions/s (%.1f%% of untraced, "
              "%zu spans)\n\n", svc_enabled,
              100.0 * svc_enabled / svc_untraced, spans_recorded);

  // ---- correctness gates -------------------------------------------------
  bool ok = true;
  if (disabled_tracer.records().size() != 0 || disabled_tracer.dropped() != 0) {
    std::printf("FAIL: disabled tracer recorded spans\n");
    ok = false;
  }
  std::set<std::string> names;
  for (const auto& rec : enabled_tracer.records()) names.insert(rec.name);
  if (obs::kTraceCompiled) {
    for (const char* expected :
         {"pool.job", "pool.queue_wait", "pool.verify", "cache.acquire",
          "session.run", "session.attempt"}) {
      if (names.count(expected) == 0) {
        std::printf("FAIL: enabled run lacks %s spans\n", expected);
        ok = false;
      }
    }
  } else if (!names.empty()) {
    std::printf("FAIL: PUFATT_TRACE=0 build still recorded spans\n");
    ok = false;
  }

  // ---- 2. engine level ---------------------------------------------------
  const std::size_t evals = smoke ? 2048 : 32768;
  const std::size_t batch = 256;
  const auto circuit = netlist::build_alu_puf_circuit(32);
  const variation::ChipInstance chip(circuit.net, {}, {}, 27182);
  const auto delays = chip.nominal_delays(variation::Environment::nominal());
  const timingsim::TimingSimulator sim(circuit.net);
  support::Xoshiro256pp rng(0xB0B);
  std::vector<support::BitVector> challenges;
  challenges.reserve(evals);
  for (std::size_t i = 0; i < evals; ++i) {
    challenges.push_back(
        support::BitVector::random(circuit.net.num_inputs(), rng));
  }

  timingsim::BatchState states;
  std::vector<std::uint8_t> lanes;
  double sink = 0.0;
  const auto engine_pass = [&] {
    const auto t0 = Clock::now();
    for (std::size_t base = 0; base < evals; base += batch) {
      const std::size_t n = std::min<std::size_t>(batch, evals - base);
      timingsim::pack_input_lanes(challenges.data() + base, n,
                                  circuit.net.num_inputs(), lanes);
      sim.run_batch(lanes.data(), n, delays, states);
      sink += states.time_ps(circuit.race0[0], 0);
    }
    return static_cast<double>(evals) / seconds_since(t0);
  };

  obs::set_global_trace(false);
  const double eng_untraced = best_of(reps, engine_pass);
  obs::global_tracer().clear();
  obs::global_registry().reset();
  obs::set_global_trace(true, 1.0);
  const double eng_traced = best_of(reps, engine_pass);
  obs::set_global_trace(false);

  const std::uint64_t sim_batches =
      obs::global_registry().counter("sim.batches").value();
  const std::uint64_t expected_batches =
      reps * ((evals + batch - 1) / batch);
  if (obs::kTraceCompiled && sim_batches != expected_batches) {
    std::printf("FAIL: sim.batches=%llu, expected %llu\n",
                static_cast<unsigned long long>(sim_batches),
                static_cast<unsigned long long>(expected_batches));
    ok = false;
  }

  std::printf("engine (run_batch of %zu, %zu evals, best of %zu):\n", batch,
              evals, reps);
  std::printf("  untraced %10.0f evals/s\n", eng_untraced);
  std::printf("  traced   %10.0f evals/s (%.1f%% of untraced)  [sink %g]\n\n",
              eng_traced, 100.0 * eng_traced / eng_untraced, sink);

  // The acceptance bar applies to the real measurement, not the smoke run.
  if (!smoke && svc_disabled < 0.98 * svc_untraced) {
    std::printf("FAIL: tracer-disabled throughput %.1f below 98%% of "
                "untraced %.1f\n", svc_disabled, svc_untraced);
    ok = false;
  }

  write_json(smoke, sessions, svc_untraced, svc_disabled, svc_enabled, evals,
             batch, eng_untraced, eng_traced, spans_recorded, ok);
  std::printf("[%s] wrote BENCH_obs_overhead.json\n", ok ? "ok" : "FAIL");
  return ok ? 0 : 1;
}
