// False-negative-rate study (paper Section 4.1, in text): "considering the
// error correction mechanism used, our PUF exhibits only a false negative
// rate of 1.53e-07".
//
// The paper's number corresponds to a binomial tail with correction radius
// t = 16 at its measured bit-error rate; a binary [32,6,16] code guarantees
// only t = 7 (see DESIGN.md section 6).  This bench reports:
//   1. our measured verifier-vs-device bit error rate,
//   2. analytic binomial FNR for t = 7 and the paper's t = 16 reading,
//   3. Monte-Carlo reconstruction failure of the real pipeline with
//      hard-decision and soft-decision (race-margin) decoding.
#include <cmath>
#include <cstdio>

#include "alupuf/pipeline.hpp"
#include "ecc/helper_data.hpp"
#include "ecc/reed_muller.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace pufatt;

namespace {

double log_choose(int n, int k) {
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

/// P[Binomial(n, p) > t].
double binomial_tail(int n, double p, int t) {
  double tail = 0.0;
  for (int k = t + 1; k <= n; ++k) {
    tail += std::exp(log_choose(n, k) + k * std::log(p) +
                     (n - k) * std::log1p(-p));
  }
  return tail;
}

}  // namespace

int main() {
  std::printf("=== False negative rate of the error-corrected PUF ===\n\n");

  const ecc::ReedMuller1 code(5);
  const ecc::SyndromeHelper helper(code);
  alupuf::AluPufConfig config;
  config.width = 32;
  const alupuf::AluPuf puf(config, 777);
  const alupuf::AluPufEmulator emu(32, puf.export_model());
  support::Xoshiro256pp rng(0xF42);

  // 1. measured single-sided BER: emulated reference vs physical response.
  const std::size_t trials = 30'000;
  std::uint64_t bit_errors = 0;
  std::uint64_t hard_fail = 0, soft_fail = 0;
  const auto env = variation::Environment::nominal();
  for (std::size_t t = 0; t < trials; ++t) {
    const auto challenge = support::BitVector::random(64, rng);
    const auto measured = puf.eval(challenge, env, rng);
    const auto reference = emu.eval(challenge);
    bit_errors += measured.hamming_distance(reference);

    const auto h = helper.generate(measured);
    const auto hard = helper.reproduce(reference, h);
    if (!hard || *hard != measured) ++hard_fail;
    const auto soft = helper.reproduce_soft(emu.eval_soft(challenge), h);
    if (!soft || *soft != measured) ++soft_fail;
  }
  const double ber =
      static_cast<double>(bit_errors) / (32.0 * static_cast<double>(trials));
  std::printf("measured verifier-vs-device BER: %.4f (paper intra-chip "
              "11.3%% is the two-sided rate)\n\n",
              ber);

  support::Table table({"model", "bit-error rate", "radius", "FNR / response"});
  table.add_row({"paper's implied reading", "0.113", "t=16",
                 support::Table::num(binomial_tail(32, 0.113, 16) * 1e7, 3) +
                     "e-07"});
  table.add_row({"paper reported", "-", "-", "1.53e-07"});
  table.add_row({"analytic, guaranteed t=7 @ paper BER", "0.113", "t=7",
                 support::Table::num(binomial_tail(32, 0.113, 7), 6)});
  table.add_row({"analytic, guaranteed t=7 @ our BER",
                 support::Table::num(ber, 4), "t=7",
                 support::Table::num(binomial_tail(32, ber, 7), 6)});
  table.add_row({"Monte-Carlo, hard ML decoding", support::Table::num(ber, 4),
                 "ML",
                 support::Table::num(
                     static_cast<double>(hard_fail) / trials, 6)});
  table.add_row({"Monte-Carlo, soft (race-margin) decoding",
                 support::Table::num(ber, 4), "soft ML",
                 soft_fail == 0
                     ? "< " + support::Table::num(1.0 / trials, 6)
                     : support::Table::num(
                           static_cast<double>(soft_fail) / trials, 6)});
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "reading: the paper's 1.53e-07 needs an effective radius ~16, which\n"
      "RM(1,5) only approaches with soft-decision decoding.  Our verifier\n"
      "uses the emulated race margins as reliabilities, driving the\n"
      "measured reconstruction failure rate to %s (hard ML alone: %.2e).\n",
      soft_fail == 0 ? "below measurement resolution" : "the value above",
      static_cast<double>(hard_fail) / trials);
  return 0;
}
