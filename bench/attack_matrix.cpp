// Adversary-lab attack matrix: every PufVariant row against every Attack
// column at increasing query budgets, run by the deterministic tournament
// (src/adversary/tournament.hpp).
//
// The matrix is the PR's regression surface for the paper's security
// claims, gated on three facts:
//   1. LR breaks the plain Arbiter PUF (test accuracy >= 0.95 at the max
//      budget — the Ruehrmair break the paper cites as motivation);
//   2. no attack exceeds 0.60 against the obfuscated ALU pipeline at the
//      max budget (the paper's response-obfuscation claim, with the replay
//      column measured as session acceptance — several fresh verifier
//      nonces, all of which the forged transcripts must pass — against the
//      real verifier);
//   3. the keyed-NLFSR front end degrades LR on the same arbiter chip to
//      <= 0.60 (challenge obfuscation as an independent defence axis).
// The Gao'17 leaked-enrollment-model probe is reported alongside but NOT
// gated — it measures a trust assumption (H must stay secret), not an
// attack the design claims to stop.
//
// Determinism claims checked every run: the matrix JSON is byte-identical
// across two runs at different thread counts, and a reduced ALU-backed
// sub-matrix is byte-identical across the scalar/SoA/bit-sliced timing
// engines (CRP harvesting rides eval_batch, so the exactness contract
// must hold end to end).
//
// Results go to stdout and BENCH_attack_matrix.json.  `--quick` shrinks
// budgets and training so the whole matrix fits in CI across sanitizer
// trees, with relaxed accuracy gates (small budgets legitimately learn
// less); the full run backs the acceptance numbers above.
#include <cstdio>
#include <cstring>
#include <string>

#include "adversary/tournament.hpp"
#include "support/table.hpp"

using namespace pufatt;
using namespace pufatt::adversary;

namespace {

struct Gate {
  std::string name;
  double value = 0.0;
  double bound = 0.0;
  bool upper = false;  ///< true: value must be <= bound
  bool pass() const { return upper ? value <= bound : value >= bound; }
};

TournamentConfig base_config(bool quick, std::size_t threads) {
  TournamentConfig config;
  if (quick) {
    config.budgets = {256, 1024};
    config.test_queries = 600;
    config.replay_rounds = 16;
  } else {
    config.budgets = {1000, 4000, 12000};
    config.test_queries = 2000;
    config.replay_rounds = 40;
  }
  config.threads = threads;
  config.seed = 0xA17AC4ULL;  // fixed matrix seed
  return config;
}

LabParams lab_params(bool quick) {
  LabParams params;
  if (quick) {
    params.logreg.epochs = 25;
    params.mlp.epochs = 15;
    params.cmaes.cmaes.max_generations = 80;
    params.cmaes.cmaes.patience = 20;
    params.cmaes.fitness_subsample = 2000;
  } else {
    params.logreg.epochs = 50;
    params.mlp.epochs = 30;
    params.cmaes.cmaes.max_generations = 160;
    params.cmaes.cmaes.patience = 32;
  }
  return params;
}

TournamentResult run_matrix(bool quick, std::size_t threads) {
  Tournament tournament(base_config(quick, threads));
  add_standard_lab(tournament, lab_params(quick));
  return tournament.run();
}

/// Reduced ALU-backed sub-matrix under an explicit engine: the part of the
/// lab where the timing kernel choice exists at all.
std::string engine_submatrix_json(bool quick, timingsim::BatchEngine engine) {
  TournamentConfig config = base_config(quick, /*threads=*/1);
  config.budgets = {config.budgets.front()};
  config.engine = engine;
  Tournament tournament(config);
  const AluVariantParams alu;  // width 32, bit 16
  tournament.add_variant(
      "alu-raw", [alu](std::uint64_t chip, timingsim::BatchEngine e) {
        AluVariantParams p = alu;
        p.engine = e;
        return make_alu_raw_variant(p, chip);
      });
  tournament.add_variant(
      "alu-obf", [alu](std::uint64_t chip, timingsim::BatchEngine e) {
        AluVariantParams p = alu;
        p.engine = e;
        return make_obfuscated_alu_variant(p, chip);
      });
  mlattack::LogRegParams lr = lab_params(quick).logreg;
  tournament.add_attack(std::make_shared<LogRegAttack>(lr));
  return matrix_json(tournament.run());
}

void write_json(const char* path, bool quick, const std::string& matrix,
                const std::vector<Gate>& gates, bool stable,
                bool engine_invariant, double leaked_acceptance) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"bench\": \"attack_matrix\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(f, "  \"byte_stable_across_runs\": %s,\n",
               stable ? "true" : "false");
  std::fprintf(f, "  \"engine_invariant\": %s,\n",
               engine_invariant ? "true" : "false");
  std::fprintf(f, "  \"leaked_model_acceptance\": %.6f,\n", leaked_acceptance);
  std::fprintf(f, "  \"gates\": [\n");
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"value\": %.6f, \"bound\": %.6f, "
                 "\"op\": \"%s\", \"pass\": %s}%s\n",
                 g.name.c_str(), g.value, g.bound, g.upper ? "<=" : ">=",
                 g.pass() ? "true" : "false",
                 i + 1 < gates.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // The byte-stable matrix itself (already JSON; indentation differs from
  // the envelope but parsers do not care).
  std::fprintf(f, "  \"matrix\": %s", matrix.c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0 ||
        std::strcmp(argv[i], "--smoke") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 64;
    }
  }
  std::printf("=== Adversary lab: %s attack matrix ===\n\n",
              quick ? "quick" : "full");

  // Determinism claim 1: two runs, different thread counts, same bytes.
  const auto result = run_matrix(quick, /*threads=*/1);
  const std::string json = matrix_json(result);
  const std::string json_rerun = matrix_json(run_matrix(quick, /*threads=*/4));
  const bool stable = json == json_rerun;

  // Determinism claim 2: the timing kernel never moves a matrix byte.
  const auto scalar =
      engine_submatrix_json(quick, timingsim::BatchEngine::kScalar);
  const bool engine_invariant =
      scalar == engine_submatrix_json(quick, timingsim::BatchEngine::kBatch) &&
      scalar == engine_submatrix_json(quick, timingsim::BatchEngine::kBitslice);

  // Trust-assumption probe (reported, not gated): an attacker holding the
  // verifier's enrollment model forges error-free transcripts.
  double leaked_acceptance = 0.0;
  {
    const auto pipeline = make_obfuscated_alu_variant(
        {}, support::SplitMix64::mix(result.config.seed ^ 0xC41B2E8D5F07A696ULL));
    support::Xoshiro256pp rng(result.config.seed);
    leaked_acceptance =
        pipeline->attestation_surface()->leaked_model_acceptance(20, rng);
  }

  // ---- stdout report -------------------------------------------------------
  support::Table table({"variant", "attack", "budget", "queries", "train acc",
                        "test acc / replay"});
  for (const Cell& cell : result.cells) {
    const AttackReport& r = cell.reports.back();
    table.add_row({cell.variant, cell.attack, std::to_string(r.budget),
                   std::to_string(r.queries_used),
                   support::Table::num(r.train_accuracy, 3),
                   support::Table::num(r.test_accuracy, 3) +
                       (r.replay_acceptance >= 0.0 ? " (replay)" : "")});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("leaked enrollment model H -> replay acceptance %.2f "
              "(trust assumption, not gated)\n\n",
              leaked_acceptance);

  // ---- gates ---------------------------------------------------------------
  std::vector<Gate> gates;
  const auto* lr_arbiter = result.find("arbiter", "lr");
  gates.push_back(Gate{"lr_breaks_arbiter",
                       lr_arbiter->reports.back().test_accuracy,
                       quick ? 0.80 : 0.95, /*upper=*/false});
  for (const char* attack : {"lr", "mlp", "cmaes", "replay"}) {
    const auto* cell = result.find("alu-obf", attack);
    gates.push_back(Gate{std::string("obfuscated_resists_") + attack,
                         cell->reports.back().test_accuracy,
                         quick ? 0.68 : 0.60, /*upper=*/true});
  }
  const auto* nlfsr = result.find("nlfsr-arbiter", "lr");
  gates.push_back(Gate{"nlfsr_degrades_lr",
                       nlfsr->reports.back().test_accuracy,
                       quick ? 0.68 : 0.60, /*upper=*/true});

  bool ok = stable && engine_invariant;
  for (const Gate& g : gates) {
    std::printf("gate %-26s %.3f %s %.2f  %s\n", g.name.c_str(), g.value,
                g.upper ? "<=" : ">=", g.bound, g.pass() ? "PASS" : "FAIL");
    ok = ok && g.pass();
  }
  std::printf("byte-stable across runs: %s | engine-invariant: %s\n",
              stable ? "yes" : "NO", engine_invariant ? "yes" : "NO");

  write_json("BENCH_attack_matrix.json", quick, json, gates, stable,
             engine_invariant, leaked_acceptance);
  return ok ? 0 : 1;
}
