// Model-validation bench: compares the fast floating-mode settling engine
// (what every PUF experiment uses) against the event-driven inertial-delay
// simulator on the actual raced adder circuit.
//
// Reported: per-bit race-outcome agreement, settle-time gap distribution
// and glitch activity — the evidence that the fast engine's approximation
// does not distort the PUF statistics.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "netlist/builder.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "timingsim/bitslice.hpp"
#include "timingsim/event_sim.hpp"
#include "timingsim/timing_sim.hpp"
#include "variation/chip.hpp"

using namespace pufatt;
using namespace pufatt::timingsim;

int main() {
  std::printf("=== Engine cross-check: floating-mode vs event-driven ===\n\n");

  const auto circuit = netlist::build_alu_puf_circuit(32);
  const variation::TechnologyParams tech;
  const variation::QuadTreeConfig qt;
  const variation::ChipInstance chip(circuit.net, tech, qt, 31415);
  const auto delays = chip.nominal_delays(variation::Environment::nominal());

  const TimingSimulator fast(circuit.net);
  const EventSimulator slow(circuit.net);
  support::Xoshiro256pp rng(0xC0C);

  const std::size_t challenges = 1500;
  std::size_t race_agree = 0, race_total = 0;
  std::size_t strong_agree = 0, strong_total = 0;
  support::OnlineStats settle_gap, glitches;
  std::vector<SignalState> fast_states;
  const std::vector<bool> zeros(circuit.net.num_inputs(), false);

  std::vector<support::BitVector> all_challenges;
  all_challenges.reserve(challenges);

  std::size_t raced_bits = 0, silent_bits = 0;
  for (std::size_t c = 0; c < challenges; ++c) {
    std::vector<bool> in;
    for (std::size_t i = 0; i < circuit.net.num_inputs(); ++i) {
      in.push_back(rng.bernoulli(0.5));
    }
    support::BitVector bits(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) bits.set(i, in[i]);
    all_challenges.push_back(std::move(bits));
    fast.run(in, delays, fast_states);
    const auto slow_states = slow.run(zeros, in, delays);

    for (std::size_t bit = 0; bit < circuit.width; ++bit) {
      const auto g0 = circuit.race0[bit];
      const auto g1 = circuit.race1[bit];
      // A transition-latching arbiter only races bits where both ALUs'
      // outputs actually switch; level-identical bits produce no event to
      // race (the fast engine's "determination time" has no physical
      // counterpart there).  Compare only genuine races.
      if (slow_states[g0].transitions == 0 ||
          slow_states[g1].transitions == 0) {
        ++silent_bits;
        continue;
      }
      ++raced_bits;
      const double fast_delta =
          fast_states[g1].time_ps - fast_states[g0].time_ps;
      const double slow_delta =
          slow_states[g1].settle_ps - slow_states[g0].settle_ps;
      const bool agree = (fast_delta > 0) == (slow_delta > 0);
      if (agree) ++race_agree;
      ++race_total;
      const double margin = std::min(std::abs(fast_delta),
                                     std::abs(slow_delta));
      if (margin > 5.0) {
        ++strong_total;
        if (agree) ++strong_agree;
      }
      settle_gap.add(std::abs(fast_states[g0].time_ps -
                              slow_states[g0].settle_ps));
      glitches.add(static_cast<double>(slow_states[g0].transitions));
    }
  }

  // Batched-vs-scalar lane: the SoA batch kernel must be *bit-identical*
  // to the scalar floating-mode engine on every net of every challenge —
  // zero divergence, not statistical agreement.
  std::size_t batch_divergence = 0;
  {
    const std::size_t chunk = 256;
    BatchState batch_states;
    std::vector<std::uint8_t> lanes;
    for (std::size_t base = 0; base < challenges; base += chunk) {
      const std::size_t n = std::min(chunk, challenges - base);
      pack_input_lanes(all_challenges.data() + base, n,
                       circuit.net.num_inputs(), lanes);
      fast.run_batch(lanes.data(), n, delays, batch_states);
      for (std::size_t b = 0; b < n; ++b) {
        fast.run(all_challenges[base + b], delays, fast_states);
        for (std::size_t g = 0; g < circuit.net.num_gates(); ++g) {
          const auto id = static_cast<netlist::GateId>(g);
          if (batch_states.value(id, b) != fast_states[g].value ||
              batch_states.time_ps(id, b) != fast_states[g].time_ps) {
            ++batch_divergence;
          }
        }
      }
    }
  }

  // Bit-sliced lanes: the 64-evaluations-per-word engine faces the same
  // zero-divergence bar in both of its modes.  Shared-delay mode (the
  // emulation path, with its time-representation shortcuts and full-adder
  // fusion) is compared against the scalar engine net for net; lane-delay
  // mode (the noisy device path) against the SoA batch kernel on one
  // jittered per-lane delay realization — which the lane above already
  // pinned to the scalar engine.
  std::size_t slice_divergence = 0;
  {
    const BitSliceEngine slice_shared(fast.compiled(), delays);
    BitSliceState bs;
    std::vector<std::uint64_t> words;
    pack_input_words(all_challenges.data(), challenges,
                     circuit.net.num_inputs(), words);
    slice_shared.run(words.data(), challenges, bs);
    for (std::size_t b = 0; b < challenges; ++b) {
      fast.run(all_challenges[b], delays, fast_states);
      for (std::size_t g = 0; g < circuit.net.num_gates(); ++g) {
        const auto id = static_cast<netlist::GateId>(g);
        if (slice_shared.value(bs, id, b) != fast_states[g].value ||
            slice_shared.time_ps(bs, id, b) != fast_states[g].time_ps) {
          ++slice_divergence;
        }
      }
    }

    const BitSliceEngine slice_lane(fast.compiled());
    const std::size_t gates = circuit.net.num_gates();
    BatchDelays lane_delays;
    lane_delays.batch = challenges;
    lane_delays.rise_ps.resize(gates * challenges);
    lane_delays.fall_ps.resize(gates * challenges);
    for (std::size_t g = 0; g < gates; ++g) {
      for (std::size_t b = 0; b < challenges; ++b) {
        const double jitter = 1.0 + 0.01 * rng.uniform();
        lane_delays.rise_ps[g * challenges + b] = delays.rise_ps[g] * jitter;
        lane_delays.fall_ps[g * challenges + b] = delays.fall_ps[g] * jitter;
      }
    }
    BatchState batch_states;
    std::vector<std::uint8_t> lanes;
    pack_input_lanes(all_challenges.data(), challenges,
                     circuit.net.num_inputs(), lanes);
    fast.run_batch(lanes.data(), challenges, lane_delays, batch_states);
    slice_lane.run(words.data(), challenges, lane_delays, bs);
    for (std::size_t b = 0; b < challenges; ++b) {
      for (std::size_t g = 0; g < gates; ++g) {
        const auto id = static_cast<netlist::GateId>(g);
        if (slice_lane.value(bs, id, b) != batch_states.value(id, b) ||
            slice_lane.time_ps(bs, id, b) != batch_states.time_ps(id, b)) {
          ++slice_divergence;
        }
      }
    }
  }

  support::Table table({"metric", "value"});
  table.add_row({"batched-vs-scalar diverging nets",
                 std::to_string(batch_divergence)});
  table.add_row({"bit-sliced diverging nets (both modes)",
                 std::to_string(slice_divergence)});
  table.add_row({"bits with a genuine race",
                 support::Table::num(
                     100.0 * raced_bits / (raced_bits + silent_bits), 1) +
                     "%"});
  table.add_row({"race-outcome agreement (all)",
                 support::Table::num(100.0 * race_agree / race_total, 2) + "%"});
  table.add_row({"race-outcome agreement (margin > 5 ps)",
                 support::Table::num(100.0 * strong_agree / strong_total, 2) +
                     "%"});
  table.add_row({"|settle-time gap| mean (ps)",
                 support::Table::num(settle_gap.mean(), 2)});
  table.add_row({"|settle-time gap| max (ps)",
                 support::Table::num(settle_gap.max(), 2)});
  table.add_row({"sum-bit transitions per eval (mean)",
                 support::Table::num(glitches.mean(), 2)});
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "reading: above a 5 ps margin the engines agree on ~99%% of race\n"
      "outcomes; the remaining disagreements sit at small margins where\n"
      "the physical arbiter is metastable anyway (the noise model covers\n"
      "them).  Floating mode charges the full determination chain, so its\n"
      "settle times upper-bound the event engine's — conservative for the\n"
      "overclocking analysis.\n");
  return (strong_agree * 100 >= strong_total * 90 && batch_divergence == 0 &&
          slice_divergence == 0)
             ? 0
             : 1;
}
