// Network attestation front end: goodput, backpressure and connection
// scale over real sockets.
//
// Four experiments against one enrolled SimFleet, all driving the
// AttestationServer through TCP loopback with the frame protocol:
//
//   1. connection sweep — fixed worker count, rising concurrent
//      connections over a fixed job budget; goodput must rise to a
//      plateau (the verify pool is the bottleneck, and the bounded queue
//      plus busy-shedding must keep it there instead of collapsing).
//   2. worker sweep — fixed connection count, rising verify workers.
//   3. overload cell — a deliberately tiny pool (1 worker, queue 1) under
//      many connections: measures the wire-level shed rate (busy replies /
//      replies), and requires that clients obeying the retry-after hints
//      still drive *every* job to a verdict.
//   4. connection-scale cell (full mode) — >= 10k concurrent connections.
//      The load generator runs in a forked child process so each side of
//      the socket gets its own fd budget (exactly the two-process shape of
//      a real deployment), shipping per-job verdicts back over a pipe.
//   5. tracing overhead A/B — the same cell with no tracer vs with a
//      tracer attached but disabled (hooks compiled in, sampler off: the
//      always-on production configuration).  Best-of-N goodput each way;
//      the full-mode claim gate is <= 2% goodput cost.
//   6. stats-under-load cell — a concurrent poller hammers the
//      StatsRequest admin frame for the whole cell; the claim is zero
//      verdict divergence with stats actually served mid-load.
//
// Verdict parity is the correctness spine: every cell's jobs are the same
// derivation (LoadGenerator::job_for — device j%devices, seeds affine in
// j), so one in-process VerifierPool baseline over the longest job list
// provides ground truth for all of them, and any wire verdict differing
// from its in-process twin (outcome, status, attempt count, or bit-exact
// simulated time) counts as divergence.  The acceptance claim is zero.
//
// Results go to stdout and BENCH_net_throughput.json (stable schema; bump
// schema_version on any field change).  `--smoke` runs a tiny sweep with a
// 3-device fleet as the ctest smoke labeled 'bench'.
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/fleet.hpp"
#include "net/frame.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/trace.hpp"
#include "service/emulator_cache.hpp"
#include "service/verifier_pool.hpp"
#include "support/table.hpp"

using namespace pufatt;

namespace {

// --- in-process ground truth ------------------------------------------------

struct BaselineVerdict {
  service::JobOutcome outcome = service::JobOutcome::kUnknownDevice;
  core::SessionStatus status = core::SessionStatus::kTimeout;
  std::uint32_t attempts = 0;
  double total_us = 0.0;
};

std::vector<BaselineVerdict> run_baseline(const net::SimFleet& fleet,
                                          service::EmulatorCache& cache,
                                          std::size_t jobs, double* wall_s) {
  net::LoadGenConfig derivation;
  derivation.devices = fleet.size();

  service::PoolConfig config;
  config.workers = 4;
  config.queue_capacity = 256;

  std::mutex mutex;
  std::vector<BaselineVerdict> verdicts(jobs);
  service::VerifierPool pool(
      cache, config, [&](const service::JobResult& result) {
        std::lock_guard<std::mutex> lock(mutex);
        auto& v = verdicts[result.tag];
        v.outcome = result.outcome;
        v.status = result.session.status;
        v.attempts = static_cast<std::uint32_t>(result.session.attempts.size());
        v.total_us = result.session.total_us;
      });

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t j = 0; j < jobs; ++j) {
    const auto request = net::LoadGenerator::job_for(derivation, j);
    service::AttestationJob job;
    job.device_id = request.device_id;
    job.responder = fleet.responder_for(request.device_id, request.rng_seed);
    job.channel_seed = request.channel_seed;
    job.rng_seed = request.rng_seed;
    job.tag = j;
    // Closed loop: every job must run, backpressure just paces us.
    while (!pool.submit(job).enqueued()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  pool.drain();
  *wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
  return verdicts;
}

std::size_t count_divergence(const net::LoadGenReport& report,
                             const std::vector<BaselineVerdict>& baseline) {
  std::size_t divergence = 0;
  for (std::size_t j = 0; j < report.by_job.size(); ++j) {
    const auto& wire = report.by_job[j];
    if (!wire.completed) {
      ++divergence;  // a lost verdict is the worst divergence
      continue;
    }
    const auto& truth = baseline[j];
    if (wire.reply.outcome != truth.outcome ||
        wire.reply.status != truth.status ||
        wire.reply.attempts != truth.attempts ||
        wire.reply.total_us != truth.total_us) {
      ++divergence;
    }
  }
  return divergence;
}

// --- one server + loadgen cell ----------------------------------------------

struct Cell {
  std::size_t connections = 0;
  std::size_t workers = 0;
  std::size_t queue = 0;
  std::size_t jobs = 0;
  net::LoadGenReport report;
  net::NetCounters server_counters;
  std::size_t divergence = 0;
  std::size_t stats_polls = 0;  ///< stats round trips during the cell

  double shed_rate() const {
    const double replies = static_cast<double>(report.verdicts) +
                           static_cast<double>(report.busy_replies);
    return replies > 0.0
               ? static_cast<double>(report.busy_replies) / replies
               : 0.0;
  }
};

/// Per-job verdict as shipped over the fork pipe (same-arch, same-process
/// image: raw struct bytes are fine).
struct PipedJob {
  std::uint8_t completed = 0;
  std::uint32_t outcome = 0;
  std::uint32_t status = 0;
  std::uint32_t attempts = 0;
  double total_us = 0.0;
  std::uint32_t busy_retries = 0;
};

struct PipedHeader {
  std::uint64_t jobs = 0;
  std::uint64_t verdicts = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t inconclusive = 0;
  std::uint64_t unknown_device = 0;
  std::uint64_t busy_replies = 0;
  std::uint64_t retries_exhausted = 0;
  std::uint64_t error_replies = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t decode_errors = 0;
  double wall_s = 0.0;
};

bool write_all(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t size) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::read(fd, p, size);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Runs the load generator in a forked child (own fd budget, own event
/// loop) and reassembles its report in the parent.  Returns false if the
/// child died or the pipe was cut short.
bool run_loadgen_forked(const net::LoadGenConfig& config,
                        net::LoadGenReport& out) {
  int fds[2];
  if (::pipe(fds) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return false;
  }
  if (pid == 0) {
    // Child: drive the fleet, ship the report, vanish.  _exit skips the
    // parent's static destructors (server threads etc. are not ours).
    ::close(fds[0]);
    net::LoadGenerator generator(config);
    const auto report = generator.run();
    PipedHeader header;
    header.jobs = report.jobs;
    header.verdicts = report.verdicts;
    header.accepted = report.accepted;
    header.rejected = report.rejected;
    header.inconclusive = report.inconclusive;
    header.unknown_device = report.unknown_device;
    header.busy_replies = report.busy_replies;
    header.retries_exhausted = report.retries_exhausted;
    header.error_replies = report.error_replies;
    header.connect_failures = report.connect_failures;
    header.disconnects = report.disconnects;
    header.decode_errors = report.decode_errors;
    header.wall_s = report.wall_s;
    bool ok = write_all(fds[1], &header, sizeof(header));
    for (std::size_t j = 0; ok && j < report.by_job.size(); ++j) {
      const auto& v = report.by_job[j];
      PipedJob piped;
      piped.completed = v.completed ? 1 : 0;
      piped.outcome = static_cast<std::uint32_t>(v.reply.outcome);
      piped.status = static_cast<std::uint32_t>(v.reply.status);
      piped.attempts = v.reply.attempts;
      piped.total_us = v.reply.total_us;
      piped.busy_retries = v.busy_retries;
      ok = write_all(fds[1], &piped, sizeof(piped));
    }
    ::close(fds[1]);
    ::_exit(ok ? 0 : 1);
  }

  ::close(fds[1]);
  PipedHeader header;
  bool ok = read_all(fds[0], &header, sizeof(header));
  if (ok) {
    out = net::LoadGenReport{};
    out.jobs = header.jobs;
    out.verdicts = header.verdicts;
    out.accepted = header.accepted;
    out.rejected = header.rejected;
    out.inconclusive = header.inconclusive;
    out.unknown_device = header.unknown_device;
    out.busy_replies = header.busy_replies;
    out.retries_exhausted = header.retries_exhausted;
    out.error_replies = header.error_replies;
    out.connect_failures = header.connect_failures;
    out.disconnects = header.disconnects;
    out.decode_errors = header.decode_errors;
    out.wall_s = header.wall_s;
    out.by_job.resize(header.jobs);
    for (std::size_t j = 0; ok && j < out.by_job.size(); ++j) {
      PipedJob piped;
      ok = read_all(fds[0], &piped, sizeof(piped));
      if (!ok) break;
      auto& v = out.by_job[j];
      v.completed = piped.completed != 0;
      v.reply.outcome = static_cast<service::JobOutcome>(piped.outcome);
      v.reply.status = static_cast<core::SessionStatus>(piped.status);
      v.reply.attempts = piped.attempts;
      v.reply.total_us = piped.total_us;
      v.busy_retries = piped.busy_retries;
    }
  }
  ::close(fds[0]);
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  return ok && WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
}

/// Hammers the stats admin frame over one dedicated connection until
/// stopped; counts successful round trips.
void poll_stats_until(const net::Endpoint& endpoint,
                      const std::atomic<bool>& stop, std::size_t* served) {
  try {
    net::Fd fd = net::connect_to(endpoint);
    net::FrameDecoder decoder;
    std::vector<net::FrameDecoder::Frame> frames;
    std::uint64_t tag = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto request = net::encode_stats_request(net::StatsRequest{tag});
      std::size_t sent = 0;
      while (sent < request.size()) {
        const ssize_t n = ::send(fd.get(), request.data() + sent,
                                 request.size() - sent, MSG_NOSIGNAL);
        if (n > 0) {
          sent += static_cast<std::size_t>(n);
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          return;
        }
      }
      bool got_reply = false;
      while (!got_reply) {
        std::uint8_t buf[8192];
        const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
        if (n > 0) {
          if (!decoder.feed(buf, static_cast<std::size_t>(n), frames)) return;
          for (const auto& frame : frames) {
            if (frame.type == net::MsgType::kStatsReply) got_reply = true;
          }
          frames.clear();
        } else if (n == 0) {
          return;
        } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (stop.load(std::memory_order_relaxed)) return;
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        } else if (errno != EINTR) {
          return;
        }
      }
      ++tag;
      ++*served;
    }
  } catch (const net::NetError&) {
  }
}

Cell run_cell(const net::SimFleet& fleet, service::EmulatorCache& cache,
              std::size_t workers, std::size_t queue,
              std::size_t connections, std::size_t jobs_per_connection,
              const std::vector<BaselineVerdict>& baseline, bool forked,
              double idle_timeout_ms = 0.0, obs::Tracer* tracer = nullptr,
              bool stats_poll = false) {
  Cell cell;
  cell.connections = connections;
  cell.workers = workers;
  cell.queue = queue;
  cell.jobs = connections * jobs_per_connection;

  net::ServerConfig server_config;
  server_config.endpoint = net::Endpoint::tcp("127.0.0.1", 0);
  server_config.pool.workers = workers;
  server_config.pool.queue_capacity = queue;
  if (idle_timeout_ms > 0.0) server_config.idle_timeout_ms = idle_timeout_ms;
  // The tracing-overhead A/B attaches a *disabled* tracer here: every hook
  // runs its enabled() check (the production always-on cost), records
  // nothing.
  server_config.tracer = tracer;
  server_config.pool.tracer = tracer;
  net::AttestationServer server(
      cache,
      [&fleet](const net::JobRequest& request) {
        return fleet.responder_for(request.device_id, request.rng_seed);
      },
      server_config);
  std::thread runner([&server] { server.run(); });

  std::atomic<bool> poll_stop{false};
  std::thread poller;
  if (stats_poll) {
    poller = std::thread([&server, &poll_stop, &cell] {
      poll_stats_until(server.bound_endpoint(), poll_stop,
                       &cell.stats_polls);
    });
  }

  net::LoadGenConfig config;
  config.endpoint = server.bound_endpoint();
  config.connections = connections;
  config.jobs_per_connection = jobs_per_connection;
  config.devices = fleet.size();
  config.max_busy_retries = 100000;  // obey hints for as long as it takes
  config.max_retry_wait_ms = 50.0;

  if (forked) {
    if (!run_loadgen_forked(config, cell.report)) {
      std::fprintf(stderr, "forked loadgen failed\n");
    }
  } else {
    net::LoadGenerator generator(config);
    cell.report = generator.run();
  }

  if (stats_poll) {
    poll_stop.store(true);
    poller.join();
  }
  server.stop();
  runner.join();
  cell.server_counters = server.counters();
  cell.divergence = count_divergence(cell.report, baseline);
  return cell;
}

// --- reporting --------------------------------------------------------------

void print_cells(const char* title, const std::vector<Cell>& cells) {
  std::printf("%s\n", title);
  support::Table table({"conns", "workers", "jobs", "wall s", "goodput/s",
                        "busy", "shed rate", "divergence"});
  for (const auto& c : cells) {
    table.add_row({std::to_string(c.connections), std::to_string(c.workers),
                   std::to_string(c.jobs),
                   support::Table::num(c.report.wall_s, 2),
                   support::Table::num(c.report.goodput_per_s(), 1),
                   std::to_string(c.report.busy_replies),
                   support::Table::num(c.shed_rate(), 3),
                   std::to_string(c.divergence)});
  }
  std::printf("%s\n", table.render().c_str());
}

void json_cell(FILE* f, const Cell& c, const char* trailer) {
  std::fprintf(
      f,
      "    {\"connections\": %zu, \"workers\": %zu, \"queue\": %zu, "
      "\"jobs\": %zu, \"wall_s\": %.4f, \"goodput_per_s\": %.2f, "
      "\"verdicts\": %llu, \"busy_replies\": %llu, \"shed_rate\": %.4f, "
      "\"retries_exhausted\": %llu, \"connect_failures\": %llu, "
      "\"disconnects\": %llu, \"idle_evicted\": %llu, "
      "\"writeq_shed\": %llu, \"verdict_divergence\": %zu}%s\n",
      c.connections, c.workers, c.queue, c.jobs, c.report.wall_s,
      c.report.goodput_per_s(),
      static_cast<unsigned long long>(c.report.verdicts),
      static_cast<unsigned long long>(c.report.busy_replies), c.shed_rate(),
      static_cast<unsigned long long>(c.report.retries_exhausted),
      static_cast<unsigned long long>(c.report.connect_failures),
      static_cast<unsigned long long>(c.report.disconnects),
      static_cast<unsigned long long>(c.server_counters.idle_evicted),
      static_cast<unsigned long long>(c.server_counters.writeq_shed),
      c.divergence, trailer);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("=== Network attestation front end: goodput & connection scale "
              "(%s) ===\n\n",
              smoke ? "smoke" : "full");

  const std::size_t devices = smoke ? 3 : 8;
  const std::size_t scale_connections = 10000;
  std::printf("enrolling %zu simulated devices...\n", devices);
  const net::SimFleet fleet(devices);
  service::EmulatorCache cache(fleet.registry(), fleet.code(), fleet.size());

  // One ground-truth run covers every cell: all cells execute a prefix of
  // the same job list.
  const std::size_t grid_jobs = smoke ? 16 : 512;
  const std::size_t max_jobs = smoke ? grid_jobs
                                     : std::max(grid_jobs, scale_connections);
  double baseline_wall_s = 0.0;
  const auto baseline =
      run_baseline(fleet, cache, max_jobs, &baseline_wall_s);
  std::printf("in-process baseline: %zu jobs in %.2f s (%.1f verdicts/s)\n\n",
              max_jobs, baseline_wall_s,
              static_cast<double>(max_jobs) / baseline_wall_s);

  // --- connection sweep -----------------------------------------------------
  const std::size_t sweep_workers = smoke ? 2 : 4;
  const std::vector<std::size_t> conn_counts =
      smoke ? std::vector<std::size_t>{1, 4}
            : std::vector<std::size_t>{1, 4, 16, 64, 256};
  // A production-shaped queue (not 2*workers): the sweep's question is how
  // goodput behaves as concurrency rises, so the queue is a constant and
  // only `connections` moves.  Queue-starved shedding is the worker sweep's
  // and the overload cell's job.
  const std::size_t sweep_queue = 64;
  std::vector<Cell> conn_cells;
  for (const std::size_t conns : conn_counts) {
    conn_cells.push_back(run_cell(fleet, cache, sweep_workers, sweep_queue,
                                  conns,
                                  std::max<std::size_t>(1, grid_jobs / conns),
                                  baseline, /*forked=*/false));
  }
  print_cells("connection sweep (fixed workers):", conn_cells);

  // --- worker sweep ---------------------------------------------------------
  const std::size_t sweep_conns = smoke ? 4 : 64;
  const std::vector<std::size_t> worker_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  std::vector<Cell> worker_cells;
  for (const std::size_t workers : worker_counts) {
    worker_cells.push_back(
        run_cell(fleet, cache, workers, 2 * workers, sweep_conns,
                 std::max<std::size_t>(1, grid_jobs / sweep_conns), baseline,
                 /*forked=*/false));
  }
  print_cells("worker sweep (fixed connections):", worker_cells);

  // --- overload: tiny pool, many clients ------------------------------------
  const std::size_t overload_conns = smoke ? 8 : 32;
  const auto overload =
      run_cell(fleet, cache, 1, 1, overload_conns,
               std::max<std::size_t>(2, grid_jobs / overload_conns / 2),
               baseline, /*forked=*/false);
  print_cells("overload (1 worker, queue 1):", {overload});

  // --- connection scale (full mode): forked loadgen, >= 10k conns -----------
  std::vector<Cell> scale_cells;
  if (!smoke) {
    std::printf("connection scale: %zu concurrent connections, loadgen "
                "forked into its own process...\n",
                scale_connections);
    std::fflush(stdout);
    // Idle timeout raised well above the connect-storm duration: with 10k
    // clients funneling through one accept queue, a straggler's SYN
    // retransmit can legally stall it for tens of seconds.
    scale_cells.push_back(run_cell(fleet, cache, 4, 512, scale_connections,
                                   1, baseline, /*forked=*/true,
                                   /*idle_timeout_ms=*/120'000.0));
    print_cells("connection scale:", scale_cells);
  }

  // --- tracing overhead A/B: no tracer vs disabled tracer -------------------
  // Hooks are compiled in either way (PUFATT_TRACE governs that at build
  // time); the question here is what the always-on production config — a
  // tracer attached, sampler off — costs over no tracer at all.  Best of
  // N runs each way to push scheduling noise below the 2% gate.
  const std::size_t ab_rounds = smoke ? 1 : 3;
  const std::size_t ab_conns = smoke ? 4 : 16;
  const std::size_t ab_jobs_per_conn =
      std::max<std::size_t>(1, grid_jobs / ab_conns);
  obs::Tracer disabled_tracer;  // never enabled
  Cell trace_off_cell, trace_disabled_cell;
  double best_plain = 0.0, best_disabled = 0.0;
  for (std::size_t round = 0; round < ab_rounds; ++round) {
    auto plain = run_cell(fleet, cache, sweep_workers, sweep_queue, ab_conns,
                          ab_jobs_per_conn, baseline, /*forked=*/false);
    auto disabled = run_cell(fleet, cache, sweep_workers, sweep_queue,
                             ab_conns, ab_jobs_per_conn, baseline,
                             /*forked=*/false, /*idle_timeout_ms=*/0.0,
                             &disabled_tracer);
    if (plain.report.goodput_per_s() > best_plain) {
      best_plain = plain.report.goodput_per_s();
      trace_off_cell = plain;
    }
    if (disabled.report.goodput_per_s() > best_disabled) {
      best_disabled = disabled.report.goodput_per_s();
      trace_disabled_cell = disabled;
    }
  }
  const double trace_overhead =
      best_plain > 0.0 ? std::max(0.0, 1.0 - best_disabled / best_plain) : 0.0;
  print_cells("tracing overhead A/B (no tracer, then disabled tracer):",
              {trace_off_cell, trace_disabled_cell});
  std::printf("tracing disabled overhead: %.2f%% goodput "
              "(%.1f/s -> %.1f/s, best of %zu)\n\n",
              100.0 * trace_overhead, best_plain, best_disabled, ab_rounds);

  // --- stats frames served mid-load ------------------------------------------
  const auto stats_cell =
      run_cell(fleet, cache, sweep_workers, sweep_queue, ab_conns,
               ab_jobs_per_conn, baseline, /*forked=*/false,
               /*idle_timeout_ms=*/0.0, /*tracer=*/nullptr,
               /*stats_poll=*/true);
  print_cells("stats polled concurrently with load:", {stats_cell});
  std::printf("stats served mid-load: %zu round trips "
              "(server counted %llu)\n\n",
              stats_cell.stats_polls,
              static_cast<unsigned long long>(
                  stats_cell.server_counters.stats_served));

  // --- claims ---------------------------------------------------------------
  std::size_t total_divergence = 0;
  std::uint64_t total_verdicts = 0;
  std::size_t total_jobs = 0;
  double best_goodput = 0.0;
  for (const auto* cells : {&conn_cells, &worker_cells, &scale_cells}) {
    for (const auto& c : *cells) {
      total_divergence += c.divergence;
      total_verdicts += c.report.verdicts;
      total_jobs += c.jobs;
      best_goodput = std::max(best_goodput, c.report.goodput_per_s());
    }
  }
  const Cell* extra_cells[] = {&overload, &trace_off_cell,
                               &trace_disabled_cell, &stats_cell};
  for (const Cell* extra : extra_cells) {
    total_divergence += extra->divergence;
    total_verdicts += extra->report.verdicts;
    total_jobs += extra->jobs;
  }

  const bool parity_ok = total_divergence == 0;
  const bool complete_ok = total_verdicts == total_jobs;
  // Plateau, not collapse: peak concurrency must hold most of the best
  // goodput the sweep found (the pool is the intended bottleneck).
  const double top_goodput = conn_cells.back().report.goodput_per_s();
  const double sweep_best =
      std::max_element(conn_cells.begin(), conn_cells.end(),
                       [](const Cell& a, const Cell& b) {
                         return a.report.goodput_per_s() <
                                b.report.goodput_per_s();
                       })
          ->report.goodput_per_s();
  const bool plateau_ok = top_goodput >= (smoke ? 0.2 : 0.5) * sweep_best;
  const bool overload_ok = overload.report.busy_replies > 0 &&
                           overload.report.verdicts == overload.jobs &&
                           overload.report.retries_exhausted == 0;
  const bool scale_ok =
      smoke || (!scale_cells.empty() &&
                scale_cells.front().connections >= 10000 &&
                scale_cells.front().report.verdicts ==
                    scale_cells.front().jobs &&
                scale_cells.front().report.connect_failures == 0 &&
                scale_cells.front().divergence == 0);
  // Smoke cells are too short to resolve 2%; report there, gate in full.
  const bool trace_overhead_ok = smoke || trace_overhead <= 0.02;
  const bool stats_ok = stats_cell.divergence == 0 &&
                        stats_cell.report.verdicts == stats_cell.jobs &&
                        stats_cell.stats_polls > 0 &&
                        stats_cell.server_counters.stats_served >=
                            stats_cell.stats_polls;

  FILE* f = std::fopen("BENCH_net_throughput.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema_version\": 2,\n");
    std::fprintf(f, "  \"bench\": \"net_throughput\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f,
                 "  \"workload\": {\"devices\": %zu, \"grid_jobs\": %zu, "
                 "\"transport\": \"tcp-loopback\"},\n",
                 devices, grid_jobs);
    std::fprintf(f, "  \"baseline\": {\"jobs\": %zu, \"wall_s\": %.4f},\n",
                 max_jobs, baseline_wall_s);
    std::fprintf(f, "  \"connection_sweep\": [\n");
    for (std::size_t i = 0; i < conn_cells.size(); ++i) {
      json_cell(f, conn_cells[i], i + 1 < conn_cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"worker_sweep\": [\n");
    for (std::size_t i = 0; i < worker_cells.size(); ++i) {
      json_cell(f, worker_cells[i], i + 1 < worker_cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"overload\": [\n");
    json_cell(f, overload, "");
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"connection_scale\": [\n");
    for (std::size_t i = 0; i < scale_cells.size(); ++i) {
      json_cell(f, scale_cells[i], i + 1 < scale_cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"tracing_overhead\": {\"rounds\": %zu, "
                 "\"goodput_no_tracer\": %.2f, "
                 "\"goodput_disabled_tracer\": %.2f, \"overhead\": %.4f},\n",
                 ab_rounds, best_plain, best_disabled, trace_overhead);
    std::fprintf(f, "  \"stats_under_load\": [\n");
    json_cell(f, stats_cell, "");
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"stats_polls\": {\"round_trips\": %zu, \"served\": %llu},\n",
                 stats_cell.stats_polls,
                 static_cast<unsigned long long>(
                     stats_cell.server_counters.stats_served));
    std::fprintf(
        f,
        "  \"claims\": {\"parity_ok\": %s, \"complete_ok\": %s, "
        "\"plateau_ok\": %s, \"overload_ok\": %s, \"scale_ok\": %s, "
        "\"trace_overhead_ok\": %s, \"stats_ok\": %s}\n",
        parity_ok ? "true" : "false", complete_ok ? "true" : "false",
        plateau_ok ? "true" : "false", overload_ok ? "true" : "false",
        scale_ok ? "true" : "false", trace_overhead_ok ? "true" : "false",
        stats_ok ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_net_throughput.json\n");
  }

  std::printf("\nclaims:\n");
  std::printf("  [%s] verdict parity: %zu wire jobs, %zu divergences vs "
              "in-process baseline\n",
              parity_ok ? "ok" : "FAIL", total_jobs, total_divergence);
  std::printf("  [%s] completeness: %llu/%zu jobs reached a verdict\n",
              complete_ok ? "ok" : "FAIL",
              static_cast<unsigned long long>(total_verdicts), total_jobs);
  std::printf("  [%s] goodput plateau: %.1f/s at %zu conns vs %.1f/s best\n",
              plateau_ok ? "ok" : "FAIL", top_goodput,
              conn_cells.back().connections, sweep_best);
  std::printf("  [%s] overload sheds via busy+hint: %llu busy replies, "
              "shed rate %.3f, all %zu jobs still served\n",
              overload_ok ? "ok" : "FAIL",
              static_cast<unsigned long long>(overload.report.busy_replies),
              overload.shed_rate(), overload.jobs);
  if (!smoke) {
    std::printf("  [%s] connection scale: %zu concurrent connections, "
                "%llu/%zu verdicts, %llu connect failures\n",
                scale_ok ? "ok" : "FAIL", scale_cells.front().connections,
                static_cast<unsigned long long>(
                    scale_cells.front().report.verdicts),
                scale_cells.front().jobs,
                static_cast<unsigned long long>(
                    scale_cells.front().report.connect_failures));
  }
  std::printf("  [%s] tracing disabled costs <= 2%% goodput: %.2f%%%s\n",
              trace_overhead_ok ? "ok" : "FAIL", 100.0 * trace_overhead,
              smoke ? " (reported only in smoke)" : "");
  std::printf("  [%s] stats served mid-load with zero divergence: "
              "%zu polls, %zu divergences\n",
              stats_ok ? "ok" : "FAIL", stats_cell.stats_polls,
              stats_cell.divergence);
  return parity_ok && complete_ok && plateau_ok && overload_ok && scale_ok &&
                 trace_overhead_ok && stats_ok
             ? 0
             : 1;
}
