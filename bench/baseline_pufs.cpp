// Baseline comparison (paper Section 4.1): the ALU PUF's statistics are
// "comparable to other existing PUF designs", citing the Feed-Forward
// Arbiter PUF at 38% inter-chip and 9.8% intra-chip HD.
#include <cstdio>

#include "alupuf/alu_puf.hpp"
#include "alupuf/arbiter_puf.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace pufatt;
using support::BitVector;

namespace {

struct HdStats {
  double inter_pct = 0.0;
  double intra_pct = 0.0;
};

template <typename EvalA, typename EvalB, typename EvalNoisy>
HdStats measure(std::size_t challenge_bits, std::size_t trials,
                support::Xoshiro256pp& rng, EvalA&& a, EvalB&& b,
                EvalNoisy&& noisy) {
  std::size_t inter = 0, intra = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto c = BitVector::random(challenge_bits, rng);
    if (a(c) != b(c)) ++inter;
    if (noisy(c) != noisy(c)) ++intra;
  }
  return HdStats{100.0 * static_cast<double>(inter) / trials,
                 100.0 * static_cast<double>(intra) / trials};
}

}  // namespace

int main() {
  std::printf("=== Baseline PUF comparison (per-bit HD rates) ===\n\n");
  support::Xoshiro256pp rng(0xBA5E);
  const std::size_t trials = 20'000;

  // --- ALU PUF (per-bit rates measured over all 32 response bits) --------
  alupuf::AluPufConfig config;
  config.width = 32;
  const alupuf::AluPuf alu_a(config, 1), alu_b(config, 2);
  const auto env = variation::Environment::nominal();
  std::size_t alu_inter = 0, alu_intra = 0, alu_bits = 0;
  for (std::size_t t = 0; t < trials / 8; ++t) {
    const auto c = BitVector::random(64, rng);
    alu_inter += alu_a.eval(c, env, rng).hamming_distance(alu_b.eval(c, env, rng));
    alu_intra += alu_a.eval(c, env, rng).hamming_distance(alu_a.eval(c, env, rng));
    alu_bits += 32;
  }

  // --- plain Arbiter PUF ---------------------------------------------------
  const alupuf::ArbiterPufParams arb_params{.stages = 64, .noise_sigma = 1.0};
  const alupuf::ArbiterPuf arb_a(arb_params, 11), arb_b(arb_params, 12);
  const auto arb = measure(
      64, trials, rng, [&](const BitVector& c) { return arb_a.eval_ideal(c); },
      [&](const BitVector& c) { return arb_b.eval_ideal(c); },
      [&](const BitVector& c) { return arb_a.eval(c, rng); });

  // --- Feed-Forward Arbiter PUF ---------------------------------------------
  alupuf::FeedForwardParams ff_params;
  ff_params.noise_sigma = 1.2;
  const alupuf::FeedForwardArbiterPuf ff_a(ff_params, 21), ff_b(ff_params, 22);
  const auto ff = measure(
      64, trials, rng, [&](const BitVector& c) { return ff_a.eval_ideal(c); },
      [&](const BitVector& c) { return ff_b.eval_ideal(c); },
      [&](const BitVector& c) { return ff_a.eval(c, rng); });

  support::Table table(
      {"design", "inter-chip %", "intra-chip %", "paper reference"});
  table.add_row({"ALU PUF (ours)",
                 support::Table::num(100.0 * alu_inter / alu_bits, 1),
                 support::Table::num(100.0 * alu_intra / alu_bits, 1),
                 "35.9% / 11.3% (paper sim)"});
  table.add_row({"Arbiter PUF",
                 support::Table::num(arb.inter_pct, 1),
                 support::Table::num(arb.intra_pct, 1), "~50% / low [7]"});
  table.add_row({"FF-Arbiter PUF",
                 support::Table::num(ff.inter_pct, 1),
                 support::Table::num(ff.intra_pct, 1), "38% / 9.8% [17]"});
  std::printf("%s\n", table.render().c_str());

  std::printf("shape check: ALU PUF statistics comparable to the cited "
              "delay PUFs: %s\n",
              (100.0 * alu_intra / alu_bits) < 20.0 &&
                      (100.0 * alu_inter / alu_bits) > 25.0
                  ? "YES"
                  : "NO");
  return 0;
}
