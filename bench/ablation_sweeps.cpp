// Design-choice ablations the paper leaves implicit:
//
//  1. Checksum coverage: probability that k tampered words are detected as
//     a function of SWAT rounds (the classic 1-(1-k/N)^rounds curve, here
//     measured on the real engine).  Sets the rounds/attestation-time
//     trade-off a deployment must choose.
//  2. PUF width: inter/intra HD and worst-case settle time versus adder
//     width — why the paper picks 32 bits for ASIC and 16 for its FPGA.
//  3. PUF call interval: attestation time and transcript size versus the
//     puf_interval parameter (how tightly the checksum is bound to the
//     hardware).
#include <cmath>
#include <cstdio>

#include "alupuf/alu_puf.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "swat/checksum.hpp"
#include "swat/program.hpp"

using namespace pufatt;

namespace {

std::optional<std::uint32_t> stub_puf(const std::array<std::uint64_t, 8>& c) {
  std::uint64_t acc = 0x1234;
  for (const auto x : c) acc = support::SplitMix64::mix(acc ^ x);
  return static_cast<std::uint32_t>(acc);
}

}  // namespace

int main() {
  std::printf("=== Ablations: rounds, width, PUF interval ===\n\n");
  support::Xoshiro256pp rng(0xAB1A7E);

  // --- 1. coverage vs rounds ------------------------------------------------
  std::printf("1) single-word-malware detection rate vs SWAT rounds "
              "(1024-word region)\n\n");
  support::Table coverage({"rounds", "measured detection", "analytic 1-(1-1/N)^r",
                           "honest cycles"});
  for (const std::uint32_t rounds : {256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    swat::SwatParams params;
    params.rounds = rounds;
    params.puf_interval = 64;
    params.attest_words = 1024;
    std::vector<std::uint32_t> image(params.attest_words);
    for (auto& w : image) w = static_cast<std::uint32_t>(rng.next());
    const auto baseline = swat::compute_checksum(image, 77, params, stub_puf);
    int detected = 0;
    const int trials = 60;
    for (int t = 0; t < trials; ++t) {
      auto tampered = image;
      tampered[rng.uniform_u64(params.attest_words)] ^= 0x1000u;
      if (swat::compute_checksum(tampered, 77, params, stub_puf).state !=
          baseline.state) {
        ++detected;
      }
    }
    const double analytic =
        1.0 - std::pow(1.0 - 1.0 / params.attest_words, rounds);
    coverage.add_row({std::to_string(rounds),
                      support::Table::num(100.0 * detected / trials, 1) + "%",
                      support::Table::num(100.0 * analytic, 1) + "%",
                      std::to_string(swat::honest_cycle_estimate(params))});
  }
  std::printf("%s\n", coverage.render().c_str());

  // --- 2. PUF width sweep ------------------------------------------------------
  std::printf("2) inter/intra HD and T_ALU vs PUF width\n\n");
  support::Table width_table({"width", "inter %", "intra %", "T_ALU (ps)"});
  for (const std::size_t width : {8u, 16u, 24u, 32u, 48u}) {
    alupuf::AluPufConfig config;
    config.width = width;
    const alupuf::AluPuf a(config, 900), b(config, 901);
    const auto env = variation::Environment::nominal();
    std::size_t inter = 0, intra = 0, bits = 0;
    for (int t = 0; t < 600; ++t) {
      const auto c = support::BitVector::random(2 * width, rng);
      inter += a.eval(c, env, rng).hamming_distance(b.eval(c, env, rng));
      intra += a.eval(c, env, rng).hamming_distance(a.eval(c, env, rng));
      bits += width;
    }
    width_table.add_row(
        {std::to_string(width),
         support::Table::num(100.0 * inter / bits, 1),
         support::Table::num(100.0 * intra / bits, 1),
         support::Table::num(a.max_settle_ps(env), 0)});
  }
  std::printf("%s\n", width_table.render().c_str());

  // --- 3. PUF interval sweep -----------------------------------------------------
  std::printf("3) hardware binding vs cost: puf_interval sweep "
              "(2048 rounds)\n\n");
  support::Table interval_table(
      {"puf_interval", "PUF calls", "helper bytes", "honest cycles",
       "cycles vs no-PUF"});
  swat::SwatParams no_puf;
  no_puf.rounds = 2048;
  no_puf.puf_interval = 2048;
  no_puf.attest_words = 1024;
  const double base_cycles =
      static_cast<double>(swat::honest_cycle_estimate(no_puf));
  for (const std::uint32_t interval : {32u, 64u, 128u, 256u, 1024u}) {
    swat::SwatParams params;
    params.rounds = 2048;
    params.puf_interval = interval;
    params.attest_words = 1024;
    const auto calls = params.rounds / interval;
    interval_table.add_row(
        {std::to_string(interval), std::to_string(calls),
         std::to_string(calls * 8 * 4),
         std::to_string(swat::honest_cycle_estimate(params)),
         support::Table::num(
             static_cast<double>(swat::honest_cycle_estimate(params)) /
                 base_cycles,
             3) +
             "x"});
  }
  std::printf("%s\n", interval_table.render().c_str());
  std::printf(
      "reading: (1) rounds buy coverage exponentially; (2) wider PUFs give\n"
      "more response bits per query at linearly growing T_ALU (slower base\n"
      "clock); (3) tighter PUF intervals bind the checksum to the hardware\n"
      "at modest cycle cost but linearly growing helper-data transcript.\n");
  return 0;
}
