// Aging ablation (extension; paper reference [13] and the intro's "silicon
// aging effects"): two experiments the paper's ecosystem implies but does
// not plot.
//
//  1. Directed aging-based response tuning: post-fab burn-in that widens
//     marginal race margins and cuts the intra-chip flip rate — run across
//     a population of dice.
//  2. Enrollment staleness: uniform field aging drifts the chip away from
//     its delay table H; attestation holds for years and is restored by
//     re-enrollment.
#include <cstdio>

#include "alupuf/aging_tuner.hpp"
#include "alupuf/pipeline.hpp"
#include "ecc/reed_muller.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace pufatt;

int main() {
  std::printf("=== Aging: response tuning and enrollment staleness ===\n\n");

  // --- Experiment 1: directed tuning across a die population ------------
  std::printf("1) aging-based response tuning (burn-in before enrollment)\n\n");
  support::Table tune_table({"die", "stress actions", "flip rate before",
                             "flip rate after", "improvement"});
  support::OnlineStats improvement;
  for (int die = 0; die < 6; ++die) {
    alupuf::AluPufConfig config;
    config.width = 32;
    alupuf::AluPuf puf(config, 7000 + die);
    support::Xoshiro256pp rng(100 + die);
    const auto report = alupuf::tune_by_aging(puf, {}, rng);
    const double gain = 1.0 - report.flip_rate_after / report.flip_rate_before;
    improvement.add(gain);
    tune_table.add_row({std::to_string(die),
                        std::to_string(report.stress_actions),
                        support::Table::num(report.flip_rate_before, 4),
                        support::Table::num(report.flip_rate_after, 4),
                        support::Table::num(gain * 100.0, 1) + "%"});
  }
  std::printf("%s\n", tune_table.render().c_str());
  std::printf("mean flip-rate reduction: %.1f%% (reference [13] reports "
              "large reliability gains from directed aging)\n\n",
              improvement.mean() * 100.0);

  // --- Experiment 2: enrollment staleness over field aging -----------------
  std::printf("2) field aging vs the enrollment-time delay table H\n\n");
  const ecc::ReedMuller1 code(5);
  alupuf::AluPufConfig config;
  config.width = 32;
  alupuf::AluPuf puf(config, 4242);
  const alupuf::AluPufEmulator fresh_model(32, puf.export_model());
  support::Xoshiro256pp rng(55);
  const auto env = variation::Environment::nominal();

  support::Table age_table({"field age", "HD vs fresh H (bits/32)",
                            "HD vs refreshed H"});
  double elapsed_hours = 0.0;
  for (const double years : {0.0, 1.0, 3.0, 10.0, 30.0}) {
    const double target_hours = years * 365.0 * 24.0;
    // Aging accumulates sublinearly; apply only the increment.
    if (target_hours > elapsed_hours) {
      // Power-law accumulation is not additive; approximate the increment
      // by re-deriving the total shift at the new age on a fresh twin die
      // is overkill — instead stress for the incremental hours (slightly
      // conservative, documented).
      puf.age_uniformly(0.5, target_hours - elapsed_hours, {});
      elapsed_hours = target_hours;
    }
    const alupuf::AluPufEmulator refreshed(32, puf.export_model());
    support::OnlineStats stale_hd, fresh_hd;
    for (int t = 0; t < 200; ++t) {
      const auto c = support::BitVector::random(64, rng);
      const auto response = puf.eval(c, env, rng);
      stale_hd.add(static_cast<double>(
          fresh_model.eval(c).hamming_distance(response)));
      fresh_hd.add(static_cast<double>(
          refreshed.eval(c).hamming_distance(response)));
    }
    age_table.add_row({support::Table::num(years, 0) + " years",
                       support::Table::num(stale_hd.mean(), 2),
                       support::Table::num(fresh_hd.mean(), 2)});
  }
  std::printf("%s\n", age_table.render().c_str());
  std::printf(
      "reading: drift against the enrollment-time model grows with field\n"
      "age (per-gate NBTI coefficients differ), while re-extracting H\n"
      "returns the error rate to the noise floor — devices with decade\n"
      "lifetimes need scheduled re-enrollment or the soft-decision margin\n"
      "absorbs the drift until then.\n");
  return 0;
}
