// Figure 4 reproduction: intra-chip Hamming distance of raw 32-bit ALU PUF
// responses under voltage variation (90-110% VDD), temperature variation
// (-20..+120 C) and arbiter metastability.
//
// Paper: mean intra-chip HD 3.62 bits (11.3%); metastability is the
// dominant contributor because the symmetric paths track each other across
// operating conditions.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "alupuf/alu_puf.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace pufatt;

int main() {
  std::printf("=== Figure 4: intra-chip HD under V/T corners and "
              "metastability ===\n\n");

  alupuf::AluPufConfig config;
  config.width = 32;
  const std::size_t chips = 8;
  const std::size_t challenges = 12'000;  // per chip per condition

  struct Condition {
    const char* name;
    variation::Environment env;
  };
  const Condition conditions[] = {
      {"metastability (nominal)", {1.0, 25.0}},
      {"voltage 90%", {0.9, 25.0}},
      {"voltage 110%", {1.1, 25.0}},
      {"temperature -20C", {1.0, -20.0}},
      {"temperature +120C", {1.0, 120.0}},
  };

  support::Xoshiro256pp rng(0xF16'4);
  std::vector<support::Histogram> hists;
  for (std::size_t i = 0; i < std::size(conditions); ++i) hists.emplace_back(33);

  // Chunked over the bit-sliced engine: one reference batch at nominal,
  // then one batch per corner on the same challenges.  Same distributions
  // as per-challenge eval, different noise realization; same bytes as the
  // SoA engine (see fig3 / engine_crosscheck — engine choice never moves
  // responses).
  constexpr auto kEngine = timingsim::BatchEngine::kBitslice;
  const auto nominal = variation::Environment::nominal();
  const std::size_t chunk = 250;
  std::vector<alupuf::Challenge> batch(chunk);
  for (std::size_t chip = 0; chip < chips; ++chip) {
    const alupuf::AluPuf puf(config, 40'000 + chip);
    const std::size_t per_chip = challenges / chips;
    for (std::size_t base = 0; base < per_chip; base += chunk) {
      const std::size_t n = std::min(chunk, per_chip - base);
      for (std::size_t c = 0; c < n; ++c) {
        batch[c] = support::BitVector::random(64, rng);
      }
      const auto reference = puf.eval_batch(batch.data(), n, nominal, rng,
                                            nullptr, nullptr, kEngine);
      for (std::size_t k = 0; k < std::size(conditions); ++k) {
        const auto corner = puf.eval_batch(batch.data(), n, conditions[k].env,
                                           rng, nullptr, nullptr, kEngine);
        for (std::size_t c = 0; c < n; ++c) {
          hists[k].add(reference[c].hamming_distance(corner[c]));
        }
      }
    }
  }

  for (std::size_t k = 0; k < std::size(conditions); ++k) {
    std::printf("%s\n", hists[k].render(conditions[k].name).c_str());
  }

  // Aggregate over all conditions, as the paper's single summary number.
  double total = 0.0;
  std::uint64_t n = 0;
  support::Table table({"condition", "mean HD (bits)", "% of 32"});
  for (std::size_t k = 0; k < std::size(conditions); ++k) {
    table.add_row({conditions[k].name, support::Table::num(hists[k].mean(), 2),
                   support::Table::num(hists[k].mean() / 32.0 * 100.0, 1)});
    total += hists[k].mean() * static_cast<double>(hists[k].total());
    n += hists[k].total();
  }
  const double overall = total / static_cast<double>(n);
  table.add_row({"overall (ours)", support::Table::num(overall, 2),
                 support::Table::num(overall / 32.0 * 100.0, 1)});
  table.add_row({"paper", "3.62", "11.3"});
  table.add_row({"ideal", "0.00", "0.0"});
  std::printf("%s\n", table.render().c_str());

  std::printf("shape check: corners add little over metastability alone: "
              "%s (meta %.2f vs worst corner %.2f)\n",
              hists[4].mean() < 2.5 * hists[0].mean() ? "YES" : "NO",
              hists[0].mean(), hists[4].mean());
  return 0;
}
