// Table 1 reproduction: FPGA resource utilization of the 16-bit ALU PUF
// prototype, estimated by technology-mapping our gate netlists onto 6-LUTs.
#include <cstdio>

#include "fpga/resources.hpp"
#include "support/table.hpp"

using namespace pufatt;

int main() {
  std::printf("=== Table 1: FPGA implementation (16-bit ALU PUF) ===\n\n");

  const auto rows = fpga::table1_rows();
  support::Table table({"Component", "LUTs", "Regs", "XORs", "BRAM", "FIFO",
                        "| paper LUTs", "Regs", "XORs", "BRAM", "FIFO"});
  for (const auto& row : rows) {
    table.add_row({row.ours.component, std::to_string(row.ours.luts),
                   std::to_string(row.ours.registers),
                   std::to_string(row.ours.xors), std::to_string(row.ours.bram),
                   std::to_string(row.ours.fifo),
                   "| " + std::to_string(row.paper.luts),
                   std::to_string(row.paper.registers),
                   std::to_string(row.paper.xors),
                   std::to_string(row.paper.bram),
                   std::to_string(row.paper.fifo)});
  }
  std::printf("%s\n", table.render().c_str());

  const auto& alu = rows[0].ours;
  const auto& pdl = rows[4].ours;
  const auto& sirc = rows[5].ours;
  std::printf("shape checks:\n");
  std::printf("  PUF core is tiny vs support logic: %s (%zu vs %zu+%zu LUTs)\n",
              pdl.luts + sirc.luts > 10 * alu.luts ? "YES" : "NO", alu.luts,
              pdl.luts, sirc.luts);
  std::printf("  obfuscation XOR count matches paper exactly: %s (%zu)\n",
              rows[3].ours.xors == 224 ? "YES" : "NO", rows[3].ours.xors);
  std::printf("\nreuse scenario: one full 16-bit multi-op ALU maps to %zu "
              "LUTs;\ntwo already exist in the datapath, so reusing them "
              "leaves only the\narbiters, sync and capture registers as "
              "true PUF overhead.\n",
              fpga::full_alu_luts(16));
  std::printf(
      "\nnote: our syndrome generator is the direct combinational XOR\n"
      "forest for RM(1,5); the paper's 1976-LUT/3-BRAM figure reflects a\n"
      "generic serialized decoder core (see EXPERIMENTS.md).\n");
  return 0;
}
