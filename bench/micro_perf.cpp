// Engineering micro-benchmarks (google-benchmark): throughput of every
// performance-relevant primitive.  Not a paper table — evidence that the
// simulation substrate sustains the million-challenge experiment sizes the
// paper's methodology requires.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cpu/assembler.hpp"
#include "swat/program.hpp"

#include "alupuf/pipeline.hpp"
#include "core/enrollment.hpp"
#include "core/protocol.hpp"
#include "ecc/bch.hpp"
#include "ecc/helper_data.hpp"
#include "ecc/reed_muller.hpp"
#include "mlattack/logreg.hpp"
#include "swat/checksum.hpp"
#include "timingsim/bitslice.hpp"

using namespace pufatt;

namespace {

const ecc::ReedMuller1& rm5() {
  static const ecc::ReedMuller1 code(5);
  return code;
}

alupuf::AluPufConfig puf32() {
  alupuf::AluPufConfig config;
  config.width = 32;
  return config;
}

void BM_AluPufRawEval(benchmark::State& state) {
  const alupuf::AluPuf puf(puf32(), 1);
  support::Xoshiro256pp rng(2);
  const auto env = variation::Environment::nominal();
  const auto challenge = support::BitVector::random(64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(puf.eval(challenge, env, rng));
  }
}
BENCHMARK(BM_AluPufRawEval);

void BM_PufDeviceQuery(benchmark::State& state) {
  const alupuf::PufDevice device(puf32(), 1, rm5());
  support::Xoshiro256pp rng(3);
  const auto env = variation::Environment::nominal();
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.query(++x, env, rng));
  }
}
BENCHMARK(BM_PufDeviceQuery);

void BM_PufEmulate(benchmark::State& state) {
  const alupuf::PufDevice device(puf32(), 1, rm5());
  const alupuf::PufEmulator emulator(32, device.export_model(), rm5());
  support::Xoshiro256pp rng(4);
  const auto out = device.query(42, variation::Environment::nominal(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(emulator.emulate(42, out.helpers));
  }
}
BENCHMARK(BM_PufEmulate);

void BM_RmSoftDecode(benchmark::State& state) {
  support::Xoshiro256pp rng(5);
  std::vector<double> llr(32);
  for (auto& v : llr) v = rng.gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rm5().decode_soft_to_codeword(llr));
  }
}
BENCHMARK(BM_RmSoftDecode);

void BM_BchDecode(benchmark::State& state) {
  const ecc::BchCode code(8, 10);  // [255, 179] t=10
  support::Xoshiro256pp rng(6);
  auto word = code.encode(support::BitVector::random(code.k(), rng));
  for (int i = 0; i < 10; ++i) word.flip(rng.uniform_u64(code.n()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode_to_codeword(word));
  }
}
BENCHMARK(BM_BchDecode);

void BM_SyndromeHelperReproduce(benchmark::State& state) {
  const ecc::SyndromeHelper helper(rm5());
  support::Xoshiro256pp rng(7);
  const auto y = support::BitVector::random(32, rng);
  const auto h = helper.generate(y);
  auto ref = y;
  ref.flip(3);
  ref.flip(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(helper.reproduce(ref, h));
  }
}
BENCHMARK(BM_SyndromeHelperReproduce);

void BM_SwatChecksumNative(benchmark::State& state) {
  swat::SwatParams params;
  params.rounds = 2048;
  params.attest_words = 4096;
  std::vector<std::uint32_t> image(params.attest_words, 0xABCD1234u);
  const auto puf = [](const std::array<std::uint64_t, 8>&) {
    return std::optional<std::uint32_t>{0x5555AAAAu};
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(swat::compute_checksum(image, 99, params, puf));
  }
  state.SetItemsProcessed(state.iterations() * params.rounds);
}
BENCHMARK(BM_SwatChecksumNative);

void BM_Pr32SimulatedCycles(benchmark::State& state) {
  // Host-side throughput of the cycle-accurate PR32 interpreter.
  const auto params = swat::SwatParams{.rounds = 1024, .attest_words = 2048};
  const auto layout = swat::SwatLayout::standard(params);
  const auto program =
      cpu::assemble(swat::generate_swat_source(params, layout));
  struct Stub final : cpu::PufPort {
    void start() override {}
    void feed(std::uint64_t, double) override {}
    std::uint32_t finish(std::vector<std::uint32_t>& h) override {
      h.assign(8, 0);
      return 0;
    }
  } stub;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    cpu::Machine machine(8192);
    machine.load(program.words);
    machine.set_mem(layout.seed_addr, 1);
    machine.attach_puf(&stub);
    const auto result = machine.run(100'000'000);
    cycles += result.cycles;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}
BENCHMARK(BM_Pr32SimulatedCycles);

void BM_FullAttestationRoundTrip(benchmark::State& state) {
  auto profile = core::DeviceProfile::standard();
  profile.swat.rounds = 512;
  profile.swat.attest_words = 1024;
  profile.layout = swat::SwatLayout::standard(profile.swat);
  const alupuf::PufDevice device(profile.puf_config, 8, rm5());
  const auto record = core::enroll(
      device, profile,
      core::make_enrolled_image(profile, std::vector<std::uint32_t>(500, 3)));
  const core::Verifier verifier(record, rm5());
  core::CpuProver prover(device, record, core::CpuProver::Variant::kHonest, 9);
  support::Xoshiro256pp rng(10);
  for (auto _ : state) {
    const auto request = verifier.make_request(rng);
    const auto outcome = prover.respond(request);
    benchmark::DoNotOptimize(
        verifier.verify(request, outcome.response, 0.0));
  }
}
BENCHMARK(BM_FullAttestationRoundTrip);

void BM_TimingSimScalarRun(benchmark::State& state) {
  const auto circuit = netlist::build_alu_puf_circuit(32);
  const variation::ChipInstance chip(circuit.net, {}, {}, 1);
  const auto delays = chip.nominal_delays(variation::Environment::nominal());
  const timingsim::TimingSimulator sim(circuit.net);
  support::Xoshiro256pp rng(12);
  const auto challenge =
      support::BitVector::random(circuit.net.num_inputs(), rng);
  std::vector<timingsim::SignalState> states;
  for (auto _ : state) {
    sim.run(challenge, delays, states);
    benchmark::DoNotOptimize(states.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimingSimScalarRun);

void BM_TimingSimBatchRun(benchmark::State& state) {
  const auto circuit = netlist::build_alu_puf_circuit(32);
  const variation::ChipInstance chip(circuit.net, {}, {}, 1);
  const auto delays = chip.nominal_delays(variation::Environment::nominal());
  const timingsim::TimingSimulator sim(circuit.net);
  support::Xoshiro256pp rng(13);
  const std::size_t batch = 256;
  std::vector<support::BitVector> challenges;
  for (std::size_t b = 0; b < batch; ++b) {
    challenges.push_back(
        support::BitVector::random(circuit.net.num_inputs(), rng));
  }
  std::vector<std::uint8_t> lanes;
  timingsim::pack_input_lanes(challenges.data(), batch,
                              circuit.net.num_inputs(), lanes);
  timingsim::BatchState out;
  for (auto _ : state) {
    sim.run_batch(lanes.data(), batch, delays, out);
    benchmark::DoNotOptimize(out.times_ps.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_TimingSimBatchRun);

void BM_Transpose64x64(benchmark::State& state) {
  // The bit-slice packing primitive: one 64x64 bit-matrix transpose turns
  // 64 challenge words into 64 lane words (items = lanes per block).
  support::Xoshiro256pp rng(16);
  std::uint64_t m[64];
  for (auto& w : m) w = rng.next();
  for (auto _ : state) {
    support::transpose_64x64(m);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_Transpose64x64);

void BM_BitslicePackInputWords(benchmark::State& state) {
  // Full transpose layer cost per evaluation: what the bit-sliced engine
  // charges on top of its kernel to accept BitVector challenges.
  const auto circuit = netlist::build_alu_puf_circuit(32);
  support::Xoshiro256pp rng(17);
  const std::size_t batch = 256;
  std::vector<support::BitVector> challenges;
  for (std::size_t b = 0; b < batch; ++b) {
    challenges.push_back(
        support::BitVector::random(circuit.net.num_inputs(), rng));
  }
  std::vector<std::uint64_t> words;
  for (auto _ : state) {
    timingsim::pack_input_words(challenges.data(), batch,
                                circuit.net.num_inputs(), words);
    benchmark::DoNotOptimize(words.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_BitslicePackInputWords);

void BM_BitsliceSharedRun(benchmark::State& state) {
  // Shared-delay bit-sliced kernel (the fleet-emulation path): 64 lanes
  // per word through the levelized schedule, time-rep shortcuts on.
  const auto circuit = netlist::build_alu_puf_circuit(32);
  const variation::ChipInstance chip(circuit.net, {}, {}, 1);
  const auto delays = chip.nominal_delays(variation::Environment::nominal());
  const timingsim::TimingSimulator sim(circuit.net);
  support::Xoshiro256pp rng(18);
  const std::size_t batch = 256;
  std::vector<support::BitVector> challenges;
  for (std::size_t b = 0; b < batch; ++b) {
    challenges.push_back(
        support::BitVector::random(circuit.net.num_inputs(), rng));
  }
  std::vector<std::uint64_t> words;
  timingsim::pack_input_words(challenges.data(), batch,
                              circuit.net.num_inputs(), words);
  const timingsim::BitSliceEngine engine(sim.compiled(), delays);
  timingsim::BitSliceState out;
  for (auto _ : state) {
    engine.run(words.data(), batch, out);
    benchmark::DoNotOptimize(out.values.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_BitsliceSharedRun);

void BM_BitsliceLaneRun(benchmark::State& state) {
  // Lane-delay bit-sliced kernel (the noisy device path): every computed
  // gate carries per-lane times, so this isolates the word-parallel value
  // pass + fused AVX time pass against one fixed delay realization.
  const auto circuit = netlist::build_alu_puf_circuit(32);
  const variation::ChipInstance chip(circuit.net, {}, {}, 1);
  const auto delays = chip.nominal_delays(variation::Environment::nominal());
  const timingsim::TimingSimulator sim(circuit.net);
  support::Xoshiro256pp rng(19);
  const std::size_t batch = 256;
  std::vector<support::BitVector> challenges;
  for (std::size_t b = 0; b < batch; ++b) {
    challenges.push_back(
        support::BitVector::random(circuit.net.num_inputs(), rng));
  }
  std::vector<std::uint64_t> words;
  timingsim::pack_input_words(challenges.data(), batch,
                              circuit.net.num_inputs(), words);
  const std::size_t gates = circuit.net.num_gates();
  timingsim::BatchDelays lane_delays;
  lane_delays.batch = batch;
  lane_delays.rise_ps.resize(gates * batch);
  lane_delays.fall_ps.resize(gates * batch);
  for (std::size_t g = 0; g < gates; ++g) {
    for (std::size_t b = 0; b < batch; ++b) {
      const double jitter = 1.0 + 0.01 * rng.uniform();
      lane_delays.rise_ps[g * batch + b] = delays.rise_ps[g] * jitter;
      lane_delays.fall_ps[g * batch + b] = delays.fall_ps[g] * jitter;
    }
  }
  const timingsim::BitSliceEngine engine(sim.compiled());
  timingsim::BitSliceState out;
  for (auto _ : state) {
    engine.run(words.data(), batch, lane_delays, out);
    benchmark::DoNotOptimize(out.values.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_BitsliceLaneRun);

void BM_AluPufEvalBatch(benchmark::State& state) {
  const alupuf::AluPuf puf(puf32(), 1);
  support::Xoshiro256pp rng(14);
  const auto env = variation::Environment::nominal();
  puf.prewarm(env);
  const std::size_t batch = 64;
  std::vector<alupuf::Challenge> challenges;
  for (std::size_t b = 0; b < batch; ++b) {
    challenges.push_back(support::BitVector::random(64, rng));
  }
  alupuf::AluPufBatchScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(puf.eval_batch(challenges.data(), batch, env,
                                            rng, nullptr, &scratch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_AluPufEvalBatch);

void BM_EmulatorEvalSoftBatch(benchmark::State& state) {
  const alupuf::AluPuf puf(puf32(), 1);
  const alupuf::AluPufEmulator emulator(32, puf.export_model());
  support::Xoshiro256pp rng(15);
  const std::size_t batch = 8;  // one PUF() call's worth
  std::vector<alupuf::Challenge> challenges;
  for (std::size_t b = 0; b < batch; ++b) {
    challenges.push_back(support::BitVector::random(64, rng));
  }
  std::vector<double> soft;
  for (auto _ : state) {
    emulator.eval_soft_batch(challenges.data(), batch, soft);
    benchmark::DoNotOptimize(soft.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EmulatorEvalSoftBatch);

void BM_LogRegTrain(benchmark::State& state) {
  support::Xoshiro256pp rng(11);
  std::vector<mlattack::Example> data;
  for (int i = 0; i < 1000; ++i) {
    mlattack::Example ex;
    for (int f = 0; f < 65; ++f) ex.features.push_back(rng.gaussian());
    ex.label = rng.bernoulli(0.5);
    data.push_back(std::move(ex));
  }
  mlattack::LogRegParams params;
  params.epochs = 5;
  for (auto _ : state) {
    mlattack::LogisticRegression model(65);
    model.train(data, params, rng);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_LogRegTrain);

// Reporter that mirrors the console output while capturing every run for
// the stable-schema JSON file (BENCH_micro_perf.json) the CI trajectory
// tracking consumes.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double s_per_iter = 0.0;
    double items_per_s = 0.0;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    for (const auto& run : reports) {
      if (run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      row.s_per_iter = run.iterations > 0
                           ? run.real_accumulated_time /
                                 static_cast<double>(run.iterations)
                           : 0.0;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) row.items_per_s = it->second.value;
      rows.push_back(std::move(row));
    }
  }

  std::vector<Row> rows;
};

void write_json(const char* path, bool smoke,
                const std::vector<JsonCapturingReporter::Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"bench\": \"micro_perf\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"s_per_iter\": %.9e, "
                 "\"items_per_second\": %.1f}%s\n",
                 rows[i].name.c_str(), rows[i].s_per_iter,
                 rows[i].items_per_s, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  // `--smoke` (ctest 'bench' label) shrinks every benchmark's measurement
  // window; all other flags pass through to google-benchmark.
  bool smoke = false;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  static char min_time[] = "--benchmark_min_time=0.02";
  if (smoke) args.push_back(min_time);
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  JsonCapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  write_json("BENCH_micro_perf.json", smoke, reporter.rows);
  return 0;
}
