// Engineering micro-benchmarks (google-benchmark): throughput of every
// performance-relevant primitive.  Not a paper table — evidence that the
// simulation substrate sustains the million-challenge experiment sizes the
// paper's methodology requires.
#include <benchmark/benchmark.h>

#include "cpu/assembler.hpp"
#include "swat/program.hpp"

#include "alupuf/pipeline.hpp"
#include "core/enrollment.hpp"
#include "core/protocol.hpp"
#include "ecc/bch.hpp"
#include "ecc/helper_data.hpp"
#include "ecc/reed_muller.hpp"
#include "mlattack/logreg.hpp"
#include "swat/checksum.hpp"

using namespace pufatt;

namespace {

const ecc::ReedMuller1& rm5() {
  static const ecc::ReedMuller1 code(5);
  return code;
}

alupuf::AluPufConfig puf32() {
  alupuf::AluPufConfig config;
  config.width = 32;
  return config;
}

void BM_AluPufRawEval(benchmark::State& state) {
  const alupuf::AluPuf puf(puf32(), 1);
  support::Xoshiro256pp rng(2);
  const auto env = variation::Environment::nominal();
  const auto challenge = support::BitVector::random(64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(puf.eval(challenge, env, rng));
  }
}
BENCHMARK(BM_AluPufRawEval);

void BM_PufDeviceQuery(benchmark::State& state) {
  const alupuf::PufDevice device(puf32(), 1, rm5());
  support::Xoshiro256pp rng(3);
  const auto env = variation::Environment::nominal();
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.query(++x, env, rng));
  }
}
BENCHMARK(BM_PufDeviceQuery);

void BM_PufEmulate(benchmark::State& state) {
  const alupuf::PufDevice device(puf32(), 1, rm5());
  const alupuf::PufEmulator emulator(32, device.export_model(), rm5());
  support::Xoshiro256pp rng(4);
  const auto out = device.query(42, variation::Environment::nominal(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(emulator.emulate(42, out.helpers));
  }
}
BENCHMARK(BM_PufEmulate);

void BM_RmSoftDecode(benchmark::State& state) {
  support::Xoshiro256pp rng(5);
  std::vector<double> llr(32);
  for (auto& v : llr) v = rng.gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rm5().decode_soft_to_codeword(llr));
  }
}
BENCHMARK(BM_RmSoftDecode);

void BM_BchDecode(benchmark::State& state) {
  const ecc::BchCode code(8, 10);  // [255, 179] t=10
  support::Xoshiro256pp rng(6);
  auto word = code.encode(support::BitVector::random(code.k(), rng));
  for (int i = 0; i < 10; ++i) word.flip(rng.uniform_u64(code.n()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode_to_codeword(word));
  }
}
BENCHMARK(BM_BchDecode);

void BM_SyndromeHelperReproduce(benchmark::State& state) {
  const ecc::SyndromeHelper helper(rm5());
  support::Xoshiro256pp rng(7);
  const auto y = support::BitVector::random(32, rng);
  const auto h = helper.generate(y);
  auto ref = y;
  ref.flip(3);
  ref.flip(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(helper.reproduce(ref, h));
  }
}
BENCHMARK(BM_SyndromeHelperReproduce);

void BM_SwatChecksumNative(benchmark::State& state) {
  swat::SwatParams params;
  params.rounds = 2048;
  params.attest_words = 4096;
  std::vector<std::uint32_t> image(params.attest_words, 0xABCD1234u);
  const auto puf = [](const std::array<std::uint64_t, 8>&) {
    return std::optional<std::uint32_t>{0x5555AAAAu};
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(swat::compute_checksum(image, 99, params, puf));
  }
  state.SetItemsProcessed(state.iterations() * params.rounds);
}
BENCHMARK(BM_SwatChecksumNative);

void BM_Pr32SimulatedCycles(benchmark::State& state) {
  // Host-side throughput of the cycle-accurate PR32 interpreter.
  const auto params = swat::SwatParams{.rounds = 1024, .attest_words = 2048};
  const auto layout = swat::SwatLayout::standard(params);
  const auto program =
      cpu::assemble(swat::generate_swat_source(params, layout));
  struct Stub final : cpu::PufPort {
    void start() override {}
    void feed(std::uint64_t, double) override {}
    std::uint32_t finish(std::vector<std::uint32_t>& h) override {
      h.assign(8, 0);
      return 0;
    }
  } stub;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    cpu::Machine machine(8192);
    machine.load(program.words);
    machine.set_mem(layout.seed_addr, 1);
    machine.attach_puf(&stub);
    const auto result = machine.run(100'000'000);
    cycles += result.cycles;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}
BENCHMARK(BM_Pr32SimulatedCycles);

void BM_FullAttestationRoundTrip(benchmark::State& state) {
  auto profile = core::DeviceProfile::standard();
  profile.swat.rounds = 512;
  profile.swat.attest_words = 1024;
  profile.layout = swat::SwatLayout::standard(profile.swat);
  const alupuf::PufDevice device(profile.puf_config, 8, rm5());
  const auto record = core::enroll(
      device, profile,
      core::make_enrolled_image(profile, std::vector<std::uint32_t>(500, 3)));
  const core::Verifier verifier(record, rm5());
  core::CpuProver prover(device, record, core::CpuProver::Variant::kHonest, 9);
  support::Xoshiro256pp rng(10);
  for (auto _ : state) {
    const auto request = verifier.make_request(rng);
    const auto outcome = prover.respond(request);
    benchmark::DoNotOptimize(
        verifier.verify(request, outcome.response, 0.0));
  }
}
BENCHMARK(BM_FullAttestationRoundTrip);

void BM_LogRegTrain(benchmark::State& state) {
  support::Xoshiro256pp rng(11);
  std::vector<mlattack::Example> data;
  for (int i = 0; i < 1000; ++i) {
    mlattack::Example ex;
    for (int f = 0; f < 65; ++f) ex.features.push_back(rng.gaussian());
    ex.label = rng.bernoulli(0.5);
    data.push_back(std::move(ex));
  }
  mlattack::LogRegParams params;
  params.epochs = 5;
  for (auto _ : state) {
    mlattack::LogisticRegression model(65);
    model.train(data, params, rng);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_LogRegTrain);

}  // namespace

BENCHMARK_MAIN();
