// Fault-tolerance sweep: how the attestation session's retry policy trades
// availability against security on an unreliable radio.
//
// Reported:
//   - false-rejection rate (FRR) of the honest prover vs. packet loss and
//     latency jitter, with retries disabled and enabled,
//   - detection rate of every adversary (naive malware, redirection
//     malware, overclocked redirection, proxy/oracle) under the same
//     faults — which must stay at its zero-loss value, since retries never
//     extend the per-attempt deadline,
//   - behaviour through a Gilbert-Elliott burst outage.
//
// Everything is seeded: same binary, same numbers.
#include <cstdio>
#include <functional>
#include <vector>

#include "core/enrollment.hpp"
#include "core/faulty_channel.hpp"
#include "core/protocol.hpp"
#include "core/session.hpp"
#include "ecc/reed_muller.hpp"
#include "support/table.hpp"

using namespace pufatt;
using namespace pufatt::core;

namespace {

struct SweepResult {
  double rejected_rate = 0.0;      ///< sessions ending kRejected
  double inconclusive_rate = 0.0;  ///< timeout / corrupted / exhausted
  double mean_attempts = 0.0;
};

SweepResult run_sweep(const Verifier& verifier, const Responder& responder,
                      const FaultParams& faults, const SessionPolicy& policy,
                      int sessions, std::uint64_t seed_base) {
  SweepResult result;
  support::Xoshiro256pp rng(seed_base);
  std::size_t rejected = 0, inconclusive = 0, attempts = 0;
  for (int s = 0; s < sessions; ++s) {
    FaultyChannel link({}, faults, seed_base + 17 * s + 1);
    AttestationSession session(verifier, link, policy);
    const auto outcome = session.run(responder, rng);
    attempts += outcome.attempts.size();
    if (!outcome.conclusive()) {
      ++inconclusive;
    } else if (!outcome.accepted()) {
      ++rejected;
    }
  }
  result.rejected_rate = static_cast<double>(rejected) / sessions;
  result.inconclusive_rate = static_cast<double>(inconclusive) / sessions;
  result.mean_attempts = static_cast<double>(attempts) / sessions;
  return result;
}

std::string pct(double v) { return support::Table::num(100.0 * v, 2) + "%"; }

}  // namespace

int main() {
  std::printf("=== Fault tolerance: attestation sessions over a lossy radio ===\n\n");

  const ecc::ReedMuller1 code(5);
  auto profile = DeviceProfile::standard();
  profile.swat.rounds = 512;
  profile.swat.puf_interval = 64;
  profile.swat.attest_words = 1024;
  profile.layout = swat::SwatLayout::standard(profile.swat);

  support::Xoshiro256pp rng(0xFA017);
  const alupuf::PufDevice device(profile.puf_config, 20'260'806, code);
  std::vector<std::uint32_t> payload(700);
  for (auto& w : payload) w = static_cast<std::uint32_t>(rng.next());
  const auto record =
      enroll(device, profile, make_enrolled_image(profile, payload));
  const Verifier verifier(record, code);

  CpuProver honest(device, record, CpuProver::Variant::kHonest, 1);
  auto tampered = record;
  for (std::size_t w = 700; w < 800; ++w) {
    tampered.enrolled_image[w] ^= 0xBAD0BAD0u;
  }
  CpuProver naive(device, tampered, CpuProver::Variant::kHonest, 2);
  CpuProver redirect(device, record, CpuProver::Variant::kRedirectMalware, 3);
  CpuProver overclocked(device, record, CpuProver::Variant::kRedirectMalware, 4,
                        record.profile.base_clock_mhz * 1.35);

  auto cpu_responder = [](CpuProver& prover) {
    return Responder([&prover](const AttestationRequest& request) {
      auto outcome = prover.respond(request);
      return ProverReply{std::move(outcome.response), outcome.compute_us};
    });
  };
  // The proxy's elapsed time already contains its oracle round trips; the
  // session adds the verifier-facing channel on top, as in the analytic
  // bench.
  support::Xoshiro256pp proxy_rng(0xBEEF);
  Responder proxy_responder = [&](const AttestationRequest& request) {
    ProxyAttackParams params;
    params.accomplice_speedup = 100.0;
    const auto outcome =
        proxy_attack(device, record, request, params, proxy_rng);
    return ProverReply{outcome.response, outcome.elapsed_us};
  };

  SessionPolicy no_retry;
  no_retry.max_attempts = 1;
  SessionPolicy with_retry;  // default: 4 attempts, exponential backoff

  const std::vector<double> loss_rates = {0.0, 0.02, 0.05, 0.10, 0.20};
  const int honest_sessions = 300;
  const int adversary_sessions = 40;

  // --- honest availability vs. packet loss ----------------------------------
  std::printf("honest prover, %d sessions per cell (FRR = 1 - acceptance; "
              "an honest session never ends 'rejected' at zero jitter,\n"
              "so FRR here is transport starvation):\n\n",
              honest_sessions);
  support::Table honest_table({"loss", "FRR no retries", "FRR 4 attempts",
                               "mean attempts", "backoff policy"});
  double frr_no_retry_at_5 = 0.0, frr_retry_at_5 = 0.0;
  for (const double loss : loss_rates) {
    FaultParams faults;
    faults.loss_prob = loss;
    const auto off = run_sweep(verifier, cpu_responder(honest), faults,
                               no_retry, honest_sessions, 0xA000);
    const auto on = run_sweep(verifier, cpu_responder(honest), faults,
                              with_retry, honest_sessions, 0xB000);
    const double frr_off = off.rejected_rate + off.inconclusive_rate;
    const double frr_on = on.rejected_rate + on.inconclusive_rate;
    if (loss == 0.05) {
      frr_no_retry_at_5 = frr_off;
      frr_retry_at_5 = frr_on;
    }
    honest_table.add_row({pct(loss), pct(frr_off), pct(frr_on),
                          support::Table::num(on.mean_attempts, 2),
                          "20ms * 2^k +/-25%"});
  }
  std::printf("%s\n", honest_table.render().c_str());

  // --- adversary detection vs. packet loss ----------------------------------
  std::printf("adversary detection with retries enabled, %d sessions per "
              "cell (detected = session ends 'rejected'):\n\n",
              adversary_sessions);
  support::Table det_table({"loss", "naive malware", "redirect", "redirect @1.35x",
                            "proxy (100x CPU)"});
  struct Adversary {
    const char* name;
    Responder responder;
    double detection_at_zero_loss = -1.0;
    bool stable = true;
  };
  std::vector<Adversary> adversaries;
  adversaries.push_back({"naive", cpu_responder(naive), -1.0, true});
  adversaries.push_back({"redirect", cpu_responder(redirect), -1.0, true});
  adversaries.push_back({"overclock", cpu_responder(overclocked), -1.0, true});
  adversaries.push_back({"proxy", proxy_responder, -1.0, true});
  for (const double loss : loss_rates) {
    FaultParams faults;
    faults.loss_prob = loss;
    std::vector<std::string> row = {pct(loss)};
    std::uint64_t seed = 0xC000;
    for (auto& adversary : adversaries) {
      const auto sweep = run_sweep(verifier, adversary.responder, faults,
                                   with_retry, adversary_sessions, seed);
      seed += 0x1000;
      row.push_back(pct(sweep.rejected_rate));
      if (adversary.detection_at_zero_loss < 0.0) {
        adversary.detection_at_zero_loss = sweep.rejected_rate;
      } else if (loss <= 0.05 &&
                 sweep.rejected_rate < adversary.detection_at_zero_loss) {
        adversary.stable = false;
      }
    }
    det_table.add_row(row);
  }
  std::printf("%s\n", det_table.render().c_str());

  // --- honest availability vs. latency jitter -------------------------------
  std::printf("honest prover vs. lognormal latency jitter (5%% loss held "
              "fixed); jitter can push an intact response past the\n"
              "per-challenge deadline, so retries also repair "
              "jitter-induced kTimeExceeded rejections:\n\n");
  support::Table jitter_table(
      {"jitter sigma", "FRR no retries", "FRR 4 attempts"});
  for (const double sigma : {0.0, 0.1, 0.25, 0.5}) {
    FaultParams faults;
    faults.loss_prob = 0.05;
    faults.jitter_sigma = sigma;
    const auto off = run_sweep(verifier, cpu_responder(honest), faults,
                               no_retry, honest_sessions, 0xD000);
    const auto on = run_sweep(verifier, cpu_responder(honest), faults,
                              with_retry, honest_sessions, 0xE000);
    jitter_table.add_row(
        {support::Table::num(sigma, 2),
         pct(off.rejected_rate + off.inconclusive_rate),
         pct(on.rejected_rate + on.inconclusive_rate)});
  }
  std::printf("%s\n", jitter_table.render().c_str());

  // --- Gilbert-Elliott burst outage -----------------------------------------
  std::printf("Gilbert-Elliott burst outage (good->bad 5%%, bad->good 20%%, "
              "90%% loss in bad state): sessions that start inside a burst\n"
              "end inconclusive (timeout), not rejected — the evidence floor "
              "in distributed audits builds on this distinction:\n\n");
  FaultParams burst;
  burst.burst = true;
  burst.p_good_to_bad = 0.05;
  burst.p_bad_to_good = 0.20;
  burst.bad_loss_prob = 0.9;
  const auto burst_sweep = run_sweep(verifier, cpu_responder(honest), burst,
                                     with_retry, honest_sessions, 0xF000);
  std::printf("  accepted %s | inconclusive %s | rejected %s "
              "(mean attempts %.2f)\n\n",
              pct(1.0 - burst_sweep.rejected_rate -
                  burst_sweep.inconclusive_rate).c_str(),
              pct(burst_sweep.inconclusive_rate).c_str(),
              pct(burst_sweep.rejected_rate).c_str(),
              burst_sweep.mean_attempts);

  // --- acceptance summary ---------------------------------------------------
  const bool honest_ok = frr_retry_at_5 < 0.01;
  const bool gap_ok = frr_no_retry_at_5 > 2.0 * frr_retry_at_5 + 0.02;
  bool detection_ok = true;
  for (const auto& adversary : adversaries) {
    if (!adversary.stable || adversary.detection_at_zero_loss < 1.0) {
      detection_ok = false;
      std::printf("!! %s detection degraded under loss\n", adversary.name);
    }
  }
  std::printf("(at extreme loss a few adversary sessions end inconclusive —\n"
              "transport-starved, never accepted — which is the degraded-mode\n"
              "'re-audit' signal, not a miss)\n\n");
  std::printf("claims:\n");
  std::printf("  [%s] honest FRR at 5%% loss with retries:   %s (< 1%% required)\n",
              honest_ok ? "ok" : "FAIL", pct(frr_retry_at_5).c_str());
  std::printf("  [%s] honest FRR at 5%% loss, no retries:    %s (materially higher)\n",
              gap_ok ? "ok" : "FAIL", pct(frr_no_retry_at_5).c_str());
  std::printf("  [%s] all adversaries detected at their zero-loss rate "
              "(100%%) through 5%% loss —\n"
              "       retries restore availability without weakening the "
              "time-bound argument\n",
              detection_ok ? "ok" : "FAIL");
  return honest_ok && gap_ok && detection_ok ? 0 : 1;
}
