// Figure 3 reproduction: inter-chip Hamming distance of 32-bit ALU PUF
// responses, raw (before obfuscation) and obfuscated, over a population of
// simulated 45 nm chips.
//
// Paper: mean inter-chip HD 11.48 bits (35.9%) raw, 14.28 bits (44.6%)
// obfuscated; ideal 16 bits (50%).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "alupuf/pipeline.hpp"
#include "ecc/reed_muller.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace pufatt;

int main() {
  std::printf("=== Figure 3: inter-chip HD, 32-bit ALU PUF ===\n\n");

  const ecc::ReedMuller1 code(5);
  alupuf::AluPufConfig config;
  config.width = 32;

  const std::size_t pairs = 40;
  const std::size_t raw_challenges_per_pair = 4000;
  const std::size_t obf_challenges_per_pair = 250;

  support::Histogram raw_hist(33);
  support::Histogram obf_hist(33);
  support::Xoshiro256pp rng(0xF16'3);

  // Chunked over the bit-sliced engine (one 64-lanes-per-word pass per chip
  // per chunk); same distributions as per-challenge eval, different noise
  // realization.  The engine choice cannot move the statistics: the batch
  // seed and lane RNGs are drawn before engine dispatch and all engines
  // compute identical race times (engine_crosscheck gates on it), so these
  // histograms are byte-identical to the SoA ones — just faster.
  constexpr auto kEngine = timingsim::BatchEngine::kBitslice;
  const std::size_t chunk = 250;
  std::vector<alupuf::Challenge> challenges(chunk);
  std::vector<std::uint64_t> xs(chunk);
  for (std::size_t p = 0; p < pairs; ++p) {
    const alupuf::PufDevice a(config, 10'000 + 2 * p, code);
    const alupuf::PufDevice b(config, 10'001 + 2 * p, code);
    const auto env = variation::Environment::nominal();

    // Raw responses: single ALU race per challenge.
    for (std::size_t base = 0; base < raw_challenges_per_pair; base += chunk) {
      const std::size_t n = std::min(chunk, raw_challenges_per_pair - base);
      for (std::size_t c = 0; c < n; ++c) {
        challenges[c] = support::BitVector::random(64, rng);
      }
      const auto ra = a.raw_puf().eval_batch(challenges.data(), n, env, rng,
                                             nullptr, nullptr, kEngine);
      const auto rb = b.raw_puf().eval_batch(challenges.data(), n, env, rng,
                                             nullptr, nullptr, kEngine);
      for (std::size_t c = 0; c < n; ++c) {
        raw_hist.add(ra[c].hamming_distance(rb[c]));
      }
    }
    // Obfuscated outputs: full pipeline (8 races per output).
    for (std::size_t base = 0; base < obf_challenges_per_pair; base += chunk) {
      const std::size_t n = std::min(chunk, obf_challenges_per_pair - base);
      for (std::size_t c = 0; c < n; ++c) xs[c] = rng.next();
      const auto qa = a.query_batch(xs.data(), n, env, rng, nullptr, nullptr,
                                    kEngine);
      const auto qb = b.query_batch(xs.data(), n, env, rng, nullptr, nullptr,
                                    kEngine);
      for (std::size_t c = 0; c < n; ++c) {
        obf_hist.add(qa[c].z.hamming_distance(qb[c].z));
      }
    }
  }

  std::printf("%s\n", raw_hist.render("inter-chip HD, raw responses").c_str());
  std::printf("%s\n",
              obf_hist.render("inter-chip HD, obfuscated responses").c_str());

  support::Table table({"series", "paper mean (bits)", "paper %", "ours (bits)",
                        "ours %"});
  table.add_row({"raw", "11.48", "35.9%",
                 support::Table::num(raw_hist.mean(), 2),
                 support::Table::num(raw_hist.mean() / 32.0 * 100.0, 1) + "%"});
  table.add_row({"obfuscated", "14.28", "44.6%",
                 support::Table::num(obf_hist.mean(), 2),
                 support::Table::num(obf_hist.mean() / 32.0 * 100.0, 1) + "%"});
  table.add_row({"ideal", "16.00", "50.0%", "16.00", "50.0%"});
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "shape check: obfuscation must push the mean toward 50%%: %s\n",
      obf_hist.mean() > raw_hist.mean() ? "YES" : "NO");
  return 0;
}
