// Concurrent attestation service: throughput and backpressure under load.
//
// Two sweeps over the same seeded workload (round-robin jobs across an
// enrolled fleet, 2% packet loss):
//
//   1. worker sweep — saturation throughput at 1/2/4/8 workers, with
//      *verdict parity* checked job-by-job against a serial baseline that
//      runs the identical (channel_seed, rng_seed) sessions without the
//      pool.  Concurrency must change wall time only, never a verdict.
//   2. offered-load sweep — at the top worker count, a paced open-loop
//      producer offers 0.5x/0.9x/1.5x of the measured capacity; beyond
//      capacity the bounded queue sheds load via kRejectedBusy instead of
//      growing, so goodput plateaus while busy rejections absorb the rest.
//
// Results go to stdout and to BENCH_service_throughput.json (schema
// documented in DESIGN.md §9; bump schema_version on any field change).
//
// `--smoke` runs a tiny sweep (1/2 workers, few jobs, no load sweep) as a
// ctest smoke test labeled 'bench'; the full run backs the acceptance
// claim: >= 3x session throughput at 8 workers vs 1, zero divergence.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/channel.hpp"
#include "core/distributed.hpp"
#include "core/enrollment.hpp"
#include "core/session.hpp"
#include "ecc/reed_muller.hpp"
#include "service/device_registry.hpp"
#include "service/emulator_cache.hpp"
#include "service/verifier_pool.hpp"
#include "support/table.hpp"

using namespace pufatt;
using namespace pufatt::service;

namespace {

const ecc::ReedMuller1& code() {
  static const ecc::ReedMuller1 instance(5);
  return instance;
}

struct FleetDevice {
  std::string id;
  std::unique_ptr<alupuf::PufDevice> device;
  core::EnrollmentRecord record;
};

struct Workload {
  std::vector<FleetDevice> fleet;
  DeviceRegistry registry;
  std::size_t jobs = 0;
  core::FaultParams faults;

  std::uint64_t channel_seed(std::size_t job) const { return 0xC0FFEE + 31 * job; }
  std::uint64_t rng_seed(std::size_t job) const { return 0x5EED + 17 * job; }
  const FleetDevice& target(std::size_t job) const {
    return fleet[job % fleet.size()];
  }

  /// Fresh per-job prover, seeded from the job index: verdicts depend only
  /// on the job, not on which thread or in which order it runs.
  ///
  /// The responder also *blocks in host time* for the device's simulated
  /// compute + radio round trip (~13 ms at 250 kbit/s): in deployment a
  /// verifier worker spends almost all of each session waiting on the
  /// link, and overlapping that latency across devices is precisely the
  /// pool's job.  The sleep happens while the job holds the device lease
  /// — the physical device really is busy for that long — and it leaves
  /// the simulated clocks (and so every verdict) untouched.
  core::Responder responder(std::size_t job) const {
    const auto& dev = target(job);
    auto prover = std::make_shared<core::CpuProver>(
        *dev.device, dev.record, core::CpuProver::Variant::kHonest,
        rng_seed(job) ^ 0xF00D);
    return [prover](const core::AttestationRequest& request) {
      auto outcome = prover->respond(request);
      const core::Channel radio{};
      const double rtt_us = radio.round_trip_us(
          sizeof(std::uint64_t), outcome.response.wire_bytes());
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<long>(outcome.compute_us + rtt_us)));
      return core::ProverReply{std::move(outcome.response),
                               outcome.compute_us};
    };
  }
};

Workload make_workload(std::size_t devices, std::size_t jobs) {
  Workload w;
  w.jobs = jobs;
  w.faults.loss_prob = 0.02;

  const auto profile = core::DistributedParams::small_profile();
  support::Xoshiro256pp rng(0x7B6);
  std::vector<std::uint32_t> firmware(600);
  for (auto& word : firmware) word = static_cast<std::uint32_t>(rng.next());
  const auto image = core::make_enrolled_image(profile, firmware);

  w.fleet.resize(devices);
  for (std::size_t d = 0; d < devices; ++d) {
    w.fleet[d].id = "dev-" + std::to_string(d);
    w.fleet[d].device = std::make_unique<alupuf::PufDevice>(
        profile.puf_config, 0xD1CE00 + d, code());
    w.fleet[d].record = core::enroll(*w.fleet[d].device, profile, image);
    w.registry.store(w.fleet[d].id, w.fleet[d].record);
  }
  return w;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Serial ground truth: the same sessions, no pool, no threads.
std::vector<core::SessionStatus> run_serial(const Workload& w,
                                            double* wall_s) {
  std::vector<std::unique_ptr<core::Verifier>> verifiers;
  for (const auto& dev : w.fleet) {
    verifiers.push_back(std::make_unique<core::Verifier>(dev.record, code()));
  }
  std::vector<core::SessionStatus> verdicts(w.jobs);
  const double start = now_s();
  for (std::size_t job = 0; job < w.jobs; ++job) {
    core::FaultyChannel link({}, w.faults, w.channel_seed(job));
    core::AttestationSession session(*verifiers[job % w.fleet.size()], link);
    support::Xoshiro256pp rng(w.rng_seed(job));
    const auto responder = w.responder(job);
    verdicts[job] = session.run(responder, rng).status;
  }
  *wall_s = now_s() - start;
  return verdicts;
}

struct CellResult {
  std::size_t workers = 0;
  double wall_s = 0.0;
  double throughput = 0.0;
  std::size_t divergence = 0;
  MetricsSnapshot metrics;
  CacheCounters cache;
  std::uint64_t producer_busy_retries = 0;
};

/// Saturation cell: submit every job as fast as the queue accepts it.
CellResult run_pool_cell(const Workload& w, std::size_t workers,
                         const std::vector<core::SessionStatus>& baseline) {
  CellResult cell;
  cell.workers = workers;

  EmulatorCache cache(w.registry, code(), w.fleet.size());
  PoolConfig config;
  config.workers = workers;
  config.queue_capacity = 2 * workers;

  std::mutex verdict_mutex;
  std::vector<core::SessionStatus> verdicts(
      w.jobs, core::SessionStatus::kRetriesExhausted);
  auto on_complete = [&](const JobResult& result) {
    std::lock_guard<std::mutex> lock(verdict_mutex);
    verdicts[result.tag] = result.session.status;
  };

  const double start = now_s();
  {
    VerifierPool pool(cache, config, on_complete);
    for (std::size_t job = 0; job < w.jobs; ++job) {
      AttestationJob j;
      j.device_id = w.target(job).id;
      j.responder = w.responder(job);
      j.faults = w.faults;
      j.channel_seed = w.channel_seed(job);
      j.rng_seed = w.rng_seed(job);
      j.tag = job;
      // Closed-loop saturation: hold the job until the queue takes it so
      // every cell completes the identical job set.
      while (!pool.submit(j).enqueued()) {
        ++cell.producer_busy_retries;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
    pool.drain();
    cell.wall_s = now_s() - start;
    cell.metrics = pool.metrics_snapshot();
  }
  cell.cache = cache.counters();
  cell.throughput = static_cast<double>(w.jobs) / cell.wall_s;
  for (std::size_t job = 0; job < w.jobs; ++job) {
    if (verdicts[job] != baseline[job]) ++cell.divergence;
  }
  return cell;
}

struct LoadResult {
  double offered_per_s = 0.0;
  double goodput_per_s = 0.0;  ///< completed sessions / wall time
  std::uint64_t submitted = 0;
  std::uint64_t busy_rejected = 0;
};

/// Open-loop cell: offer jobs at a fixed rate; a full queue drops them.
LoadResult run_load_cell(const Workload& w, std::size_t workers,
                         double offered_per_s, std::size_t offered_jobs) {
  LoadResult cell;
  cell.offered_per_s = offered_per_s;

  EmulatorCache cache(w.registry, code(), w.fleet.size());
  PoolConfig config;
  config.workers = workers;
  config.queue_capacity = 2 * workers;
  VerifierPool pool(cache, config);

  const double period_s = 1.0 / offered_per_s;
  const double start = now_s();
  for (std::size_t job = 0; job < offered_jobs; ++job) {
    const double deadline = start + static_cast<double>(job) * period_s;
    while (now_s() < deadline) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    AttestationJob j;
    j.device_id = w.target(job).id;
    j.responder = w.responder(job);
    j.faults = w.faults;
    j.channel_seed = w.channel_seed(job);
    j.rng_seed = w.rng_seed(job);
    j.tag = job;
    (void)pool.submit(j);  // kRejectedBusy = shed: open-loop drops
  }
  pool.drain();
  const double wall_s = now_s() - start;

  const auto snap = pool.metrics_snapshot();
  cell.submitted = snap.submitted;
  cell.busy_rejected = snap.rejected_busy;
  cell.goodput_per_s = static_cast<double>(snap.completed()) / wall_s;
  return cell;
}

void write_json(const char* path, bool smoke, const Workload& w,
                std::size_t queue_capacity_note, double serial_wall_s,
                const std::vector<CellResult>& cells,
                const std::vector<LoadResult>& load_cells, double speedup,
                bool speedup_ok, bool parity_ok) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"bench\": \"service_throughput\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f,
               "  \"workload\": {\"devices\": %zu, \"jobs_per_cell\": %zu, "
               "\"loss_prob\": %.3f, \"queue_capacity\": \"2*workers\", "
               "\"queue_capacity_top\": %zu},\n",
               w.fleet.size(), w.jobs, w.faults.loss_prob,
               queue_capacity_note);
  std::fprintf(f, "  \"serial_wall_s\": %.4f,\n", serial_wall_s);
  std::fprintf(f, "  \"worker_sweep\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    std::fprintf(
        f,
        "    {\"workers\": %zu, \"wall_s\": %.4f, \"throughput_per_s\": "
        "%.2f, \"speedup_vs_1\": %.3f, \"accepted\": %llu, \"rejected\": "
        "%llu, \"inconclusive\": %llu, \"producer_busy_retries\": %llu, "
        "\"busy_rejected\": %llu, \"queue_depth_hwm\": %llu, "
        "\"cache_hits\": %zu, \"cache_misses\": %zu, \"cache_evictions\": "
        "%zu, \"verdict_divergence\": %zu}%s\n",
        c.workers, c.wall_s, c.throughput,
        c.throughput / cells.front().throughput,
        static_cast<unsigned long long>(c.metrics.accepted),
        static_cast<unsigned long long>(c.metrics.rejected),
        static_cast<unsigned long long>(c.metrics.inconclusive),
        static_cast<unsigned long long>(c.producer_busy_retries),
        static_cast<unsigned long long>(c.metrics.rejected_busy),
        static_cast<unsigned long long>(c.metrics.queue_depth_hwm),
        c.cache.hits, c.cache.misses, c.cache.evictions, c.divergence,
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"load_sweep\": [\n");
  for (std::size_t i = 0; i < load_cells.size(); ++i) {
    const auto& c = load_cells[i];
    std::fprintf(f,
                 "    {\"offered_per_s\": %.2f, \"goodput_per_s\": %.2f, "
                 "\"submitted\": %llu, \"busy_rejected\": %llu}%s\n",
                 c.offered_per_s, c.goodput_per_s,
                 static_cast<unsigned long long>(c.submitted),
                 static_cast<unsigned long long>(c.busy_rejected),
                 i + 1 < load_cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"claims\": {\"speedup_top_vs_1\": %.3f, \"speedup_ok\": "
               "%s, \"parity_ok\": %s}\n",
               speedup, speedup_ok ? "true" : "false",
               parity_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("=== Concurrent attestation service: throughput & backpressure "
              "(%s) ===\n\n",
              smoke ? "smoke" : "full");

  const std::size_t devices = smoke ? 4 : 16;
  const std::size_t jobs = smoke ? 12 : 128;
  const std::vector<std::size_t> worker_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};

  std::printf("enrolling %zu devices, %zu jobs per cell, 2%% loss...\n\n",
              devices, jobs);
  const auto workload = make_workload(devices, jobs);

  double serial_wall_s = 0.0;
  const auto baseline = run_serial(workload, &serial_wall_s);
  std::printf("serial baseline: %.2f s (%.1f sessions/s)\n\n", serial_wall_s,
              static_cast<double>(jobs) / serial_wall_s);

  // --- worker sweep ---------------------------------------------------------
  support::Table table({"workers", "wall s", "sessions/s", "speedup",
                        "accepted", "rejected", "queue hwm", "divergence"});
  std::vector<CellResult> cells;
  for (const std::size_t workers : worker_counts) {
    cells.push_back(run_pool_cell(workload, workers, baseline));
    const auto& c = cells.back();
    table.add_row({std::to_string(c.workers), support::Table::num(c.wall_s, 2),
                   support::Table::num(c.throughput, 1),
                   support::Table::num(c.throughput / cells.front().throughput, 2),
                   std::to_string(c.metrics.accepted),
                   std::to_string(c.metrics.rejected),
                   std::to_string(c.metrics.queue_depth_hwm),
                   std::to_string(c.divergence)});
  }
  std::printf("%s\n", table.render().c_str());

  // --- offered-load sweep at the top worker count ---------------------------
  std::vector<LoadResult> load_cells;
  if (!smoke) {
    const std::size_t top_workers = worker_counts.back();
    const double capacity = cells.back().throughput;
    std::printf("open-loop offered load at %zu workers (capacity ~%.1f/s): "
                "beyond capacity the bounded queue sheds into busy "
                "rejections, goodput plateaus\n\n",
                top_workers, capacity);
    support::Table load_table(
        {"offered/s", "goodput/s", "submitted", "busy rejected"});
    for (const double factor : {0.5, 0.9, 1.5}) {
      load_cells.push_back(run_load_cell(workload, top_workers,
                                         factor * capacity, jobs));
      const auto& c = load_cells.back();
      load_table.add_row({support::Table::num(c.offered_per_s, 1),
                          support::Table::num(c.goodput_per_s, 1),
                          std::to_string(c.submitted),
                          std::to_string(c.busy_rejected)});
    }
    std::printf("%s\n", load_table.render().c_str());
  }

  // --- claims ---------------------------------------------------------------
  const double speedup = cells.back().throughput / cells.front().throughput;
  std::size_t total_divergence = 0;
  for (const auto& c : cells) total_divergence += c.divergence;
  const bool parity_ok = total_divergence == 0;
  // The 3x claim is only meaningful for the full 8-worker sweep; the smoke
  // sweep just requires scaling to not regress below 1x.
  const bool speedup_ok = smoke ? speedup > 0.8 : speedup >= 3.0;

  write_json("BENCH_service_throughput.json", smoke, workload,
             2 * worker_counts.back(), serial_wall_s, cells, load_cells,
             speedup, speedup_ok, parity_ok);

  std::printf("\nclaims:\n");
  std::printf("  [%s] verdict parity: pooled sessions match the serial "
              "baseline on all %zu jobs x %zu cells\n",
              parity_ok ? "ok" : "FAIL", jobs, cells.size());
  std::printf("  [%s] throughput at %zu workers: %.2fx vs 1 worker "
              "(%s required)\n",
              speedup_ok ? "ok" : "FAIL", worker_counts.back(), speedup,
              smoke ? ">0.8x" : ">=3x");
  return parity_ok && speedup_ok ? 0 : 1;
}
