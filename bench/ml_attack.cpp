// Machine-learning modeling attack study (paper Section 2 "Response
// Obfuscation" and Section 4.1 "Side-channel Attack Resiliency"):
// logistic regression (Ruehrmair-style) against
//   1. the plain Arbiter PUF (the textbook break),
//   2. raw ALU PUF response bits (partially learnable),
//   3. the obfuscated pipeline output (should collapse to ~50%).
#include <cstdio>

#include "ecc/reed_muller.hpp"
#include "mlattack/attack.hpp"
#include "support/table.hpp"

using namespace pufatt;

int main() {
  std::printf("=== Modeling attack: logistic regression on CRPs ===\n\n");
  support::Xoshiro256pp rng(0x31337);

  support::Table table({"target", "queries", "train acc", "test acc",
                        "wall [s]", "verdict"});

  // --- Arbiter PUF: accuracy vs training size -----------------------------
  const alupuf::ArbiterPuf arbiter({.stages = 64, .noise_sigma = 0.05}, 5);
  mlattack::AttackConfig config;
  config.test_crps = 1500;
  // Reproducible fits: training shuffles draw from this seed instead of
  // whatever stream position CRP collection left behind.
  config.train_seed = 0xA77AC4;
  for (const std::size_t crps : {250u, 1000u, 4000u, 16000u}) {
    const auto r = mlattack::attack_arbiter(arbiter, crps, rng, config);
    table.add_row({"Arbiter PUF", std::to_string(r.queries_used),
                   support::Table::num(r.train_accuracy, 3),
                   support::Table::num(r.test_accuracy, 3),
                   support::Table::num(r.wall_s, 2),
                   r.test_accuracy > 0.9 ? "BROKEN" : "resists"});
  }

  // --- k-XOR arbiter: the mechanism behind the obfuscation network ---------
  for (const std::size_t k : {1u, 2u, 4u, 8u}) {
    const alupuf::XorArbiterPuf xpuf(k, {.stages = 64, .noise_sigma = 0.05}, 9);
    const auto r = mlattack::attack_xor_arbiter(xpuf, 8000, rng, config);
    table.add_row({"XOR-Arbiter k=" + std::to_string(k),
                   std::to_string(r.queries_used),
                   support::Table::num(r.train_accuracy, 3),
                   support::Table::num(r.test_accuracy, 3),
                   support::Table::num(r.wall_s, 2),
                   r.test_accuracy > 0.9    ? "BROKEN"
                   : r.test_accuracy > 0.58 ? "leaks partially"
                                            : "resists"});
  }

  // --- raw ALU PUF bits ------------------------------------------------------
  alupuf::AluPufConfig puf_config;
  puf_config.width = 32;
  const alupuf::AluPuf alu(puf_config, 6);
  for (const std::size_t bit : {4u, 16u, 28u}) {
    const auto r = mlattack::attack_alu_raw_bit(alu, bit, 6000, rng, config);
    table.add_row({"ALU PUF raw bit " + std::to_string(bit),
                   std::to_string(r.queries_used),
                   support::Table::num(r.train_accuracy, 3),
                   support::Table::num(r.test_accuracy, 3),
                   support::Table::num(r.wall_s, 2),
                   r.test_accuracy > 0.75   ? "LEAKS"
                   : r.test_accuracy > 0.55 ? "leaks partially"
                                            : "resists"});
  }

  // --- obfuscated output -------------------------------------------------------
  const ecc::ReedMuller1 code(5);
  const alupuf::PufDevice device(puf_config, 7, code);
  mlattack::AttackConfig obf_config;
  obf_config.test_crps = 600;
  obf_config.train_seed = 0xA77AC5;
  for (const std::size_t bit : {3u, 17u}) {
    const auto r =
        mlattack::attack_obfuscated_bit(device, bit, 2000, rng, obf_config);
    table.add_row({"obfuscated z bit " + std::to_string(bit),
                   std::to_string(r.queries_used),
                   support::Table::num(r.train_accuracy, 3),
                   support::Table::num(r.test_accuracy, 3),
                   support::Table::num(r.wall_s, 2),
                   r.test_accuracy < 0.58 ? "resists (paper claim)"
                                          : "UNEXPECTED LEAK"});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper claim reproduced when: arbiter test acc -> ~1.0 with CRPs,\n"
      "raw ALU bits exceed chance, and obfuscated bits stay near 0.5.\n");
  return 0;
}
