// Durable store bench: what does crash safety cost, and how fast does a
// verifier come back?
//
// Five measurements, stable JSON schema (BENCH_store_recovery.json):
//   1. WAL append throughput across payload sizes and the group-commit
//      knob (sync_every=1 -> one fsync per record, the worst case;
//      sync_every=32 -> one fsync amortized over 32 appends);
//   2. recovery time vs log size (read + CRC-validate + replay);
//   3. an end-to-end kill-and-recover of a real verifier store (enroll,
//      consume CRP entries, reopen) gating correctness: recovered
//      remaining() must match, and two recoveries must serialize to
//      byte-identical state.
//
//   4. per-shard parallel recovery of a sharded store (1 vs 4 shards over
//      the same record count; full mode on a >=4-way machine gates the
//      4-shard speedup at >= 2x);
//   5. failover latency: shipping a primary's WAL to a follower and
//      promoting it, reported as a ship_s / promote_s row.
//
// `--smoke` runs a tiny sweep as a ctest smoke test labeled 'bench' and
// gates only the correctness claims; the full run reports real rates.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/crp_database.hpp"
#include "core/distributed.hpp"
#include "core/enrollment.hpp"
#include "ecc/reed_muller.hpp"
#include "store/records.hpp"
#include "store/recovery.hpp"
#include "store/replication.hpp"
#include "store/sharded_store.hpp"
#include "store/verifier_store.hpp"
#include "store/wal.hpp"

using namespace pufatt;
using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

const ecc::ReedMuller1& code() {
  static const ecc::ReedMuller1 instance(5);
  return instance;
}

std::string bench_dir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("pufatt_bench_store_" + name)).string();
  fs::remove_all(dir);
  return dir;
}

struct AppendResult {
  std::size_t payload_bytes = 0;
  std::size_t sync_every = 0;
  std::size_t records = 0;
  double records_per_s = 0.0;
  double mb_per_s = 0.0;
  double mean_append_us = 0.0;
};

AppendResult bench_append(std::size_t records, std::size_t payload_bytes,
                          std::size_t sync_every) {
  const std::string dir = bench_dir("append");
  store::WalOptions options;
  options.sync_every = sync_every;
  const std::string payload(payload_bytes, 'b');
  AppendResult result;
  result.payload_bytes = payload_bytes;
  result.sync_every = sync_every;
  result.records = records;
  {
    store::WalWriter wal(dir, options);
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < records; ++i) {
      wal.append(store::kCheckpoint, payload);
    }
    wal.sync();
    const double elapsed = seconds_since(t0);
    result.records_per_s = static_cast<double>(records) / elapsed;
    result.mb_per_s = static_cast<double>(wal.appended_bytes()) /
                      (1024.0 * 1024.0) / elapsed;
    result.mean_append_us = 1e6 * elapsed / static_cast<double>(records);
  }
  fs::remove_all(dir);
  return result;
}

struct RecoveryResult {
  std::size_t records = 0;
  std::uint64_t bytes = 0;
  double recover_s = 0.0;
  double records_per_s = 0.0;
  bool counts_match = false;
};

RecoveryResult bench_recovery(std::size_t records) {
  const std::string dir = bench_dir("recovery");
  const std::string payload(64, 'r');
  {
    store::WalWriter wal(dir);
    for (std::size_t i = 0; i < records; ++i) {
      wal.append(store::kCheckpoint, payload);
    }
    wal.sync();
  }
  RecoveryResult result;
  result.records = records;
  const auto t0 = Clock::now();
  const auto state = store::recover(dir);
  result.recover_s = seconds_since(t0);
  result.bytes = state.stats.wal_bytes;
  result.records_per_s =
      static_cast<double>(records) / std::max(result.recover_s, 1e-12);
  result.counts_match = state.stats.records_replayed == records &&
                        !state.stats.torn_tail;
  fs::remove_all(dir);
  return result;
}

struct StoreResult {
  std::size_t devices = 0;
  std::size_t entries_per_device = 0;
  std::size_t consumed = 0;
  std::size_t remaining_after_recovery = 0;
  double reopen_s = 0.0;
  bool remaining_match = false;
  bool byte_stable = false;
};

/// End-to-end kill-and-recover: the acceptance workload as a bench.
StoreResult bench_store(std::size_t devices, std::size_t entries,
                        std::size_t consume) {
  const std::string dir = bench_dir("kill_recover");
  StoreResult result;
  result.devices = devices;
  result.entries_per_device = entries;
  result.consumed = consume;

  const auto profile = core::DistributedParams::small_profile();
  support::Xoshiro256pp rng(0x57B);
  std::vector<std::uint32_t> firmware(600);
  for (auto& word : firmware) word = static_cast<std::uint32_t>(rng.next());
  const auto image = core::make_enrolled_image(profile, firmware);

  std::vector<std::unique_ptr<alupuf::PufDevice>> fleet;
  {
    auto db = store::VerifierStore::open(dir);
    for (std::size_t d = 0; d < devices; ++d) {
      fleet.push_back(std::make_unique<alupuf::PufDevice>(
          profile.puf_config, 0xBE7D + d, code()));
      db->enroll("bench-" + std::to_string(d),
                 core::enroll(*fleet.back(), profile, image));
      support::Xoshiro256pp crp_rng(0xC21 + d);
      db->enroll_crps(
          "bench-" + std::to_string(d),
          core::CrpDatabase::collect(fleet.back()->raw_puf(), entries,
                                     crp_rng));
    }
    for (std::size_t k = 0; k < consume; ++k) {
      const std::size_t d = k % devices;
      (void)db->authenticate_crp("bench-" + std::to_string(d),
                                 fleet[d]->raw_puf(), rng);
    }
    db->sync();
  }  // process state dropped

  const auto t0 = Clock::now();
  auto recovered = store::VerifierStore::open(dir);
  result.reopen_s = seconds_since(t0);
  result.remaining_after_recovery = recovered->recovery_stats().crp_remaining;
  result.remaining_match =
      result.remaining_after_recovery == devices * entries - consume;

  auto serialize = [&] {
    const auto state = store::recover(dir);
    std::stringstream registry(std::ios::in | std::ios::out |
                               std::ios::binary);
    state.registry.save(registry);
    std::stringstream ledger(std::ios::in | std::ios::out | std::ios::binary);
    state.ledger->save(ledger);
    return registry.str() + ledger.str();
  };
  result.byte_stable = serialize() == serialize();
  fs::remove_all(dir);
  return result;
}

struct ShardedResult {
  std::size_t shards = 0;
  std::size_t records = 0;
  double recover_s = 0.0;
  double records_per_s = 0.0;
  bool counts_match = false;
};

/// Parallel shard recovery: `records` checkpoint records spread evenly
/// over `shards` shard WALs, then one timed ShardedVerifierStore::open
/// with one recovery thread per shard.
ShardedResult bench_sharded_recovery(std::size_t shards, std::size_t records) {
  const std::string dir = bench_dir("sharded_" + std::to_string(shards));
  const std::string payload(64, 's');
  const std::size_t per_shard = records / shards;
  store::ShardedVerifierStore::write_manifest(dir, shards);
  for (std::size_t k = 0; k < shards; ++k) {
    store::WalWriter wal(store::ShardedVerifierStore::shard_dir(dir, k));
    for (std::size_t i = 0; i < per_shard; ++i) {
      wal.append(store::kCheckpoint, payload);
    }
    wal.sync();
  }

  ShardedResult result;
  result.shards = shards;
  result.records = per_shard * shards;
  store::ShardedStoreOptions options;
  options.shards = 0;  // the manifest decides
  options.recovery_threads = shards;
  const auto t0 = Clock::now();
  auto db = store::ShardedVerifierStore::open(dir, options);
  result.recover_s = seconds_since(t0);
  result.records_per_s =
      static_cast<double>(result.records) / std::max(result.recover_s, 1e-12);
  std::size_t replayed = 0;
  for (std::size_t k = 0; k < shards; ++k) {
    replayed += db->shard(k).recovery_stats().records_replayed;
  }
  result.counts_match = replayed == result.records;
  db.reset();
  fs::remove_all(dir);
  return result;
}

struct PromoteResult {
  std::size_t records = 0;
  std::uint64_t shipped_bytes = 0;
  double ship_s = 0.0;
  double promote_s = 0.0;
  bool state_match = false;
};

/// Failover latency: WAL-ship a checkpoint-heavy primary to a fresh
/// follower, then promote the follower, timing both legs separately.
PromoteResult bench_promote(std::size_t records) {
  const std::string primary = bench_dir("promote_primary");
  const std::string follower = bench_dir("promote_follower");
  const std::string payload(64, 'p');
  {
    store::WalWriter wal(primary);
    for (std::size_t i = 0; i < records; ++i) {
      wal.append(store::kCheckpoint, payload);
    }
    wal.sync();
  }
  PromoteResult result;
  result.records = records;
  store::ShardFollower repl(primary, follower);
  const auto t0 = Clock::now();
  const auto status = repl.ship();
  result.ship_s = seconds_since(t0);
  result.shipped_bytes = status.shipped_bytes;
  const auto t1 = Clock::now();
  auto promoted = repl.promote();
  result.promote_s = seconds_since(t1);
  result.state_match =
      promoted->recovery_stats().records_replayed == records &&
      !promoted->recovery_stats().torn_tail;
  promoted.reset();
  fs::remove_all(primary);
  fs::remove_all(follower);
  return result;
}

void write_json(bool smoke, const std::vector<AppendResult>& appends,
                const std::vector<RecoveryResult>& recoveries,
                const StoreResult& kill,
                const std::vector<ShardedResult>& sharded,
                double sharded_speedup, const PromoteResult& promote,
                bool ok) {
  std::FILE* f = std::fopen("BENCH_store_recovery.json", "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"store_recovery\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"append\": [\n");
  for (std::size_t i = 0; i < appends.size(); ++i) {
    const auto& a = appends[i];
    std::fprintf(f,
                 "    {\"payload_bytes\": %zu, \"sync_every\": %zu, "
                 "\"records\": %zu, \"records_per_s\": %.0f, "
                 "\"mb_per_s\": %.2f, \"mean_append_us\": %.3f}%s\n",
                 a.payload_bytes, a.sync_every, a.records, a.records_per_s,
                 a.mb_per_s, a.mean_append_us,
                 i + 1 < appends.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"recovery\": [\n");
  for (std::size_t i = 0; i < recoveries.size(); ++i) {
    const auto& r = recoveries[i];
    std::fprintf(f,
                 "    {\"records\": %zu, \"bytes\": %llu, "
                 "\"recover_s\": %.6f, \"records_per_s\": %.0f}%s\n",
                 r.records, static_cast<unsigned long long>(r.bytes),
                 r.recover_s, r.records_per_s,
                 i + 1 < recoveries.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"kill_and_recover\": {\"devices\": %zu, "
               "\"entries_per_device\": %zu, \"consumed\": %zu, "
               "\"remaining\": %zu, \"reopen_s\": %.6f, "
               "\"remaining_match\": %s, \"byte_stable\": %s},\n",
               kill.devices, kill.entries_per_device, kill.consumed,
               kill.remaining_after_recovery, kill.reopen_s,
               kill.remaining_match ? "true" : "false",
               kill.byte_stable ? "true" : "false");
  std::fprintf(f, "  \"sharded\": [\n");
  for (std::size_t i = 0; i < sharded.size(); ++i) {
    const auto& s = sharded[i];
    std::fprintf(f,
                 "    {\"shards\": %zu, \"records\": %zu, "
                 "\"recover_s\": %.6f, \"records_per_s\": %.0f}%s\n",
                 s.shards, s.records, s.recover_s, s.records_per_s,
                 i + 1 < sharded.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"sharded_speedup_4x\": %.2f,\n", sharded_speedup);
  std::fprintf(f,
               "  \"promote\": {\"records\": %zu, \"shipped_bytes\": %llu, "
               "\"ship_s\": %.6f, \"promote_s\": %.6f, "
               "\"state_match\": %s},\n",
               promote.records,
               static_cast<unsigned long long>(promote.shipped_bytes),
               promote.ship_s, promote.promote_s,
               promote.state_match ? "true" : "false");
  std::fprintf(f, "  \"ok\": %s\n", ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("=== Durable store: append throughput, group commit, "
              "recovery (%s) ===\n\n", smoke ? "smoke" : "full");

  // ---- 1. append throughput / group commit -------------------------------
  const std::size_t append_records = smoke ? 500 : 20000;
  std::vector<AppendResult> appends;
  for (const std::size_t payload : {std::size_t{64}, std::size_t{1024}}) {
    for (const std::size_t sync_every : {std::size_t{1}, std::size_t{32}}) {
      appends.push_back(bench_append(append_records, payload, sync_every));
    }
  }
  std::printf("append (%zu records each):\n", append_records);
  std::printf("  %8s %10s %12s %10s %14s\n", "payload", "sync_every",
              "records/s", "MB/s", "mean_append_us");
  for (const auto& a : appends) {
    std::printf("  %8zu %10zu %12.0f %10.2f %14.3f\n", a.payload_bytes,
                a.sync_every, a.records_per_s, a.mb_per_s, a.mean_append_us);
  }

  // ---- 2. recovery time vs log size --------------------------------------
  std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{500, 2000}
            : std::vector<std::size_t>{5000, 50000, 150000};
  std::vector<RecoveryResult> recoveries;
  bool ok = true;
  std::printf("\nrecovery (64-byte records):\n");
  std::printf("  %8s %12s %12s %12s\n", "records", "bytes", "recover_s",
              "records/s");
  for (const auto size : sizes) {
    recoveries.push_back(bench_recovery(size));
    const auto& r = recoveries.back();
    std::printf("  %8zu %12llu %12.6f %12.0f\n", r.records,
                static_cast<unsigned long long>(r.bytes), r.recover_s,
                r.records_per_s);
    if (!r.counts_match) {
      std::printf("FAIL: recovery replayed the wrong record count\n");
      ok = false;
    }
  }

  // ---- 3. end-to-end kill-and-recover ------------------------------------
  const auto kill = bench_store(/*devices=*/smoke ? 2 : 3,
                                /*entries=*/smoke ? 4 : 8,
                                /*consume=*/smoke ? 3 : 10);
  std::printf("\nkill-and-recover: %zu devices x %zu entries, %zu consumed "
              "-> %zu remaining, reopen %.3f ms\n",
              kill.devices, kill.entries_per_device, kill.consumed,
              kill.remaining_after_recovery, 1e3 * kill.reopen_s);
  if (!kill.remaining_match) {
    std::printf("FAIL: recovered remaining() does not match N*count-K\n");
    ok = false;
  }
  if (!kill.byte_stable) {
    std::printf("FAIL: two recoveries serialized differently\n");
    ok = false;
  }

  // ---- 4. sharded parallel recovery: 1 vs 4 shards -----------------------
  const std::size_t sharded_records = smoke ? 4000 : 80000;
  std::vector<ShardedResult> sharded;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    sharded.push_back(bench_sharded_recovery(shards, sharded_records));
  }
  std::printf("\nsharded recovery (%zu checkpoint records total):\n",
              sharded_records);
  std::printf("  %8s %12s %12s\n", "shards", "recover_s", "records/s");
  for (const auto& s : sharded) {
    std::printf("  %8zu %12.6f %12.0f\n", s.shards, s.recover_s,
                s.records_per_s);
    if (!s.counts_match) {
      std::printf("FAIL: sharded recovery replayed the wrong record count\n");
      ok = false;
    }
  }
  const double sharded_speedup =
      sharded[0].recover_s / std::max(sharded[1].recover_s, 1e-12);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("  4-shard speedup: %.2fx (%u-way machine)\n", sharded_speedup,
              hw);
  // The acceptance gate: with real parallelism available, 4 independent
  // shards must recover at least 2x faster than one monolith.  Smoke runs
  // are too small to time reliably, so only the full run gates.
  if (!smoke && hw >= 4 && sharded_speedup < 2.0) {
    std::printf("FAIL: 4-shard recovery speedup %.2fx < 2x\n",
                sharded_speedup);
    ok = false;
  }

  // ---- 5. failover: ship + promote latency -------------------------------
  const auto promote = bench_promote(smoke ? 2000 : 50000);
  std::printf("\npromote: %zu records, %llu bytes shipped in %.3f ms, "
              "promoted in %.3f ms\n",
              promote.records,
              static_cast<unsigned long long>(promote.shipped_bytes),
              1e3 * promote.ship_s, 1e3 * promote.promote_s);
  if (!promote.state_match) {
    std::printf("FAIL: promoted follower replayed the wrong record count\n");
    ok = false;
  }

  write_json(smoke, appends, recoveries, kill, sharded, sharded_speedup,
             promote, ok);
  std::printf("\n[%s] wrote BENCH_store_recovery.json\n", ok ? "ok" : "FAIL");
  return ok ? 0 : 1;
}
