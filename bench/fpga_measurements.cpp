// Reproduction of the paper's in-text FPGA measurements (Section 4.1,
// "Implementation"): two 16-bit ALU PUFs on two Virtex-5 boards, PDL-tuned.
//
// Paper: inter-chip HD 3.0 bits (18.8%) raw / 6.6 bits (41.3%) obfuscated;
// intra-chip HD 2.9 bits (18.6%) — "a little higher than in our simulation
// due to environmental fluctuations".
#include <array>
#include <cstdio>

#include "alupuf/obfuscation.hpp"
#include "fpga/board.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace pufatt;

int main() {
  std::printf("=== FPGA prototype measurements (two boards, 16-bit, "
              "PDL-tuned) ===\n\n");

  support::Xoshiro256pp rng(0xB0A2D);
  fpga::FpgaBoard board_a({}, 501);
  fpga::FpgaBoard board_b({}, 502);

  std::printf("calibrating PDLs (bisection on arbiter bias)...\n");
  const double resid_a = board_a.calibrate(200, rng);
  const double resid_b = board_b.calibrate(200, rng);
  std::printf("  worst residual |bias-0.5|: board A %.3f, board B %.3f\n\n",
              resid_a, resid_b);

  const std::size_t challenges = 4000;
  support::Histogram inter_raw(17), intra(17), inter_obf(17);
  const alupuf::ObfuscationNetwork obf(16);

  auto obf_eval = [&](const fpga::FpgaBoard& board,
                      support::Xoshiro256pp& r) {
    std::array<support::BitVector, 8> responses;
    for (auto& resp : responses) {
      resp = board.eval(support::BitVector::random(32, r), r);
    }
    return obf.obfuscate(responses);
  };

  for (std::size_t c = 0; c < challenges; ++c) {
    const auto challenge = support::BitVector::random(32, rng);
    const auto ra = board_a.eval(challenge, rng);
    const auto rb = board_b.eval(challenge, rng);
    inter_raw.add(ra.hamming_distance(rb));
    intra.add(ra.hamming_distance(board_a.eval(challenge, rng)));
  }
  // Obfuscated comparison: same random stream drives both boards' challenge
  // sets so corresponding outputs consume identical challenges.
  for (std::size_t c = 0; c < challenges / 8; ++c) {
    support::Xoshiro256pp sa(7000 + c), sb(7000 + c);
    inter_obf.add(obf_eval(board_a, sa).hamming_distance(obf_eval(board_b, sb)));
  }

  std::printf("%s\n", inter_raw.render("inter-board HD, raw").c_str());
  std::printf("%s\n", inter_obf.render("inter-board HD, obfuscated").c_str());
  std::printf("%s\n", intra.render("intra-board HD").c_str());

  support::Table table({"metric", "paper (bits)", "paper %", "ours (bits)",
                        "ours %"});
  table.add_row({"inter-chip raw", "3.0", "18.8%",
                 support::Table::num(inter_raw.mean(), 2),
                 support::Table::num(inter_raw.mean() / 16.0 * 100.0, 1) + "%"});
  table.add_row({"inter-chip obfuscated", "6.6", "41.3%",
                 support::Table::num(inter_obf.mean(), 2),
                 support::Table::num(inter_obf.mean() / 16.0 * 100.0, 1) + "%"});
  table.add_row({"intra-chip", "2.9", "18.6%",
                 support::Table::num(intra.mean(), 2),
                 support::Table::num(intra.mean() / 16.0 * 100.0, 1) + "%"});
  std::printf("%s\n", table.render().c_str());

  std::printf("shape checks:\n");
  std::printf("  obfuscation raises inter-chip HD toward 50%%: %s\n",
              inter_obf.mean() / 16.0 > inter_raw.mean() / 16.0 ? "YES" : "NO");
  std::printf("  FPGA intra-HD exceeds the ASIC simulation's (11.3%% paper): "
              "%s (%.1f%%)\n",
              intra.mean() / 16.0 > 0.113 ? "YES" : "NO",
              intra.mean() / 16.0 * 100.0);
  return 0;
}
