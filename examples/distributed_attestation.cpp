// Distributed mutual attestation (Yang et al., SRDS 2007 — one of the
// paper's cited SWAT instantiations): no base station required; nodes in a
// k-connected ring audit their neighbours with the full PUFatt protocol
// and convict by quorum.
#include <cstdio>

#include "core/distributed.hpp"
#include "support/table.hpp"

using namespace pufatt;
using namespace pufatt::core;

namespace {

const char* health_name(NodeHealth health) {
  switch (health) {
    case NodeHealth::kHealthy: return "healthy";
    case NodeHealth::kNaiveMalware: return "naive malware";
    case NodeHealth::kHidingMalware: return "hiding malware";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("Distributed mutual attestation (no base station)\n"
              "================================================\n\n");

  DistributedParams params;
  params.num_nodes = 10;
  params.degree = 2;   // each node audits 4 neighbours
  params.quorum = 3;   // convicted when 3+ neighbours reject

  DistributedNetwork net(params,
                         {{3, NodeHealth::kNaiveMalware},
                          {7, NodeHealth::kHidingMalware}},
                         20260705);
  support::Xoshiro256pp rng(99);

  std::printf("topology: %zu-node ring, degree %zu, quorum %zu\n\n",
              params.num_nodes, params.degree, params.quorum);

  const auto verdicts = net.run_round(rng);
  support::Table table({"node", "ground truth", "rejections", "audits",
                        "verdict"});
  std::size_t convicted = 0;
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const auto& v = verdicts[i];
    if (v.convicted) ++convicted;
    table.add_row({"node " + std::to_string(i), health_name(v.truth),
                   std::to_string(v.rejections), std::to_string(v.audits),
                   v.convicted ? "CONVICTED" : "trusted"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("convicted %zu of %zu nodes (expected 2)\n", convicted,
              verdicts.size());
  std::printf(
      "\nbecause every pairwise audit is PUF-bound, a convicted node cannot\n"
      "shift the blame: its neighbours' verdicts rest on its own silicon.\n");

  // --- the same round on a degraded radio -----------------------------------
  // 5% packet loss on every link, and node 5 sits in a radio dead zone.
  // Auditors drive retrying sessions; audits that stay silent count as
  // inconclusive, and the evidence floor keeps the dead-zone node from
  // being convicted on silence.
  std::printf("\nDegraded radio: 5%% loss everywhere, node 5 partitioned\n"
              "-------------------------------------------------------\n\n");
  DistributedParams degraded = params;
  degraded.radio_faults.loss_prob = 0.05;
  degraded.session.max_attempts = 4;
  DistributedNetwork lossy_net(degraded,
                               {{3, NodeHealth::kNaiveMalware},
                                {7, NodeHealth::kHidingMalware}},
                               20260705);
  lossy_net.set_partitioned(5, true);
  const auto lossy_verdicts = lossy_net.run_round(rng);
  support::Table lossy_table({"node", "ground truth", "rej", "done", "inconcl",
                              "lost pkts", "verdict"});
  std::size_t lossy_convicted = 0;
  for (std::size_t i = 0; i < lossy_verdicts.size(); ++i) {
    const auto& v = lossy_verdicts[i];
    if (v.convicted) ++lossy_convicted;
    const char* verdict = v.convicted ? "CONVICTED"
                          : v.evidence_met ? "trusted"
                                           : "NO EVIDENCE (re-audit)";
    lossy_table.add_row({"node " + std::to_string(i), health_name(v.truth),
                         std::to_string(v.rejections),
                         std::to_string(v.completed),
                         std::to_string(v.inconclusive),
                         std::to_string(v.packets_lost), verdict});
  }
  std::printf("%s\n", lossy_table.render().c_str());
  std::printf("convicted %zu of %zu nodes (expected 2; the partitioned node\n"
              "is flagged for re-audit, not convicted on silence)\n",
              lossy_convicted, lossy_verdicts.size());
  const bool degraded_ok = lossy_convicted == 2 &&
                           !lossy_verdicts[5].convicted &&
                           !lossy_verdicts[5].evidence_met;
  return convicted == 2 && degraded_ok ? 0 : 1;
}
