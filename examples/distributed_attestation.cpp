// Distributed mutual attestation (Yang et al., SRDS 2007 — one of the
// paper's cited SWAT instantiations): no base station required; nodes in a
// k-connected ring audit their neighbours with the full PUFatt protocol
// and convict by quorum.
#include <cstdio>

#include "core/distributed.hpp"
#include "support/table.hpp"

using namespace pufatt;
using namespace pufatt::core;

namespace {

const char* health_name(NodeHealth health) {
  switch (health) {
    case NodeHealth::kHealthy: return "healthy";
    case NodeHealth::kNaiveMalware: return "naive malware";
    case NodeHealth::kHidingMalware: return "hiding malware";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("Distributed mutual attestation (no base station)\n"
              "================================================\n\n");

  DistributedParams params;
  params.num_nodes = 10;
  params.degree = 2;   // each node audits 4 neighbours
  params.quorum = 3;   // convicted when 3+ neighbours reject

  DistributedNetwork net(params,
                         {{3, NodeHealth::kNaiveMalware},
                          {7, NodeHealth::kHidingMalware}},
                         20260705);
  support::Xoshiro256pp rng(99);

  std::printf("topology: %zu-node ring, degree %zu, quorum %zu\n\n",
              params.num_nodes, params.degree, params.quorum);

  const auto verdicts = net.run_round(rng);
  support::Table table({"node", "ground truth", "rejections", "audits",
                        "verdict"});
  std::size_t convicted = 0;
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const auto& v = verdicts[i];
    if (v.convicted) ++convicted;
    table.add_row({"node " + std::to_string(i), health_name(v.truth),
                   std::to_string(v.rejections), std::to_string(v.audits),
                   v.convicted ? "CONVICTED" : "trusted"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("convicted %zu of %zu nodes (expected 2)\n", convicted,
              verdicts.size());
  std::printf(
      "\nbecause every pairwise audit is PUF-bound, a convicted node cannot\n"
      "shift the blame: its neighbours' verdicts rest on its own silicon.\n");
  return convicted == 2 ? 0 : 1;
}
