// SCUBA-style secure firmware update (Seshadri et al., WiSe 2006 — the
// checksum the paper's SWAT adapts was built for exactly this): the base
// station only ships a firmware update to a node that just proved its
// software state, and re-attests after installation against the *new*
// enrolled image.
#include <cstdio>
#include <vector>

#include "core/enrollment.hpp"
#include "core/protocol.hpp"
#include "ecc/reed_muller.hpp"

using namespace pufatt;

namespace {

double elapsed_with_radio(const core::Channel& radio,
                          const core::CpuProver::Outcome& outcome) {
  return outcome.compute_us +
         radio.round_trip_us(8, outcome.response.wire_bytes());
}

}  // namespace

int main() {
  std::printf("Secure firmware update gated on attestation\n"
              "===========================================\n\n");

  const ecc::ReedMuller1 code(5);
  auto profile = core::DeviceProfile::standard();
  profile.swat.rounds = 1024;
  profile.swat.attest_words = 2048;
  profile.layout = swat::SwatLayout::standard(profile.swat);

  support::Xoshiro256pp rng(7);
  const core::Channel radio;
  const alupuf::PufDevice device(profile.puf_config, 0xF1D0, code);

  // Version 1 firmware, enrolled at the factory.
  std::vector<std::uint32_t> firmware_v1(1400, 0x00010000u);
  auto record_v1 = core::enroll(
      device, profile, core::make_enrolled_image(profile, firmware_v1));
  core::Verifier verifier_v1(record_v1, code);

  // --- Step 1: attest the node before shipping the update -----------------
  core::CpuProver prover_v1(device, record_v1,
                            core::CpuProver::Variant::kHonest, 1);
  const auto request1 = verifier_v1.make_request(rng);
  const auto outcome1 = prover_v1.respond(request1);
  const auto result1 = verifier_v1.verify(request1, outcome1.response,
                                          elapsed_with_radio(radio, outcome1));
  std::printf("pre-update attestation: %s\n", core::to_string(result1.status));
  if (!result1.accepted()) {
    std::printf("node unhealthy; refusing to ship firmware\n");
    return 1;
  }

  // --- Step 2: install version 2 and re-enroll the expected image ----------
  std::printf("shipping firmware v2 (%zu words)...\n", std::size_t{1400});
  std::vector<std::uint32_t> firmware_v2(1400, 0x00020000u);
  for (std::size_t i = 0; i < firmware_v2.size(); i += 3) {
    firmware_v2[i] ^= static_cast<std::uint32_t>(i);
  }
  // The verifier updates its reference image; the delay table H and the
  // honest cycle count are unchanged (same die, same SWAT program).
  auto record_v2 = record_v1;
  record_v2.enrolled_image = core::make_enrolled_image(profile, firmware_v2);
  core::Verifier verifier_v2(record_v2, code);

  // --- Step 3: post-install attestation against the NEW image --------------
  core::CpuProver prover_v2(device, record_v2,
                            core::CpuProver::Variant::kHonest, 2);
  const auto request2 = verifier_v2.make_request(rng);
  const auto outcome2 = prover_v2.respond(request2);
  const auto result2 = verifier_v2.verify(request2, outcome2.response,
                                          elapsed_with_radio(radio, outcome2));
  std::printf("post-update attestation (v2 image): %s\n",
              core::to_string(result2.status));

  // --- Step 4: a node that silently kept v1 fails against the v2 image -----
  core::CpuProver stale(device, record_v1, core::CpuProver::Variant::kHonest, 3);
  const auto request3 = verifier_v2.make_request(rng);
  const auto outcome3 = stale.respond(request3);
  const auto result3 = verifier_v2.verify(request3, outcome3.response,
                                          elapsed_with_radio(radio, outcome3));
  std::printf("node that skipped the update: %s\n",
              core::to_string(result3.status));

  return result2.accepted() && !result3.accepted() ? 0 : 1;
}
