// Sensor-network fleet attestation — the workload the paper's introduction
// motivates: a base station periodically verifies the software state of a
// fleet of resource-constrained nodes over a low-bandwidth radio.
//
// Two nodes are compromised: node 3 carries naive malware (tampered data,
// no hiding), node 6 hides its malware with the classic memory-redirection
// technique.  The base station must flag exactly those two.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/enrollment.hpp"
#include "core/protocol.hpp"
#include "ecc/reed_muller.hpp"
#include "support/table.hpp"

using namespace pufatt;

int main() {
  std::printf("Sensor-network fleet attestation\n"
              "================================\n\n");

  const ecc::ReedMuller1 code(5);
  auto profile = core::DeviceProfile::standard();
  profile.swat.rounds = 1024;  // short audit round for the demo
  profile.swat.attest_words = 2048;
  profile.layout = swat::SwatLayout::standard(profile.swat);

  const std::size_t fleet_size = 8;
  support::Xoshiro256pp rng(2026);
  // The base station budgets for the same radio it actually uses.
  const core::ChannelParams radio_params{.bandwidth_bps = 250'000.0,
                                         .latency_us = 3'000.0};
  const core::Channel radio(radio_params);

  // Deploy the fleet: every node is a distinct die running the same
  // firmware; the base station enrolls each at manufacturing.
  struct Node {
    std::unique_ptr<alupuf::PufDevice> device;
    std::unique_ptr<core::Verifier> verifier;
    std::unique_ptr<core::CpuProver> prover;
    const char* note;
  };
  std::vector<std::uint32_t> firmware(1500);
  for (auto& w : firmware) w = static_cast<std::uint32_t>(rng.next());

  std::vector<Node> fleet;
  for (std::size_t i = 0; i < fleet_size; ++i) {
    Node node;
    node.device = std::make_unique<alupuf::PufDevice>(
        profile.puf_config, 0x5E50'0000 + i, code);
    auto record = core::enroll(*node.device, profile,
                               core::make_enrolled_image(profile, firmware));
    node.note = "healthy";

    auto variant = core::CpuProver::Variant::kHonest;
    auto prover_record = record;
    if (i == 3) {
      // Naive malware: flips firmware words, makes no attempt to hide.
      for (std::size_t w = 1200; w < 1300; ++w) {
        prover_record.enrolled_image[w] ^= 0xDEADBEEFu;
      }
      node.note = "naive malware";
    } else if (i == 6) {
      // Hiding malware: redirects checksum reads to a pristine copy.
      variant = core::CpuProver::Variant::kRedirectMalware;
      node.note = "redirection malware";
    }
    node.verifier =
        std::make_unique<core::Verifier>(record, code, radio_params);
    node.prover = std::make_unique<core::CpuProver>(*node.device, prover_record,
                                                    variant, 100 + i);
    fleet.push_back(std::move(node));
  }

  // Audit sweep.
  support::Table table({"node", "ground truth", "verdict", "elapsed (ms)",
                        "deadline (ms)"});
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    auto& node = fleet[i];
    const auto request = node.verifier->make_request(rng);
    const auto outcome = node.prover->respond(request);
    const double elapsed =
        outcome.compute_us +
        radio.round_trip_us(8, outcome.response.wire_bytes());
    const auto result =
        node.verifier->verify(request, outcome.response, elapsed);
    if (!result.accepted()) ++flagged;
    table.add_row({"node " + std::to_string(i), node.note,
                   core::to_string(result.status),
                   support::Table::num(result.elapsed_us / 1000.0, 2),
                   support::Table::num(result.deadline_us / 1000.0, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("flagged %zu of %zu nodes (expected 2)\n", flagged, fleet_size);
  return flagged == 2 ? 0 : 1;
}
