// Modeling-attack walkthrough: an adversary with temporary physical access
// collects challenge/response pairs and trains a logistic-regression model
// (Ruehrmair-style), hoping to answer future attestations in software.
// The demo shows why the paper layers an XOR obfuscation network on top of
// the raw PUF: the raw interface is learnable; the obfuscated one is not.
#include <cstdio>

#include "core/crp_database.hpp"
#include "ecc/reed_muller.hpp"
#include "mlattack/attack.hpp"
#include "support/table.hpp"

using namespace pufatt;

int main() {
  std::printf("Modeling attack against the ALU PUF\n"
              "===================================\n\n");

  const ecc::ReedMuller1 code(5);
  alupuf::AluPufConfig config;
  config.width = 32;
  const alupuf::PufDevice device(config, 0xACCE55, code);
  support::Xoshiro256pp rng(99);

  // --- Phase 1: the adversary trains on the raw response interface --------
  // (possible only with invasive access — the paper's architecture keeps
  // raw responses in registers "not visible to the outside").
  std::printf("phase 1: logistic regression on RAW response bits\n");
  support::Table raw_table({"bit", "queries", "test accuracy", "wall [s]"});
  mlattack::AttackConfig attack_config;
  attack_config.test_crps = 1000;
  attack_config.train_seed = 0xDEC0DE;  // fit independent of stream position
  double best_raw = 0.0;
  for (const std::size_t bit : {2u, 15u, 30u}) {
    const auto r = mlattack::attack_alu_raw_bit(device.raw_puf(), bit, 5000,
                                                rng, attack_config);
    best_raw = std::max(best_raw, r.test_accuracy);
    raw_table.add_row({std::to_string(bit), std::to_string(r.queries_used),
                       support::Table::num(r.test_accuracy, 3),
                       support::Table::num(r.wall_s, 2)});
  }
  std::printf("%s\n", raw_table.render().c_str());

  // --- Phase 2: the realistic attack surface: obfuscated outputs ----------
  std::printf("phase 2: the same attacker on the OBFUSCATED output z\n");
  support::Table obf_table({"bit", "queries", "test accuracy", "wall [s]"});
  mlattack::AttackConfig obf_config;
  obf_config.test_crps = 500;
  obf_config.train_seed = 0xDEC0DF;
  double best_obf = 0.0;
  for (const std::size_t bit : {2u, 15u, 30u}) {
    const auto r =
        mlattack::attack_obfuscated_bit(device, bit, 2000, rng, obf_config);
    best_obf = std::max(best_obf, r.test_accuracy);
    obf_table.add_row({std::to_string(bit), std::to_string(r.queries_used),
                       support::Table::num(r.test_accuracy, 3),
                       support::Table::num(r.wall_s, 2)});
  }
  std::printf("%s\n", obf_table.render().c_str());

  std::printf("best raw-bit model: %.1f%%   best obfuscated-bit model: %.1f%%\n",
              best_raw * 100.0, best_obf * 100.0);
  std::printf("-> the XOR network costs the attacker ~%.0f accuracy points\n\n",
              (best_raw - best_obf) * 100.0);

  // --- Phase 3: even a perfect raw model cannot pass CRP authentication
  //     for a *different* die (unclonability at the hardware level).
  std::printf("phase 3: CRP-database authentication (paper Section 2, "
              "option 1)\n");
  const alupuf::AluPuf clone(config, 0xC10'0E);
  auto db = core::CrpDatabase::collect(device.raw_puf(), 6, rng);
  int genuine_ok = 0, clone_ok = 0;
  for (int i = 0; i < 3; ++i) {
    if (db.authenticate(device.raw_puf(), rng).accepted) ++genuine_ok;
    if (db.authenticate(clone, rng).accepted) ++clone_ok;
  }
  std::printf("genuine device accepted %d/3, clone accepted %d/3 "
              "(database storage: %zu bytes, %zu entries left)\n",
              genuine_ok, clone_ok, db.storage_bytes(), db.remaining());

  return best_obf < 0.6 && genuine_ok == 3 && clone_ok == 0 ? 0 : 1;
}
