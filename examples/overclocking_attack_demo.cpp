// Overclocking-attack walkthrough (paper Section 4.2): an adversary hides
// malware with memory redirection, then cranks the clock to squeeze the
// extra cycles back inside the verifier's time bound — and runs into the
// PUF's setup-time wall.
#include <cstdio>

#include "core/enrollment.hpp"
#include "core/protocol.hpp"
#include "ecc/reed_muller.hpp"
#include "support/table.hpp"

using namespace pufatt;

int main() {
  std::printf("The overclocking attack, step by step\n"
              "=====================================\n\n");

  const ecc::ReedMuller1 code(5);
  auto profile = core::DeviceProfile::standard();
  profile.swat.rounds = 1024;
  profile.swat.attest_words = 2048;
  profile.layout = swat::SwatLayout::standard(profile.swat);

  support::Xoshiro256pp rng(11);
  const alupuf::PufDevice device(profile.puf_config, 0x0C10C7, code);
  const auto record = core::enroll(
      device, profile,
      core::make_enrolled_image(profile, std::vector<std::uint32_t>(1200, 5)));
  const core::Verifier verifier(record, code);
  const core::Channel radio;

  const double base = record.profile.base_clock_mhz;
  const double t_alu =
      device.raw_puf().max_settle_ps(variation::Environment::nominal());
  std::printf("enrolled base clock: %.0f MHz (cycle %.0f ps)\n", base,
              1e6 / base);
  std::printf("worst-case ALU settle time T_ALU: %.0f ps + 20 ps setup\n",
              t_alu);
  std::printf("-> headroom before PUF corruption: %.1f%%\n\n",
              (1e6 / base - 20.0) / t_alu * 100.0 - 100.0);

  std::printf("the redirection malware needs ~16%% extra cycles per round;\n"
              "the verifier tolerates 3%%.  The adversary sweeps the clock:\n\n");

  support::Table table({"prover clock", "compute time", "verdict"});
  for (const double mult : {1.00, 1.08, 1.16, 1.25, 1.60}) {
    core::CpuProver attacker(device, record,
                             core::CpuProver::Variant::kRedirectMalware,
                             static_cast<std::uint64_t>(mult * 100),
                             base * mult);
    const auto request = verifier.make_request(rng);
    const auto outcome = attacker.respond(request);
    const double elapsed =
        outcome.compute_us +
        radio.round_trip_us(8, outcome.response.wire_bytes());
    const auto result = verifier.verify(request, outcome.response, elapsed);
    table.add_row({support::Table::num(mult, 2) + "x base",
                   support::Table::num(outcome.compute_us, 1) + " us",
                   core::to_string(result.status)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "at low clocks the extra redirection work blows the time bound; at\n"
      "clocks high enough to hide it, the carry-chain races no longer\n"
      "settle before the capture edge and the PUF returns garbage — the\n"
      "verifier sees reconstruction distances far outside the honest noise\n"
      "envelope.  There is no clock at which both checks pass.\n");
  return 0;
}
