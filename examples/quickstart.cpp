// Quickstart: manufacture a PUFatt device, enroll it, run one remote
// attestation and inspect the result.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/enrollment.hpp"
#include "core/protocol.hpp"
#include "ecc/reed_muller.hpp"

using namespace pufatt;

int main() {
  std::printf("PUFatt quickstart\n=================\n\n");

  // 1. The helper-data code: RM(1,5) = [32,6,16] (the paper's
  //    "BCH[32,6,16]").  It must outlive every device/verifier using it.
  const ecc::ReedMuller1 code(5);

  // 2. Device model: 32-bit ALU PUF, SWAT parameters, memory layout.
  const auto profile = core::DeviceProfile::standard();

  // 3. Manufacture one die.  The chip seed stands in for the fab lottery:
  //    every seed yields a physically distinct, unclonable device.
  const alupuf::PufDevice device(profile.puf_config, /*chip_seed=*/0xC0FFEE,
                                 code);

  // 4. Enrollment (trusted manufacturer): extract the gate-level delay
  //    table H, fix the shipped software image, measure the honest cycle
  //    count and set the per-die base clock just above T_ALU + T_set.
  std::vector<std::uint32_t> firmware(2000, 0xF1A5'0001u);
  const auto record = core::enroll(
      device, profile, core::make_enrolled_image(profile, firmware));
  std::printf("enrolled: %zu-word attested image, %llu honest cycles, "
              "base clock %.0f MHz\n",
              record.enrolled_image.size(),
              static_cast<unsigned long long>(record.honest_cycles),
              record.profile.base_clock_mhz);

  // 5. The verifier holds the enrollment record (and nothing secret ever
  //    leaves the device at runtime).
  const core::Verifier verifier(record, code);

  // 6. One attestation round trip over a 250 kbit/s sensor-node channel.
  support::Xoshiro256pp rng(42);
  core::CpuProver prover(device, record, core::CpuProver::Variant::kHonest,
                         /*rng_seed=*/1);
  const core::Channel channel;

  const auto request = verifier.make_request(rng);
  std::printf("\nverifier -> prover: nonce %016llx\n",
              static_cast<unsigned long long>(request.nonce));

  const auto outcome = prover.respond(request);
  std::printf("prover: SWAT ran %llu cycles (%.1f us), %zu helper words\n",
              static_cast<unsigned long long>(outcome.cycles),
              outcome.compute_us, outcome.response.helper_words.size());

  const double elapsed =
      outcome.compute_us +
      channel.round_trip_us(8, outcome.response.wire_bytes());
  const auto result = verifier.verify(request, outcome.response, elapsed);
  std::printf("verifier: %s (elapsed %.0f us, deadline %.0f us)\n",
              core::to_string(result.status), result.elapsed_us,
              result.deadline_us);

  // 7. Sanity: a different die answering the same request is rejected.
  const alupuf::PufDevice impostor(profile.puf_config, 0xBADD1E, code);
  core::CpuProver impostor_prover(impostor, record,
                                  core::CpuProver::Variant::kHonest, 2);
  const auto forged = impostor_prover.respond(request);
  const auto forged_result = verifier.verify(
      request, forged.response,
      forged.compute_us + channel.round_trip_us(8, forged.response.wire_bytes()));
  std::printf("impostor die: %s\n", core::to_string(forged_result.status));

  return result.accepted() && !forged_result.accepted() ? 0 : 1;
}
