#include <gtest/gtest.h>

#include "core/channel.hpp"
#include "cpu/assembler.hpp"
#include "core/crp_database.hpp"
#include "core/enrollment.hpp"
#include "core/protocol.hpp"
#include "core/puf_adapter.hpp"
#include "ecc/reed_muller.hpp"

namespace pufatt::core {
namespace {

using support::BitVector;
using support::Xoshiro256pp;

// ----------------------------------------------------------------- channel

TEST(Channel, TransferTimeScalesWithPayload) {
  const Channel ch({.bandwidth_bps = 1'000'000.0, .latency_us = 100.0});
  EXPECT_DOUBLE_EQ(ch.transfer_us(0), 100.0);
  EXPECT_DOUBLE_EQ(ch.transfer_us(125), 100.0 + 1000.0);  // 1000 bits @ 1Mbps
  EXPECT_DOUBLE_EQ(ch.round_trip_us(125, 125), 2200.0);
}

TEST(Channel, RejectsBadParams) {
  EXPECT_THROW(Channel({.bandwidth_bps = 0.0}), std::invalid_argument);
  EXPECT_THROW(Channel({.bandwidth_bps = 1.0, .latency_us = -1.0}),
               std::invalid_argument);
}

// ----------------------------------------------------------------- adapter

TEST(PufAdapter, HelperWordRoundTrip) {
  Xoshiro256pp rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto helper = BitVector::random(26, rng);
    EXPECT_EQ(helper_from_word(helper_to_word(helper), 26), helper);
  }
  EXPECT_THROW(helper_to_word(BitVector(33)), std::invalid_argument);
}

TEST(PufAdapter, ChallengeFromU64) {
  const auto c = challenge_from_u64(0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(c.size(), 64u);
  EXPECT_EQ(c.to_u64(), 0xDEADBEEFCAFEF00DULL);
}

// ------------------------------------------------------- protocol fixture

struct Testbed {
  // Smaller SWAT than production defaults to keep the suite fast, but the
  // full machinery: real gate-level PUF, real PR32 execution.
  Testbed()
      : code(5),
        profile(make_profile()),
        device(profile.puf_config, /*chip_seed=*/4242, code),
        record(enroll(device, profile,
                      make_enrolled_image(profile, make_payload()))),
        verifier(record, code) {}

  static DeviceProfile make_profile() {
    auto profile = DeviceProfile::standard();
    profile.swat.rounds = 512;
    profile.swat.puf_interval = 64;
    profile.swat.attest_words = 1024;
    profile.layout = swat::SwatLayout::standard(profile.swat);
    return profile;
  }

  static std::vector<std::uint32_t> make_payload() {
    std::vector<std::uint32_t> payload(600);
    Xoshiro256pp rng(777);
    for (auto& w : payload) w = static_cast<std::uint32_t>(rng.next());
    return payload;
  }

  ecc::ReedMuller1 code;
  DeviceProfile profile;
  alupuf::PufDevice device;
  EnrollmentRecord record;
  Verifier verifier;
};

class ProtocolTest : public ::testing::Test {
 protected:
  static Testbed& bed() {
    static Testbed instance;  // built once: enrollment is the slow part
    return instance;
  }

  /// Elapsed time as the verifier's clock sees it: prover compute plus the
  /// (deterministic) channel time the verifier also budgets for.  Both
  /// sides of the deadline comparison must include the channel terms, or
  /// the channel allowance gifts the adversary free headroom.
  static double elapsed_us(const CpuProver::Outcome& outcome) {
    const Channel channel;  // the verifier's default channel assumption
    return outcome.compute_us +
           channel.round_trip_us(8, outcome.response.wire_bytes());
  }

  Xoshiro256pp rng_{99};
};

// --------------------------------------------------------------- honest

TEST_F(ProtocolTest, HonestProverAccepted) {
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 1);
  const Channel channel;
  for (int run = 0; run < 3; ++run) {
    const auto request = bed().verifier.make_request(rng_);
    const auto outcome = prover.respond(request);
    const double elapsed =
        outcome.compute_us +
        channel.round_trip_us(8, outcome.response.wire_bytes());
    const auto result =
        bed().verifier.verify(request, outcome.response, elapsed);
    EXPECT_EQ(result.status, VerifyStatus::kAccepted)
        << to_string(result.status) << " elapsed " << result.elapsed_us
        << " deadline " << result.deadline_us;
  }
}

TEST_F(ProtocolTest, HonestCyclesMatchEnrollment) {
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 2);
  const auto request = bed().verifier.make_request(rng_);
  const auto outcome = prover.respond(request);
  EXPECT_EQ(outcome.cycles, bed().record.honest_cycles);
}

TEST_F(ProtocolTest, ResponsesDifferAcrossNonces) {
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 3);
  const auto r1 = prover.respond(AttestationRequest{111});
  const auto r2 = prover.respond(AttestationRequest{222});
  EXPECT_NE(r1.response.checksum, r2.response.checksum);
}

TEST_F(ProtocolTest, HelperTranscriptSizeMatchesPufCalls) {
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 4);
  const auto outcome = prover.respond(AttestationRequest{5});
  const auto calls =
      bed().profile.swat.rounds / bed().profile.swat.puf_interval;
  EXPECT_EQ(outcome.response.helper_words.size(), calls * 8);
}

// ------------------------------------------------------------- adversaries

TEST_F(ProtocolTest, MalwareWithoutHidingIsCaughtByChecksum) {
  // Naive adversary: tampered image, no redirection.  The checksum differs.
  auto tampered = bed().record;
  // Flip a block of data words ("malware"): with 512 rounds over 1024 words
  // a single word is only sampled with p ~ 0.4, so tamper enough words that
  // at least one is sampled with overwhelming probability.
  for (std::size_t w = 880; w < 940; ++w) tampered.enrolled_image[w] ^= 0x5A5Au;
  CpuProver prover(bed().device, tampered, CpuProver::Variant::kHonest, 5);
  const auto request = bed().verifier.make_request(rng_);
  const auto outcome = prover.respond(request);
  const auto result = bed().verifier.verify(request, outcome.response,
                                            elapsed_us(outcome));
  EXPECT_EQ(result.status, VerifyStatus::kChecksumMismatch);
}

TEST_F(ProtocolTest, RedirectionMalwareIsCaughtByTimeBound) {
  CpuProver prover(bed().device, bed().record,
                   CpuProver::Variant::kRedirectMalware, 6);
  const auto request = bed().verifier.make_request(rng_);
  const auto outcome = prover.respond(request);
  // The redirection preserves the checksum...
  EXPECT_GT(outcome.cycles, bed().record.honest_cycles);
  const auto result = bed().verifier.verify(request, outcome.response,
                                            elapsed_us(outcome));
  // ...but blows the deadline.
  EXPECT_EQ(result.status, VerifyStatus::kTimeExceeded);

  // Sanity: with an infinitely lenient verifier the checksum itself passes,
  // proving the adversary really computed the right value the slow way.
  Verifier lenient(bed().record, bed().code, ChannelParams{}, 10.0);
  const auto lenient_result =
      lenient.verify(request, outcome.response, elapsed_us(outcome));
  EXPECT_EQ(lenient_result.status, VerifyStatus::kAccepted);
}

TEST_F(ProtocolTest, OverclockedRedirectionCorruptsPuf) {
  // The adversary overclocks to squeeze the redirection overhead inside the
  // time bound; the PUF's setup-time violation then corrupts z (Section 4.2
  // "Overclocking Attack Resiliency").
  CpuProver prover(bed().device, bed().record,
                   CpuProver::Variant::kRedirectMalware, 7,
                   /*clock_mhz=*/bed().profile.base_clock_mhz * 2.0);
  const auto request = bed().verifier.make_request(rng_);
  const auto outcome = prover.respond(request);
  const auto result = bed().verifier.verify(request, outcome.response,
                                            elapsed_us(outcome));
  EXPECT_NE(result.status, VerifyStatus::kAccepted);
  // Specifically, it should NOT be the time bound that catches it.
  EXPECT_NE(result.status, VerifyStatus::kTimeExceeded);
}

TEST_F(ProtocolTest, HonestOverclockingAlsoFails) {
  // Even without malware, running the honest program overclocked corrupts
  // the PUF responses: F_base is chosen so that *any* speedup breaks
  // T_ALU + T_set < T_cycle.
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 8,
                   bed().profile.base_clock_mhz * 2.5);
  const auto request = bed().verifier.make_request(rng_);
  const auto outcome = prover.respond(request);
  const auto result = bed().verifier.verify(request, outcome.response,
                                            elapsed_us(outcome));
  EXPECT_NE(result.status, VerifyStatus::kAccepted);
}

TEST_F(ProtocolTest, ImpersonationWithWrongChipRejected) {
  // A different physical device (same model, different die) answers.
  const alupuf::PufDevice impostor(bed().profile.puf_config, 31337, bed().code);
  CpuProver prover(impostor, bed().record, CpuProver::Variant::kHonest, 9);
  const auto request = bed().verifier.make_request(rng_);
  const auto outcome = prover.respond(request);
  const auto result = bed().verifier.verify(request, outcome.response,
                                            elapsed_us(outcome));
  EXPECT_NE(result.status, VerifyStatus::kAccepted);
}

TEST_F(ProtocolTest, ProxyAttackBlowsDeadlineOnSlowChannel) {
  const auto request = bed().verifier.make_request(rng_);
  ProxyAttackParams params;
  params.accomplice_speedup = 100.0;
  params.oracle_channel = {.bandwidth_bps = 250'000.0, .latency_us = 2'000.0};
  const auto outcome =
      proxy_attack(bed().device, bed().record, request, params, rng_);
  // The proxy gets the *checksum* right (it used the real PUF as oracle)...
  std::size_t cursor = 0;
  const auto result = bed().verifier.verify(request, outcome.response,
                                            outcome.elapsed_us);
  EXPECT_EQ(result.status, VerifyStatus::kTimeExceeded);
  EXPECT_EQ(outcome.oracle_calls,
            bed().profile.swat.rounds / bed().profile.swat.puf_interval);
  (void)cursor;
}

TEST_F(ProtocolTest, ProxyAttackChecksumIsCorrectModuloTime) {
  // Confirms the only thing stopping the proxy is the channel.
  const auto request = bed().verifier.make_request(rng_);
  ProxyAttackParams params;
  params.accomplice_speedup = 1e9;  // free compute
  params.oracle_channel = {.bandwidth_bps = 1e12, .latency_us = 0.0};
  const auto outcome =
      proxy_attack(bed().device, bed().record, request, params, rng_);
  const auto result = bed().verifier.verify(request, outcome.response,
                                            outcome.elapsed_us);
  EXPECT_EQ(result.status, VerifyStatus::kAccepted)
      << "an instantaneous channel reduces the proxy to the honest device";
}

TEST_F(ProtocolTest, ForgedChecksumRejected) {
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 10);
  const auto request = bed().verifier.make_request(rng_);
  auto outcome = prover.respond(request);
  outcome.response.checksum[3] ^= 1;
  const auto result = bed().verifier.verify(request, outcome.response,
                                            elapsed_us(outcome));
  EXPECT_EQ(result.status, VerifyStatus::kChecksumMismatch);
}

TEST_F(ProtocolTest, TruncatedHelperTranscriptRejected) {
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 11);
  const auto request = bed().verifier.make_request(rng_);
  auto outcome = prover.respond(request);
  outcome.response.helper_words.resize(outcome.response.helper_words.size() - 3);
  const auto result = bed().verifier.verify(request, outcome.response,
                                            elapsed_us(outcome));
  EXPECT_EQ(result.status, VerifyStatus::kPufReconstructionFailed);
}

TEST_F(ProtocolTest, ReplayWithStaleNonceFails) {
  // A recorded response for nonce A does not verify against nonce B.
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 12);
  const AttestationRequest a{1111}, b{2222};
  const auto outcome = prover.respond(a);
  const auto result = bed().verifier.verify(b, outcome.response,
                                            elapsed_us(outcome));
  EXPECT_NE(result.status, VerifyStatus::kAccepted);
}

// --------------------------------------------------------------- misc API

TEST(Protocol, SeedFromNonceNeverZero) {
  EXPECT_NE(seed_from_nonce(0), 0u);
  EXPECT_NE(seed_from_nonce(0xFFFFFFFF00000000ULL ^
                            (0xFFFFFFFFULL << 32)), 0u);
  EXPECT_EQ(seed_from_nonce(0x1234567800000000ULL), 0x12345678u);
}

TEST(Enrollment, ImageLayout) {
  const auto profile = Testbed::make_profile();
  const std::vector<std::uint32_t> payload{10, 20, 30};
  const auto image = make_enrolled_image(profile, payload);
  EXPECT_EQ(image.size(), profile.swat.attest_words);
  // Program at the front, payload right after.
  const auto program =
      cpu::assemble(swat::generate_swat_source(profile.swat, profile.layout))
          .words;
  EXPECT_EQ(image[0], program[0]);
  EXPECT_EQ(image[program.size()], 10u);
  EXPECT_EQ(image[program.size() + 1], 20u);
}

TEST(Enrollment, RejectsWrongImageSize) {
  Testbed bed;
  EXPECT_THROW(enroll(bed.device, bed.profile, std::vector<std::uint32_t>(3)),
               std::invalid_argument);
}

// ------------------------------------------------------------ CRP database

TEST(CrpDatabaseTest, AuthenticatesGenuineDevice) {
  Testbed bed;
  Xoshiro256pp rng(50);
  auto db = CrpDatabase::collect(bed.device.raw_puf(), 20, rng);
  EXPECT_EQ(db.size(), 20u);
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    const auto result = db.authenticate(bed.device.raw_puf(), rng);
    EXPECT_FALSE(result.exhausted);
    accepted += result.accepted ? 1 : 0;
  }
  EXPECT_GE(accepted, 9);
  EXPECT_EQ(db.remaining(), 10u);
}

TEST(CrpDatabaseTest, RejectsCloneDevice) {
  Testbed bed;
  const alupuf::AluPuf clone(bed.profile.puf_config, 987654);
  Xoshiro256pp rng(51);
  auto db = CrpDatabase::collect(bed.device.raw_puf(), 20, rng);
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    accepted += db.authenticate(clone, rng).accepted ? 1 : 0;
  }
  EXPECT_LE(accepted, 1);
}

TEST(CrpDatabaseTest, ExhaustionIsReported) {
  Testbed bed;
  Xoshiro256pp rng(52);
  auto db = CrpDatabase::collect(bed.device.raw_puf(), 2, rng);
  db.authenticate(bed.device.raw_puf(), rng);
  db.authenticate(bed.device.raw_puf(), rng);
  const auto result = db.authenticate(bed.device.raw_puf(), rng);
  EXPECT_TRUE(result.exhausted);
  EXPECT_FALSE(result.accepted);
}

// Regression for the O(1) cursor: every authenticate() consumes exactly
// one entry — in order, whether it accepts, rejects, or fails — so
// remaining() ticks down deterministically and a failed attempt can never
// be replayed against the same entry.
TEST(CrpDatabaseTest, EveryAttemptConsumesExactlyOneEntry) {
  Testbed bed;
  const alupuf::AluPuf clone(bed.profile.puf_config, 987654);
  Xoshiro256pp rng(54);
  auto db = CrpDatabase::collect(bed.device.raw_puf(), 6, rng);
  ASSERT_EQ(db.remaining(), 6u);

  // Rejected attempts (clone) consume entries just like accepted ones.
  for (std::size_t attempt = 0; attempt < 6; ++attempt) {
    const auto& puf =
        attempt % 2 == 0 ? bed.device.raw_puf() : clone;
    const auto result = db.authenticate(puf, rng);
    EXPECT_FALSE(result.exhausted);
    EXPECT_EQ(db.remaining(), 6u - attempt - 1);
  }

  // Exhaustion is stable: further attempts consume nothing.
  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto result = db.authenticate(bed.device.raw_puf(), rng);
    EXPECT_TRUE(result.exhausted);
    EXPECT_EQ(db.remaining(), 0u);
  }
}

TEST(CrpDatabaseTest, StorageGrowsLinearly) {
  Testbed bed;
  Xoshiro256pp rng(53);
  const auto db1 = CrpDatabase::collect(bed.device.raw_puf(), 10, rng);
  const auto db2 = CrpDatabase::collect(bed.device.raw_puf(), 20, rng);
  EXPECT_EQ(db2.storage_bytes(), 2 * db1.storage_bytes());
  // 8 CRPs per entry, each 64 challenge + 32 response bits.
  EXPECT_EQ(db1.storage_bytes(), 10 * (8 * (64 + 32)) / 8);
}

}  // namespace
}  // namespace pufatt::core
