// Observability subsystem tests: tracer lifecycle and sampling, ring
// overflow accounting, exporter round-trips through the trace reader,
// metric-registry snapshot stability, and the instrumentation contracts
// of the service stack — span parenthood across the pool's worker
// threads, and thread-count invariance of the aggregated metrics.  The
// multi-threaded tests are expected to run clean under -DPUFATT_TSAN=ON.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/distributed.hpp"
#include "core/enrollment.hpp"
#include "ecc/reed_muller.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_read.hpp"
#include "service/device_registry.hpp"
#include "service/emulator_cache.hpp"
#include "service/verifier_pool.hpp"

namespace pufatt::obs {
namespace {

using support::Xoshiro256pp;

const ecc::ReedMuller1& code() {
  static const ecc::ReedMuller1 instance(5);
  return instance;
}

// Most tests below assert that spans actually arrive, which requires the
// tracing hooks to be compiled in.  A -DPUFATT_TRACE=OFF tree (the
// build-notrace leg of tools/ci.sh) instead proves everything degrades
// to no-ops — there these tests skip rather than assert on delivery.
#define PUFATT_REQUIRE_COMPILED_TRACING()                         \
  do {                                                            \
    if (!kTraceCompiled) {                                        \
      GTEST_SKIP() << "span delivery requires -DPUFATT_TRACE=ON"; \
    }                                                             \
  } while (0)

// --- Tracer core ------------------------------------------------------------

TEST(Tracer, DisabledTracerYieldsInertSpans) {
  Tracer tracer;
  Span span = tracer.span("root");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.id(), 0u);
  Span child = span.child("child");
  EXPECT_FALSE(child.active());
  span.note("ignored", 1.0);  // must be a harmless no-op
  span.end();
  EXPECT_TRUE(tracer.records().empty());
}

TEST(Tracer, RecordsParentChildAndNotes) {
  PUFATT_REQUIRE_COMPILED_TRACING();
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Span root = tracer.span("root");
    ASSERT_TRUE(root.active());
    root.note("answer", 42.0);
    Span child = root.child("child");
    ASSERT_TRUE(child.active());
    EXPECT_NE(child.id(), root.id());
    child.end();
    // Ending twice must not double-record.
    child.end();
  }
  const auto records = tracer.records();
  ASSERT_EQ(records.size(), 2u);
  // records() sorts by start time: root first.
  EXPECT_STREQ(records[0].name, "root");
  EXPECT_STREQ(records[1].name, "child");
  EXPECT_EQ(records[0].parent, 0u);
  EXPECT_EQ(records[1].parent, records[0].id);
  ASSERT_EQ(records[0].note_count, 1u);
  EXPECT_STREQ(records[0].notes[0].key, "answer");
  EXPECT_EQ(records[0].notes[0].value, 42.0);
  EXPECT_LE(records[0].start_ns, records[1].start_ns);
  EXPECT_GE(records[0].end_ns, records[1].end_ns);
}

TEST(Tracer, HalfSampleRateKeepsEveryOtherRoot) {
  PUFATT_REQUIRE_COMPILED_TRACING();
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_sample_rate(0.5);
  std::size_t sampled_roots = 0;
  std::size_t sampled_children = 0;
  for (int i = 0; i < 10; ++i) {
    Span root = tracer.span("root");
    Span child = root.child("child");
    if (root.active()) ++sampled_roots;
    if (child.active()) ++sampled_children;
  }
  // Counter-based sampling spreads evenly: exactly half, deterministically.
  EXPECT_EQ(sampled_roots, 5u);
  // Children follow their root's fate, never their own coin.
  EXPECT_EQ(sampled_children, sampled_roots);
  EXPECT_EQ(tracer.records().size(), 10u);
}

TEST(Tracer, ZeroSampleRateStillAllowsExplicitParents) {
  PUFATT_REQUIRE_COMPILED_TRACING();
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_sample_rate(0.0);
  EXPECT_FALSE(tracer.span("root").active());
  EXPECT_EQ(tracer.sample_root(), 0u);
  // A caller-provided parent id bypasses root sampling by design.
  EXPECT_TRUE(tracer.span("child", 17).active());
}

TEST(Tracer, RingOverflowDropsAreCounted) {
  PUFATT_REQUIRE_COMPILED_TRACING();
  TraceConfig config;
  config.ring_capacity = 8;
  Tracer tracer(config);
  tracer.set_enabled(true);
  for (int i = 0; i < 20; ++i) tracer.span("s").end();
  // Ring holds capacity-1 records between drains; the rest are counted.
  const auto records = tracer.records();
  EXPECT_EQ(records.size() + tracer.dropped(), 20u);
  EXPECT_GT(tracer.dropped(), 0u);
}

TEST(Tracer, ConcurrentSpansAllArriveExactlyOnce) {
  PUFATT_REQUIRE_COMPILED_TRACING();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 2000;
  TraceConfig config;
  config.ring_capacity = 4096;  // > kPerThread: no drops even if the
  Tracer tracer(config);        // drainer never runs
  tracer.set_enabled(true);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        Span span = tracer.span("worker");
        span.note("i", static_cast<double>(i));
      }
    });
  }
  // Drain concurrently with the writers to exercise the SPSC hand-off.
  for (int i = 0; i < 50; ++i) tracer.drain();
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(tracer.records().size(), kThreads * kPerThread);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// --- Exporters and the reader ----------------------------------------------

TEST(TraceExport, JsonlRoundTripsThroughReader) {
  PUFATT_REQUIRE_COMPILED_TRACING();
  Tracer tracer;
  tracer.set_enabled(true);
  Span root = tracer.span("alpha");
  root.note("x", 1.5);
  Span child = root.child("beta \"quoted\"\n");
  child.end();
  root.end();

  const auto spans = read_trace(tracer.to_jsonl());
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "alpha");
  EXPECT_EQ(spans[1].name, "beta \"quoted\"\n");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[0].note_or("x", 0.0), 1.5);
  EXPECT_GE(spans[0].dur_us, spans[1].dur_us);
}

TEST(TraceExport, TraceEventRoundTripsThroughReader) {
  PUFATT_REQUIRE_COMPILED_TRACING();
  Tracer tracer;
  tracer.set_enabled(true);
  Span root = tracer.span("alpha");
  root.note("x", 2.5);
  Span child = root.child("beta");
  child.end();
  root.end();

  const std::string json = tracer.to_trace_event();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  const auto spans = read_trace(json);
  ASSERT_EQ(spans.size(), 2u);
  // trace_event timestamps are rebased to the earliest span.
  const auto root_it = std::find_if(
      spans.begin(), spans.end(),
      [](const ParsedSpan& s) { return s.name == "alpha"; });
  ASSERT_NE(root_it, spans.end());
  EXPECT_EQ(root_it->start_us, 0.0);
  EXPECT_EQ(root_it->note_or("x", 0.0), 2.5);
  const auto child_it = std::find_if(
      spans.begin(), spans.end(),
      [](const ParsedSpan& s) { return s.name == "beta"; });
  ASSERT_NE(child_it, spans.end());
  EXPECT_EQ(child_it->parent, root_it->id);
}

TEST(TraceRead, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(parse_json("{} trailing"), std::runtime_error);
  EXPECT_THROW(parse_json("[1, 2"), std::runtime_error);
  EXPECT_THROW(parse_json("\"unterminated"), std::runtime_error);
}

TEST(TraceRead, ParserHandlesEscapesAndNesting) {
  const auto doc = parse_json(
      "{\"s\":\"a\\\"b\\\\c\\n\",\"n\":-2.5e2,\"arr\":[1,true,null],"
      "\"o\":{\"k\":7}}");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.get("s")->string, "a\"b\\c\n");
  EXPECT_EQ(doc.number_or("n", 0.0), -250.0);
  ASSERT_TRUE(doc.get("arr")->is_array());
  EXPECT_EQ(doc.get("arr")->array.size(), 3u);
  EXPECT_EQ(doc.get("o")->number_or("k", 0.0), 7.0);
}

// --- MetricRegistry ---------------------------------------------------------

TEST(MetricRegistry, SnapshotJsonIsByteStable) {
  MetricRegistry registry;
  registry.counter("b.count").add(2);
  registry.counter("a.count").add(7);
  registry.gauge("depth").set(1.5);
  registry.gauge("depth").set(0.5);  // max sticks at 1.5
  registry.histogram("lat", support::LogScale{100.0, 4.0, 3}).record(150.0);
  EXPECT_EQ(registry.snapshot_json(),
            "{\"counters\":{\"a.count\":7,\"b.count\":2},"
            "\"gauges\":{\"depth\":{\"value\":0.5,\"max\":1.5}},"
            "\"histograms\":{\"lat\":{\"first_edge\":100,\"base\":4,"
            "\"counts\":[0,1,0],\"total\":1}}}");
}

TEST(MetricRegistry, KindMismatchThrowsAndReferencesAreStable) {
  MetricRegistry registry;
  Counter& counter = registry.counter("n");
  counter.add(3);
  EXPECT_THROW(registry.gauge("n"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("n"), std::invalid_argument);
  registry.reset();
  counter.add(1);  // reference survives reset()
  EXPECT_EQ(registry.counter("n").value(), 1u);
}

TEST(MetricRegistry, HistogramScaleMismatchThrows) {
  MetricRegistry registry;
  registry.histogram("h", support::LogScale{100.0, 4.0, 8});
  EXPECT_NO_THROW(registry.histogram("h", support::LogScale{100.0, 4.0, 8}));
  EXPECT_THROW(registry.histogram("h", support::LogScale{100.0, 2.0, 8}),
               std::invalid_argument);
}

TEST(MetricRegistry, LogHistogramQuantileEdges) {
  LogHistogram hist(support::LogScale{100.0, 4.0, 4});
  for (int i = 0; i < 10; ++i) hist.record(50.0);     // bucket 0
  for (int i = 0; i < 10; ++i) hist.record(50000.0);  // above edge 3 -> last
  EXPECT_EQ(hist.total(), 20u);
  EXPECT_EQ(hist.quantile_edge(0.25), 100.0);
  EXPECT_TRUE(std::isinf(hist.quantile_edge(0.99)));
}

// The dedupe regression: the service latency histogram and the shared
// support::LogScale must bucket identically over the whole range.
TEST(MetricRegistry, ServiceLatencyHistogramMatchesSharedScale) {
  const support::LogScale scale = service::LatencyHistogram::scale();
  for (double v = 0.0; v < 3.0e6; v += 997.0) {
    EXPECT_EQ(service::LatencyHistogram::bucket_for(v), scale.bucket_for(v))
        << "at " << v;
  }
  for (std::size_t b = 0; b < service::LatencyHistogram::kBuckets; ++b) {
    EXPECT_EQ(service::LatencyHistogram::upper_edge_us(b),
              scale.upper_edge(b));
  }
}

// --- Service instrumentation ------------------------------------------------

/// Small enrolled fleet shared by the pool-tracing tests (enrollment is
/// the expensive part; build it once).
struct Fleet {
  struct Device {
    std::string id;
    std::unique_ptr<alupuf::PufDevice> device;
    core::EnrollmentRecord record;
  };
  std::vector<Device> devices;

  static const Fleet& instance() {
    static const Fleet fleet(3);
    return fleet;
  }

  service::DeviceRegistry make_registry() const {
    service::DeviceRegistry registry(4);
    for (const auto& dev : devices) registry.store(dev.id, dev.record);
    return registry;
  }

  core::Responder responder(std::size_t index, std::uint64_t seed) const {
    auto prover = std::make_shared<core::CpuProver>(
        *devices[index].device, devices[index].record,
        core::CpuProver::Variant::kHonest, seed);
    return [prover](const core::AttestationRequest& request) {
      auto outcome = prover->respond(request);
      return core::ProverReply{std::move(outcome.response),
                               outcome.compute_us};
    };
  }

 private:
  explicit Fleet(std::size_t count) {
    const auto profile = core::DistributedParams::small_profile();
    Xoshiro256pp rng(0x0B5);
    std::vector<std::uint32_t> firmware(600);
    for (auto& word : firmware) word = static_cast<std::uint32_t>(rng.next());
    const auto image = core::make_enrolled_image(profile, firmware);
    devices.resize(count);
    for (std::size_t d = 0; d < count; ++d) {
      devices[d].id = "unit-" + std::to_string(d);
      devices[d].device = std::make_unique<alupuf::PufDevice>(
          profile.puf_config, 0xACE0 + d, code());
      devices[d].record = core::enroll(*devices[d].device, profile, image);
    }
  }
};

constexpr std::size_t kJobs = 9;

/// Runs kJobs fixed-seed jobs through a traced pool and returns
/// (sorted span records, normalized metrics snapshot json).
std::pair<std::vector<SpanRecord>, std::string> run_traced_pool(
    std::size_t workers, Tracer& tracer) {
  const auto& fleet = Fleet::instance();
  auto registry = fleet.make_registry();
  service::EmulatorCache cache(registry, code(), fleet.devices.size());
  service::PoolConfig config;
  config.workers = workers;
  config.queue_capacity = kJobs;  // roomy: no busy-rejects to count
  config.tracer = &tracer;
  tracer.set_enabled(true);

  service::VerifierPool pool(cache, config);
  for (std::size_t s = 0; s < kJobs; ++s) {
    const std::size_t d = s % fleet.devices.size();
    service::AttestationJob job;
    job.device_id = fleet.devices[d].id;
    job.channel_seed = 0xC0FFEE + 31 * s;
    job.rng_seed = 0xBEEF + 17 * s;
    job.tag = s;
    job.responder = fleet.responder(d, job.rng_seed ^ 0xF00D);
    EXPECT_TRUE(pool.submit(std::move(job)).enqueued())
        << "queue sized for all jobs";
  }
  pool.drain();

  // Verdicts and simulated latencies are scheduling-independent; queue
  // occupancy and cache construction races are not (by design), so the
  // invariance check normalizes them away.
  auto snap = pool.metrics_snapshot();
  snap.queue_depth_hwm = 0;
  MetricRegistry metrics;
  service::publish_metrics(snap, service::CacheCounters{}, metrics);
  pool.shutdown();
  return {tracer.records(), metrics.snapshot_json()};
}

TEST(PoolTracing, SpansNestAcrossWorkerThreads) {
  PUFATT_REQUIRE_COMPILED_TRACING();
  Tracer tracer;
  const auto [records, json] = run_traced_pool(3, tracer);
  (void)json;

  std::map<std::string, std::vector<const SpanRecord*>> by_name;
  std::map<std::uint64_t, const SpanRecord*> by_id;
  for (const auto& rec : records) {
    by_name[rec.name].push_back(&rec);
    EXPECT_EQ(by_id.count(rec.id), 0u) << "span ids must be unique";
    by_id[rec.id] = &rec;
  }

  ASSERT_EQ(by_name["pool.job"].size(), kJobs);
  ASSERT_EQ(by_name["pool.queue_wait"].size(), kJobs);
  ASSERT_EQ(by_name["pool.verify"].size(), kJobs);
  ASSERT_EQ(by_name["session.run"].size(), kJobs);
  ASSERT_GE(by_name["session.attempt"].size(), kJobs);
  EXPECT_FALSE(by_name["cache.acquire"].empty());

  const auto parent_name = [&](const SpanRecord* rec) -> std::string {
    const auto it = by_id.find(rec->parent);
    return it != by_id.end() ? it->second->name : "<missing>";
  };
  for (const auto* rec : by_name["pool.job"]) EXPECT_EQ(rec->parent, 0u);
  for (const auto* rec : by_name["pool.queue_wait"]) {
    EXPECT_EQ(parent_name(rec), "pool.job");
  }
  for (const auto* rec : by_name["pool.verify"]) {
    EXPECT_EQ(parent_name(rec), "pool.job");
    // The job root's interval covers its verify child even though the two
    // records were assembled on different threads.
    const auto* job = by_id.at(rec->parent);
    EXPECT_LE(job->start_ns, rec->start_ns);
    EXPECT_GE(job->end_ns, rec->end_ns);
  }
  for (const auto* rec : by_name["session.run"]) {
    EXPECT_EQ(parent_name(rec), "pool.verify");
  }
  for (const auto* rec : by_name["session.attempt"]) {
    EXPECT_EQ(parent_name(rec), "session.run");
  }
  for (const auto* rec : by_name["cache.acquire"]) {
    EXPECT_EQ(parent_name(rec), "pool.verify");
  }
}

TEST(PoolTracing, MetricsAndSpanNamesAreThreadCountInvariant) {
  std::map<std::string, std::size_t> baseline_names;
  std::string baseline_json;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    Tracer tracer;
    const auto [records, json] = run_traced_pool(workers, tracer);
    // Span-name multiset, minus the cache spans: how often two workers
    // race to build the same device's emulator is scheduling luck.
    std::map<std::string, std::size_t> names;
    for (const auto& rec : records) {
      const std::string name = rec.name;
      if (name.rfind("cache.", 0) != 0) ++names[name];
    }
    if (baseline_json.empty()) {
      baseline_names = names;
      baseline_json = json;
      continue;
    }
    EXPECT_EQ(names, baseline_names) << "workers=" << workers;
    EXPECT_EQ(json, baseline_json) << "workers=" << workers;
  }
}

TEST(GlobalTracing, SimulatorHooksRecordUnderGlobalTracer) {
  PUFATT_REQUIRE_COMPILED_TRACING();
  const auto& fleet = Fleet::instance();
  auto& tracer = global_tracer();
  tracer.clear();
  global_registry().reset();
  set_global_trace(true, 1.0);

  const auto env = variation::Environment::nominal();
  Xoshiro256pp rng(0x51D);
  std::uint64_t challenges[16];
  for (auto& c : challenges) c = rng.next();
  // 16 obfuscated queries expand to 128 raw races, so kAuto routes this
  // through the bit-sliced engine; force the SoA engine on a second batch
  // so both batched paths prove their hooks.
  (void)fleet.devices[0].device->query_batch(challenges, 16, env, rng);
  (void)fleet.devices[0].device->query_batch(
      challenges, 16, env, rng, nullptr, nullptr,
      timingsim::BatchEngine::kBatch);
  set_global_trace(false);

  EXPECT_GT(global_registry().counter("sim.batches").value(), 0u);
  EXPECT_GT(global_registry().counter("sim.lanes").value(), 0u);
  EXPECT_GT(global_registry().gauge("sim.batch_occupancy").max(), 0.0);

  std::set<std::string> names;
  for (const auto& rec : tracer.records()) names.insert(rec.name);
  EXPECT_EQ(names.count("puf.eval_batch"), 1u);
  EXPECT_EQ(names.count("puf.sample_delays"), 1u);
  EXPECT_EQ(names.count("puf.arbiter"), 1u);
  EXPECT_EQ(names.count("sim.run_bitslice"), 1u);
  EXPECT_EQ(names.count("sim.run_batch"), 1u);
  tracer.clear();
}

}  // namespace
}  // namespace pufatt::obs
