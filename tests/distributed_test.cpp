// Distributed mutual-attestation tests (paper reference [37]).
#include <gtest/gtest.h>

#include "core/distributed.hpp"

namespace pufatt::core {
namespace {

using support::Xoshiro256pp;

TEST(Distributed, ValidatesConfiguration) {
  DistributedParams params;
  params.num_nodes = 2;
  EXPECT_THROW(DistributedNetwork(params, {}, 1), std::invalid_argument);
  params.num_nodes = 8;
  params.degree = 4;  // 2*degree >= nodes
  EXPECT_THROW(DistributedNetwork(params, {}, 1), std::invalid_argument);
  params.degree = 2;
  params.quorum = 5;  // > 2*degree
  EXPECT_THROW(DistributedNetwork(params, {}, 1), std::invalid_argument);
  EXPECT_THROW(DistributedNetwork(DistributedParams{},
                                  {{99, NodeHealth::kNaiveMalware}}, 1),
               std::invalid_argument);
}

TEST(Distributed, RingTopologyIsSymmetric) {
  DistributedParams params;
  params.num_nodes = 6;
  params.degree = 1;
  params.quorum = 1;
  const DistributedNetwork net(params, {}, 2);
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    const auto& nbrs = net.neighbours(i);
    ASSERT_EQ(nbrs.size(), 2u);
    for (const auto n : nbrs) {
      const auto& back = net.neighbours(n);
      EXPECT_NE(std::find(back.begin(), back.end(), i), back.end());
    }
  }
}

TEST(Distributed, AllHealthyNobodyConvicted) {
  DistributedParams params;
  params.num_nodes = 6;
  DistributedNetwork net(params, {}, 3);
  Xoshiro256pp rng(4);
  const auto verdicts = net.run_round(rng);
  for (const auto& v : verdicts) {
    EXPECT_FALSE(v.convicted);
    EXPECT_EQ(v.rejections, 0u);
    EXPECT_EQ(v.audits, 4u);  // 2*degree neighbours audit each node
  }
}

TEST(Distributed, CompromisedNodesConvictedByQuorum) {
  DistributedParams params;
  params.num_nodes = 8;
  DistributedNetwork net(params,
                         {{2, NodeHealth::kNaiveMalware},
                          {5, NodeHealth::kHidingMalware}},
                         5);
  Xoshiro256pp rng(6);
  const auto verdicts = net.run_round(rng);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    if (i == 2 || i == 5) {
      EXPECT_TRUE(verdicts[i].convicted) << "node " << i;
      EXPECT_EQ(verdicts[i].rejections, verdicts[i].audits)
          << "every neighbour must reject a compromised node";
    } else {
      EXPECT_FALSE(verdicts[i].convicted) << "node " << i;
    }
  }
}

TEST(Distributed, ConvictionStableAcrossRounds) {
  DistributedParams params;
  params.num_nodes = 6;
  DistributedNetwork net(params, {{1, NodeHealth::kHidingMalware}}, 7);
  Xoshiro256pp rng(8);
  for (int round = 0; round < 3; ++round) {
    const auto verdicts = net.run_round(rng);
    EXPECT_TRUE(verdicts[1].convicted) << "round " << round;
    EXPECT_FALSE(verdicts[0].convicted);
  }
}

// CRP-database audits (the paper's verification option 1).  The pinned
// tally rule: an exhausted database is *inconclusive*, never a rejection —
// running out of single-use entries must not convict a healthy node, the
// same way transport starvation never does in run_round().
TEST(Distributed, CrpRoundExhaustionIsInconclusiveNeverRejection) {
  DistributedParams params;
  params.num_nodes = 6;
  params.crp_entries_per_node = 8;  // 2*degree audits/round: dry by round 3
  DistributedNetwork net(params, {{1, NodeHealth::kNaiveMalware}}, 9);
  Xoshiro256pp rng(10);

  // While entries last every audit completes; the CRP audit authenticates
  // the *silicon*, so even the malware node (genuine hardware, tampered
  // software) passes — catching malware is run_round()'s job.
  for (int round = 0; round < 2; ++round) {
    const auto verdicts = net.run_crp_round(rng);
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      EXPECT_EQ(verdicts[i].audits, 4u) << "node " << i;
      EXPECT_EQ(verdicts[i].completed, 4u) << "node " << i;
      EXPECT_EQ(verdicts[i].rejections, 0u) << "node " << i;
      EXPECT_FALSE(verdicts[i].convicted) << "node " << i;
    }
  }
  for (std::size_t n = 0; n < net.num_nodes(); ++n) {
    EXPECT_EQ(net.crp_remaining(n), 0u) << "node " << n;
  }

  // Every database is now exhausted: all audits must land in
  // `inconclusive` with exhausted=true never counted as a rejection.
  const auto verdicts = net.run_crp_round(rng);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_EQ(verdicts[i].audits, 4u) << "node " << i;
    EXPECT_EQ(verdicts[i].completed, 0u) << "node " << i;
    EXPECT_EQ(verdicts[i].inconclusive, 4u) << "node " << i;
    EXPECT_EQ(verdicts[i].rejections, 0u) << "node " << i;
    EXPECT_FALSE(verdicts[i].convicted) << "node " << i;
    EXPECT_FALSE(verdicts[i].evidence_met) << "node " << i;
  }
}

TEST(Distributed, CrpRoundRequiresProvisionedDatabases) {
  DistributedParams params;
  params.num_nodes = 6;
  DistributedNetwork net(params, {}, 11);
  Xoshiro256pp rng(12);
  EXPECT_THROW(net.run_crp_round(rng), std::logic_error);
  EXPECT_EQ(net.crp_remaining(0), 0u);  // nothing was ever distributed
}

TEST(Distributed, CrpRoundSpendsNoEntriesOnPartitionedNodes) {
  DistributedParams params;
  params.num_nodes = 6;
  params.crp_entries_per_node = 8;
  DistributedNetwork net(params, {}, 13);
  net.set_partitioned(2, true);
  Xoshiro256pp rng(14);
  const auto verdicts = net.run_crp_round(rng);
  // The dead-zone node: all its audits inconclusive, no entry consumed.
  EXPECT_EQ(verdicts[2].inconclusive, 4u);
  EXPECT_EQ(verdicts[2].completed, 0u);
  EXPECT_FALSE(verdicts[2].convicted);
  EXPECT_EQ(net.crp_remaining(2), 8u);
  // Everyone else audited normally (minus the audits the dead node could
  // not perform — those still spent nothing of *their* databases).
  EXPECT_EQ(net.crp_remaining(0), 8u - verdicts[0].completed);
}

}  // namespace
}  // namespace pufatt::core
