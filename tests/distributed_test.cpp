// Distributed mutual-attestation tests (paper reference [37]).
#include <gtest/gtest.h>

#include "core/distributed.hpp"

namespace pufatt::core {
namespace {

using support::Xoshiro256pp;

TEST(Distributed, ValidatesConfiguration) {
  DistributedParams params;
  params.num_nodes = 2;
  EXPECT_THROW(DistributedNetwork(params, {}, 1), std::invalid_argument);
  params.num_nodes = 8;
  params.degree = 4;  // 2*degree >= nodes
  EXPECT_THROW(DistributedNetwork(params, {}, 1), std::invalid_argument);
  params.degree = 2;
  params.quorum = 5;  // > 2*degree
  EXPECT_THROW(DistributedNetwork(params, {}, 1), std::invalid_argument);
  EXPECT_THROW(DistributedNetwork(DistributedParams{},
                                  {{99, NodeHealth::kNaiveMalware}}, 1),
               std::invalid_argument);
}

TEST(Distributed, RingTopologyIsSymmetric) {
  DistributedParams params;
  params.num_nodes = 6;
  params.degree = 1;
  params.quorum = 1;
  const DistributedNetwork net(params, {}, 2);
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    const auto& nbrs = net.neighbours(i);
    ASSERT_EQ(nbrs.size(), 2u);
    for (const auto n : nbrs) {
      const auto& back = net.neighbours(n);
      EXPECT_NE(std::find(back.begin(), back.end(), i), back.end());
    }
  }
}

TEST(Distributed, AllHealthyNobodyConvicted) {
  DistributedParams params;
  params.num_nodes = 6;
  DistributedNetwork net(params, {}, 3);
  Xoshiro256pp rng(4);
  const auto verdicts = net.run_round(rng);
  for (const auto& v : verdicts) {
    EXPECT_FALSE(v.convicted);
    EXPECT_EQ(v.rejections, 0u);
    EXPECT_EQ(v.audits, 4u);  // 2*degree neighbours audit each node
  }
}

TEST(Distributed, CompromisedNodesConvictedByQuorum) {
  DistributedParams params;
  params.num_nodes = 8;
  DistributedNetwork net(params,
                         {{2, NodeHealth::kNaiveMalware},
                          {5, NodeHealth::kHidingMalware}},
                         5);
  Xoshiro256pp rng(6);
  const auto verdicts = net.run_round(rng);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    if (i == 2 || i == 5) {
      EXPECT_TRUE(verdicts[i].convicted) << "node " << i;
      EXPECT_EQ(verdicts[i].rejections, verdicts[i].audits)
          << "every neighbour must reject a compromised node";
    } else {
      EXPECT_FALSE(verdicts[i].convicted) << "node " << i;
    }
  }
}

TEST(Distributed, ConvictionStableAcrossRounds) {
  DistributedParams params;
  params.num_nodes = 6;
  DistributedNetwork net(params, {{1, NodeHealth::kHidingMalware}}, 7);
  Xoshiro256pp rng(8);
  for (int round = 0; round < 3; ++round) {
    const auto verdicts = net.run_round(rng);
    EXPECT_TRUE(verdicts[1].convicted) << "round " << round;
    EXPECT_FALSE(verdicts[0].convicted);
  }
}

}  // namespace
}  // namespace pufatt::core
