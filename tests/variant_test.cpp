// Configuration-variant sweeps: the RM(1,m) code family across m, BCH
// across field sizes, and the 16-bit (FPGA-width) PUF pipeline with
// RM(1,4) helper data — the configuration the paper's prototype implies.
#include <gtest/gtest.h>

#include <set>

#include "alupuf/pipeline.hpp"
#include "ecc/bch.hpp"
#include "ecc/helper_data.hpp"
#include "ecc/reed_muller.hpp"
#include "support/stats.hpp"

namespace pufatt {
namespace {

using support::BitVector;
using support::Xoshiro256pp;

// ------------------------------------------------------- RM(1,m) sweeps

class RmFamily : public ::testing::TestWithParam<unsigned> {};

TEST_P(RmFamily, ParametersAndRoundTrip) {
  const unsigned m = GetParam();
  const ecc::ReedMuller1 rm(m);
  EXPECT_EQ(rm.n(), std::size_t{1} << m);
  EXPECT_EQ(rm.k(), m + 1);
  EXPECT_EQ(rm.min_distance(), rm.n() / 2);
  Xoshiro256pp rng(m);
  for (int t = 0; t < 50; ++t) {
    const auto msg = BitVector::random(rm.k(), rng);
    const auto cw = rm.encode(msg);
    EXPECT_EQ(rm.syndrome(cw).popcount(), 0u);
    EXPECT_EQ(rm.decode(cw), msg);
  }
}

TEST_P(RmFamily, CorrectsGuaranteedRadius) {
  const unsigned m = GetParam();
  const ecc::ReedMuller1 rm(m);
  Xoshiro256pp rng(100 + m);
  const std::size_t t_max = rm.guaranteed_correction();
  for (int trial = 0; trial < 100; ++trial) {
    const auto msg = BitVector::random(rm.k(), rng);
    auto noisy = rm.encode(msg);
    const std::size_t nerr = t_max == 0 ? 0 : 1 + rng.uniform_u64(t_max);
    std::set<std::size_t> positions;
    while (positions.size() < nerr) positions.insert(rng.uniform_u64(rm.n()));
    for (const auto p : positions) noisy.flip(p);
    EXPECT_EQ(rm.decode(noisy), msg) << "m=" << m << " errors=" << nerr;
  }
}

TEST_P(RmFamily, HelperDataReconstruction) {
  const unsigned m = GetParam();
  const ecc::ReedMuller1 rm(m);
  const ecc::SyndromeHelper helper(rm);
  EXPECT_EQ(helper.helper_bits(), rm.n() - rm.k());
  Xoshiro256pp rng(200 + m);
  for (int trial = 0; trial < 60; ++trial) {
    const auto y = BitVector::random(rm.n(), rng);
    const auto h = helper.generate(y);
    auto ref = y;
    const std::size_t nerr = rng.uniform_u64(rm.guaranteed_correction() + 1);
    std::set<std::size_t> positions;
    while (positions.size() < nerr) positions.insert(rng.uniform_u64(rm.n()));
    for (const auto p : positions) ref.flip(p);
    const auto rec = helper.reproduce(ref, h);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(*rec, y);
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, RmFamily, ::testing::Values(3u, 4u, 5u, 6u, 7u));

// ------------------------------------------------------------ BCH sweeps

class BchFamily
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {};

TEST_P(BchFamily, ExhaustiveWeightsUpToT) {
  const auto [m, t] = GetParam();
  const ecc::BchCode code(m, t);
  Xoshiro256pp rng(300 + m * 10 + t);
  // For each weight w in 1..t, random error patterns must decode exactly.
  for (std::size_t w = 1; w <= t; ++w) {
    for (int trial = 0; trial < 20; ++trial) {
      const auto msg = BitVector::random(code.k(), rng);
      auto noisy = code.encode(msg);
      std::set<std::size_t> positions;
      while (positions.size() < w) positions.insert(rng.uniform_u64(code.n()));
      for (const auto p : positions) noisy.flip(p);
      ASSERT_EQ(code.decode(noisy), msg) << "m=" << m << " t=" << t
                                         << " w=" << w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Codes, BchFamily,
    ::testing::Values(std::tuple{5u, std::size_t{2}},
                      std::tuple{6u, std::size_t{3}},
                      std::tuple{6u, std::size_t{7}},
                      std::tuple{7u, std::size_t{5}},
                      std::tuple{8u, std::size_t{6}},
                      std::tuple{9u, std::size_t{4}}));

// ------------------------------------------- 16-bit (FPGA-width) pipeline

class Width16Pipeline : public ::testing::Test {
 protected:
  Width16Pipeline()
      : code_(4),  // RM(1,4) = [16,5,8]: the 16-bit prototype's code
        device_(make_config(), 4321, code_),
        emulator_(16, device_.export_model(), code_) {}

  static alupuf::AluPufConfig make_config() {
    alupuf::AluPufConfig config;
    config.width = 16;
    return config;
  }

  ecc::ReedMuller1 code_;
  alupuf::PufDevice device_;
  alupuf::PufEmulator emulator_;
  Xoshiro256pp rng_{17};
};

TEST_F(Width16Pipeline, ShapesMatchPrototype) {
  EXPECT_EQ(device_.output_bits(), 16u);
  EXPECT_EQ(device_.helper_bits(), 11u);  // 16 - 5
  const auto out = device_.query(1, variation::Environment::nominal(), rng_);
  EXPECT_EQ(out.z.size(), 16u);
  ASSERT_EQ(out.helpers.size(), 8u);
  for (const auto& h : out.helpers) EXPECT_EQ(h.size(), 11u);
}

TEST_F(Width16Pipeline, VerifierReproducesOutput) {
  // RM(1,4) corrects only 3 of 16 bits, so the 16-bit prototype tolerates
  // less noise than the 32-bit design — still enough at our calibration.
  int match = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t x = rng_.next();
    const auto out = device_.query(x, variation::Environment::nominal(), rng_);
    const auto z = emulator_.emulate(x, out.helpers);
    if (z && *z == out.z) ++match;
  }
  EXPECT_GE(match, trials - 2);
}

TEST_F(Width16Pipeline, ImpostorRejected) {
  const alupuf::PufDevice impostor(make_config(), 8765, code_);
  int match = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t x = rng_.next();
    const auto out = impostor.query(x, variation::Environment::nominal(), rng_);
    const auto z = emulator_.emulate(x, out.helpers);
    if (z && *z == out.z) ++match;
  }
  EXPECT_LT(match, trials / 4);
}

TEST_F(Width16Pipeline, InterChipStatisticsReasonable) {
  const alupuf::PufDevice other(make_config(), 9999, code_);
  support::OnlineStats hd;
  for (int t = 0; t < 80; ++t) {
    const std::uint64_t x = rng_.next();
    hd.add(static_cast<double>(
        device_.query(x, variation::Environment::nominal(), rng_)
            .z.hamming_distance(
                other.query(x, variation::Environment::nominal(), rng_).z)));
  }
  EXPECT_GT(hd.mean(), 5.0);   // obfuscated output near 50% of 16
  EXPECT_LT(hd.mean(), 11.0);
}

}  // namespace
}  // namespace pufatt
