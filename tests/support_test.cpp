#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "support/bitvec.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace pufatt::support {
namespace {

// ---------------------------------------------------------------- RNG

TEST(SplitMix64, KnownSequence) {
  // Reference values for seed 1234567 from the public-domain reference
  // implementation.
  SplitMix64 sm(0);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(sm.next(), sm2.next() + 1);  // streams advance identically
}

TEST(SplitMix64, MixIsDeterministicAndSpreads) {
  EXPECT_EQ(SplitMix64::mix(42), SplitMix64::mix(42));
  EXPECT_NE(SplitMix64::mix(42), SplitMix64::mix(43));
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256pp a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256pp a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256pp rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformRangeRespected) {
  Xoshiro256pp rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Xoshiro, UniformU64Unbiased) {
  Xoshiro256pp rng(11);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.uniform_u64(10)];
  for (const auto c : counts) {
    EXPECT_NEAR(c, trials / 10, trials / 100);  // within 10% relative
  }
}

TEST(Xoshiro, UniformU64BoundOne) {
  Xoshiro256pp rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_u64(1), 0u);
}

TEST(Xoshiro, GaussianMoments) {
  Xoshiro256pp rng(5);
  OnlineStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Xoshiro, GaussianScaled) {
  Xoshiro256pp rng(5);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.gaussian(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Xoshiro, GaussianFastMomentsAndTail) {
  Xoshiro256pp rng(5);
  OnlineStats stats;
  int tail = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian_fast();
    stats.add(g);
    if (std::abs(g) > 3.0) ++tail;
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
  // P(|N(0,1)| > 3) = 0.27%; the ziggurat's wedge/tail paths must feed it.
  const double tail_rate = static_cast<double>(tail) / n;
  EXPECT_GT(tail_rate, 0.0013);
  EXPECT_LT(tail_rate, 0.0055);
}

TEST(Xoshiro, GaussianFastDeterministic) {
  Xoshiro256pp a(123);
  Xoshiro256pp b(123);
  for (int i = 0; i < 4096; ++i) {
    ASSERT_EQ(a.gaussian_fast(), b.gaussian_fast());
  }
}

TEST(Xoshiro, GaussianFillMatchesRepeatedDraws) {
  Xoshiro256pp a(9);
  Xoshiro256pp b(9);
  std::vector<double> buf(257);
  a.gaussian_fill(buf.data(), buf.size(), 1.5, 2.0);
  for (const double v : buf) {
    ASSERT_EQ(v, 1.5 + 2.0 * b.gaussian_fast());
  }
}

TEST(Xoshiro, BernoulliProbability) {
  Xoshiro256pp rng(3);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Xoshiro, SplitProducesIndependentStream) {
  Xoshiro256pp a(1);
  Xoshiro256pp child = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == child.next()) ++same;
  }
  EXPECT_LE(same, 1);
}

// ---------------------------------------------------------------- BitVector

TEST(BitVector, DefaultEmpty) {
  BitVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, ZeroInitialized) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVector, FromValue) {
  BitVector v(8, 0b10110010);
  EXPECT_TRUE(v.get(1));
  EXPECT_FALSE(v.get(0));
  EXPECT_TRUE(v.get(7));
  EXPECT_EQ(v.popcount(), 4u);
  EXPECT_EQ(v.to_u64(), 0b10110010u);
}

TEST(BitVector, FromValueMasksHighBits) {
  BitVector v(4, 0xFF);
  EXPECT_EQ(v.to_u64(), 0xFu);
  EXPECT_EQ(v.popcount(), 4u);
}

TEST(BitVector, SetGetFlip) {
  BitVector v(70);
  v.set(69, true);
  EXPECT_TRUE(v.get(69));
  v.flip(69);
  EXPECT_FALSE(v.get(69));
  v.flip(0);
  EXPECT_TRUE(v.get(0));
}

TEST(BitVector, OutOfRangeThrows) {
  BitVector v(8);
  EXPECT_THROW(v.get(8), std::out_of_range);
  EXPECT_THROW(v.set(100, true), std::out_of_range);
  EXPECT_THROW(v.flip(8), std::out_of_range);
}

TEST(BitVector, StringRoundTrip) {
  const std::string s = "1011001110001111";
  const BitVector v = BitVector::from_string(s);
  EXPECT_EQ(v.to_string(), s);
  EXPECT_EQ(v.size(), s.size());
}

TEST(BitVector, FromStringRejectsBadChars) {
  EXPECT_THROW(BitVector::from_string("10x1"), std::invalid_argument);
}

TEST(BitVector, XorAndHamming) {
  const BitVector a = BitVector::from_string("1100");
  const BitVector b = BitVector::from_string("1010");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
}

TEST(BitVector, HammingSizeMismatchThrows) {
  BitVector a(4), b(5);
  EXPECT_THROW(a.hamming_distance(b), std::invalid_argument);
  EXPECT_THROW(a ^= b, std::invalid_argument);
}

TEST(BitVector, AndOr) {
  const BitVector a = BitVector::from_string("1100");
  const BitVector b = BitVector::from_string("1010");
  EXPECT_EQ((a & b).to_string(), "1000");
  EXPECT_EQ((a | b).to_string(), "1110");
}

TEST(BitVector, SliceAndConcat) {
  const BitVector v = BitVector::from_string("11110000");
  const BitVector low = v.slice(0, 4);
  const BitVector high = v.slice(4, 4);
  EXPECT_EQ(low.to_string(), "0000");
  EXPECT_EQ(high.to_string(), "1111");
  EXPECT_EQ(low.concat(high), v);
}

TEST(BitVector, SliceOutOfRangeThrows) {
  BitVector v(8);
  EXPECT_THROW(v.slice(4, 8), std::out_of_range);
}

TEST(BitVector, ParityMatchesPopcount) {
  Xoshiro256pp rng(17);
  for (int i = 0; i < 50; ++i) {
    const auto v = BitVector::random(97, rng);
    EXPECT_EQ(v.parity(), v.popcount() % 2 == 1);
  }
}

TEST(BitVector, RandomHasExpectedDensity) {
  Xoshiro256pp rng(21);
  std::size_t ones = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) ones += BitVector::random(256, rng).popcount();
  EXPECT_NEAR(static_cast<double>(ones) / (256.0 * trials), 0.5, 0.02);
}

TEST(BitVector, CrossWordBoundaryOps) {
  BitVector v(128);
  v.set(63, true);
  v.set(64, true);
  EXPECT_EQ(v.popcount(), 2u);
  const auto s = v.slice(63, 2);
  EXPECT_EQ(s.popcount(), 2u);
}

// ---------------------------------------------------------------- Stats

TEST(OnlineStats, SimpleSequence) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, SingleSampleVarianceZero) {
  OnlineStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(Histogram, BasicCounts) {
  Histogram h(10);
  h.add(3);
  h.add(3);
  h.add(7);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bin(3), 2u);
  EXPECT_EQ(h.bin(7), 1u);
  EXPECT_DOUBLE_EQ(h.fraction(3), 2.0 / 3.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(4);
  h.add(100);
  EXPECT_EQ(h.bin(3), 1u);
  EXPECT_EQ(h.clamped(), 1u);
}

TEST(Histogram, MeanAndStd) {
  Histogram h(10);
  for (int i = 0; i < 50; ++i) h.add(2);
  for (int i = 0; i < 50; ++i) h.add(4);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.stddev(), 1.0);
}

TEST(Histogram, Quantile) {
  Histogram h(100);
  for (std::size_t i = 0; i < 100; ++i) h.add(i);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 49.0, 1.0);
  EXPECT_EQ(h.quantile(1.0), 99u);
}

TEST(Histogram, RenderContainsLabelAndCounts) {
  Histogram h(5);
  h.add(2);
  const std::string out = h.render("demo");
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

// ---------------------------------------------------------------- Table

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, ShortRowsTolerated) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW(t.render());
}

}  // namespace
}  // namespace pufatt::support
