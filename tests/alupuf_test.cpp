#include <gtest/gtest.h>

#include <array>

#include "alupuf/alu_puf.hpp"
#include "alupuf/arbiter_puf.hpp"
#include "alupuf/obfuscation.hpp"
#include "alupuf/pipeline.hpp"
#include "ecc/reed_muller.hpp"
#include "support/stats.hpp"

namespace pufatt::alupuf {
namespace {

using support::BitVector;
using support::Xoshiro256pp;
using variation::Environment;

AluPufConfig small_config(std::size_t width = 16) {
  AluPufConfig config;
  config.width = width;
  return config;
}

Challenge random_challenge(std::size_t width, Xoshiro256pp& rng) {
  return BitVector::random(2 * width, rng);
}

// ------------------------------------------------------------------ AluPuf

TEST(AluPuf, ResponseShape) {
  const AluPuf puf(small_config(), 1);
  EXPECT_EQ(puf.response_bits(), 16u);
  EXPECT_EQ(puf.challenge_bits(), 32u);
  Xoshiro256pp rng(2);
  const auto r = puf.eval(random_challenge(16, rng), Environment::nominal(), rng);
  EXPECT_EQ(r.size(), 16u);
}

TEST(AluPuf, RejectsWrongChallengeSize) {
  const AluPuf puf(small_config(), 1);
  Xoshiro256pp rng(3);
  EXPECT_THROW(puf.eval(BitVector(31), Environment::nominal(), rng),
               std::invalid_argument);
}

TEST(AluPuf, MostlyStableAcrossRepeatedEvaluations) {
  // Intra-chip HD must be small but non-zero (noise + metastability).
  const AluPuf puf(small_config(32), 7);
  Xoshiro256pp rng(4);
  const auto env = Environment::nominal();
  support::OnlineStats hd;
  for (int trial = 0; trial < 200; ++trial) {
    const auto c = random_challenge(32, rng);
    const auto r1 = puf.eval(c, env, rng);
    const auto r2 = puf.eval(c, env, rng);
    hd.add(static_cast<double>(r1.hamming_distance(r2)));
  }
  EXPECT_GT(hd.mean(), 0.0);
  EXPECT_LT(hd.mean(), 8.0);  // well under 25% of 32 bits
}

TEST(AluPuf, DifferentChipsDisagree) {
  const auto config = small_config(32);
  const AluPuf a(config, 100), b(config, 200);
  Xoshiro256pp rng(5);
  const auto env = Environment::nominal();
  support::OnlineStats hd;
  for (int trial = 0; trial < 200; ++trial) {
    const auto c = random_challenge(32, rng);
    hd.add(static_cast<double>(
        a.eval(c, env, rng).hamming_distance(b.eval(c, env, rng))));
  }
  // Inter-chip HD should be far above intra-chip (>= ~25% of 32 bits).
  EXPECT_GT(hd.mean(), 8.0);
}

TEST(AluPuf, ChallengeDependentResponses) {
  const AluPuf puf(small_config(32), 9);
  Xoshiro256pp rng(6);
  const auto env = Environment::nominal();
  int diff = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto c1 = random_challenge(32, rng);
    const auto c2 = random_challenge(32, rng);
    if (puf.eval(c1, env, rng) != puf.eval(c2, env, rng)) ++diff;
  }
  EXPECT_GT(diff, 40);
}

TEST(AluPuf, RaceDeltasNonZeroAndChipSpecific) {
  const auto config = small_config(16);
  const AluPuf a(config, 1), b(config, 2);
  Xoshiro256pp rng(7);
  const auto c = random_challenge(16, rng);
  const auto da = a.race_deltas(c, Environment::nominal());
  const auto db = b.race_deltas(c, Environment::nominal());
  ASSERT_EQ(da.size(), 16u);
  int differing_signs = 0;
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_NE(da[i], 0.0);
    if ((da[i] > 0) != (db[i] > 0)) ++differing_signs;
  }
  EXPECT_GT(differing_signs, 0);
}

TEST(AluPuf, MaxSettleTimeScalesWithWidth) {
  const AluPuf narrow(small_config(8), 3);
  const AluPuf wide(small_config(32), 3);
  const auto env = Environment::nominal();
  EXPECT_GT(wide.max_settle_ps(env), narrow.max_settle_ps(env) * 2.0);
}

TEST(AluPuf, OverclockingBreaksResponses) {
  // Against the enrollment reference: a generous clock leaves only the
  // usual noise, while a clock far below the carry-chain latency latches
  // garbage on most bits — the paper's setup-violation defence.
  const AluPuf puf(small_config(32), 11);
  const AluPufEmulator emu(32, puf.export_model());
  Xoshiro256pp rng(8);
  const auto env = Environment::nominal();
  const double t_alu = puf.max_settle_ps(env);

  const ClockConstraint safe{t_alu * 1.5 + 100.0, 20.0};
  const ClockConstraint violated{t_alu * 0.05, 20.0};

  int safe_errors = 0;
  int violated_errors = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto c = random_challenge(32, rng);
    const auto reference = emu.eval(c);
    safe_errors += static_cast<int>(
        puf.eval(c, env, rng, &safe).hamming_distance(reference));
    violated_errors += static_cast<int>(
        puf.eval(c, env, rng, &violated).hamming_distance(reference));
  }
  EXPECT_LT(safe_errors, violated_errors / 3);
  EXPECT_GT(violated_errors, 300);  // ~half the bits wrong on average
}

TEST(AluPuf, EnvironmentCornersFlipSomeBitsDeterministically) {
  // Voltage/temperature corners reorder a few races (wire-RC vs transistor
  // scaling, per-gate Vth tempco) — deterministic, noise-free flips on top
  // of the metastability noise the paper's Figure 4 reports.
  const AluPuf puf(small_config(32), 13);
  const AluPufEmulator emu(32, puf.export_model());
  Xoshiro256pp rng(9);
  support::OnlineStats volt_flips, temp_flips;
  const Environment low_v{0.9, 25.0};
  const Environment hot{1.0, 120.0};
  for (int trial = 0; trial < 150; ++trial) {
    const auto c = random_challenge(32, rng);
    const auto ref = emu.eval(c);
    EXPECT_EQ(emu.eval(c), ref);  // same env: fully deterministic
    volt_flips.add(static_cast<double>(emu.eval(c, low_v).hamming_distance(ref)));
    temp_flips.add(static_cast<double>(emu.eval(c, hot).hamming_distance(ref)));
  }
  EXPECT_GT(volt_flips.mean(), 0.3);
  EXPECT_GT(temp_flips.mean(), 0.3);
  EXPECT_LT(volt_flips.mean(), 6.0);  // corners disturb, not destroy
  EXPECT_LT(temp_flips.mean(), 6.0);
}

// ---------------------------------------------------------------- Emulator

TEST(AluPufEmulator, MatchesChipNominalBehaviour) {
  // The emulator from the delay table must agree with the physical chip up
  // to noise: HD(emulated, measured) ~ intra-chip HD, far below 50%.
  const auto config = small_config(32);
  const AluPuf puf(config, 21);
  const AluPufEmulator emu(32, puf.export_model());
  Xoshiro256pp rng(10);
  const auto env = Environment::nominal();
  support::OnlineStats hd;
  for (int trial = 0; trial < 150; ++trial) {
    const auto c = random_challenge(32, rng);
    hd.add(static_cast<double>(
        emu.eval(c).hamming_distance(puf.eval(c, env, rng))));
  }
  EXPECT_LT(hd.mean(), 6.0);
}

TEST(AluPufEmulator, DeterministicForSameChallenge) {
  const AluPuf puf(small_config(16), 22);
  const AluPufEmulator emu(16, puf.export_model());
  Xoshiro256pp rng(11);
  const auto c = random_challenge(16, rng);
  EXPECT_EQ(emu.eval(c), emu.eval(c));
}

TEST(AluPufEmulator, WrongChipModelDisagrees) {
  const auto config = small_config(32);
  const AluPuf victim(config, 30);
  const AluPuf other(config, 31);
  const AluPufEmulator wrong_model(32, other.export_model());
  Xoshiro256pp rng(12);
  const auto env = Environment::nominal();
  support::OnlineStats hd;
  for (int trial = 0; trial < 100; ++trial) {
    const auto c = random_challenge(32, rng);
    hd.add(static_cast<double>(
        wrong_model.eval(c).hamming_distance(victim.eval(c, env, rng))));
  }
  EXPECT_GT(hd.mean(), 8.0);  // emulating the wrong chip does not help
}

TEST(AluPufEmulator, RejectsMismatchedModel) {
  const AluPuf puf(small_config(16), 23);
  EXPECT_THROW(AluPufEmulator(32, puf.export_model()), std::invalid_argument);
}

// ------------------------------------------------------------- Obfuscation

TEST(Obfuscation, RejectsOddWidth) {
  EXPECT_THROW(ObfuscationNetwork(7), std::invalid_argument);
  EXPECT_THROW(ObfuscationNetwork(0), std::invalid_argument);
}

TEST(Obfuscation, FoldXorsHalves) {
  const ObfuscationNetwork net(8);
  const auto r = BitVector::from_string("10110100");  // high nibble 1011
  const auto f = net.fold(r);
  ASSERT_EQ(f.size(), 4u);
  // f[i] = r[i] ^ r[i+4]
  EXPECT_EQ(f.get(0), r.get(0) != r.get(4));
  EXPECT_EQ(f.get(3), r.get(3) != r.get(7));
}

TEST(Obfuscation, MatchesPaperFormula) {
  const std::size_t two_n = 16;
  const ObfuscationNetwork net(two_n);
  Xoshiro256pp rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    std::array<BitVector, 8> y;
    for (auto& r : y) r = BitVector::random(two_n, rng);
    const auto z = net.obfuscate(y);
    ASSERT_EQ(z.size(), two_n);
    const std::size_t n = two_n / 2;
    for (std::size_t i = 0; i < two_n; ++i) {
      bool expect = false;
      for (std::size_t j = 0; j < 4; ++j) {
        const auto& resp = i < n ? y[2 * j] : y[2 * j + 1];
        const std::size_t idx = i < n ? i : i - n;
        expect ^= resp.get(idx) != resp.get(idx + n);
      }
      EXPECT_EQ(z.get(i), expect);
    }
  }
}

TEST(Obfuscation, LinearInEachInput) {
  // XOR network => flipping one input bit flips exactly one output bit.
  const ObfuscationNetwork net(16);
  Xoshiro256pp rng(14);
  std::array<BitVector, 8> y;
  for (auto& r : y) r = BitVector::random(16, rng);
  const auto z0 = net.obfuscate(y);
  y[3].flip(5);
  const auto z1 = net.obfuscate(y);
  EXPECT_EQ(z0.hamming_distance(z1), 1u);
}

TEST(Obfuscation, ImprovesUniformity) {
  // Biased raw responses (70% ones) become nearly unbiased after the
  // two-phase XOR — the mechanism pushing inter-chip HD toward 50%.
  const ObfuscationNetwork net(32);
  Xoshiro256pp rng(15);
  std::size_t ones = 0;
  const int trials = 2000;
  for (int trial = 0; trial < trials; ++trial) {
    std::array<BitVector, 8> y;
    for (auto& r : y) {
      r = BitVector(32);
      for (std::size_t i = 0; i < 32; ++i) r.set(i, rng.bernoulli(0.7));
    }
    ones += net.obfuscate(y).popcount();
  }
  const double density = static_cast<double>(ones) / (32.0 * trials);
  EXPECT_NEAR(density, 0.5, 0.02);
}

// ---------------------------------------------------------------- Pipeline

TEST(ChallengeExpander, DeterministicAndDistinct) {
  const auto a = ChallengeExpander::expand(42, 32);
  const auto b = ChallengeExpander::expand(42, 32);
  const auto c = ChallengeExpander::expand(43, 32);
  ASSERT_EQ(a.size(), 8u);
  EXPECT_EQ(a[0], b[0]);
  EXPECT_EQ(a[7], b[7]);
  EXPECT_NE(a[0], c[0]);
  EXPECT_NE(a[0], a[1]);
  EXPECT_EQ(a[0].size(), 64u);
}

class PipelineFixture : public ::testing::Test {
 protected:
  PipelineFixture()
      : code_(5),
        device_(small_config(32), 77, code_),
        emulator_(32, device_.export_model(), code_) {}

  ecc::ReedMuller1 code_;
  PufDevice device_;
  PufEmulator emulator_;
};

TEST_F(PipelineFixture, DeviceOutputShape) {
  Xoshiro256pp rng(16);
  const auto out = device_.query(123, Environment::nominal(), rng);
  EXPECT_EQ(out.z.size(), 32u);
  ASSERT_EQ(out.helpers.size(), 8u);
  for (const auto& h : out.helpers) EXPECT_EQ(h.size(), 26u);
}

TEST_F(PipelineFixture, VerifierReproducesDeviceOutput) {
  // The central correctness property of the whole post-processing chain:
  // for an honest device, PUF.Emulate() recomputes z exactly.
  Xoshiro256pp rng(17);
  int match = 0;
  const int trials = 50;
  for (int trial = 0; trial < trials; ++trial) {
    const std::uint64_t x = rng.next();
    const auto out = device_.query(x, Environment::nominal(), rng);
    const auto z = emulator_.emulate(x, out.helpers);
    ASSERT_TRUE(z.has_value());
    if (*z == out.z) ++match;
  }
  // Error correction handles the noise: expect near-perfect agreement.
  EXPECT_GE(match, trials - 1);
}

TEST_F(PipelineFixture, WrongChipModelFailsVerificationPerCall) {
  // Structural note (documented in EXPERIMENTS.md): when reconstruction
  // fails, the error y_rec XOR y' is always a *codeword*, and the paper's
  // fold (bit i XOR bit i+n) maps every RM(1,5) codeword to a constant
  // block.  A forged transcript therefore still matches z with probability
  // ~1/4 per PUF call; attestation security comes from the many PUF calls
  // per run (match probability (1/4)^k).  Here we check the per-call rate
  // is far below 1 (and the protocol-level tests check full rejection).
  const PufDevice impostor(small_config(32), 999, code_);
  Xoshiro256pp rng(18);
  int match = 0;
  const int trials = 60;
  for (int trial = 0; trial < trials; ++trial) {
    const std::uint64_t x = rng.next();
    const auto out = impostor.query(x, Environment::nominal(), rng);
    const auto z = emulator_.emulate(x, out.helpers);
    if (z && *z == out.z) ++match;
  }
  EXPECT_LT(match, trials / 2);
}

TEST(Obfuscation, FoldOfReedMullerCodewordIsConstant) {
  // The structural interaction behind the ~1/4 per-call forgery rate: for
  // every RM(1,5) codeword c, c[i] XOR c[i+16] = u_4 for all i — the fold
  // collapses codewords to all-zeros or all-ones.
  const ecc::ReedMuller1 rm(5);
  const ObfuscationNetwork net(32);
  for (std::uint64_t m = 0; m < 64; ++m) {
    const auto folded = net.fold(rm.encode(BitVector(6, m)));
    const auto weight = folded.popcount();
    EXPECT_TRUE(weight == 0 || weight == folded.size())
        << "message " << m << " gave weight " << weight;
  }
}

TEST_F(PipelineFixture, EmulatorRejectsWrongHelperCount) {
  EXPECT_FALSE(emulator_.emulate(1, {}).has_value());
}

TEST_F(PipelineFixture, HelperDataDependsOnResponseNoise) {
  Xoshiro256pp rng(19);
  const auto out1 = device_.query(5, Environment::nominal(), rng);
  const auto out2 = device_.query(5, Environment::nominal(), rng);
  // Same challenge, two physical queries: helper data usually differs in a
  // few syndrome bits (noisy responses), yet both verify to the same z.
  const auto z1 = emulator_.emulate(5, out1.helpers);
  const auto z2 = emulator_.emulate(5, out2.helpers);
  ASSERT_TRUE(z1.has_value());
  ASSERT_TRUE(z2.has_value());
  EXPECT_EQ(*z1, out1.z);
  EXPECT_EQ(*z2, out2.z);
}

TEST(Pipeline, RejectsCodeWidthMismatch) {
  const ecc::ReedMuller1 rm4(4);  // n = 16, but PUF width 32
  EXPECT_THROW(PufDevice(small_config(32), 1, rm4), std::invalid_argument);
}

// -------------------------------------------------------------- ArbiterPuf

TEST(ArbiterPuf, FeatureMapMatchesDefinition) {
  const auto phi = ArbiterPuf::features(BitVector::from_string("0110"));
  // challenge bits (LSB first): c0=0, c1=1, c2=1, c3=0
  // phi[i] = prod_{j>=i} (1-2c_j); phi[4] = 1
  ASSERT_EQ(phi.size(), 5u);
  EXPECT_DOUBLE_EQ(phi[4], 1.0);
  EXPECT_DOUBLE_EQ(phi[3], 1.0);    // c3=0
  EXPECT_DOUBLE_EQ(phi[2], -1.0);   // c2=1
  EXPECT_DOUBLE_EQ(phi[1], 1.0);    // c1=1, c2=1
  EXPECT_DOUBLE_EQ(phi[0], 1.0);    // c0=0
}

TEST(ArbiterPuf, DeltaIsLinearInFeatures) {
  const ArbiterPuf puf({.stages = 16}, 1);
  Xoshiro256pp rng(20);
  // delta(c) computed two ways must agree; linearity over feature XOR is
  // what the LR attack exploits.
  for (int trial = 0; trial < 50; ++trial) {
    const auto c = BitVector::random(16, rng);
    const double d = puf.delta(c);
    EXPECT_EQ(puf.eval_ideal(c), d > 0.0);
  }
}

TEST(ArbiterPuf, InterChipAboutFiftyPercent) {
  // A single chip pair's disagreement rate is the angle between two random
  // weight vectors (noticeably spread), so average over several pairs.
  const ArbiterPufParams params{.stages = 64};
  Xoshiro256pp rng(21);
  double total = 0.0;
  const int pairs = 8;
  const int trials = 2000;
  for (int p = 0; p < pairs; ++p) {
    const ArbiterPuf a(params, 100 + 2 * p), b(params, 101 + 2 * p);
    int diff = 0;
    for (int i = 0; i < trials; ++i) {
      const auto c = BitVector::random(64, rng);
      if (a.eval_ideal(c) != b.eval_ideal(c)) ++diff;
    }
    total += static_cast<double>(diff) / trials;
  }
  EXPECT_NEAR(total / pairs, 0.5, 0.05);
}

TEST(ArbiterPuf, IntraChipSmall) {
  const ArbiterPuf puf({.stages = 64, .noise_sigma = 0.3}, 3);
  Xoshiro256pp rng(22);
  int diff = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    const auto c = BitVector::random(64, rng);
    if (puf.eval(c, rng) != puf.eval(c, rng)) ++diff;
  }
  const double intra = static_cast<double>(diff) / trials;
  EXPECT_GT(intra, 0.0);
  EXPECT_LT(intra, 0.15);
}

TEST(ArbiterPuf, RejectsBadInput) {
  EXPECT_THROW(ArbiterPuf({.stages = 0}, 1), std::invalid_argument);
  const ArbiterPuf puf({.stages = 8}, 1);
  EXPECT_THROW(puf.delta(BitVector(7)), std::invalid_argument);
}

// -------------------------------------------------- FeedForwardArbiterPuf

TEST(FeedForwardArbiterPuf, RejectsBadLoops) {
  FeedForwardParams params;
  params.stages = 32;
  params.loops = {{10, 5}};
  EXPECT_THROW(FeedForwardArbiterPuf(params, 1), std::invalid_argument);
  params.loops = {{10, 40}};
  EXPECT_THROW(FeedForwardArbiterPuf(params, 1), std::invalid_argument);
}

TEST(FeedForwardArbiterPuf, DeterministicIdealEval) {
  const FeedForwardArbiterPuf puf({}, 5);
  Xoshiro256pp rng(23);
  const auto c = BitVector::random(64, rng);
  EXPECT_EQ(puf.eval_ideal(c), puf.eval_ideal(c));
}

TEST(FeedForwardArbiterPuf, InterChipNearHalf) {
  const FeedForwardArbiterPuf a({}, 10), b({}, 11);
  Xoshiro256pp rng(24);
  int diff = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    const auto c = BitVector::random(64, rng);
    if (a.eval_ideal(c) != b.eval_ideal(c)) ++diff;
  }
  EXPECT_NEAR(static_cast<double>(diff) / trials, 0.5, 0.07);
}

TEST(FeedForwardArbiterPuf, NoisierThanPlainArbiter) {
  // The paper's reference point: FF-arbiter intra-chip HD (9.8%) exceeds
  // the plain arbiter's, because intermediate arbiter flips cascade.
  const double noise = 0.3;
  const ArbiterPuf plain({.stages = 64, .noise_sigma = noise}, 30);
  FeedForwardParams ff_params;
  ff_params.noise_sigma = noise;
  const FeedForwardArbiterPuf ff(ff_params, 30);
  Xoshiro256pp rng(25);
  int plain_diff = 0, ff_diff = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const auto c = BitVector::random(64, rng);
    if (plain.eval(c, rng) != plain.eval(c, rng)) ++plain_diff;
    if (ff.eval(c, rng) != ff.eval(c, rng)) ++ff_diff;
  }
  EXPECT_GE(ff_diff, plain_diff);
}

// ------------------------------------------------------------ batch paths

TEST(AluPufBatch, DeviceBatchConsumesOneNextAndIsReproducible) {
  // The eval_batch RNG contract (see alu_puf.hpp): the batch spends
  // exactly one rng.next() of the caller's generator, and the responses
  // are a pure function of (that value, challenges).
  const AluPuf puf(small_config(), 11);
  const auto env = Environment::nominal();
  std::vector<Challenge> challenges;
  {
    Xoshiro256pp crng(77);
    for (int i = 0; i < 64; ++i) {
      challenges.push_back(random_challenge(16, crng));
    }
  }
  Xoshiro256pp rng(1234);
  Xoshiro256pp probe = rng;
  const auto batch =
      puf.eval_batch(challenges.data(), challenges.size(), env, rng);
  ASSERT_EQ(batch.size(), challenges.size());
  // Exactly one next() consumed: after one probe step the streams align.
  probe.next();
  EXPECT_EQ(rng.next(), probe.next());
  // Same caller state -> bit-identical batch.
  Xoshiro256pp rng2(1234);
  const auto again =
      puf.eval_batch(challenges.data(), challenges.size(), env, rng2);
  ASSERT_EQ(again.size(), batch.size());
  for (std::size_t x = 0; x < batch.size(); ++x) {
    EXPECT_EQ(batch[x], again[x]) << "lane " << x;
  }
  // A different batch seed is a different noise realization: with 64
  // lanes of 16 metastability-prone bits some response must move.
  Xoshiro256pp rng3(4321);
  const auto other =
      puf.eval_batch(challenges.data(), challenges.size(), env, rng3);
  bool any_diff = false;
  for (std::size_t x = 0; x < batch.size(); ++x) {
    if (!(batch[x] == other[x])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(AluPufBatch, DeviceBatchNoiseMatchesScalarStatistically) {
  // The batch path samples noise with a different (faster) sampler than
  // scalar eval, so the contract is distributional: the per-bit flip rate
  // of repeated noisy evaluations of one challenge must match the scalar
  // path's within statistical slack.
  const AluPuf puf(small_config(), 11);
  const auto env = Environment::nominal();
  Xoshiro256pp crng(7);
  const auto challenge = random_challenge(16, crng);
  const std::size_t reps = 512;

  Xoshiro256pp srng(100);
  const auto reference = puf.eval(challenge, env, srng);
  std::size_t scalar_flips = 0;
  for (std::size_t i = 0; i < reps; ++i) {
    scalar_flips += (puf.eval(challenge, env, srng) ^ reference).popcount();
  }

  // Each batch lane is an independent realization of the same challenge.
  std::vector<Challenge> lanes(reps, challenge);
  Xoshiro256pp brng(200);
  const auto batch = puf.eval_batch(lanes.data(), lanes.size(), env, brng);
  std::size_t batch_flips = 0;
  for (const auto& r : batch) batch_flips += (r ^ reference).popcount();

  const double scalar_rate =
      static_cast<double>(scalar_flips) / (reps * 16.0);
  const double batch_rate = static_cast<double>(batch_flips) / (reps * 16.0);
  EXPECT_NEAR(batch_rate, scalar_rate, 0.05);
}

TEST(AluPufBatch, ClockConstraintBatchReproducibleAndMetastable) {
  const AluPuf puf(small_config(), 3);
  const auto env = Environment::nominal();
  // Aggressive deadline (a fifth of the worst-case settle): random
  // challenges settle early, so it takes a starved clock to push bits
  // into the bernoulli setup-violation path.  Those draws must stay
  // inside the per-lane derived stream (reproducible) while still
  // resolving like a fair coin across seeds (more inter-seed
  // disagreement than the unclocked device).
  const ClockConstraint clock{puf.max_settle_ps(env) * 0.2 + 20.0, 20.0};
  std::vector<Challenge> challenges;
  {
    Xoshiro256pp crng(5);
    for (int i = 0; i < 32; ++i) {
      challenges.push_back(random_challenge(16, crng));
    }
  }
  Xoshiro256pp rng_a(99);
  Xoshiro256pp rng_b(99);
  const auto clocked = puf.eval_batch(challenges.data(), challenges.size(),
                                      env, rng_a, &clock);
  const auto clocked_again = puf.eval_batch(
      challenges.data(), challenges.size(), env, rng_b, &clock);
  ASSERT_EQ(clocked.size(), challenges.size());
  for (std::size_t x = 0; x < clocked.size(); ++x) {
    EXPECT_EQ(clocked[x], clocked_again[x]) << "lane " << x;
  }

  const auto diff_bits = [&](const std::vector<RawResponse>& a,
                             const std::vector<RawResponse>& b) {
    std::size_t bits = 0;
    for (std::size_t x = 0; x < a.size(); ++x) bits += (a[x] ^ b[x]).popcount();
    return bits;
  };
  Xoshiro256pp rng_c(77);
  Xoshiro256pp rng_d(99);
  Xoshiro256pp rng_e(77);
  const auto clocked_other = puf.eval_batch(
      challenges.data(), challenges.size(), env, rng_c, &clock);
  const auto plain = puf.eval_batch(challenges.data(), challenges.size(), env,
                                    rng_d);
  const auto plain_other = puf.eval_batch(challenges.data(),
                                          challenges.size(), env, rng_e);
  EXPECT_GT(diff_bits(clocked, clocked_other),
            diff_bits(plain, plain_other));
}

TEST(AluPufBatch, EmulatorBatchBitIdenticalToScalar) {
  const AluPuf puf(small_config(), 21);
  const AluPufEmulator emulator(16, puf.export_model());
  std::vector<Challenge> challenges;
  Xoshiro256pp rng(31);
  for (int i = 0; i < 25; ++i) challenges.push_back(random_challenge(16, rng));
  const auto batch = emulator.eval_batch(challenges.data(), challenges.size());
  std::vector<double> soft;
  emulator.eval_soft_batch(challenges.data(), challenges.size(), soft);
  for (std::size_t x = 0; x < challenges.size(); ++x) {
    EXPECT_EQ(batch[x], emulator.eval(challenges[x]));
    const auto scalar_soft = emulator.eval_soft(challenges[x]);
    for (std::size_t i = 0; i < scalar_soft.size(); ++i) {
      EXPECT_EQ(soft[x * 16 + i], scalar_soft[i]);
    }
  }
}

TEST(AluPufBatch, DeviceQueryBatchMatchesObfuscationShape) {
  const ecc::ReedMuller1 code(5);
  const AluPufConfig config;  // width 32 to match RM(1,5)
  const PufDevice device(config, 8, code);
  const auto env = Environment::nominal();
  Xoshiro256pp rng(17);
  const std::uint64_t xs[] = {1, 2, 3};
  const auto outs = device.query_batch(xs, 3, env, rng);
  ASSERT_EQ(outs.size(), 3u);
  for (const auto& out : outs) {
    EXPECT_EQ(out.z.size(), device.output_bits());
    EXPECT_EQ(out.helpers.size(), ObfuscationNetwork::kResponsesPerOutput);
  }
  // The verifier reconstructs every batched output.
  PufEmulator verifier(32, device.export_model(), code);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto z = verifier.emulate(xs[i], outs[i].helpers, env);
    ASSERT_TRUE(z.has_value());
    EXPECT_EQ(*z, outs[i].z);
  }
}

}  // namespace
}  // namespace pufatt::alupuf
