#include <gtest/gtest.h>

#include <cstdint>

#include "netlist/builder.hpp"
#include "netlist/netlist.hpp"
#include "netlist/techmap.hpp"
#include "support/bitvec.hpp"
#include "support/rng.hpp"

namespace pufatt::netlist {
namespace {

using support::BitVector;

// ---------------------------------------------------------------- Netlist IR

TEST(Netlist, AddInputAndGate) {
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId g = net.add_gate(GateKind::kAnd, {a, b});
  EXPECT_EQ(net.num_gates(), 3u);
  EXPECT_EQ(net.num_inputs(), 2u);
  EXPECT_EQ(net.gate(g).kind, GateKind::kAnd);
  EXPECT_EQ(net.input_name(0), "a");
}

TEST(Netlist, RejectsForwardReference) {
  Netlist net;
  const GateId a = net.add_input("a");
  EXPECT_THROW(net.add_gate(GateKind::kNot, {a + 5}), std::invalid_argument);
}

TEST(Netlist, RejectsWrongFaninCount) {
  Netlist net;
  const GateId a = net.add_input("a");
  EXPECT_THROW(net.add_gate(GateKind::kNot, {a, a}), std::invalid_argument);
  EXPECT_THROW(net.add_gate(GateKind::kAnd, {a}), std::invalid_argument);
  EXPECT_THROW(net.add_gate(GateKind::kMux, {a, a}), std::invalid_argument);
}

TEST(Netlist, RejectsInputViaAddGate) {
  Netlist net;
  EXPECT_THROW(net.add_gate(GateKind::kInput, {}), std::invalid_argument);
}

TEST(Netlist, OutputMustExist) {
  Netlist net;
  EXPECT_THROW(net.add_output("x", 3), std::invalid_argument);
}

TEST(Netlist, EvaluateBasicGates) {
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId and_g = net.add_gate(GateKind::kAnd, {a, b});
  const GateId or_g = net.add_gate(GateKind::kOr, {a, b});
  const GateId xor_g = net.add_gate(GateKind::kXor, {a, b});
  const GateId nand_g = net.add_gate(GateKind::kNand, {a, b});
  const GateId nor_g = net.add_gate(GateKind::kNor, {a, b});
  const GateId xnor_g = net.add_gate(GateKind::kXnor, {a, b});
  const GateId not_g = net.add_gate(GateKind::kNot, {a});

  for (const bool va : {false, true}) {
    for (const bool vb : {false, true}) {
      const auto v = net.evaluate({va, vb});
      EXPECT_EQ(v[and_g], va && vb);
      EXPECT_EQ(v[or_g], va || vb);
      EXPECT_EQ(v[xor_g], va != vb);
      EXPECT_EQ(v[nand_g], !(va && vb));
      EXPECT_EQ(v[nor_g], !(va || vb));
      EXPECT_EQ(v[xnor_g], va == vb);
      EXPECT_EQ(v[not_g], !va);
    }
  }
}

TEST(Netlist, EvaluateMuxAndConst) {
  Netlist net;
  const GateId s = net.add_input("s");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId zero = net.add_gate(GateKind::kConst0, {});
  const GateId one = net.add_gate(GateKind::kConst1, {});
  const GateId mux = net.add_gate(GateKind::kMux, {s, a, b});
  for (const bool vs : {false, true}) {
    for (const bool va : {false, true}) {
      for (const bool vb : {false, true}) {
        const auto v = net.evaluate({vs, va, vb});
        EXPECT_EQ(v[mux], vs ? vb : va);
        EXPECT_FALSE(v[zero]);
        EXPECT_TRUE(v[one]);
      }
    }
  }
}

TEST(Netlist, EvaluateWrongInputCountThrows) {
  Netlist net;
  net.add_input("a");
  EXPECT_THROW(net.evaluate({}), std::invalid_argument);
  EXPECT_THROW(net.evaluate({true, false}), std::invalid_argument);
}

TEST(Netlist, KindHistogramAndLogicCount) {
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  net.add_gate(GateKind::kXor, {a, b});
  net.add_gate(GateKind::kXor, {a, b});
  net.add_gate(GateKind::kConst0, {});
  const auto hist = net.kind_histogram();
  EXPECT_EQ(hist.at(GateKind::kXor), 2u);
  EXPECT_EQ(hist.at(GateKind::kInput), 2u);
  EXPECT_EQ(net.logic_gate_count(), 2u);
}

// ---------------------------------------------------------------- Full adder

TEST(Builder, FullAdderTruthTable) {
  for (const bool a : {false, true}) {
    for (const bool b : {false, true}) {
      for (const bool c : {false, true}) {
        Netlist net;
        const GateId ia = net.add_input("a");
        const GateId ib = net.add_input("b");
        const GateId ic = net.add_input("c");
        const auto fa = build_full_adder(net, ia, ib, ic, {});
        const auto v = net.evaluate({a, b, c});
        const int sum = (a ? 1 : 0) + (b ? 1 : 0) + (c ? 1 : 0);
        EXPECT_EQ(v[fa.sum], (sum & 1) != 0);
        EXPECT_EQ(v[fa.carry_out], sum >= 2);
      }
    }
  }
}

// ------------------------------------------------------------- Ripple adder

class RippleAdderWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RippleAdderWidth, AddsCorrectlyExhaustiveOrRandom) {
  const std::size_t width = GetParam();
  Netlist net;
  std::vector<GateId> a, b;
  for (std::size_t i = 0; i < width; ++i) {
    a.push_back(net.add_input("a"));
  }
  for (std::size_t i = 0; i < width; ++i) {
    b.push_back(net.add_input("b"));
  }
  const GateId cin = net.add_gate(GateKind::kConst0, {});
  const auto ports = build_ripple_carry_adder(net, a, b, cin, {});
  ASSERT_EQ(ports.sum.size(), width);

  support::Xoshiro256pp rng(width * 7919);
  const std::uint64_t mask =
      width == 64 ? ~0ULL : ((1ULL << width) - 1);
  const int trials = width <= 4 ? -1 : 500;

  auto check = [&](std::uint64_t va, std::uint64_t vb) {
    std::vector<bool> in;
    for (std::size_t i = 0; i < width; ++i) in.push_back((va >> i) & 1);
    for (std::size_t i = 0; i < width; ++i) in.push_back((vb >> i) & 1);
    const auto v = net.evaluate(in);
    const std::uint64_t expect = va + vb;
    for (std::size_t i = 0; i < width; ++i) {
      EXPECT_EQ(v[ports.sum[i]], ((expect >> i) & 1) != 0)
          << "bit " << i << " of " << va << "+" << vb;
    }
    if (width < 64) {
      EXPECT_EQ(v[ports.carry_out], ((expect >> width) & 1) != 0);
    }
  };

  if (trials < 0) {
    for (std::uint64_t va = 0; va <= mask; ++va) {
      for (std::uint64_t vb = 0; vb <= mask; ++vb) check(va, vb);
    }
  } else {
    for (int i = 0; i < trials; ++i) {
      check(rng.next() & mask, rng.next() & mask);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, RippleAdderWidth,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32));

TEST(Builder, RippleAdderRejectsMismatchedOperands) {
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId b0 = net.add_input("b0");
  const GateId b1 = net.add_input("b1");
  const GateId cin = net.add_gate(GateKind::kConst0, {});
  EXPECT_THROW(build_ripple_carry_adder(net, {a}, {b0, b1}, cin, {}),
               std::invalid_argument);
}

// ------------------------------------------------------------ ALU PUF circuit

TEST(Builder, AluPufCircuitShape) {
  const auto circuit = build_alu_puf_circuit(16);
  EXPECT_EQ(circuit.width, 16u);
  EXPECT_EQ(circuit.challenge_inputs.size(), 32u);
  EXPECT_EQ(circuit.race0.size(), 17u);  // 16 sum bits + carry-out
  EXPECT_EQ(circuit.race1.size(), 17u);
  EXPECT_EQ(circuit.net.outputs().size(), 34u);
}

TEST(Builder, AluPufTwoAlusComputeSameSums) {
  const auto circuit = build_alu_puf_circuit(8);
  support::Xoshiro256pp rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<bool> in;
    for (std::size_t i = 0; i < 16; ++i) in.push_back(rng.bernoulli(0.5));
    const auto v = circuit.net.evaluate(in);
    for (std::size_t i = 0; i < circuit.race0.size(); ++i) {
      EXPECT_EQ(v[circuit.race0[i]], v[circuit.race1[i]])
          << "identical ALUs must agree functionally";
    }
  }
}

TEST(Builder, AluPufComputesAddition) {
  const auto circuit = build_alu_puf_circuit(8);
  for (const auto& [va, vb] : {std::pair<unsigned, unsigned>{3, 5},
                              {255, 1},
                              {128, 128},
                              {0, 0},
                              {170, 85}}) {
    std::vector<bool> in;
    for (std::size_t i = 0; i < 8; ++i) in.push_back((va >> i) & 1);
    for (std::size_t i = 0; i < 8; ++i) in.push_back((vb >> i) & 1);
    const auto v = circuit.net.evaluate(in);
    const unsigned expect = va + vb;
    for (std::size_t i = 0; i < 9; ++i) {
      EXPECT_EQ(v[circuit.race0[i]], ((expect >> i) & 1) != 0);
    }
  }
}

TEST(Builder, AluPufRejectsBadWidth) {
  EXPECT_THROW(build_alu_puf_circuit(0), std::invalid_argument);
  EXPECT_THROW(build_alu_puf_circuit(65), std::invalid_argument);
}

TEST(Builder, AluPufPlacementSeparatesAlus) {
  AluPufLayout layout;
  layout.alu_separation = 4.0;
  const auto circuit = build_alu_puf_circuit(4, layout);
  // Race nets of ALU0 sit at y=0; ALU1 at y=separation.
  const auto& g0 = circuit.net.gate(circuit.race0[0]);
  const auto& g1 = circuit.net.gate(circuit.race1[0]);
  EXPECT_DOUBLE_EQ(g0.place.y, 0.0);
  EXPECT_DOUBLE_EQ(g1.place.y, 4.0);
}

// ------------------------------------------------------- Obfuscation circuit

TEST(Builder, ObfuscationCircuitMatchesTwoPhaseXor) {
  const std::size_t n = 4;
  const auto net = build_obfuscation_circuit(n);
  EXPECT_EQ(net.num_inputs(), 8 * 2 * n);
  EXPECT_EQ(net.outputs().size(), 2 * n);

  support::Xoshiro256pp rng(55);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::vector<bool>> y(8, std::vector<bool>(2 * n));
    std::vector<bool> in;
    for (auto& resp : y) {
      for (auto&& bit : resp) bit = rng.bernoulli(0.5);
      in.insert(in.end(), resp.begin(), resp.end());
    }
    const auto v = net.evaluate(in);
    // Reference model of the paper's two phases.
    std::vector<std::vector<bool>> folded(8, std::vector<bool>(n));
    for (std::size_t r = 0; r < 8; ++r) {
      for (std::size_t i = 0; i < n; ++i) {
        folded[r][i] = y[r][i] != y[r][i + n];
      }
    }
    for (std::size_t i = 0; i < 2 * n; ++i) {
      bool expect = false;
      for (std::size_t j = 0; j < 4; ++j) {
        const auto& lo = folded[2 * j];
        const auto& hi = folded[2 * j + 1];
        const bool bit = i < n ? lo[i] : hi[i - n];
        expect = expect != bit;
      }
      EXPECT_EQ(v[net.outputs()[i].gate], expect);
    }
  }
}

TEST(Builder, ObfuscationCircuitXorCountMatchesTable1) {
  // For 2n = 32 the paper's Table 1 reports 224 XORs of obfuscation logic.
  const auto net = build_obfuscation_circuit(16);
  EXPECT_EQ(count_xor_gates(net), 224u);
}

// --------------------------------------------------------- Syndrome circuit

TEST(Builder, SyndromeCircuitComputesParityRows) {
  std::vector<BitVector> rows;
  rows.push_back(BitVector::from_string("1010"));
  rows.push_back(BitVector::from_string("1111"));
  rows.push_back(BitVector::from_string("0001"));
  const auto net = build_syndrome_circuit(rows);
  ASSERT_EQ(net.outputs().size(), 3u);
  for (unsigned y = 0; y < 16; ++y) {
    std::vector<bool> in;
    for (unsigned i = 0; i < 4; ++i) in.push_back((y >> i) & 1);
    const auto v = net.evaluate(in);
    for (std::size_t j = 0; j < rows.size(); ++j) {
      bool expect = false;
      for (unsigned i = 0; i < 4; ++i) {
        if (rows[j].get(i) && ((y >> i) & 1)) expect = !expect;
      }
      EXPECT_EQ(v[net.outputs()[j].gate], expect);
    }
  }
}

TEST(Builder, SyndromeCircuitRejectsEmptyAndRagged) {
  EXPECT_THROW(build_syndrome_circuit({}), std::invalid_argument);
  std::vector<BitVector> ragged{BitVector(4), BitVector(5)};
  EXPECT_THROW(build_syndrome_circuit(ragged), std::invalid_argument);
}

// ---------------------------------------------------------------- PDL bank

TEST(Builder, PdlBankShapeAndTransparency) {
  const auto net = build_pdl_bank(4, 8);
  EXPECT_EQ(net.num_inputs(), 4u);
  EXPECT_EQ(net.outputs().size(), 4u);
  // PDL is logically transparent: output equals input.
  for (unsigned pattern = 0; pattern < 16; ++pattern) {
    std::vector<bool> in;
    for (unsigned i = 0; i < 4; ++i) in.push_back((pattern >> i) & 1);
    const auto v = net.evaluate(in);
    for (unsigned i = 0; i < 4; ++i) {
      EXPECT_EQ(v[net.outputs()[i].gate], in[i]);
    }
  }
}

// ---------------------------------------------------------------- Techmap

TEST(Techmap, SingleGateIsOneLut) {
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId g = net.add_gate(GateKind::kAnd, {a, b});
  net.add_output("o", g);
  EXPECT_EQ(estimate_luts(net), 1u);
}

TEST(Techmap, ChainAbsorbedIntoOneLut) {
  // NOT -> AND -> XOR over 3 primary inputs: support fits a 6-LUT.
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId c = net.add_input("c");
  const GateId n = net.add_gate(GateKind::kNot, {a});
  const GateId g = net.add_gate(GateKind::kAnd, {n, b});
  const GateId x = net.add_gate(GateKind::kXor, {g, c});
  net.add_output("o", x);
  EXPECT_EQ(estimate_luts(net), 1u);
}

TEST(Techmap, WideSupportNeedsMultipleLuts) {
  Netlist net;
  std::vector<GateId> ins;
  for (int i = 0; i < 12; ++i) ins.push_back(net.add_input("i"));
  // Balanced XOR tree over 12 inputs.
  std::vector<GateId> level = ins;
  while (level.size() > 1) {
    std::vector<GateId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(net.add_gate(GateKind::kXor, {level[i], level[i + 1]}));
    }
    if (level.size() % 2) next.push_back(level.back());
    level = next;
  }
  net.add_output("o", level[0]);
  const auto luts = estimate_luts(net);
  EXPECT_GE(luts, 2u);  // 12 > 6 inputs cannot fit one LUT
  EXPECT_LE(luts, 4u);
}

TEST(Techmap, SharedFanoutNotAbsorbed) {
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId shared = net.add_gate(GateKind::kXor, {a, b});
  const GateId g1 = net.add_gate(GateKind::kNot, {shared});
  const GateId g2 = net.add_gate(GateKind::kBuf, {shared});
  net.add_output("o1", g1);
  net.add_output("o2", g2);
  EXPECT_EQ(estimate_luts(net), 3u);
}

TEST(Techmap, MuxStagesKeptSeparate) {
  const auto net = build_pdl_bank(1, 8);
  const auto with_keep = estimate_luts(net, {.lut_inputs = 6, .keep_mux_stages = true});
  EXPECT_EQ(with_keep, 8u);  // one LUT per PDL stage, by design
}

TEST(Techmap, CountXorGates) {
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  net.add_gate(GateKind::kXor, {a, b});
  net.add_gate(GateKind::kXnor, {a, b});
  net.add_gate(GateKind::kAnd, {a, b});
  EXPECT_EQ(count_xor_gates(net), 2u);
}

TEST(Techmap, EstimateComponentCarriesSequentialResources) {
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId g = net.add_gate(GateKind::kNot, {a});
  net.add_output("o", g);
  const auto est = estimate_component("demo", net, {.registers = 7, .bram = 2, .fifo = 1});
  EXPECT_EQ(est.component, "demo");
  EXPECT_EQ(est.luts, 1u);
  EXPECT_EQ(est.registers, 7u);
  EXPECT_EQ(est.bram, 2u);
  EXPECT_EQ(est.fifo, 1u);
}

TEST(Netlist, ReorderInputsRebindsPinOrder) {
  // y = a AND (NOT b): distinguishes the operands, so a swapped pin order
  // must change evaluate()'s view of the same value vector.
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId nb = net.add_gate(GateKind::kNot, {b});
  const GateId y = net.add_gate(GateKind::kAnd, {a, nb});
  net.add_output("y", y);
  EXPECT_TRUE(net.evaluate({true, false})[y]);
  EXPECT_FALSE(net.evaluate({false, true})[y]);

  net.reorder_inputs({1, 0});
  EXPECT_EQ(net.inputs()[0], b);
  EXPECT_EQ(net.inputs()[1], a);
  EXPECT_EQ(net.input_name(0), "b");
  // Same value vector, swapped meaning: position 0 now feeds b.
  EXPECT_FALSE(net.evaluate({true, false})[y]);
  EXPECT_TRUE(net.evaluate({false, true})[y]);
}

TEST(Netlist, ReorderInputsRejectsNonPermutations) {
  Netlist net;
  net.add_input("a");
  net.add_input("b");
  EXPECT_THROW(net.reorder_inputs({0}), std::invalid_argument);
  EXPECT_THROW(net.reorder_inputs({0, 0}), std::invalid_argument);
  EXPECT_THROW(net.reorder_inputs({0, 2}), std::invalid_argument);
}

}  // namespace
}  // namespace pufatt::netlist
