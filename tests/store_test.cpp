// Durable verifier store tests: WAL framing and the torn-tail/corruption
// matrix, durable CRP consumption, snapshot compaction, crash recovery
// (the kill-and-recover acceptance path), and the pool drain barrier.
// Every multi-threaded test here is expected to run clean under
// -DPUFATT_TSAN=ON (see README build matrix).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <map>

#include "core/crp_database.hpp"
#include "obs/metrics.hpp"
#include "core/distributed.hpp"
#include "core/enrollment.hpp"
#include "core/serialize.hpp"
#include "ecc/reed_muller.hpp"
#include "service/device_registry.hpp"
#include "service/emulator_cache.hpp"
#include "service/verifier_pool.hpp"
#include "store/crp_ledger.hpp"
#include "store/records.hpp"
#include "store/recovery.hpp"
#include "store/replication.hpp"
#include "store/sharded_store.hpp"
#include "store/verifier_store.hpp"
#include "store/wal.hpp"
#include "support/faulty_file.hpp"

namespace pufatt::store {
namespace {

namespace fs = std::filesystem;
using support::Xoshiro256pp;

const ecc::ReedMuller1& code() {
  static const ecc::ReedMuller1 instance(5);
  return instance;
}

/// Fresh empty directory under the test temp root; removed first so a
/// rerun never sees a previous run's log.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "pufatt_store_" + name;
  fs::remove_all(dir);
  return dir;
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// filename -> contents for every regular file directly under `dir`:
/// the byte-identical comparison replication tests are built on.
std::map<std::string, std::vector<std::uint8_t>> dir_image(
    const std::string& dir) {
  std::map<std::string, std::vector<std::uint8_t>> image;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      image[entry.path().filename().string()] =
          read_bytes(entry.path().string());
    }
  }
  return image;
}

/// Canonical serialization of whatever crash recovery reconstructs from
/// `dir` — two directories recovering to equal pairs hold the same state.
std::pair<std::string, std::string> serialize_recovered(
    const std::string& dir) {
  const auto state = recover(dir);
  std::stringstream registry(std::ios::in | std::ios::out | std::ios::binary);
  state.registry.save(registry);
  std::stringstream ledger(std::ios::in | std::ios::out | std::ios::binary);
  state.ledger->save(ledger);
  return {registry.str(), ledger.str()};
}

std::uint64_t segment_index(const std::string& path) {
  return std::stoull(fs::path(path).filename().string().substr(4, 8));
}

/// Shared fixture: enrolling real devices is the expensive part, so one
/// small fleet is built once and reused read-only by every test.
struct Fleet {
  struct Device {
    std::string id;
    std::unique_ptr<alupuf::PufDevice> device;
    core::EnrollmentRecord record;
  };
  std::vector<Device> devices;

  static const Fleet& instance() {
    static const Fleet fleet(3);
    return fleet;
  }

  /// A fresh CRP database for device `index` (single measurement set,
  /// deterministic in `seed`).
  core::CrpDatabase collect(std::size_t index, std::size_t entries,
                            std::uint64_t seed) const {
    Xoshiro256pp rng(seed);
    return core::CrpDatabase::collect(devices[index].device->raw_puf(),
                                      entries, rng);
  }

  core::Responder responder(std::size_t index, std::uint64_t seed) const {
    auto prover = std::make_shared<core::CpuProver>(
        *devices[index].device, devices[index].record,
        core::CpuProver::Variant::kHonest, seed);
    return [prover](const core::AttestationRequest& request) {
      auto outcome = prover->respond(request);
      return core::ProverReply{std::move(outcome.response),
                               outcome.compute_us};
    };
  }

 private:
  explicit Fleet(std::size_t count) {
    const auto profile = core::DistributedParams::small_profile();
    Xoshiro256pp rng(0x570E);
    std::vector<std::uint32_t> firmware(600);
    for (auto& word : firmware) word = static_cast<std::uint32_t>(rng.next());
    const auto image = core::make_enrolled_image(profile, firmware);
    devices.resize(count);
    for (std::size_t d = 0; d < count; ++d) {
      devices[d].id = "stored-" + std::to_string(d);
      devices[d].device = std::make_unique<alupuf::PufDevice>(
          profile.puf_config, 0x57D0 + d, code());
      devices[d].record = core::enroll(*devices[d].device, profile, image);
    }
  }
};

// --- WAL framing ------------------------------------------------------------

TEST(Wal, RoundTripAcrossReopen) {
  const std::string dir = fresh_dir("round_trip");
  {
    WalWriter wal(dir);
    EXPECT_EQ(wal.append(7, "alpha"), 0u);
    EXPECT_EQ(wal.append(8, std::string(1000, 'x')), 1u);
    EXPECT_EQ(wal.append(kCheckpoint, ""), 2u);  // zero-length payload
    wal.sync();
  }
  const auto result = read_wal(dir);
  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_FALSE(result.torn_tail);
  EXPECT_EQ(result.segments, 1u);
  EXPECT_EQ(result.records[0].type, 7u);
  EXPECT_EQ(std::string(result.records[0].payload.begin(),
                        result.records[0].payload.end()),
            "alpha");
  EXPECT_EQ(result.records[1].payload.size(), 1000u);
  EXPECT_TRUE(result.records[2].payload.empty());

  // Reopen resumes the same segment and keeps appending after the tail.
  {
    WalWriter wal(dir);
    wal.append(9, "omega");
    wal.sync();
  }
  EXPECT_EQ(read_wal(dir).records.size(), 4u);
}

TEST(Wal, RotationSplitsSegments) {
  const std::string dir = fresh_dir("rotation");
  WalOptions options;
  options.segment_bytes = 256;  // tiny, to force rotation quickly
  WalWriter wal(dir, options);
  for (int i = 0; i < 40; ++i) wal.append(1, std::string(32, 'r'));
  wal.sync();
  EXPECT_GT(wal.current_segment_index(), 1u);
  const auto result = read_wal(dir);
  EXPECT_EQ(result.records.size(), 40u);
  EXPECT_GT(result.segments, 1u);
  EXPECT_FALSE(result.torn_tail);
}

TEST(Wal, TornTailAcceptedAndTruncatedOnReopen) {
  const std::string dir = fresh_dir("torn_tail");
  {
    WalWriter wal(dir);
    wal.append(1, "first");
    wal.append(2, "second");
    wal.sync();
  }
  const std::string segment = wal_segment_paths(dir).back();
  auto bytes = read_bytes(segment);
  // Cut into the final record: a crash mid-append leaves exactly this.
  write_bytes(segment, {bytes.begin(), bytes.end() - 5});

  const auto result = read_wal(dir);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_TRUE(result.torn_tail);

  // The writer truncates the torn tail and extends the clean prefix.
  {
    WalWriter wal(dir);
    wal.append(3, "third");
    wal.sync();
  }
  const auto after = read_wal(dir);
  ASSERT_EQ(after.records.size(), 2u);
  EXPECT_FALSE(after.torn_tail);
  EXPECT_EQ(after.records[1].type, 3u);
}

TEST(Wal, FlippedCrcByteIsHardError) {
  const std::string dir = fresh_dir("flipped_crc");
  {
    WalWriter wal(dir);
    wal.append(1, "payload-under-test");
    wal.sync();
  }
  const std::string segment = wal_segment_paths(dir).back();
  auto bytes = read_bytes(segment);
  bytes.back() ^= 0x01;  // the record's trailing CRC byte
  write_bytes(segment, bytes);
  EXPECT_THROW(read_wal(dir), StoreError);
}

TEST(Wal, GarbageSegmentHeaderIsHardError) {
  const std::string dir = fresh_dir("garbage_header");
  {
    WalWriter wal(dir);
    wal.append(1, "x");
    wal.sync();
  }
  const std::string segment = wal_segment_paths(dir).back();
  auto bytes = read_bytes(segment);
  bytes[0] ^= 0xFF;
  write_bytes(segment, bytes);
  EXPECT_THROW(read_wal(dir), StoreError);
  EXPECT_THROW(WalWriter{dir}, StoreError);  // reopen must refuse too
}

// Seeded fuzz over the documented corruption matrix: any truncation of the
// final segment is a torn tail (accepted, records a prefix); any byte flip
// in a non-final segment is a hard error (its records are all complete, so
// nothing there can be explained as a crash).
TEST(Wal, CorruptionMatrixFuzz) {
  const std::string dir = fresh_dir("fuzz_base");
  WalOptions options;
  options.segment_bytes = 200;
  {
    WalWriter wal(dir, options);
    for (int i = 0; i < 24; ++i) {
      wal.append(static_cast<std::uint32_t>(i + 1), std::string(24, 'f'));
    }
    wal.sync();
  }
  const auto paths = wal_segment_paths(dir);
  ASSERT_GT(paths.size(), 2u);
  const std::size_t baseline = read_wal(dir).records.size();
  ASSERT_EQ(baseline, 24u);

  std::vector<std::vector<std::uint8_t>> pristine;
  for (const auto& path : paths) pristine.push_back(read_bytes(path));
  auto restore = [&] {
    for (std::size_t i = 0; i < paths.size(); ++i) {
      write_bytes(paths[i], pristine[i]);
    }
  };

  Xoshiro256pp rng(0xC0221);
  for (int trial = 0; trial < 120; ++trial) {
    restore();
    if (trial % 2 == 0) {
      // Truncate the final segment at a random length.
      const auto& tail = pristine.back();
      const std::size_t cut = rng.next() % (tail.size() + 1);
      write_bytes(paths.back(), {tail.begin(), tail.begin() +
                                 static_cast<std::ptrdiff_t>(cut)});
      const auto result = read_wal(dir);
      EXPECT_LE(result.records.size(), baseline);
      for (std::size_t i = 0; i < result.records.size(); ++i) {
        EXPECT_EQ(result.records[i].type, i + 1);  // a strict prefix
      }
    } else {
      // Flip one byte somewhere in a non-final segment.
      const std::size_t victim = rng.next() % (paths.size() - 1);
      auto bytes = pristine[victim];
      bytes[rng.next() % bytes.size()] ^= static_cast<std::uint8_t>(
          1u << (rng.next() % 8));
      write_bytes(paths[victim], bytes);
      EXPECT_THROW(read_wal(dir), StoreError) << "trial " << trial;
    }
  }
}

// A failed rotation (the new segment cannot be created) must leave the
// writer in a clean failed state: every further append/sync throws
// StoreError instead of fwrite/fileno on a null stream.
TEST(Wal, FailedRotationLeavesWriterFailedNotCrashed) {
  const std::string dir = fresh_dir("failed_rotation");
  WalOptions options;
  options.segment_bytes = 64;  // the first record already overflows it
  options.sync_every = 0;
  auto wal = std::make_unique<WalWriter>(dir, options);
  wal->append(1, std::string(80, 'x'));
  wal->sync();
  // Make the next rotation's fopen fail for any user (root included):
  // replace the log directory with a regular file.
  fs::remove_all(dir);
  { std::ofstream(dir).put('x'); }
  EXPECT_THROW(wal->append(1, "trigger-rotation"), StoreError);
  EXPECT_THROW(wal->append(1, "already-failed"), StoreError);
  EXPECT_THROW(wal->sync(), StoreError);
  wal.reset();  // the destructor tolerates the failed state
  fs::remove(dir);
}

TEST(Wal, ConcurrentAppendsKeepPerThreadOrder) {
  const std::string dir = fresh_dir("concurrent");
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 200;
  {
    WalOptions options;
    options.segment_bytes = 4096;  // rotate a few times under contention
    options.sync_every = 16;
    WalWriter wal(dir, options);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&wal, t] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          std::string payload;
          payload.push_back(static_cast<char>('A' + t));
          payload += std::to_string(i);
          wal.append(static_cast<std::uint32_t>(t + 1), payload);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    wal.sync();
    EXPECT_EQ(wal.appended_records(), kThreads * kPerThread);
  }
  const auto result = read_wal(dir);
  ASSERT_EQ(result.records.size(), kThreads * kPerThread);
  EXPECT_FALSE(result.torn_tail);
  // Interleaving across threads is arbitrary, but each thread's records
  // must appear in its own issue order.
  std::vector<std::size_t> next(kThreads, 0);
  for (const auto& record : result.records) {
    const std::string payload(record.payload.begin(), record.payload.end());
    const auto t = static_cast<std::size_t>(payload[0] - 'A');
    ASSERT_LT(t, kThreads);
    EXPECT_EQ(payload.substr(1), std::to_string(next[t]));
    ++next[t];
  }
}

// --- CrpDatabase persistence -------------------------------------------------

TEST(CrpDatabasePersistence, RoundTripKeepsCursorAndEntries) {
  const auto& fleet = Fleet::instance();
  auto db = fleet.collect(0, 4, 0xDB01);
  Xoshiro256pp rng(0x11);
  const auto first = db.authenticate(fleet.devices[0].device->raw_puf(), rng);
  EXPECT_TRUE(first.conclusive());
  EXPECT_TRUE(first.accepted);  // genuine device, genuine references
  EXPECT_EQ(db.remaining(), 3u);

  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  db.save(buffer);
  auto reloaded = core::CrpDatabase::load(buffer);
  EXPECT_EQ(reloaded.size(), 4u);
  EXPECT_EQ(reloaded.remaining(), 3u);
  EXPECT_EQ(reloaded.consumed(), 1u);

  // Byte-stable: saving the reload reproduces the bytes exactly.
  std::stringstream again(std::ios::in | std::ios::out | std::ios::binary);
  reloaded.save(again);
  EXPECT_EQ(buffer.str(), again.str());

  // The reload keeps consuming where the original left off, never reusing
  // the spent entry (the anti-replay property of a single-use database).
  Xoshiro256pp rng2(0x12);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(reloaded
                    .authenticate(fleet.devices[0].device->raw_puf(), rng2)
                    .conclusive());
  }
  const auto spent =
      reloaded.authenticate(fleet.devices[0].device->raw_puf(), rng2);
  EXPECT_TRUE(spent.exhausted);
  EXPECT_FALSE(spent.conclusive());
}

TEST(CrpDatabasePersistence, MarkConsumedThroughIsIdempotent) {
  const auto& fleet = Fleet::instance();
  auto db = fleet.collect(1, 5, 0xDB02);
  db.mark_consumed_through(2);
  EXPECT_EQ(db.consumed(), 3u);
  db.mark_consumed_through(2);  // replaying the same marker moves nothing
  EXPECT_EQ(db.consumed(), 3u);
  db.mark_consumed_through(0);  // an older marker never rewinds
  EXPECT_EQ(db.consumed(), 3u);
  EXPECT_EQ(db.remaining(), 2u);
  EXPECT_THROW(db.mark_consumed_through(5), std::out_of_range);
}

TEST(CrpDatabasePersistence, LoadRejectsGarbage) {
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  buffer << "definitely not a CRP database";
  EXPECT_THROW(core::CrpDatabase::load(buffer), core::SerializationError);
}

// --- CrpLedger ---------------------------------------------------------------

TEST(CrpLedger, LogsConsumptionAndFiresWatermarkOnce) {
  const auto& fleet = Fleet::instance();
  const std::string dir = fresh_dir("ledger_watermark");
  WalWriter wal(dir);

  CrpLedger::Options options;
  options.low_watermark = 1;
  std::vector<std::pair<std::string, std::size_t>> low_calls;
  options.on_low = [&](const std::string& id, std::size_t remaining) {
    low_calls.emplace_back(id, remaining);
  };
  CrpLedger ledger(&wal, options);
  const std::string id = fleet.devices[0].id;
  ledger.enroll(id, fleet.collect(0, 3, 0xDB03));
  EXPECT_EQ(ledger.remaining(id), std::size_t{3});

  Xoshiro256pp rng(0x21);
  const auto& puf = fleet.devices[0].device->raw_puf();
  ASSERT_TRUE(ledger.authenticate(id, puf, rng).has_value());
  EXPECT_TRUE(low_calls.empty());  // remaining 2, above the watermark
  ASSERT_TRUE(ledger.authenticate(id, puf, rng).has_value());
  ASSERT_EQ(low_calls.size(), 1u);  // remaining 1: first crossing fires
  EXPECT_EQ(low_calls[0].first, id);
  EXPECT_EQ(low_calls[0].second, 1u);
  ASSERT_TRUE(ledger.authenticate(id, puf, rng).has_value());
  EXPECT_EQ(low_calls.size(), 1u);  // deeper depletion: no re-fire

  // Replenishing above the watermark re-arms the hook.
  ledger.enroll(id, fleet.collect(0, 3, 0xDB04));
  Xoshiro256pp rng2(0x22);
  ASSERT_TRUE(ledger.authenticate(id, puf, rng2).has_value());
  ASSERT_TRUE(ledger.authenticate(id, puf, rng2).has_value());
  EXPECT_EQ(low_calls.size(), 2u);

  EXPECT_FALSE(ledger.authenticate("nobody", puf, rng2).has_value());

  // Everything above went through the WAL: one enroll + consume marker per
  // conclusive authentication, twice over.
  wal.sync();
  const auto log = read_wal(dir);
  std::size_t enrolls = 0, consumes = 0;
  for (const auto& record : log.records) {
    if (record.type == kCrpEnroll) ++enrolls;
    if (record.type == kCrpConsume) ++consumes;
  }
  EXPECT_EQ(enrolls, 2u);
  EXPECT_EQ(consumes, 5u);
}

// --- VerifierStore: the kill-and-recover acceptance test --------------------

TEST(VerifierStore, KillAndRecover) {
  const auto& fleet = Fleet::instance();
  const std::string dir = fresh_dir("kill_and_recover");
  constexpr std::size_t kEntriesPerDevice = 6;
  constexpr std::size_t kConsume = 7;

  {
    auto db = VerifierStore::open(dir);
    for (std::size_t d = 0; d < fleet.devices.size(); ++d) {
      EXPECT_TRUE(db->enroll(fleet.devices[d].id, fleet.devices[d].record));
      db->enroll_crps(fleet.devices[d].id,
                      fleet.collect(d, kEntriesPerDevice, 0xE110 + d));
    }
    Xoshiro256pp rng(0x31);
    for (std::size_t k = 0; k < kConsume; ++k) {
      const std::size_t d = k % fleet.devices.size();
      const auto result = db->authenticate_crp(
          fleet.devices[d].id, fleet.devices[d].device->raw_puf(), rng);
      ASSERT_TRUE(result.has_value());
      EXPECT_TRUE(result->conclusive());
    }
    db->sync();
    // Process state is dropped here: the unique_ptr dies, and recovery
    // below starts from nothing but the directory.
  }

  auto recovered = VerifierStore::open(dir);
  const auto& stats = recovered->recovery_stats();
  EXPECT_FALSE(stats.snapshot_present);  // never compacted: WAL-only
  EXPECT_EQ(stats.devices, fleet.devices.size());
  EXPECT_EQ(stats.crp_devices, fleet.devices.size());
  EXPECT_EQ(stats.crp_remaining,
            fleet.devices.size() * kEntriesPerDevice - kConsume);

  // Per-device cursors: consumption was round-robin, so device d consumed
  // ceil/floor of kConsume across the fleet.
  for (std::size_t d = 0; d < fleet.devices.size(); ++d) {
    const std::size_t consumed =
        kConsume / fleet.devices.size() +
        (d < kConsume % fleet.devices.size() ? 1 : 0);
    EXPECT_EQ(recovered->crp_remaining(fleet.devices[d].id),
              kEntriesPerDevice - consumed);
  }

  // The replay guarantee: recovered authentication continues from the
  // cursor — spent entries are never served again.
  Xoshiro256pp rng(0x32);
  const auto before = *recovered->crp_remaining(fleet.devices[0].id);
  const auto result = recovered->authenticate_crp(
      fleet.devices[0].id, fleet.devices[0].device->raw_puf(), rng);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->conclusive());
  EXPECT_EQ(*recovered->crp_remaining(fleet.devices[0].id), before - 1);

  // The registry came back intact enough to serve attestations.
  EXPECT_TRUE(recovered->registry().contains(fleet.devices[0].id));
  EXPECT_NE(recovered->registry().load(fleet.devices[1].id), nullptr);
}

TEST(VerifierStore, RecoveryIsByteStable) {
  const auto& fleet = Fleet::instance();
  const std::string dir = fresh_dir("byte_stable");
  {
    auto db = VerifierStore::open(dir);
    for (std::size_t d = 0; d < fleet.devices.size(); ++d) {
      db->enroll(fleet.devices[d].id, fleet.devices[d].record);
      db->enroll_crps(fleet.devices[d].id, fleet.collect(d, 3, 0xB17E + d));
    }
    Xoshiro256pp rng(0x41);
    db->authenticate_crp(fleet.devices[1].id,
                         fleet.devices[1].device->raw_puf(), rng);
    db->sync();
  }

  auto serialize = [&] {
    const auto state = recover(dir);
    std::stringstream registry(std::ios::in | std::ios::out |
                               std::ios::binary);
    state.registry.save(registry);
    std::stringstream ledger(std::ios::in | std::ios::out | std::ios::binary);
    state.ledger->save(ledger);
    return std::make_pair(registry.str(), ledger.str());
  };
  const auto first = serialize();
  const auto second = serialize();
  EXPECT_EQ(first.first, second.first);    // registry bytes
  EXPECT_EQ(first.second, second.second);  // ledger bytes
  EXPECT_FALSE(first.first.empty());
  EXPECT_FALSE(first.second.empty());
}

TEST(VerifierStore, CompactionFoldsWalIntoSnapshot) {
  const auto& fleet = Fleet::instance();
  const std::string dir = fresh_dir("compaction");
  std::string registry_bytes;
  {
    auto db = VerifierStore::open(dir);
    for (std::size_t d = 0; d < fleet.devices.size(); ++d) {
      db->enroll(fleet.devices[d].id, fleet.devices[d].record);
      db->enroll_crps(fleet.devices[d].id, fleet.collect(d, 4, 0xF01D + d));
    }
    db->evict(fleet.devices[2].id);
    Xoshiro256pp rng(0x51);
    db->authenticate_crp(fleet.devices[0].id,
                         fleet.devices[0].device->raw_puf(), rng);
    db->compact();
    EXPECT_TRUE(fs::exists(snapshot_path(dir)));
    EXPECT_TRUE(read_wal(dir).records.empty());  // folded away

    std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
    db->registry().save(buffer);
    registry_bytes = buffer.str();
  }

  auto reopened = VerifierStore::open(dir);
  const auto& stats = reopened->recovery_stats();
  EXPECT_TRUE(stats.snapshot_present);
  EXPECT_EQ(stats.records_replayed, 0u);  // the snapshot carries everything
  // The snapshot recorded the folded segment as its watermark, and the
  // restarted log resumes strictly above it.
  EXPECT_GE(stats.snapshot_watermark, 1u);
  EXPECT_EQ(reopened->wal().current_segment_index(),
            stats.snapshot_watermark + 1);
  EXPECT_EQ(stats.devices, fleet.devices.size() - 1);
  EXPECT_FALSE(reopened->registry().contains(fleet.devices[2].id));
  EXPECT_EQ(reopened->crp_remaining(fleet.devices[0].id), std::size_t{3});

  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  reopened->registry().save(buffer);
  EXPECT_EQ(buffer.str(), registry_bytes);
}

TEST(VerifierStore, SnapshotPlusTailRecovery) {
  const auto& fleet = Fleet::instance();
  const std::string dir = fresh_dir("snapshot_plus_tail");
  {
    auto db = VerifierStore::open(dir);
    db->enroll(fleet.devices[0].id, fleet.devices[0].record);
    db->enroll_crps(fleet.devices[0].id, fleet.collect(0, 4, 0x7A11));
    db->compact();
    // Post-compaction mutations land in the fresh WAL tail only.
    db->enroll(fleet.devices[1].id, fleet.devices[1].record);
    Xoshiro256pp rng(0x61);
    db->authenticate_crp(fleet.devices[0].id,
                         fleet.devices[0].device->raw_puf(), rng);
    db->sync();
  }
  auto reopened = VerifierStore::open(dir);
  const auto& stats = reopened->recovery_stats();
  EXPECT_TRUE(stats.snapshot_present);
  EXPECT_GT(stats.records_replayed, 0u);
  EXPECT_EQ(stats.devices, 2u);
  EXPECT_EQ(reopened->crp_remaining(fleet.devices[0].id), std::size_t{3});
}

// A crash *between* the snapshot rename and the WAL segment deletion
// leaves both the new snapshot and the full WAL.  The snapshot's
// watermark makes recovery skip every folded segment — nothing is
// double-applied, and the next open finishes the deletion.
TEST(VerifierStore, InterruptedCompactionSkipsFoldedSegments) {
  const auto& fleet = Fleet::instance();
  const std::string dir = fresh_dir("interrupted_compaction");
  {
    auto db = VerifierStore::open(dir);
    db->enroll(fleet.devices[0].id, fleet.devices[0].record);
    db->enroll_crps(fleet.devices[0].id, fleet.collect(0, 5, 0x1C0));
    Xoshiro256pp rng(0x71);
    db->authenticate_crp(fleet.devices[0].id,
                         fleet.devices[0].device->raw_puf(), rng);
    db->authenticate_crp(fleet.devices[0].id,
                         fleet.devices[0].device->raw_puf(), rng);
    db->sync();
    // Simulate the torn compaction: snapshot written (watermark = the
    // segment it folded), segments NOT deleted.
    write_snapshot(dir, db->registry(), db->crp_ledger(),
                   db->wal().current_segment_index());
  }
  auto recovered = VerifierStore::open(dir);
  const auto& stats = recovered->recovery_stats();
  EXPECT_TRUE(stats.snapshot_present);
  EXPECT_GE(stats.snapshot_watermark, 1u);
  EXPECT_EQ(stats.records_replayed, 0u);  // folded segments skipped unread
  EXPECT_GE(stats.wal_segments_skipped, 1u);
  EXPECT_EQ(stats.devices, 1u);
  // The consume cursor comes from the snapshot alone: exactly 2, not 4.
  EXPECT_EQ(recovered->crp_remaining(fleet.devices[0].id), std::size_t{3});
  // The interrupted deletion was finished on open: only segments above
  // the watermark remain.
  for (const auto& path : wal_segment_paths(dir)) {
    const std::string name = fs::path(path).filename().string();
    EXPECT_GT(std::stoull(name.substr(4, 8)), stats.snapshot_watermark)
        << path;
  }
}

// The reason the watermark exists: a stale WAL tail left by an
// interrupted compaction is not merely redundant, it can be *wrong* to
// replay.  Here the snapshotted state replaced a device's database with a
// smaller one; a stale consume marker (index 2) points past the fresh
// 2-entry database, so pre-watermark full-tail replay would refuse to
// open the store (and with a same-size replacement it would silently mark
// fresh entries consumed).
TEST(VerifierStore, StaleConsumeMarkersNeverReplayOntoFreshDatabase) {
  const auto& fleet = Fleet::instance();
  const std::string dir = fresh_dir("stale_tail");
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> stale;
  {
    auto db = VerifierStore::open(dir);
    db->enroll(fleet.devices[0].id, fleet.devices[0].record);
    db->enroll_crps(fleet.devices[0].id, fleet.collect(0, 5, 0x57A1));
    Xoshiro256pp rng(0x81);
    for (int i = 0; i < 3; ++i) {  // consume markers for indices 0, 1, 2
      ASSERT_TRUE(db->authenticate_crp(fleet.devices[0].id,
                                       fleet.devices[0].device->raw_puf(), rng)
                      .has_value());
    }
    db->sync();
    for (const auto& path : wal_segment_paths(dir)) {
      stale.emplace_back(path, read_bytes(path));
    }
    db->compact();
    // Post-compaction: a smaller replacement database (2 entries).
    db->enroll_crps(fleet.devices[0].id, fleet.collect(0, 2, 0x57A2));
    db->sync();
  }
  // Resurrect the folded segments, as if the compaction's deletion never
  // reached the disk.
  for (const auto& [path, bytes] : stale) {
    ASSERT_FALSE(fs::exists(path));  // compact() did delete them live
    write_bytes(path, bytes);
  }

  auto recovered = VerifierStore::open(dir);  // must not throw
  const auto& stats = recovered->recovery_stats();
  EXPECT_GE(stats.wal_segments_skipped, 1u);
  // The fresh database is untouched by the stale markers.
  EXPECT_EQ(recovered->crp_remaining(fleet.devices[0].id), std::size_t{2});
}

// The documented replenish pattern: the depletion hook calls straight
// back into the store.  enroll_crps takes the store's exclusive lock, so
// this deadlocks unless the store fires the hook only after releasing the
// shared lock authenticate_crp holds.
TEST(VerifierStore, LowWatermarkHookMayReenterTheStore) {
  const auto& fleet = Fleet::instance();
  const std::string dir = fresh_dir("hook_reenter");
  VerifierStore* live = nullptr;
  int fired = 0;
  StoreOptions options;
  options.crp.low_watermark = 1;
  options.crp.on_low = [&](const std::string& id, std::size_t remaining) {
    ++fired;
    EXPECT_EQ(remaining, 1u);
    live->enroll_crps(id, fleet.collect(0, 4, 0x0E91));  // replenish inline
  };
  auto db = VerifierStore::open(dir, options);
  live = db.get();
  db->enroll(fleet.devices[0].id, fleet.devices[0].record);
  db->enroll_crps(fleet.devices[0].id, fleet.collect(0, 2, 0x0E90));

  Xoshiro256pp rng(0x91);
  const auto result = db->authenticate_crp(
      fleet.devices[0].id, fleet.devices[0].device->raw_puf(), rng);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->conclusive());
  EXPECT_EQ(fired, 1);
  // The hook's re-enrollment landed (and re-armed the watermark).
  EXPECT_EQ(db->crp_remaining(fleet.devices[0].id), std::size_t{4});
  ASSERT_TRUE(db->authenticate_crp(fleet.devices[0].id,
                                   fleet.devices[0].device->raw_puf(), rng)
                  .has_value());
  EXPECT_EQ(fired, 1);  // remaining 3 > watermark: no re-fire
}

TEST(VerifierStore, EvictDropsRegistryAndLedger) {
  const auto& fleet = Fleet::instance();
  const std::string dir = fresh_dir("evict");
  {
    auto db = VerifierStore::open(dir);
    db->enroll(fleet.devices[0].id, fleet.devices[0].record);
    db->enroll_crps(fleet.devices[0].id, fleet.collect(0, 2, 0xE51C));
    EXPECT_TRUE(db->evict(fleet.devices[0].id));
    EXPECT_FALSE(db->evict(fleet.devices[0].id));  // already gone: no record
    db->sync();
  }
  auto reopened = VerifierStore::open(dir);
  EXPECT_EQ(reopened->registry().size(), 0u);
  EXPECT_FALSE(reopened->crp_remaining(fleet.devices[0].id).has_value());
}

TEST(VerifierStore, OpenRejectsCorruptLog) {
  const auto& fleet = Fleet::instance();
  const std::string dir = fresh_dir("open_corrupt");
  {
    auto db = VerifierStore::open(dir);
    db->enroll(fleet.devices[0].id, fleet.devices[0].record);
    db->enroll(fleet.devices[1].id, fleet.devices[1].record);
    db->sync();
  }
  const std::string segment = wal_segment_paths(dir).back();
  auto bytes = read_bytes(segment);
  bytes[kSegmentHeaderBytes + 6] ^= 0x40;  // inside the first record
  write_bytes(segment, bytes);
  EXPECT_THROW(VerifierStore::open(dir), StoreError);
}

// --- pool integration: the drain durability barrier -------------------------

TEST(VerifierStore, PoolDrainBarrierSyncsTheStore) {
  const auto& fleet = Fleet::instance();
  const std::string dir = fresh_dir("pool_drain");
  auto db = VerifierStore::open(dir);
  for (const auto& dev : fleet.devices) db->enroll(dev.id, dev.record);

  service::EmulatorCache cache(db->registry(), code(), fleet.devices.size());
  std::atomic<int> drained{0};
  service::PoolConfig config;
  config.workers = 2;
  config.queue_capacity = 8;
  config.on_drain = [&] {
    drained.fetch_add(1);
    db->sync();  // the durability barrier this hook exists for
  };

  std::atomic<std::size_t> accepted{0};
  service::VerifierPool pool(cache, config,
                             [&](const service::JobResult& result) {
                               if (result.outcome ==
                                   service::JobOutcome::kAccepted) {
                                 accepted.fetch_add(1);
                               }
                             });
  for (std::size_t d = 0; d < fleet.devices.size(); ++d) {
    service::AttestationJob job;
    job.device_id = fleet.devices[d].id;
    job.responder = fleet.responder(d, 0xD0 + d);
    job.channel_seed = 0x90 + d;
    job.rng_seed = 0xA0 + d;
    job.tag = d;
    ASSERT_TRUE(pool.submit(job).enqueued());
  }
  pool.drain();
  EXPECT_EQ(drained.load(), 1);
  EXPECT_EQ(accepted.load(), fleet.devices.size());
  pool.drain();  // idempotent: the barrier fires exactly once
  EXPECT_EQ(drained.load(), 1);
  pool.shutdown();
  EXPECT_EQ(drained.load(), 1);
}

// --- record codec edge cases -------------------------------------------------

TEST(Records, DecodersRejectMalformedPayloads) {
  WalRecord record;
  record.type = kEvict;
  record.payload = {0xFF, 0xFF, 0xFF, 0xFF};  // id length = 4 GiB
  EXPECT_THROW(decode_evict(record), StoreError);

  record.payload = {0x02, 0x00, 0x00, 0x00, 'a'};  // claims 2, carries 1
  EXPECT_THROW(decode_evict(record), StoreError);

  record.type = kCrpConsume;
  record.payload = {0x01, 0x00, 0x00, 0x00, 'a', 0x01};  // truncated index
  EXPECT_THROW(decode_crp_consume(record), StoreError);

  record.type = kEnroll;
  record.payload = {0x01, 0x00, 0x00, 0x00, 'a', 0x00, 0x01};  // garbage blob
  EXPECT_THROW(decode_enroll(record), StoreError);

  WalRecord wrong;
  wrong.type = kCheckpoint;
  EXPECT_THROW(decode_evict(wrong), StoreError);
}

TEST(Records, ConsumeRoundTrip) {
  const std::string payload = encode_crp_consume("device-7", 0x123456789ABCull);
  WalRecord record;
  record.type = kCrpConsume;
  record.payload.assign(payload.begin(), payload.end());
  const auto decoded = decode_crp_consume(record);
  EXPECT_EQ(decoded.device_id, "device-7");
  EXPECT_EQ(decoded.entry_index, 0x123456789ABCull);
}

// --- error provenance: StoreError names the segment and byte offset ---------

TEST(Wal, CorruptionErrorsCarrySegmentPathAndByteOffset) {
  const std::string dir = fresh_dir("error_provenance");
  {
    WalWriter wal(dir);
    wal.append(1, "alpha");  // frame [16, 37)
    wal.append(2, "beta!");  // frame [37, 58)
    wal.sync();
  }
  const std::string segment = wal_segment_paths(dir).back();
  auto bytes = read_bytes(segment);
  bytes[37 + 4] ^= 0x01;  // the second record's type field: CRC mismatch
  write_bytes(segment, bytes);
  try {
    read_wal(dir);
    FAIL() << "corrupt record must throw";
  } catch (const StoreError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(segment), std::string::npos) << message;
    EXPECT_NE(message.find("at byte 37"), std::string::npos) << message;
  }
}

TEST(Recovery, ReplayErrorsNameTheRecordOrigin) {
  const std::string dir = fresh_dir("replay_provenance");
  {
    WalWriter wal(dir);
    // A CRC-valid frame whose *payload* is nonsense: an evict record
    // claiming a 4 GiB device id.
    wal.append(kEvict, std::string("\xFF\xFF\xFF\xFF", 4));
    wal.sync();
  }
  try {
    recover(dir);
    FAIL() << "malformed payload must throw";
  } catch (const StoreError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("record from wal-00000001.log at byte 16"),
              std::string::npos)
        << message;
  }
}

// --- registry snapshot load: a torn file never half-loads -------------------

TEST(DeviceRegistryPersistence, TruncatedRegistryFileNeverHalfLoads) {
  const auto& fleet = Fleet::instance();
  const std::string dir = fresh_dir("registry_torn");
  fs::create_directories(dir);
  const std::string path = dir + "/registry.bin";
  service::DeviceRegistry registry(4);
  for (const auto& dev : fleet.devices) registry.store(dev.id, dev.record);
  registry.save_file(path);
  const auto full = read_bytes(path);
  ASSERT_GT(full.size(), 64u);
  ASSERT_EQ(service::DeviceRegistry::load_registry_file(path).size(),
            fleet.devices.size());

  // Every proper prefix must throw — the entry count is written up front,
  // so a short stream can never quietly load fewer devices.
  const std::string torn = dir + "/registry_torn.bin";
  std::vector<std::size_t> cuts;
  for (std::size_t cut = 0; cut < 24; ++cut) cuts.push_back(cut);
  const std::size_t step = std::max<std::size_t>(1, full.size() / 48);
  for (std::size_t cut = 24; cut < full.size(); cut += step) cuts.push_back(cut);
  cuts.push_back(full.size() - 1);
  for (const std::size_t cut : cuts) {
    write_bytes(torn, {full.begin(),
                       full.begin() + static_cast<std::ptrdiff_t>(cut)});
    EXPECT_THROW(service::DeviceRegistry::load_registry_file(torn),
                 core::SerializationError)
        << "cut at " << cut << " of " << full.size();
  }
}

// --- depletion hook: once per episode, across many episodes -----------------

TEST(VerifierStore, DepletionHookRearmsEveryReplenishEpisode) {
  const auto& fleet = Fleet::instance();
  const std::string dir = fresh_dir("hook_episodes");
  std::vector<std::size_t> fired;
  StoreOptions options;
  options.crp.low_watermark = 1;
  options.crp.on_low = [&](const std::string& id, std::size_t remaining) {
    EXPECT_EQ(id, fleet.devices[0].id);
    fired.push_back(remaining);
  };
  auto db = VerifierStore::open(dir, options);
  db->enroll(fleet.devices[0].id, fleet.devices[0].record);
  const auto& puf = fleet.devices[0].device->raw_puf();
  Xoshiro256pp rng(0xE5D);
  for (int episode = 0; episode < 3; ++episode) {
    // Replenish above the watermark (3 > 1), then run the database dry:
    // the hook must fire exactly once, at the crossing, per episode.
    db->enroll_crps(fleet.devices[0].id,
                    fleet.collect(0, 3, 0xE50 + episode));
    for (int k = 0; k < 3; ++k) {
      ASSERT_TRUE(
          db->authenticate_crp(fleet.devices[0].id, puf, rng).has_value());
    }
    EXPECT_EQ(db->crp_remaining(fleet.devices[0].id), std::size_t{0});
    ASSERT_EQ(fired.size(), static_cast<std::size_t>(episode + 1));
    EXPECT_EQ(fired.back(), 1u);  // fired at the crossing, not at zero
  }
}

// --- WAL corruption fuzz: rotation boundaries and multi-segment tails -------

// Extends the corruption matrix to the places segment rotation makes
// interesting: deleting whole trailing segments (a multi-segment torn
// tail), cuts landing exactly on frame boundaries or inside the 16-byte
// segment header, and a *gap* in the segment sequence, which is never a
// crash image and must be refused.
TEST(Wal, RotationBoundaryAndMultiSegmentTornFuzz) {
  const std::string dir = fresh_dir("fuzz_rotation");
  WalOptions options;
  options.segment_bytes = 200;
  {
    WalWriter wal(dir, options);
    for (int i = 0; i < 24; ++i) {
      wal.append(static_cast<std::uint32_t>(i + 1), std::string(24, 'g'));
    }
    wal.sync();
  }
  const auto paths = wal_segment_paths(dir);
  ASSERT_GT(paths.size(), 2u);
  std::vector<std::vector<std::uint8_t>> pristine;
  std::vector<std::size_t> records_in;  // record count per segment
  for (const auto& path : paths) {
    pristine.push_back(read_bytes(path));
    records_in.push_back(
        read_segment_delta(path, segment_index(path), 0).records.size());
  }
  auto restore = [&] {
    for (std::size_t i = 0; i < paths.size(); ++i) {
      write_bytes(paths[i], pristine[i]);
    }
  };
  auto records_through = [&](std::size_t segments) {
    std::size_t n = 0;
    for (std::size_t i = 0; i < segments; ++i) n += records_in[i];
    return n;
  };

  Xoshiro256pp rng(0xC0222);
  for (int trial = 0; trial < 96; ++trial) {
    restore();
    switch (trial % 4) {
      case 0: {
        // Drop the last k whole segments: still a valid prefix image.
        const std::size_t keep = 1 + rng.next() % (paths.size() - 1);
        for (std::size_t i = keep; i < paths.size(); ++i) fs::remove(paths[i]);
        const auto result = read_wal(dir);
        EXPECT_EQ(result.records.size(), records_through(keep)) << trial;
        EXPECT_FALSE(result.torn_tail) << trial;
        break;
      }
      case 1: {
        // Multi-segment torn tail: drop trailing segments *and* cut into
        // the new final one at a random byte.
        const std::size_t keep = 1 + rng.next() % (paths.size() - 1);
        for (std::size_t i = keep; i < paths.size(); ++i) fs::remove(paths[i]);
        const auto& tail = pristine[keep - 1];
        const std::size_t cut = rng.next() % (tail.size() + 1);
        write_bytes(paths[keep - 1],
                    {tail.begin(),
                     tail.begin() + static_cast<std::ptrdiff_t>(cut)});
        const auto result = read_wal(dir);
        EXPECT_LE(result.records.size(), records_through(keep)) << trial;
        EXPECT_GE(result.records.size(), records_through(keep - 1)) << trial;
        for (std::size_t i = 0; i < result.records.size(); ++i) {
          EXPECT_EQ(result.records[i].type, i + 1);  // a strict prefix
        }
        break;
      }
      case 2: {
        // Cut the final segment exactly on a frame boundary (a perfectly
        // clean crash) or inside its header (a just-rotated crash).
        const auto delta = read_segment_delta(
            paths.back(), segment_index(paths.back()), 0);
        std::vector<std::size_t> boundaries{kSegmentHeaderBytes};
        for (const auto& record : delta.records) {
          boundaries.push_back(static_cast<std::size_t>(
              record.origin_offset + kRecordOverheadBytes +
              record.payload.size()));
        }
        if (rng.next() % 4 == 0) {
          // Header-partial final segment: tolerated, contributes nothing.
          const std::size_t cut = rng.next() % kSegmentHeaderBytes;
          write_bytes(paths.back(),
                      {pristine.back().begin(),
                       pristine.back().begin() +
                           static_cast<std::ptrdiff_t>(cut)});
          const auto result = read_wal(dir);
          EXPECT_EQ(result.records.size(),
                    records_through(paths.size() - 1))
              << trial;
        } else {
          const std::size_t pick = rng.next() % boundaries.size();
          write_bytes(paths.back(),
                      {pristine.back().begin(),
                       pristine.back().begin() +
                           static_cast<std::ptrdiff_t>(boundaries[pick])});
          const auto result = read_wal(dir);
          EXPECT_EQ(result.records.size(),
                    records_through(paths.size() - 1) + pick)
              << trial;
          EXPECT_FALSE(result.torn_tail) << trial;  // boundary cut is clean
        }
        break;
      }
      case 3: {
        // A hole in the middle of the sequence: no crash produces this
        // (compaction deletes strictly oldest-first, which only ever
        // shortens the *front*), so the reader must refuse rather than
        // silently skip records.
        const std::size_t victim = 1 + rng.next() % (paths.size() - 2);
        fs::remove(paths[victim]);
        try {
          read_wal(dir);
          FAIL() << "gap in segment sequence must throw, trial " << trial;
        } catch (const StoreError& e) {
          EXPECT_NE(std::string(e.what()).find("missing WAL segment"),
                    std::string::npos)
              << e.what();
        }
        break;
      }
    }
  }
  restore();
}

// --- fault injection: the short-write / EIO / torn-rename matrix ------------

TEST(FaultInjection, ShortAppendWriteFailsClosedAndReadsBackAsTornTail) {
  const std::string dir = fresh_dir("fault_short_append");
  WalOptions options;
  options.sync_every = 0;
  WalWriter wal(dir, options);
  wal.append(1, "survivor");
  wal.sync();
  {
    support::FaultPlan plan;
    plan.short_write_at = 1;  // the next append's frame write
    plan.short_write_keep = 7;
    support::ScopedFaultPlan guard(plan);
    EXPECT_THROW(wal.append(2, "doomed-record"), StoreError);
    // The writer poisoned itself: the stream held a partial frame.
    EXPECT_THROW(wal.append(3, "already-failed"), StoreError);
    EXPECT_THROW(wal.sync(), StoreError);
  }
  // What landed is a torn tail — recoverable, never corruption.
  const auto result = read_wal(dir);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].type, 1u);
  EXPECT_TRUE(result.torn_tail);
  // Reopening truncates the tail and the log serves appends again.
  WalWriter healed(dir, options);
  healed.append(4, "after-heal");
  healed.sync();
  const auto after = read_wal(dir);
  ASSERT_EQ(after.records.size(), 2u);
  EXPECT_EQ(after.records[1].type, 4u);
  EXPECT_FALSE(after.torn_tail);
}

TEST(FaultInjection, FsyncEioPoisonsTheWriter) {
  const std::string dir = fresh_dir("fault_fsync");
  WalOptions options;
  options.sync_every = 0;
  WalWriter wal(dir, options);
  wal.append(1, "durable");
  wal.sync();
  wal.append(2, "in-flight");
  {
    support::FaultPlan plan;
    plan.fsync_error_at = 1;
    support::ScopedFaultPlan guard(plan);
    // fsyncgate: after EIO "what is durable" is unknowable, so the writer
    // must fail closed rather than carry on.
    EXPECT_THROW(wal.sync(), StoreError);
    EXPECT_THROW(wal.append(3, "rejected"), StoreError);
  }
  // The on-disk file still reads back clean (fail closed, not corrupt).
  const auto result = read_wal(dir);
  EXPECT_GE(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].type, 1u);
  EXPECT_FALSE(result.torn_tail);
}

TEST(FaultInjection, SnapshotWriteFaultsLeaveTheStoreRecoverable) {
  const auto& fleet = Fleet::instance();
  // Arm plans against compact(): a short write or an fsync EIO on the
  // snapshot temp file must abort compaction with StoreError and leave
  // the previous durable state (full WAL, no/old snapshot) intact.
  struct Arm {
    const char* name;
    support::FaultPlan plan;
  };
  std::vector<Arm> arms(3);
  arms[0].name = "short-write";
  arms[0].plan.short_write_at = 1;  // the snapshot image write
  arms[0].plan.short_write_keep = 9;
  arms[1].name = "fsync-eio";
  // compact()'s WAL group commit consumes fsync #1; #2 is the snapshot's.
  arms[1].plan.fsync_error_at = 2;
  arms[2].name = "rename-eio";
  arms[2].plan.rename_error_at = 1;  // snapshot.bin.tmp -> snapshot.bin

  for (const auto& arm : arms) {
    const std::string dir = fresh_dir(std::string("fault_snap_") + arm.name);
    {
      auto db = VerifierStore::open(dir);
      db->enroll(fleet.devices[0].id, fleet.devices[0].record);
      db->enroll_crps(fleet.devices[0].id, fleet.collect(0, 3, 0xFA57));
      Xoshiro256pp rng(0xA1);
      ASSERT_TRUE(db->authenticate_crp(fleet.devices[0].id,
                                       fleet.devices[0].device->raw_puf(), rng)
                      .has_value());
      db->sync();
      {
        support::ScopedFaultPlan guard(arm.plan);
        EXPECT_THROW(db->compact(), StoreError) << arm.name;
      }
      EXPECT_FALSE(fs::exists(snapshot_path(dir))) << arm.name;
    }
    auto reopened = VerifierStore::open(dir);
    EXPECT_EQ(reopened->crp_remaining(fleet.devices[0].id), std::size_t{2})
        << arm.name;
    EXPECT_TRUE(reopened->registry().contains(fleet.devices[0].id))
        << arm.name;
  }
}

TEST(FaultInjection, TornSnapshotRenameFailsClosedOnReopen) {
  const auto& fleet = Fleet::instance();
  const std::string dir = fresh_dir("fault_snap_torn");
  {
    auto db = VerifierStore::open(dir);
    db->enroll(fleet.devices[0].id, fleet.devices[0].record);
    db->enroll_crps(fleet.devices[0].id, fleet.collect(0, 3, 0x70A2));
    db->sync();
    support::FaultPlan plan;
    plan.torn_rename_at = 1;  // rename lands, data blocks did not
    support::ScopedFaultPlan guard(plan);
    db->compact();  // "succeeds" — the power-loss image is only on disk
  }
  // The snapshot is named but torn, and compaction already deleted the
  // folded WAL — the one state recovery must never invent data from.
  // Refuse to open: fail closed, never half-load.
  EXPECT_TRUE(fs::exists(snapshot_path(dir)));
  EXPECT_THROW(VerifierStore::open(dir), StoreError);
  EXPECT_THROW(recover(dir), StoreError);
}

// --- replication: ship, follow compaction, promote --------------------------

TEST(Replication, ShipMirrorsPrimaryByteForByteThenPromotes) {
  const auto& fleet = Fleet::instance();
  const std::string primary = fresh_dir("repl_primary");
  const std::string follower = fresh_dir("repl_follower");
  constexpr std::size_t kEntries = 4;
  constexpr std::size_t kConsume = 5;
  auto db = VerifierStore::open(primary);
  for (std::size_t d = 0; d < fleet.devices.size(); ++d) {
    db->enroll(fleet.devices[d].id, fleet.devices[d].record);
    db->enroll_crps(fleet.devices[d].id,
                    fleet.collect(d, kEntries, 0x4E90 + d));
  }
  Xoshiro256pp rng(0xB1);
  for (std::size_t k = 0; k < kConsume; ++k) {
    const std::size_t d = k % fleet.devices.size();
    ASSERT_TRUE(db->authenticate_crp(fleet.devices[d].id,
                                     fleet.devices[d].device->raw_puf(), rng)
                    .has_value());
  }
  db->sync();

  ShardFollower repl(primary, follower);
  auto status = repl.ship();
  EXPECT_GT(status.applied_records, 0u);
  EXPECT_GT(status.lag_bytes, 0u);  // it had everything still to ship
  EXPECT_GT(status.shipped_bytes, 0u);
  EXPECT_TRUE(dir_image(primary) == dir_image(follower))
      << "follower is not a byte-for-byte mirror";

  // A quiesced primary ships nothing more; the staleness metric says so.
  status = repl.ship();
  EXPECT_EQ(status.lag_bytes, 0u);

  // Failover: the promoted store serves exactly the primary's state.
  auto promoted = repl.promote();
  for (std::size_t d = 0; d < fleet.devices.size(); ++d) {
    EXPECT_EQ(promoted->crp_remaining(fleet.devices[d].id),
              db->crp_remaining(fleet.devices[d].id));
    EXPECT_TRUE(promoted->registry().contains(fleet.devices[d].id));
  }
  // No consumed CRP resurrected: the promoted store keeps consuming from
  // the primary's cursor, not from the start.
  Xoshiro256pp rng2(0xB2);
  const auto before = *promoted->crp_remaining(fleet.devices[0].id);
  ASSERT_TRUE(promoted
                  ->authenticate_crp(fleet.devices[0].id,
                                     fleet.devices[0].device->raw_puf(), rng2)
                  .has_value());
  EXPECT_EQ(*promoted->crp_remaining(fleet.devices[0].id), before - 1);

  // The follower was consumed by promote().
  EXPECT_THROW(repl.ship(), StoreError);
}

TEST(Replication, ShipFollowsPrimaryCompaction) {
  const auto& fleet = Fleet::instance();
  const std::string primary = fresh_dir("repl_compact_primary");
  const std::string follower = fresh_dir("repl_compact_follower");
  auto db = VerifierStore::open(primary);
  db->enroll(fleet.devices[0].id, fleet.devices[0].record);
  db->enroll_crps(fleet.devices[0].id, fleet.collect(0, 5, 0x5C01));
  Xoshiro256pp rng(0xC1);
  ASSERT_TRUE(db->authenticate_crp(fleet.devices[0].id,
                                   fleet.devices[0].device->raw_puf(), rng)
                  .has_value());
  db->sync();

  ShardFollower repl(primary, follower);
  repl.ship();  // pre-compaction WAL tail
  ASSERT_TRUE(dir_image(primary) == dir_image(follower));

  // Primary compacts, then keeps mutating: the follower must take the
  // snapshot catch-up, drop its folded segments, and ship the new tail.
  db->compact();
  db->enroll(fleet.devices[1].id, fleet.devices[1].record);
  ASSERT_TRUE(db->authenticate_crp(fleet.devices[0].id,
                                   fleet.devices[0].device->raw_puf(), rng)
                  .has_value());
  db->sync();
  const auto status = repl.ship();
  EXPECT_EQ(status.snapshot_copies, 1u);
  EXPECT_GE(status.snapshot_watermark, 1u);
  EXPECT_TRUE(dir_image(primary) == dir_image(follower))
      << "follower did not converge after the primary compacted";

  auto promoted = repl.promote();
  EXPECT_EQ(promoted->crp_remaining(fleet.devices[0].id), std::size_t{3});
  EXPECT_TRUE(promoted->registry().contains(fleet.devices[1].id));
}

TEST(Replication, InjectedShipFailurePoisonsFollowerAndRebuildHeals) {
  const auto& fleet = Fleet::instance();
  const std::string primary = fresh_dir("repl_poison_primary");
  const std::string follower = fresh_dir("repl_poison_follower");
  {
    auto db = VerifierStore::open(primary);
    db->enroll(fleet.devices[0].id, fleet.devices[0].record);
    db->enroll_crps(fleet.devices[0].id, fleet.collect(0, 4, 0x901));
    Xoshiro256pp rng(0xD1);
    ASSERT_TRUE(db->authenticate_crp(fleet.devices[0].id,
                                     fleet.devices[0].device->raw_puf(), rng)
                    .has_value());
    db->sync();
  }
  ShardFollower repl(primary, follower);
  {
    support::FaultPlan plan;
    plan.fsync_error_at = 1;  // the shipped segment's durability fsync
    support::ScopedFaultPlan guard(plan);
    EXPECT_THROW(repl.ship(), StoreError);
  }
  // Poisoned: the cursor can no longer be trusted, even disarmed.
  EXPECT_THROW(repl.ship(), StoreError);

  // The documented recovery: a fresh follower rescans the directory
  // (truncating any torn tail the failed ship left) and converges.
  ShardFollower rebuilt(primary, follower);
  rebuilt.ship();
  EXPECT_TRUE(dir_image(primary) == dir_image(follower));
  auto promoted = rebuilt.promote();
  EXPECT_EQ(promoted->crp_remaining(fleet.devices[0].id), std::size_t{3});
}

TEST(Replication, TornSnapshotCatchUpFailsClosed) {
  const auto& fleet = Fleet::instance();
  const std::string primary = fresh_dir("repl_torn_primary");
  const std::string follower = fresh_dir("repl_torn_follower");
  {
    auto db = VerifierStore::open(primary);
    db->enroll(fleet.devices[0].id, fleet.devices[0].record);
    db->enroll_crps(fleet.devices[0].id, fleet.collect(0, 4, 0x70B));
    db->compact();  // the primary has a snapshot for the follower to copy
  }
  ShardFollower repl(primary, follower);
  {
    support::FaultPlan plan;
    plan.torn_rename_at = 1;  // the follower's snapshot copy lands torn
    support::ScopedFaultPlan guard(plan);
    EXPECT_THROW(repl.ship(), StoreError);
  }
  // The torn follower snapshot must be refused, not half-loaded — by a
  // rebuilt follower and by promotion alike.
  EXPECT_THROW(ShardFollower(primary, follower), StoreError);
  EXPECT_THROW(recover(follower), StoreError);
  // Wiping the follower directory rebuilds from scratch and converges.
  fs::remove_all(follower);
  ShardFollower rebuilt(primary, follower);
  rebuilt.ship();
  auto promoted = rebuilt.promote();
  EXPECT_EQ(promoted->crp_remaining(fleet.devices[0].id), std::size_t{4});
}

// --- the kill-anywhere failover property ------------------------------------

// Randomized kill points over a real store workload (enroll, consume,
// compact, consume): at *every* cut the crash image ships to a follower
// whose promotion is byte-identical to recovering the primary directly,
// and remaining() agrees exactly.  This is the acceptance property the
// torture binary (tests/store_torture.cpp) runs at scale.
TEST(Replication, KillAnywhereFailoverMatchesPrimaryRecovery) {
  const auto& fleet = Fleet::instance();
  auto workload = [&](const std::string& dir) {
    StoreOptions options;
    options.wal.segment_bytes = 1024;  // rotate within the workload
    options.wal.sync_every = 4;
    auto db = VerifierStore::open(dir, options);
    for (std::size_t d = 0; d < fleet.devices.size(); ++d) {
      db->enroll(fleet.devices[d].id, fleet.devices[d].record);
      db->enroll_crps(fleet.devices[d].id, fleet.collect(d, 5, 0xFA11 + d));
    }
    Xoshiro256pp rng(0xAB);
    for (int k = 0; k < 4; ++k) {
      (void)db->authenticate_crp(fleet.devices[k % fleet.devices.size()].id,
                                 fleet.devices[k % fleet.devices.size()]
                                     .device->raw_puf(),
                                 rng);
    }
    db->compact();
    for (int k = 0; k < 5; ++k) {
      (void)db->authenticate_crp(fleet.devices[k % fleet.devices.size()].id,
                                 fleet.devices[k % fleet.devices.size()]
                                     .device->raw_puf(),
                                 rng);
    }
    db->sync();
  };

  // Probe run: learn the workload's total byte budget so kill points can
  // be drawn from the whole execution, compaction included.
  std::uint64_t total_bytes = 0;
  {
    const std::string dir = fresh_dir("kill_probe");
    support::FaultPlan plan;
    plan.crash_after_bytes = ~std::uint64_t{0};  // never fires: just counts
    support::ScopedFaultPlan guard(plan);
    workload(dir);
    total_bytes = support::FaultyFile::instance().bytes_written();
  }
  ASSERT_GT(total_bytes, 1024u);

  Xoshiro256pp rng(0x60D);
  for (int trial = 0; trial < 6; ++trial) {
    const std::uint64_t kill = 1 + rng.next() % total_bytes;
    const std::string primary =
        fresh_dir("kill_primary_" + std::to_string(trial));
    const std::string follower =
        fresh_dir("kill_follower_" + std::to_string(trial));
    {
      support::FaultPlan plan;
      plan.crash_after_bytes = kill;
      support::ScopedFaultPlan guard(plan);
      workload(primary);  // the process "runs on"; the disk stops at K
    }
    ShardFollower(primary, follower).ship();
    const auto primary_state = serialize_recovered(primary);
    const auto follower_state = serialize_recovered(follower);
    EXPECT_EQ(primary_state.first, follower_state.first)
        << "registry diverged, kill at byte " << kill;
    EXPECT_EQ(primary_state.second, follower_state.second)
        << "ledger diverged, kill at byte " << kill;

    // remaining() exact: promotion and direct primary recovery agree
    // device by device — no CRP consumed twice, none resurrected.
    auto promoted = ShardFollower(primary, follower).promote();
    auto direct = VerifierStore::open(primary);
    for (const auto& dev : fleet.devices) {
      EXPECT_EQ(promoted->crp_remaining(dev.id), direct->crp_remaining(dev.id))
          << "kill at byte " << kill << ", device " << dev.id;
      EXPECT_EQ(promoted->registry().contains(dev.id),
                direct->registry().contains(dev.id))
          << "kill at byte " << kill << ", device " << dev.id;
    }
  }
}

// --- sharded store ----------------------------------------------------------

TEST(ShardedStore, RoutesRecoversInParallelAndServesThePool) {
  const auto& fleet = Fleet::instance();
  const std::string dir = fresh_dir("sharded");
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kEntries = 4;
  constexpr std::size_t kConsume = 5;
  {
    ShardedStoreOptions options;
    options.shards = kShards;
    options.recovery_threads = kShards;
    auto db = ShardedVerifierStore::open(dir, options);
    EXPECT_EQ(db->shard_count(), kShards);
    for (std::size_t d = 0; d < fleet.devices.size(); ++d) {
      EXPECT_TRUE(db->enroll(fleet.devices[d].id, fleet.devices[d].record));
      db->enroll_crps(fleet.devices[d].id,
                      fleet.collect(d, kEntries, 0x5A4D + d));
      // Routing is the platform-stable hash the registry stripes by.
      EXPECT_EQ(db->shard_of(fleet.devices[d].id),
                service::stable_device_hash(fleet.devices[d].id) % kShards);
    }
    Xoshiro256pp rng(0xE1);
    for (std::size_t k = 0; k < kConsume; ++k) {
      const std::size_t d = k % fleet.devices.size();
      ASSERT_TRUE(db->authenticate_crp(fleet.devices[d].id,
                                       fleet.devices[d].device->raw_puf(), rng)
                      .has_value());
    }
    EXPECT_EQ(db->device_count(), fleet.devices.size());
    EXPECT_EQ(db->total_crp_remaining(),
              fleet.devices.size() * kEntries - kConsume);
    db->sync();
  }
  ASSERT_TRUE(fs::exists(ShardedVerifierStore::manifest_path(dir)));

  // Reopen letting the manifest decide the count; per-shard recovery ran
  // in parallel and every cursor came back exact.
  ShardedStoreOptions reopen;
  reopen.shards = 0;
  auto recovered = ShardedVerifierStore::open(dir, reopen);
  EXPECT_EQ(recovered->shard_count(), kShards);
  EXPECT_EQ(recovered->device_count(), fleet.devices.size());
  EXPECT_EQ(recovered->total_crp_remaining(),
            fleet.devices.size() * kEntries - kConsume);
  for (std::size_t d = 0; d < fleet.devices.size(); ++d) {
    const std::size_t consumed =
        kConsume / fleet.devices.size() +
        (d < kConsume % fleet.devices.size() ? 1 : 0);
    EXPECT_EQ(recovered->crp_remaining(fleet.devices[d].id),
              kEntries - consumed);
  }

  // The manifest pins N forever: hash % N routing makes any other count
  // look up every device in the wrong shard.
  ShardedStoreOptions wrong;
  wrong.shards = 2;
  EXPECT_THROW(ShardedVerifierStore::open(dir, wrong), StoreError);

  // The service layer runs against the routing view, indifferent to the
  // partitioning: a full pool round-trip over all shards.
  service::EmulatorCache cache(recovered->registry_view(), code(),
                               fleet.devices.size());
  std::atomic<std::size_t> accepted{0};
  service::PoolConfig config;
  config.workers = 2;
  config.queue_capacity = 8;
  config.on_drain = [&] { recovered->sync(); };
  service::VerifierPool pool(cache, config,
                             [&](const service::JobResult& result) {
                               if (result.outcome ==
                                   service::JobOutcome::kAccepted) {
                                 accepted.fetch_add(1);
                               }
                             });
  for (std::size_t d = 0; d < fleet.devices.size(); ++d) {
    service::AttestationJob job;
    job.device_id = fleet.devices[d].id;
    job.responder = fleet.responder(d, 0xE2 + d);
    job.channel_seed = 0xE3 + d;
    job.rng_seed = 0xE4 + d;
    job.tag = d;
    ASSERT_TRUE(pool.submit(job).enqueued());
  }
  pool.drain();
  pool.shutdown();
  EXPECT_EQ(accepted.load(), fleet.devices.size());

  // Per-shard compaction round-trips too.
  recovered->compact();
  recovered.reset();
  auto again = ShardedVerifierStore::open(dir, reopen);
  EXPECT_EQ(again->device_count(), fleet.devices.size());
  EXPECT_EQ(again->total_crp_remaining(),
            fleet.devices.size() * kEntries - kConsume);
}

TEST(ShardedStore, PublishMetricsExportsPerShardOccupancyGauges) {
  const auto& fleet = Fleet::instance();
  const std::string dir = fresh_dir("sharded_gauges");
  constexpr std::size_t kShards = 2;
  constexpr std::size_t kEntries = 3;
  ShardedStoreOptions options;
  options.shards = kShards;
  auto db = ShardedVerifierStore::open(dir, options);
  for (std::size_t d = 0; d < fleet.devices.size(); ++d) {
    ASSERT_TRUE(db->enroll(fleet.devices[d].id, fleet.devices[d].record));
    db->enroll_crps(fleet.devices[d].id,
                    fleet.collect(d, kEntries, 0x6A4D + d));
  }

  obs::MetricRegistry registry;
  db->publish_metrics(registry);
  EXPECT_EQ(registry.gauge("store.shards").value(),
            static_cast<double>(kShards));
  double devices = 0.0, crps = 0.0;
  for (std::size_t i = 0; i < kShards; ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "store.shard%04zu.devices", i);
    const double shard_devices = registry.gauge(name).value();
    EXPECT_EQ(shard_devices, static_cast<double>(db->shard(i).registry().size()))
        << "shard " << i;
    devices += shard_devices;
    std::snprintf(name, sizeof(name), "store.shard%04zu.crp_remaining", i);
    crps += registry.gauge(name).value();
  }
  // The per-shard gauges reconcile exactly with the whole-store aggregates.
  EXPECT_EQ(devices, static_cast<double>(db->device_count()));
  EXPECT_EQ(crps, static_cast<double>(db->total_crp_remaining()));

  // Refresh after mutation: gauges track, names stay fixed (the stats
  // frame's "registry" section depends on that stability).
  Xoshiro256pp rng(0x6B);
  ASSERT_TRUE(db->authenticate_crp(fleet.devices[0].id,
                                   fleet.devices[0].device->raw_puf(), rng)
                  .has_value());
  db->publish_metrics(registry);
  double crps_after = 0.0;
  for (std::size_t i = 0; i < kShards; ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "store.shard%04zu.crp_remaining", i);
    crps_after += registry.gauge(name).value();
  }
  EXPECT_EQ(crps_after, crps - 1.0);
  EXPECT_NE(registry.snapshot_json().find("store.shard0000.devices"),
            std::string::npos);
}

TEST(Replication, ShardedReplicaShipsAndPromotesWholeFleet) {
  const auto& fleet = Fleet::instance();
  const std::string primary = fresh_dir("sharded_repl_primary");
  const std::string follower = fresh_dir("sharded_repl_follower");
  constexpr std::size_t kShards = 2;
  constexpr std::size_t kEntries = 3;
  constexpr std::size_t kConsume = 4;
  ShardedStoreOptions options;
  options.shards = kShards;
  auto db = ShardedVerifierStore::open(primary, options);
  for (std::size_t d = 0; d < fleet.devices.size(); ++d) {
    db->enroll(fleet.devices[d].id, fleet.devices[d].record);
    db->enroll_crps(fleet.devices[d].id,
                    fleet.collect(d, kEntries, 0x2E91 + d));
  }
  Xoshiro256pp rng(0xF1);
  for (std::size_t k = 0; k < kConsume; ++k) {
    const std::size_t d = k % fleet.devices.size();
    ASSERT_TRUE(db->authenticate_crp(fleet.devices[d].id,
                                     fleet.devices[d].device->raw_puf(), rng)
                    .has_value());
  }
  db->sync();

  StoreReplica replica(primary, follower);
  EXPECT_EQ(replica.shard_count(), kShards);
  const auto statuses = replica.ship();
  ASSERT_EQ(statuses.size(), kShards);
  for (std::size_t i = 0; i < kShards; ++i) {
    EXPECT_TRUE(dir_image(ShardedVerifierStore::shard_dir(primary, i)) ==
                dir_image(ShardedVerifierStore::shard_dir(follower, i)))
        << "shard " << i << " is not a byte-for-byte mirror";
  }

  auto promoted = replica.promote();
  EXPECT_EQ(promoted->shard_count(), kShards);
  EXPECT_EQ(promoted->device_count(), fleet.devices.size());
  EXPECT_EQ(promoted->total_crp_remaining(),
            fleet.devices.size() * kEntries - kConsume);
  for (const auto& dev : fleet.devices) {
    EXPECT_EQ(promoted->crp_remaining(dev.id), db->crp_remaining(dev.id));
  }

  // A replica of a plain (unsharded) directory is refused up front.
  EXPECT_THROW(StoreReplica(fresh_dir("not_sharded"),
                            fresh_dir("not_sharded_follower")),
               StoreError);
}

}  // namespace
}  // namespace pufatt::store
