// Tests for the proactive memory-filling attestation variant (paper
// reference [3]): free attested memory is overwritten with seed-derived
// noise before the checksum, denying the redirection attack its hiding
// place inside the attested region.
#include <gtest/gtest.h>

#include "core/enrollment.hpp"
#include "core/protocol.hpp"
#include "cpu/assembler.hpp"
#include "cpu/machine.hpp"
#include "ecc/reed_muller.hpp"
#include "swat/checksum.hpp"
#include "swat/program.hpp"

namespace pufatt::swat {
namespace {

using support::Xoshiro256pp;

std::optional<std::uint32_t> stub_puf(const std::array<std::uint64_t, 8>& c) {
  std::uint64_t acc = 7;
  for (const auto x : c) acc = support::SplitMix64::mix(acc ^ x);
  return static_cast<std::uint32_t>(acc);
}

SwatParams fill_params() {
  SwatParams params;
  params.rounds = 512;
  params.puf_interval = 64;
  params.attest_words = 1024;
  params.fill_start = 600;   // everything past the program+firmware
  params.fill_words = 424;
  return params;
}

TEST(Fill, ValidationRejectsBadRegions) {
  SwatParams params = fill_params();
  params.fill_start = 1000;
  params.fill_words = 100;  // overruns the attested region
  EXPECT_THROW(validate(params), std::invalid_argument);
}

TEST(Fill, ChecksumIgnoresPreFillContentOfFilledRegion) {
  // Whatever garbage (or malware payload) sits in the filled region before
  // attestation, the checksum is identical — because the region is
  // overwritten first...
  const auto params = fill_params();
  std::vector<std::uint32_t> image(params.attest_words, 0);
  Xoshiro256pp rng(1);
  for (std::size_t i = 0; i < 600; ++i) {
    image[i] = static_cast<std::uint32_t>(rng.next());
  }
  auto dirty = image;
  for (std::size_t i = 600; i < 1024; ++i) {
    dirty[i] = 0xE71Lu;  // placeholder garbage
  }
  const auto clean_result = compute_checksum(image, 9, params, stub_puf);
  const auto dirty_result = compute_checksum(dirty, 9, params, stub_puf);
  EXPECT_EQ(clean_result.state, dirty_result.state);
}

TEST(Fill, FillContentIsSeedDependent) {
  const auto params = fill_params();
  const std::vector<std::uint32_t> image(params.attest_words, 0);
  const auto a = compute_checksum(image, 10, params, stub_puf);
  const auto b = compute_checksum(image, 11, params, stub_puf);
  EXPECT_NE(a.state, b.state);
}

TEST(Fill, CallerBufferNotModified) {
  const auto params = fill_params();
  const std::vector<std::uint32_t> image(params.attest_words, 0xABCD);
  auto copy = image;
  compute_checksum(image, 5, params, stub_puf);
  EXPECT_EQ(image, copy);
}

TEST(Fill, CpuProgramMatchesNativeWithFill) {
  const auto params = fill_params();
  const auto layout = SwatLayout::standard(params);
  const auto program = cpu::assemble(generate_swat_source(params, layout));
  ASSERT_LE(program.words.size(), 600u) << "program must fit below the fill";

  std::vector<std::uint32_t> image(params.attest_words, 0);
  for (std::size_t i = 0; i < program.words.size(); ++i) {
    image[i] = program.words[i];
  }
  Xoshiro256pp rng(2);
  for (std::size_t i = program.words.size(); i < 600; ++i) {
    image[i] = static_cast<std::uint32_t>(rng.next());
  }

  struct StubPort final : cpu::PufPort {
    std::array<std::uint64_t, 8> challenges{};
    unsigned count = 0;
    void start() override { count = 0; }
    void feed(std::uint64_t c, double) override {
      if (count < 8) challenges[count] = c;
      ++count;
    }
    std::uint32_t finish(std::vector<std::uint32_t>& h) override {
      h.assign(8, 0);
      return *stub_puf(challenges);
    }
  } port;

  cpu::Machine machine(4096);
  machine.load(image, 0);
  machine.set_mem(layout.seed_addr, 77);
  machine.attach_puf(&port);
  const auto run = machine.run(100'000'000);
  ASSERT_TRUE(run.halted);

  const auto native = compute_checksum(image, 77, params, stub_puf);
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(machine.mem(layout.result_addr + i), native.state[i]) << i;
  }
  // The device RAM really was overwritten with the PRG noise.
  std::uint32_t a = 77;
  for (std::uint32_t w = 0; w < params.fill_words; ++w) {
    a = xorshift32(a);
    ASSERT_EQ(machine.mem(params.fill_start + w), a) << "fill word " << w;
  }
}

TEST(Fill, FillCostsProportionalCycles) {
  auto base = fill_params();
  base.fill_words = 0;
  auto filled = fill_params();
  const auto c0 = honest_cycle_estimate(base);
  const auto c1 = honest_cycle_estimate(filled);
  EXPECT_GT(c1, c0 + 10 * filled.fill_words);  // ~11-12 cycles per word
  EXPECT_LT(c1, c0 + 20 * filled.fill_words);
}

TEST(Fill, EndToEndProtocolWithFill) {
  // Full protocol with the filling variant enabled in the device profile.
  const ecc::ReedMuller1 code(5);
  auto profile = core::DeviceProfile::standard();
  profile.swat = fill_params();
  profile.layout = SwatLayout::standard(profile.swat);
  const alupuf::PufDevice device(profile.puf_config, 999, code);
  const auto record = core::enroll(
      device, profile,
      core::make_enrolled_image(profile, std::vector<std::uint32_t>(100, 3)));
  const core::Verifier verifier(record, code);
  Xoshiro256pp rng(3);
  core::CpuProver prover(device, record, core::CpuProver::Variant::kHonest, 4);
  const core::Channel channel;
  const auto request = verifier.make_request(rng);
  const auto outcome = prover.respond(request);
  const auto result = verifier.verify(
      request, outcome.response,
      outcome.compute_us +
          channel.round_trip_us(8, outcome.response.wire_bytes()));
  EXPECT_TRUE(result.accepted()) << core::to_string(result.status);
}

TEST(Fill, DeniesInRegionHidingPlace) {
  // The defence quantified: without filling, the attested region's free
  // tail could host the redirection attack's pristine copy (it is never
  // sampled *differently*); with filling, any data stored there is
  // destroyed before the checksum runs — the copy must move outside, and
  // a device whose physical memory is sized to the attested region plus a
  // small mailbox simply has no room.
  const auto params = fill_params();
  const auto layout = SwatLayout::standard(params);
  RedirectAttack attack;
  attack.protected_words = 1;
  attack.copy_addr = 20000;
  const auto words =
      cpu::assemble(generate_swat_source(params, layout, attack)).words;
  const std::size_t attacker_extra = words.size();  // pristine copy size ~ this
  const std::size_t honest_memory =
      layout.helper_addr + (params.rounds / params.puf_interval) * 8 + 16;
  const std::size_t attacker_memory = honest_memory + attacker_extra;
  EXPECT_GT(attacker_memory, honest_memory)
      << "with in-region hiding denied, the attack needs physically more RAM";
}

}  // namespace
}  // namespace pufatt::swat
