// Adversarial edge cases on the protocol surface: tampered transcripts,
// malformed messages and byte streams, verifier knob behaviour, determinism.
#include <gtest/gtest.h>

#include "core/enrollment.hpp"
#include "core/protocol.hpp"
#include "core/puf_adapter.hpp"
#include "core/serialize.hpp"
#include "ecc/reed_muller.hpp"

namespace pufatt::core {
namespace {

using support::Xoshiro256pp;

struct EdgeBed {
  EdgeBed()
      : code(5),
        profile(make_profile()),
        device(profile.puf_config, 888, code),
        record(enroll(device, profile,
                      make_enrolled_image(
                          profile, std::vector<std::uint32_t>(400, 0xEE)))),
        verifier(record, code) {}

  static DeviceProfile make_profile() {
    auto p = DeviceProfile::standard();
    p.swat.rounds = 512;
    p.swat.attest_words = 1024;
    p.layout = swat::SwatLayout::standard(p.swat);
    return p;
  }

  double elapsed(const CpuProver::Outcome& outcome) const {
    const Channel channel;
    return outcome.compute_us +
           channel.round_trip_us(8, outcome.response.wire_bytes());
  }

  ecc::ReedMuller1 code;
  DeviceProfile profile;
  alupuf::PufDevice device;
  EnrollmentRecord record;
  Verifier verifier;
};

class ProtocolEdge : public ::testing::Test {
 protected:
  static EdgeBed& bed() {
    static EdgeBed instance;
    return instance;
  }
  Xoshiro256pp rng_{77};
};

TEST_F(ProtocolEdge, VerificationIsDeterministic) {
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 1);
  const auto request = bed().verifier.make_request(rng_);
  const auto outcome = prover.respond(request);
  const auto r1 =
      bed().verifier.verify(request, outcome.response, bed().elapsed(outcome));
  const auto r2 =
      bed().verifier.verify(request, outcome.response, bed().elapsed(outcome));
  EXPECT_EQ(r1.status, r2.status);
  EXPECT_DOUBLE_EQ(r1.deadline_us, r2.deadline_us);
}

TEST_F(ProtocolEdge, SingleHelperBitFlipRejects) {
  // The helper transcript is authenticated implicitly: flipping any bit
  // changes the reconstructed response and hence z and the checksum (or
  // trips the distance budgets).
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 2);
  const auto request = bed().verifier.make_request(rng_);
  auto outcome = prover.respond(request);
  Xoshiro256pp tamper_rng(5);
  int rejects = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    auto tampered = outcome.response;
    const auto word = tamper_rng.uniform_u64(tampered.helper_words.size());
    tampered.helper_words[word] ^=
        1u << tamper_rng.uniform_u64(26);  // 26-bit syndromes
    const auto result =
        bed().verifier.verify(request, tampered, bed().elapsed(outcome));
    if (!result.accepted()) ++rejects;
  }
  EXPECT_EQ(rejects, trials);
}

TEST_F(ProtocolEdge, ExtraHelperWordsRejected) {
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 3);
  const auto request = bed().verifier.make_request(rng_);
  auto outcome = prover.respond(request);
  outcome.response.helper_words.push_back(0xDEAD);
  const auto result = bed().verifier.verify(request, outcome.response,
                                            bed().elapsed(outcome));
  EXPECT_EQ(result.status, VerifyStatus::kPufReconstructionFailed);
}

TEST_F(ProtocolEdge, EmptyTranscriptRejected) {
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 4);
  const auto request = bed().verifier.make_request(rng_);
  auto outcome = prover.respond(request);
  outcome.response.helper_words.clear();
  const auto result = bed().verifier.verify(request, outcome.response,
                                            bed().elapsed(outcome));
  EXPECT_EQ(result.status, VerifyStatus::kPufReconstructionFailed);
}

TEST_F(ProtocolEdge, ZeroElapsedStillNeedsCorrectChecksum) {
  // Being fast is not enough.
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 5);
  const auto request = bed().verifier.make_request(rng_);
  auto outcome = prover.respond(request);
  outcome.response.checksum[0] ^= 0x100;
  const auto result = bed().verifier.verify(request, outcome.response, 0.0);
  EXPECT_EQ(result.status, VerifyStatus::kChecksumMismatch);
}

TEST_F(ProtocolEdge, DeadlineScalesWithTranscriptSize) {
  // The channel budget accounts for the response payload the prover must
  // push through the constrained link.
  AttestationResponse small, large;
  small.helper_words.assign(8, 0);
  large.helper_words.assign(800, 0);
  EXPECT_GT(bed().verifier.deadline_us(large),
            bed().verifier.deadline_us(small));
}

TEST_F(ProtocolEdge, TightWeightedBudgetRejectsHonest) {
  // Sanity on the knob: an absurd budget flags even the honest device —
  // proving the statistic is actually consulted.
  Verifier strict(bed().record, bed().code);
  strict.set_max_avg_weighted_ps(0.001);
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 6);
  const auto request = strict.make_request(rng_);
  const auto outcome = prover.respond(request);
  const auto result =
      strict.verify(request, outcome.response, bed().elapsed(outcome));
  EXPECT_EQ(result.status, VerifyStatus::kPufReconstructionFailed);
}

TEST_F(ProtocolEdge, RequestNoncesAreFresh) {
  Xoshiro256pp rng(123);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(bed().verifier.make_request(rng).nonce).second);
  }
}

TEST_F(ProtocolEdge, ProverRespondsConsistentlyToSameNonce) {
  // Same nonce, same device: the checksum matches across runs (the PUF
  // noise is absorbed by the error correction; helper words may differ).
  CpuProver a(bed().device, bed().record, CpuProver::Variant::kHonest, 7);
  CpuProver b(bed().device, bed().record, CpuProver::Variant::kHonest, 8);
  const AttestationRequest request{424242};
  const auto ra = a.respond(request);
  const auto rb = b.respond(request);
  // Both must verify.  Note the checksums themselves are allowed to
  // differ across runs: a reverse fuzzy extractor obfuscates the *noisy*
  // measurement y' (whose few flipped bits differ per run) and the
  // verifier reconstructs that exact y' from the helper data — so r is
  // per-run while verification stays exact.
  const auto va =
      bed().verifier.verify(request, ra.response, bed().elapsed(ra));
  const auto vb =
      bed().verifier.verify(request, rb.response, bed().elapsed(rb));
  EXPECT_TRUE(va.accepted());
  EXPECT_TRUE(vb.accepted());
}

TEST_F(ProtocolEdge, NegativeSlackRejected) {
  EXPECT_THROW(Verifier(bed().record, bed().code, ChannelParams{}, -0.1),
               std::invalid_argument);
}

TEST_F(ProtocolEdge, ResponseWireFrameRoundTrips) {
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 20);
  const auto request = bed().verifier.make_request(rng_);
  const auto outcome = prover.respond(request);
  const auto frame = serialize_response(outcome.response);
  const auto parsed = deserialize_response(frame);
  EXPECT_EQ(parsed.checksum, outcome.response.checksum);
  EXPECT_EQ(parsed.helper_words, outcome.response.helper_words);
  const auto req_frame = serialize_request(request);
  EXPECT_EQ(deserialize_request(req_frame).nonce, request.nonce);
}

TEST_F(ProtocolEdge, TruncatedResponseFrameRejected) {
  AttestationResponse response;
  response.helper_words.assign(64, 0x1234);
  const auto frame = serialize_response(response);
  for (const std::size_t cut : {0uL, 3uL, 7uL, 39uL, frame.size() - 1}) {
    const std::vector<std::uint8_t> truncated(frame.begin(),
                                              frame.begin() + cut);
    EXPECT_THROW(deserialize_response(truncated), SerializationError)
        << "cut at " << cut;
  }
}

TEST_F(ProtocolEdge, OversizedAndTrailingResponseFramesRejected) {
  AttestationResponse response;
  response.helper_words.assign(16, 7);
  auto frame = serialize_response(response);
  frame.push_back(0);  // trailing garbage
  EXPECT_THROW(deserialize_response(frame), SerializationError);

  // A helper count beyond the wire limit must be rejected *before* any
  // allocation is attempted.
  auto huge = serialize_response(response);
  const std::uint32_t absurd = 0x7FFFFFFFu;
  for (int i = 0; i < 4; ++i) {
    huge[4 + i] = static_cast<std::uint8_t>(absurd >> (8 * i));
  }
  EXPECT_THROW(deserialize_response(huge), SerializationError);
}

TEST_F(ProtocolEdge, FramesBeyondWireByteLimitRejected) {
  // kMaxWireFrameBytes is sized so the largest *honest* frame — a response
  // carrying exactly kMaxWireHelperWords helper words — still fits...
  AttestationResponse biggest;
  biggest.helper_words.assign(kMaxWireHelperWords, 0xABCD);
  const auto frame = serialize_response(biggest);
  ASSERT_EQ(frame.size(), kMaxWireFrameBytes);
  EXPECT_EQ(deserialize_response(frame).helper_words.size(),
            kMaxWireHelperWords);

  // ...while any buffer past the bound is rejected up front, whatever its
  // contents.  Stream decoders share this constant so a declared length can
  // never size an allocation beyond it.
  std::vector<std::uint8_t> oversized(kMaxWireFrameBytes + 1, 0);
  EXPECT_THROW(deserialize_response(oversized), SerializationError);
  EXPECT_THROW(deserialize_request(oversized), SerializationError);
}

TEST_F(ProtocolEdge, WrongHelperWordCountRejected) {
  // Helper transcripts carry 8 words per PUF call; a count of, say, 12
  // cannot come from an honest prover and is rejected at the frame layer.
  AttestationResponse response;
  response.helper_words.assign(12, 1);
  const auto frame = serialize_response(response);
  EXPECT_THROW(deserialize_response(frame), SerializationError);
}

TEST_F(ProtocolEdge, CorruptedResponseFrameFailsCrc) {
  AttestationResponse response;
  response.helper_words.assign(32, 0xCAFE);
  const auto frame = serialize_response(response);
  Xoshiro256pp flip_rng(31);
  for (int t = 0; t < 50; ++t) {
    auto corrupted = frame;
    const auto bit = flip_rng.uniform_u64(corrupted.size() * 8);
    corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_THROW(deserialize_response(corrupted), SerializationError);
  }
}

TEST_F(ProtocolEdge, MutatedByteStreamsNeverCrashTheVerifier) {
  // Fuzz-ish sweep: mutate a valid frame arbitrarily; the deserializer
  // must either throw SerializationError or produce a response that
  // `verify` maps to a clean rejection — never UB, never a crash.
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 21);
  const auto request = bed().verifier.make_request(rng_);
  const auto outcome = prover.respond(request);
  const auto frame = serialize_response(outcome.response);
  Xoshiro256pp fuzz_rng(32);
  int parsed_frames = 0;
  for (int t = 0; t < 300; ++t) {
    auto mutated = frame;
    const auto mutations = 1 + fuzz_rng.uniform_u64(8);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      mutated[fuzz_rng.uniform_u64(mutated.size())] =
          static_cast<std::uint8_t>(fuzz_rng.next());
    }
    if (fuzz_rng.bernoulli(0.3)) {
      mutated.resize(fuzz_rng.uniform_u64(mutated.size() + 1));
    }
    try {
      const auto parsed = deserialize_response(mutated);
      ++parsed_frames;
      const auto result =
          bed().verifier.verify(request, parsed, bed().elapsed(outcome));
      (void)result;  // any status is fine; surviving is the assertion
    } catch (const SerializationError&) {
      // expected for nearly all mutations
    }
  }
  // The CRC makes an accidental valid parse astronomically unlikely.
  EXPECT_EQ(parsed_frames, 0);
}

TEST_F(ProtocolEdge, PufPortRequiresEightFeeds) {
  // Hardware contract: pend after fewer than 8 PUF-mode adds is a fault.
  Xoshiro256pp rng(9);
  DevicePufPort port(bed().device, variation::Environment::nominal(), rng);
  port.start();
  port.feed(1, 1000.0);
  std::vector<std::uint32_t> helpers;
  EXPECT_THROW(port.finish(helpers), cpu::MachineError);
}

}  // namespace
}  // namespace pufatt::core
