// Tests for the hardened obfuscation pairing and the XOR-Arbiter baseline —
// the two constructions that embody the "XOR as modeling defence" idea
// (paper references [34] and [27]).
#include <gtest/gtest.h>

#include <array>
#include <set>

#include "alupuf/arbiter_puf.hpp"
#include "alupuf/obfuscation.hpp"
#include "ecc/reed_muller.hpp"
#include "mlattack/attack.hpp"
#include "support/rng.hpp"

namespace pufatt::alupuf {
namespace {

using support::BitVector;
using support::Xoshiro256pp;

// --------------------------------------------------- hardened obfuscation

TEST(HardenedObfuscation, PairingIsAPerfectMatching) {
  const ObfuscationNetwork net(32, ObfuscationNetwork::Pairing::kHardened);
  // Every input bit must feed exactly one fold output: flipping any single
  // input bit flips exactly one fold bit.
  Xoshiro256pp rng(1);
  const auto base = BitVector::random(32, rng);
  const auto folded_base = net.fold(base);
  std::set<std::size_t> touched;
  for (std::size_t i = 0; i < 32; ++i) {
    auto flipped = base;
    flipped.flip(i);
    const auto folded = net.fold(flipped);
    ASSERT_EQ(folded.hamming_distance(folded_base), 1u) << "bit " << i;
    for (std::size_t k = 0; k < 16; ++k) {
      if (folded.get(k) != folded_base.get(k)) touched.insert(k);
    }
  }
  EXPECT_EQ(touched.size(), 16u);  // all outputs reachable
}

TEST(HardenedObfuscation, CodewordFoldIsNotConstant) {
  // The degeneracy fix: under the hardened pairing, RM(1,5) codewords no
  // longer fold to all-zero/all-one blocks (except the two trivial ones).
  const ecc::ReedMuller1 rm(5);
  const ObfuscationNetwork hardened(32, ObfuscationNetwork::Pairing::kHardened);
  int constant_folds = 0;
  for (std::uint64_t m = 0; m < 64; ++m) {
    const auto folded = hardened.fold(rm.encode(BitVector(6, m)));
    const auto w = folded.popcount();
    if (w == 0 || w == folded.size()) ++constant_folds;
  }
  // Only the all-zero and all-one codewords fold to constants.
  EXPECT_LE(constant_folds, 4);
  // Contrast: the paper pairing folds EVERY codeword to a constant
  // (covered by Obfuscation.FoldOfReedMullerCodewordIsConstant).
}

TEST(HardenedObfuscation, IdenticalErrorsDoNotCancel) {
  // The phase-2 rotations: XOR-identical corruption across all eight
  // responses must still disturb z (the extreme-overclock blind spot).
  const ecc::ReedMuller1 rm(5);
  const ObfuscationNetwork hardened(32, ObfuscationNetwork::Pairing::kHardened);
  Xoshiro256pp rng(2);
  int disturbed = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    std::array<BitVector, 8> clean;
    for (auto& r : clean) r = BitVector::random(32, rng);
    // Same nonzero codeword error on every response.
    const auto error = rm.encode(BitVector(6, 1 + rng.uniform_u64(62)));
    auto corrupted = clean;
    for (auto& r : corrupted) r ^= error;
    if (hardened.obfuscate(clean) != hardened.obfuscate(corrupted)) {
      ++disturbed;
    }
  }
  EXPECT_EQ(disturbed, trials);
}

TEST(HardenedObfuscation, DistinctCodewordErrorsDoNotCancel) {
  // Regression for the sharper version of the blind spot: helper-data
  // reconstruction errors are always RM(1,5) *codewords*, but they need not
  // be identical across the eight responses.  Under the paper pairing every
  // codeword folds to a constant block, so independent per-response
  // codeword errors still cancel in z whenever their constants line up —
  // a forged transcript can corrupt every response and leave z untouched.
  // The hardened pairing must never cancel them.
  const ecc::ReedMuller1 rm(5);
  const ObfuscationNetwork paper(32, ObfuscationNetwork::Pairing::kPaper);
  const ObfuscationNetwork hardened(32,
                                    ObfuscationNetwork::Pairing::kHardened);
  Xoshiro256pp rng(11);
  const int trials = 200;
  int paper_cancelled = 0;
  int hardened_cancelled = 0;
  for (int t = 0; t < trials; ++t) {
    std::array<BitVector, 8> clean;
    for (auto& r : clean) r = BitVector::random(32, rng);
    // A fresh nonzero codeword error per response.
    auto corrupted = clean;
    for (auto& r : corrupted) {
      r ^= rm.encode(BitVector(6, 1 + rng.uniform_u64(62)));
    }
    if (paper.obfuscate(clean) == paper.obfuscate(corrupted)) {
      ++paper_cancelled;
    }
    if (hardened.obfuscate(clean) == hardened.obfuscate(corrupted)) {
      ++hardened_cancelled;
    }
  }
  EXPECT_GT(paper_cancelled, trials / 20);  // the blind spot is common...
  EXPECT_EQ(hardened_cancelled, 0);         // ...and the fix closes it
}

TEST(HardenedObfuscation, PaperPairingCancelsIdenticalErrors) {
  // Confirms the blind spot exists in the paper-exact network (why the
  // protocol uses the hardened one).
  const ecc::ReedMuller1 rm(5);
  const ObfuscationNetwork paper(32, ObfuscationNetwork::Pairing::kPaper);
  Xoshiro256pp rng(3);
  std::array<BitVector, 8> clean;
  for (auto& r : clean) r = BitVector::random(32, rng);
  const auto error = rm.encode(BitVector(6, 37));
  auto corrupted = clean;
  for (auto& r : corrupted) r ^= error;
  EXPECT_EQ(paper.obfuscate(clean), paper.obfuscate(corrupted));
}

TEST(HardenedObfuscation, DeterministicAcrossInstances) {
  // Device and verifier construct the network independently; the pairing
  // must be identical.
  const ObfuscationNetwork a(32, ObfuscationNetwork::Pairing::kHardened);
  const ObfuscationNetwork b(32, ObfuscationNetwork::Pairing::kHardened);
  Xoshiro256pp rng(4);
  for (int t = 0; t < 20; ++t) {
    std::array<BitVector, 8> y;
    for (auto& r : y) r = BitVector::random(32, rng);
    EXPECT_EQ(a.obfuscate(y), b.obfuscate(y));
  }
}

TEST(HardenedObfuscation, StillUnbiased) {
  const ObfuscationNetwork net(32, ObfuscationNetwork::Pairing::kHardened);
  Xoshiro256pp rng(5);
  std::size_t ones = 0;
  const int trials = 1500;
  for (int t = 0; t < trials; ++t) {
    std::array<BitVector, 8> y;
    for (auto& r : y) {
      r = BitVector(32);
      for (std::size_t i = 0; i < 32; ++i) r.set(i, rng.bernoulli(0.65));
    }
    ones += net.obfuscate(y).popcount();
  }
  EXPECT_NEAR(static_cast<double>(ones) / (32.0 * trials), 0.5, 0.02);
}

// --------------------------------------------------------- XOR arbiter PUF

TEST(XorArbiterPuf, RejectsZeroK) {
  EXPECT_THROW(XorArbiterPuf(0, {}, 1), std::invalid_argument);
}

TEST(XorArbiterPuf, K1MatchesPlainArbiter) {
  const ArbiterPufParams params{.stages = 32};
  const XorArbiterPuf xpuf(1, params, 5);
  const ArbiterPuf plain(params, support::SplitMix64::mix(5));
  Xoshiro256pp rng(6);
  for (int t = 0; t < 100; ++t) {
    const auto c = BitVector::random(32, rng);
    EXPECT_EQ(xpuf.eval_ideal(c), plain.eval_ideal(c));
  }
}

TEST(XorArbiterPuf, NoiseCompoundsWithK) {
  // Per-bit flip rate grows with k (any chain flip flips the XOR).
  const ArbiterPufParams params{.stages = 64, .noise_sigma = 0.5};
  Xoshiro256pp rng(7);
  double prev_rate = 0.0;
  for (const std::size_t k : {1u, 4u, 8u}) {
    const XorArbiterPuf puf(k, params, 8);
    int flips = 0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
      const auto c = BitVector::random(64, rng);
      if (puf.eval(c, rng) != puf.eval(c, rng)) ++flips;
    }
    const double rate = static_cast<double>(flips) / trials;
    EXPECT_GT(rate, prev_rate);
    prev_rate = rate;
  }
}

TEST(XorArbiterPuf, LrBreaksK1ButNotK4) {
  Xoshiro256pp rng(9);
  mlattack::AttackConfig config;
  config.test_crps = 800;
  const XorArbiterPuf k1(1, {.stages = 64, .noise_sigma = 0.05}, 10);
  const XorArbiterPuf k4(4, {.stages = 64, .noise_sigma = 0.05}, 10);
  const auto r1 = mlattack::attack_xor_arbiter(k1, 5000, rng, config);
  const auto r4 = mlattack::attack_xor_arbiter(k4, 5000, rng, config);
  EXPECT_GT(r1.test_accuracy, 0.9);
  EXPECT_LT(r4.test_accuracy, 0.6);
}

}  // namespace
}  // namespace pufatt::alupuf
