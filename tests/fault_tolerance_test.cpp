// Fault-injection and attestation-session tests: seeded determinism of the
// fault schedule, retry behaviour of honest and compromised provers over
// lossy links, fresh-nonce discipline, and degraded distributed audits.
#include <gtest/gtest.h>

#include <set>

#include "core/distributed.hpp"
#include "core/enrollment.hpp"
#include "core/faulty_channel.hpp"
#include "core/serialize.hpp"
#include "core/session.hpp"
#include "ecc/reed_muller.hpp"

namespace pufatt::core {
namespace {

using support::Xoshiro256pp;

// --- FaultyChannel ----------------------------------------------------------

std::vector<std::uint8_t> test_payload(std::size_t n) {
  std::vector<std::uint8_t> payload(n);
  for (std::size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  return payload;
}

TEST(FaultyChannel, SameSeedSameSchedule) {
  FaultParams faults;
  faults.loss_prob = 0.2;
  faults.bit_error_rate = 1e-3;
  faults.jitter_sigma = 0.4;
  FaultyChannel a({}, faults, 42);
  FaultyChannel b({}, faults, 42);
  for (int packet = 0; packet < 200; ++packet) {
    auto pa = test_payload(64);
    auto pb = test_payload(64);
    const auto da = a.transmit(pa);
    const auto db = b.transmit(pb);
    ASSERT_EQ(da.delivered, db.delivered) << "packet " << packet;
    ASSERT_EQ(da.bits_flipped, db.bits_flipped);
    ASSERT_DOUBLE_EQ(da.transfer_us, db.transfer_us);
    ASSERT_EQ(pa, pb) << "corruption must hit identical bits";
  }
  EXPECT_EQ(a.counters().packets_lost, b.counters().packets_lost);
  EXPECT_EQ(a.counters().bits_flipped, b.counters().bits_flipped);
  EXPECT_GT(a.counters().packets_lost, 0u);
  EXPECT_GT(a.counters().bits_flipped, 0u);
}

TEST(FaultyChannel, DifferentSeedDifferentSchedule) {
  FaultParams faults;
  faults.loss_prob = 0.3;
  FaultyChannel a({}, faults, 1);
  FaultyChannel b({}, faults, 2);
  std::vector<bool> da, db;
  for (int packet = 0; packet < 100; ++packet) {
    auto pa = test_payload(8);
    auto pb = test_payload(8);
    da.push_back(a.transmit(pa).delivered);
    db.push_back(b.transmit(pb).delivered);
  }
  EXPECT_NE(da, db);
}

TEST(FaultyChannel, ReportedFlipCountMatchesPayloadDamage) {
  FaultParams faults;
  faults.bit_error_rate = 0.01;
  FaultyChannel channel({}, faults, 7);
  const auto original = test_payload(256);
  std::uint64_t total_reported = 0, total_observed = 0;
  for (int packet = 0; packet < 50; ++packet) {
    auto frame = original;
    const auto delivery = channel.transmit(frame);
    ASSERT_TRUE(delivery.delivered);
    total_reported += delivery.bits_flipped;
    for (std::size_t i = 0; i < frame.size(); ++i) {
      total_observed += static_cast<std::uint64_t>(
          __builtin_popcount(frame[i] ^ original[i]));
    }
  }
  EXPECT_EQ(total_reported, total_observed);
  EXPECT_GT(total_reported, 0u);
  EXPECT_EQ(channel.counters().bits_flipped, total_observed);
}

TEST(FaultyChannel, PerfectParamsBehaveLikeAnalyticChannel) {
  const ChannelParams params{.bandwidth_bps = 250'000.0, .latency_us = 3'000.0};
  FaultyChannel faulty(params, {}, 99);
  const Channel exact(params);
  auto frame = test_payload(100);
  const auto delivery = faulty.transmit(frame, 100);
  EXPECT_TRUE(delivery.delivered);
  EXPECT_EQ(delivery.bits_flipped, 0u);
  EXPECT_DOUBLE_EQ(delivery.transfer_us, exact.transfer_us(100));
  EXPECT_EQ(frame, test_payload(100));
}

TEST(FaultyChannel, GilbertElliottOutageDropsEverything) {
  FaultParams faults;
  faults.burst = true;
  faults.p_good_to_bad = 1.0;  // enter the bad state on the first packet
  faults.p_bad_to_good = 0.0;  // and never leave
  faults.bad_loss_prob = 1.0;
  FaultyChannel channel({}, faults, 5);
  for (int packet = 0; packet < 20; ++packet) {
    auto frame = test_payload(16);
    EXPECT_FALSE(channel.transmit(frame).delivered);
  }
  EXPECT_TRUE(channel.in_bad_state());
  EXPECT_EQ(channel.counters().packets_lost, 20u);
  EXPECT_EQ(channel.counters().bad_state_packets, 20u);
}

TEST(FaultyChannel, RejectsBadParameters) {
  FaultParams faults;
  faults.loss_prob = 1.5;
  EXPECT_THROW(FaultyChannel({}, faults, 1), std::invalid_argument);
  faults.loss_prob = 0.0;
  faults.jitter_sigma = -0.1;
  EXPECT_THROW(FaultyChannel({}, faults, 1), std::invalid_argument);
}

// --- AttestationSession -----------------------------------------------------

struct SessionBed {
  SessionBed()
      : code(5),
        profile(make_profile()),
        device(profile.puf_config, 4242, code),
        record(enroll(device, profile,
                      make_enrolled_image(
                          profile, std::vector<std::uint32_t>(400, 0xAB)))),
        verifier(record, code) {}

  static DeviceProfile make_profile() {
    auto p = DeviceProfile::standard();
    p.swat.rounds = 512;
    p.swat.puf_interval = 64;
    p.swat.attest_words = 1024;
    p.layout = swat::SwatLayout::standard(p.swat);
    return p;
  }

  Responder responder_for(CpuProver& prover) const {
    return [&prover](const AttestationRequest& request) {
      auto outcome = prover.respond(request);
      return ProverReply{std::move(outcome.response), outcome.compute_us};
    };
  }

  ecc::ReedMuller1 code;
  DeviceProfile profile;
  alupuf::PufDevice device;
  EnrollmentRecord record;
  Verifier verifier;
};

class Session : public ::testing::Test {
 protected:
  static SessionBed& bed() {
    static SessionBed instance;
    return instance;
  }
};

TEST_F(Session, HonestProverAcceptedOnPerfectLink) {
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 1);
  FaultyChannel link({}, {}, 10);
  AttestationSession session(bed().verifier, link);
  Xoshiro256pp rng(11);
  const auto outcome = session.run(bed().responder_for(prover), rng);
  EXPECT_EQ(outcome.status, SessionStatus::kAccepted);
  ASSERT_EQ(outcome.attempts.size(), 1u);
  EXPECT_EQ(outcome.attempts[0].verify, VerifyStatus::kAccepted);
}

TEST_F(Session, HonestProverSurvivesLossyChannelWithRetries) {
  // 5% per-packet loss; with a 5-attempt budget the probability that every
  // attempt loses a frame is ~(2*0.05)^5 = 1e-5, so 20 sessions all pass.
  FaultParams faults;
  faults.loss_prob = 0.05;
  SessionPolicy policy;
  policy.max_attempts = 5;
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 2);
  Xoshiro256pp rng(12);
  std::size_t retried_sessions = 0;
  for (int s = 0; s < 20; ++s) {
    FaultyChannel link({}, faults, 1000 + s);
    AttestationSession session(bed().verifier, link, policy);
    const auto outcome = session.run(bed().responder_for(prover), rng);
    EXPECT_EQ(outcome.status, SessionStatus::kAccepted) << "session " << s;
    if (outcome.attempts.size() > 1) ++retried_sessions;
  }
  EXPECT_GT(retried_sessions, 0u) << "the loss process never fired";
}

TEST_F(Session, RetriesAlwaysCarryFreshNonces) {
  FaultParams faults;
  faults.loss_prob = 1.0;  // total dead zone: every attempt is spent
  SessionPolicy policy;
  policy.max_attempts = 6;
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 3);
  FaultyChannel link({}, faults, 77);
  AttestationSession session(bed().verifier, link, policy);
  Xoshiro256pp rng(13);
  const auto outcome = session.run(bed().responder_for(prover), rng);
  EXPECT_EQ(outcome.status, SessionStatus::kTimeout);
  ASSERT_EQ(outcome.attempts.size(), 6u);
  std::set<std::uint64_t> nonces;
  for (const auto& attempt : outcome.attempts) {
    EXPECT_TRUE(nonces.insert(attempt.nonce).second)
        << "a retry reused a nonce";
    EXPECT_FALSE(attempt.request_delivered);
  }
}

TEST_F(Session, SameSeedsReproduceTheAttemptTrace) {
  FaultParams faults;
  faults.loss_prob = 0.3;
  faults.bit_error_rate = 1e-4;
  faults.jitter_sigma = 0.2;
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 4);
  auto run_once = [&] {
    FaultyChannel link({}, faults, 555);
    AttestationSession session(bed().verifier, link);
    Xoshiro256pp rng(14);
    return session.run(bed().responder_for(prover), rng);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.status, b.status);
  ASSERT_EQ(a.attempts.size(), b.attempts.size());
  for (std::size_t i = 0; i < a.attempts.size(); ++i) {
    EXPECT_EQ(a.attempts[i].nonce, b.attempts[i].nonce);
    EXPECT_EQ(a.attempts[i].request_delivered, b.attempts[i].request_delivered);
    EXPECT_EQ(a.attempts[i].response_corrupted, b.attempts[i].response_corrupted);
    EXPECT_DOUBLE_EQ(a.attempts[i].elapsed_us, b.attempts[i].elapsed_us);
    EXPECT_EQ(a.attempts[i].verify, b.attempts[i].verify);
  }
  EXPECT_DOUBLE_EQ(a.total_us, b.total_us);
}

TEST_F(Session, ChecksumMismatchIsDefinitiveAndNotRetried) {
  auto tampered = bed().record;
  for (std::size_t w = 700; w < 760; ++w) {
    tampered.enrolled_image[w] ^= 0xBADF00Du;
  }
  CpuProver malware(bed().device, tampered, CpuProver::Variant::kHonest, 5);
  FaultyChannel link({}, {}, 20);
  AttestationSession session(bed().verifier, link);
  Xoshiro256pp rng(15);
  const auto outcome = session.run(bed().responder_for(malware), rng);
  EXPECT_EQ(outcome.status, SessionStatus::kRejected);
  ASSERT_EQ(outcome.attempts.size(), 1u)
      << "an intact failing response must terminate the session";
  EXPECT_EQ(outcome.attempts[0].verify, VerifyStatus::kChecksumMismatch);
}

TEST_F(Session, RedirectMalwareRejectedOnEveryAttempt) {
  // kTimeExceeded is retried (it could be jitter), but each retry runs
  // under its own per-attempt deadline, so the redirect attack fails every
  // one of them and the session ends rejected — retries never extend the
  // deadline.
  CpuProver redirect(bed().device, bed().record,
                     CpuProver::Variant::kRedirectMalware, 6);
  SessionPolicy policy;
  policy.max_attempts = 3;
  FaultyChannel link({}, {}, 30);
  AttestationSession session(bed().verifier, link, policy);
  Xoshiro256pp rng(16);
  const auto outcome = session.run(bed().responder_for(redirect), rng);
  EXPECT_EQ(outcome.status, SessionStatus::kRejected);
  ASSERT_EQ(outcome.attempts.size(), 3u);
  for (const auto& attempt : outcome.attempts) {
    EXPECT_EQ(attempt.verify, VerifyStatus::kTimeExceeded);
  }
}

TEST_F(Session, CorruptedFramesAreTransportFaultsNotEvidence) {
  // A high bit-error rate mangles every response; the CRC catches it and
  // the session must end kTransportCorrupted, never kRejected: corrupted
  // transit bits are not evidence against the prover.
  FaultParams faults;
  faults.bit_error_rate = 0.01;  // ~300 flips per response frame
  SessionPolicy policy;
  policy.max_attempts = 3;
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 7);
  FaultyChannel link({}, faults, 40);
  AttestationSession session(bed().verifier, link, policy);
  Xoshiro256pp rng(17);
  const auto outcome = session.run(bed().responder_for(prover), rng);
  EXPECT_EQ(outcome.status, SessionStatus::kTransportCorrupted);
  EXPECT_FALSE(outcome.conclusive());
  for (const auto& attempt : outcome.attempts) {
    EXPECT_FALSE(attempt.verify.has_value());
  }
  EXPECT_GT(link.counters().packets_corrupted, 0u);
}

TEST_F(Session, BackoffGrowsExponentially) {
  FaultParams faults;
  faults.loss_prob = 1.0;
  SessionPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_base_us = 10'000.0;
  policy.backoff_factor = 2.0;
  policy.backoff_jitter = 0.0;
  CpuProver prover(bed().device, bed().record, CpuProver::Variant::kHonest, 8);
  FaultyChannel link({}, faults, 50);
  AttestationSession session(bed().verifier, link, policy);
  Xoshiro256pp rng(18);
  const auto outcome = session.run(bed().responder_for(prover), rng);
  ASSERT_EQ(outcome.attempts.size(), 4u);
  EXPECT_DOUBLE_EQ(outcome.attempts[0].backoff_us, 0.0);
  EXPECT_DOUBLE_EQ(outcome.attempts[1].backoff_us, 10'000.0);
  EXPECT_DOUBLE_EQ(outcome.attempts[2].backoff_us, 20'000.0);
  EXPECT_DOUBLE_EQ(outcome.attempts[3].backoff_us, 40'000.0);
}

TEST_F(Session, RejectsBadPolicy) {
  FaultyChannel link({}, {}, 60);
  SessionPolicy policy;
  policy.max_attempts = 0;
  EXPECT_THROW(AttestationSession(bed().verifier, link, policy),
               std::invalid_argument);
  policy.max_attempts = 2;
  policy.backoff_factor = 0.5;
  EXPECT_THROW(AttestationSession(bed().verifier, link, policy),
               std::invalid_argument);
}

// --- degraded distributed audits --------------------------------------------

TEST(DistributedDegraded, PartitionedNodeEndsRoundInconclusive) {
  DistributedParams params;
  params.num_nodes = 6;
  DistributedNetwork net(params, {}, 21);
  net.set_partitioned(4, true);
  Xoshiro256pp rng(22);
  const auto verdicts = net.run_round(rng);
  const auto& dead = verdicts[4];
  EXPECT_EQ(dead.audits, 4u);
  EXPECT_EQ(dead.completed, 0u);
  EXPECT_EQ(dead.inconclusive, 4u);
  EXPECT_EQ(dead.rejections, 0u);
  EXPECT_FALSE(dead.convicted) << "silence must not read as guilt";
  EXPECT_FALSE(dead.evidence_met);
  EXPECT_GT(dead.packets_lost, 0u);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    if (i == 4) continue;
    EXPECT_FALSE(verdicts[i].convicted) << "node " << i;
    EXPECT_TRUE(verdicts[i].evidence_met);
  }
}

TEST(DistributedDegraded, LossyRadioStillConvictsMalwareOnly) {
  DistributedParams params;
  params.num_nodes = 6;
  params.radio_faults.loss_prob = 0.05;
  params.session.max_attempts = 5;
  DistributedNetwork net(params, {{2, NodeHealth::kNaiveMalware}}, 23);
  Xoshiro256pp rng(24);
  const auto verdicts = net.run_round(rng);
  EXPECT_TRUE(verdicts[2].convicted);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    if (i == 2) continue;
    EXPECT_FALSE(verdicts[i].convicted) << "node " << i;
  }
}

TEST(DistributedDegraded, PartitionToggleRestoresAudits) {
  DistributedParams params;
  params.num_nodes = 6;
  DistributedNetwork net(params, {}, 25);
  net.set_partitioned(1, true);
  EXPECT_TRUE(net.partitioned(1));
  Xoshiro256pp rng(26);
  EXPECT_EQ(net.run_round(rng)[1].completed, 0u);
  net.set_partitioned(1, false);
  const auto verdicts = net.run_round(rng);
  EXPECT_EQ(verdicts[1].completed, 4u);
  EXPECT_FALSE(verdicts[1].convicted);
  EXPECT_THROW(net.set_partitioned(99, true), std::invalid_argument);
}

}  // namespace
}  // namespace pufatt::core
