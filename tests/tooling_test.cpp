// Tests for the deployment tooling: the PR32 disassembler (auditability of
// attested images) and enrollment-record serialization (the verifier's
// device database).
#include <gtest/gtest.h>

#include <sstream>

#include "core/protocol.hpp"
#include "core/serialize.hpp"
#include "cpu/assembler.hpp"
#include "cpu/isa.hpp"
#include "cpu/disassembler.hpp"
#include "ecc/reed_muller.hpp"
#include "swat/program.hpp"

namespace pufatt {
namespace {

// ------------------------------------------------------------ disassembler

TEST(Disassembler, RendersEveryFormat) {
  using cpu::Instruction;
  using cpu::Opcode;
  EXPECT_EQ(cpu::disassemble(cpu::encode({Opcode::kAdd, 1, 2, 3, 0})),
            "add r1, r2, r3");
  EXPECT_EQ(cpu::disassemble(cpu::encode({Opcode::kAddi, 4, 5, 0, -7})),
            "addi r4, r5, -7");
  EXPECT_EQ(cpu::disassemble(cpu::encode({Opcode::kLui, 6, 0, 0, 0x12})),
            "lui r6, 18");
  EXPECT_EQ(cpu::disassemble(cpu::encode({Opcode::kLw, 7, 8, 0, 12})),
            "lw r7, 12(r8)");
  EXPECT_EQ(cpu::disassemble(cpu::encode({Opcode::kSw, 0, 9, 10, -4})),
            "sw r10, -4(r9)");
  EXPECT_EQ(cpu::disassemble(cpu::encode({Opcode::kBne, 0, 1, 2, -3})),
            "bne r1, r2, -3");
  EXPECT_EQ(cpu::disassemble(cpu::encode({Opcode::kJal, 15, 0, 0, 100})),
            "jal r15, 100");
  EXPECT_EQ(cpu::disassemble(cpu::encode({Opcode::kHalt, 0, 0, 0, 0})), "halt");
  EXPECT_EQ(cpu::disassemble(cpu::encode({Opcode::kPstart, 0, 0, 0, 0})),
            "pstart");
  EXPECT_EQ(cpu::disassemble(cpu::encode({Opcode::kPend, 5, 0, 0, 0})),
            "pend r5");
}

TEST(Disassembler, UnknownWordsBecomeDataDirectives) {
  EXPECT_EQ(cpu::disassemble(0xFF000000u), ".word 0xff000000");
  EXPECT_EQ(cpu::disassemble(0u), ".word 0x0");
}

TEST(Disassembler, RoundTripsTheGeneratedSwatProgram) {
  // disassemble(assemble(P)) must re-assemble to the identical words — the
  // property that makes attested images auditable.
  swat::SwatParams params;
  params.rounds = 256;
  params.puf_interval = 64;
  params.attest_words = 1024;
  const auto layout = swat::SwatLayout::standard(params);
  const auto original =
      cpu::assemble(swat::generate_swat_source(params, layout)).words;

  std::ostringstream source;
  for (const auto word : original) {
    source << cpu::disassemble(word) << "\n";
  }
  const auto rebuilt = cpu::assemble(source.str()).words;
  ASSERT_EQ(rebuilt.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(rebuilt[i], original[i]) << "word " << i;
  }
}

TEST(Disassembler, ProgramListingHasAddresses) {
  const auto listing = cpu::disassemble_program({
      cpu::encode({cpu::Opcode::kAddi, 1, 0, 0, 5}),
      cpu::encode({cpu::Opcode::kHalt, 0, 0, 0, 0}),
  });
  EXPECT_NE(listing.find("addi r1, r0, 5"), std::string::npos);
  EXPECT_NE(listing.find("; 1"), std::string::npos);
}

// ------------------------------------------------------------ serialization

class SerializeFixture : public ::testing::Test {
 public:
  static const core::EnrollmentRecord& record() {
    static const core::EnrollmentRecord instance = [] {
      const auto profile = [] {
        auto p = core::DeviceProfile::standard();
        p.swat.rounds = 256;
        p.swat.attest_words = 1024;
        p.layout = swat::SwatLayout::standard(p.swat);
        return p;
      }();
      static const ecc::ReedMuller1 code(5);
      const alupuf::PufDevice device(profile.puf_config, 321, code);
      return core::enroll(device, profile,
                          core::make_enrolled_image(
                              profile, std::vector<std::uint32_t>(500, 9)));
    }();
    return instance;
  }
};

TEST_F(SerializeFixture, RoundTripPreservesEverything) {
  std::stringstream buffer;
  core::save_record(buffer, record());
  const auto loaded = core::load_record(buffer);

  EXPECT_EQ(loaded.honest_cycles, record().honest_cycles);
  EXPECT_EQ(loaded.enrolled_image, record().enrolled_image);
  EXPECT_EQ(loaded.profile.swat.rounds, record().profile.swat.rounds);
  EXPECT_DOUBLE_EQ(loaded.profile.base_clock_mhz,
                   record().profile.base_clock_mhz);
  EXPECT_EQ(loaded.model.intrinsic_ps, record().model.intrinsic_ps);
  EXPECT_EQ(loaded.model.vth_v, record().model.vth_v);
  EXPECT_EQ(loaded.model.rise_factor, record().model.rise_factor);
  EXPECT_DOUBLE_EQ(loaded.model.tech.design_asym_sigma,
                   record().model.tech.design_asym_sigma);
}

TEST_F(SerializeFixture, LoadedRecordVerifiesLiveDevice) {
  // The real contract: a verifier rebuilt from the serialized record must
  // still accept the physical device.
  std::stringstream buffer;
  core::save_record(buffer, record());
  const auto loaded = core::load_record(buffer);

  static const ecc::ReedMuller1 code(5);
  const alupuf::PufDevice device(loaded.profile.puf_config, 321, code);
  const core::Verifier verifier(loaded, code);
  support::Xoshiro256pp rng(5);
  core::CpuProver prover(device, loaded, core::CpuProver::Variant::kHonest, 6);
  const auto request = verifier.make_request(rng);
  const auto outcome = prover.respond(request);
  const core::Channel channel;
  const auto result = verifier.verify(
      request, outcome.response,
      outcome.compute_us + channel.round_trip_us(8, outcome.response.wire_bytes()));
  EXPECT_TRUE(result.accepted()) << core::to_string(result.status);
}

TEST_F(SerializeFixture, FileRoundTrip) {
  const std::string path = "/tmp/pufatt_record_test.bin";
  core::save_record_file(path, record());
  const auto loaded = core::load_record_file(path);
  EXPECT_EQ(loaded.enrolled_image, record().enrolled_image);
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream buffer;
  buffer.write("nope", 4);
  EXPECT_THROW(core::load_record(buffer), core::SerializationError);
}

TEST(Serialize, RejectsTruncatedInput) {
  std::stringstream buffer;
  core::save_record(buffer, SerializeFixture::record());
  const std::string all = buffer.str();
  std::stringstream truncated(all.substr(0, all.size() / 2));
  EXPECT_THROW(core::load_record(truncated), core::SerializationError);
}

TEST(Serialize, RejectsWrongVersion) {
  std::stringstream buffer;
  core::save_record(buffer, SerializeFixture::record());
  std::string bytes = buffer.str();
  bytes[4] = char(0xEE);  // clobber the version field
  std::stringstream bad(bytes);
  EXPECT_THROW(core::load_record(bad), core::SerializationError);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(core::load_record_file("/nonexistent/path/record.bin"),
               core::SerializationError);
}

}  // namespace
}  // namespace pufatt
