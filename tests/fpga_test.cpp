#include <gtest/gtest.h>

#include "fpga/board.hpp"
#include "fpga/pdl.hpp"
#include "fpga/resources.hpp"
#include "support/stats.hpp"

namespace pufatt::fpga {
namespace {

using support::BitVector;
using support::Xoshiro256pp;

// -------------------------------------------------------------------- PDL

TEST(Pdl, RejectsZeroStages) {
  Xoshiro256pp rng(1);
  EXPECT_THROW(Pdl({.stages = 0}, rng), std::invalid_argument);
}

TEST(Pdl, DelayMonotoneInCode) {
  Xoshiro256pp rng(2);
  Pdl pdl({}, rng);
  double prev = -1.0;
  for (std::size_t code = 0; code <= pdl.stages(); ++code) {
    pdl.set_code(code);
    EXPECT_GT(pdl.delay_ps(), prev);
    prev = pdl.delay_ps();
  }
  EXPECT_DOUBLE_EQ(prev, pdl.max_delay_ps());
}

TEST(Pdl, CodeZeroIsZeroDelay) {
  Xoshiro256pp rng(3);
  Pdl pdl({}, rng);
  pdl.set_code(0);
  EXPECT_DOUBLE_EQ(pdl.delay_ps(), 0.0);
}

TEST(Pdl, RejectsOutOfRangeCode) {
  Xoshiro256pp rng(4);
  Pdl pdl({.stages = 8}, rng);
  EXPECT_THROW(pdl.set_code(9), std::out_of_range);
}

TEST(Pdl, StepsVaryAcrossInstances) {
  Xoshiro256pp rng(5);
  Pdl a({}, rng), b({}, rng);
  a.set_code(a.stages());
  b.set_code(b.stages());
  EXPECT_NE(a.delay_ps(), b.delay_ps());
}

// ------------------------------------------------------------------ Board

class BoardFixture : public ::testing::Test {
 protected:
  static FpgaBoard& board() {
    static FpgaBoard instance(FpgaBoardParams{}, 1001);
    return instance;
  }
  static FpgaBoard& calibrated() {
    static FpgaBoard instance = [] {
      FpgaBoard b(FpgaBoardParams{}, 1001);
      Xoshiro256pp rng(900);
      b.calibrate(150, rng);
      return b;
    }();
    return instance;
  }
};

TEST_F(BoardFixture, UncalibratedBitsAreHeavilyBiased) {
  // Routing skew (sigma 60 ps) dwarfs the PUF signal: most bits are stuck.
  Xoshiro256pp rng(6);
  int stuck = 0;
  for (std::size_t bit = 0; bit < board().response_bits(); ++bit) {
    const double bias = board().measure_bias(bit, 100, rng);
    if (bias < 0.05 || bias > 0.95) ++stuck;
  }
  EXPECT_GT(stuck, static_cast<int>(board().response_bits() * 3 / 4));
}

TEST_F(BoardFixture, CalibrationBalancesArbiters) {
  Xoshiro256pp rng(7);
  const auto& b = calibrated();
  EXPECT_TRUE(b.calibrated());
  support::OnlineStats bias;
  for (std::size_t bit = 0; bit < b.response_bits(); ++bit) {
    bias.add(b.measure_bias(bit, 300, rng));
  }
  EXPECT_NEAR(bias.mean(), 0.5, 0.12);
  EXPECT_LT(bias.max(), 0.95);
  EXPECT_GT(bias.min(), 0.05);
}

TEST_F(BoardFixture, CalibrationShrinksResidualSkew) {
  const auto& b = calibrated();
  support::OnlineStats residual;
  for (std::size_t bit = 0; bit < b.response_bits(); ++bit) {
    residual.add(std::abs(b.residual_skew_ps(bit)));
  }
  // From sigma = 60 ps down to a few ps (one PDL step).
  EXPECT_LT(residual.mean(), 12.0);
}

TEST_F(BoardFixture, CalibratedBoardIsChallengeSensitive) {
  Xoshiro256pp rng(8);
  const auto& b = calibrated();
  int diff = 0;
  for (int t = 0; t < 40; ++t) {
    const auto c1 = BitVector::random(b.challenge_bits(), rng);
    const auto c2 = BitVector::random(b.challenge_bits(), rng);
    if (b.eval(c1, rng) != b.eval(c2, rng)) ++diff;
  }
  EXPECT_GT(diff, 30);
}

TEST_F(BoardFixture, TwoBoardsDisagreeAfterCalibration) {
  // The paper's two-FPGA measurement: inter-chip HD ~19% raw.
  Xoshiro256pp rng(9);
  FpgaBoard b2(FpgaBoardParams{}, 2002);
  b2.calibrate(150, rng);
  support::OnlineStats hd;
  for (int t = 0; t < 150; ++t) {
    const auto c = BitVector::random(calibrated().challenge_bits(), rng);
    hd.add(static_cast<double>(
        calibrated().eval(c, rng).hamming_distance(b2.eval(c, rng))));
  }
  // Distinct boards must disagree well above the intra-board noise.
  EXPECT_GT(hd.mean(), 2.0);
  EXPECT_LT(hd.mean(), 12.0);
}

TEST_F(BoardFixture, IntraBoardNoiseModerate) {
  Xoshiro256pp rng(10);
  support::OnlineStats hd;
  for (int t = 0; t < 150; ++t) {
    const auto c = BitVector::random(calibrated().challenge_bits(), rng);
    hd.add(static_cast<double>(
        calibrated().eval(c, rng).hamming_distance(calibrated().eval(c, rng))));
  }
  EXPECT_GT(hd.mean(), 0.5);  // noisier than the ASIC simulation...
  EXPECT_LT(hd.mean(), 6.0);  // ...but nowhere near random
}

TEST_F(BoardFixture, MeasureBiasValidatesBit) {
  Xoshiro256pp rng(11);
  EXPECT_THROW(board().measure_bias(99, 10, rng), std::out_of_range);
  EXPECT_THROW(board().residual_skew_ps(99), std::out_of_range);
}

// ---------------------------------------------------------------- Table 1

TEST(Table1, HasAllSixComponents) {
  const auto rows = table1_rows();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].paper.component, "ALU PUF");
  EXPECT_EQ(rows[5].paper.fifo, 2u);
}

TEST(Table1, AluPufRowInPaperBallpark) {
  const auto rows = table1_rows();
  const auto& alu = rows[0];
  // Within 2x of the paper's 94 LUTs; registers modeled exactly.
  EXPECT_GT(alu.ours.luts, 40u);
  EXPECT_LT(alu.ours.luts, 200u);
  EXPECT_EQ(alu.ours.registers, 80u);
}

TEST(Table1, ObfuscationXorCountExact) {
  // The paper reports 224 LUTs = one per XOR gate (unpacked mapping); our
  // XOR-gate count matches exactly, while 6-LUT packing fits the network
  // in fewer LUTs.
  const auto rows = table1_rows();
  EXPECT_EQ(rows[3].ours.xors, 224u);
  EXPECT_LE(rows[3].ours.luts, 224u);
  EXPECT_GE(rows[3].ours.luts, 32u);
}

TEST(Table1, PdlDominatesPufCore) {
  // The paper's qualitative point: the measurement scaffolding (PDL, SIRC)
  // dwarfs the PUF itself.
  const auto rows = table1_rows();
  EXPECT_GT(rows[4].ours.luts, rows[0].ours.luts * 10);
  EXPECT_GT(rows[5].ours.luts, rows[0].ours.luts * 10);
}

TEST(Table1, SyncLogicTiny) {
  const auto rows = table1_rows();
  EXPECT_LT(rows[1].ours.luts, 16u);
  EXPECT_EQ(rows[1].ours.registers, 7u);
}

}  // namespace
}  // namespace pufatt::fpga
