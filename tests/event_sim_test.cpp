// Event-driven engine tests and cross-validation against the fast
// floating-mode settling engine.
#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "support/rng.hpp"
#include "timingsim/event_sim.hpp"
#include "timingsim/timing_sim.hpp"

namespace pufatt::timingsim {
namespace {

using netlist::GateId;
using netlist::GateKind;
using netlist::Netlist;
using support::Xoshiro256pp;

DelaySet uniform_delays(const Netlist& net, double d) {
  DelaySet delays;
  delays.rise_ps.assign(net.num_gates(), d);
  delays.fall_ps.assign(net.num_gates(), d);
  for (std::size_t g = 0; g < net.num_gates(); ++g) {
    const auto kind = net.gate(static_cast<GateId>(g)).kind;
    if (kind == GateKind::kInput || kind == GateKind::kConst0 ||
        kind == GateKind::kConst1) {
      delays.rise_ps[g] = 0.0;
      delays.fall_ps[g] = 0.0;
    }
  }
  return delays;
}

TEST(EventSim, NoInputChangeNoEvents) {
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId x = net.add_gate(GateKind::kXor, {a, b});
  EventSimulator sim(net);
  const auto states = sim.run({true, false}, {true, false},
                              uniform_delays(net, 2.0));
  EXPECT_EQ(states[x].transitions, 0u);
  EXPECT_TRUE(states[x].value);
}

TEST(EventSim, SingleTransitionPropagates) {
  Netlist net;
  const GateId a = net.add_input("a");
  GateId sig = a;
  for (int i = 0; i < 4; ++i) sig = net.add_gate(GateKind::kBuf, {sig});
  EventSimulator sim(net);
  const auto states = sim.run({false}, {true}, uniform_delays(net, 3.0));
  EXPECT_TRUE(states[sig].value);
  EXPECT_DOUBLE_EQ(states[sig].settle_ps, 12.0);
  EXPECT_EQ(states[sig].transitions, 1u);
}

TEST(EventSim, RiseAndFallDelaysDiffer) {
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId buf = net.add_gate(GateKind::kBuf, {a});
  EventSimulator sim(net);
  auto delays = uniform_delays(net, 1.0);
  delays.rise_ps[buf] = 5.0;
  delays.fall_ps[buf] = 9.0;
  const auto rise = sim.run({false}, {true}, delays);
  EXPECT_DOUBLE_EQ(rise[buf].settle_ps, 5.0);
  const auto fall = sim.run({true}, {false}, delays);
  EXPECT_DOUBLE_EQ(fall[buf].settle_ps, 9.0);
}

TEST(EventSim, StaticHazardProducesGlitch) {
  // Classic hazard: f = (a AND b) OR (NOT a AND b) with b=1 while a flips.
  // The OR output logically stays 1 but glitches when the AND paths race.
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId na = net.add_gate(GateKind::kNot, {a});
  const GateId and1 = net.add_gate(GateKind::kAnd, {a, b});
  const GateId and2 = net.add_gate(GateKind::kAnd, {na, b});
  const GateId out = net.add_gate(GateKind::kOr, {and1, and2});
  EventSimulator sim(net);
  auto delays = uniform_delays(net, 1.0);
  delays.rise_ps[na] = 4.0;  // slow inverter: and1 falls before and2 rises
  delays.fall_ps[na] = 4.0;
  const auto states = sim.run({true, true}, {false, true}, delays);
  EXPECT_TRUE(states[out].value);
  EXPECT_GE(states[out].transitions, 2u) << "expected a 1->0->1 glitch";
}

TEST(EventSim, InertialFilteringSwallowsShortPulses) {
  // Same hazard circuit, but the OR is slower than the input overlap: the
  // dip is shorter than the gate's inertial delay and must be filtered.
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId na = net.add_gate(GateKind::kNot, {a});
  const GateId and1 = net.add_gate(GateKind::kAnd, {a, b});
  const GateId and2 = net.add_gate(GateKind::kAnd, {na, b});
  const GateId out = net.add_gate(GateKind::kOr, {and1, and2});
  EventSimulator sim(net);
  auto delays = uniform_delays(net, 1.0);
  delays.rise_ps[na] = 1.5;
  delays.fall_ps[na] = 1.5;
  delays.rise_ps[out] = 10.0;  // much slower than the 1.5 ps dip
  delays.fall_ps[out] = 10.0;
  const auto states = sim.run({true, true}, {false, true}, delays);
  EXPECT_TRUE(states[out].value);
  EXPECT_EQ(states[out].transitions, 0u) << "pulse must be filtered";
}

TEST(EventSim, ValidatesSizes) {
  Netlist net;
  net.add_input("a");
  EventSimulator sim(net);
  EXPECT_THROW(sim.run({}, {true}, uniform_delays(net, 1.0)),
               std::invalid_argument);
  DelaySet bad;
  EXPECT_THROW(sim.run({true}, {false}, bad), std::invalid_argument);
}

// ------------------------------------------------- cross-engine validation

class CrossEngine : public ::testing::TestWithParam<int> {};

TEST_P(CrossEngine, FinalValuesAgreeOnAluPuf) {
  const auto circuit = netlist::build_alu_puf_circuit(16);
  const TimingSimulator fast(circuit.net);
  const EventSimulator slow(circuit.net);
  Xoshiro256pp rng(500 + GetParam());
  DelaySet delays;
  delays.rise_ps.resize(circuit.net.num_gates());
  delays.fall_ps.resize(circuit.net.num_gates());
  for (std::size_t g = 0; g < circuit.net.num_gates(); ++g) {
    const auto kind = circuit.net.gate(static_cast<GateId>(g)).kind;
    const bool free = kind == GateKind::kInput || kind == GateKind::kConst0 ||
                      kind == GateKind::kConst1;
    delays.rise_ps[g] = free ? 0.0 : rng.uniform(5.0, 30.0);
    delays.fall_ps[g] = free ? 0.0 : rng.uniform(5.0, 30.0);
  }
  std::vector<SignalState> fast_states;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<bool> prev, next;
    for (std::size_t i = 0; i < circuit.net.num_inputs(); ++i) {
      prev.push_back(rng.bernoulli(0.5));
      next.push_back(rng.bernoulli(0.5));
    }
    fast.run(next, delays, fast_states);
    const auto slow_states = slow.run(prev, next, delays);
    for (std::size_t g = 0; g < fast_states.size(); ++g) {
      ASSERT_EQ(slow_states[g].value, fast_states[g].value) << "gate " << g;
    }
  }
}

TEST_P(CrossEngine, FloatingModeIsConservativeForSettledRaces) {
  // On the raced outputs, the event engine's settle time never exceeds the
  // floating-mode estimate by more than the glitch slack, and for zero-to-
  // challenge transitions (monotone-ish) they track closely.  We check the
  // weaker, always-true bound: event settle <= fast settle (floating mode
  // charges the full determination chain; real transitions can only arrive
  // earlier or be filtered).
  const auto circuit = netlist::build_alu_puf_circuit(8);
  const TimingSimulator fast(circuit.net);
  const EventSimulator slow(circuit.net);
  Xoshiro256pp rng(900 + GetParam());
  DelaySet delays;
  delays.rise_ps.resize(circuit.net.num_gates());
  delays.fall_ps.resize(circuit.net.num_gates());
  for (std::size_t g = 0; g < circuit.net.num_gates(); ++g) {
    const auto kind = circuit.net.gate(static_cast<GateId>(g)).kind;
    const bool free = kind == GateKind::kInput || kind == GateKind::kConst0 ||
                      kind == GateKind::kConst1;
    const double d = free ? 0.0 : rng.uniform(10.0, 20.0);
    delays.rise_ps[g] = d;
    delays.fall_ps[g] = d;
  }
  std::vector<SignalState> fast_states;
  const std::vector<bool> zeros(circuit.net.num_inputs(), false);
  int compared = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<bool> next;
    for (std::size_t i = 0; i < circuit.net.num_inputs(); ++i) {
      next.push_back(rng.bernoulli(0.5));
    }
    fast.run(next, delays, fast_states);
    const auto slow_states = slow.run(zeros, next, delays);
    for (const auto& raced : {circuit.race0, circuit.race1}) {
      for (const auto gate : raced) {
        if (slow_states[gate].transitions == 0) continue;  // no change
        EXPECT_LE(slow_states[gate].settle_ps,
                  fast_states[gate].time_ps + 1e-9)
            << "gate " << gate;
        ++compared;
      }
    }
  }
  EXPECT_GT(compared, 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossEngine, ::testing::Range(0, 5));

}  // namespace
}  // namespace pufatt::timingsim
