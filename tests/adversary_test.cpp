// Tests for the adversary lab: variant surfaces, attack learners, the
// replay protocol and the tournament's determinism contracts.  Heavy cells
// run width-16 ALU PUFs (RM(1,4) helper code) and small budgets — the
// full-size matrix lives in bench/attack_matrix.
#include <gtest/gtest.h>

#include <cmath>

#include "adversary/frontends.hpp"
#include "adversary/tournament.hpp"

namespace pufatt::adversary {
namespace {

using support::BitVector;
using support::Xoshiro256pp;

AluVariantParams small_alu() {
  AluVariantParams p;
  p.width = 16;
  p.bit = 8;
  return p;
}

// ------------------------------------------------------------ query oracle

TEST(QueryOracle, AccountsAndClampsBudget) {
  const auto variant = make_arbiter_variant({}, 1);
  QueryOracle oracle(*variant, 100);
  Xoshiro256pp rng(2);
  EXPECT_EQ(oracle.collect(60, rng).size(), 60u);
  EXPECT_EQ(oracle.used(), 60u);
  EXPECT_EQ(oracle.remaining(), 40u);
  // Over-asking clamps to what is left; the oracle never exceeds budget.
  EXPECT_EQ(oracle.collect(60, rng).size(), 40u);
  EXPECT_EQ(oracle.used(), 100u);
  EXPECT_EQ(oracle.collect(10, rng).size(), 0u);
  EXPECT_EQ(oracle.used(), 100u);
}

// ---------------------------------------------------------------- learners

TEST(Mlp, LearnsXorOfTwoBits) {
  // The capability LR structurally lacks: y = x0 XOR x1 on +-1 features.
  Xoshiro256pp rng(3);
  std::vector<mlattack::Example> data;
  for (int t = 0; t < 400; ++t) {
    const bool a = rng.bernoulli(0.5), b = rng.bernoulli(0.5);
    data.push_back(mlattack::Example{
        {a ? 1.0 : -1.0, b ? 1.0 : -1.0, 1.0}, a != b});
  }
  MlpParams params;
  params.hidden_units = 8;
  params.epochs = 120;
  Mlp mlp(3, params.hidden_units, rng);
  mlp.train(data, params, rng);
  EXPECT_GT(mlp.accuracy(data), 0.95);
}

TEST(Cmaes, FitsLinearSeparator) {
  // Direct search recovers a 8-dim halfspace from logistic loss alone.
  Xoshiro256pp rng(4);
  std::vector<double> truth(8);
  for (auto& w : truth) w = rng.gaussian();
  std::vector<mlattack::Example> data;
  for (int t = 0; t < 600; ++t) {
    std::vector<double> x(8);
    double dot = 0.0;
    for (std::size_t i = 0; i < 8; ++i) {
      x[i] = rng.gaussian();
      dot += truth[i] * x[i];
    }
    data.push_back(mlattack::Example{std::move(x), dot > 0.0});
  }
  const auto fitness = [&data](const std::vector<double>& w) {
    double loss = 0.0;
    for (const auto& ex : data) {
      double z = 0.0;
      for (std::size_t i = 0; i < w.size(); ++i) z += w[i] * ex.features[i];
      const double margin = ex.label ? z : -z;
      loss += margin > 0.0 ? std::log1p(std::exp(-margin))
                           : -margin + std::log1p(std::exp(margin));
    }
    return loss / data.size();
  };
  CmaesParams params;
  params.max_generations = 300;
  const auto result =
      cmaes_minimize(fitness, std::vector<double>(8, 0.0), params, rng);
  std::size_t correct = 0;
  for (const auto& ex : data) {
    double z = 0.0;
    for (std::size_t i = 0; i < 8; ++i) z += result.best[i] * ex.features[i];
    if ((z > 0.0) == ex.label) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / data.size(), 0.95);
}

// ------------------------------------------------------- variants x attacks

AttackRunConfig small_run(std::size_t budget) {
  AttackRunConfig config;
  config.budget = budget;
  config.test_queries = 800;
  config.replay_rounds = 30;
  return config;
}

TEST(AttackMatrix, LrBreaksArbiterAndMux) {
  Xoshiro256pp rng(5);
  const LogRegAttack lr;
  auto arbiter = make_arbiter_variant({}, 21);
  const auto r1 = lr.run(*arbiter, small_run(3000), rng);
  EXPECT_GT(r1.test_accuracy, 0.93);
  EXPECT_EQ(r1.queries_used, 3000u);

  // The MUX/arbiter additive-delay baseline is the same model class in the
  // parity feature space, so LR breaks it identically.
  auto mux = make_mux_arbiter_variant({}, 22);
  const auto r2 = lr.run(*mux, small_run(3000), rng);
  EXPECT_GT(r2.test_accuracy, 0.93);
}

TEST(AttackMatrix, NlfsrFrontendDefeatsLr) {
  // Same chip, same attack, only the front end differs: the keyed NLFSR
  // destroys the parity structure LR needs.
  Xoshiro256pp rng(6);
  const LogRegAttack lr;
  auto plain = make_arbiter_variant({}, 23);
  const auto broken = lr.run(*plain, small_run(3000), rng);
  auto obfuscated = make_nlfsr_frontend(make_arbiter_variant({}, 23), 99);
  const auto resisted = lr.run(*obfuscated, small_run(3000), rng);
  EXPECT_GT(broken.test_accuracy, 0.93);
  EXPECT_LT(resisted.test_accuracy, 0.60);
  EXPECT_LT(resisted.train_accuracy, 0.70);  // not even memorizable linearly
}

TEST(AttackMatrix, LatentReconfigTrainsHighTestsLow) {
  // Within one epoch the masked composite is still an additive-delay PUF
  // (mask = sign flips in parity space), so training accuracy is high; the
  // post-budget re-key then strands the learned signs.
  Xoshiro256pp rng(7);
  const LogRegAttack lr;
  auto variant = make_latent_reconfig_frontend(make_arbiter_variant({}, 24), 77);
  const auto r = lr.run(*variant, small_run(3000), rng);
  EXPECT_GT(r.train_accuracy, 0.90);
  EXPECT_LT(r.test_accuracy, 0.60);
}

TEST(AttackMatrix, NlfsrScrambleIsDeterministicAndKeyed) {
  Xoshiro256pp rng(8);
  const auto c = BitVector::random(64, rng);
  const auto a = nlfsr_scramble(c, 5, 128);
  EXPECT_EQ(a, nlfsr_scramble(c, 5, 128));
  EXPECT_NE(a, nlfsr_scramble(c, 6, 128));  // key matters
  EXPECT_NE(a, c);
}

TEST(AttackMatrix, ReplayBreaksArbiterButNotObfuscatedPipeline) {
  Xoshiro256pp rng(9);
  const ReplayAttack replay;
  // Generic threshold verifier: an LR model of a plain arbiter predicts well
  // enough to pass authentication almost always.
  auto arbiter = make_arbiter_variant({}, 25);
  const auto pass = replay.run(*arbiter, small_run(3000), rng);
  EXPECT_GT(pass.replay_acceptance, 0.9);
  EXPECT_EQ(pass.test_accuracy, pass.replay_acceptance);

  // Full pipeline: single forged calls pass disturbingly often (per-bit
  // models err on the same low-margin bits honest noise flips, so distance
  // budgets cannot separate them), but a session of fresh nonces compounds
  // the per-call shortfall and rejects the forger.  Width 32 deliberately —
  // the carry chain of a width-16 PUF is shallow enough that LR predicts
  // references better than honest device noise, so the small variant is
  // legitimately forgeable even session-wise.
  auto pipeline = make_obfuscated_alu_variant({}, 26);
  const auto fail = replay.run(*pipeline, small_run(2000), rng);
  EXPECT_LT(fail.replay_acceptance, 0.3);
}

TEST(AttackMatrix, LeakedEnrollmentModelDefeatsAttestation) {
  // Gao'17's trust-assumption probe: with the verifier's own delay table,
  // replayed transcripts are error-free and always accepted.
  auto pipeline = make_obfuscated_alu_variant(small_alu(), 27);
  const auto* surface = pipeline->attestation_surface();
  ASSERT_NE(surface, nullptr);
  Xoshiro256pp rng(10);
  EXPECT_DOUBLE_EQ(surface->leaked_model_acceptance(25, rng), 1.0);
}

// --------------------------------------------------------------- tournament

Tournament tiny_tournament(std::size_t threads,
                           timingsim::BatchEngine engine) {
  TournamentConfig config;
  config.budgets = {256, 768};
  config.test_queries = 400;
  config.replay_rounds = 10;
  config.threads = threads;
  config.seed = 42;
  config.engine = engine;
  Tournament tournament(config);
  tournament.add_variant("arbiter",
                         [](std::uint64_t chip, timingsim::BatchEngine) {
                           return make_arbiter_variant({}, chip);
                         });
  tournament.add_variant("alu-raw",
                         [](std::uint64_t chip, timingsim::BatchEngine e) {
                           AluVariantParams p = small_alu();
                           p.engine = e;
                           return make_alu_raw_variant(p, chip);
                         });
  mlattack::LogRegParams lr;
  lr.epochs = 20;
  tournament.add_attack(std::make_shared<LogRegAttack>(lr));
  MlpParams mlp;
  mlp.epochs = 10;
  tournament.add_attack(std::make_shared<MlpAttack>(mlp));
  return tournament;
}

TEST(Tournament, MatrixIsThreadInvariant) {
  const auto one =
      tiny_tournament(1, timingsim::BatchEngine::kAuto).run();
  const auto four =
      tiny_tournament(4, timingsim::BatchEngine::kAuto).run();
  EXPECT_EQ(matrix_json(one), matrix_json(four));
  ASSERT_EQ(one.cells.size(), 4u);
  EXPECT_EQ(one.cells.front().reports.size(), 2u);
}

TEST(Tournament, MatrixIsEngineInvariant) {
  // Timing-engine choice must not move a byte of the matrix (the harvest
  // rides eval_batch, whose responses are engine-exact).
  const auto scalar =
      tiny_tournament(1, timingsim::BatchEngine::kScalar).run();
  const auto soa = tiny_tournament(1, timingsim::BatchEngine::kBatch).run();
  const auto sliced =
      tiny_tournament(1, timingsim::BatchEngine::kBitslice).run();
  EXPECT_EQ(matrix_json(scalar), matrix_json(soa));
  EXPECT_EQ(matrix_json(scalar), matrix_json(sliced));
}

TEST(Tournament, FindLocatesCells) {
  const auto result = tiny_tournament(1, timingsim::BatchEngine::kAuto).run();
  ASSERT_NE(result.find("arbiter", "lr"), nullptr);
  ASSERT_NE(result.find("alu-raw", "mlp"), nullptr);
  EXPECT_EQ(result.find("arbiter", "cmaes"), nullptr);
  // The arbiter/LR cell reproduces the break inside the tournament harness.
  EXPECT_GT(result.find("arbiter", "lr")->reports.back().test_accuracy, 0.85);
}

TEST(Tournament, StandardLabRosterShape) {
  TournamentConfig config;
  Tournament tournament(config);
  add_standard_lab(tournament);
  EXPECT_EQ(tournament.variant_count(), 7u);
  EXPECT_EQ(tournament.attack_count(), 4u);
}

}  // namespace
}  // namespace pufatt::adversary
