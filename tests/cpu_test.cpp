#include <gtest/gtest.h>

#include "cpu/assembler.hpp"
#include "cpu/isa.hpp"
#include "cpu/machine.hpp"

namespace pufatt::cpu {
namespace {

// -------------------------------------------------------------------- ISA

TEST(Isa, EncodeDecodeRoundTripAllFormats) {
  const std::vector<Instruction> samples = {
      {Opcode::kAdd, 1, 2, 3, 0},    {Opcode::kSub, 15, 14, 13, 0},
      {Opcode::kAddi, 4, 5, 0, -42}, {Opcode::kLui, 6, 0, 0, 0x1234},
      {Opcode::kLw, 7, 8, 0, 100},   {Opcode::kSw, 0, 9, 10, -8},
      {Opcode::kBeq, 0, 1, 2, -100}, {Opcode::kBge, 0, 3, 4, 2047},
      {Opcode::kJal, 15, 0, 0, -5000}, {Opcode::kJalr, 1, 2, 0, 16},
      {Opcode::kHalt, 0, 0, 0, 0},   {Opcode::kPstart, 0, 0, 0, 0},
      {Opcode::kPend, 5, 0, 0, 0},   {Opcode::kHread, 6, 0, 0, 0},
      {Opcode::kRdcyc, 7, 0, 0, 0},
  };
  for (const auto& inst : samples) {
    const auto decoded = decode(encode(inst));
    EXPECT_EQ(decoded.op, inst.op);
    EXPECT_EQ(decoded.rd, inst.rd) << mnemonic(inst.op);
    EXPECT_EQ(decoded.rs1, inst.rs1) << mnemonic(inst.op);
    EXPECT_EQ(decoded.rs2, inst.rs2) << mnemonic(inst.op);
    EXPECT_EQ(decoded.imm, inst.imm) << mnemonic(inst.op);
  }
}

TEST(Isa, RejectsUnknownOpcode) {
  EXPECT_THROW(decode(0xFF000000u), std::invalid_argument);
  EXPECT_THROW(decode(0x00000000u), std::invalid_argument);
}

TEST(Isa, RejectsOutOfRangeFields) {
  EXPECT_THROW(encode({Opcode::kAdd, 16, 0, 0, 0}), std::invalid_argument);
  EXPECT_THROW(encode({Opcode::kAddi, 1, 1, 0, 1 << 20}),
               std::invalid_argument);
  EXPECT_THROW(encode({Opcode::kBeq, 0, 1, 2, 5000}), std::invalid_argument);
}

TEST(Isa, CycleCosts) {
  EXPECT_EQ(cycle_cost(Opcode::kAdd), 1u);
  EXPECT_EQ(cycle_cost(Opcode::kLw), 2u);
  EXPECT_EQ(cycle_cost(Opcode::kMul), 3u);
  EXPECT_GT(cycle_cost(Opcode::kPend), 10u);
}

// -------------------------------------------------------------- Assembler

TEST(Assembler, BasicProgram) {
  const auto result = assemble(R"(
    ; compute 6*7 the slow way
    start: addi r1, r0, 6
           addi r2, r0, 7
           mul  r3, r1, r2
           halt
  )");
  EXPECT_EQ(result.words.size(), 4u);
  EXPECT_EQ(result.labels.at("start"), 0u);
}

TEST(Assembler, LabelsResolveToRelativeOffsets) {
  const auto result = assemble(R"(
        addi r1, r0, 3
  loop: addi r1, r1, -1
        bne  r1, r0, loop
        halt
  )");
  const auto branch = decode(result.words[2]);
  EXPECT_EQ(branch.op, Opcode::kBne);
  EXPECT_EQ(branch.imm, -1);
}

TEST(Assembler, MemoryOperands) {
  const auto result = assemble("lw r2, 8(r3)\nsw r2, -4(r5)\n");
  const auto lw = decode(result.words[0]);
  EXPECT_EQ(lw.rd, 2);
  EXPECT_EQ(lw.rs1, 3);
  EXPECT_EQ(lw.imm, 8);
  const auto sw = decode(result.words[1]);
  EXPECT_EQ(sw.rs2, 2);
  EXPECT_EQ(sw.rs1, 5);
  EXPECT_EQ(sw.imm, -4);
}

TEST(Assembler, WordDirectiveAndHex) {
  const auto result = assemble(".word 0xdeadbeef\n.word -1\n");
  EXPECT_EQ(result.words[0], 0xdeadbeefu);
  EXPECT_EQ(result.words[1], 0xffffffffu);
}

TEST(Assembler, CommentsAndBlankLines) {
  const auto result = assemble(R"(
    # full line comment

    addi r1, r0, 1  ; trailing comment
  )");
  EXPECT_EQ(result.words.size(), 1u);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("addi r1, r0, 1\nbogus r1\n");
    FAIL() << "expected AssemblyError";
  } catch (const AssemblyError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Assembler, RejectsBadInput) {
  EXPECT_THROW(assemble("addi r1, r0\n"), AssemblyError);       // arity
  EXPECT_THROW(assemble("addi r99, r0, 1\n"), AssemblyError);   // register
  EXPECT_THROW(assemble("beq r1, r0, nowhere\n"), AssemblyError);
  EXPECT_THROW(assemble("lw r1, r2\n"), AssemblyError);         // mem syntax
  EXPECT_THROW(assemble("x: halt\nx: halt\n"), AssemblyError);  // dup label
  EXPECT_THROW(assemble("123bad: halt\n"), AssemblyError);      // label name
}

TEST(Assembler, ForwardReferences) {
  const auto result = assemble(R"(
        jal r0, end
        halt
  end:  halt
  )");
  const auto jal = decode(result.words[0]);
  EXPECT_EQ(jal.imm, 2);
}

// ---------------------------------------------------------------- Machine

Machine run_program(const std::string& source,
                    std::uint64_t max_cycles = 1'000'000) {
  Machine machine(4096);
  machine.load(assemble(source).words);
  const auto result = machine.run(max_cycles);
  EXPECT_TRUE(result.halted);
  return machine;
}

TEST(Machine, ArithmeticAndR0) {
  const auto m = run_program(R"(
    addi r1, r0, 21
    add  r2, r1, r1
    sub  r3, r2, r1
    add  r0, r1, r1   ; writes to r0 are discarded
    halt
  )");
  EXPECT_EQ(m.reg(2), 42u);
  EXPECT_EQ(m.reg(3), 21u);
  EXPECT_EQ(m.reg(0), 0u);
}

TEST(Machine, LogicAndShifts) {
  const auto m = run_program(R"(
    addi r1, r0, 0xF0
    addi r2, r0, 0x0F
    and  r3, r1, r2
    or   r4, r1, r2
    xor  r5, r1, r2
    slli r6, r2, 4
    srli r7, r1, 4
    addi r8, r0, -16
    srai r9, r8, 2
    halt
  )");
  EXPECT_EQ(m.reg(3), 0u);
  EXPECT_EQ(m.reg(4), 0xFFu);
  EXPECT_EQ(m.reg(5), 0xFFu);
  EXPECT_EQ(m.reg(6), 0xF0u);
  EXPECT_EQ(m.reg(7), 0x0Fu);
  EXPECT_EQ(m.reg(9), static_cast<std::uint32_t>(-4));
}

TEST(Machine, SignedVsUnsignedCompare) {
  const auto m = run_program(R"(
    addi r1, r0, -1
    addi r2, r0, 1
    slt  r3, r1, r2   ; -1 < 1 signed -> 1
    sltu r4, r1, r2   ; 0xffffffff < 1 unsigned -> 0
    halt
  )");
  EXPECT_EQ(m.reg(3), 1u);
  EXPECT_EQ(m.reg(4), 0u);
}

TEST(Machine, LuiBuildsConstants) {
  const auto m = run_program(R"(
    lui  r1, 0xdead
    ori  r1, r1, 0xbeef
    halt
  )");
  EXPECT_EQ(m.reg(1), 0xdeadbeefu);
}

TEST(Machine, LoadStore) {
  const auto m = run_program(R"(
    addi r1, r0, 100
    addi r2, r0, 1234
    sw   r2, 0(r1)
    sw   r2, 1(r1)
    lw   r3, 1(r1)
    halt
  )");
  EXPECT_EQ(m.reg(3), 1234u);
  EXPECT_EQ(m.mem(100), 1234u);
  EXPECT_EQ(m.mem(101), 1234u);
}

TEST(Machine, LoopAndBranches) {
  // Sum 1..10 = 55.
  const auto m = run_program(R"(
        addi r1, r0, 10
        addi r2, r0, 0
  loop: add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
  )");
  EXPECT_EQ(m.reg(2), 55u);
}

TEST(Machine, JalAndJalrSubroutine) {
  const auto m = run_program(R"(
        addi r1, r0, 5
        jal  r15, double
        add  r3, r2, r0
        halt
  double:
        add  r2, r1, r1
        jalr r0, r15, 0
  )");
  EXPECT_EQ(m.reg(3), 10u);
}

TEST(Machine, CycleCountingMatchesCosts) {
  Machine m(1024);
  m.load(assemble(R"(
    addi r1, r0, 1   ; 1
    lw   r2, 0(r0)   ; 2
    mul  r3, r1, r1  ; 3
    halt             ; 1
  )").words);
  const auto result = m.run();
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(result.cycles, 7u);
}

TEST(Machine, TakenBranchCostsExtra) {
  Machine taken(1024), not_taken(1024);
  taken.load(assemble("beq r0, r0, 2\nhalt\nhalt\n").words);
  not_taken.load(assemble("bne r1, r0, 2\nhalt\nhalt\n").words);
  EXPECT_EQ(taken.run().cycles, not_taken.run().cycles + kTakenBranchPenalty);
}

TEST(Machine, WallTimeFollowsClock) {
  Machine m(64);
  m.set_clock_mhz(100.0);
  EXPECT_DOUBLE_EQ(m.wall_time_us(100), 1.0);
  m.set_clock_mhz(200.0);
  EXPECT_DOUBLE_EQ(m.wall_time_us(100), 0.5);
  EXPECT_DOUBLE_EQ(m.cycle_ps(), 5000.0);
  EXPECT_THROW(m.set_clock_mhz(0.0), MachineError);
}

TEST(Machine, RdcycReadsCycleCounter) {
  const auto m = run_program(R"(
    addi r1, r0, 1
    addi r1, r0, 1
    rdcyc r2
    halt
  )");
  EXPECT_EQ(m.reg(2), 3u);  // two addis + rdcyc itself charged first
}

TEST(Machine, MaxCyclesStopsRunawayPrograms) {
  Machine m(64);
  m.load(assemble("spin: jal r0, spin\n").words);
  const auto result = m.run(1000);
  EXPECT_FALSE(result.halted);
  EXPECT_GE(result.cycles, 1000u);
}

TEST(Machine, Traps) {
  Machine m(64);
  m.load(assemble("lw r1, 0(r0)\nhalt\n").words);
  m.set_reg(1, 0);
  // Bad memory access.
  Machine bad(64);
  bad.load(assemble("lw r1, 9999(r0)\nhalt\n").words);
  EXPECT_THROW(bad.run(), MachineError);
  // Decode fault on data.
  Machine data(64);
  data.load({0x00000000u});
  EXPECT_THROW(data.run(), MachineError);
  // PUF instructions without a PUF block.
  Machine nopuf(64);
  nopuf.load(assemble("pstart\nhalt\n").words);
  EXPECT_THROW(nopuf.run(), MachineError);
  // pend without pstart.
  Machine nostart(64);
  nostart.load(assemble("pend r1\nhalt\n").words);
  struct NullPort : PufPort {
    void start() override {}
    void feed(std::uint64_t, double) override {}
    std::uint32_t finish(std::vector<std::uint32_t>&) override { return 0; }
  } port;
  nostart.attach_puf(&port);
  EXPECT_THROW(nostart.run(), MachineError);
  // hread on empty FIFO.
  Machine nofifo(64);
  nofifo.load(assemble("hread r1\nhalt\n").words);
  nofifo.attach_puf(&port);
  EXPECT_THROW(nofifo.run(), MachineError);
}

TEST(Machine, ResetPreservesMemory) {
  Machine m(64);
  m.load(assemble("addi r1, r0, 7\nsw r1, 32(r0)\nhalt\n").words);
  m.run();
  EXPECT_EQ(m.reg(1), 7u);
  m.reset();
  EXPECT_EQ(m.reg(1), 0u);
  EXPECT_EQ(m.pc(), 0u);
  EXPECT_EQ(m.cycles(), 0u);
  EXPECT_EQ(m.mem(32), 7u);
}

// ----------------------------------------------------------- PUF port path

class RecordingPort : public PufPort {
 public:
  void start() override {
    started = true;
    challenges.clear();
  }
  void feed(std::uint64_t challenge, double cycle_ps) override {
    challenges.push_back(challenge);
    last_cycle_ps = cycle_ps;
  }
  std::uint32_t finish(std::vector<std::uint32_t>& helper_words) override {
    helper_words = {0xAAA, 0xBBB};
    return 0x12345678;
  }
  bool started = false;
  std::vector<std::uint64_t> challenges;
  double last_cycle_ps = 0.0;
};

TEST(Machine, PufInstructionSequence) {
  Machine m(1024);
  RecordingPort port;
  m.attach_puf(&port);
  m.load(assemble(R"(
    lui  r1, 0x1111
    addi r2, r0, 0x222
    pstart
    add  r3, r1, r2     ; PUF-mode add: challenge = (r1 << 32) | r2
    pend r4
    hread r5
    hread r6
    halt
  )").words);
  m.run();
  EXPECT_TRUE(port.started);
  ASSERT_EQ(port.challenges.size(), 1u);
  EXPECT_EQ(port.challenges[0],
            (static_cast<std::uint64_t>(0x11110000u) << 32) | 0x222u);
  EXPECT_DOUBLE_EQ(port.last_cycle_ps, m.cycle_ps());
  // The add also produced its architectural result.
  EXPECT_EQ(m.reg(3), 0x11110000u + 0x222u);
  EXPECT_EQ(m.reg(4), 0x12345678u);
  EXPECT_EQ(m.reg(5), 0xAAAu);
  EXPECT_EQ(m.reg(6), 0xBBBu);
}

TEST(Machine, NormalModeAddDoesNotTouchPuf) {
  Machine m(1024);
  RecordingPort port;
  m.attach_puf(&port);
  m.load(assemble("add r1, r2, r3\nhalt\n").words);
  m.run();
  EXPECT_TRUE(port.challenges.empty());
}

TEST(Machine, PendLeavesPufMode) {
  Machine m(1024);
  RecordingPort port;
  m.attach_puf(&port);
  m.load(assemble(R"(
    pstart
    add  r1, r0, r0
    pend r2
    add  r3, r0, r0   ; normal mode again
    halt
  )").words);
  m.run();
  EXPECT_EQ(port.challenges.size(), 1u);
}

}  // namespace
}  // namespace pufatt::cpu
