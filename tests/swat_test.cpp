#include <gtest/gtest.h>

#include "cpu/assembler.hpp"
#include "cpu/machine.hpp"
#include "support/rng.hpp"
#include "swat/checksum.hpp"
#include "swat/program.hpp"

namespace pufatt::swat {
namespace {

// A deterministic stand-in for the PUF pipeline: z = mix of the challenges.
// Lets the SWAT tests check native-vs-CPU agreement without the (slower)
// full gate-level PUF; the real integration runs in core_test.cpp.
class FakePuf final : public cpu::PufPort {
 public:
  // --- cpu::PufPort (prover side) ---
  void start() override { challenges_.fill(0); count_ = 0; }
  void feed(std::uint64_t challenge, double) override {
    if (count_ < 8) challenges_[count_] = challenge;
    ++count_;
  }
  std::uint32_t finish(std::vector<std::uint32_t>& helpers) override {
    helpers.clear();
    for (unsigned h = 0; h < 8; ++h) {
      helpers.push_back(static_cast<std::uint32_t>(
          support::SplitMix64::mix(challenges_[h] + h)));
    }
    return z(challenges_);
  }

  // --- native query (verifier side) ---
  static std::uint32_t z(const std::array<std::uint64_t, 8>& challenges) {
    std::uint64_t acc = 0x9e3779b97f4a7c15ULL;
    for (const auto c : challenges) acc = support::SplitMix64::mix(acc ^ c);
    return static_cast<std::uint32_t>(acc);
  }
  static std::optional<std::uint32_t> query(
      const std::array<std::uint64_t, 8>& challenges) {
    return z(challenges);
  }

  unsigned feeds() const { return count_; }

 private:
  std::array<std::uint64_t, 8> challenges_{};
  unsigned count_ = 0;
};

SwatParams small_params() {
  SwatParams params;
  params.rounds = 256;
  params.puf_interval = 64;
  params.attest_words = 1024;
  return params;
}

std::vector<std::uint32_t> random_image(std::size_t words, std::uint64_t seed) {
  support::Xoshiro256pp rng(seed);
  std::vector<std::uint32_t> image(words);
  for (auto& w : image) w = static_cast<std::uint32_t>(rng.next());
  return image;
}

// ---------------------------------------------------------------- params

TEST(SwatParams, Validation) {
  EXPECT_NO_THROW(validate(SwatParams{}));
  EXPECT_THROW(validate(SwatParams{.rounds = 7}), std::invalid_argument);
  EXPECT_THROW(validate(SwatParams{.puf_interval = 12}), std::invalid_argument);
  EXPECT_THROW(validate(SwatParams{.rounds = 64, .puf_interval = 48}),
               std::invalid_argument);
  EXPECT_THROW(validate(SwatParams{.attest_words = 1000}),
               std::invalid_argument);
  EXPECT_THROW(validate(SwatParams{.attest_words = 1 << 17}),
               std::invalid_argument);
}

TEST(SwatLayout, StandardOutsideAttestedRegion) {
  const auto params = small_params();
  const auto layout = SwatLayout::standard(params);
  EXPECT_GE(layout.seed_addr, params.attest_words);
  EXPECT_NO_THROW(validate(params, layout));
  SwatLayout bad = layout;
  bad.result_addr = 10;
  EXPECT_THROW(validate(params, bad), std::invalid_argument);
}

// ------------------------------------------------------------ native engine

TEST(Checksum, DeterministicAndSeedSensitive) {
  const auto params = small_params();
  const auto image = random_image(params.attest_words, 1);
  const auto r1 = compute_checksum(image, 42, params, FakePuf::query);
  const auto r2 = compute_checksum(image, 42, params, FakePuf::query);
  const auto r3 = compute_checksum(image, 43, params, FakePuf::query);
  EXPECT_EQ(r1.state, r2.state);
  EXPECT_NE(r1.state, r3.state);
  EXPECT_EQ(r1.puf_calls, params.rounds / params.puf_interval);
  EXPECT_TRUE(r1.ok);
}

TEST(Checksum, SensitiveToEveryMemoryWord) {
  // Flipping any single sampled word must change the checksum.  With 256
  // rounds over 1024 words not every word is sampled, so flip words that
  // are guaranteed-hit by flipping one and checking sensitivity holds for
  // at least the vast majority of positions tried.
  const auto params = small_params();
  const auto image = random_image(params.attest_words, 2);
  const auto baseline = compute_checksum(image, 7, params, FakePuf::query);
  support::Xoshiro256pp rng(3);
  int changed = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    auto tampered = image;
    tampered[rng.uniform_u64(params.attest_words)] ^= 0x80000000u;
    if (compute_checksum(tampered, 7, params, FakePuf::query).state !=
        baseline.state) {
      ++changed;
    }
  }
  // 256 rounds / 1024 words: each word sampled with p ~ 22%; expect some
  // detections but not all (that is exactly why real runs use more rounds).
  EXPECT_GT(changed, 0);
}

TEST(Checksum, FullCoverageParamsDetectEveryFlip) {
  // With rounds >> words the sampling covers everything w.h.p.
  SwatParams params;
  params.rounds = 2048;
  params.puf_interval = 256;
  params.attest_words = 256;
  const auto image = random_image(params.attest_words, 4);
  const auto baseline = compute_checksum(image, 9, params, FakePuf::query);
  support::Xoshiro256pp rng(5);
  for (int t = 0; t < 25; ++t) {
    auto tampered = image;
    tampered[rng.uniform_u64(params.attest_words)] += 1;
    EXPECT_NE(compute_checksum(tampered, 9, params, FakePuf::query).state,
              baseline.state);
  }
}

TEST(Checksum, PufOutputAffectsChecksum) {
  const auto params = small_params();
  const auto image = random_image(params.attest_words, 6);
  const auto with_real = compute_checksum(image, 11, params, FakePuf::query);
  const auto with_zero = compute_checksum(
      image, 11, params, [](const auto&) { return std::uint32_t{0}; });
  EXPECT_NE(with_real.state, with_zero.state);
}

TEST(Checksum, PufFailurePropagates) {
  const auto params = small_params();
  const auto image = random_image(params.attest_words, 7);
  const auto result = compute_checksum(
      image, 13, params, [](const auto&) { return std::nullopt; });
  EXPECT_FALSE(result.ok);
}

TEST(Checksum, RejectsBadInputs) {
  const auto params = small_params();
  const auto image = random_image(params.attest_words, 8);
  EXPECT_THROW(compute_checksum(image, 0, params, FakePuf::query),
               std::invalid_argument);
  const std::vector<std::uint32_t> tiny(8, 0);
  EXPECT_THROW(compute_checksum(tiny, 1, params, FakePuf::query),
               std::invalid_argument);
}

TEST(Checksum, XorshiftNeverZero) {
  std::uint32_t a = 1;
  for (int i = 0; i < 100000; ++i) {
    a = xorshift32(a);
    ASSERT_NE(a, 0u);
  }
}

TEST(Checksum, DerivedChallengesMatchSpec) {
  // Operands are (A, ~A): every query drives the full carry chain.
  std::array<std::uint32_t, 8> state{};
  for (unsigned i = 0; i < 8; ++i) state[i] = 0x100 + i;
  const auto ch = derive_puf_challenges(state, 0xAB);
  EXPECT_EQ(ch[0], (std::uint64_t{0x100} << 32) | ~std::uint32_t{0x100});
  EXPECT_EQ(ch[7], (std::uint64_t{0x107} << 32) | ~std::uint32_t{0x107});
}

// ----------------------------------------------------- CPU == native engine

struct CpuRun {
  std::array<std::uint32_t, 8> state{};
  std::uint64_t cycles = 0;
  std::vector<std::uint32_t> helpers;
};

CpuRun run_on_cpu(const std::string& source, const SwatParams& params,
                  const SwatLayout& layout,
                  const std::vector<std::uint32_t>& image, std::uint32_t seed,
                  cpu::PufPort& puf) {
  const auto program = cpu::assemble(source);
  EXPECT_LE(program.words.size(), params.attest_words);
  const std::size_t helper_words =
      static_cast<std::size_t>(params.rounds / params.puf_interval) * 8;
  cpu::Machine machine(layout.helper_addr + helper_words + 4096);
  // The enrolled image IS the attested memory (program + data).
  std::vector<std::uint32_t> memory = image;
  machine.load(memory, 0);
  machine.set_mem(layout.seed_addr, seed);
  machine.attach_puf(&puf);
  const auto result = machine.run(1'000'000'000ULL);
  EXPECT_TRUE(result.halted);
  CpuRun run;
  run.cycles = result.cycles;
  for (unsigned i = 0; i < 8; ++i) {
    run.state[i] = machine.mem(layout.result_addr + i);
  }
  const std::uint32_t helper_end = machine.mem(layout.helper_ptr_addr);
  for (std::uint32_t a = layout.helper_addr; a < helper_end; ++a) {
    run.helpers.push_back(machine.mem(a));
  }
  return run;
}

/// Builds the enrolled image: the honest program at 0, random data after.
std::vector<std::uint32_t> enrolled_image(const SwatParams& params,
                                          const SwatLayout& layout,
                                          std::uint64_t data_seed) {
  const auto program =
      cpu::assemble(generate_swat_source(params, layout)).words;
  auto image = random_image(params.attest_words, data_seed);
  for (std::size_t i = 0; i < program.size(); ++i) image[i] = program[i];
  return image;
}

TEST(SwatProgram, CpuMatchesNativeReference) {
  const auto params = small_params();
  const auto layout = SwatLayout::standard(params);
  for (const std::uint32_t seed : {1u, 42u, 0xdeadbeefu}) {
    const auto image = enrolled_image(params, layout, 100 + seed);
    FakePuf puf;
    const auto cpu_run = run_on_cpu(generate_swat_source(params, layout),
                                    params, layout, image, seed, puf);
    const auto native = compute_checksum(image, seed, params, FakePuf::query);
    EXPECT_EQ(cpu_run.state, native.state) << "seed " << seed;
    EXPECT_EQ(cpu_run.helpers.size(), native.puf_calls * 8);
  }
}

TEST(SwatProgram, CycleCountIsInputIndependent) {
  const auto params = small_params();
  const auto layout = SwatLayout::standard(params);
  FakePuf puf;
  const auto a = run_on_cpu(generate_swat_source(params, layout), params,
                            layout, enrolled_image(params, layout, 1), 5, puf);
  const auto b = run_on_cpu(generate_swat_source(params, layout), params,
                            layout, enrolled_image(params, layout, 2), 9, puf);
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(SwatProgram, HonestCycleEstimateMatchesSimulation) {
  const auto params = small_params();
  const auto layout = SwatLayout::standard(params);
  FakePuf puf;
  const auto run = run_on_cpu(generate_swat_source(params, layout), params,
                              layout, enrolled_image(params, layout, 3), 7, puf);
  EXPECT_EQ(honest_cycle_estimate(params), run.cycles);
}

TEST(SwatProgram, RedirectionAttackComputesCorrectChecksumButSlower) {
  // The central soundness experiment: the adversary tampers with the
  // attested image, hides a pristine copy above the region, and redirects
  // checksum reads.  The checksum comes out right; the cycle count does not.
  const auto params = small_params();
  const auto layout = SwatLayout::standard(params);
  const auto honest_image = enrolled_image(params, layout, 50);

  // First generate with placeholder sizes just to learn the program length,
  // then re-generate with the real protected size (the instruction count is
  // independent of the field values).
  RedirectAttack attack;
  attack.protected_words = 1;
  attack.copy_addr = 20000;
  const auto attack_words =
      cpu::assemble(generate_swat_source(params, layout, attack)).words;
  RedirectAttack sized;
  sized.protected_words = static_cast<std::uint32_t>(attack_words.size());
  sized.copy_addr = 20000;
  const auto sized_source = generate_swat_source(params, layout, sized);
  const auto sized_words = cpu::assemble(sized_source).words;
  ASSERT_LE(sized_words.size(), sized.protected_words + 8);
  sized.protected_words = static_cast<std::uint32_t>(sized_words.size());
  const auto final_source = generate_swat_source(params, layout, sized);
  const auto final_words = cpu::assemble(final_source).words;
  ASSERT_EQ(final_words.size(), sized_words.size());

  // Compose the attacked memory: tampered region = attacker program.
  std::vector<std::uint32_t> memory = honest_image;
  for (std::size_t i = 0; i < final_words.size(); ++i) {
    memory[i] = final_words[i];
  }
  // Pristine copy of the enrolled words the attacker destroyed.
  FakePuf puf;
  const std::size_t helper_words =
      static_cast<std::size_t>(params.rounds / params.puf_interval) * 8;
  cpu::Machine machine(24000 + helper_words);
  machine.load(memory, 0);
  for (std::size_t i = 0; i < sized.protected_words; ++i) {
    machine.set_mem(sized.copy_addr + static_cast<std::uint32_t>(i),
                    honest_image[i]);
  }
  machine.set_mem(layout.seed_addr, 77);
  machine.attach_puf(&puf);
  const auto result = machine.run(1'000'000'000ULL);
  ASSERT_TRUE(result.halted);

  std::array<std::uint32_t, 8> state{};
  for (unsigned i = 0; i < 8; ++i) state[i] = machine.mem(layout.result_addr + i);

  // 1) Checksum equals the honest checksum over the enrolled image.
  const auto expected = compute_checksum(honest_image, 77, params, FakePuf::query);
  EXPECT_EQ(state, expected.state);

  // 2) But the attack costs measurably more cycles than the honest run.
  const auto honest_cycles = honest_cycle_estimate(params);
  EXPECT_GT(result.cycles, honest_cycles * 110 / 100)
      << "attack overhead must exceed 10% for the time bound to catch it";
}

TEST(SwatProgram, AttackGeneratorValidatesFields) {
  const auto params = small_params();
  const auto layout = SwatLayout::standard(params);
  RedirectAttack bad;
  bad.protected_words = 0;
  EXPECT_THROW(generate_swat_source(params, layout, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace pufatt::swat
