#include <gtest/gtest.h>

#include "ecc/reed_muller.hpp"
#include "mlattack/attack.hpp"
#include "mlattack/dataset.hpp"
#include "mlattack/logreg.hpp"

namespace pufatt::mlattack {
namespace {

using support::BitVector;
using support::Xoshiro256pp;

// ---------------------------------------------------------------- LogReg

TEST(LogisticRegression, RejectsZeroFeatures) {
  EXPECT_THROW(LogisticRegression(0), std::invalid_argument);
}

TEST(LogisticRegression, PredictValidatesSize) {
  LogisticRegression model(3);
  EXPECT_THROW(model.predict_probability({1.0}), std::invalid_argument);
}

TEST(LogisticRegression, UntrainedPredictsHalf) {
  LogisticRegression model(4);
  EXPECT_DOUBLE_EQ(model.predict_probability({1, 1, 1, 1}), 0.5);
}

TEST(LogisticRegression, LearnsLinearlySeparableData) {
  // Labels = sign of a fixed linear function: LR must reach ~100%.
  Xoshiro256pp rng(1);
  const std::vector<double> true_w{1.5, -2.0, 0.7, 0.0, 0.3};
  std::vector<Example> train, test;
  auto make = [&](std::size_t n, std::vector<Example>& out) {
    for (std::size_t i = 0; i < n; ++i) {
      Example ex;
      double z = 0.0;
      for (const auto w : true_w) {
        ex.features.push_back(rng.gaussian());
        z += w * ex.features.back();
      }
      ex.label = z > 0.0;
      out.push_back(std::move(ex));
    }
  };
  make(2000, train);
  make(500, test);
  LogisticRegression model(true_w.size());
  model.train(train, {}, rng);
  EXPECT_GT(model.accuracy(test), 0.95);
}

TEST(LogisticRegression, RandomLabelsStayNearChance) {
  Xoshiro256pp rng(2);
  std::vector<Example> train, test;
  for (int i = 0; i < 1500; ++i) {
    Example ex;
    for (int f = 0; f < 8; ++f) ex.features.push_back(rng.gaussian());
    ex.label = rng.bernoulli(0.5);
    (i < 1000 ? train : test).push_back(std::move(ex));
  }
  LogisticRegression model(8);
  model.train(train, {}, rng);
  EXPECT_LT(model.accuracy(test), 0.60);
}

TEST(LogisticRegression, EmptyDatasetIsNoop) {
  Xoshiro256pp rng(3);
  LogisticRegression model(2);
  EXPECT_NO_THROW(model.train({}, {}, rng));
  EXPECT_DOUBLE_EQ(model.accuracy({}), 0.0);
}

// ---------------------------------------------------------------- features

TEST(Features, ArbiterParityTransform) {
  const auto phi = arbiter_features(BitVector::from_string("0000"));
  for (const auto v : phi) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Features, AluFeatureLayout) {
  Xoshiro256pp rng(4);
  const auto c = BitVector::random(32, rng);  // width 16
  const auto f = alu_features(c);
  EXPECT_EQ(f.size(), 32u + 16u + 1u);
  EXPECT_DOUBLE_EQ(f.back(), 1.0);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(f[i], c.get(i) ? 1.0 : -1.0);
  }
  for (std::size_t i = 0; i < 16; ++i) {
    const bool p = c.get(i) != c.get(16 + i);
    EXPECT_DOUBLE_EQ(f[32 + i], p ? 1.0 : -1.0);
  }
}

TEST(Features, WordFeatures) {
  const auto f = word_features(0x1ULL);
  EXPECT_EQ(f.size(), 65u);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[1], -1.0);
  EXPECT_DOUBLE_EQ(f.back(), 1.0);
}

// ------------------------------------------------------------ full attacks

TEST(Attack, ArbiterPufIsBroken) {
  // The textbook result (paper ref [27]): a few thousand CRPs suffice to
  // model a plain arbiter PUF with high accuracy.
  const alupuf::ArbiterPuf puf({.stages = 64, .noise_sigma = 0.02}, 11);
  Xoshiro256pp rng(5);
  AttackConfig config;
  config.test_crps = 1000;
  const auto result = attack_arbiter(puf, 4000, rng, config);
  EXPECT_GT(result.test_accuracy, 0.93);
}

TEST(Attack, ArbiterAccuracyGrowsWithCrps) {
  const alupuf::ArbiterPuf puf({.stages = 64, .noise_sigma = 0.02}, 12);
  Xoshiro256pp rng(6);
  AttackConfig config;
  config.test_crps = 800;
  const auto small = attack_arbiter(puf, 200, rng, config);
  const auto large = attack_arbiter(puf, 4000, rng, config);
  EXPECT_GT(large.test_accuracy, small.test_accuracy);
}

TEST(Attack, RawAluPufBitLeaksAboveChance) {
  // Raw (pre-obfuscation) response bits are partially predictable from the
  // challenge — the reason the paper adds the obfuscation network.
  alupuf::AluPufConfig config;
  config.width = 16;
  const alupuf::AluPuf puf(config, 21);
  Xoshiro256pp rng(7);
  AttackConfig attack_config;
  attack_config.test_crps = 1000;
  // Bit 8: mid-chain bit with substantial carry-dependence.
  const auto result = attack_alu_raw_bit(puf, 8, 3000, rng, attack_config);
  EXPECT_GT(result.test_accuracy, 0.62);
}

TEST(Attack, ObfuscatedOutputResists) {
  // After the two-phase XOR over 8 responses, LR on the protocol challenge
  // stays near coin-flip accuracy — the paper's central obfuscation claim.
  const ecc::ReedMuller1 code(5);
  alupuf::AluPufConfig config;
  config.width = 32;
  const alupuf::PufDevice device(config, 22, code);
  Xoshiro256pp rng(8);
  AttackConfig attack_config;
  attack_config.test_crps = 600;
  const auto result = attack_obfuscated_bit(device, 5, 1500, rng, attack_config);
  EXPECT_LT(result.test_accuracy, 0.58);
  EXPECT_GT(result.test_accuracy, 0.42);
}

// ----------------------------------------------- parallel CRP collection

bool same_examples(const std::vector<Example>& a,
                   const std::vector<Example>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].label != b[i].label || a[i].features != b[i].features) {
      return false;
    }
  }
  return true;
}

TEST(ParallelCrp, AluRawInvariantAcrossThreadCounts) {
  // The determinism contract: fixed block boundaries + per-shard seeds =>
  // the dataset is a pure function of (seed, count, block), not threads.
  const alupuf::AluPuf puf(
      [] {
        alupuf::AluPufConfig c;
        c.width = 16;
        return c;
      }(),
      7);
  ParallelCrpConfig config;
  config.block = 64;
  config.seed = 5;
  config.threads = 1;
  const auto one = collect_alu_raw_parallel(puf, 3, 500, config);
  config.threads = 2;
  const auto two = collect_alu_raw_parallel(puf, 3, 500, config);
  config.threads = 8;
  const auto eight = collect_alu_raw_parallel(puf, 3, 500, config);
  ASSERT_EQ(one.size(), 500u);
  EXPECT_TRUE(same_examples(one, two));
  EXPECT_TRUE(same_examples(one, eight));
  // Sanity: labels are not degenerate.
  std::size_t ones = 0;
  for (const auto& e : one) ones += e.label ? 1 : 0;
  EXPECT_GT(ones, 50u);
  EXPECT_LT(ones, 450u);
}

TEST(ParallelCrp, SequentialDatasetsAreEngineInvariant) {
  // collect_alu_raw / collect_obfuscated harvest through one eval_batch /
  // query_batch call; by the exactness contract the engine parameter must
  // never move a label byte.
  const alupuf::AluPuf puf(
      [] {
        alupuf::AluPufConfig c;
        c.width = 16;
        return c;
      }(),
      11);
  using timingsim::BatchEngine;
  const auto collect_with = [&](BatchEngine engine) {
    Xoshiro256pp rng(31);  // identical caller stream per engine
    return collect_alu_raw(puf, 4, 200, rng, engine);
  };
  const auto scalar = collect_with(BatchEngine::kScalar);
  EXPECT_TRUE(same_examples(scalar, collect_with(BatchEngine::kBatch)));
  EXPECT_TRUE(same_examples(scalar, collect_with(BatchEngine::kBitslice)));

  const ecc::ReedMuller1 code(4);
  const alupuf::PufDevice device(
      [] {
        alupuf::AluPufConfig c;
        c.width = 16;
        return c;
      }(),
      13, code);
  const auto collect_obf_with = [&](BatchEngine engine) {
    Xoshiro256pp rng(33);
    return collect_obfuscated(device, 3, 96, rng, engine);
  };
  const auto obf_scalar = collect_obf_with(BatchEngine::kScalar);
  EXPECT_TRUE(same_examples(obf_scalar, collect_obf_with(BatchEngine::kBatch)));
  EXPECT_TRUE(
      same_examples(obf_scalar, collect_obf_with(BatchEngine::kBitslice)));
}

TEST(ParallelCrp, ObfuscatedInvariantAcrossThreadCounts) {
  const ecc::ReedMuller1 code(5);
  const alupuf::PufDevice device(alupuf::AluPufConfig{}, 9, code);
  ParallelCrpConfig config;
  config.block = 32;
  config.seed = 12;
  config.threads = 1;
  const auto one = collect_obfuscated_parallel(device, 5, 128, config);
  config.threads = 8;
  const auto eight = collect_obfuscated_parallel(device, 5, 128, config);
  ASSERT_EQ(one.size(), 128u);
  EXPECT_TRUE(same_examples(one, eight));
}

}  // namespace
}  // namespace pufatt::mlattack
