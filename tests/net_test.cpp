// Network front-end tests: frame codecs and the incremental decoder under
// adversarial chunking, the event loop on both backends, and the
// AttestationServer's lifecycle/backpressure/shedding rules end-to-end
// over real sockets (TCP loopback and Unix domain).  Every multi-threaded
// test here is expected to run clean under -DPUFATT_TSAN=ON.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "net/fleet.hpp"
#include "net/frame.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/trace.hpp"
#include "obs/trace_read.hpp"
#include "service/emulator_cache.hpp"
#include "service/verifier_pool.hpp"
#include "support/rng.hpp"

namespace pufatt::net {
namespace {

using support::Xoshiro256pp;

// --- Endpoint ---------------------------------------------------------------

TEST(Endpoint, ParsesAndDescribes) {
  const auto tcp = Endpoint::parse("tcp:127.0.0.1:4433");
  EXPECT_EQ(tcp.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 4433);
  EXPECT_EQ(tcp.describe(), "tcp:127.0.0.1:4433");

  const auto uds = Endpoint::parse("unix:/tmp/pufatt.sock");
  EXPECT_EQ(uds.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(uds.path, "/tmp/pufatt.sock");
  EXPECT_EQ(uds.describe(), "unix:/tmp/pufatt.sock");
}

TEST(Endpoint, RejectsMalformedSpecs) {
  for (const char* bad :
       {"", "tcp:", "tcp:127.0.0.1", "tcp:127.0.0.1:", "tcp::443",
        "tcp:127.0.0.1:99999", "tcp:127.0.0.1:44x3", "unix:", "udp:1.2.3.4:5",
        "127.0.0.1:4433"}) {
    EXPECT_THROW(Endpoint::parse(bad), NetError) << bad;
  }
}

// --- message codecs ---------------------------------------------------------

TEST(FrameCodec, JobRequestRoundTrips) {
  JobRequest msg;
  msg.device_id = "dev-42";
  msg.channel_seed = 0xC0FFEE12345678ULL;
  msg.rng_seed = 0x5EED5EED5EEDULL;
  msg.tag = 0xFFFFFFFFFFFFFFFFULL;
  const auto frame = encode_job_request(msg);

  FrameDecoder decoder;
  std::vector<FrameDecoder::Frame> out;
  ASSERT_TRUE(decoder.feed(frame, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, MsgType::kJobRequest);
  const auto parsed = decode_job_request(out[0].payload);
  EXPECT_EQ(parsed.device_id, msg.device_id);
  EXPECT_EQ(parsed.channel_seed, msg.channel_seed);
  EXPECT_EQ(parsed.rng_seed, msg.rng_seed);
  EXPECT_EQ(parsed.tag, msg.tag);
}

TEST(FrameCodec, ReplyMessagesRoundTrip) {
  VerdictReply verdict{7, service::JobOutcome::kRejected,
                       core::SessionStatus::kRejected, 3, 123456.75};
  FrameDecoder decoder;
  std::vector<FrameDecoder::Frame> out;
  ASSERT_TRUE(decoder.feed(encode_verdict_reply(verdict), out));
  const auto v = decode_verdict_reply(out.back().payload);
  EXPECT_EQ(v.tag, 7u);
  EXPECT_EQ(v.outcome, service::JobOutcome::kRejected);
  EXPECT_EQ(v.status, core::SessionStatus::kRejected);
  EXPECT_EQ(v.attempts, 3u);
  EXPECT_EQ(v.total_us, 123456.75);

  ASSERT_TRUE(decoder.feed(encode_busy_reply(BusyReply{9, 2500.0}), out));
  const auto b = decode_busy_reply(out.back().payload);
  EXPECT_EQ(b.tag, 9u);
  EXPECT_EQ(b.retry_after_us, 2500.0);

  ASSERT_TRUE(decoder.feed(
      encode_error_reply(ErrorReply{11, ErrorCode::kShuttingDown}), out));
  const auto e = decode_error_reply(out.back().payload);
  EXPECT_EQ(e.tag, 11u);
  EXPECT_EQ(e.code, ErrorCode::kShuttingDown);
}

TEST(FrameCodec, MalformedPayloadsThrow) {
  // Truncation, trailing bytes, out-of-range enums, oversized device id:
  // every codec failure is a clean SerializationError.
  const auto frame = encode_job_request(JobRequest{"dev-1", 1, 2, 3});
  FrameDecoder decoder;
  std::vector<FrameDecoder::Frame> out;
  ASSERT_TRUE(decoder.feed(frame, out));
  auto payload = out[0].payload;

  auto truncated = payload;
  truncated.pop_back();
  EXPECT_THROW(decode_job_request(truncated), core::SerializationError);

  auto trailing = payload;
  trailing.push_back(0);
  EXPECT_THROW(decode_job_request(trailing), core::SerializationError);

  // A declared device-id length far past the buffer must be rejected by
  // the bound check, not by attempting a huge copy.
  auto huge_id = payload;
  huge_id[0] = 0xFF;
  huge_id[1] = 0xFF;
  huge_id[2] = 0xFF;
  huge_id[3] = 0x7F;
  EXPECT_THROW(decode_job_request(huge_id), core::SerializationError);

  std::vector<FrameDecoder::Frame> replies;
  FrameDecoder rd;
  ASSERT_TRUE(rd.feed(
      encode_verdict_reply(VerdictReply{1, service::JobOutcome::kAccepted,
                                        core::SessionStatus::kAccepted, 1,
                                        0.0}),
      replies));
  auto bad_outcome = replies[0].payload;
  bad_outcome[8] = 0x77;  // outcome enum out of range
  EXPECT_THROW(decode_verdict_reply(bad_outcome), core::SerializationError);
}

// --- FrameDecoder stream reassembly ----------------------------------------

std::vector<std::uint8_t> sample_stream(std::size_t frames) {
  std::vector<std::uint8_t> stream;
  for (std::size_t i = 0; i < frames; ++i) {
    const auto f = encode_job_request(
        JobRequest{"dev-" + std::to_string(i % 5), i * 31, i * 17, i});
    stream.insert(stream.end(), f.begin(), f.end());
  }
  return stream;
}

TEST(FrameDecoder, ReassemblesAcrossArbitrarySplits) {
  const auto stream = sample_stream(20);

  // Byte-at-a-time: the pathological split.
  FrameDecoder one_byte;
  std::vector<FrameDecoder::Frame> out;
  for (const auto byte : stream) {
    ASSERT_TRUE(one_byte.feed(&byte, 1, out));
  }
  ASSERT_EQ(out.size(), 20u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(decode_job_request(out[i].payload).tag, i);
  }
  EXPECT_EQ(one_byte.buffered(), 0u);

  // Everything coalesced into one read.
  FrameDecoder coalesced;
  out.clear();
  ASSERT_TRUE(coalesced.feed(stream, out));
  EXPECT_EQ(out.size(), 20u);
}

TEST(FrameDecoder, SeededFuzzOverChunkBoundaries) {
  // Random chunk sizes over a long valid stream must always reproduce the
  // exact frame sequence, regardless of where reads land.
  const auto stream = sample_stream(64);
  Xoshiro256pp rng(0xFEED5);
  for (int trial = 0; trial < 50; ++trial) {
    FrameDecoder decoder;
    std::vector<FrameDecoder::Frame> out;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t chunk =
          1 + rng.uniform_u64(std::min<std::size_t>(97, stream.size() - pos));
      ASSERT_TRUE(decoder.feed(stream.data() + pos, chunk, out));
      pos += chunk;
    }
    ASSERT_EQ(out.size(), 64u) << "trial " << trial;
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(decode_job_request(out[i].payload).tag, i);
    }
  }
}

TEST(FrameDecoder, TornCrcPoisonsTheStream) {
  auto stream = sample_stream(3);
  stream[stream.size() - 2] ^= 0x40;  // flip a bit in the last frame's CRC
  FrameDecoder decoder;
  std::vector<FrameDecoder::Frame> out;
  EXPECT_FALSE(decoder.feed(stream, out));
  EXPECT_EQ(out.size(), 2u);  // frames before the tear still decoded
  EXPECT_TRUE(decoder.failed());
  EXPECT_NE(decoder.error().find("CRC"), std::string::npos);

  // Poisoned means poisoned: valid bytes afterwards change nothing.
  const auto good = sample_stream(1);
  EXPECT_FALSE(decoder.feed(good, out));
  EXPECT_EQ(out.size(), 2u);
}

TEST(FrameDecoder, PoisonedStateIsTerminalAndBounded) {
  // Once poisoned, the decoder must stay poisoned with a frozen error and
  // must not keep buffering whatever the peer throws at it afterwards —
  // a poisoned connection is close-pending, not an accumulation vector.
  auto stream = sample_stream(2);
  stream[stream.size() - 2] ^= 0x01;
  FrameDecoder decoder;
  std::vector<FrameDecoder::Frame> out;
  EXPECT_FALSE(decoder.feed(stream, out));
  ASSERT_TRUE(decoder.failed());
  const std::string first_error = decoder.error();
  const std::size_t buffered = decoder.buffered();

  for (int round = 0; round < 16; ++round) {
    const auto more = sample_stream(3);
    EXPECT_FALSE(decoder.feed(more, out));
    EXPECT_TRUE(decoder.failed());
    EXPECT_EQ(decoder.error(), first_error);  // first cause, never rewritten
    EXPECT_EQ(decoder.buffered(), buffered);  // no growth after poison
  }
  EXPECT_EQ(out.size(), 1u);  // only the frame before the tear
}

TEST(FrameDecoder, BadMagicFailsFast) {
  std::vector<std::uint8_t> garbage = {'G', 'E', 'T', ' ', '/', ' ',
                                       'H', 'T', 'T', 'P', '/', '1'};
  FrameDecoder decoder;
  std::vector<FrameDecoder::Frame> out;
  EXPECT_FALSE(decoder.feed(garbage, out));
  EXPECT_TRUE(out.empty());
}

TEST(FrameDecoder, OversizedDeclaredLengthRejectedBeforeBuffering) {
  // Header declares a payload beyond the shared wire bound; the decoder
  // must fail on the header alone, without waiting for (or buffering) the
  // claimed gigabytes.
  std::vector<std::uint8_t> header;
  auto push_u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      header.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  push_u32(kFrameMagic);
  push_u32(static_cast<std::uint32_t>(MsgType::kJobRequest));
  push_u32(0x40000000u);  // 1 GiB declared payload

  FrameDecoder decoder;
  std::vector<FrameDecoder::Frame> out;
  EXPECT_FALSE(decoder.feed(header, out));
  EXPECT_TRUE(decoder.failed());
  EXPECT_NE(decoder.error().find("limit"), std::string::npos);
  EXPECT_LE(decoder.buffered(), header.size());

  // The bound tracks core/serialize's: exactly kMaxWireFrameBytes is fine.
  FrameDecoder at_bound;
  std::vector<std::uint8_t> payload(core::kMaxWireFrameBytes, 0xAB);
  ASSERT_TRUE(at_bound.feed(encode_frame(MsgType::kErrorReply, payload), out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload.size(), core::kMaxWireFrameBytes);
}

// --- EventLoop --------------------------------------------------------------

class EventLoopBackends : public ::testing::TestWithParam<EventLoop::Backend> {
};

TEST_P(EventLoopBackends, PostTimerAndSocketEcho) {
  EventLoop loop(GetParam());
#ifdef __linux__
  EXPECT_EQ(loop.using_epoll(), GetParam() != EventLoop::Backend::kPoll);
#else
  EXPECT_FALSE(loop.using_epoll());
#endif

  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  set_nonblocking(pair[0]);
  set_nonblocking(pair[1]);
  Fd a(pair[0]), b(pair[1]);

  std::string received;
  int ticks = 0;
  loop.add(b.get(), EventLoop::kReadable, [&](std::uint32_t events) {
    EXPECT_TRUE(events & EventLoop::kReadable);
    char buf[64];
    const ssize_t n = ::read(b.get(), buf, sizeof(buf));
    if (n > 0) received.assign(buf, static_cast<std::size_t>(n));
  });
  loop.set_timer(1.0, [&] {
    if (++ticks >= 3 && !received.empty()) loop.stop();
  });

  // Cross-thread post() while the loop blocks in the kernel.
  std::thread poster([&] {
    loop.post([&] {
      [[maybe_unused]] const auto n = ::write(a.get(), "ping", 4);
    });
  });
  loop.run();
  poster.join();

  EXPECT_EQ(received, "ping");
  EXPECT_GE(ticks, 3);
}

TEST_P(EventLoopBackends, RemoveDuringDispatchIsSafe) {
  EventLoop loop(GetParam());
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  set_nonblocking(pair[0]);
  set_nonblocking(pair[1]);
  Fd a(pair[0]), b(pair[1]);

  // Both ends readable in the same poll batch; whichever callback runs
  // first removes *both* fds — the other's already-collected event must be
  // discarded via the dead flag, not dispatched or crashed on.
  int fired = 0;
  const auto kill_both = [&](std::uint32_t) {
    ++fired;
    loop.remove(a.get());
    loop.remove(b.get());
    loop.post([&] { loop.stop(); });
  };
  loop.add(a.get(), EventLoop::kReadable, kill_both);
  loop.add(b.get(), EventLoop::kReadable, kill_both);
  ASSERT_EQ(::write(a.get(), "x", 1), 1);
  ASSERT_EQ(::write(b.get(), "x", 1), 1);
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.watched(), 1u);  // only the internal wake pipe remains
}

TEST_P(EventLoopBackends, PollOnceServicesFdsAndTimerWithoutRun) {
  EventLoop loop(GetParam());
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  set_nonblocking(pair[0]);
  set_nonblocking(pair[1]);
  Fd a(pair[0]), b(pair[1]);

  std::string received;
  loop.add(b.get(), EventLoop::kReadable, [&](std::uint32_t) {
    char buf[64];
    const ssize_t n = ::read(b.get(), buf, sizeof(buf));
    if (n > 0) received.assign(buf, static_cast<std::size_t>(n));
  });
  int ticks = 0;
  loop.set_timer(1.0, [&] { ++ticks; });

  // Nothing pending: a zero-timeout poll returns without dispatching.
  loop.poll_once(0);
  EXPECT_TRUE(received.empty());

  // Readable fd is dispatched by a single poll, no run() involved.
  ASSERT_EQ(::write(a.get(), "mid-setup", 9), 9);
  loop.poll_once(0);
  EXPECT_EQ(received, "mid-setup");

  // The timer also fires through poll_once when its period elapses.
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  loop.poll_once(0);
  EXPECT_GE(ticks, 1);

  // And the loop is still fully runnable afterwards.
  loop.post([&] { loop.stop(); });
  loop.run();
}

#ifdef __linux__
INSTANTIATE_TEST_SUITE_P(Backends, EventLoopBackends,
                         ::testing::Values(EventLoop::Backend::kPoll,
                                           EventLoop::Backend::kEpoll));
#else
INSTANTIATE_TEST_SUITE_P(Backends, EventLoopBackends,
                         ::testing::Values(EventLoop::Backend::kPoll));
#endif

// --- server end-to-end ------------------------------------------------------

/// Shared fleet: enrollment is the expensive part, so build once.
const SimFleet& fleet() {
  static const SimFleet instance(3, 0x7E57F1EE7);
  return instance;
}

ResponderFactory fleet_factory() {
  return [](const JobRequest& request) {
    return fleet().responder_for(request.device_id, request.rng_seed);
  };
}

struct RunningServer {
  explicit RunningServer(ServerConfig config)
      : cache(fleet().registry(), fleet().code(), fleet().size()),
        server(cache, fleet_factory(), config),
        thread([this] { server.run(); }) {}

  ~RunningServer() {
    server.stop();
    thread.join();
  }

  service::EmulatorCache cache;
  AttestationServer server;
  std::thread thread;
};

ServerConfig base_config(const Endpoint& endpoint) {
  ServerConfig config;
  config.endpoint = endpoint;
  config.pool.workers = 2;
  config.pool.queue_capacity = 16;
  return config;
}

/// Raw client for adversarial byte-level tests.
struct RawClient {
  explicit RawClient(const Endpoint& endpoint) : fd(connect_to(endpoint)) {}

  /// False when the peer closed underneath us (EPIPE/reset) — expected in
  /// the shedding tests, a failure everywhere a reply is still awaited.
  bool send(const std::vector<std::uint8_t>& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd.get(), bytes.data() + off,
                               bytes.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  /// Blocks (with polling) until the peer closes or `frames` arrive.
  std::vector<FrameDecoder::Frame> read_until_close_or(
      std::size_t frames, double timeout_s = 20.0) {
    std::vector<FrameDecoder::Frame> out;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_s);
    std::uint8_t buf[4096];
    while (out.size() < frames &&
           std::chrono::steady_clock::now() < deadline) {
      const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
      if (n > 0) {
        decoder.feed(buf, static_cast<std::size_t>(n), out);
        continue;
      }
      if (n == 0) {
        closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      closed = true;
      break;
    }
    return out;
  }

  Fd fd;
  FrameDecoder decoder;
  bool closed = false;
};

void wait_until(const std::function<bool()>& predicate, double timeout_s = 20.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (!predicate() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(predicate());
}

TEST(AttestationServerTest, ServesVerdictsOverTcpMatchingInProcessPool) {
  RunningServer rs(base_config(Endpoint::tcp("127.0.0.1", 0)));

  LoadGenConfig lcfg;
  lcfg.endpoint = rs.server.bound_endpoint();
  lcfg.connections = 4;
  lcfg.jobs_per_connection = 3;
  lcfg.devices = fleet().size();
  LoadGenerator gen(lcfg);
  const auto report = gen.run();

  ASSERT_EQ(report.verdicts, report.jobs);
  EXPECT_EQ(report.disconnects, 0u);
  EXPECT_EQ(report.decode_errors, 0u);

  // The same job list through an in-process pool: the wire must add
  // nothing and lose nothing, per tag, bit-exact on the simulated time.
  service::EmulatorCache cache(fleet().registry(), fleet().code(),
                               fleet().size());
  service::PoolConfig pcfg;
  pcfg.workers = 2;
  pcfg.queue_capacity = report.jobs;
  std::mutex mu;
  std::vector<service::JobResult> local(report.jobs);
  service::VerifierPool pool(cache, pcfg, [&](const service::JobResult& r) {
    std::lock_guard<std::mutex> lock(mu);
    local[r.tag] = r;
  });
  for (std::size_t j = 0; j < report.jobs; ++j) {
    const auto request = LoadGenerator::job_for(lcfg, j);
    service::AttestationJob job;
    job.device_id = request.device_id;
    job.responder =
        fleet().responder_for(request.device_id, request.rng_seed);
    job.channel_seed = request.channel_seed;
    job.rng_seed = request.rng_seed;
    job.tag = j;
    ASSERT_TRUE(pool.submit(std::move(job)).enqueued());
  }
  pool.drain();

  for (std::size_t j = 0; j < report.jobs; ++j) {
    ASSERT_TRUE(report.by_job[j].completed) << "job " << j;
    const auto& wire = report.by_job[j].reply;
    EXPECT_EQ(wire.outcome, local[j].outcome) << "job " << j;
    EXPECT_EQ(wire.status, local[j].session.status) << "job " << j;
    EXPECT_EQ(wire.attempts, local[j].session.attempts.size()) << "job " << j;
    EXPECT_EQ(wire.total_us, local[j].session.total_us) << "job " << j;
  }
}

TEST(AttestationServerTest, ServesOverUnixDomainSocket) {
  const std::string path = ::testing::TempDir() + "/pufatt_net_test.sock";
  RunningServer rs(base_config(Endpoint::unix_path(path)));

  LoadGenConfig lcfg;
  lcfg.endpoint = rs.server.bound_endpoint();
  lcfg.connections = 2;
  lcfg.jobs_per_connection = 2;
  lcfg.devices = fleet().size();
  const auto report = LoadGenerator(lcfg).run();
  EXPECT_EQ(report.verdicts, report.jobs);
  EXPECT_GT(report.accepted, 0u);
}

TEST(AttestationServerTest, UnknownDeviceGetsVerdictWithoutPoolWork) {
  RunningServer rs(base_config(Endpoint::tcp("127.0.0.1", 0)));
  RawClient client(rs.server.bound_endpoint());
  client.send(encode_job_request(JobRequest{"intruder-99", 1, 2, 77}));
  const auto replies = client.read_until_close_or(1);
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_EQ(replies[0].type, MsgType::kVerdictReply);
  const auto verdict = decode_verdict_reply(replies[0].payload);
  EXPECT_EQ(verdict.tag, 77u);
  EXPECT_EQ(verdict.outcome, service::JobOutcome::kUnknownDevice);
  EXPECT_EQ(rs.server.pool().metrics_snapshot().submitted, 0u);
}

TEST(AttestationServerTest, BusyShedsWithRetryAfterHintUnderOverload) {
  auto config = base_config(Endpoint::tcp("127.0.0.1", 0));
  config.pool.workers = 1;
  config.pool.queue_capacity = 1;  // nearly everything sheds
  RunningServer rs(config);

  LoadGenConfig lcfg;
  lcfg.endpoint = rs.server.bound_endpoint();
  lcfg.connections = 8;
  lcfg.jobs_per_connection = 2;
  lcfg.devices = fleet().size();
  lcfg.max_busy_retries = 10000;
  const auto report = LoadGenerator(lcfg).run();

  // Overload produced busy replies, every one carried a usable hint, and
  // obeying the hints still drove every job to a verdict.
  EXPECT_EQ(report.verdicts, report.jobs);
  EXPECT_GT(report.busy_replies, 0u);
  EXPECT_EQ(report.retries_exhausted, 0u);
  const auto counters = rs.server.counters();
  EXPECT_EQ(counters.busy_replies, report.busy_replies);
  EXPECT_EQ(rs.server.pool().metrics_snapshot().rejected_busy,
            report.busy_replies);
}

TEST(AttestationServerTest, BusyReplyCarriesPositiveHint) {
  auto config = base_config(Endpoint::tcp("127.0.0.1", 0));
  config.pool.workers = 1;
  config.pool.queue_capacity = 1;
  RunningServer rs(config);

  // Saturate with one long-running batch, then observe a raw busy reply.
  RawClient filler(rs.server.bound_endpoint());
  for (int j = 0; j < 8; ++j) {
    filler.send(encode_job_request(
        JobRequest{SimFleet::device_id(0), 100u + j, 200u + j, 1000u + j}));
  }
  const auto replies = filler.read_until_close_or(8);
  ASSERT_EQ(replies.size(), 8u);
  bool saw_busy = false;
  for (const auto& frame : replies) {
    if (frame.type != MsgType::kBusyReply) continue;
    saw_busy = true;
    const auto busy = decode_busy_reply(frame.payload);
    EXPECT_GE(busy.retry_after_us, 0.0);
    EXPECT_GE(busy.tag, 1000u);
  }
  EXPECT_TRUE(saw_busy);
}

TEST(AttestationServerTest, FramingViolationClosesConnection) {
  RunningServer rs(base_config(Endpoint::tcp("127.0.0.1", 0)));
  RawClient client(rs.server.bound_endpoint());
  client.send({0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
               0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C});
  client.read_until_close_or(1, 10.0);
  EXPECT_TRUE(client.closed);
  wait_until([&] { return rs.server.counters().decode_errors >= 1; });
  wait_until([&] { return rs.server.counters().open_connections == 0; });
}

TEST(AttestationServerTest, OversizedDeclaredFrameClosesWithoutBuffering) {
  RunningServer rs(base_config(Endpoint::tcp("127.0.0.1", 0)));
  RawClient client(rs.server.bound_endpoint());
  std::vector<std::uint8_t> header;
  auto push_u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      header.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  push_u32(kFrameMagic);
  push_u32(static_cast<std::uint32_t>(MsgType::kJobRequest));
  push_u32(0x7FFFFFFFu);  // 2 GiB declared
  client.send(header);
  client.read_until_close_or(1, 10.0);
  EXPECT_TRUE(client.closed);
  wait_until([&] { return rs.server.counters().decode_errors >= 1; });
}

TEST(AttestationServerTest, CorruptFrameIsNeverAccepted) {
  // A bit-flipped request frame must produce zero dispatched jobs: CRC
  // kills it at the framing layer, whatever byte was hit.
  RunningServer rs(base_config(Endpoint::tcp("127.0.0.1", 0)));
  Xoshiro256pp rng(0xBADF00D);
  for (int trial = 0; trial < 8; ++trial) {
    auto frame = encode_job_request(
        JobRequest{SimFleet::device_id(0), 1, 2, 3});
    const auto bit = rng.uniform_u64(frame.size() * 8);
    frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    RawClient client(rs.server.bound_endpoint());
    client.send(frame);
    // A flip in the length field can leave the server legitimately waiting
    // for more bytes; the short timeout falls through to the client-side
    // close, which ends the connection either way.
    client.read_until_close_or(1, 1.5);
  }
  wait_until([&] { return rs.server.counters().closed >= 8; });
  EXPECT_EQ(rs.server.counters().requests, 0u);
  EXPECT_EQ(rs.server.pool().metrics_snapshot().submitted, 0u);
}

TEST(AttestationServerTest, SlowlorisClientIsEvicted) {
  auto config = base_config(Endpoint::tcp("127.0.0.1", 0));
  config.idle_timeout_ms = 60.0;
  RunningServer rs(config);

  // Drip one header byte, then stall forever.
  RawClient client(rs.server.bound_endpoint());
  client.send({0x54});  // first magic byte only ("PANT" is little-endian)
  client.read_until_close_or(1, 20.0);
  EXPECT_TRUE(client.closed);
  wait_until([&] { return rs.server.counters().idle_evicted >= 1; });
  wait_until([&] { return rs.server.counters().open_connections == 0; });
  // An eviction is a close, never a decode error.
  EXPECT_EQ(rs.server.counters().decode_errors, 0u);
}

TEST(AttestationServerTest, MidStreamDisconnectLeaksNothing) {
  RunningServer rs(base_config(Endpoint::tcp("127.0.0.1", 0)));
  for (int i = 0; i < 8; ++i) {
    RawClient client(rs.server.bound_endpoint());
    const auto frame = encode_job_request(
        JobRequest{SimFleet::device_id(0), 5, 6, 7});
    // Half a frame, then vanish.
    client.send({frame.begin(), frame.begin() + 7});
  }
  wait_until([&] { return rs.server.counters().closed >= 8; });
  wait_until([&] { return rs.server.counters().open_connections == 0; });
  const auto counters = rs.server.counters();
  EXPECT_EQ(counters.accepted, 8u);
  EXPECT_EQ(counters.requests, 0u);
  EXPECT_EQ(counters.decode_errors, 0u);  // truncation is a close, not corruption
}

TEST(AttestationServerTest, WriteQueueCapShedsUnreadingClient) {
  // A Unix socket keeps the kernel's buffering small and fixed, so a
  // client that sends jobs but never reads verdicts backs the socket up
  // quickly; once a reply fails to flush it must queue, and with a
  // 16-byte cap even one queued verdict overflows -> shed.
  const std::string path = ::testing::TempDir() + "/pufatt_net_shed.sock";
  auto config = base_config(Endpoint::unix_path(path));
  config.max_write_queue_bytes = 16;  // a single verdict cannot fit
  RunningServer rs(config);

  RawClient client(rs.server.bound_endpoint());
  const auto frame = encode_job_request(JobRequest{"intruder", 1, 2, 3});
  for (int burst = 0; burst < 65536; ++burst) {
    if (!client.send(frame)) break;  // server already shed us
    if (rs.server.counters().writeq_shed >= 1) break;
  }
  wait_until([&] { return rs.server.counters().writeq_shed >= 1; });
  wait_until([&] { return rs.server.counters().open_connections == 0; });
}

TEST(AttestationServerTest, AdversarialChunkingFuzzEndToEnd) {
  // Seeded storm: every connection sends a valid 2-job stream but chunked
  // adversarially; some also append garbage.  The server must answer every
  // intact job and close every poisoned stream — and never block or leak.
  RunningServer rs(base_config(Endpoint::tcp("127.0.0.1", 0)));
  Xoshiro256pp rng(0x57F);
  std::size_t expected_verdicts = 0;

  for (int c = 0; c < 12; ++c) {
    std::vector<std::uint8_t> stream;
    for (int j = 0; j < 2; ++j) {
      const auto f = encode_job_request(JobRequest{
          SimFleet::device_id(rng.uniform_u64(fleet().size())),
          rng.next(), rng.next(), static_cast<std::uint64_t>(j)});
      stream.insert(stream.end(), f.begin(), f.end());
    }

    RawClient client(rs.server.bound_endpoint());
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t chunk =
          1 + rng.uniform_u64(std::min<std::size_t>(33, stream.size() - pos));
      ASSERT_TRUE(client.send(
          {stream.begin() + pos, stream.begin() + pos + chunk}));
      pos += chunk;
    }
    const auto replies = client.read_until_close_or(2);
    EXPECT_EQ(replies.size(), 2u);
    expected_verdicts += 2;
    if (rng.bernoulli(0.3)) {
      // Poison the stream only after both verdicts came back — a framing
      // violation closes the connection immediately, and we want the
      // verdicts counted, not raced against the close.  A full header's
      // worth of garbage: the decoder (correctly) withholds judgement on
      // fewer than kFrameHeaderBytes.
      client.send(std::vector<std::uint8_t>(kFrameHeaderBytes, 0xFF));
      client.read_until_close_or(3, 10.0);
      EXPECT_TRUE(client.closed);
    }
  }
  wait_until([&] {
    return rs.server.counters().verdicts_sent >= expected_verdicts;
  });
  wait_until([&] { return rs.server.counters().open_connections == 0; });
}

TEST(AttestationServerTest, CountersAndSpansCoverThePipeline) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  auto config = base_config(Endpoint::tcp("127.0.0.1", 0));
  config.tracer = &tracer;
  config.pool.tracer = &tracer;
  RunningServer rs(config);

  LoadGenConfig lcfg;
  lcfg.endpoint = rs.server.bound_endpoint();
  lcfg.connections = 2;
  lcfg.jobs_per_connection = 2;
  lcfg.devices = fleet().size();
  const auto report = LoadGenerator(lcfg).run();
  ASSERT_EQ(report.verdicts, report.jobs);

  wait_until([&] { return rs.server.counters().verdicts_sent >= 4; });
  const auto counters = rs.server.counters();
  EXPECT_EQ(counters.accepted, 2u);
  EXPECT_EQ(counters.requests, 4u);
  EXPECT_GE(counters.frames_in, 4u);
  EXPECT_GT(counters.bytes_in, 0u);
  EXPECT_GT(counters.bytes_out, 0u);

  // Span delivery needs the hooks compiled in; the build-notrace tree
  // still runs the counter assertions above (see tests/obs_test.cpp).
  if (!obs::kTraceCompiled) return;
  const auto records = tracer.records();
  auto has = [&](const char* name) {
    for (const auto& rec : records) {
      if (std::string(rec.name) == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("net.accept"));
  EXPECT_TRUE(has("net.read"));
  EXPECT_TRUE(has("net.reply"));
  EXPECT_TRUE(has("pool.job"));  // the verify stage, same trace
}

TEST(AttestationServerTest, FaultScheduleLeavesCountersExactlyConsistent) {
  // A deterministic schedule of good frames and injected faults, one
  // connection at a time; afterwards every NetCounter must equal the
  // arithmetic of the schedule — no double counting, no missed paths.
  RunningServer rs(base_config(Endpoint::tcp("127.0.0.1", 0)));

  enum class Fault { kUnknownType, kMalformedJob, kCrcTear, kMalformedStats };
  struct Step {
    std::size_t goods;
    Fault fault;
  };
  const Step schedule[] = {
      {2, Fault::kUnknownType},    {1, Fault::kUnknownType},
      {3, Fault::kUnknownType},    {0, Fault::kMalformedJob},
      {2, Fault::kMalformedJob},   {1, Fault::kCrcTear},
      {0, Fault::kCrcTear},        {0, Fault::kMalformedStats},
  };

  std::size_t total_goods = 0, rejected = 0, torn = 0;
  for (const auto& step : schedule) {
    RawClient client(rs.server.bound_endpoint());
    for (std::size_t g = 0; g < step.goods; ++g) {
      ASSERT_TRUE(client.send(encode_job_request(
          JobRequest{SimFleet::device_id(0), 10u + g, 20u + g, g})));
    }
    // Drain the verdicts first so the fault's close cannot race them.
    if (step.goods > 0) {
      const auto replies = client.read_until_close_or(step.goods);
      ASSERT_EQ(replies.size(), step.goods);
      for (const auto& reply : replies) {
        ASSERT_EQ(reply.type, MsgType::kVerdictReply);
      }
      total_goods += step.goods;
    }
    switch (step.fault) {
      case Fault::kUnknownType:
        client.send(encode_frame(static_cast<MsgType>(99), {0x00}));
        ++rejected;
        break;
      case Fault::kMalformedJob:
        client.send(encode_frame(MsgType::kJobRequest, {0xFF, 0xFF}));
        ++rejected;
        break;
      case Fault::kCrcTear: {
        auto frame = encode_job_request(JobRequest{"dev-x", 1, 2, 3});
        frame[frame.size() - 1] ^= 0x10;
        client.send(frame);
        ++torn;
        break;
      }
      case Fault::kMalformedStats:
        client.send(encode_frame(MsgType::kStatsRequest, {0x01, 0x02, 0x03}));
        ++rejected;
        break;
    }
    // Ask for more frames than can arrive: loops until the server's close
    // lands (error-reply faults deliver one frame first, tears deliver
    // none — both end in a close).
    client.read_until_close_or(2, 10.0);
    EXPECT_TRUE(client.closed);
  }

  const std::size_t connections = std::size(schedule);
  wait_until([&] { return rs.server.counters().closed >= connections; });
  const auto counters = rs.server.counters();
  EXPECT_EQ(counters.accepted, connections);
  EXPECT_EQ(counters.closed, connections);
  EXPECT_EQ(counters.open_connections, 0u);
  EXPECT_EQ(counters.requests, total_goods);
  EXPECT_EQ(counters.verdicts_sent, total_goods);
  // Structurally valid frames all dispatched; CRC tears never got that far.
  EXPECT_EQ(counters.frames_in, total_goods + rejected);
  EXPECT_EQ(counters.frames_rejected, rejected);
  EXPECT_EQ(counters.payload_errors, rejected);
  EXPECT_EQ(counters.error_replies, rejected);
  EXPECT_EQ(counters.decode_errors, torn);
  // The sequential schedule never overloads or backs up a socket.
  EXPECT_EQ(counters.busy_replies, 0u);
  EXPECT_EQ(counters.replies_dropped, 0u);
  EXPECT_EQ(counters.writeq_shed, 0u);
  EXPECT_EQ(counters.stats_served, 0u);  // the stats fault never served
}

// --- live telemetry ---------------------------------------------------------

TEST(AttestationServerTest, StatsFrameServedInlineOnOpenConnection) {
  RunningServer rs(base_config(Endpoint::tcp("127.0.0.1", 0)));
  RawClient client(rs.server.bound_endpoint());

  // Two polls over one connection: the stats frame must not close it.
  for (std::uint64_t poll = 0; poll < 2; ++poll) {
    ASSERT_TRUE(client.send(encode_stats_request(StatsRequest{100 + poll})));
    const auto replies = client.read_until_close_or(1);
    ASSERT_EQ(replies.size(), 1u);
    ASSERT_EQ(replies.back().type, MsgType::kStatsReply);
    const auto reply = decode_stats_reply(replies.back().payload);
    EXPECT_EQ(reply.tag, 100 + poll);

    const auto doc = obs::parse_json(reply.stats_json);
    const auto* net = doc.get("net");
    const auto* pool = doc.get("pool");
    ASSERT_NE(net, nullptr);
    ASSERT_NE(pool, nullptr);
    EXPECT_EQ(net->number_or("open_connections", -1.0), 1.0);
    EXPECT_EQ(net->number_or("stats_served", -1.0),
              static_cast<double>(poll));  // snapshot precedes its own count
    EXPECT_EQ(pool->number_or("workers", -1.0), 2.0);
    EXPECT_EQ(pool->number_or("queue_capacity", -1.0), 16.0);
  }
  EXPECT_FALSE(client.closed);
  EXPECT_EQ(rs.server.counters().stats_served, 2u);

  // Byte stability: at quiesce the only counters that move between two
  // consecutive snapshots are the ones the polling itself drives (frame
  // and byte totals, stats_served).  With those scrubbed, the
  // serialization must be byte-identical — deterministic key order and
  // formatting, the contract scripted consumers rely on.
  ASSERT_TRUE(client.send(encode_stats_request(StatsRequest{200})));
  ASSERT_TRUE(client.send(encode_stats_request(StatsRequest{201})));
  const auto replies = client.read_until_close_or(2);
  ASSERT_EQ(replies.size(), 2u);
  auto a = decode_stats_reply(replies[0].payload).stats_json;
  auto b = decode_stats_reply(replies[1].payload).stats_json;
  const auto scrub = [](std::string& json) {
    for (const char* key :
         {"\"bytes_in\":", "\"bytes_out\":", "\"frames_in\":",
          "\"stats_served\":"}) {
      const auto pos = json.find(key);
      ASSERT_NE(pos, std::string::npos) << key;
      auto end = json.find_first_of(",}", pos);
      if (json[end] == ',') ++end;  // take the separator with the field
      json.erase(pos, end - pos);
    }
  };
  scrub(a);
  scrub(b);
  EXPECT_EQ(a, b);
}

TEST(AttestationServerTest, StatsServedMidLoadCausesZeroVerdictDivergence) {
  // An operator polling fleet-stats while the fleet is under load must
  // never perturb a verdict: same count, no decode errors, no drops.
  RunningServer rs(base_config(Endpoint::tcp("127.0.0.1", 0)));

  LoadGenConfig lcfg;
  lcfg.endpoint = rs.server.bound_endpoint();
  lcfg.connections = 4;
  lcfg.jobs_per_connection = 4;
  lcfg.devices = fleet().size();
  LoadGenReport report;
  std::thread load([&] { report = LoadGenerator(lcfg).run(); });

  RawClient poller(rs.server.bound_endpoint());
  std::size_t polls = 0;
  double last_accepted = 0.0;
  for (; polls < 64; ++polls) {
    if (!poller.send(encode_stats_request(StatsRequest{polls}))) break;
    const auto replies = poller.read_until_close_or(1);
    if (replies.size() != 1) break;
    const auto reply = decode_stats_reply(replies.back().payload);
    EXPECT_EQ(reply.tag, polls);
    const auto doc = obs::parse_json(reply.stats_json);
    const auto* pool = doc.get("pool");
    ASSERT_NE(pool, nullptr);
    // Monotone under concurrent load: a snapshot never goes backwards.
    const double accepted = pool->number_or("accepted", -1.0);
    EXPECT_GE(accepted, last_accepted);
    last_accepted = accepted;
    if (rs.server.counters().verdicts_sent >= lcfg.connections *
                                                  lcfg.jobs_per_connection) {
      break;
    }
  }
  load.join();

  EXPECT_EQ(report.verdicts, report.jobs);
  EXPECT_EQ(report.decode_errors, 0u);
  EXPECT_EQ(report.disconnects, 0u);
  EXPECT_GE(rs.server.counters().stats_served, 1u);
  EXPECT_EQ(rs.server.counters().replies_dropped, 0u);
}

}  // namespace
}  // namespace pufatt::net
