#include <gtest/gtest.h>

#include <cmath>

#include "netlist/builder.hpp"
#include "support/stats.hpp"
#include "timingsim/arbiter.hpp"
#include "timingsim/bitslice.hpp"
#include "timingsim/timing_sim.hpp"
#include "variation/chip.hpp"

namespace pufatt::timingsim {
namespace {

using netlist::GateId;
using netlist::GateKind;
using netlist::Netlist;

std::vector<double> unit_delays(const Netlist& net, double d = 1.0) {
  std::vector<double> delays(net.num_gates(), d);
  for (std::size_t g = 0; g < net.num_gates(); ++g) {
    const auto kind = net.gate(static_cast<GateId>(g)).kind;
    if (kind == GateKind::kInput || kind == GateKind::kConst0 ||
        kind == GateKind::kConst1) {
      delays[g] = 0.0;
    }
  }
  return delays;
}

// ------------------------------------------------------ settling semantics

TEST(TimingSim, BufferChainAccumulatesDelay) {
  Netlist net;
  GateId sig = net.add_input("a");
  for (int i = 0; i < 5; ++i) sig = net.add_gate(GateKind::kBuf, {sig});
  TimingSimulator sim(net);
  const auto states = sim.run({true}, unit_delays(net, 2.0));
  EXPECT_TRUE(states[sig].value);
  EXPECT_DOUBLE_EQ(states[sig].time_ps, 10.0);
}

TEST(TimingSim, XorWaitsForLatestInput) {
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId slow = net.add_gate(GateKind::kBuf, {b});
  const GateId x = net.add_gate(GateKind::kXor, {a, slow});
  TimingSimulator sim(net);
  auto delays = unit_delays(net, 1.0);
  delays[slow] = 7.0;
  delays[x] = 1.0;
  const auto states = sim.run({true, false}, delays);
  EXPECT_DOUBLE_EQ(states[x].time_ps, 8.0);  // max(0, 7) + 1
}

TEST(TimingSim, AndControlledByEarliestZero) {
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId slow_b = net.add_gate(GateKind::kBuf, {b});
  const GateId g = net.add_gate(GateKind::kAnd, {a, slow_b});
  TimingSimulator sim(net);
  auto delays = unit_delays(net);
  delays[slow_b] = 9.0;
  delays[g] = 1.0;
  // a=0 arrives at t=0 and controls the AND: output settles at 0+1,
  // regardless of the slow b path.
  const auto s0 = sim.run({false, true}, delays);
  EXPECT_FALSE(s0[g].value);
  EXPECT_DOUBLE_EQ(s0[g].time_ps, 1.0);
  // Both 1: must wait for the slow path.
  const auto s1 = sim.run({true, true}, delays);
  EXPECT_TRUE(s1[g].value);
  EXPECT_DOUBLE_EQ(s1[g].time_ps, 10.0);
}

TEST(TimingSim, OrControlledByEarliestOne) {
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId slow_b = net.add_gate(GateKind::kBuf, {b});
  const GateId g = net.add_gate(GateKind::kOr, {a, slow_b});
  TimingSimulator sim(net);
  auto delays = unit_delays(net);
  delays[slow_b] = 9.0;
  delays[g] = 1.0;
  const auto s1 = sim.run({true, false}, delays);
  EXPECT_TRUE(s1[g].value);
  EXPECT_DOUBLE_EQ(s1[g].time_ps, 1.0);
  const auto s0 = sim.run({false, false}, delays);
  EXPECT_FALSE(s0[g].value);
  EXPECT_DOUBLE_EQ(s0[g].time_ps, 10.0);
}

TEST(TimingSim, NandNorInvertValues) {
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId nand_g = net.add_gate(GateKind::kNand, {a, b});
  const GateId nor_g = net.add_gate(GateKind::kNor, {a, b});
  TimingSimulator sim(net);
  const auto states = sim.run({true, true}, unit_delays(net));
  EXPECT_FALSE(states[nand_g].value);
  EXPECT_FALSE(states[nor_g].value);
}

TEST(TimingSim, ConstantsAlwaysSettled) {
  Netlist net;
  const GateId c0 = net.add_gate(GateKind::kConst0, {});
  const GateId c1 = net.add_gate(GateKind::kConst1, {});
  TimingSimulator sim(net);
  const auto states = sim.run({}, unit_delays(net));
  EXPECT_EQ(states[c0].time_ps, kAlwaysSettled);
  EXPECT_EQ(states[c1].time_ps, kAlwaysSettled);
}

TEST(TimingSim, MuxStaticSelectUsesOnlyChosenPath) {
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId slow = net.add_gate(GateKind::kBuf, {a});
  const GateId fast = net.add_gate(GateKind::kBuf, {a});
  const GateId sel0 = net.add_gate(GateKind::kConst0, {});
  const GateId mux = net.add_gate(GateKind::kMux, {sel0, fast, slow});
  TimingSimulator sim(net);
  auto delays = unit_delays(net);
  delays[slow] = 50.0;
  delays[fast] = 1.0;
  delays[mux] = 1.0;
  const auto states = sim.run({true}, delays);
  EXPECT_TRUE(states[mux].value);
  EXPECT_DOUBLE_EQ(states[mux].time_ps, 2.0);  // fast path only
}

TEST(TimingSim, MuxDynamicSelectWaitsForSelect) {
  Netlist net;
  const GateId s = net.add_input("s");
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId slow_sel = net.add_gate(GateKind::kBuf, {s});
  const GateId mux = net.add_gate(GateKind::kMux, {slow_sel, a, b});
  TimingSimulator sim(net);
  auto delays = unit_delays(net);
  delays[slow_sel] = 5.0;
  delays[mux] = 1.0;
  // a != b: output depends on select, which settles at t=5.
  const auto states = sim.run({true, false, true}, delays);
  EXPECT_TRUE(states[mux].value);
  EXPECT_DOUBLE_EQ(states[mux].time_ps, 6.0);
  // a == b: select is irrelevant; settles when data settles.
  const auto states2 = sim.run({true, true, true}, delays);
  EXPECT_DOUBLE_EQ(states2[mux].time_ps, 1.0);
}

TEST(TimingSim, InputArrivalTimesRespected) {
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId x = net.add_gate(GateKind::kXor, {a, b});
  TimingSimulator sim(net);
  std::vector<SignalState> states;
  const std::vector<double> arrival{3.0, 10.0};
  sim.run(std::vector<bool>{true, false}, unit_delays(net), states, &arrival);
  EXPECT_DOUBLE_EQ(states[x].time_ps, 11.0);
}

TEST(TimingSim, ValuesMatchFunctionalEvaluation) {
  // Property: for random circuits (here: the ALU PUF netlist) the timing
  // simulator's values must equal Netlist::evaluate's.
  const auto circuit = netlist::build_alu_puf_circuit(16);
  TimingSimulator sim(circuit.net);
  const auto delays = unit_delays(circuit.net);
  support::Xoshiro256pp rng(31);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<bool> in;
    for (std::size_t i = 0; i < circuit.net.num_inputs(); ++i) {
      in.push_back(rng.bernoulli(0.5));
    }
    const auto golden = circuit.net.evaluate(in);
    const auto states = sim.run(in, delays);
    for (std::size_t g = 0; g < golden.size(); ++g) {
      ASSERT_EQ(states[g].value, golden[g]) << "gate " << g;
    }
  }
}

TEST(TimingSim, CarryChainDelayGrowsWithPropagation) {
  // 8-bit adder: a = all ones, b = 1 keeps every stage in propagate mode, so
  // the MSB sum waits for the full carry ripple.  With a = b = 0 every stage
  // kills the carry (a XOR b = 0 settles the AND early) and the MSB settles
  // almost immediately — the challenge-dependent timing the paper exploits.
  Netlist net;
  std::vector<GateId> a, b;
  for (int i = 0; i < 8; ++i) a.push_back(net.add_input("a"));
  for (int i = 0; i < 8; ++i) b.push_back(net.add_input("b"));
  const GateId cin = net.add_gate(GateKind::kConst0, {});
  const auto ports = netlist::build_ripple_carry_adder(net, a, b, cin, {});
  TimingSimulator sim(net);
  const auto delays = unit_delays(net);

  std::vector<bool> ripple(16, false);
  for (int i = 0; i < 8; ++i) ripple[i] = true;  // a = 0xFF
  ripple[8] = true;                              // b = 0x01
  const auto with_carry = sim.run(ripple, delays);

  const std::vector<bool> no_carry(16, false);  // a = 0, b = 0: kill chain
  const auto without = sim.run(no_carry, delays);

  EXPECT_GT(with_carry[ports.sum[7]].time_ps,
            without[ports.sum[7]].time_ps + 5.0);
}

TEST(TimingSim, RunValidatesSizes) {
  Netlist net;
  net.add_input("a");
  TimingSimulator sim(net);
  EXPECT_THROW(sim.run({}, {0.0}), std::invalid_argument);
  EXPECT_THROW(sim.run({true}, {}), std::invalid_argument);
}

// ----------------------------------------------------------------- Arbiter

TEST(Arbiter, DecidesBySignDeterministically) {
  EXPECT_TRUE(Arbiter::decide(1.0));
  EXPECT_FALSE(Arbiter::decide(-1.0));
  EXPECT_FALSE(Arbiter::decide(0.0));
}

TEST(Arbiter, ProbabilityMonotoneInDelta) {
  const Arbiter arb({.meta_tau_ps = 2.0});
  EXPECT_LT(arb.probability_one(-5.0), arb.probability_one(0.0));
  EXPECT_LT(arb.probability_one(0.0), arb.probability_one(5.0));
  EXPECT_DOUBLE_EQ(arb.probability_one(0.0), 0.5);
}

TEST(Arbiter, LargeGapsAreDeterministic) {
  const Arbiter arb({.meta_tau_ps = 1.0});
  EXPECT_GT(arb.probability_one(20.0), 0.999999);
  EXPECT_LT(arb.probability_one(-20.0), 0.000001);
}

TEST(Arbiter, ZeroTauIsHardDecision) {
  const Arbiter arb({.meta_tau_ps = 0.0});
  EXPECT_DOUBLE_EQ(arb.probability_one(0.001), 1.0);
  EXPECT_DOUBLE_EQ(arb.probability_one(-0.001), 0.0);
}

TEST(Arbiter, SampleFrequencyMatchesProbability) {
  const Arbiter arb({.meta_tau_ps = 1.0});
  support::Xoshiro256pp rng(71);
  const double delta = 0.8;
  int ones = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ones += arb.sample(delta, rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / trials, arb.probability_one(delta),
              0.005);
}

TEST(Arbiter, MetastabilityOnlyNearZero) {
  // With a realistic tau, a 10 ps gap is essentially deterministic while a
  // 0.1 ps gap is a near coin flip — the paper's metastability story.
  const Arbiter arb({.meta_tau_ps = 1.0});
  EXPECT_NEAR(arb.probability_one(0.1), 0.5, 0.05);
  EXPECT_GT(arb.probability_one(10.0), 0.9999);
}

// ----------------------------------------- integration: race on real chip

TEST(Integration, RaceDeltasAreChipSpecific) {
  const auto circuit = netlist::build_alu_puf_circuit(8);
  const variation::TechnologyParams tech;
  const variation::QuadTreeConfig qt;
  const variation::ChipInstance chip_a(circuit.net, tech, qt, 11);
  const variation::ChipInstance chip_b(circuit.net, tech, qt, 22);
  TimingSimulator sim(circuit.net);
  const auto env = variation::Environment::nominal();
  const auto delays_a = chip_a.nominal_delays(env);
  const auto delays_b = chip_b.nominal_delays(env);

  std::vector<bool> in(16, true);  // full carry activity
  std::vector<SignalState> sa, sb;
  sim.run(in, delays_a, sa);
  sim.run(in, delays_b, sb);
  int sign_diff = 0;
  for (std::size_t i = 0; i < circuit.race0.size(); ++i) {
    const double da =
        sa[circuit.race1[i]].time_ps - sa[circuit.race0[i]].time_ps;
    const double db =
        sb[circuit.race1[i]].time_ps - sb[circuit.race0[i]].time_ps;
    EXPECT_NE(da, 0.0);
    if ((da > 0) != (db > 0)) ++sign_diff;
  }
  // Different chips should disagree on at least one race outcome.
  EXPECT_GT(sign_diff, 0);
}

// ------------------------------------------------- compiled representation

TEST(CompiledNetlist, LevelizedScheduleIsTopological) {
  const auto circuit = netlist::build_alu_puf_circuit(8);
  const CompiledNetlist compiled(circuit.net);
  EXPECT_EQ(compiled.num_active(), circuit.net.num_gates());
  EXPECT_TRUE(compiled.inputs_in_netlist_order());
  std::vector<bool> seen(circuit.net.num_gates(), false);
  for (const GateId g : compiled.schedule()) {
    const auto begin = compiled.fanin_begin(g);
    for (std::uint32_t k = 0; k < compiled.fanin_count(g); ++k) {
      EXPECT_TRUE(seen[compiled.fanins()[begin + k]])
          << "fanin scheduled after its reader";
      EXPECT_LT(compiled.level(compiled.fanins()[begin + k]),
                compiled.level(g));
    }
    seen[g] = true;
  }
}

TEST(CompiledNetlist, ObservedConeDropsUnreachableGates) {
  // a --NOT--> x (observed);  b --NOT--> y (not observed)
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId x = net.add_gate(GateKind::kNot, {a});
  const GateId y = net.add_gate(GateKind::kNot, {b});
  const CompiledNetlist compiled(net, {x});
  EXPECT_TRUE(compiled.active(a));
  EXPECT_TRUE(compiled.active(x));
  EXPECT_FALSE(compiled.active(b));
  EXPECT_FALSE(compiled.active(y));
  EXPECT_EQ(compiled.num_active(), 2u);

  // The batch engine leaves non-cone lanes zeroed.
  TimingSimulator sim(net, {x});
  DelaySet delays;
  delays.rise_ps.assign(net.num_gates(), 1.0);
  delays.fall_ps.assign(net.num_gates(), 1.0);
  const std::uint8_t lanes[] = {0, 1,   // input a
                                1, 0};  // input b
  BatchState out;
  sim.run_batch(lanes, 2, delays, out);
  EXPECT_TRUE(out.value(x, 0));
  EXPECT_FALSE(out.value(x, 1));
  EXPECT_FALSE(out.value(y, 0));
  EXPECT_EQ(out.time_ps(y, 0), 0.0);
  EXPECT_EQ(out.time_ps(y, 1), 0.0);
}

TEST(TimingSim, RejectsPermutedInputOrder) {
  // After reorder_inputs the k-th input gate in id order is no longer
  // input k; the engines' sequential input binding would silently
  // mis-assign challenge bits, so construction must throw.
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  net.add_output("o", net.add_gate(GateKind::kAnd, {a, b}));
  EXPECT_NO_THROW(TimingSimulator{net});
  net.reorder_inputs({1, 0});
  EXPECT_THROW(TimingSimulator{net}, std::invalid_argument);
}

TEST(TimingSim, BatchRejectsBadDelayShape) {
  Netlist net;
  const GateId a = net.add_input("a");
  net.add_output("o", net.add_gate(GateKind::kNot, {a}));
  TimingSimulator sim(net);
  const std::uint8_t lanes[] = {0, 1};
  BatchState out;
  BatchDelays delays;  // wrong batch / sizes
  delays.batch = 3;
  EXPECT_THROW(sim.run_batch(lanes, 2, delays, out), std::invalid_argument);
}

// ---------------------------------------------------- bit-sliced engine

// Exactness is the contract: the bit-sliced engine must produce the same
// doubles as the scalar simulator (same classification-free arithmetic,
// symmetric-exact min/max), so every comparison below is ==, not NEAR.

TEST(BitSlice, SharedModeMatchesScalarOnAluCircuit) {
  const auto circuit = netlist::build_alu_puf_circuit(8);
  const variation::ChipInstance chip(circuit.net, {}, {}, 1234);
  const auto delays = chip.nominal_delays(variation::Environment::nominal());
  const TimingSimulator sim(circuit.net);
  const BitSliceEngine slice(sim.compiled(), delays);

  // 100 lanes: one full 64-lane word plus a 36-lane tail.
  const std::size_t count = 100;
  support::Xoshiro256pp rng(91);
  std::vector<support::BitVector> challenges;
  for (std::size_t i = 0; i < count; ++i) {
    challenges.push_back(
        support::BitVector::random(circuit.net.num_inputs(), rng));
  }
  std::vector<std::uint64_t> words;
  pack_input_words(challenges.data(), count, circuit.net.num_inputs(), words);
  BitSliceState out;
  slice.run(words.data(), count, out);

  std::vector<SignalState> states;
  for (std::size_t b = 0; b < count; ++b) {
    sim.run(challenges[b], delays, states);
    for (std::size_t g = 0; g < circuit.net.num_gates(); ++g) {
      const auto id = static_cast<GateId>(g);
      ASSERT_EQ(slice.value(out, id, b), states[g].value)
          << "gate " << g << " lane " << b;
      ASSERT_EQ(slice.time_ps(out, id, b), states[g].time_ps)
          << "gate " << g << " lane " << b;
    }
  }
}

TEST(BitSlice, LaneDelayModeMatchesRunBatch) {
  const auto circuit = netlist::build_alu_puf_circuit(8);
  const variation::ChipInstance chip(circuit.net, {}, {}, 1234);
  const auto base = chip.nominal_delays(variation::Environment::nominal());
  const TimingSimulator sim(circuit.net);
  const BitSliceEngine slice(sim.compiled());

  const std::size_t count = 70;  // non-multiple-of-64 tail
  const std::size_t gates = circuit.net.num_gates();
  support::Xoshiro256pp rng(92);
  BatchDelays delays;
  delays.batch = count;
  delays.rise_ps.resize(gates * count);
  delays.fall_ps.resize(gates * count);
  for (std::size_t g = 0; g < gates; ++g) {
    for (std::size_t b = 0; b < count; ++b) {
      const double jitter = 1.0 + 0.02 * rng.uniform();
      delays.rise_ps[g * count + b] = base.rise_ps[g] * jitter;
      delays.fall_ps[g * count + b] = base.fall_ps[g] * jitter;
    }
  }
  std::vector<support::BitVector> challenges;
  for (std::size_t i = 0; i < count; ++i) {
    challenges.push_back(
        support::BitVector::random(circuit.net.num_inputs(), rng));
  }
  std::vector<std::uint64_t> words;
  pack_input_words(challenges.data(), count, circuit.net.num_inputs(), words);
  BitSliceState out;
  slice.run(words.data(), count, delays, out);

  std::vector<std::uint8_t> lanes;
  pack_input_lanes(challenges.data(), count, circuit.net.num_inputs(), lanes);
  BatchState soa;
  sim.run_batch(lanes.data(), count, delays, soa);
  for (std::size_t g = 0; g < gates; ++g) {
    const auto id = static_cast<GateId>(g);
    for (std::size_t b = 0; b < count; ++b) {
      ASSERT_EQ(slice.value(out, id, b), soa.value(id, b) != 0)
          << "gate " << g << " lane " << b;
      ASSERT_EQ(slice.time_ps(out, id, b), soa.time_ps(id, b))
          << "gate " << g << " lane " << b;
    }
  }
}

TEST(BitSlice, OutsideConeGatesReadZero) {
  // Same shape as ObservedConeDropsUnreachableGates: y is outside the
  // observed cone, so its values and times must read back zeroed.
  Netlist net;
  const GateId a = net.add_input("a");
  const GateId b = net.add_input("b");
  const GateId x = net.add_gate(GateKind::kNot, {a});
  const GateId y = net.add_gate(GateKind::kNot, {b});
  const TimingSimulator sim(net, {x});
  DelaySet delays;
  delays.rise_ps.assign(net.num_gates(), 1.0);
  delays.fall_ps.assign(net.num_gates(), 1.0);
  const BitSliceEngine slice(sim.compiled(), delays);

  support::BitVector challenges[2];
  challenges[0] = support::BitVector(2);
  challenges[1] = support::BitVector(2);
  challenges[1].set(0, true);  // a=1 on lane 1
  challenges[0].set(1, true);  // b=1 on lane 0 (feeds only the dead cone)
  std::vector<std::uint64_t> words;
  pack_input_words(challenges, 2, 2, words);
  BitSliceState out;
  slice.run(words.data(), 2, out);
  EXPECT_TRUE(slice.value(out, x, 0));
  EXPECT_FALSE(slice.value(out, x, 1));
  EXPECT_FALSE(slice.value(out, y, 0));
  EXPECT_FALSE(slice.value(out, y, 1));
  EXPECT_EQ(slice.time_ps(out, y, 0), 0.0);
  EXPECT_EQ(slice.time_ps(out, y, 1), 0.0);
}

TEST(BitSlice, RaceWordsMatchesArbiterAndZerosTail) {
  const auto circuit = netlist::build_alu_puf_circuit(8);
  const variation::ChipInstance chip(circuit.net, {}, {}, 77);
  const auto delays = chip.nominal_delays(variation::Environment::nominal());
  const TimingSimulator sim(circuit.net);
  const BitSliceEngine slice(sim.compiled(), delays);

  const std::size_t count = 70;
  support::Xoshiro256pp rng(93);
  std::vector<support::BitVector> challenges;
  for (std::size_t i = 0; i < count; ++i) {
    challenges.push_back(
        support::BitVector::random(circuit.net.num_inputs(), rng));
  }
  std::vector<std::uint64_t> words;
  pack_input_words(challenges.data(), count, circuit.net.num_inputs(), words);
  BitSliceState out;
  slice.run(words.data(), count, out);

  std::vector<std::uint64_t> race(out.nwords);
  for (std::size_t i = 0; i < circuit.race0.size(); ++i) {
    slice.race_words(out, circuit.race0[i], circuit.race1[i], race.data());
    for (std::size_t b = 0; b < count; ++b) {
      const double delta = slice.time_ps(out, circuit.race1[i], b) -
                           slice.time_ps(out, circuit.race0[i], b);
      const bool bit = (race[b >> 6] >> (b & 63)) & 1ULL;
      ASSERT_EQ(bit, Arbiter::decide(delta)) << "race " << i << " lane " << b;
    }
    // Lanes past `count` in the tail word must be zero.
    for (std::size_t b = count; b < out.nwords * 64; ++b) {
      ASSERT_FALSE((race[b >> 6] >> (b & 63)) & 1ULL);
    }
  }
}

TEST(BitSlice, StateReuseAcrossRunsAndEngines) {
  // BitSliceState caches a materialized execution plan stamped with its
  // owning engine; reusing one state across runs and across engines must
  // stay correct (the stamp forces a rebuild on engine change).
  const auto circuit = netlist::build_alu_puf_circuit(8);
  const variation::ChipInstance chip_a(circuit.net, {}, {}, 1);
  const variation::ChipInstance chip_b(circuit.net, {}, {}, 2);
  const auto env = variation::Environment::nominal();
  const auto delays_a = chip_a.nominal_delays(env);
  const auto delays_b = chip_b.nominal_delays(env);
  const TimingSimulator sim(circuit.net);
  const BitSliceEngine slice_a(sim.compiled(), delays_a);
  const BitSliceEngine slice_b(sim.compiled(), delays_b);

  const std::size_t count = 65;
  support::Xoshiro256pp rng(94);
  std::vector<support::BitVector> challenges;
  for (std::size_t i = 0; i < count; ++i) {
    challenges.push_back(
        support::BitVector::random(circuit.net.num_inputs(), rng));
  }
  std::vector<std::uint64_t> words;
  pack_input_words(challenges.data(), count, circuit.net.num_inputs(), words);

  BitSliceState shared_state;  // one state threaded through everything
  slice_a.run(words.data(), count, shared_state);
  std::vector<double> first_a(circuit.race0.size() * count);
  for (std::size_t i = 0; i < circuit.race0.size(); ++i) {
    for (std::size_t b = 0; b < count; ++b) {
      first_a[i * count + b] = slice_a.time_ps(shared_state, circuit.race0[i], b);
    }
  }
  // Same engine, same inputs, same state: identical bytes.
  slice_a.run(words.data(), count, shared_state);
  for (std::size_t i = 0; i < circuit.race0.size(); ++i) {
    for (std::size_t b = 0; b < count; ++b) {
      ASSERT_EQ(slice_a.time_ps(shared_state, circuit.race0[i], b),
                first_a[i * count + b]);
    }
  }
  // Different engine, same state: must match a fresh-state run of B.
  slice_b.run(words.data(), count, shared_state);
  BitSliceState fresh;
  slice_b.run(words.data(), count, fresh);
  for (std::size_t g = 0; g < circuit.net.num_gates(); ++g) {
    const auto id = static_cast<GateId>(g);
    for (std::size_t b = 0; b < count; ++b) {
      ASSERT_EQ(slice_b.value(shared_state, id, b), slice_b.value(fresh, id, b));
      ASSERT_EQ(slice_b.time_ps(shared_state, id, b),
                slice_b.time_ps(fresh, id, b));
    }
  }
}

TEST(BitSlice, RunValidatesModeAndShapes) {
  Netlist net;
  const GateId a = net.add_input("a");
  net.add_output("o", net.add_gate(GateKind::kNot, {a}));
  const TimingSimulator sim(net);
  DelaySet shared;
  shared.rise_ps.assign(net.num_gates(), 1.0);
  shared.fall_ps.assign(net.num_gates(), 1.0);
  const BitSliceEngine lane_engine(sim.compiled());
  const BitSliceEngine shared_engine(sim.compiled(), shared);

  const std::uint64_t words[] = {1};
  BitSliceState out;
  BatchDelays lane_delays;
  lane_delays.batch = 1;
  lane_delays.rise_ps.assign(net.num_gates(), 1.0);
  lane_delays.fall_ps.assign(net.num_gates(), 1.0);

  // Empty batches are rejected in both modes.
  EXPECT_THROW(shared_engine.run(words, 0, out), std::invalid_argument);
  EXPECT_THROW(lane_engine.run(words, 0, lane_delays, out),
               std::invalid_argument);
  // Shared-mode run on a lane engine (and vice versa) is a usage bug.
  EXPECT_THROW(lane_engine.run(words, 1, out), std::logic_error);
  EXPECT_THROW(shared_engine.run(words, 1, lane_delays, out),
               std::logic_error);
  // Lane-delay shape must match the lane count.
  BatchDelays bad = lane_delays;
  bad.batch = 3;
  EXPECT_THROW(lane_engine.run(words, 1, bad, out), std::invalid_argument);
  // Shared ctor rejects a delay set sized for a different netlist.
  DelaySet wrong;
  wrong.rise_ps.assign(net.num_gates() + 1, 1.0);
  wrong.fall_ps.assign(net.num_gates() + 1, 1.0);
  EXPECT_THROW(BitSliceEngine(sim.compiled(), wrong), std::invalid_argument);
}

}  // namespace
}  // namespace pufatt::timingsim
