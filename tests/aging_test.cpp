#include <gtest/gtest.h>

#include "alupuf/aging_tuner.hpp"
#include "alupuf/alu_puf.hpp"
#include "netlist/builder.hpp"
#include "support/stats.hpp"
#include "variation/aging.hpp"
#include "variation/chip.hpp"

namespace pufatt {
namespace {

using support::BitVector;
using support::Xoshiro256pp;

// ------------------------------------------------------------ shift model

TEST(AgingModel, ZeroStressZeroShift) {
  const variation::AgingParams params;
  EXPECT_DOUBLE_EQ(variation::aging_vth_shift(4e-3, 0.0, 100.0, params), 0.0);
  EXPECT_DOUBLE_EQ(variation::aging_vth_shift(4e-3, 1.0, 0.0, params), 0.0);
}

TEST(AgingModel, PowerLawMonotoneAndSublinear) {
  const variation::AgingParams params;
  const double s1 = variation::aging_vth_shift(4e-3, 1.0, 100.0, params);
  const double s2 = variation::aging_vth_shift(4e-3, 1.0, 1000.0, params);
  EXPECT_GT(s2, s1);
  EXPECT_LT(s2, 10.0 * s1);  // sublinear in time (exponent < 1)
}

TEST(AgingModel, DutyScalesStress) {
  const variation::AgingParams params;
  EXPECT_LT(variation::aging_vth_shift(4e-3, 0.25, 100.0, params),
            variation::aging_vth_shift(4e-3, 1.0, 100.0, params));
}

TEST(AgingModel, RejectsBadInputs) {
  const variation::AgingParams params;
  EXPECT_THROW(variation::aging_vth_shift(4e-3, -0.1, 1.0, params),
               std::invalid_argument);
  EXPECT_THROW(variation::aging_vth_shift(4e-3, 1.1, 1.0, params),
               std::invalid_argument);
  EXPECT_THROW(variation::aging_vth_shift(4e-3, 1.0, -1.0, params),
               std::invalid_argument);
}

// ------------------------------------------------------------ chip aging

class AgingChipFixture : public ::testing::Test {
 protected:
  AgingChipFixture() : circuit_(netlist::build_alu_puf_circuit(8)) {}
  netlist::AluPufCircuit circuit_;
  variation::TechnologyParams tech_;
  variation::QuadTreeConfig qt_;
  variation::AgingParams aging_;
};

TEST_F(AgingChipFixture, StressRaisesVthAndDelay) {
  variation::ChipInstance chip(circuit_.net, tech_, qt_, 9);
  const auto gate = circuit_.race0[0];
  const double vth_before = chip.vth(gate);
  const auto delays_before = chip.nominal_delays({});
  chip.apply_stress(gate, 1.0, 1000.0, aging_);
  EXPECT_GT(chip.vth(gate), vth_before);
  EXPECT_GT(chip.aging_shift_v(gate), 0.0);
  const auto delays_after = chip.nominal_delays({});
  EXPECT_GT(delays_after.rise_ps[gate], delays_before.rise_ps[gate]);
  EXPECT_GT(delays_after.fall_ps[gate], delays_before.fall_ps[gate]);
}

TEST_F(AgingChipFixture, StressAccumulates) {
  variation::ChipInstance chip(circuit_.net, tech_, qt_, 10);
  const auto gate = circuit_.race0[1];
  chip.apply_stress(gate, 1.0, 100.0, aging_);
  const double first = chip.aging_shift_v(gate);
  chip.apply_stress(gate, 1.0, 100.0, aging_);
  EXPECT_NEAR(chip.aging_shift_v(gate), 2.0 * first, 1e-12);
}

TEST_F(AgingChipFixture, UniformAgingShiftsEveryLogicGate) {
  variation::ChipInstance chip(circuit_.net, tech_, qt_, 11);
  chip.age_uniformly(0.5, 10'000.0, aging_);
  std::size_t shifted = 0;
  for (std::size_t g = 0; g < circuit_.net.num_gates(); ++g) {
    if (chip.aging_shift_v(static_cast<netlist::GateId>(g)) > 0.0) ++shifted;
  }
  EXPECT_EQ(shifted, circuit_.net.logic_gate_count());
}

TEST_F(AgingChipFixture, AgingCoefficientsVaryPerGate) {
  // Two gates under identical stress drift differently (fab lottery on the
  // NBTI coefficient) — this is what slowly degrades a stale enrollment.
  variation::ChipInstance chip(circuit_.net, tech_, qt_, 12);
  chip.age_uniformly(1.0, 1000.0, aging_);
  const double a = chip.aging_shift_v(circuit_.race0[0]);
  const double b = chip.aging_shift_v(circuit_.race0[1]);
  EXPECT_NE(a, b);
}

// ------------------------------------------------------------ PUF aging

TEST(AluPufAging, UniformAgingDriftsResponses) {
  alupuf::AluPufConfig config;
  config.width = 32;
  alupuf::AluPuf puf(config, 77);
  const alupuf::AluPufEmulator fresh_model(32, puf.export_model());
  Xoshiro256pp rng(13);

  // Ten years at moderate duty: responses drift measurably versus the
  // enrollment-time model, but far less than inter-chip distance.
  puf.age_uniformly(0.5, 10.0 * 365 * 24, {});
  support::OnlineStats hd;
  const auto env = variation::Environment::nominal();
  for (int t = 0; t < 150; ++t) {
    const auto c = BitVector::random(64, rng);
    hd.add(static_cast<double>(
        fresh_model.eval(c).hamming_distance(puf.eval(c, env, rng))));
  }
  EXPECT_GT(hd.mean(), 1.0);   // staleness is visible...
  EXPECT_LT(hd.mean(), 10.0);  // ...but nowhere near a different chip
}

TEST(AluPufAging, ReenrollmentRestoresAgreement) {
  alupuf::AluPufConfig config;
  config.width = 32;
  alupuf::AluPuf puf(config, 78);
  Xoshiro256pp rng(14);
  puf.age_uniformly(0.5, 10.0 * 365 * 24, {});
  const alupuf::AluPufEmulator refreshed(32, puf.export_model());
  support::OnlineStats hd;
  const auto env = variation::Environment::nominal();
  for (int t = 0; t < 150; ++t) {
    const auto c = BitVector::random(64, rng);
    hd.add(static_cast<double>(
        refreshed.eval(c).hamming_distance(puf.eval(c, env, rng))));
  }
  EXPECT_LT(hd.mean(), 3.0);  // back to the noise floor
}

TEST(AluPufAging, StageStressWidensThatBitsMargin) {
  alupuf::AluPufConfig config;
  config.width = 16;
  alupuf::AluPuf puf(config, 79);
  Xoshiro256pp rng(15);
  const auto challenge = BitVector::random(32, rng);
  const auto env = variation::Environment::nominal();
  const double before = puf.race_deltas(challenge, env)[5];
  // Slow ALU1's stage 5: delta = t1 - t0 must move positive.
  puf.apply_stage_stress(5, /*alu1=*/true, 1.0, 2000.0, {});
  const double after = puf.race_deltas(challenge, env)[5];
  EXPECT_GT(after, before);
}

TEST(AluPufAging, StageStressValidatesBit) {
  alupuf::AluPufConfig config;
  config.width = 8;
  alupuf::AluPuf puf(config, 80);
  EXPECT_THROW(puf.apply_stage_stress(8, true, 1.0, 1.0, {}),
               std::invalid_argument);
}

// --------------------------------------------------------------- tuner

TEST(AgingTuner, ImprovesStability) {
  alupuf::AluPufConfig config;
  config.width = 32;
  alupuf::AluPuf puf(config, 555);
  Xoshiro256pp rng(16);
  const auto report = alupuf::tune_by_aging(puf, {}, rng);
  EXPECT_GT(report.stress_actions, 0u);
  EXPECT_GT(report.mean_abs_margin_after, report.mean_abs_margin_before);
  EXPECT_LT(report.flip_rate_after, report.flip_rate_before * 0.8)
      << "tuning should cut the repeat-eval flip rate substantially";
}

TEST(AgingTuner, TunedChipStillVerifiesAfterReenrollment) {
  // The tuning -> enroll order matters: H is extracted from the tuned die.
  alupuf::AluPufConfig config;
  config.width = 32;
  Xoshiro256pp rng(17);
  alupuf::AluPuf puf(config, 556);
  alupuf::tune_by_aging(puf, {}, rng);
  const alupuf::AluPufEmulator tuned_model(32, puf.export_model());
  support::OnlineStats hd;
  const auto env = variation::Environment::nominal();
  for (int t = 0; t < 100; ++t) {
    const auto c = BitVector::random(64, rng);
    hd.add(static_cast<double>(
        tuned_model.eval(c).hamming_distance(puf.eval(c, env, rng))));
  }
  EXPECT_LT(hd.mean(), 2.5);
}

TEST(AgingTuner, IdempotentOnceStable) {
  alupuf::AluPufConfig config;
  config.width = 16;
  alupuf::AluPuf puf(config, 557);
  Xoshiro256pp rng(18);
  alupuf::tune_by_aging(puf, {}, rng);
  const auto second = alupuf::tune_by_aging(puf, {}, rng);
  // After one full tuning pass, most bits sit above threshold: the second
  // pass needs far fewer stress actions than a full sweep would
  // (16 bits x 4 rounds = 64 ceiling; residual churn stays well below it).
  EXPECT_LT(second.stress_actions, 16u);
}

}  // namespace
}  // namespace pufatt
