// Cross-process tracing tests: the wire trace context (frame-level codec
// and interop guarantees), the client/server span stitching through a real
// socket pipeline, and the obs::merge_traces join itself.  The pipeline
// test is the in-process twin of the trace_merge_pipeline ctest in
// tools/CMakeLists.txt; span-dependent cases GTEST_SKIP on the notrace
// tree, while the codec and interop tests run everywhere (the wire format
// does not depend on PUFATT_TRACE).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/serialize.hpp"
#include "net/fleet.hpp"
#include "net/frame.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/trace.hpp"
#include "obs/trace_merge.hpp"
#include "obs/trace_read.hpp"
#include "service/emulator_cache.hpp"

namespace pufatt::net {
namespace {

// --- wire trace context ------------------------------------------------------

TEST(WireTraceContext, RoundTripsThroughEveryCodec) {
  const TraceContext ctx{0xAB12, 0xCD34};
  FrameDecoder decoder;
  std::vector<FrameDecoder::Frame> out;

  ASSERT_TRUE(
      decoder.feed(encode_job_request(JobRequest{"dev-1", 1, 2, 3}, ctx), out));
  ASSERT_TRUE(decoder.feed(
      encode_verdict_reply(VerdictReply{3, service::JobOutcome::kAccepted,
                                        core::SessionStatus::kAccepted, 1, 9.0},
                           ctx),
      out));
  ASSERT_TRUE(decoder.feed(encode_busy_reply(BusyReply{4, 100.0}, ctx), out));
  ASSERT_EQ(out.size(), 3u);
  for (const auto& frame : out) {
    EXPECT_TRUE(frame.trace.traced());
    EXPECT_EQ(frame.trace.trace_id, ctx.trace_id);
    EXPECT_EQ(frame.trace.span_id, ctx.span_id);
  }
  // The context is framing metadata, not payload: the payload codecs must
  // see exactly the bytes they produced.
  EXPECT_EQ(decode_job_request(out[0].payload).device_id, "dev-1");
  EXPECT_EQ(decode_verdict_reply(out[1].payload).tag, 3u);
  EXPECT_EQ(decode_busy_reply(out[2].payload).tag, 4u);
}

TEST(WireTraceContext, UntracedEncodingIsByteIdenticalToLegacy) {
  // TraceContext{0,0} must not change a single bit on the wire — this is
  // the interop guarantee with pre-tracing peers.
  const JobRequest request{"dev-7", 11, 22, 33};
  EXPECT_EQ(encode_job_request(request),
            encode_job_request(request, TraceContext{0, 0}));
  const auto frame = encode_job_request(request);
  FrameDecoder decoder;
  std::vector<FrameDecoder::Frame> out;
  ASSERT_TRUE(decoder.feed(frame, out));
  EXPECT_FALSE(out[0].trace.traced());
  EXPECT_EQ(out[0].trace.trace_id, 0u);
  EXPECT_EQ(out[0].trace.span_id, 0u);
}

TEST(WireTraceContext, TracedBitWithTruncatedContextPoisons) {
  // Hand-build a frame with the traced bit set but a 2-byte payload — too
  // short to hold the 16-byte context — and a *valid* CRC, so the decoder
  // must reject on the context bound itself, not the checksum.
  std::vector<std::uint8_t> frame;
  const auto push_u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      frame.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  push_u32(kFrameMagic);
  push_u32(static_cast<std::uint32_t>(MsgType::kBusyReply) | kFrameTracedBit);
  push_u32(2);
  frame.push_back(0x01);
  frame.push_back(0x02);
  push_u32(core::crc32(frame.data(), frame.size()));

  FrameDecoder decoder;
  std::vector<FrameDecoder::Frame> out;
  EXPECT_FALSE(decoder.feed(frame, out));
  EXPECT_TRUE(decoder.failed());
  EXPECT_NE(decoder.error().find("trace context"), std::string::npos)
      << decoder.error();

  // Poisoned means poisoned, same as every other framing violation.
  EXPECT_FALSE(decoder.feed(encode_busy_reply(BusyReply{1, 5.0}), out));
  EXPECT_TRUE(out.empty());

  // Sanity: a real traced frame is exactly 16 bytes longer than the bare
  // encoding of the same message.
  const auto traced = encode_busy_reply(BusyReply{1, 5.0}, TraceContext{9, 9});
  EXPECT_EQ(traced.size(), encode_busy_reply(BusyReply{1, 5.0}).size() + 16);
}

// --- server interop ----------------------------------------------------------

const SimFleet& fleet() {
  static const SimFleet instance(3, 0x7E57F1EE7);
  return instance;
}

ResponderFactory fleet_factory() {
  return [](const JobRequest& request) {
    return fleet().responder_for(request.device_id, request.rng_seed);
  };
}

struct RunningServer {
  explicit RunningServer(ServerConfig config)
      : cache(fleet().registry(), fleet().code(), fleet().size()),
        server(cache, fleet_factory(), config),
        thread([this] { server.run(); }) {}
  ~RunningServer() {
    server.stop();
    thread.join();
  }
  service::EmulatorCache cache;
  AttestationServer server;
  std::thread thread;
};

ServerConfig base_config() {
  ServerConfig config;
  config.endpoint = Endpoint::tcp("127.0.0.1", 0);
  config.pool.workers = 2;
  config.pool.queue_capacity = 16;
  return config;
}

/// Minimal blocking round trip for one request frame.
FrameDecoder::Frame roundtrip(const Endpoint& endpoint,
                              const std::vector<std::uint8_t>& request) {
  Fd fd = connect_to(endpoint);
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd.get(), request.data() + sent, request.size() - sent, 0);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
    } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
               errno != EINTR) {
      ADD_FAILURE() << "send failed";
      return {};
    }
  }
  FrameDecoder decoder;
  std::vector<FrameDecoder::Frame> out;
  std::uint8_t buf[4096];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (out.empty() && std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
    if (n > 0) {
      decoder.feed(buf, static_cast<std::size_t>(n), out);
    } else if (n == 0) {
      break;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  if (out.empty()) {
    ADD_FAILURE() << "no reply before deadline";
    return {};
  }
  return out[0];
}

TEST(TraceInterop, UntracedClientAgainstTracedServerGetsUntracedReply) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  auto config = base_config();
  config.tracer = &tracer;
  config.pool.tracer = &tracer;
  RunningServer rs(config);

  const auto reply = roundtrip(
      rs.server.bound_endpoint(),
      encode_job_request(JobRequest{SimFleet::device_id(0), 1, 2, 3}));
  ASSERT_EQ(reply.type, MsgType::kVerdictReply);
  EXPECT_EQ(decode_verdict_reply(reply.payload).tag, 3u);
  // An untraced request must never grow a trace context on the way back:
  // a pre-tracing client would reject the unknown bytes.
  EXPECT_FALSE(reply.trace.traced());
}

TEST(TraceInterop, TracedClientAgainstUntracedServerStillGetsVerdict) {
  RunningServer rs(base_config());  // no tracer anywhere

  const auto reply =
      roundtrip(rs.server.bound_endpoint(),
                encode_job_request(JobRequest{SimFleet::device_id(1), 4, 5, 6},
                                   TraceContext{0x77, 0x77}));
  ASSERT_EQ(reply.type, MsgType::kVerdictReply);
  EXPECT_EQ(decode_verdict_reply(reply.payload).tag, 6u);
  // The trace id is echoed even though the server recorded nothing; the
  // span half is 0 (there is no server root to point at).
  EXPECT_EQ(reply.trace.trace_id, 0x77u);
  EXPECT_EQ(reply.trace.span_id, 0u);
}

// --- cross-process merge, end to end ----------------------------------------

TEST(TraceMergePipeline, ReconstructsLinkedTimelinesAcrossProcesses) {
  if (!obs::kTraceCompiled) {
    GTEST_SKIP() << "tracing hooks compiled out (PUFATT_TRACE=0)";
  }
  // Server and client run *separate* tracers, exactly like two processes:
  // independent id spaces, joined only through the wire trace context.
  obs::Tracer server_tracer;
  server_tracer.set_enabled(true);
  auto config = base_config();
  config.tracer = &server_tracer;
  config.pool.tracer = &server_tracer;
  RunningServer rs(config);

  obs::Tracer client_tracer;
  client_tracer.set_enabled(true);
  LoadGenConfig lcfg;
  lcfg.endpoint = rs.server.bound_endpoint();
  lcfg.connections = 4;
  lcfg.jobs_per_connection = 6;
  lcfg.devices = fleet().size();  // known devices only: every job joins
  lcfg.tracer = &client_tracer;
  const auto report = LoadGenerator(lcfg).run();
  ASSERT_EQ(report.verdicts, report.jobs);

  // Both sides export through the same serializer a real deployment uses.
  server_tracer.set_enabled(false);
  client_tracer.set_enabled(false);
  std::vector<obs::TraceFile> files(2);
  files[0].label = "client";
  files[0].spans = obs::read_trace(client_tracer.to_jsonl());
  files[1].label = "server";
  files[1].spans = obs::read_trace(server_tracer.to_jsonl());

  const auto merged = obs::merge_traces(files);
  EXPECT_EQ(merged.client_roots, report.jobs);
  // The acceptance bar: >= 99% of wire verdicts reconstruct into a linked
  // cross-process timeline.  With known devices and no sampling, every
  // single one must join.
  EXPECT_GE(merged.join_fraction(), 0.99);
  EXPECT_EQ(merged.joined, merged.client_roots);

  for (const auto& verdict : merged.verdicts) {
    ASSERT_TRUE(verdict.joined) << "trace " << verdict.trace;
    EXPECT_EQ(verdict.client_file, 0u);
    EXPECT_EQ(verdict.server_file, 1u);
    // The server interval nests inside the client interval, so the wire
    // residual is positive, and the decomposed stages fit inside it.
    EXPECT_GT(verdict.client_us, 0.0);
    EXPECT_GE(verdict.wire_rtt_us, 0.0) << "trace " << verdict.trace;
    EXPECT_LE(verdict.queue_us + verdict.verify_us,
              verdict.server_us * 1.0001 + 1.0)
        << "trace " << verdict.trace;
  }
}

TEST(TraceMergePipeline, ServerSpansCarryTheClientJoinKey) {
  if (!obs::kTraceCompiled) {
    GTEST_SKIP() << "tracing hooks compiled out (PUFATT_TRACE=0)";
  }
  obs::Tracer server_tracer;
  server_tracer.set_enabled(true);
  auto config = base_config();
  config.tracer = &server_tracer;
  config.pool.tracer = &server_tracer;
  RunningServer rs(config);

  const auto reply =
      roundtrip(rs.server.bound_endpoint(),
                encode_job_request(JobRequest{SimFleet::device_id(0), 7, 8, 9},
                                   TraceContext{0x1234, 0x1234}));
  ASSERT_EQ(reply.type, MsgType::kVerdictReply);
  EXPECT_EQ(reply.trace.trace_id, 0x1234u);
  EXPECT_NE(reply.trace.span_id, 0u);  // the server's pool.job root id

  server_tracer.set_enabled(false);
  bool found_root = false;
  for (const auto& rec : server_tracer.records()) {
    if (std::string(rec.name) != "pool.job") continue;
    for (std::size_t i = 0; i < rec.note_count; ++i) {
      if (std::string(rec.notes[i].key) == "trace") {
        EXPECT_EQ(rec.notes[i].value, static_cast<double>(0x1234));
        EXPECT_EQ(rec.id, reply.trace.span_id);
        found_root = true;
      }
    }
  }
  EXPECT_TRUE(found_root);
}

// --- merge_traces on synthetic spans ----------------------------------------
// Pure data-plumbing tests: these run on the notrace tree too, since the
// merge operates on parsed files, not live hooks.

obs::ParsedSpan span(const char* name, std::uint64_t id, std::uint64_t parent,
                     double dur_us,
                     std::map<std::string, double> notes = {}) {
  obs::ParsedSpan s;
  s.name = name;
  s.id = id;
  s.parent = parent;
  s.dur_us = dur_us;
  s.notes = std::move(notes);
  return s;
}

TEST(MergeTraces, JoinsOnTraceNoteAndDecomposesStages) {
  std::vector<obs::TraceFile> files(2);
  files[0].label = "client";
  files[0].spans = {
      span("client.job", 5, 0, 1000.0,
           {{"trace", 5.0}, {"outcome", 0.0}, {"busy_retries", 2.0}}),
      span("client.wire", 6, 5, 400.0),
  };
  files[1].label = "server";
  files[1].spans = {
      span("pool.job", 9, 0, 700.0, {{"trace", 5.0}, {"parent_span", 5.0}}),
      span("pool.queue_wait", 10, 9, 150.0),
      span("pool.verify", 11, 9, 500.0),
      span("session.run", 12, 11, 480.0),
      span("session.attempt", 13, 12, 480.0,
           {{"deadline_us", 100.0}, {"elapsed_us", 130.0}}),
      span("store.fsync", 14, 9, 40.0),
  };

  const auto report = obs::merge_traces(files);
  EXPECT_EQ(report.files, 2u);
  EXPECT_EQ(report.spans, 8u);
  EXPECT_EQ(report.client_roots, 1u);
  EXPECT_EQ(report.server_roots, 1u);
  EXPECT_EQ(report.joined, 1u);
  EXPECT_DOUBLE_EQ(report.join_fraction(), 1.0);

  ASSERT_EQ(report.verdicts.size(), 1u);
  const auto& v = report.verdicts[0];
  EXPECT_TRUE(v.joined);
  EXPECT_EQ(v.trace, 5u);
  EXPECT_DOUBLE_EQ(v.client_us, 1000.0);
  EXPECT_DOUBLE_EQ(v.server_us, 700.0);
  EXPECT_DOUBLE_EQ(v.wire_rtt_us, 300.0);
  EXPECT_DOUBLE_EQ(v.queue_us, 150.0);
  EXPECT_DOUBLE_EQ(v.verify_us, 500.0);
  EXPECT_DOUBLE_EQ(v.store_fsync_us, 40.0);
  EXPECT_DOUBLE_EQ(v.busy_retries, 2.0);
  // The δ-margin came from two levels down the server subtree, and this
  // one is a violation (elapsed past the deadline).
  ASSERT_EQ(v.margins_us.size(), 1u);
  EXPECT_DOUBLE_EQ(v.margins_us[0], -30.0);

  // Stage pool aggregates across files by span name.
  EXPECT_EQ(report.stage_us.at("client.job").size(), 1u);
  EXPECT_EQ(report.stage_us.at("pool.verify").size(), 1u);
}

TEST(MergeTraces, UnjoinedClientRootsStayInTheReport) {
  // An unknown-device verdict never reaches the pool: the client half
  // exists, the server half does not.  The merge must keep it visible
  // (joined = false), not silently drop it.
  std::vector<obs::TraceFile> files(2);
  files[0].label = "client";
  files[0].spans = {
      span("client.job", 3, 0, 500.0, {{"trace", 3.0}, {"outcome", 4.0}}),
      span("client.job", 4, 0, 800.0, {{"trace", 4.0}, {"outcome", 0.0}}),
  };
  files[1].label = "server";
  files[1].spans = {
      span("pool.job", 2, 0, 600.0, {{"trace", 4.0}}),
  };

  const auto report = obs::merge_traces(files);
  EXPECT_EQ(report.client_roots, 2u);
  EXPECT_EQ(report.joined, 1u);
  EXPECT_DOUBLE_EQ(report.join_fraction(), 0.5);
  ASSERT_EQ(report.verdicts.size(), 2u);
  EXPECT_FALSE(report.verdicts[0].joined);  // trace 3: no server root
  EXPECT_TRUE(report.verdicts[1].joined);
  EXPECT_DOUBLE_EQ(report.verdicts[1].wire_rtt_us, 200.0);
}

TEST(MergeTraces, LocalOnlyServerRootsDoNotJoin) {
  // A pool.job sampled locally (no wire trace, so no "trace" note) must
  // not be counted as a server root, and an untraced client.job (trace
  // note absent) is not a client root.
  std::vector<obs::TraceFile> files(1);
  files[0].spans = {
      span("pool.job", 1, 0, 100.0, {{"outcome", 0.0}}),
      span("client.job", 2, 0, 100.0, {{"outcome", 0.0}}),
  };
  const auto report = obs::merge_traces(files);
  EXPECT_EQ(report.client_roots, 0u);
  EXPECT_EQ(report.server_roots, 0u);
  EXPECT_EQ(report.joined, 0u);
  EXPECT_DOUBLE_EQ(report.join_fraction(), 0.0);
  EXPECT_TRUE(report.verdicts.empty());
}

}  // namespace
}  // namespace pufatt::net
