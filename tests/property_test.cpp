// Cross-module property tests: randomized circuits, codec cross-checks and
// reference-model fuzzing.  These guard the invariants the system-level
// arguments rest on.
#include <gtest/gtest.h>

#include <algorithm>
#include <bitset>

#include "ecc/bch.hpp"
#include "ecc/reed_muller.hpp"
#include "netlist/builder.hpp"
#include "netlist/techmap.hpp"
#include "support/bitvec.hpp"
#include "support/rng.hpp"
#include "timingsim/bitslice.hpp"
#include "timingsim/timing_sim.hpp"

namespace pufatt {
namespace {

using netlist::GateId;
using netlist::GateKind;
using netlist::Netlist;
using support::BitVector;
using support::Xoshiro256pp;

/// Random DAG circuit generator: `inputs` primary inputs, `gates` random
/// gates over earlier nets.
Netlist random_circuit(std::size_t inputs, std::size_t gates,
                       Xoshiro256pp& rng) {
  Netlist net;
  for (std::size_t i = 0; i < inputs; ++i) net.add_input("i");
  const GateKind kinds[] = {GateKind::kBuf,  GateKind::kNot, GateKind::kAnd,
                            GateKind::kOr,   GateKind::kNand, GateKind::kNor,
                            GateKind::kXor,  GateKind::kXnor, GateKind::kMux};
  for (std::size_t g = 0; g < gates; ++g) {
    const GateKind kind = kinds[rng.uniform_u64(std::size(kinds))];
    const auto pick = [&] {
      return static_cast<GateId>(rng.uniform_u64(net.num_gates()));
    };
    GateId id = 0;
    switch (netlist::required_fanins(kind)) {
      case 1:
        id = net.add_gate(kind, {pick()});
        break;
      case 3:
        id = net.add_gate(kind, {pick(), pick(), pick()});
        break;
      default: {
        const std::size_t fanins = 2 + rng.uniform_u64(3);
        std::vector<GateId> f;
        for (std::size_t k = 0; k < fanins; ++k) f.push_back(pick());
        id = net.add_gate(kind, std::move(f));
        break;
      }
    }
    if (g + 8 >= gates) net.add_output("o", id);
  }
  return net;
}

class RandomCircuit : public ::testing::TestWithParam<int> {};

TEST_P(RandomCircuit, TimingValuesMatchFunctionalModel) {
  // Whatever the delays, the timing simulator's settled values must equal
  // the pure functional evaluation.
  Xoshiro256pp rng(1000 + GetParam());
  const auto net = random_circuit(6, 60, rng);
  timingsim::TimingSimulator sim(net);
  timingsim::DelaySet delays;
  delays.rise_ps.resize(net.num_gates());
  delays.fall_ps.resize(net.num_gates());
  for (std::size_t g = 0; g < net.num_gates(); ++g) {
    delays.rise_ps[g] = rng.uniform(1.0, 30.0);
    delays.fall_ps[g] = rng.uniform(1.0, 30.0);
  }
  std::vector<timingsim::SignalState> states;
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<bool> in;
    for (std::size_t i = 0; i < net.num_inputs(); ++i) {
      in.push_back(rng.bernoulli(0.5));
    }
    const auto golden = net.evaluate(in);
    sim.run(in, delays, states);
    for (std::size_t g = 0; g < golden.size(); ++g) {
      ASSERT_EQ(states[g].value, golden[g]) << "gate " << g;
    }
  }
}

TEST_P(RandomCircuit, SettlingTimesAreCausal) {
  // Every gate settles no earlier than the earliest input could reach it:
  // time >= 0 for anything fed (transitively) by a primary input, and
  // settle times never regress below a fanin that the value depends on
  // being determined... minimally: all times are finite-or-kAlwaysSettled
  // and non-negative when finite.
  Xoshiro256pp rng(2000 + GetParam());
  const auto net = random_circuit(5, 50, rng);
  timingsim::TimingSimulator sim(net);
  std::vector<double> delays(net.num_gates(), 1.0);
  for (std::size_t g = 0; g < net.num_gates(); ++g) {
    const auto kind = net.gate(static_cast<GateId>(g)).kind;
    if (kind == GateKind::kInput || kind == GateKind::kConst0 ||
        kind == GateKind::kConst1) {
      delays[g] = 0.0;
    }
  }
  std::vector<bool> in(net.num_inputs(), true);
  const auto states = sim.run(in, delays);
  for (std::size_t g = 0; g < states.size(); ++g) {
    const double t = states[g].time_ps;
    ASSERT_TRUE(t == timingsim::kAlwaysSettled || t >= 0.0);
  }
}

TEST_P(RandomCircuit, UniformDelayScalingScalesTimes) {
  // Multiplying every delay by a constant multiplies every finite settle
  // time by the same constant (timing is homogeneous of degree 1).
  Xoshiro256pp rng(3000 + GetParam());
  const auto net = random_circuit(4, 40, rng);
  timingsim::TimingSimulator sim(net);
  std::vector<double> delays(net.num_gates());
  for (auto& d : delays) d = rng.uniform(1.0, 10.0);
  for (std::size_t g = 0; g < net.num_gates(); ++g) {
    const auto kind = net.gate(static_cast<GateId>(g)).kind;
    if (kind == GateKind::kInput || kind == GateKind::kConst0 ||
        kind == GateKind::kConst1) {
      delays[g] = 0.0;
    }
  }
  auto scaled = delays;
  for (auto& d : scaled) d *= 3.0;
  std::vector<bool> in;
  for (std::size_t i = 0; i < net.num_inputs(); ++i) {
    in.push_back(rng.bernoulli(0.5));
  }
  const auto s1 = sim.run(in, delays);
  const auto s3 = sim.run(in, scaled);
  for (std::size_t g = 0; g < s1.size(); ++g) {
    if (s1[g].time_ps == timingsim::kAlwaysSettled) {
      ASSERT_EQ(s3[g].time_ps, timingsim::kAlwaysSettled);
    } else {
      ASSERT_NEAR(s3[g].time_ps, 3.0 * s1[g].time_ps, 1e-9);
    }
  }
}

TEST_P(RandomCircuit, BatchEngineBitIdenticalToScalar) {
  // The SoA batch kernel must produce exactly the scalar engine's doubles:
  // same operations in the same order per lane, so == not NEAR.
  Xoshiro256pp rng(5000 + GetParam());
  const auto net = random_circuit(8, 70, rng);
  timingsim::TimingSimulator sim(net);
  timingsim::DelaySet delays;
  delays.rise_ps.resize(net.num_gates());
  delays.fall_ps.resize(net.num_gates());
  for (std::size_t g = 0; g < net.num_gates(); ++g) {
    delays.rise_ps[g] = rng.uniform(1.0, 30.0);
    delays.fall_ps[g] = rng.uniform(1.0, 30.0);
  }
  const std::size_t batch = 1 + rng.uniform_u64(40);
  std::vector<BitVector> challenges;
  for (std::size_t b = 0; b < batch; ++b) {
    challenges.push_back(BitVector::random(net.num_inputs(), rng));
  }
  std::vector<std::uint8_t> lanes;
  timingsim::pack_input_lanes(challenges.data(), batch, net.num_inputs(),
                              lanes);
  timingsim::BatchState out;
  sim.run_batch(lanes.data(), batch, delays, out);
  std::vector<timingsim::SignalState> states;
  for (std::size_t b = 0; b < batch; ++b) {
    sim.run(challenges[b], delays, states);
    for (std::size_t g = 0; g < net.num_gates(); ++g) {
      ASSERT_EQ(out.value(static_cast<GateId>(g), b), states[g].value);
      ASSERT_EQ(out.time_ps(static_cast<GateId>(g), b), states[g].time_ps);
    }
  }
}

TEST_P(RandomCircuit, PerLaneDelaysMatchScalarPerLane) {
  // BatchDelays mode: every lane carries its own delay realization and
  // must equal a scalar run with that realization.
  Xoshiro256pp rng(6000 + GetParam());
  const auto net = random_circuit(6, 50, rng);
  timingsim::TimingSimulator sim(net);
  const std::size_t batch = 1 + rng.uniform_u64(12);
  std::vector<timingsim::DelaySet> per_lane(batch);
  timingsim::BatchDelays batch_delays;
  batch_delays.batch = batch;
  batch_delays.rise_ps.resize(net.num_gates() * batch);
  batch_delays.fall_ps.resize(net.num_gates() * batch);
  for (std::size_t b = 0; b < batch; ++b) {
    per_lane[b].rise_ps.resize(net.num_gates());
    per_lane[b].fall_ps.resize(net.num_gates());
    for (std::size_t g = 0; g < net.num_gates(); ++g) {
      per_lane[b].rise_ps[g] = rng.uniform(1.0, 20.0);
      per_lane[b].fall_ps[g] = rng.uniform(1.0, 20.0);
      batch_delays.rise_ps[g * batch + b] = per_lane[b].rise_ps[g];
      batch_delays.fall_ps[g * batch + b] = per_lane[b].fall_ps[g];
    }
  }
  std::vector<BitVector> challenges;
  for (std::size_t b = 0; b < batch; ++b) {
    challenges.push_back(BitVector::random(net.num_inputs(), rng));
  }
  std::vector<std::uint8_t> lanes;
  timingsim::pack_input_lanes(challenges.data(), batch, net.num_inputs(),
                              lanes);
  timingsim::BatchState out;
  sim.run_batch(lanes.data(), batch, batch_delays, out);
  std::vector<timingsim::SignalState> states;
  for (std::size_t b = 0; b < batch; ++b) {
    sim.run(challenges[b], per_lane[b], states);
    for (std::size_t g = 0; g < net.num_gates(); ++g) {
      ASSERT_EQ(out.value(static_cast<GateId>(g), b), states[g].value);
      ASSERT_EQ(out.time_ps(static_cast<GateId>(g), b), states[g].time_ps);
    }
  }
}

TEST_P(RandomCircuit, ScalarInputOverloadsAgree) {
  // BitVector, vector<bool> and raw uint8_t* inputs are the same engine.
  Xoshiro256pp rng(7000 + GetParam());
  const auto net = random_circuit(7, 40, rng);
  timingsim::TimingSimulator sim(net);
  timingsim::DelaySet delays;
  delays.rise_ps.resize(net.num_gates());
  delays.fall_ps.resize(net.num_gates());
  for (std::size_t g = 0; g < net.num_gates(); ++g) {
    delays.rise_ps[g] = rng.uniform(1.0, 9.0);
    delays.fall_ps[g] = rng.uniform(1.0, 9.0);
  }
  const auto challenge = BitVector::random(net.num_inputs(), rng);
  std::vector<bool> as_bools(net.num_inputs());
  std::vector<std::uint8_t> as_bytes(net.num_inputs());
  for (std::size_t i = 0; i < net.num_inputs(); ++i) {
    as_bools[i] = challenge.get(i);
    as_bytes[i] = challenge.get(i) ? 1 : 0;
  }
  std::vector<timingsim::SignalState> a, b, c;
  sim.run(challenge, delays, a);
  sim.run(as_bools, delays, b);
  sim.run(as_bytes.data(), as_bytes.size(), delays, c);
  for (std::size_t g = 0; g < net.num_gates(); ++g) {
    ASSERT_EQ(a[g].value, b[g].value);
    ASSERT_EQ(a[g].time_ps, b[g].time_ps);
    ASSERT_EQ(a[g].value, c[g].value);
    ASSERT_EQ(a[g].time_ps, c[g].time_ps);
  }
}

TEST_P(RandomCircuit, BitSliceSharedModeBitIdenticalToScalar) {
  // The bit-sliced engine (64 lanes per word) shares the exactness
  // contract: identical doubles to the scalar simulator, == not NEAR.
  // Batches up to ~140 lanes cover multi-word states and ragged tails.
  Xoshiro256pp rng(8000 + GetParam());
  const auto net = random_circuit(8, 70, rng);
  timingsim::TimingSimulator sim(net);
  timingsim::DelaySet delays;
  delays.rise_ps.resize(net.num_gates());
  delays.fall_ps.resize(net.num_gates());
  for (std::size_t g = 0; g < net.num_gates(); ++g) {
    delays.rise_ps[g] = rng.uniform(1.0, 30.0);
    delays.fall_ps[g] = rng.uniform(1.0, 30.0);
  }
  const timingsim::BitSliceEngine slice(sim.compiled(), delays);
  const std::size_t batch = 1 + rng.uniform_u64(140);
  std::vector<BitVector> challenges;
  for (std::size_t b = 0; b < batch; ++b) {
    challenges.push_back(BitVector::random(net.num_inputs(), rng));
  }
  std::vector<std::uint64_t> words;
  timingsim::pack_input_words(challenges.data(), batch, net.num_inputs(),
                              words);
  timingsim::BitSliceState out;
  slice.run(words.data(), batch, out);
  std::vector<timingsim::SignalState> states;
  for (std::size_t b = 0; b < batch; ++b) {
    sim.run(challenges[b], delays, states);
    for (std::size_t g = 0; g < net.num_gates(); ++g) {
      const auto id = static_cast<GateId>(g);
      ASSERT_EQ(slice.value(out, id, b), states[g].value)
          << "gate " << g << " lane " << b;
      ASSERT_EQ(slice.time_ps(out, id, b), states[g].time_ps)
          << "gate " << g << " lane " << b;
    }
  }
}

TEST_P(RandomCircuit, BitSliceLaneModeBitIdenticalToBatch) {
  // Lane-delay mode: every lane carries its own delay realization and must
  // reproduce the SoA batch engine bit-for-bit.
  Xoshiro256pp rng(9000 + GetParam());
  const auto net = random_circuit(6, 50, rng);
  timingsim::TimingSimulator sim(net);
  const timingsim::BitSliceEngine slice(sim.compiled());
  const std::size_t batch = 1 + rng.uniform_u64(100);
  timingsim::BatchDelays delays;
  delays.batch = batch;
  delays.rise_ps.resize(net.num_gates() * batch);
  delays.fall_ps.resize(net.num_gates() * batch);
  for (auto& d : delays.rise_ps) d = rng.uniform(1.0, 20.0);
  for (auto& d : delays.fall_ps) d = rng.uniform(1.0, 20.0);
  std::vector<BitVector> challenges;
  for (std::size_t b = 0; b < batch; ++b) {
    challenges.push_back(BitVector::random(net.num_inputs(), rng));
  }
  std::vector<std::uint64_t> words;
  timingsim::pack_input_words(challenges.data(), batch, net.num_inputs(),
                              words);
  timingsim::BitSliceState out;
  slice.run(words.data(), batch, delays, out);
  std::vector<std::uint8_t> lanes;
  timingsim::pack_input_lanes(challenges.data(), batch, net.num_inputs(),
                              lanes);
  timingsim::BatchState soa;
  sim.run_batch(lanes.data(), batch, delays, soa);
  for (std::size_t g = 0; g < net.num_gates(); ++g) {
    const auto id = static_cast<GateId>(g);
    for (std::size_t b = 0; b < batch; ++b) {
      ASSERT_EQ(slice.value(out, id, b), soa.value(id, b) != 0)
          << "gate " << g << " lane " << b;
      ASSERT_EQ(slice.time_ps(out, id, b), soa.time_ps(id, b))
          << "gate " << g << " lane " << b;
    }
  }
}

TEST_P(RandomCircuit, TechmapNeverExceedsGateCount) {
  Xoshiro256pp rng(4000 + GetParam());
  const auto net = random_circuit(6, 80, rng);
  EXPECT_LE(netlist::estimate_luts(net), net.logic_gate_count());
  EXPECT_GE(netlist::estimate_luts(net), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuit, ::testing::Range(0, 8));

// ------------------------------------------------------- codec cross-checks

TEST(CodecCross, Rm15MatchesExhaustiveNearestCodeword) {
  // ML decoding must return a codeword at minimum Hamming distance from
  // the input (checked exhaustively against all 64 codewords).
  const ecc::ReedMuller1 rm(5);
  std::vector<BitVector> codewords;
  for (std::uint64_t m = 0; m < 64; ++m) {
    codewords.push_back(rm.encode(BitVector(6, m)));
  }
  Xoshiro256pp rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const auto word = BitVector::random(32, rng);
    const auto decoded = rm.decode_to_codeword(word);
    ASSERT_TRUE(decoded.has_value());
    std::size_t best = 33;
    for (const auto& cw : codewords) {
      best = std::min(best, word.hamming_distance(cw));
    }
    EXPECT_EQ(decoded->hamming_distance(word), best);
  }
}

TEST(CodecCross, SoftDecodeWithUniformConfidenceMatchesHard) {
  const ecc::ReedMuller1 rm(5);
  Xoshiro256pp rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    const auto word = BitVector::random(32, rng);
    std::vector<double> llr(32);
    for (std::size_t i = 0; i < 32; ++i) llr[i] = word.get(i) ? -1.0 : 1.0;
    const auto hard = rm.decode_to_codeword(word);
    const auto soft = rm.decode_soft_to_codeword(llr);
    ASSERT_TRUE(hard && soft);
    // Equal-confidence soft decoding picks a codeword at the same distance
    // (ties may break differently).
    EXPECT_EQ(soft->hamming_distance(word), hard->hamming_distance(word));
  }
}

TEST(CodecCross, BchAndRmAgreeOnCodewordMembership) {
  // Both parity-check matrices must declare exactly their own codewords.
  const ecc::ReedMuller1 rm(5);
  const ecc::BchCode bch(5, 7);  // [31, 6]
  Xoshiro256pp rng(9);
  for (std::uint64_t m = 0; m < 64; ++m) {
    const auto rm_cw = rm.encode(BitVector(6, m));
    EXPECT_EQ(rm.syndrome(rm_cw).popcount(), 0u);
    const auto bch_cw = bch.encode(BitVector(6, m));
    EXPECT_EQ(bch.syndrome(bch_cw).popcount(), 0u);
  }
  // Random words are almost never codewords.
  int rm_hits = 0, bch_hits = 0;
  for (int t = 0; t < 200; ++t) {
    if (rm.syndrome(BitVector::random(32, rng)).popcount() == 0) ++rm_hits;
    if (bch.syndrome(BitVector::random(31, rng)).popcount() == 0) ++bch_hits;
  }
  EXPECT_LE(rm_hits, 1);
  EXPECT_LE(bch_hits, 1);
}

TEST(CodecCross, BchGuaranteedRadiusIsTight) {
  // BCH(15, t=3): decodes every weight-3 error from the zero codeword, and
  // the decoder never reports success with a *different* codeword for
  // weight <= t errors.
  const ecc::BchCode code(4, 3);
  const BitVector zero_cw(code.n());
  // All weight-1..3 error patterns (exhaustive: C(15,3) = 455 + 105 + 15).
  for (std::size_t a = 0; a < code.n(); ++a) {
    for (std::size_t b = a; b < code.n(); ++b) {
      for (std::size_t c = b; c < code.n(); ++c) {
        auto word = zero_cw;
        word.flip(a);
        if (b != a) word.flip(b);
        if (c != b && c != a) word.flip(c);
        const auto decoded = code.decode_to_codeword(word);
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->popcount(), 0u)
            << "errors at " << a << "," << b << "," << c;
      }
    }
  }
}

// --------------------------------------------------- BitVector fuzz vs ref

TEST(BitVectorFuzz, MatchesBitsetReference) {
  Xoshiro256pp rng(10);
  for (int trial = 0; trial < 200; ++trial) {
    std::bitset<96> ref_a, ref_b;
    BitVector a(96), b(96);
    for (std::size_t i = 0; i < 96; ++i) {
      const bool va = rng.bernoulli(0.5);
      const bool vb = rng.bernoulli(0.5);
      ref_a[i] = va;
      ref_b[i] = vb;
      a.set(i, va);
      b.set(i, vb);
    }
    EXPECT_EQ((a ^ b).popcount(), (ref_a ^ ref_b).count());
    EXPECT_EQ((a & b).popcount(), (ref_a & ref_b).count());
    EXPECT_EQ((a | b).popcount(), (ref_a | ref_b).count());
    EXPECT_EQ(a.popcount(), ref_a.count());
    EXPECT_EQ(a.hamming_distance(b), (ref_a ^ ref_b).count());
    // Slice/concat round trip.
    const auto lo = a.slice(0, 40);
    const auto hi = a.slice(40, 56);
    EXPECT_EQ(lo.concat(hi), a);
  }
}

// ------------------------------------------- bit-column transpose helpers

TEST(BitColumns, Transpose64x64MatchesNaiveAndIsInvolution) {
  Xoshiro256pp rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    std::uint64_t m[64];
    for (auto& w : m) w = rng.next();
    std::uint64_t t[64];
    std::copy(std::begin(m), std::end(m), std::begin(t));
    support::transpose_64x64(t);
    for (int r = 0; r < 64; ++r) {
      for (int c = 0; c < 64; ++c) {
        ASSERT_EQ((t[r] >> c) & 1ULL, (m[c] >> r) & 1ULL)
            << "row " << r << " col " << c;
      }
    }
    support::transpose_64x64(t);  // involution: transpose twice = identity
    for (int r = 0; r < 64; ++r) ASSERT_EQ(t[r], m[r]);
  }
}

TEST(BitColumns, PackUnpackRoundTripsWithStrideAndPartialBlocks) {
  Xoshiro256pp rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t count = 1 + rng.uniform_u64(64);
    const std::size_t nbits = 1 + rng.uniform_u64(150);
    const std::size_t stride = 1 + rng.uniform_u64(3);
    std::vector<BitVector> vecs;
    for (std::size_t l = 0; l < count; ++l) {
      vecs.push_back(BitVector::random(nbits, rng));
    }
    std::vector<std::uint64_t> cols(nbits * stride, ~0ULL);
    support::pack_bit_columns(vecs.data(), count, nbits, cols.data(), stride);
    for (std::size_t i = 0; i < nbits; ++i) {
      for (std::size_t l = 0; l < 64; ++l) {
        const bool expect = l < count && vecs[l].get(i);
        ASSERT_EQ((cols[i * stride] >> l) & 1ULL, expect ? 1ULL : 0ULL)
            << "bit " << i << " lane " << l;  // tail lanes must be zeroed
      }
    }
    std::vector<BitVector> back(count, BitVector(nbits));
    support::unpack_bit_columns(cols.data(), nbits, stride, back.data(),
                                count);
    for (std::size_t l = 0; l < count; ++l) ASSERT_EQ(back[l], vecs[l]);
  }
}

TEST(BitColumns, PackValidatesWidthAndLaneCount) {
  BitVector vecs[2] = {BitVector(8), BitVector(9)};  // ragged widths
  std::uint64_t out[9] = {};
  EXPECT_THROW(support::pack_bit_columns(vecs, 2, 8, out, 1),
               std::invalid_argument);
  std::vector<BitVector> many(65, BitVector(4));
  std::uint64_t out4[4] = {};
  EXPECT_THROW(support::pack_bit_columns(many.data(), 65, 4, out4, 1),
               std::invalid_argument);
  std::vector<BitVector> back(65, BitVector(4));
  EXPECT_THROW(support::unpack_bit_columns(out4, 4, 1, back.data(), 65),
               std::invalid_argument);
  // pack_input_words inherits the width check per 64-lane block.
  BitVector ragged[2] = {BitVector(6), BitVector(7)};
  std::vector<std::uint64_t> words;
  EXPECT_THROW(timingsim::pack_input_words(ragged, 2, 6, words),
               std::invalid_argument);
}

// ----------------------------------------- adder exhaustive small widths

TEST(AdderExhaustive, ThreeBitFullTruthTable) {
  Netlist net;
  std::vector<GateId> a, b;
  for (int i = 0; i < 3; ++i) a.push_back(net.add_input("a"));
  for (int i = 0; i < 3; ++i) b.push_back(net.add_input("b"));
  const GateId cin = net.add_gate(GateKind::kConst0, {});
  const auto ports = netlist::build_ripple_carry_adder(net, a, b, cin, {});
  for (unsigned va = 0; va < 8; ++va) {
    for (unsigned vb = 0; vb < 8; ++vb) {
      std::vector<bool> in;
      for (int i = 0; i < 3; ++i) in.push_back((va >> i) & 1);
      for (int i = 0; i < 3; ++i) in.push_back((vb >> i) & 1);
      const auto v = net.evaluate(in);
      unsigned sum = 0;
      for (int i = 0; i < 3; ++i) sum |= (v[ports.sum[i]] ? 1u : 0u) << i;
      sum |= (v[ports.carry_out] ? 1u : 0u) << 3;
      EXPECT_EQ(sum, va + vb);
    }
  }
}

}  // namespace
}  // namespace pufatt
