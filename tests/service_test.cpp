// Concurrent attestation service tests: sharded registry semantics under
// contention, emulator-cache LRU accounting and per-device lease mutual
// exclusion, and the worker pool's backpressure, drain and verdict-parity
// contracts.  Every multi-threaded test here is expected to run clean
// under -DPUFATT_TSAN=ON (see README build matrix).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/distributed.hpp"
#include "core/enrollment.hpp"
#include "core/serialize.hpp"
#include "core/session.hpp"
#include "ecc/reed_muller.hpp"
#include "service/device_registry.hpp"
#include "service/emulator_cache.hpp"
#include "service/verifier_pool.hpp"

namespace pufatt::service {
namespace {

using support::Xoshiro256pp;

const ecc::ReedMuller1& code() {
  static const ecc::ReedMuller1 instance(5);
  return instance;
}

/// Shared fixture: enrolling real devices is the expensive part, so one
/// small fleet is built once and reused read-only by every test.
struct Fleet {
  struct Device {
    std::string id;
    std::unique_ptr<alupuf::PufDevice> device;
    core::EnrollmentRecord record;
  };
  std::vector<Device> devices;

  static const Fleet& instance() {
    static const Fleet fleet(3);
    return fleet;
  }

  /// Fresh registry holding every fleet device.
  DeviceRegistry make_registry(std::size_t shards = 16) const {
    DeviceRegistry registry(shards);
    for (const auto& dev : devices) registry.store(dev.id, dev.record);
    return registry;
  }

  /// Honest responder for `devices[index]`, deterministic in `seed`.
  core::Responder responder(std::size_t index, std::uint64_t seed) const {
    auto prover = std::make_shared<core::CpuProver>(
        *devices[index].device, devices[index].record,
        core::CpuProver::Variant::kHonest, seed);
    return [prover](const core::AttestationRequest& request) {
      auto outcome = prover->respond(request);
      return core::ProverReply{std::move(outcome.response),
                               outcome.compute_us};
    };
  }

 private:
  explicit Fleet(std::size_t count) {
    const auto profile = core::DistributedParams::small_profile();
    Xoshiro256pp rng(0x5E21);
    std::vector<std::uint32_t> firmware(600);
    for (auto& word : firmware) word = static_cast<std::uint32_t>(rng.next());
    const auto image = core::make_enrolled_image(profile, firmware);
    devices.resize(count);
    for (std::size_t d = 0; d < count; ++d) {
      devices[d].id = "unit-" + std::to_string(d);
      devices[d].device = std::make_unique<alupuf::PufDevice>(
          profile.puf_config, 0xACE0 + d, code());
      devices[d].record = core::enroll(*devices[d].device, profile, image);
    }
  }
};

// --- DeviceRegistry ---------------------------------------------------------

TEST(DeviceRegistry, StoreLoadEvict) {
  const auto& fleet = Fleet::instance();
  DeviceRegistry registry(4);
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.load("unit-0"), nullptr);

  EXPECT_TRUE(registry.store("unit-0", fleet.devices[0].record));
  EXPECT_TRUE(registry.store("unit-1", fleet.devices[1].record));
  // Re-enrollment replaces in place and reports the id as already known.
  EXPECT_FALSE(registry.store("unit-0", fleet.devices[0].record));
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_TRUE(registry.contains("unit-1"));
  ASSERT_NE(registry.load("unit-1"), nullptr);

  EXPECT_TRUE(registry.evict("unit-0"));
  EXPECT_FALSE(registry.evict("unit-0"));
  EXPECT_FALSE(registry.contains("unit-0"));
  EXPECT_EQ(registry.device_ids(), std::vector<std::string>{"unit-1"});
}

TEST(DeviceRegistry, LoadedSnapshotSurvivesEviction) {
  const auto& fleet = Fleet::instance();
  auto registry = fleet.make_registry();
  const auto snapshot = registry.load(fleet.devices[0].id);
  ASSERT_NE(snapshot, nullptr);
  registry.evict(fleet.devices[0].id);
  // The shared_ptr keeps the record alive: a verifier built from it is
  // still usable after concurrent de-registration.
  const core::Verifier verifier(*snapshot, code());
  (void)verifier;
}

TEST(DeviceRegistry, SaveLoadRoundTripBytes) {
  const auto& fleet = Fleet::instance();
  const auto registry = fleet.make_registry();
  std::stringstream first;
  registry.save(first);

  std::stringstream input(first.str());
  const auto reloaded = DeviceRegistry::load_registry(input, /*shards=*/4);
  EXPECT_EQ(reloaded.size(), registry.size());
  EXPECT_EQ(reloaded.device_ids(), registry.device_ids());

  // save() sorts entries, so a reloaded registry reproduces the bytes
  // regardless of its shard count.
  std::stringstream second;
  reloaded.save(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(DeviceRegistry, RejectsMalformedInput) {
  std::stringstream garbage("not a registry");
  EXPECT_THROW(DeviceRegistry::load_registry(garbage),
               core::SerializationError);
}

TEST(DeviceRegistry, ConcurrentStoreLoadEvict) {
  const auto& fleet = Fleet::instance();
  const auto shared = std::make_shared<const core::EnrollmentRecord>(
      fleet.devices[0].record);
  DeviceRegistry registry(8);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 200;
  std::vector<std::thread> threads;
  std::atomic<int> null_loads{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int op = 0; op < kOpsPerThread; ++op) {
        const std::string own = "t" + std::to_string(t) + "-" +
                                std::to_string(op % 17);
        registry.store(own, shared);
        if (registry.load(own) == nullptr) ++null_loads;
        // Everyone also hammers one contended id across all shards' worth
        // of traffic: loads see either nullptr or a complete record.
        registry.store("contended", shared);
        const auto got = registry.load("contended");
        if (got != nullptr) {
          EXPECT_EQ(got->enrolled_image.size(), shared->enrolled_image.size());
        }
        if (op % 5 == 0) registry.evict("contended");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // A thread's own ids are never evicted: its loads always succeed.
  EXPECT_EQ(null_loads, 0);
  EXPECT_GE(registry.size(), static_cast<std::size_t>(kThreads * 17));
}

// --- EmulatorCache ----------------------------------------------------------

TEST(EmulatorCache, CountsHitsMissesEvictions) {
  const auto& fleet = Fleet::instance();
  const auto registry = fleet.make_registry();
  EmulatorCache cache(registry, code(), /*capacity=*/2);

  { auto lease = cache.acquire("unit-0"); ASSERT_TRUE(lease); }   // miss
  { auto lease = cache.acquire("unit-0"); ASSERT_TRUE(lease); }   // hit
  { auto lease = cache.acquire("unit-1"); ASSERT_TRUE(lease); }   // miss
  { auto lease = cache.acquire("unit-2"); ASSERT_TRUE(lease); }   // miss, evicts unit-0
  { auto lease = cache.acquire("unit-0"); ASSERT_TRUE(lease); }   // miss again

  const auto counters = cache.counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 4u);
  EXPECT_EQ(counters.evictions, 2u);
  EXPECT_LE(cache.size(), cache.capacity());
}

TEST(EmulatorCache, UnknownDeviceYieldsEmptyLease) {
  const auto& fleet = Fleet::instance();
  const auto registry = fleet.make_registry();
  EmulatorCache cache(registry, code(), 2);
  EXPECT_FALSE(cache.acquire("never-enrolled"));
  EXPECT_EQ(cache.counters().misses, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(EmulatorCache, SameDeviceLeasesAreMutuallyExclusive) {
  const auto& fleet = Fleet::instance();
  const auto registry = fleet.make_registry();
  EmulatorCache cache(registry, code(), 2);

  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        auto lease = cache.acquire("unit-0");
        ASSERT_TRUE(lease);
        if (inside.fetch_add(1) != 0) overlapped = true;
        std::this_thread::yield();
        inside.fetch_sub(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(overlapped) << "two threads held the same device's lease";
}

TEST(EmulatorCache, ConcurrentMissStormIsAccountedExactly) {
  const auto& fleet = Fleet::instance();
  const auto registry = fleet.make_registry();
  EmulatorCache cache(registry, code(), fleet.devices.size());

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    // All threads race to construct the same entries at once; losers'
    // instances are discarded, never doubled into the cache.
    threads.emplace_back([&] {
      for (const auto& dev : Fleet::instance().devices) {
        auto lease = cache.acquire(dev.id);
        ASSERT_TRUE(lease);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto counters = cache.counters();
  EXPECT_EQ(counters.hits + counters.misses,
            static_cast<std::size_t>(kThreads) * fleet.devices.size());
  EXPECT_EQ(cache.size(), fleet.devices.size());
  EXPECT_EQ(counters.evictions, 0u);
}

// --- VerifierPool -----------------------------------------------------------

TEST(VerifierPool, RunsJobsToCompletionWithCorrectOutcomes) {
  const auto& fleet = Fleet::instance();
  const auto registry = fleet.make_registry();
  EmulatorCache cache(registry, code(), fleet.devices.size());

  PoolConfig config;
  config.workers = 4;
  config.queue_capacity = 16;

  std::mutex results_mutex;
  std::vector<JobResult> results;
  VerifierPool pool(cache, config, [&](const JobResult& result) {
    std::lock_guard<std::mutex> lock(results_mutex);
    results.push_back(result);
  });

  constexpr std::size_t kJobs = 6;
  for (std::size_t job = 0; job < kJobs; ++job) {
    AttestationJob j;
    j.device_id = fleet.devices[job % fleet.devices.size()].id;
    j.responder = fleet.responder(job % fleet.devices.size(), 0x100 + job);
    j.channel_seed = 0x200 + job;
    j.rng_seed = 0x300 + job;
    j.tag = job;
    ASSERT_TRUE(pool.submit(std::move(j)).enqueued());
  }
  AttestationJob ghost;
  ghost.device_id = "never-enrolled";
  ghost.tag = kJobs;
  ASSERT_TRUE(pool.submit(std::move(ghost)).enqueued());

  pool.drain();
  EXPECT_EQ(results.size(), kJobs + 1);

  const auto snapshot = pool.metrics_snapshot();
  EXPECT_EQ(snapshot.submitted, kJobs + 1);
  EXPECT_EQ(snapshot.accepted, kJobs);  // honest provers on a clean link
  EXPECT_EQ(snapshot.unknown_device, 1u);
  EXPECT_EQ(snapshot.rejected_busy, 0u);
  EXPECT_EQ(snapshot.completed(), kJobs + 1);
  EXPECT_GE(snapshot.queue_depth_hwm, 1u);
  for (const auto& result : results) {
    if (result.device_id == "never-enrolled") {
      EXPECT_EQ(result.outcome, JobOutcome::kUnknownDevice);
    } else {
      EXPECT_EQ(result.outcome, JobOutcome::kAccepted);
      EXPECT_TRUE(result.session.accepted());
    }
  }
}

TEST(VerifierPool, FullQueueRejectsWithRetryAfterHint) {
  const auto& fleet = Fleet::instance();
  const auto registry = fleet.make_registry();
  EmulatorCache cache(registry, code(), 2);

  PoolConfig config;
  config.workers = 1;
  config.queue_capacity = 1;

  std::promise<void> release;
  const auto released = release.get_future().share();
  VerifierPool pool(cache, config);

  // One job blocks the single worker inside its responder; the next fills
  // the one queue slot; the third must be shed with a positive hint.
  auto blocking_job = [&](std::uint64_t tag) {
    AttestationJob j;
    j.device_id = fleet.devices[0].id;
    j.responder = [&, released](const core::AttestationRequest& request) {
      released.wait();
      auto prover = std::make_shared<core::CpuProver>(
          *fleet.devices[0].device, fleet.devices[0].record,
          core::CpuProver::Variant::kHonest, tag);
      auto outcome = prover->respond(request);
      return core::ProverReply{std::move(outcome.response),
                               outcome.compute_us};
    };
    j.rng_seed = tag;
    j.tag = tag;
    return j;
  };

  ASSERT_TRUE(pool.submit(blocking_job(0)).enqueued());
  // Wait until the worker has picked up job 0, so job 1 occupies the queue.
  while (pool.queue_depth() != 0) std::this_thread::yield();
  ASSERT_TRUE(pool.submit(blocking_job(1)).enqueued());

  const auto shed = pool.submit(blocking_job(2));
  EXPECT_EQ(shed.status, SubmitStatus::kRejectedBusy);
  EXPECT_FALSE(shed.enqueued());
  EXPECT_GT(shed.retry_after_us, 0.0);
  EXPECT_EQ(pool.metrics_snapshot().rejected_busy, 1u);

  release.set_value();
  pool.drain();
  EXPECT_EQ(pool.metrics_snapshot().completed(), 2u);
}

TEST(VerifierPool, DrainStopsIntakeAndIsIdempotent) {
  const auto& fleet = Fleet::instance();
  const auto registry = fleet.make_registry();
  EmulatorCache cache(registry, code(), 2);
  VerifierPool pool(cache, PoolConfig{});

  AttestationJob j;
  j.device_id = fleet.devices[0].id;
  j.responder = fleet.responder(0, 7);
  j.tag = 7;
  ASSERT_TRUE(pool.submit(std::move(j)).enqueued());

  pool.drain();
  pool.drain();  // idempotent
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.metrics_snapshot().completed(), 1u);

  AttestationJob late;
  late.device_id = fleet.devices[0].id;
  EXPECT_EQ(pool.submit(std::move(late)).status, SubmitStatus::kShuttingDown);

  pool.shutdown();
  pool.shutdown();  // idempotent
}

// The determinism contract behind bench/service_throughput's parity claim:
// with per-job seeds, worker count changes wall time, never a verdict.
TEST(VerifierPool, VerdictsMatchAcrossWorkerCounts) {
  const auto& fleet = Fleet::instance();
  const auto registry = fleet.make_registry();
  constexpr std::size_t kJobs = 9;

  core::FaultParams faults;
  faults.loss_prob = 0.15;  // force some retry traffic into the sessions

  auto run_with = [&](std::size_t workers) {
    EmulatorCache cache(registry, code(), fleet.devices.size());
    PoolConfig config;
    config.workers = workers;
    config.queue_capacity = kJobs;

    std::mutex verdict_mutex;
    std::vector<core::SessionStatus> verdicts(
        kJobs, core::SessionStatus::kRetriesExhausted);
    VerifierPool pool(cache, config, [&](const JobResult& result) {
      std::lock_guard<std::mutex> lock(verdict_mutex);
      verdicts[result.tag] = result.session.status;
    });
    for (std::size_t job = 0; job < kJobs; ++job) {
      AttestationJob j;
      j.device_id = fleet.devices[job % fleet.devices.size()].id;
      j.responder = fleet.responder(job % fleet.devices.size(), 0xA0 + job);
      j.faults = faults;
      j.channel_seed = 0xB0 + job;
      j.rng_seed = 0xC0 + job;
      j.tag = job;
      EXPECT_TRUE(pool.submit(std::move(j)).enqueued());
    }
    pool.drain();
    return verdicts;
  };

  const auto serial = run_with(1);
  const auto pooled = run_with(4);
  EXPECT_EQ(serial, pooled);
}

// save_file is atomic (temp file + rename): a failed save must leave the
// previous on-disk registry byte-for-byte intact, never a torn file.
TEST(DeviceRegistry, FailedSaveLeavesOldFileIntact) {
  const auto& fleet = Fleet::instance();
  const std::string path =
      ::testing::TempDir() + "pufatt_registry_atomic.bin";
  const std::string tmp = path + ".tmp";
  std::filesystem::remove(path);
  std::filesystem::remove_all(tmp);

  auto registry = fleet.make_registry();
  registry.save_file(path);
  std::string original;
  {
    std::ifstream in(path, std::ios::binary);
    original.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(original.empty());

  // Simulated partial write: the temp path cannot be opened as a file (a
  // directory squats on it), so the save dies before touching `path`.
  std::filesystem::create_directory(tmp);
  DeviceRegistry changed(4);
  changed.store(fleet.devices[0].id, fleet.devices[0].record);
  EXPECT_THROW(changed.save_file(path), core::SerializationError);

  std::string after;
  {
    std::ifstream in(path, std::ios::binary);
    after.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  EXPECT_EQ(after, original);  // the old complete file, untouched
  auto reloaded = DeviceRegistry::load_registry_file(path);
  EXPECT_EQ(reloaded.size(), fleet.devices.size());

  // With the obstruction gone the same save lands atomically.
  std::filesystem::remove_all(tmp);
  changed.save_file(path);
  EXPECT_EQ(DeviceRegistry::load_registry_file(path).size(), 1u);
  EXPECT_FALSE(std::filesystem::exists(tmp));  // no debris either way
}

}  // namespace
}  // namespace pufatt::service
