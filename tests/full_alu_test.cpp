// Functional tests for the multi-operation ALU — the component the paper
// reuses as a PUF — plus the reuse-cost accounting.
#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/techmap.hpp"
#include "support/rng.hpp"

namespace pufatt::netlist {
namespace {

class FullAluWidth : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    width_ = GetParam();
    ports_ = build_full_alu(net_, width_, {});
  }

  std::uint64_t run(std::uint64_t a, std::uint64_t b, unsigned opcode) {
    std::vector<bool> in;
    for (std::size_t i = 0; i < width_; ++i) in.push_back((a >> i) & 1);
    for (std::size_t i = 0; i < width_; ++i) in.push_back((b >> i) & 1);
    for (int i = 0; i < 3; ++i) in.push_back((opcode >> i) & 1);
    const auto values = net_.evaluate(in);
    std::uint64_t result = 0;
    for (std::size_t i = 0; i < width_; ++i) {
      if (values[ports_.result[i]]) result |= 1ULL << i;
    }
    return result;
  }

  std::uint64_t mask() const {
    return width_ == 64 ? ~0ULL : (1ULL << width_) - 1;
  }

  std::size_t width_ = 0;
  Netlist net_;
  AluPorts ports_;
};

TEST_P(FullAluWidth, AllOpcodesMatchReference) {
  support::Xoshiro256pp rng(width_ * 131);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.next() & mask();
    const std::uint64_t b = rng.next() & mask();
    EXPECT_EQ(run(a, b, 0), (a + b) & mask()) << "ADD";
    EXPECT_EQ(run(a, b, 1), (a - b) & mask()) << "SUB";
    EXPECT_EQ(run(a, b, 2), a & b) << "AND";
    EXPECT_EQ(run(a, b, 3), a | b) << "OR";
    EXPECT_EQ(run(a, b, 4), a ^ b) << "XOR";
    EXPECT_EQ(run(a, b, 5), ~(a | b) & mask()) << "NOR";
    EXPECT_EQ(run(a, b, 6), a) << "PASS-A";
    EXPECT_EQ(run(a, b, 7), b) << "PASS-B";
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, FullAluWidth, ::testing::Values(4, 8, 16, 32));

TEST(FullAlu, RejectsBadWidth) {
  Netlist net;
  EXPECT_THROW(build_full_alu(net, 0, {}), std::invalid_argument);
  EXPECT_THROW(build_full_alu(net, 65, {}), std::invalid_argument);
}

TEST(FullAlu, AdderSumNetsExposedForRacing) {
  Netlist net;
  const auto ports = build_full_alu(net, 16, {});
  EXPECT_EQ(ports.adder_sum.size(), 16u);
  // The raced nets are the adder's sum outputs, reachable pre-mux.
  support::Xoshiro256pp rng(5);
  for (int t = 0; t < 50; ++t) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng.next()) & 0xFFFF;
    const std::uint32_t b = static_cast<std::uint32_t>(rng.next()) & 0xFFFF;
    std::vector<bool> in;
    for (int i = 0; i < 16; ++i) in.push_back((a >> i) & 1);
    for (int i = 0; i < 16; ++i) in.push_back((b >> i) & 1);
    for (int i = 0; i < 3; ++i) in.push_back(false);  // opcode ADD
    const auto values = net.evaluate(in);
    const std::uint32_t sum = (a + b) & 0xFFFF;
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(values[ports.adder_sum[i]], ((sum >> i) & 1) != 0);
    }
  }
}

TEST(FullAlu, ReuseCostIsSmall) {
  // The paper's economic argument: two full ALUs already exist in the
  // datapath; turning them into a PUF adds only arbiters + sync + capture
  // registers.  Quantify: the bare dual-adder PUF core's LUTs versus one
  // full ALU's.
  Netlist alu_net;
  build_full_alu(alu_net, 16, {});
  const auto alu_luts = estimate_luts(alu_net);

  const auto puf = build_alu_puf_circuit(16);
  const auto puf_luts = estimate_luts(puf.net);

  // A full ALU is bigger than a bare adder pair's combinational logic...
  EXPECT_GT(alu_luts * 2, puf_luts);
  // ...so reusing two existing ALUs saves (almost) the whole PUF fabric.
  EXPECT_GT(alu_luts, 100u);
}

}  // namespace
}  // namespace pufatt::netlist
