#include <gtest/gtest.h>

#include <cmath>

#include "netlist/builder.hpp"
#include "support/stats.hpp"
#include "variation/chip.hpp"
#include "variation/delay_model.hpp"
#include "variation/quadtree.hpp"

namespace pufatt::variation {
namespace {

using netlist::GateKind;

// ------------------------------------------------------------- Delay model

TEST(DelayModel, InputsAndConstantsAreFree) {
  EXPECT_DOUBLE_EQ(base_delay_ps(GateKind::kInput, 0), 0.0);
  EXPECT_DOUBLE_EQ(base_delay_ps(GateKind::kConst0, 0), 0.0);
  EXPECT_DOUBLE_EQ(base_delay_ps(GateKind::kConst1, 0), 0.0);
}

TEST(DelayModel, XorSlowerThanNand) {
  EXPECT_GT(base_delay_ps(GateKind::kXor, 2), base_delay_ps(GateKind::kNand, 2));
}

TEST(DelayModel, FaninStackPenalty) {
  EXPECT_GT(base_delay_ps(GateKind::kAnd, 4), base_delay_ps(GateKind::kAnd, 2));
}

TEST(DelayModel, NominalConditionsIdentity) {
  const TechnologyParams tech;
  const double d =
      scaled_delay_ps(10.0, tech.vth_nominal_v, Environment::nominal(), tech);
  EXPECT_NEAR(d, 10.0, 1e-9);
}

TEST(DelayModel, LowerVoltageSlower) {
  const TechnologyParams tech;
  Environment low, high;
  low.vdd_scale = 0.9;
  high.vdd_scale = 1.1;
  const double d_low = scaled_delay_ps(10.0, tech.vth_nominal_v, low, tech);
  const double d_high = scaled_delay_ps(10.0, tech.vth_nominal_v, high, tech);
  EXPECT_GT(d_low, 10.0);
  EXPECT_LT(d_high, 10.0);
}

TEST(DelayModel, HigherVthSlower) {
  const TechnologyParams tech;
  const auto env = Environment::nominal();
  EXPECT_GT(scaled_delay_ps(10.0, tech.vth_nominal_v + 0.05, env, tech),
            scaled_delay_ps(10.0, tech.vth_nominal_v, env, tech));
}

TEST(DelayModel, TemperatureEffectsArePartiallyCompensating) {
  // Hot: mobility degrades (slower) but Vth drops (faster).  Net effect at
  // nominal voltage should be modest — within tens of percent across the
  // paper's full -20..120C range.
  const TechnologyParams tech;
  Environment cold, hot;
  cold.temperature_c = -20.0;
  hot.temperature_c = 120.0;
  const double d_cold = scaled_delay_ps(10.0, tech.vth_nominal_v, cold, tech);
  const double d_hot = scaled_delay_ps(10.0, tech.vth_nominal_v, hot, tech);
  EXPECT_GT(d_cold, 5.0);
  EXPECT_LT(d_cold, 15.0);
  EXPECT_GT(d_hot, 5.0);
  EXPECT_LT(d_hot, 15.0);
}

TEST(DelayModel, ThrowsWhenGateCannotSwitch) {
  const TechnologyParams tech;
  Environment env;
  env.vdd_scale = 0.3;  // 0.3 V supply < Vth
  EXPECT_THROW(scaled_delay_ps(10.0, tech.vth_nominal_v, env, tech),
               std::domain_error);
}

// ---------------------------------------------------------------- Quad-tree

TEST(QuadTree, RejectsBadConfig) {
  support::Xoshiro256pp rng(1);
  EXPECT_THROW(QuadTreeSample({.levels = 0}, 0.04, rng), std::invalid_argument);
  EXPECT_THROW(QuadTreeSample({.levels = 2, .die_size = -1.0}, 0.04, rng),
               std::invalid_argument);
  QuadTreeConfig bad;
  bad.systematic_fraction = 1.5;
  EXPECT_THROW(QuadTreeSample(bad, 0.04, rng), std::invalid_argument);
}

TEST(QuadTree, VarianceBudgetSplit) {
  support::Xoshiro256pp rng(2);
  QuadTreeConfig config;
  config.systematic_fraction = 0.5;
  const double sigma = 0.04;
  const QuadTreeSample sample(config, sigma, rng);
  EXPECT_NEAR(sample.random_sigma(), sigma * std::sqrt(0.5), 1e-12);
}

TEST(QuadTree, NearbyPointsCorrelated) {
  // Points in the same smallest quadrant share every level deviate.
  support::Xoshiro256pp rng(3);
  const QuadTreeConfig config{.levels = 4, .die_size = 64.0};
  const QuadTreeSample sample(config, 0.04, rng);
  const double a = sample.systematic_shift(10.0, 10.0);
  const double b = sample.systematic_shift(10.5, 10.5);
  EXPECT_DOUBLE_EQ(a, b);  // same 4x4-unit leaf cell
}

TEST(QuadTree, FarPointsUsuallyDiffer) {
  support::Xoshiro256pp rng(4);
  const QuadTreeConfig config{.levels = 4, .die_size = 64.0};
  const QuadTreeSample sample(config, 0.04, rng);
  EXPECT_NE(sample.systematic_shift(1.0, 1.0),
            sample.systematic_shift(60.0, 60.0));
}

TEST(QuadTree, ShiftDistributionAcrossChips) {
  // Across many chips the systematic shift at a fixed point is Gaussian
  // with variance = systematic fraction of the total.
  support::OnlineStats stats;
  const QuadTreeConfig config;
  const double sigma = 0.04;
  for (int chip = 0; chip < 4000; ++chip) {
    support::Xoshiro256pp rng(1000 + chip);
    const QuadTreeSample sample(config, sigma, rng);
    stats.add(sample.systematic_shift(32.0, 32.0));
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.003);
  EXPECT_NEAR(stats.stddev(), sigma * std::sqrt(config.systematic_fraction),
              0.003);
}

TEST(QuadTree, ClampsOutOfDiePositions) {
  support::Xoshiro256pp rng(5);
  const QuadTreeSample sample({.levels = 3, .die_size = 8.0}, 0.04, rng);
  EXPECT_NO_THROW(sample.systematic_shift(-5.0, 100.0));
  EXPECT_DOUBLE_EQ(sample.systematic_shift(-5.0, -5.0),
                   sample.systematic_shift(0.0, 0.0));
}

// ------------------------------------------------------------ ChipInstance

class ChipFixture : public ::testing::Test {
 protected:
  ChipFixture() : circuit_(netlist::build_alu_puf_circuit(8)) {}
  netlist::AluPufCircuit circuit_;
  TechnologyParams tech_;
  QuadTreeConfig qt_;
};

TEST_F(ChipFixture, SameSeedSameChip) {
  const ChipInstance a(circuit_.net, tech_, qt_, 42);
  const ChipInstance b(circuit_.net, tech_, qt_, 42);
  for (std::size_t g = 0; g < circuit_.net.num_gates(); ++g) {
    EXPECT_DOUBLE_EQ(a.vth(static_cast<netlist::GateId>(g)),
                     b.vth(static_cast<netlist::GateId>(g)));
  }
}

TEST_F(ChipFixture, DifferentSeedsDifferentChips) {
  const ChipInstance a(circuit_.net, tech_, qt_, 42);
  const ChipInstance b(circuit_.net, tech_, qt_, 43);
  int same = 0;
  int logic = 0;
  for (std::size_t g = 0; g < circuit_.net.num_gates(); ++g) {
    const auto id = static_cast<netlist::GateId>(g);
    if (circuit_.net.gate(id).kind == netlist::GateKind::kInput) continue;
    ++logic;
    if (a.vth(id) == b.vth(id)) ++same;
  }
  EXPECT_LT(same, logic / 10);
}

TEST_F(ChipFixture, VthDistributionMatchesSigma) {
  support::OnlineStats stats;
  for (int chip = 0; chip < 200; ++chip) {
    const ChipInstance c(circuit_.net, tech_, qt_, 7000 + chip);
    for (std::size_t g = 0; g < circuit_.net.num_gates(); ++g) {
      const auto id = static_cast<netlist::GateId>(g);
      if (circuit_.net.gate(id).kind == netlist::GateKind::kInput) continue;
      stats.add(c.vth(id));
    }
  }
  EXPECT_NEAR(stats.mean(), tech_.vth_nominal_v, 0.002);
  // Within-chip samples are correlated; across 200 chips the overall sigma
  // should approach the configured total.
  EXPECT_NEAR(stats.stddev(), tech_.vth_sigma_v(), 0.01);
}

TEST_F(ChipFixture, NominalDelaysPositiveForLogic) {
  const ChipInstance chip(circuit_.net, tech_, qt_, 1);
  const auto delays = chip.nominal_delays(Environment::nominal());
  for (std::size_t g = 0; g < circuit_.net.num_gates(); ++g) {
    const auto kind = circuit_.net.gate(static_cast<netlist::GateId>(g)).kind;
    if (kind == netlist::GateKind::kInput ||
        kind == netlist::GateKind::kConst0) {
      EXPECT_DOUBLE_EQ(delays.rise_ps[g], 0.0);
      EXPECT_DOUBLE_EQ(delays.fall_ps[g], 0.0);
    } else {
      EXPECT_GT(delays.rise_ps[g], 0.0);
      EXPECT_GT(delays.fall_ps[g], 0.0);
    }
  }
}

TEST_F(ChipFixture, RiseFallAsymmetryPreservesMeanAndVaries) {
  const ChipInstance chip(circuit_.net, tech_, qt_, 2);
  const auto delays = chip.nominal_delays(Environment::nominal());
  support::OnlineStats asym;
  for (std::size_t g = 0; g < circuit_.net.num_gates(); ++g) {
    const double rise = delays.rise_ps[g];
    const double fall = delays.fall_ps[g];
    if (rise <= 0.0) continue;
    // rise = base*(1+a), fall = base*(1-a): the mean is asymmetry-free.
    asym.add((rise - fall) / (rise + fall));
  }
  EXPECT_NEAR(asym.mean(), 0.0, 0.02);
  EXPECT_NEAR(asym.stddev(), tech_.rise_fall_asym_sigma, 0.02);
}

TEST_F(ChipFixture, SampleDelaysJitterAroundNominal) {
  const ChipInstance chip(circuit_.net, tech_, qt_, 1);
  const auto nominal = chip.nominal_delays(Environment::nominal());
  support::Xoshiro256pp rng(9);
  const NoiseParams noise{.delay_jitter_ratio = 0.02};
  timingsim::DelaySet noisy;
  support::OnlineStats rel;
  for (int eval = 0; eval < 200; ++eval) {
    chip.sample_delays(nominal, noise, rng, noisy);
    for (std::size_t g = 0; g < nominal.rise_ps.size(); ++g) {
      if (nominal.rise_ps[g] > 0.0) {
        rel.add(noisy.rise_ps[g] / nominal.rise_ps[g] - 1.0);
        // The same jitter draw applies to rise and fall.
        EXPECT_NEAR(noisy.fall_ps[g] / nominal.fall_ps[g],
                    noisy.rise_ps[g] / nominal.rise_ps[g], 1e-12);
      }
    }
  }
  EXPECT_NEAR(rel.mean(), 0.0, 0.001);
  EXPECT_NEAR(rel.stddev(), 0.02, 0.002);
}

TEST_F(ChipFixture, DelayTableEmulationMatchesChipExactly) {
  // The verifier's model H must reproduce the chip's nominal delays at any
  // operating point — this is what makes PUF.Emulate() possible.
  const ChipInstance chip(circuit_.net, tech_, qt_, 77);
  const DelayTable table = chip.export_delay_table();
  for (const auto& env :
       {Environment::nominal(), Environment{0.9, -20.0}, Environment{1.1, 120.0}}) {
    const auto chip_delays = chip.nominal_delays(env);
    const auto emulated = delays_from_table(table, env);
    ASSERT_EQ(chip_delays.rise_ps.size(), emulated.rise_ps.size());
    for (std::size_t g = 0; g < chip_delays.rise_ps.size(); ++g) {
      EXPECT_DOUBLE_EQ(chip_delays.rise_ps[g], emulated.rise_ps[g]);
      EXPECT_DOUBLE_EQ(chip_delays.fall_ps[g], emulated.fall_ps[g]);
    }
  }
}

TEST_F(ChipFixture, AdjacentAlusShareSystematicVariation) {
  // The per-gate Vth difference between matched gates of ALU0/ALU1 should
  // have *smaller* spread than between unrelated chips: systematic part is
  // common mode because the ALUs sit in adjacent rows.
  support::OnlineStats within, across;
  const std::size_t gates_per_alu = 8 * 5;  // 5 gates per full adder
  for (int chip_idx = 0; chip_idx < 50; ++chip_idx) {
    const ChipInstance chip(circuit_.net, tech_, qt_, 300 + chip_idx);
    const ChipInstance other(circuit_.net, tech_, qt_, 900 + chip_idx);
    // ALU gates follow the 17 inputs + 1 const in creation order.
    const std::size_t alu0_base = 16 + 1;
    const std::size_t alu1_base = alu0_base + gates_per_alu;
    for (std::size_t g = 0; g < gates_per_alu; ++g) {
      within.add(chip.vth(static_cast<netlist::GateId>(alu0_base + g)) -
                 chip.vth(static_cast<netlist::GateId>(alu1_base + g)));
      across.add(chip.vth(static_cast<netlist::GateId>(alu0_base + g)) -
                 other.vth(static_cast<netlist::GateId>(alu0_base + g)));
    }
  }
  EXPECT_LT(within.stddev(), across.stddev());
}

}  // namespace
}  // namespace pufatt::variation
