// Seeded kill-and-recover torture loop (tools/ci.sh runs this on every
// build tree, ctest label "torture").
//
// Each iteration runs a realistic store workload — enroll, CRP
// provisioning, consumption, compaction, more consumption — with one
// deterministic fault injected somewhere random in the middle:
//
//   iter % 3 == 0   simulated kill at a random byte (crash_after_bytes)
//   iter % 3 == 1   short write at a random fwrite ordinal
//   iter % 3 == 2   fsync EIO at a random fsync ordinal
//
// After the fault, the directory on disk must behave like any crash
// image: recovery succeeds (or the in-process store failed closed with
// StoreError — never silent corruption), WAL shipping to a follower plus
// promote() reconstructs state byte-identical to direct primary
// recovery, and the promoted store still serves writes and CRP
// authentications.
//
//   STORE_TORTURE_ITERS   iteration count        (default 24)
//   STORE_TORTURE_SEED    RNG seed               (default 0x70A7)
//
// Exit code 0 iff every iteration holds the property.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/crp_database.hpp"
#include "core/distributed.hpp"
#include "core/enrollment.hpp"
#include "ecc/reed_muller.hpp"
#include "store/replication.hpp"
#include "store/recovery.hpp"
#include "store/verifier_store.hpp"
#include "support/faulty_file.hpp"
#include "support/rng.hpp"

using namespace pufatt;
namespace fs = std::filesystem;

namespace {

const ecc::ReedMuller1& code() {
  static const ecc::ReedMuller1 instance(5);
  return instance;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

struct Fleet {
  struct Device {
    std::string id;
    std::unique_ptr<alupuf::PufDevice> device;
    core::EnrollmentRecord record;
  };
  std::vector<Device> devices;

  explicit Fleet(std::size_t count) {
    const auto profile = core::DistributedParams::small_profile();
    support::Xoshiro256pp rng(0x70A7F1EE7);
    std::vector<std::uint32_t> firmware(600);
    for (auto& word : firmware) word = static_cast<std::uint32_t>(rng.next());
    const auto image = core::make_enrolled_image(profile, firmware);
    devices.resize(count);
    for (std::size_t d = 0; d < count; ++d) {
      devices[d].id = "torture-" + std::to_string(d);
      devices[d].device = std::make_unique<alupuf::PufDevice>(
          profile.puf_config, 0x707 + d, code());
      devices[d].record = core::enroll(*devices[d].device, profile, image);
    }
  }

  core::CrpDatabase collect(std::size_t index, std::size_t entries,
                            std::uint64_t seed) const {
    support::Xoshiro256pp rng(seed);
    return core::CrpDatabase::collect(devices[index].device->raw_puf(),
                                      entries, rng);
  }
};

std::string scratch_dir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("pufatt_torture_" + name)).string();
  fs::remove_all(dir);
  return dir;
}

/// The append workload under torture.  Deterministic byte-for-byte given
/// a fresh directory, so a kill point drawn from the probe run's byte
/// budget lands anywhere in a real execution.  Throws StoreError when an
/// injected fault makes the store fail closed — the caller treats that
/// the same as a kill.
void workload(const Fleet& fleet, const std::string& dir) {
  store::StoreOptions options;
  options.wal.segment_bytes = 1024;  // rotate several times
  options.wal.sync_every = 2;
  auto db = store::VerifierStore::open(dir, options);
  for (std::size_t d = 0; d < fleet.devices.size(); ++d) {
    db->enroll(fleet.devices[d].id, fleet.devices[d].record);
    db->enroll_crps(fleet.devices[d].id, fleet.collect(d, 4, 0x7C01 + d));
  }
  support::Xoshiro256pp rng(0x7C11);
  for (int k = 0; k < 3; ++k) {
    const std::size_t d = static_cast<std::size_t>(k) % fleet.devices.size();
    (void)db->authenticate_crp(fleet.devices[d].id,
                               fleet.devices[d].device->raw_puf(), rng);
  }
  db->compact();
  for (int k = 0; k < 3; ++k) {
    const std::size_t d = static_cast<std::size_t>(k) % fleet.devices.size();
    (void)db->authenticate_crp(fleet.devices[d].id,
                               fleet.devices[d].device->raw_puf(), rng);
  }
  db->sync();
}

std::pair<std::string, std::string> serialize_recovered(
    const std::string& dir) {
  const auto state = store::recover(dir);
  std::stringstream registry(std::ios::in | std::ios::out | std::ios::binary);
  state.registry.save(registry);
  std::stringstream ledger(std::ios::in | std::ios::out | std::ios::binary);
  state.ledger->save(ledger);
  return {registry.str(), ledger.str()};
}

}  // namespace

int main() {
  const std::uint64_t iters = env_u64("STORE_TORTURE_ITERS", 24);
  const std::uint64_t seed = env_u64("STORE_TORTURE_SEED", 0x70A7);
  std::printf("=== store torture: %llu iterations, seed 0x%llx ===\n",
              static_cast<unsigned long long>(iters),
              static_cast<unsigned long long>(seed));

  const Fleet fleet(3);

  // Probe run: learn the workload's byte budget so kill points span the
  // whole execution, the compaction window included.
  std::uint64_t total_bytes = 0;
  {
    const std::string dir = scratch_dir("probe");
    support::FaultPlan plan;
    plan.crash_after_bytes = ~std::uint64_t{0};  // never fires: just counts
    support::ScopedFaultPlan guard(plan);
    workload(fleet, dir);
    total_bytes = support::FaultyFile::instance().bytes_written();
    fs::remove_all(dir);
  }
  if (total_bytes < 1024) {
    std::printf("FAIL: probe run wrote only %llu bytes\n",
                static_cast<unsigned long long>(total_bytes));
    return 1;
  }
  std::printf("workload byte budget: %llu\n",
              static_cast<unsigned long long>(total_bytes));

  support::Xoshiro256pp rng(seed);
  std::size_t failed = 0;
  std::size_t failed_closed = 0;
  for (std::uint64_t iter = 0; iter < iters; ++iter) {
    const std::string primary =
        scratch_dir("primary_" + std::to_string(iter));
    const std::string follower =
        scratch_dir("follower_" + std::to_string(iter));

    support::FaultPlan plan;
    const char* arm = "";
    switch (iter % 3) {
      case 0:
        arm = "kill";
        plan.crash_after_bytes = 1 + rng.next() % total_bytes;
        break;
      case 1:
        arm = "short-write";
        plan.short_write_at = 1 + rng.next() % 40;
        plan.short_write_keep = rng.next() % 16;
        break;
      case 2:
        arm = "fsync-eio";
        plan.fsync_error_at = 1 + rng.next() % 12;
        break;
    }

    bool store_failed_closed = false;
    {
      support::ScopedFaultPlan guard(plan);
      try {
        workload(fleet, primary);
      } catch (const store::StoreError&) {
        store_failed_closed = true;  // fail closed is a correct outcome
      }
    }
    if (store_failed_closed) ++failed_closed;

    bool ok = true;
    try {
      // Whatever the fault left behind must ship and promote to exactly
      // the state direct crash recovery reconstructs.
      store::ShardFollower(primary, follower).ship();
      const auto primary_state = serialize_recovered(primary);
      const auto follower_state = serialize_recovered(follower);
      if (primary_state != follower_state) {
        std::printf("FAIL iter %llu (%s): promoted state diverged from "
                    "primary recovery\n",
                    static_cast<unsigned long long>(iter), arm);
        ok = false;
      }

      // The promoted store still serves: a write and an authentication.
      auto promoted = store::ShardFollower(primary, follower).promote();
      promoted->enroll_crps(fleet.devices[0].id,
                            fleet.collect(0, 2, 0x9E11 + iter));
      support::Xoshiro256pp auth_rng(0x9E22 + iter);
      const auto result = promoted->authenticate_crp(
          fleet.devices[0].id, fleet.devices[0].device->raw_puf(), auth_rng);
      if (!result.has_value() || !result->conclusive()) {
        std::printf("FAIL iter %llu (%s): promoted store cannot serve\n",
                    static_cast<unsigned long long>(iter), arm);
        ok = false;
      }
      promoted->sync();
    } catch (const store::StoreError& e) {
      std::printf("FAIL iter %llu (%s): recovery threw: %s\n",
                  static_cast<unsigned long long>(iter), arm, e.what());
      ok = false;
    }

    if (!ok) ++failed;
    fs::remove_all(primary);
    fs::remove_all(follower);
  }

  std::printf("=== %llu iterations: %zu failed, %zu failed closed "
              "in-process (recovered cleanly) ===\n",
              static_cast<unsigned long long>(iters), failed, failed_closed);
  if (failed != 0) return 1;
  std::printf("[ok] kill-anywhere failover held at every injected fault\n");
  return 0;
}
