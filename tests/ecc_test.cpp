#include <gtest/gtest.h>

#include <set>

#include "ecc/bch.hpp"
#include "ecc/gf2_matrix.hpp"
#include "ecc/gf2m.hpp"
#include "ecc/helper_data.hpp"
#include "ecc/reed_muller.hpp"
#include "support/rng.hpp"

namespace pufatt::ecc {
namespace {

using support::BitVector;
using support::Xoshiro256pp;

// ------------------------------------------------------------------ GF(2^m)

TEST(GF2m, RejectsBadDegree) {
  EXPECT_THROW(GF2m(1), std::invalid_argument);
  EXPECT_THROW(GF2m(13), std::invalid_argument);
}

TEST(GF2m, OrderAndGeneratorCycle) {
  for (unsigned m = 2; m <= 10; ++m) {
    const GF2m f(m);
    EXPECT_EQ(f.order(), (1u << m) - 1);
    // alpha generates the full multiplicative group.
    std::set<GF2m::Element> seen;
    for (std::uint32_t e = 0; e < f.order(); ++e) seen.insert(f.alpha_pow(e));
    EXPECT_EQ(seen.size(), f.order());
    EXPECT_EQ(f.alpha_pow(f.order()), 1u);  // alpha^(2^m-1) = 1
  }
}

TEST(GF2m, AdditionIsXor) {
  const GF2m f(4);
  EXPECT_EQ(f.add(0b1010, 0b0110), 0b1100u);
  EXPECT_EQ(f.add(7, 7), 0u);
}

TEST(GF2m, MultiplicationProperties) {
  const GF2m f(5);
  Xoshiro256pp rng(2);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<GF2m::Element>(rng.uniform_u64(32));
    const auto b = static_cast<GF2m::Element>(rng.uniform_u64(32));
    const auto c = static_cast<GF2m::Element>(rng.uniform_u64(32));
    EXPECT_EQ(f.mul(a, b), f.mul(b, a));
    EXPECT_EQ(f.mul(a, f.mul(b, c)), f.mul(f.mul(a, b), c));
    EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
    EXPECT_EQ(f.mul(a, 1), a);
    EXPECT_EQ(f.mul(a, 0), 0u);
  }
}

TEST(GF2m, InverseAndDivision) {
  const GF2m f(6);
  for (GF2m::Element a = 1; a < 64; ++a) {
    EXPECT_EQ(f.mul(a, f.inv(a)), 1u);
    EXPECT_EQ(f.div(a, a), 1u);
  }
  EXPECT_THROW(f.inv(0), std::domain_error);
  EXPECT_THROW(f.div(1, 0), std::domain_error);
}

TEST(GF2m, PowMatchesRepeatedMul) {
  const GF2m f(5);
  for (GF2m::Element a = 1; a < 32; ++a) {
    GF2m::Element acc = 1;
    for (int e = 0; e < 10; ++e) {
      EXPECT_EQ(f.pow(a, e), acc);
      acc = f.mul(acc, a);
    }
  }
  EXPECT_EQ(f.pow(0, 0), 1u);
  EXPECT_EQ(f.pow(0, 5), 0u);
}

TEST(GF2m, LogExpRoundTrip) {
  const GF2m f(8);
  for (GF2m::Element a = 1; a < 256; ++a) {
    EXPECT_EQ(f.alpha_pow(f.log(a)), a);
  }
  EXPECT_THROW(f.log(0), std::domain_error);
}

TEST(GF2m, NegativeExponents) {
  const GF2m f(4);
  EXPECT_EQ(f.alpha_pow(-1), f.inv(f.alpha_pow(1)));
  EXPECT_EQ(f.alpha_pow(-15), f.alpha_pow(0));
}

// --------------------------------------------------------------- Gf2Matrix

TEST(Gf2Matrix, MulVector) {
  Gf2Matrix m(2, 3);
  m.set(0, 0, true);
  m.set(0, 2, true);
  m.set(1, 1, true);
  const BitVector x = BitVector::from_string("101");  // bit0=1,bit1=0,bit2=1
  const BitVector y = m.mul_vector(x);
  EXPECT_EQ(y.get(0), false);  // 1 ^ 1
  EXPECT_EQ(y.get(1), false);  // 0
}

TEST(Gf2Matrix, RaggedRowsRejected) {
  std::vector<BitVector> rows{BitVector(3), BitVector(4)};
  EXPECT_THROW(Gf2Matrix m(std::move(rows)), std::invalid_argument);
}

TEST(Gf2Matrix, RankOfIdentity) {
  Gf2Matrix m(4, 4);
  for (int i = 0; i < 4; ++i) m.set(i, i, true);
  EXPECT_EQ(m.rank(), 4u);
}

TEST(Gf2Matrix, RankDetectsDependentRows) {
  Gf2Matrix m(3, 4);
  m.set(0, 0, true);
  m.set(0, 1, true);
  m.set(1, 1, true);
  m.set(1, 2, true);
  // row2 = row0 ^ row1
  m.set(2, 0, true);
  m.set(2, 2, true);
  EXPECT_EQ(m.rank(), 2u);
}

TEST(Gf2Matrix, NullSpaceOrthogonal) {
  Xoshiro256pp rng(5);
  Gf2Matrix m(4, 10);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 10; ++c) m.set(r, c, rng.bernoulli(0.5));
  }
  const auto basis = m.null_space();
  EXPECT_EQ(basis.size(), 10u - m.rank());
  for (const auto& v : basis) {
    EXPECT_EQ(m.mul_vector(v).popcount(), 0u);
  }
  // Basis vectors are independent.
  EXPECT_EQ(Gf2Matrix(basis).rank(), basis.size());
}

TEST(Gf2Matrix, SolveConsistentSystem) {
  Xoshiro256pp rng(6);
  Gf2Matrix m(5, 8);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 8; ++c) m.set(r, c, rng.bernoulli(0.5));
  }
  for (int trial = 0; trial < 50; ++trial) {
    const auto x = BitVector::random(8, rng);
    const auto b = m.mul_vector(x);
    const auto sol = m.solve(b);
    ASSERT_TRUE(sol.has_value());
    EXPECT_EQ(m.mul_vector(*sol), b);
  }
}

TEST(Gf2Matrix, SolveDetectsInconsistency) {
  Gf2Matrix m(2, 2);
  m.set(0, 0, true);
  m.set(1, 0, true);  // rows identical in col 0
  BitVector b(2);
  b.set(0, true);  // x0 = 1 and x0 = 0: inconsistent
  EXPECT_FALSE(m.solve(b).has_value());
}

TEST(Gf2Matrix, Transpose) {
  Gf2Matrix m(2, 3);
  m.set(0, 2, true);
  m.set(1, 0, true);
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_TRUE(t.get(2, 0));
  EXPECT_TRUE(t.get(0, 1));
}

// --------------------------------------------------------------------- BCH

class BchParams
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {};

TEST_P(BchParams, EncodeDecodeAtFullCapacity) {
  const auto [m, t] = GetParam();
  const BchCode code(m, t);
  Xoshiro256pp rng(100 * m + t);
  for (int trial = 0; trial < 30; ++trial) {
    const auto msg = BitVector::random(code.k(), rng);
    const auto cw = code.encode(msg);
    EXPECT_EQ(code.syndrome(cw).popcount(), 0u);
    // Inject exactly t errors at distinct positions.
    auto noisy = cw;
    std::set<std::size_t> positions;
    while (positions.size() < t) {
      positions.insert(rng.uniform_u64(code.n()));
    }
    for (const auto p : positions) noisy.flip(p);
    const auto decoded = code.decode(noisy);
    ASSERT_TRUE(decoded.has_value()) << "m=" << m << " t=" << t;
    EXPECT_EQ(*decoded, msg);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Codes, BchParams,
    ::testing::Values(std::tuple{4u, std::size_t{1}},
                      std::tuple{4u, std::size_t{2}},
                      std::tuple{5u, std::size_t{3}},
                      std::tuple{5u, std::size_t{7}},
                      std::tuple{6u, std::size_t{5}},
                      std::tuple{7u, std::size_t{9}},
                      std::tuple{8u, std::size_t{10}}));

TEST(Bch, ParametersOfClassicCodes) {
  const BchCode c15_1(4, 1);
  EXPECT_EQ(c15_1.n(), 15u);
  EXPECT_EQ(c15_1.k(), 11u);  // Hamming(15,11)
  const BchCode c15_2(4, 2);
  EXPECT_EQ(c15_2.k(), 7u);
  const BchCode c15_3(4, 3);
  EXPECT_EQ(c15_3.k(), 5u);
  const BchCode c31_7(5, 7);
  EXPECT_EQ(c31_7.n(), 31u);
  EXPECT_EQ(c31_7.k(), 6u);  // the closest true-BCH cousin of "[32,6,16]"
}

TEST(Bch, NoErrorsPassThrough) {
  const BchCode code(5, 3);
  Xoshiro256pp rng(9);
  const auto msg = BitVector::random(code.k(), rng);
  const auto cw = code.encode(msg);
  EXPECT_EQ(code.decode(cw), msg);
  EXPECT_EQ(code.decode_to_codeword(cw), cw);
}

TEST(Bch, SystematicStructure) {
  const BchCode code(5, 3);
  Xoshiro256pp rng(10);
  const auto msg = BitVector::random(code.k(), rng);
  const auto cw = code.encode(msg);
  const std::size_t redundancy = code.n() - code.k();
  for (std::size_t i = 0; i < code.k(); ++i) {
    EXPECT_EQ(cw.get(redundancy + i), msg.get(i));
  }
}

TEST(Bch, ParityCheckAnnihilatesAllCodewords) {
  const BchCode code(4, 2);
  for (std::uint64_t m = 0; m < (1ULL << code.k()); ++m) {
    const auto cw = code.encode(BitVector(code.k(), m));
    EXPECT_EQ(code.syndrome(cw).popcount(), 0u);
  }
  EXPECT_EQ(code.parity_check().rows(), code.n() - code.k());
  EXPECT_EQ(code.parity_check().rank(), code.n() - code.k());
}

TEST(Bch, MinDistanceSpotCheck) {
  // All nonzero codewords of BCH(15, t=2) have weight >= 5.
  const BchCode code(4, 2);
  for (std::uint64_t m = 1; m < (1ULL << code.k()); ++m) {
    const auto cw = code.encode(BitVector(code.k(), m));
    EXPECT_GE(cw.popcount(), 5u);
  }
}

TEST(Bch, BeyondCapacityDetectedOrMiscorrected) {
  // t+1 errors: the decoder must either give up or return *a* codeword —
  // never crash; and it must not return the transmitted codeword as if
  // nothing happened while errors remain unflagged.
  const BchCode code(5, 3);
  Xoshiro256pp rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const auto msg = BitVector::random(code.k(), rng);
    auto noisy = code.encode(msg);
    std::set<std::size_t> positions;
    while (positions.size() < code.guaranteed_correction() + 2) {
      positions.insert(rng.uniform_u64(code.n()));
    }
    for (const auto p : positions) noisy.flip(p);
    const auto decoded = code.decode_to_codeword(noisy);
    if (decoded.has_value()) {
      EXPECT_EQ(code.syndrome(*decoded).popcount(), 0u);
    }
  }
}

TEST(Bch, ShorteningWorks) {
  const BchCode code(5, 3, 10);  // [21, 6] shortened from [31, 16]
  EXPECT_EQ(code.n(), 21u);
  EXPECT_EQ(code.k(), 6u);
  Xoshiro256pp rng(12);
  for (int trial = 0; trial < 30; ++trial) {
    const auto msg = BitVector::random(code.k(), rng);
    auto noisy = code.encode(msg);
    std::set<std::size_t> positions;
    while (positions.size() < 3) positions.insert(rng.uniform_u64(code.n()));
    for (const auto p : positions) noisy.flip(p);
    EXPECT_EQ(code.decode(noisy), msg);
  }
}

TEST(Bch, RejectsBadConfigs) {
  EXPECT_THROW(BchCode(4, 0), std::invalid_argument);
  EXPECT_THROW(BchCode(4, 100), std::invalid_argument);
  EXPECT_THROW(BchCode(4, 1, 11), std::invalid_argument);  // shorten >= k
}

TEST(Bch, EncodeRejectsWrongLength) {
  const BchCode code(4, 1);
  EXPECT_THROW(code.encode(BitVector(5)), std::invalid_argument);
  EXPECT_THROW(code.decode(BitVector(5)), std::invalid_argument);
}

// ------------------------------------------------------------- Reed-Muller

TEST(ReedMuller, ParametersMatchPaper) {
  const ReedMuller1 rm5(5);
  EXPECT_EQ(rm5.n(), 32u);          // the paper's "[32,6,16]"
  EXPECT_EQ(rm5.k(), 6u);
  EXPECT_EQ(rm5.min_distance(), 16u);
  EXPECT_EQ(rm5.guaranteed_correction(), 7u);
}

TEST(ReedMuller, AllCodewordsHaveWeightZeroHalfOrFull) {
  const ReedMuller1 rm(4);
  for (std::uint64_t m = 0; m < 32; ++m) {
    const auto cw = rm.encode(BitVector(5, m));
    const auto w = cw.popcount();
    EXPECT_TRUE(w == 0 || w == 8 || w == 16) << "weight " << w;
  }
}

TEST(ReedMuller, RoundTripAllMessages) {
  const ReedMuller1 rm(5);
  for (std::uint64_t m = 0; m < 64; ++m) {
    const BitVector msg(6, m);
    const auto cw = rm.encode(msg);
    EXPECT_EQ(rm.syndrome(cw).popcount(), 0u);
    EXPECT_EQ(rm.decode(cw), msg);
  }
}

TEST(ReedMuller, CorrectsUpToSevenErrors) {
  const ReedMuller1 rm(5);
  Xoshiro256pp rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    const auto msg = BitVector::random(6, rng);
    auto noisy = rm.encode(msg);
    const auto nerr = 1 + rng.uniform_u64(7);
    std::set<std::size_t> positions;
    while (positions.size() < nerr) positions.insert(rng.uniform_u64(32));
    for (const auto p : positions) noisy.flip(p);
    EXPECT_EQ(rm.decode(noisy), msg) << "errors=" << nerr;
  }
}

TEST(ReedMuller, OftenCorrectsBeyondGuarantee) {
  // ML decoding frequently succeeds past radius 7 — the behaviour behind
  // the paper's optimistic "up to 16 bit errors" phrasing.
  const ReedMuller1 rm(5);
  Xoshiro256pp rng(14);
  int success = 0;
  const int trials = 500;
  for (int trial = 0; trial < trials; ++trial) {
    const auto msg = BitVector::random(6, rng);
    auto noisy = rm.encode(msg);
    std::set<std::size_t> positions;
    while (positions.size() < 9) positions.insert(rng.uniform_u64(32));
    for (const auto p : positions) noisy.flip(p);
    if (rm.decode(noisy) == msg) ++success;
  }
  EXPECT_GT(success, trials / 3);
}

TEST(ReedMuller, ParityCheckFullRank) {
  const ReedMuller1 rm(5);
  EXPECT_EQ(rm.parity_check().rows(), 26u);
  EXPECT_EQ(rm.parity_check().rank(), 26u);
}

TEST(ReedMuller, CorrelationPeakIsNForCodewords) {
  const ReedMuller1 rm(5);
  Xoshiro256pp rng(15);
  const auto cw = rm.encode(BitVector::random(6, rng));
  EXPECT_EQ(rm.correlation_peak(cw), 32);
  auto noisy = cw;
  noisy.flip(0);
  noisy.flip(5);
  EXPECT_EQ(rm.correlation_peak(noisy), 32 - 4);
}

TEST(ReedMuller, RejectsBadM) {
  EXPECT_THROW(ReedMuller1(1), std::invalid_argument);
  EXPECT_THROW(ReedMuller1(17), std::invalid_argument);
}

// ------------------------------------------------------------- Helper data

class HelperDataCodes : public ::testing::Test {
 protected:
  ReedMuller1 rm_{5};
  BchCode bch_{5, 7};  // [31, 6, 15]
};

TEST_F(HelperDataCodes, HelperSizeIsNMinusK) {
  const SyndromeHelper helper(rm_);
  EXPECT_EQ(helper.helper_bits(), 26u);
  EXPECT_EQ(helper.leaked_bits(), 26u);
  EXPECT_EQ(helper.response_bits(), 32u);
}

TEST_F(HelperDataCodes, ReproducesExactProverResponse) {
  const SyndromeHelper helper(rm_);
  Xoshiro256pp rng(16);
  for (int trial = 0; trial < 200; ++trial) {
    // Prover measures y'; verifier has reference within <= 7 bits.
    const auto y_prover = BitVector::random(32, rng);
    const auto h = helper.generate(y_prover);
    auto y_ref = y_prover;
    const auto nerr = rng.uniform_u64(8);
    std::set<std::size_t> positions;
    while (positions.size() < nerr) positions.insert(rng.uniform_u64(32));
    for (const auto p : positions) y_ref.flip(p);
    const auto reproduced = helper.reproduce(y_ref, h);
    ASSERT_TRUE(reproduced.has_value());
    EXPECT_EQ(*reproduced, y_prover)
        << "verifier must recover the prover's *exact* noisy response";
  }
}

TEST_F(HelperDataCodes, WorksWithBchToo) {
  const SyndromeHelper helper(bch_);
  Xoshiro256pp rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    const auto y_prover = BitVector::random(31, rng);
    const auto h = helper.generate(y_prover);
    auto y_ref = y_prover;
    std::set<std::size_t> positions;
    while (positions.size() < 7) positions.insert(rng.uniform_u64(31));
    for (const auto p : positions) y_ref.flip(p);
    const auto reproduced = helper.reproduce(y_ref, h);
    ASSERT_TRUE(reproduced.has_value());
    EXPECT_EQ(*reproduced, y_prover);
  }
}

TEST_F(HelperDataCodes, FarReferenceFailsOrMismatches) {
  const SyndromeHelper helper(bch_);
  Xoshiro256pp rng(18);
  int mismatch_or_fail = 0;
  const int trials = 100;
  for (int trial = 0; trial < trials; ++trial) {
    const auto y_prover = BitVector::random(31, rng);
    const auto h = helper.generate(y_prover);
    const auto y_ref = BitVector::random(31, rng);  // unrelated reference
    const auto reproduced = helper.reproduce(y_ref, h);
    if (!reproduced || *reproduced != y_prover) ++mismatch_or_fail;
  }
  EXPECT_GT(mismatch_or_fail, trials * 9 / 10);
}

TEST_F(HelperDataCodes, HelperIsLinearInResponse) {
  // h(y1 ^ y2) = h(y1) ^ h(y2): the syndrome construction is linear, which
  // is what the hardware XOR-tree implementation relies on.
  const SyndromeHelper helper(rm_);
  Xoshiro256pp rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    const auto y1 = BitVector::random(32, rng);
    const auto y2 = BitVector::random(32, rng);
    EXPECT_EQ(helper.generate(y1 ^ y2),
              helper.generate(y1) ^ helper.generate(y2));
  }
}

TEST_F(HelperDataCodes, SizeValidation) {
  const SyndromeHelper helper(rm_);
  EXPECT_THROW(helper.generate(BitVector(31)), std::invalid_argument);
  EXPECT_THROW(helper.reproduce(BitVector(31), BitVector(26)),
               std::invalid_argument);
  EXPECT_THROW(helper.reproduce(BitVector(32), BitVector(25)),
               std::invalid_argument);
}

}  // namespace
}  // namespace pufatt::ecc
