#include "service/emulator_cache.hpp"

#include <stdexcept>

namespace pufatt::service {

EmulatorCache::EmulatorCache(const RegistryView& registry,
                             const ecc::BinaryCode& code, std::size_t capacity,
                             const core::ChannelParams& channel, double slack)
    : registry_(&registry),
      code_(&code),
      capacity_(capacity),
      channel_(channel),
      slack_(slack) {
  if (capacity == 0) {
    throw std::invalid_argument("EmulatorCache: zero capacity");
  }
}

void EmulatorCache::touch(
    std::unordered_map<std::string, Slot>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
}

EmulatorCache::Lease EmulatorCache::acquire(const std::string& device_id,
                                            const obs::TraceScope& trace) {
  obs::Span acquire_span = trace.span("cache.acquire");
  bool hit = false;
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(device_id);
    if (it != map_.end()) {
      ++counters_.hits;
      hit = true;
      touch(it);
      entry = it->second.entry;
    } else {
      ++counters_.misses;
    }
  }
  acquire_span.note("hit", hit ? 1.0 : 0.0);

  if (!entry) {
    const auto record = registry_->load(device_id);
    if (!record) return Lease{};
    // Construction happens unlocked: it simulates the whole ALU circuit to
    // calibrate the emulator and must not stall unrelated lookups.
    obs::Span build_span = acquire_span.child("cache.build");
    auto fresh =
        std::make_shared<Entry>(*record, *code_, channel_, slack_);
    build_span.end();

    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(device_id);
    if (it != map_.end()) {
      // Another thread won the construction race; use its entry.
      ++counters_.discarded;
      touch(it);
      entry = it->second.entry;
    } else {
      lru_.push_front(device_id);
      map_.emplace(device_id, Slot{fresh, lru_.begin()});
      entry = std::move(fresh);
      if (map_.size() > capacity_) {
        const std::string victim = lru_.back();
        lru_.pop_back();
        map_.erase(victim);  // in-flight leases keep the entry alive
        ++counters_.evictions;
      }
    }
  }

  return Lease(std::move(entry));  // blocks on the entry's session mutex
}

void EmulatorCache::invalidate(const std::string& device_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(device_id);
  if (it == map_.end()) return;
  lru_.erase(it->second.lru_it);
  map_.erase(it);
}

std::size_t EmulatorCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

CacheCounters EmulatorCache::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace pufatt::service
