// Fixed worker pool draining a bounded MPMC queue of attestation jobs.
//
// The serving model: any number of producer threads submit() jobs; a
// fixed set of worker threads drain them, each job running one full
// retrying AttestationSession (core/session) against the cached verifier
// for its device.  The queue is *bounded*: when it is full the pool does
// not grow, block, or drop silently — submit() returns kRejectedBusy with
// a retry-after hint derived from the observed service rate, which is the
// explicit backpressure signal a fleet front-end needs to shed load
// upstream instead of melting down.  (An unreliable radio already forces
// every client to handle retry; busy-shedding reuses the same path.)
//
// Determinism: a job's verdict is a pure function of (enrollment record,
// responder behaviour, channel_seed, rng_seed).  Workers race only over
// *which thread* runs a job, never over the job's random streams — each
// session gets a private RNG seeded from the job — so a pooled run is
// verdict-identical to running the same jobs serially in any order.
// bench/service_throughput checks exactly this parity.
//
// Same-device jobs serialize on the cache lease (see emulator_cache.hpp);
// throughput scales with the number of *distinct* devices in flight,
// which is the realistic fleet workload.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/faulty_channel.hpp"
#include "core/session.hpp"
#include "obs/trace.hpp"
#include "service/emulator_cache.hpp"
#include "service/metrics.hpp"

namespace pufatt::service {

struct PoolConfig {
  std::size_t workers = 4;
  std::size_t queue_capacity = 64;
  core::SessionPolicy session;         ///< retry policy for every session
  core::ChannelParams channel;         ///< link model for every session
  /// Optional span tracer (must outlive the pool).  Each sampled job
  /// yields a "pool.job" root covering enqueue→completion, with
  /// "pool.queue_wait" and "pool.verify" children; the cache and the
  /// session hang their spans under pool.verify.  Null = no tracing.
  obs::Tracer* tracer = nullptr;
  /// Invoked once per drain()/shutdown(), after the queue has emptied and
  /// every in-flight session finished, on the draining thread.  This is
  /// the durability barrier hook: a verifier store registers its group-
  /// commit sync() here so that by the time drain() returns, every
  /// consume marker the drained jobs produced is on disk.
  std::function<void()> on_drain;
};

/// One attestation request against a registered device.
struct AttestationJob {
  std::string device_id;
  core::Responder responder;      ///< must be callable from a worker thread
  core::FaultParams faults;       ///< fault process of this job's link
  std::uint64_t channel_seed = 0; ///< seeds the link's fault schedule
  std::uint64_t rng_seed = 0;     ///< seeds nonces + backoff jitter
  std::uint64_t tag = 0;          ///< caller correlation id, echoed in the result
  /// Distributed-tracing context adopted from the wire (0 = untraced).
  /// A non-zero wire_trace_id forces the job to be recorded — the client
  /// already made the sampling decision — and the "pool.job" root gets
  /// "trace"/"parent_span" notes so a cross-process merge can join the
  /// server's spans into the client's trace.
  std::uint64_t wire_trace_id = 0;
  std::uint64_t wire_parent_span = 0;
};

struct JobResult {
  std::string device_id;
  std::uint64_t tag = 0;
  JobOutcome outcome = JobOutcome::kUnknownDevice;
  core::SessionOutcome session;  ///< empty when the device was unknown
  /// Echo of AttestationJob::wire_trace_id, plus the span id of this
  /// job's "pool.job" root (0 when the job was not recorded).  The server
  /// sends trace_span back to the client as the reply's span id — the
  /// join key of the cross-process merge.
  std::uint64_t wire_trace_id = 0;
  std::uint64_t trace_span = 0;
};

enum class SubmitStatus {
  kEnqueued,
  kRejectedBusy,   ///< queue full: shed load, come back in retry_after_us
  kShuttingDown,   ///< drain/shutdown began; no new work is accepted
};

const char* to_string(SubmitStatus status);

struct SubmitResult {
  SubmitStatus status = SubmitStatus::kEnqueued;
  /// When kRejectedBusy: suggested client backoff (host-clock us), sized
  /// so that the queue has likely drained by then at the observed rate.
  double retry_after_us = 0.0;

  bool enqueued() const { return status == SubmitStatus::kEnqueued; }
};

class VerifierPool {
 public:
  /// Results are delivered through `on_complete`, invoked on the worker
  /// thread that ran the job; it must be thread-safe.  `cache` must
  /// outlive the pool.
  using CompletionFn = std::function<void(const JobResult&)>;

  VerifierPool(EmulatorCache& cache, const PoolConfig& config,
               CompletionFn on_complete = {});
  ~VerifierPool();  ///< drains, then joins (graceful by default)

  VerifierPool(const VerifierPool&) = delete;
  VerifierPool& operator=(const VerifierPool&) = delete;

  /// Never blocks: enqueues, or reports backpressure/shutdown.
  SubmitResult submit(AttestationJob job);

  /// Stops accepting new jobs and blocks until the queue is empty and all
  /// in-flight sessions finished.  Workers stay alive; idempotent.
  void drain();

  /// drain() + terminate and join the workers.  After shutdown every
  /// submit returns kShuttingDown.
  void shutdown();

  std::size_t queue_depth() const;
  const PoolConfig& config() const { return config_; }
  const ServiceMetrics& metrics() const { return metrics_; }
  MetricsSnapshot metrics_snapshot() const { return metrics_.snapshot(); }

 private:
  /// A queued job plus its tracing identity.  trace_id != 0 marks a
  /// sampled job: it is the pre-allocated span id of the eventual
  /// "pool.job" root, decided at submit() so queue wait is attributable
  /// even though the record is only emitted when the job completes.
  struct Queued {
    AttestationJob job;
    std::uint64_t trace_id = 0;
    std::uint64_t enqueue_ns = 0;  ///< stamped iff trace_id != 0
  };

  void worker_loop();
  void run_job(const AttestationJob& job, std::uint64_t trace_id,
               std::uint64_t enqueue_ns);
  double estimate_retry_after_us() const;  ///< caller holds mutex_

  EmulatorCache* cache_;
  PoolConfig config_;
  CompletionFn on_complete_;
  ServiceMetrics metrics_;

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;   ///< queue non-empty or exiting
  std::condition_variable queue_idle_;   ///< queue empty and nothing in flight
  std::deque<Queued> queue_;
  std::size_t in_flight_ = 0;
  bool accepting_ = true;
  bool exiting_ = false;
  bool drained_hook_ran_ = false;  ///< on_drain fires exactly once
  // Host-clock service-time accumulators feeding the retry-after hint.
  double total_service_us_ = 0.0;
  std::uint64_t serviced_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace pufatt::service
