// Lock-free service metrics: outcome counters, queue-depth high-water
// mark, and per-outcome latency histograms.
//
// Workers record on the hot path, so everything is a relaxed atomic —
// metrics never serialize two workers.  snapshot() copies the counters
// into a plain struct; because the loads are relaxed, a snapshot taken
// while workers are mid-update is each-counter-consistent, not
// cross-counter-consistent (e.g. `completed()` may momentarily lag
// `submitted`).  Quiesce the pool (drain) before asserting exact totals.
//
// Latency is the *simulated* session wall time (SessionOutcome::total_us
// — attempts + timeouts + backoff), not host wall time: it is what an
// operator dashboard for the deployed radio protocol would show, and it
// is deterministic under seeded workloads, which keeps tests exact.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "support/stats.hpp"

namespace pufatt::service {

/// Terminal classification of one job, from the service's viewpoint.
enum class JobOutcome {
  kAccepted,       ///< session ended kAccepted
  kRejected,       ///< session ended kRejected (evidence against the prover)
  kInconclusive,   ///< transport-starved session (timeout/corrupt/exhausted)
  kUnknownDevice,  ///< device id not in the registry
};

const char* to_string(JobOutcome outcome);

/// Log-scale histogram over simulated session latency.  Bucket i counts
/// latencies in [edge(i-1), edge(i)) with edge(i) = 100us * 4^i; the last
/// bucket is unbounded.  Spans 100us .. ~1.6s, the range between a clean
/// one-attempt session and a fully backed-off retry budget.
///
/// The bucket math is the shared support::LogScale (also behind
/// obs::LogHistogram), so the service and registry views of the same
/// latency stream are bit-identical by construction.
struct LatencyHistogram {
  static constexpr std::size_t kBuckets = 8;
  static constexpr support::LogScale scale() {
    return support::LogScale{100.0, 4.0, kBuckets};
  }
  static double upper_edge_us(std::size_t bucket);  ///< +inf for the last
  static std::size_t bucket_for(double latency_us);

  std::array<std::uint64_t, kBuckets> counts{};
  std::uint64_t total() const;
};

/// Plain-value copy of the metrics at one instant.
struct MetricsSnapshot {
  std::uint64_t submitted = 0;      ///< jobs accepted into the queue
  std::uint64_t rejected_busy = 0;  ///< submits bounced by backpressure
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t inconclusive = 0;
  std::uint64_t unknown_device = 0;
  std::uint64_t queue_depth_hwm = 0;  ///< max queued jobs ever observed
  std::array<LatencyHistogram, 3> latency;  ///< accepted/rejected/inconclusive

  std::uint64_t completed() const {
    return accepted + rejected + inconclusive + unknown_device;
  }
  /// Multi-line human-readable dump (operator tooling).
  std::string format() const;
};

class ServiceMetrics {
 public:
  void record_submitted() { submitted_.fetch_add(1, relaxed); }
  void record_rejected_busy() { rejected_busy_.fetch_add(1, relaxed); }
  void record_outcome(JobOutcome outcome, double latency_us);
  void observe_queue_depth(std::size_t depth);

  MetricsSnapshot snapshot() const;

 private:
  static constexpr auto relaxed = std::memory_order_relaxed;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_busy_{0};
  std::atomic<std::uint64_t> outcomes_[4] = {};
  std::atomic<std::uint64_t> queue_depth_hwm_{0};
  std::atomic<std::uint64_t>
      latency_[3][LatencyHistogram::kBuckets] = {};
};

/// Publishes one quiesced snapshot (plus the emulator-cache counters) into
/// a MetricRegistry under "service." names, matching the snapshot's field
/// names so the registry's byte-stable JSON doubles as the service's
/// exportable metrics file.  Counters are *added*, so publish into a fresh
/// registry (or once per registry lifetime).
void publish_metrics(const MetricsSnapshot& snap,
                     const struct CacheCounters& cache,
                     obs::MetricRegistry& out);

}  // namespace pufatt::service
