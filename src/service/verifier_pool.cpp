#include "service/verifier_pool.hpp"

#include <chrono>
#include <stdexcept>

namespace pufatt::service {

namespace {

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* to_string(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kEnqueued: return "enqueued";
    case SubmitStatus::kRejectedBusy: return "rejected busy";
    case SubmitStatus::kShuttingDown: return "shutting down";
  }
  return "?";
}

VerifierPool::VerifierPool(EmulatorCache& cache, const PoolConfig& config,
                           CompletionFn on_complete)
    : cache_(&cache), config_(config), on_complete_(std::move(on_complete)) {
  if (config.workers == 0) {
    throw std::invalid_argument("VerifierPool: zero workers");
  }
  if (config.queue_capacity == 0) {
    throw std::invalid_argument("VerifierPool: zero queue capacity");
  }
  workers_.reserve(config.workers);
  for (std::size_t i = 0; i < config.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

VerifierPool::~VerifierPool() { shutdown(); }

double VerifierPool::estimate_retry_after_us() const {
  // Expected time until the queue has fully turned over once: depth jobs
  // at the mean observed service time, spread over the workers.  Before
  // any job completed there is no observed rate; fall back to one response
  // timeout, the natural time constant of a session.
  const double mean_service_us =
      serviced_ > 0 ? total_service_us_ / static_cast<double>(serviced_)
                    : config_.session.response_timeout_us;
  const double backlog = static_cast<double>(queue_.size() + in_flight_);
  return mean_service_us * backlog / static_cast<double>(config_.workers);
}

SubmitResult VerifierPool::submit(AttestationJob job) {
  SubmitResult result;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_) {
      result.status = SubmitStatus::kShuttingDown;
      return result;
    }
    if (queue_.size() >= config_.queue_capacity) {
      result.status = SubmitStatus::kRejectedBusy;
      result.retry_after_us = estimate_retry_after_us();
      metrics_.record_rejected_busy();
      return result;
    }
    Queued item;
    item.job = std::move(job);
    if (config_.tracer != nullptr && config_.tracer->enabled()) {
      // Sampling is decided here, not at dequeue, so the queue-wait
      // interval of a sampled job starts at the moment of admission.
      // A wire-traced job skips the sampler: the client already decided
      // this trace is worth recording, and dropping the server half would
      // leave the client's timeline unjoinable.
      item.trace_id = item.job.wire_trace_id != 0 ? config_.tracer->next_id()
                                                  : config_.tracer->sample_root();
      if (item.trace_id != 0) item.enqueue_ns = obs::monotonic_ns();
    }
    queue_.push_back(std::move(item));
    metrics_.record_submitted();
    metrics_.observe_queue_depth(queue_.size());
  }
  work_ready_.notify_one();
  return result;
}

void VerifierPool::worker_loop() {
  for (;;) {
    Queued item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return exiting_ || !queue_.empty(); });
      if (queue_.empty()) return;  // exiting_ and nothing left to do
      item = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    if (item.trace_id != 0 && config_.tracer != nullptr) {
      // The wait interval straddles two threads (stamped at submit, ends
      // here), so it is assembled manually rather than via Span RAII.
      obs::SpanRecord wait;
      wait.id = config_.tracer->next_id();
      wait.parent = item.trace_id;
      wait.name = "pool.queue_wait";
      wait.start_ns = item.enqueue_ns;
      wait.end_ns = obs::monotonic_ns();
      config_.tracer->emit(wait);
    }

    const double start_us = now_us();
    run_job(item.job, item.trace_id, item.enqueue_ns);
    const double service_us = now_us() - start_us;

    {
      std::lock_guard<std::mutex> lock(mutex_);
      total_service_us_ += service_us;
      ++serviced_;
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) queue_idle_.notify_all();
    }
  }
}

void VerifierPool::run_job(const AttestationJob& job, std::uint64_t trace_id,
                           std::uint64_t enqueue_ns) {
  JobResult result;
  result.device_id = job.device_id;
  result.tag = job.tag;
  result.wire_trace_id = job.wire_trace_id;
  result.trace_span = trace_id;

  obs::Span verify_span;
  obs::TraceScope scope;  // stays inert when this job was not sampled
  if (trace_id != 0 && config_.tracer != nullptr) {
    verify_span = config_.tracer->span("pool.verify", trace_id);
    scope = obs::TraceScope{config_.tracer, verify_span.id()};
  }

  // The lease pins the cached verifier and serializes this device: it is
  // held for the whole session, covering both verify() and the responder
  // (one physical device answers one attestation at a time).
  auto lease = cache_->acquire(job.device_id, scope);
  if (!lease) {
    result.outcome = JobOutcome::kUnknownDevice;
    metrics_.record_outcome(result.outcome, 0.0);
  } else {
    core::FaultyChannel link(config_.channel, job.faults, job.channel_seed);
    core::AttestationSession session(lease.verifier(), link, config_.session);
    support::Xoshiro256pp rng(job.rng_seed);
    result.session = session.run(job.responder, rng, scope);

    if (result.session.accepted()) {
      result.outcome = JobOutcome::kAccepted;
    } else if (result.session.conclusive()) {
      result.outcome = JobOutcome::kRejected;
    } else {
      result.outcome = JobOutcome::kInconclusive;
    }
    metrics_.record_outcome(result.outcome, result.session.total_us);
  }

  if (verify_span.active()) {
    verify_span.note("outcome", static_cast<double>(result.outcome));
    verify_span.end();
    // The job root reuses the id handed out by sample_root() at submit():
    // its children were parented under trace_id while the job ran, and the
    // record itself is emitted only now that the interval is closed.
    obs::SpanRecord root;
    root.id = trace_id;
    root.name = "pool.job";
    root.start_ns = enqueue_ns;
    root.end_ns = obs::monotonic_ns();
    root.notes[0] = obs::Note{"outcome", static_cast<double>(result.outcome)};
    root.note_count = 1;
    if (job.wire_trace_id != 0) {
      // Join keys for the cross-process merge: the client's trace id (its
      // root span id in *its* tracer's id space) and the client span this
      // job is conceptually parented under.  Ids stay below 2^53, so the
      // double-valued notes carry them exactly.
      root.notes[1] =
          obs::Note{"trace", static_cast<double>(job.wire_trace_id)};
      root.notes[2] =
          obs::Note{"parent_span", static_cast<double>(job.wire_parent_span)};
      root.note_count = 3;
    }
    config_.tracer->emit(root);
  }
  if (on_complete_) on_complete_(result);
}

void VerifierPool::drain() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    accepting_ = false;
    queue_idle_.wait(lock,
                     [this] { return queue_.empty() && in_flight_ == 0; });
    if (drained_hook_ran_) return;  // the durability barrier fires once
    drained_hook_ran_ = true;
  }
  // Outside the lock: the hook may take its own time (an fsync) and must
  // not stall queue_depth()/submit() probes meanwhile.
  if (config_.on_drain) config_.on_drain();
}

void VerifierPool::shutdown() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (exiting_) return;  // already shut down; workers joined below once
    exiting_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

std::size_t VerifierPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace pufatt::service
