// Sharded, thread-safe registry of enrolled devices.
//
// The verifier side of a deployment owns one EnrollmentRecord per device
// (the delay table H, the attested image, the timing profile).  A service
// handling many concurrent attestations cannot funnel every record lookup
// through one mutex, so the registry stripes its map across N independent
// shards keyed by a hash of the device id: two requests for different
// devices almost never touch the same lock, while requests for the same
// device serialize only against that device's shard.
//
// Records are held as shared_ptr<const EnrollmentRecord>: a load hands the
// caller a stable snapshot that stays alive even if the device is evicted
// (de-registered) concurrently — readers never observe a half-updated
// record, and re-enrolling a device simply swaps the pointer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/enrollment.hpp"

namespace pufatt::service {

/// Platform-stable device-id hash: FNV-1a folded through a SplitMix64
/// finalizer.  std::hash<std::string> is implementation-defined, and this
/// hash decides *placement* — registry lock striping here, and shard
/// routing in store::ShardedVerifierStore — so it must produce the same
/// value on every platform a store directory might be copied between.
std::uint64_t stable_device_hash(const std::string& device_id);

/// Read-side view of enrolled devices: what request-serving code
/// (EmulatorCache, VerifierPool) actually needs.  Both a plain
/// DeviceRegistry and a sharded store's routing facade implement it, so
/// the service layer is indifferent to how records are partitioned.
class RegistryView {
 public:
  virtual ~RegistryView() = default;

  /// nullptr when the device is unknown.
  virtual std::shared_ptr<const core::EnrollmentRecord> load(
      const std::string& device_id) const = 0;

  virtual bool contains(const std::string& device_id) const {
    return load(device_id) != nullptr;
  }
};

class DeviceRegistry : public RegistryView {
 public:
  /// `shards` is rounded up to 1; 16 is plenty below ~100 worker threads
  /// (collision probability on a random pair of ids is 1/shards).
  explicit DeviceRegistry(std::size_t shards = 16);

  DeviceRegistry(const DeviceRegistry&) = delete;
  DeviceRegistry& operator=(const DeviceRegistry&) = delete;
  /// Movable (shards live behind unique_ptr): load_registry returns one.
  /// Moving while another thread uses the source is, of course, a race.
  DeviceRegistry(DeviceRegistry&&) = default;
  DeviceRegistry& operator=(DeviceRegistry&&) = default;

  /// Registers (or re-enrolls) a device.  Returns false when the id was
  /// already present (the record is replaced either way).
  bool store(const std::string& device_id,
             std::shared_ptr<const core::EnrollmentRecord> record);
  bool store(const std::string& device_id, core::EnrollmentRecord record);

  /// nullptr when the device is unknown.
  std::shared_ptr<const core::EnrollmentRecord> load(
      const std::string& device_id) const override;

  bool contains(const std::string& device_id) const override;

  /// De-registers a device; outstanding shared_ptrs stay valid.
  bool evict(const std::string& device_id);

  std::size_t size() const;
  std::size_t shard_count() const { return shards_.size(); }

  /// Ids currently registered, sorted (joins all shards; intended for
  /// tooling and tests, not hot paths).
  std::vector<std::string> device_ids() const;

  // --- persistence (reuses core/serialize's record format) ------------------

  /// Writes every (id, record) pair.  The snapshot is taken shard by shard:
  /// it is consistent per device, not across devices mutated mid-save.
  void save(std::ostream& out) const;

  /// Loads a registry previously written by save(); throws
  /// core::SerializationError on malformed input.
  static DeviceRegistry load_registry(std::istream& in,
                                      std::size_t shards = 16);

  /// Atomic: writes `path + ".tmp"` then renames it over `path`, so a
  /// crash mid-save never leaves a torn snapshot — readers see either the
  /// old complete file or the new complete file.
  void save_file(const std::string& path) const;
  static DeviceRegistry load_registry_file(const std::string& path,
                                           std::size_t shards = 16);

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string,
                       std::shared_ptr<const core::EnrollmentRecord>>
        records;
  };

  Shard& shard_for(const std::string& device_id);
  const Shard& shard_for(const std::string& device_id) const;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pufatt::service
