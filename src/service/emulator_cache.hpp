// LRU cache of constructed verifiers (and their PufEmulators).
//
// Building a core::Verifier is the expensive part of serving a request:
// the constructor instantiates the gate-level ALU circuit and a timing
// simulator from the enrollment delay table.  Rebuilding it per request —
// what every bench and example does today — would dominate service time,
// so the cache amortizes construction across requests, bounded by
// `capacity` verifiers (each holds a full circuit model, so memory is the
// real constraint on a fleet of millions).
//
// Concurrency contract: Verifier::verify mutates per-instance scratch
// buffers under const (the emulator's delay/state caches), so a cached
// verifier must never run two sessions at once.  acquire() therefore
// returns a *lease* — an RAII object holding both a shared_ptr to the
// entry (it survives concurrent eviction) and that entry's session mutex.
// Two requests for the same device serialize on the lease, which is the
// physically faithful behaviour anyway: a real device can only execute
// one attestation at a time.  Requests for different devices never share
// a lease and run fully in parallel.
//
// On a miss the verifier is constructed *outside* the cache lock; if two
// threads miss the same id simultaneously both construct and the loser's
// instance is discarded — wasted work, never a wrong result.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/protocol.hpp"
#include "ecc/linear_code.hpp"
#include "obs/trace.hpp"
#include "service/device_registry.hpp"

namespace pufatt::service {

struct CacheCounters {
  std::size_t hits = 0;
  std::size_t misses = 0;      ///< lookups that found no entry
  std::size_t evictions = 0;   ///< entries pushed out by capacity
  std::size_t discarded = 0;   ///< lost construction races (miss storms)
};

class EmulatorCache {
  struct Entry {
    Entry(const core::EnrollmentRecord& record, const ecc::BinaryCode& code,
          const core::ChannelParams& channel, double slack)
        : verifier(record, code, channel, slack) {}
    core::Verifier verifier;
    std::mutex session_mutex;  ///< one attestation session at a time
  };

 public:
  /// `registry` and `code` must outlive the cache.  `channel`/`slack` are
  /// forwarded to every constructed Verifier.  Any RegistryView works —
  /// a plain DeviceRegistry or a sharded store's routing view — since the
  /// cache only ever loads records by id.
  EmulatorCache(const RegistryView& registry, const ecc::BinaryCode& code,
                std::size_t capacity, const core::ChannelParams& channel = {},
                double slack = 0.03);

  EmulatorCache(const EmulatorCache&) = delete;
  EmulatorCache& operator=(const EmulatorCache&) = delete;

  class Lease {
   public:
    Lease() = default;
    explicit operator bool() const { return entry_ != nullptr; }
    /// Valid for the lease's lifetime; exclusive across threads.
    const core::Verifier& verifier() const { return entry_->verifier; }

   private:
    friend class EmulatorCache;
    explicit Lease(std::shared_ptr<Entry> entry)
        : entry_(std::move(entry)), session_lock_(entry_->session_mutex) {}
    std::shared_ptr<Entry> entry_;
    std::unique_lock<std::mutex> session_lock_;
  };

  /// Blocks while another thread holds this device's lease.  Returns an
  /// empty lease when the device is not registered.
  Lease acquire(const std::string& device_id) { return acquire(device_id, {}); }

  /// As above, recording a "cache.acquire" span under `trace` covering
  /// lookup + (on a miss) construction + the wait for the device lease,
  /// with a hit=0/1 note; misses get a nested "cache.build" span around
  /// the verifier construction itself, which separates "the emulator was
  /// cold" from "the device was busy" in a trace.
  Lease acquire(const std::string& device_id, const obs::TraceScope& trace);

  /// Drops a cached verifier (e.g. after re-enrollment changed the
  /// record).  In-flight leases stay valid; the next acquire rebuilds.
  void invalidate(const std::string& device_id);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  CacheCounters counters() const;

 private:
  struct Slot {
    std::shared_ptr<Entry> entry;
    std::list<std::string>::iterator lru_it;
  };

  /// Marks `it` most-recently-used.  Caller holds mutex_.
  void touch(std::unordered_map<std::string, Slot>::iterator it);

  const RegistryView* registry_;
  const ecc::BinaryCode* code_;
  std::size_t capacity_;
  core::ChannelParams channel_;
  double slack_;

  mutable std::mutex mutex_;
  std::list<std::string> lru_;  ///< MRU at the front; eviction pops the back
  std::unordered_map<std::string, Slot> map_;
  CacheCounters counters_;
};

}  // namespace pufatt::service
