#include "service/device_registry.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "core/serialize.hpp"
#include "support/fsyncutil.hpp"
#include "support/rng.hpp"

namespace pufatt::service {

namespace {

constexpr char kRegistryMagic[8] = {'P', 'F', 'A', 'T', 'R', 'E', 'G', '1'};

}  // namespace

// FNV-1a, then a SplitMix64 finalizer: std::hash<std::string> is
// implementation-defined, and shard assignment must not change between
// platforms or the registry's concurrency tests would be unportable —
// and, since the sharded store reuses this hash for shard *directories*,
// a platform-dependent hash would scatter devices across the wrong
// shards when a store is copied between machines.
std::uint64_t stable_device_hash(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return support::SplitMix64::mix(h);
}

DeviceRegistry::DeviceRegistry(std::size_t shards) {
  shards_.reserve(std::max<std::size_t>(shards, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(shards, 1); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

DeviceRegistry::Shard& DeviceRegistry::shard_for(const std::string& id) {
  return *shards_[stable_device_hash(id) % shards_.size()];
}

const DeviceRegistry::Shard& DeviceRegistry::shard_for(
    const std::string& id) const {
  return *shards_[stable_device_hash(id) % shards_.size()];
}

bool DeviceRegistry::store(
    const std::string& device_id,
    std::shared_ptr<const core::EnrollmentRecord> record) {
  Shard& shard = shard_for(device_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.records.insert_or_assign(device_id, std::move(record)).second;
}

bool DeviceRegistry::store(const std::string& device_id,
                           core::EnrollmentRecord record) {
  return store(device_id, std::make_shared<const core::EnrollmentRecord>(
                              std::move(record)));
}

std::shared_ptr<const core::EnrollmentRecord> DeviceRegistry::load(
    const std::string& device_id) const {
  const Shard& shard = shard_for(device_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.records.find(device_id);
  return it == shard.records.end() ? nullptr : it->second;
}

bool DeviceRegistry::contains(const std::string& device_id) const {
  return load(device_id) != nullptr;
}

bool DeviceRegistry::evict(const std::string& device_id) {
  Shard& shard = shard_for(device_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.records.erase(device_id) > 0;
}

std::size_t DeviceRegistry::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    n += shard->records.size();
  }
  return n;
}

std::vector<std::string> DeviceRegistry::device_ids() const {
  std::vector<std::string> ids;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [id, record] : shard->records) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void DeviceRegistry::save(std::ostream& out) const {
  // Snapshot (id, record) pairs shard by shard, then write sorted so the
  // byte stream is independent of hash order.
  std::vector<std::pair<std::string,
                        std::shared_ptr<const core::EnrollmentRecord>>>
      entries;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& entry : shard->records) entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  out.write(kRegistryMagic, sizeof(kRegistryMagic));
  const std::uint64_t count = entries.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [id, record] : entries) {
    const std::uint64_t len = id.size();
    out.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out.write(id.data(), static_cast<std::streamsize>(id.size()));
    core::save_record(out, *record);
  }
  if (!out) throw core::SerializationError("DeviceRegistry: write failed");
}

DeviceRegistry DeviceRegistry::load_registry(std::istream& in,
                                             std::size_t shards) {
  char magic[sizeof(kRegistryMagic)] = {};
  in.read(magic, sizeof(magic));
  if (!in || !std::equal(magic, magic + sizeof(magic), kRegistryMagic)) {
    throw core::SerializationError("DeviceRegistry: bad magic");
  }
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count > (1ULL << 32)) {
    throw core::SerializationError("DeviceRegistry: bad entry count");
  }
  DeviceRegistry registry(shards);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t len = 0;
    in.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (!in || len > (1ULL << 16)) {
      throw core::SerializationError("DeviceRegistry: bad id length");
    }
    std::string id(len, '\0');
    in.read(id.data(), static_cast<std::streamsize>(len));
    if (!in) throw core::SerializationError("DeviceRegistry: truncated id");
    registry.store(id, core::load_record(in));
  }
  return registry;
}

void DeviceRegistry::save_file(const std::string& path) const {
  // Atomic snapshot: write to a sibling temp file, fsync it, then rename
  // over the target and fsync the directory.  A crash (or any failure)
  // mid-save can only ever lose the temp file — the previous snapshot at
  // `path` stays intact and loadable — and the temp file's bytes are
  // durable before the rename can be, so a reader never sees a
  // named-but-truncated file after power loss.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw core::SerializationError("cannot open " + tmp);
    save(out);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw core::SerializationError("write failed: " + tmp);
    }
  }
  support::fsync_path(tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw core::SerializationError("cannot rename " + tmp + " -> " + path);
  }
  support::fsync_parent_dir(path);
}

DeviceRegistry DeviceRegistry::load_registry_file(const std::string& path,
                                                  std::size_t shards) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw core::SerializationError("cannot open " + path);
  return load_registry(in, shards);
}

}  // namespace pufatt::service
