#include "service/metrics.hpp"

#include <cstdio>

#include "service/emulator_cache.hpp"

namespace pufatt::service {

const char* to_string(JobOutcome outcome) {
  switch (outcome) {
    case JobOutcome::kAccepted: return "accepted";
    case JobOutcome::kRejected: return "rejected";
    case JobOutcome::kInconclusive: return "inconclusive";
    case JobOutcome::kUnknownDevice: return "unknown device";
  }
  return "?";
}

double LatencyHistogram::upper_edge_us(std::size_t bucket) {
  return scale().upper_edge(bucket);
}

std::size_t LatencyHistogram::bucket_for(double latency_us) {
  return scale().bucket_for(latency_us);
}

std::uint64_t LatencyHistogram::total() const {
  std::uint64_t n = 0;
  for (const auto c : counts) n += c;
  return n;
}

void ServiceMetrics::record_outcome(JobOutcome outcome, double latency_us) {
  outcomes_[static_cast<std::size_t>(outcome)].fetch_add(1, relaxed);
  if (outcome != JobOutcome::kUnknownDevice) {
    latency_[static_cast<std::size_t>(outcome)]
            [LatencyHistogram::bucket_for(latency_us)]
                .fetch_add(1, relaxed);
  }
}

void ServiceMetrics::observe_queue_depth(std::size_t depth) {
  std::uint64_t seen = queue_depth_hwm_.load(relaxed);
  while (depth > seen &&
         !queue_depth_hwm_.compare_exchange_weak(seen, depth, relaxed)) {
  }
}

MetricsSnapshot ServiceMetrics::snapshot() const {
  MetricsSnapshot snap;
  snap.submitted = submitted_.load(relaxed);
  snap.rejected_busy = rejected_busy_.load(relaxed);
  snap.accepted = outcomes_[0].load(relaxed);
  snap.rejected = outcomes_[1].load(relaxed);
  snap.inconclusive = outcomes_[2].load(relaxed);
  snap.unknown_device = outcomes_[3].load(relaxed);
  snap.queue_depth_hwm = queue_depth_hwm_.load(relaxed);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
      snap.latency[c].counts[b] = latency_[c][b].load(relaxed);
    }
  }
  return snap;
}

std::string MetricsSnapshot::format() const {
  char line[160];
  std::string out;
  std::snprintf(line, sizeof(line),
                "submitted %llu | busy-rejected %llu | queue hwm %llu\n",
                static_cast<unsigned long long>(submitted),
                static_cast<unsigned long long>(rejected_busy),
                static_cast<unsigned long long>(queue_depth_hwm));
  out += line;
  std::snprintf(line, sizeof(line),
                "accepted %llu | rejected %llu | inconclusive %llu | "
                "unknown %llu\n",
                static_cast<unsigned long long>(accepted),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(inconclusive),
                static_cast<unsigned long long>(unknown_device));
  out += line;
  static const char* kClasses[3] = {"accepted", "rejected", "inconclusive"};
  for (std::size_t c = 0; c < 3; ++c) {
    if (latency[c].total() == 0) continue;
    std::snprintf(line, sizeof(line), "latency[%s]:", kClasses[c]);
    out += line;
    for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
      if (latency[c].counts[b] == 0) continue;
      const double edge = LatencyHistogram::upper_edge_us(b);
      if (b + 1 < LatencyHistogram::kBuckets) {
        std::snprintf(line, sizeof(line), " <%.0fms:%llu", edge / 1000.0,
                      static_cast<unsigned long long>(latency[c].counts[b]));
      } else {
        std::snprintf(line, sizeof(line), " rest:%llu",
                      static_cast<unsigned long long>(latency[c].counts[b]));
      }
      out += line;
    }
    out += '\n';
  }
  return out;
}

void publish_metrics(const MetricsSnapshot& snap, const CacheCounters& cache,
                     obs::MetricRegistry& out) {
  out.counter("service.submitted").add(snap.submitted);
  out.counter("service.rejected_busy").add(snap.rejected_busy);
  out.counter("service.accepted").add(snap.accepted);
  out.counter("service.rejected").add(snap.rejected);
  out.counter("service.inconclusive").add(snap.inconclusive);
  out.counter("service.unknown_device").add(snap.unknown_device);
  out.gauge("service.queue_depth_hwm")
      .set(static_cast<double>(snap.queue_depth_hwm));
  static const char* kClasses[3] = {"accepted", "rejected", "inconclusive"};
  for (std::size_t c = 0; c < 3; ++c) {
    auto& hist = out.histogram(
        std::string("service.latency_us.") + kClasses[c],
        LatencyHistogram::scale());
    for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
      if (snap.latency[c].counts[b] > 0) {
        hist.add_bucket(b, snap.latency[c].counts[b]);
      }
    }
  }
  out.counter("service.cache.hits").add(cache.hits);
  out.counter("service.cache.misses").add(cache.misses);
  out.counter("service.cache.evictions").add(cache.evictions);
  out.counter("service.cache.discarded").add(cache.discarded);
}

}  // namespace pufatt::service
