#include "cpu/isa.hpp"

#include <stdexcept>

namespace pufatt::cpu {

namespace {

enum class Format { kR, kI, kMem, kB, kJ, kNone, kRdOnly };

Format format_of(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kSll:
    case Opcode::kSrl:
    case Opcode::kSra:
    case Opcode::kMul:
    case Opcode::kSlt:
    case Opcode::kSltu:
      return Format::kR;
    case Opcode::kAddi:
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
    case Opcode::kSlli:
    case Opcode::kSrli:
    case Opcode::kSrai:
    case Opcode::kSlti:
    case Opcode::kLui:
    case Opcode::kJalr:
      return Format::kI;
    case Opcode::kLw:
    case Opcode::kSw:
      return Format::kMem;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
      return Format::kB;
    case Opcode::kJal:
      return Format::kJ;
    case Opcode::kHalt:
    case Opcode::kPstart:
      return Format::kNone;
    case Opcode::kPend:
    case Opcode::kHread:
    case Opcode::kRdcyc:
    case Opcode::kRdcych:
      return Format::kRdOnly;
  }
  throw std::invalid_argument("format_of: unknown opcode");
}

bool valid_opcode(std::uint8_t raw) {
  switch (static_cast<Opcode>(raw)) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kAnd: case Opcode::kOr:
    case Opcode::kXor: case Opcode::kSll: case Opcode::kSrl: case Opcode::kSra:
    case Opcode::kMul: case Opcode::kSlt: case Opcode::kSltu:
    case Opcode::kAddi: case Opcode::kAndi: case Opcode::kOri:
    case Opcode::kXori: case Opcode::kSlli: case Opcode::kSrli:
    case Opcode::kSrai: case Opcode::kSlti: case Opcode::kLui:
    case Opcode::kLw: case Opcode::kSw:
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt: case Opcode::kBge:
    case Opcode::kBltu: case Opcode::kBgeu: case Opcode::kJal:
    case Opcode::kJalr: case Opcode::kHalt:
    case Opcode::kPstart: case Opcode::kPend: case Opcode::kHread:
    case Opcode::kRdcyc: case Opcode::kRdcych:
      return true;
  }
  return false;
}

void check_reg(std::uint8_t r) {
  if (r > 15) throw std::invalid_argument("register out of range");
}

}  // namespace

std::uint32_t encode(const Instruction& inst) {
  check_reg(inst.rd);
  check_reg(inst.rs1);
  check_reg(inst.rs2);
  const auto op = static_cast<std::uint32_t>(inst.op) << 24;
  switch (format_of(inst.op)) {
    case Format::kR:
      return op | (inst.rd << 20) | (inst.rs1 << 16) | (inst.rs2 << 12);
    case Format::kI:
    case Format::kMem: {
      if (inst.imm < -32768 || inst.imm > 65535) {
        throw std::invalid_argument("imm16 out of range");
      }
      const auto imm = static_cast<std::uint32_t>(inst.imm) & 0xFFFFu;
      if (inst.op == Opcode::kSw) {
        // sw stores rs2; rd field carries rs2 for encoding symmetry.
        return op | (inst.rs2 << 20) | (inst.rs1 << 16) | imm;
      }
      return op | (inst.rd << 20) | (inst.rs1 << 16) | imm;
    }
    case Format::kB: {
      if (inst.imm < -2048 || inst.imm > 2047) {
        throw std::invalid_argument("branch offset out of range");
      }
      return op | (inst.rs1 << 20) | (inst.rs2 << 16) |
             (static_cast<std::uint32_t>(inst.imm) & 0xFFFu);
    }
    case Format::kJ: {
      if (inst.imm < -(1 << 19) || inst.imm >= (1 << 19)) {
        throw std::invalid_argument("jump offset out of range");
      }
      return op | (inst.rd << 20) |
             (static_cast<std::uint32_t>(inst.imm) & 0xFFFFFu);
    }
    case Format::kNone:
      return op;
    case Format::kRdOnly:
      return op | (inst.rd << 20);
  }
  throw std::invalid_argument("encode: unknown format");
}

Instruction decode(std::uint32_t word) {
  const auto raw_op = static_cast<std::uint8_t>(word >> 24);
  if (!valid_opcode(raw_op)) {
    throw std::invalid_argument("decode: unknown opcode " +
                                std::to_string(raw_op));
  }
  Instruction inst;
  inst.op = static_cast<Opcode>(raw_op);
  switch (format_of(inst.op)) {
    case Format::kR:
      inst.rd = (word >> 20) & 0xF;
      inst.rs1 = (word >> 16) & 0xF;
      inst.rs2 = (word >> 12) & 0xF;
      break;
    case Format::kI:
    case Format::kMem: {
      inst.rs1 = (word >> 16) & 0xF;
      // Logical immediates and lui are zero-extended (MIPS convention);
      // arithmetic/memory immediates are sign-extended.
      const bool zero_extend =
          inst.op == Opcode::kAndi || inst.op == Opcode::kOri ||
          inst.op == Opcode::kXori || inst.op == Opcode::kLui;
      const auto imm =
          zero_extend ? static_cast<std::int32_t>(word & 0xFFFF)
                      : static_cast<std::int32_t>(
                            static_cast<std::int16_t>(word & 0xFFFF));
      inst.imm = imm;
      if (inst.op == Opcode::kSw) {
        inst.rs2 = (word >> 20) & 0xF;
      } else {
        inst.rd = (word >> 20) & 0xF;
      }
      break;
    }
    case Format::kB: {
      inst.rs1 = (word >> 20) & 0xF;
      inst.rs2 = (word >> 16) & 0xF;
      std::int32_t imm = static_cast<std::int32_t>(word & 0xFFF);
      if (imm & 0x800) imm -= 0x1000;  // sign-extend 12 bits
      inst.imm = imm;
      break;
    }
    case Format::kJ: {
      inst.rd = (word >> 20) & 0xF;
      std::int32_t imm = static_cast<std::int32_t>(word & 0xFFFFF);
      if (imm & 0x80000) imm -= 0x100000;  // sign-extend 20 bits
      inst.imm = imm;
      break;
    }
    case Format::kNone:
      break;
    case Format::kRdOnly:
      inst.rd = (word >> 20) & 0xF;
      break;
  }
  return inst;
}

std::string mnemonic(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kSll: return "sll";
    case Opcode::kSrl: return "srl";
    case Opcode::kSra: return "sra";
    case Opcode::kMul: return "mul";
    case Opcode::kSlt: return "slt";
    case Opcode::kSltu: return "sltu";
    case Opcode::kAddi: return "addi";
    case Opcode::kAndi: return "andi";
    case Opcode::kOri: return "ori";
    case Opcode::kXori: return "xori";
    case Opcode::kSlli: return "slli";
    case Opcode::kSrli: return "srli";
    case Opcode::kSrai: return "srai";
    case Opcode::kSlti: return "slti";
    case Opcode::kLui: return "lui";
    case Opcode::kLw: return "lw";
    case Opcode::kSw: return "sw";
    case Opcode::kBeq: return "beq";
    case Opcode::kBne: return "bne";
    case Opcode::kBlt: return "blt";
    case Opcode::kBge: return "bge";
    case Opcode::kBltu: return "bltu";
    case Opcode::kBgeu: return "bgeu";
    case Opcode::kJal: return "jal";
    case Opcode::kJalr: return "jalr";
    case Opcode::kHalt: return "halt";
    case Opcode::kPstart: return "pstart";
    case Opcode::kPend: return "pend";
    case Opcode::kHread: return "hread";
    case Opcode::kRdcyc: return "rdcyc";
    case Opcode::kRdcych: return "rdcych";
  }
  return "?";
}

unsigned cycle_cost(Opcode op) {
  switch (op) {
    case Opcode::kMul:
      return 3;
    case Opcode::kLw:
    case Opcode::kSw:
      return 2;  // memory access stage is the critical path [paper ref 25]
    case Opcode::kJal:
    case Opcode::kJalr:
      return 2;
    case Opcode::kPend:
      return 40;  // serialized syndrome + obfuscation readout
    case Opcode::kAdd:
      // Same 1-cycle cost in both modes: the PUF race happens inside the
      // existing ALU stage — the paper's "no performance impact" claim.
      return 1;
    default:
      return 1;
  }
}

}  // namespace pufatt::cpu
