// Two-pass assembler for PR32.
//
// Syntax (one instruction or directive per line, ';' or '#' comments):
//   label:   add   r1, r2, r3
//            addi  r1, r1, -5
//            lui   r4, 0x1234
//            lw    r2, 8(r3)
//            sw    r2, 0(r3)
//            beq   r1, r0, done      ; label or numeric word offset
//            jal   r15, subroutine
//            jalr  r0, r15, 0
//            pstart
//            pend  r5
//            hread r6
//            rdcyc r7
//            halt
//            .word 0xdeadbeef        ; raw data word
//
// Branch/jal label operands resolve to pc-relative word offsets.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace pufatt::cpu {

/// Error with the offending line number and text.
class AssemblyError : public std::runtime_error {
 public:
  AssemblyError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

struct AssemblyResult {
  std::vector<std::uint32_t> words;             ///< program image
  std::map<std::string, std::uint32_t> labels;  ///< label -> word address
};

/// Assembles a program; throws AssemblyError on any syntax problem.
AssemblyResult assemble(const std::string& source);

}  // namespace pufatt::cpu
