// PR32: a minimal 32-bit RISC ISA for the simulated prover device, extended
// with the paper's PUF instructions (Section 2, "Architectural Support"):
//
//   pstart          switch the ALUs into PUF mode
//   add (PUF mode)  race the operands through both ALUs, latch the raw
//                   response into internal registers (not architecturally
//                   visible — the paper's requirement that raw responses
//                   cannot be read by software)
//   pend rd         run syndrome generation + obfuscation over the latched
//                   responses, write z to rd, queue helper words, and
//                   return to normal mode
//   hread rd        pop one helper word from the helper-data queue
//
// 16 general registers (r0 hardwired to zero), word-addressed memory,
// fixed 32-bit encodings (program words live in attested memory, so the
// encoding is part of the system, not just a simulator detail).
#pragma once

#include <cstdint>
#include <string>

namespace pufatt::cpu {

enum class Opcode : std::uint8_t {
  // R-type: op rd, rs1, rs2
  kAdd = 0x01,
  kSub = 0x02,
  kAnd = 0x03,
  kOr = 0x04,
  kXor = 0x05,
  kSll = 0x06,
  kSrl = 0x07,
  kSra = 0x08,
  kMul = 0x09,
  kSlt = 0x0A,
  kSltu = 0x0B,
  // I-type: op rd, rs1, imm16
  kAddi = 0x10,
  kAndi = 0x11,
  kOri = 0x12,
  kXori = 0x13,
  kSlli = 0x14,
  kSrli = 0x15,
  kSrai = 0x16,
  kSlti = 0x17,
  kLui = 0x18,  // rd = imm16 << 16
  // Memory: lw rd, imm16(rs1) / sw rs2, imm16(rs1)
  kLw = 0x20,
  kSw = 0x21,
  // Control: branches are B-type (op rs1, rs2, imm12 word offset)
  kBeq = 0x30,
  kBne = 0x31,
  kBlt = 0x32,
  kBge = 0x33,
  kBltu = 0x34,
  kBgeu = 0x35,
  kJal = 0x36,   // J-type: op rd, imm20 (word offset)
  kJalr = 0x37,  // I-type: rd = pc+1; pc = (rs1 + imm)
  kHalt = 0x3F,
  // PUF extension
  kPstart = 0x40,
  kPend = 0x41,   // rd
  kHread = 0x42,  // rd
  // CSR
  kRdcyc = 0x50,   // rd = low 32 bits of cycle counter
  kRdcych = 0x51,  // rd = high 32 bits
};

/// Decoded instruction fields (not all meaningful for every opcode).
struct Instruction {
  Opcode op = Opcode::kHalt;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;
};

/// Encodes an instruction to its 32-bit memory representation.
/// Throws std::invalid_argument for out-of-range fields.
std::uint32_t encode(const Instruction& inst);

/// Decodes a 32-bit word; throws std::invalid_argument on unknown opcodes.
Instruction decode(std::uint32_t word);

/// Mnemonic of an opcode (for disassembly and error messages).
std::string mnemonic(Opcode op);

/// Cycle cost of an instruction class on the in-order PR32 core.
/// Branch costs exclude the taken penalty (see kTakenBranchPenalty).
unsigned cycle_cost(Opcode op);

/// Extra cycles when a branch/jump is taken (pipeline refill).
inline constexpr unsigned kTakenBranchPenalty = 1;

}  // namespace pufatt::cpu
