#include "cpu/disassembler.hpp"

#include <sstream>

#include "cpu/isa.hpp"

namespace pufatt::cpu {

namespace {

std::string reg(unsigned r) { return "r" + std::to_string(r); }

}  // namespace

std::string disassemble(std::uint32_t word) {
  Instruction inst;
  try {
    inst = decode(word);
  } catch (const std::invalid_argument&) {
    std::ostringstream out;
    out << ".word 0x" << std::hex << word;
    return out.str();
  }
  std::ostringstream out;
  out << mnemonic(inst.op);
  switch (inst.op) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kAnd:
    case Opcode::kOr: case Opcode::kXor: case Opcode::kSll:
    case Opcode::kSrl: case Opcode::kSra: case Opcode::kMul:
    case Opcode::kSlt: case Opcode::kSltu:
      out << " " << reg(inst.rd) << ", " << reg(inst.rs1) << ", "
          << reg(inst.rs2);
      break;
    case Opcode::kAddi: case Opcode::kAndi: case Opcode::kOri:
    case Opcode::kXori: case Opcode::kSlli: case Opcode::kSrli:
    case Opcode::kSrai: case Opcode::kSlti: case Opcode::kJalr:
      out << " " << reg(inst.rd) << ", " << reg(inst.rs1) << ", " << inst.imm;
      break;
    case Opcode::kLui:
      out << " " << reg(inst.rd) << ", " << inst.imm;
      break;
    case Opcode::kLw:
      out << " " << reg(inst.rd) << ", " << inst.imm << "(" << reg(inst.rs1)
          << ")";
      break;
    case Opcode::kSw:
      out << " " << reg(inst.rs2) << ", " << inst.imm << "(" << reg(inst.rs1)
          << ")";
      break;
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu:
      out << " " << reg(inst.rs1) << ", " << reg(inst.rs2) << ", " << inst.imm;
      break;
    case Opcode::kJal:
      out << " " << reg(inst.rd) << ", " << inst.imm;
      break;
    case Opcode::kHalt:
    case Opcode::kPstart:
      break;
    case Opcode::kPend: case Opcode::kHread:
    case Opcode::kRdcyc: case Opcode::kRdcych:
      out << " " << reg(inst.rd);
      break;
  }
  return out.str();
}

std::string disassemble_program(const std::vector<std::uint32_t>& words) {
  std::ostringstream out;
  for (std::size_t addr = 0; addr < words.size(); ++addr) {
    out << "  " << disassemble(words[addr]) << "    ; " << addr << "\n";
  }
  return out.str();
}

}  // namespace pufatt::cpu
