#include "cpu/machine.hpp"

#include <array>

namespace pufatt::cpu {

Machine::Machine(std::size_t mem_words) : memory_(mem_words, 0) {}

void Machine::load(const std::vector<std::uint32_t>& words,
                   std::uint32_t base) {
  if (base + words.size() > memory_.size()) {
    throw MachineError("load: program does not fit in memory");
  }
  for (std::size_t i = 0; i < words.size(); ++i) {
    memory_[base + i] = words[i];
  }
}

void Machine::set_clock_mhz(double mhz) {
  if (mhz <= 0.0) throw MachineError("clock frequency must be positive");
  clock_mhz_ = mhz;
}

std::uint32_t Machine::reg(unsigned index) const {
  if (index > 15) throw MachineError("register index out of range");
  return regs_[index];
}

void Machine::set_reg(unsigned index, std::uint32_t value) {
  if (index > 15) throw MachineError("register index out of range");
  if (index != 0) regs_[index] = value;
}

std::uint32_t Machine::mem(std::uint32_t addr) const {
  if (addr >= memory_.size()) throw MachineError("memory read out of range");
  return memory_[addr];
}

void Machine::set_mem(std::uint32_t addr, std::uint32_t value) {
  if (addr >= memory_.size()) throw MachineError("memory write out of range");
  memory_[addr] = value;
}

void Machine::reset() {
  regs_.fill(0);
  pc_ = 0;
  cycles_ = 0;
  puf_mode_ = false;
  halted_ = false;
  helper_fifo_.clear();
}

RunResult Machine::run(std::uint64_t max_cycles) {
  const std::uint64_t limit = cycles_ + max_cycles;
  halted_ = false;
  while (!halted_ && cycles_ < limit) {
    if (pc_ >= memory_.size()) {
      throw MachineError("pc out of memory at " + std::to_string(pc_));
    }
    Instruction inst;
    try {
      inst = decode(memory_[pc_]);
    } catch (const std::invalid_argument& e) {
      throw MachineError(std::string("decode fault at pc ") +
                         std::to_string(pc_) + ": " + e.what());
    }
    exec(inst);
  }
  return RunResult{cycles_, halted_};
}

void Machine::exec(const Instruction& inst) {
  cycles_ += cycle_cost(inst.op);
  const std::uint32_t a = regs_[inst.rs1];
  const std::uint32_t b = regs_[inst.rs2];
  const auto sa = static_cast<std::int32_t>(a);
  std::uint32_t next_pc = pc_ + 1;

  auto write = [&](std::uint32_t value) {
    if (inst.rd != 0) regs_[inst.rd] = value;
  };
  auto branch = [&](bool taken) {
    if (taken) {
      next_pc = pc_ + static_cast<std::uint32_t>(inst.imm);
      cycles_ += kTakenBranchPenalty;
    }
  };

  switch (inst.op) {
    case Opcode::kAdd:
      if (puf_mode_) {
        if (puf_ == nullptr) throw MachineError("PUF add without PUF block");
        puf_->feed((static_cast<std::uint64_t>(a) << 32) | b, cycle_ps());
      }
      // The ALU result is architecturally visible in both modes.
      write(a + b);
      break;
    case Opcode::kSub: write(a - b); break;
    case Opcode::kAnd: write(a & b); break;
    case Opcode::kOr: write(a | b); break;
    case Opcode::kXor: write(a ^ b); break;
    case Opcode::kSll: write(a << (b & 31)); break;
    case Opcode::kSrl: write(a >> (b & 31)); break;
    case Opcode::kSra:
      write(static_cast<std::uint32_t>(sa >> (b & 31)));
      break;
    case Opcode::kMul: write(a * b); break;
    case Opcode::kSlt:
      write(sa < static_cast<std::int32_t>(b) ? 1 : 0);
      break;
    case Opcode::kSltu: write(a < b ? 1 : 0); break;

    case Opcode::kAddi: write(a + static_cast<std::uint32_t>(inst.imm)); break;
    case Opcode::kAndi: write(a & static_cast<std::uint32_t>(inst.imm)); break;
    case Opcode::kOri: write(a | static_cast<std::uint32_t>(inst.imm)); break;
    case Opcode::kXori: write(a ^ static_cast<std::uint32_t>(inst.imm)); break;
    case Opcode::kSlli: write(a << (inst.imm & 31)); break;
    case Opcode::kSrli: write(a >> (inst.imm & 31)); break;
    case Opcode::kSrai:
      write(static_cast<std::uint32_t>(sa >> (inst.imm & 31)));
      break;
    case Opcode::kSlti:
      write(sa < inst.imm ? 1 : 0);
      break;
    case Opcode::kLui:
      write(static_cast<std::uint32_t>(inst.imm) << 16);
      break;

    case Opcode::kLw: {
      const std::uint32_t addr = a + static_cast<std::uint32_t>(inst.imm);
      write(mem(addr));
      break;
    }
    case Opcode::kSw: {
      const std::uint32_t addr = a + static_cast<std::uint32_t>(inst.imm);
      set_mem(addr, b);
      break;
    }

    case Opcode::kBeq: branch(a == b); break;
    case Opcode::kBne: branch(a != b); break;
    case Opcode::kBlt: branch(sa < static_cast<std::int32_t>(b)); break;
    case Opcode::kBge: branch(sa >= static_cast<std::int32_t>(b)); break;
    case Opcode::kBltu: branch(a < b); break;
    case Opcode::kBgeu: branch(a >= b); break;

    case Opcode::kJal:
      write(pc_ + 1);
      next_pc = pc_ + static_cast<std::uint32_t>(inst.imm);
      break;
    case Opcode::kJalr:
      write(pc_ + 1);
      next_pc = a + static_cast<std::uint32_t>(inst.imm);
      break;

    case Opcode::kHalt:
      halted_ = true;
      break;

    case Opcode::kPstart:
      if (puf_ == nullptr) throw MachineError("pstart without PUF block");
      puf_->start();
      puf_mode_ = true;
      break;
    case Opcode::kPend: {
      if (puf_ == nullptr) throw MachineError("pend without PUF block");
      if (!puf_mode_) throw MachineError("pend outside PUF mode");
      std::vector<std::uint32_t> helpers;
      const std::uint32_t z = puf_->finish(helpers);
      for (const auto h : helpers) helper_fifo_.push_back(h);
      write(z);
      puf_mode_ = false;
      break;
    }
    case Opcode::kHread:
      if (helper_fifo_.empty()) throw MachineError("hread on empty FIFO");
      write(helper_fifo_.front());
      helper_fifo_.pop_front();
      break;

    case Opcode::kRdcyc:
      write(static_cast<std::uint32_t>(cycles_));
      break;
    case Opcode::kRdcych:
      write(static_cast<std::uint32_t>(cycles_ >> 32));
      break;
  }
  pc_ = next_pc;
}

}  // namespace pufatt::cpu
