// PR32 disassembler: turns program words back into assembler-compatible
// text.  Round-trips with cpu::assemble (tests enforce it), which makes
// attested memory images auditable — a verifier operator can inspect
// exactly the program the checksum covers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pufatt::cpu {

/// Disassembles one instruction word.  Branch/jump offsets are rendered as
/// numeric word offsets (re-assemblable).  Words that do not decode are
/// rendered as `.word 0x...`.
std::string disassemble(std::uint32_t word);

/// Disassembles a program, one line per word, with `addr:` comments.
std::string disassemble_program(const std::vector<std::uint32_t>& words);

}  // namespace pufatt::cpu
