#include "cpu/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

#include "cpu/isa.hpp"

namespace pufatt::cpu {

namespace {

struct Line {
  std::size_t number = 0;
  std::optional<std::string> label;
  std::string mnemonic;
  std::vector<std::string> operands;
};

std::string strip(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool valid_label(const std::string& s) {
  if (s.empty() || (!std::isalpha(static_cast<unsigned char>(s[0])) &&
                    s[0] != '_' && s[0] != '.')) {
    return false;
  }
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isalnum(c) || c == '_' || c == '.';
  });
}

std::optional<Line> parse_line(std::size_t number, std::string text) {
  // Strip comments.
  for (const char marker : {';', '#'}) {
    const auto pos = text.find(marker);
    if (pos != std::string::npos) text = text.substr(0, pos);
  }
  text = strip(text);
  if (text.empty()) return std::nullopt;

  Line line;
  line.number = number;

  const auto colon = text.find(':');
  if (colon != std::string::npos) {
    const std::string label = strip(text.substr(0, colon));
    if (!valid_label(label)) {
      throw AssemblyError(number, "bad label '" + label + "'");
    }
    line.label = label;
    text = strip(text.substr(colon + 1));
    if (text.empty()) return line;
  }

  const auto space = text.find_first_of(" \t");
  line.mnemonic = lower(space == std::string::npos ? text : text.substr(0, space));
  if (space != std::string::npos) {
    std::string rest = text.substr(space + 1);
    std::string token;
    std::istringstream stream(rest);
    while (std::getline(stream, token, ',')) {
      token = strip(token);
      if (token.empty()) {
        throw AssemblyError(number, "empty operand");
      }
      line.operands.push_back(token);
    }
  }
  return line;
}

std::uint8_t parse_register(const Line& line, const std::string& token) {
  const std::string t = lower(token);
  if (t.size() < 2 || t[0] != 'r') {
    throw AssemblyError(line.number, "expected register, got '" + token + "'");
  }
  int value = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(t[i]))) {
      throw AssemblyError(line.number, "bad register '" + token + "'");
    }
    value = value * 10 + (t[i] - '0');
  }
  if (value > 15) {
    throw AssemblyError(line.number, "register out of range '" + token + "'");
  }
  return static_cast<std::uint8_t>(value);
}

std::int64_t parse_number(const Line& line, const std::string& token) {
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(token, &used, 0);
    if (used != token.size()) {
      throw AssemblyError(line.number, "bad number '" + token + "'");
    }
    return value;
  } catch (const AssemblyError&) {
    throw;
  } catch (const std::exception&) {
    throw AssemblyError(line.number, "bad number '" + token + "'");
  }
}

/// Resolves a branch/jump target: either a label (pc-relative offset) or a
/// literal numeric offset.
std::int32_t resolve_target(const Line& line, const std::string& token,
                            const std::map<std::string, std::uint32_t>& labels,
                            std::uint32_t pc) {
  if (!token.empty() &&
      (std::isdigit(static_cast<unsigned char>(token[0])) || token[0] == '-' ||
       token[0] == '+')) {
    return static_cast<std::int32_t>(parse_number(line, token));
  }
  const auto it = labels.find(token);
  if (it == labels.end()) {
    throw AssemblyError(line.number, "unknown label '" + token + "'");
  }
  return static_cast<std::int32_t>(it->second) - static_cast<std::int32_t>(pc);
}

/// "imm(rs1)" memory operand.
std::pair<std::int32_t, std::uint8_t> parse_mem_operand(
    const Line& line, const std::string& token) {
  const auto open = token.find('(');
  const auto close = token.find(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open || close != token.size() - 1) {
    throw AssemblyError(line.number, "expected imm(rN), got '" + token + "'");
  }
  const std::string imm_part = strip(token.substr(0, open));
  const std::string reg_part = strip(token.substr(open + 1, close - open - 1));
  const std::int64_t imm = imm_part.empty() ? 0 : parse_number(line, imm_part);
  return {static_cast<std::int32_t>(imm), parse_register(line, reg_part)};
}

const std::map<std::string, Opcode>& mnemonic_table() {
  static const std::map<std::string, Opcode> table = [] {
    std::map<std::string, Opcode> t;
    for (int raw = 0; raw < 256; ++raw) {
      try {
        const Instruction probe = decode(static_cast<std::uint32_t>(raw) << 24);
        t[mnemonic(probe.op)] = probe.op;
      } catch (const std::invalid_argument&) {
        // not an opcode
      }
    }
    return t;
  }();
  return table;
}

void expect_operands(const Line& line, std::size_t count) {
  if (line.operands.size() != count) {
    throw AssemblyError(line.number,
                        line.mnemonic + " expects " + std::to_string(count) +
                            " operand(s), got " +
                            std::to_string(line.operands.size()));
  }
}

std::uint32_t encode_line(const Line& line,
                          const std::map<std::string, std::uint32_t>& labels,
                          std::uint32_t pc) {
  const auto& table = mnemonic_table();
  const auto it = table.find(line.mnemonic);
  if (it == table.end()) {
    throw AssemblyError(line.number, "unknown mnemonic '" + line.mnemonic + "'");
  }
  const Opcode op = it->second;
  Instruction inst;
  inst.op = op;
  try {
    switch (op) {
      case Opcode::kAdd: case Opcode::kSub: case Opcode::kAnd:
      case Opcode::kOr: case Opcode::kXor: case Opcode::kSll:
      case Opcode::kSrl: case Opcode::kSra: case Opcode::kMul:
      case Opcode::kSlt: case Opcode::kSltu:
        expect_operands(line, 3);
        inst.rd = parse_register(line, line.operands[0]);
        inst.rs1 = parse_register(line, line.operands[1]);
        inst.rs2 = parse_register(line, line.operands[2]);
        break;
      case Opcode::kAddi: case Opcode::kAndi: case Opcode::kOri:
      case Opcode::kXori: case Opcode::kSlli: case Opcode::kSrli:
      case Opcode::kSrai: case Opcode::kSlti:
        expect_operands(line, 3);
        inst.rd = parse_register(line, line.operands[0]);
        inst.rs1 = parse_register(line, line.operands[1]);
        inst.imm = static_cast<std::int32_t>(parse_number(line, line.operands[2]));
        break;
      case Opcode::kJalr:
        expect_operands(line, 3);
        inst.rd = parse_register(line, line.operands[0]);
        inst.rs1 = parse_register(line, line.operands[1]);
        inst.imm = static_cast<std::int32_t>(parse_number(line, line.operands[2]));
        break;
      case Opcode::kLui:
        expect_operands(line, 2);
        inst.rd = parse_register(line, line.operands[0]);
        inst.imm = static_cast<std::int32_t>(parse_number(line, line.operands[1]));
        break;
      case Opcode::kLw: {
        expect_operands(line, 2);
        inst.rd = parse_register(line, line.operands[0]);
        const auto [imm, rs1] = parse_mem_operand(line, line.operands[1]);
        inst.imm = imm;
        inst.rs1 = rs1;
        break;
      }
      case Opcode::kSw: {
        expect_operands(line, 2);
        inst.rs2 = parse_register(line, line.operands[0]);
        const auto [imm, rs1] = parse_mem_operand(line, line.operands[1]);
        inst.imm = imm;
        inst.rs1 = rs1;
        break;
      }
      case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
      case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu:
        expect_operands(line, 3);
        inst.rs1 = parse_register(line, line.operands[0]);
        inst.rs2 = parse_register(line, line.operands[1]);
        inst.imm = resolve_target(line, line.operands[2], labels, pc);
        break;
      case Opcode::kJal:
        expect_operands(line, 2);
        inst.rd = parse_register(line, line.operands[0]);
        inst.imm = resolve_target(line, line.operands[1], labels, pc);
        break;
      case Opcode::kHalt:
      case Opcode::kPstart:
        expect_operands(line, 0);
        break;
      case Opcode::kPend: case Opcode::kHread:
      case Opcode::kRdcyc: case Opcode::kRdcych:
        expect_operands(line, 1);
        inst.rd = parse_register(line, line.operands[0]);
        break;
    }
    return encode(inst);
  } catch (const std::invalid_argument& e) {
    throw AssemblyError(line.number, e.what());
  }
}

}  // namespace

AssemblyResult assemble(const std::string& source) {
  std::vector<Line> lines;
  {
    std::istringstream stream(source);
    std::string text;
    std::size_t number = 0;
    while (std::getline(stream, text)) {
      ++number;
      if (auto line = parse_line(number, text)) lines.push_back(*line);
    }
  }

  // Pass 1: assign addresses to labels.
  AssemblyResult result;
  std::uint32_t pc = 0;
  for (const auto& line : lines) {
    if (line.label) {
      if (result.labels.count(*line.label) != 0) {
        throw AssemblyError(line.number, "duplicate label '" + *line.label + "'");
      }
      result.labels[*line.label] = pc;
    }
    if (!line.mnemonic.empty()) ++pc;
  }

  // Pass 2: encode.
  pc = 0;
  for (const auto& line : lines) {
    if (line.mnemonic.empty()) continue;
    if (line.mnemonic == ".word") {
      expect_operands(line, 1);
      result.words.push_back(static_cast<std::uint32_t>(
          parse_number(line, line.operands[0]) & 0xFFFFFFFF));
    } else {
      result.words.push_back(encode_line(line, result.labels, pc));
    }
    ++pc;
  }
  return result;
}

}  // namespace pufatt::cpu
