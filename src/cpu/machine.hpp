// PR32 machine simulator with cycle-accurate cost model, clock
// configuration and the PUF port.
//
// The clock matters twice: it converts the cycle count into the wall time
// the verifier measures against the bound delta, and it feeds the PUF's
// capture deadline — overclocking shortens the cycle below T_ALU + T_set
// and corrupts PUF responses (paper Section 4.2, "Overclocking Attack
// Resiliency").
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <vector>

#include "cpu/isa.hpp"

namespace pufatt::cpu {

/// Runtime fault (bad address, decode failure, FIFO underflow...).
class MachineError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Hardware interface between the core and the ALU-PUF block.  The adapter
/// that binds a PufDevice to this port lives in src/core (the CPU layer
/// stays independent of the PUF implementation).
class PufPort {
 public:
  virtual ~PufPort() = default;

  /// pstart: reset the response accumulator, enter PUF mode.
  virtual void start() = 0;

  /// add (in PUF mode): race one challenge; the raw response stays inside
  /// the block.  `challenge` = (rs1_value << 32) | rs2_value.
  /// `cycle_ps` is the current clock period (capture deadline).
  virtual void feed(std::uint64_t challenge, double cycle_ps) = 0;

  /// pend: post-process the accumulated responses; returns z and appends
  /// the helper words (one 32-bit word per raw response, syndrome in the
  /// low bits) to `helper_words`.
  virtual std::uint32_t finish(std::vector<std::uint32_t>& helper_words) = 0;
};

struct RunResult {
  std::uint64_t cycles = 0;
  bool halted = false;  ///< false = max_cycles exhausted
};

class Machine {
 public:
  explicit Machine(std::size_t mem_words = 1 << 16);

  /// Copies `words` into memory at word address `base`.
  void load(const std::vector<std::uint32_t>& words, std::uint32_t base = 0);

  /// Attaches the PUF block (may be null: PUF instructions then trap).
  void attach_puf(PufPort* port) { puf_ = port; }

  /// Clock frequency in MHz; default 400 MHz (a safe base clock for the
  /// simulated 32-bit ALU PUF, whose worst-case settle is ~1.6 ns).
  void set_clock_mhz(double mhz);
  double clock_mhz() const { return clock_mhz_; }
  double cycle_ps() const { return 1e6 / clock_mhz_; }

  std::uint32_t reg(unsigned index) const;
  void set_reg(unsigned index, std::uint32_t value);
  std::uint32_t mem(std::uint32_t addr) const;
  void set_mem(std::uint32_t addr, std::uint32_t value);
  std::size_t mem_words() const { return memory_.size(); }

  std::uint32_t pc() const { return pc_; }
  void set_pc(std::uint32_t pc) { pc_ = pc; }
  std::uint64_t cycles() const { return cycles_; }

  /// Wall-clock duration of `cycles` at the configured clock, microseconds.
  double wall_time_us(std::uint64_t cycle_count) const {
    return static_cast<double>(cycle_count) / clock_mhz_;
  }

  /// Executes until halt or until `max_cycles` additional cycles elapse.
  RunResult run(std::uint64_t max_cycles = 100'000'000);

  /// Resets registers, pc, cycle counter and PUF mode (memory preserved).
  void reset();

 private:
  void exec(const Instruction& inst);

  std::vector<std::uint32_t> memory_;
  std::array<std::uint32_t, 16> regs_{};
  std::uint32_t pc_ = 0;
  std::uint64_t cycles_ = 0;
  double clock_mhz_ = 400.0;
  bool puf_mode_ = false;
  bool halted_ = false;
  PufPort* puf_ = nullptr;
  std::deque<std::uint32_t> helper_fifo_;
};

}  // namespace pufatt::cpu
