#include "alupuf/obfuscation.hpp"

#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/rng.hpp"

namespace pufatt::alupuf {

using support::BitVector;

ObfuscationNetwork::ObfuscationNetwork(std::size_t response_bits,
                                       Pairing pairing)
    : two_n_(response_bits), pairing_(pairing) {
  if (response_bits == 0 || response_bits % 2 != 0) {
    throw std::invalid_argument(
        "ObfuscationNetwork: response width must be even (2n)");
  }
  const std::size_t n = two_n_ / 2;
  pairs_.reserve(n);
  if (pairing_ == Pairing::kPaper) {
    for (std::size_t i = 0; i < n; ++i) pairs_.emplace_back(i, i + n);
  } else {
    // Fixed pseudorandom matching (same on device and verifier): a
    // Fisher-Yates shuffle from a compile-time constant seed.
    std::vector<std::size_t> perm(two_n_);
    std::iota(perm.begin(), perm.end(), 0);
    support::Xoshiro256pp rng(0x0BF5'CA7E0ULL + two_n_);
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.uniform_u64(i)]);
    }
    for (std::size_t k = 0; k < n; ++k) {
      pairs_.emplace_back(perm[2 * k], perm[2 * k + 1]);
    }
  }
}

BitVector ObfuscationNetwork::fold(const BitVector& response) const {
  if (response.size() != two_n_) {
    throw std::invalid_argument("ObfuscationNetwork::fold: wrong width");
  }
  BitVector folded(two_n_ / 2);
  for (std::size_t k = 0; k < pairs_.size(); ++k) {
    folded.set(k,
               response.get(pairs_[k].first) != response.get(pairs_[k].second));
  }
  return folded;
}

namespace {

/// Left-rotation of a BitVector (word width arbitrary).
BitVector rotl_bits(const BitVector& v, std::size_t k) {
  BitVector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out.set((i + k) % v.size(), v.get(i));
  }
  return out;
}

}  // namespace

BitVector ObfuscationNetwork::obfuscate(
    const std::array<BitVector, kResponsesPerOutput>& responses) const {
  BitVector z(two_n_);
  for (std::size_t j = 0; j < 4; ++j) {
    // b_j = fold(y_{2j}) || fold(y_{2j+1}), low half first.
    BitVector b = fold(responses[2 * j]).concat(fold(responses[2 * j + 1]));
    if (pairing_ == Pairing::kHardened) {
      // Rotate each word by a distinct amount before the phase-2 XOR so
      // identical per-response error patterns cannot cancel pairwise (the
      // second half of the degeneracy fix; see the Pairing doc comment).
      b = rotl_bits(b, 5 * j);
    }
    z ^= b;
  }
  return z;
}

}  // namespace pufatt::alupuf
