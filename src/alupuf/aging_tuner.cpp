#include "alupuf/aging_tuner.hpp"

#include <cmath>
#include <vector>

namespace pufatt::alupuf {

namespace {

/// Mean signed margin per bit over a probe set (noise-free deltas).
std::vector<double> mean_margins(const AluPuf& puf, std::size_t probes,
                                 support::Xoshiro256pp& rng) {
  std::vector<double> mean(puf.response_bits(), 0.0);
  const auto env = variation::Environment::nominal();
  for (std::size_t p = 0; p < probes; ++p) {
    const auto challenge =
        support::BitVector::random(puf.challenge_bits(), rng);
    const auto deltas = puf.race_deltas(challenge, env);
    for (std::size_t i = 0; i < deltas.size(); ++i) mean[i] += deltas[i];
  }
  for (auto& m : mean) m /= static_cast<double>(probes);
  return mean;
}

double mean_abs_margin(const AluPuf& puf, std::size_t probes,
                       support::Xoshiro256pp& rng) {
  double total = 0.0;
  const auto env = variation::Environment::nominal();
  for (std::size_t p = 0; p < probes; ++p) {
    const auto challenge =
        support::BitVector::random(puf.challenge_bits(), rng);
    for (const auto d : puf.race_deltas(challenge, env)) {
      total += std::abs(d);
    }
  }
  return total / (static_cast<double>(probes) *
                  static_cast<double>(puf.response_bits()));
}

double flip_rate(const AluPuf& puf, std::size_t probes,
                 support::Xoshiro256pp& rng) {
  std::size_t flips = 0;
  const auto env = variation::Environment::nominal();
  for (std::size_t p = 0; p < probes; ++p) {
    const auto challenge =
        support::BitVector::random(puf.challenge_bits(), rng);
    flips += puf.eval(challenge, env, rng)
                 .hamming_distance(puf.eval(challenge, env, rng));
  }
  return static_cast<double>(flips) /
         (static_cast<double>(probes) *
          static_cast<double>(puf.response_bits()));
}

}  // namespace

AgingTuneReport tune_by_aging(AluPuf& puf, const AgingTuneParams& params,
                              support::Xoshiro256pp& rng) {
  AgingTuneReport report;
  report.mean_abs_margin_before =
      mean_abs_margin(puf, params.probe_challenges, rng);
  report.flip_rate_before = flip_rate(puf, params.probe_challenges, rng);

  for (std::size_t round = 0; round < params.rounds; ++round) {
    const auto margins = mean_margins(puf, params.probe_challenges, rng);
    bool any = false;
    for (std::size_t bit = 0; bit < margins.size(); ++bit) {
      if (std::abs(margins[bit]) >= params.margin_threshold_ps) continue;
      // Widen the margin in its current direction: delta = t1 - t0, so a
      // positive margin grows by slowing ALU1's stage, a negative one by
      // slowing ALU0's.  (A zero margin gets pushed positive: stress ALU1.)
      const bool stress_alu1 = margins[bit] >= 0.0;
      puf.apply_stage_stress(bit, stress_alu1, params.stress_duty,
                             params.stress_hours, params.aging);
      ++report.stress_actions;
      any = true;
    }
    if (!any) break;
  }

  report.mean_abs_margin_after =
      mean_abs_margin(puf, params.probe_challenges, rng);
  report.flip_rate_after = flip_rate(puf, params.probe_challenges, rng);
  return report;
}

}  // namespace pufatt::alupuf
