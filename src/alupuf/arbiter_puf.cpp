#include "alupuf/arbiter_puf.hpp"

#include <algorithm>
#include <stdexcept>

namespace pufatt::alupuf {

using support::BitVector;

ArbiterPuf::ArbiterPuf(const ArbiterPufParams& params, std::uint64_t chip_seed)
    : params_(params), weights_(params.stages + 1) {
  if (params.stages == 0) {
    throw std::invalid_argument("ArbiterPuf: need at least one stage");
  }
  support::Xoshiro256pp rng(chip_seed);
  for (auto& w : weights_) w = rng.gaussian(0.0, params.stage_sigma);
}

std::vector<double> ArbiterPuf::features(const BitVector& challenge) {
  // phi[i] = prod_{j=i}^{n-1} (1 - 2 c_j); phi[n] = 1 (bias).
  std::vector<double> phi(challenge.size() + 1);
  double prod = 1.0;
  phi[challenge.size()] = 1.0;
  for (std::size_t i = challenge.size(); i-- > 0;) {
    prod *= challenge.get(i) ? -1.0 : 1.0;
    phi[i] = prod;
  }
  return phi;
}

double ArbiterPuf::delta(const BitVector& challenge) const {
  if (challenge.size() != params_.stages) {
    throw std::invalid_argument("ArbiterPuf: wrong challenge length");
  }
  const auto phi = features(challenge);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) acc += weights_[i] * phi[i];
  return acc;
}

bool ArbiterPuf::eval_ideal(const BitVector& challenge) const {
  return delta(challenge) > 0.0;
}

bool ArbiterPuf::eval(const BitVector& challenge,
                      support::Xoshiro256pp& rng) const {
  return delta(challenge) + rng.gaussian(0.0, params_.noise_sigma) > 0.0;
}

FeedForwardArbiterPuf::FeedForwardArbiterPuf(const FeedForwardParams& params,
                                             std::uint64_t chip_seed)
    : params_(params),
      straight_top_(params.stages),
      straight_bot_(params.stages),
      crossed_top_(params.stages),
      crossed_bot_(params.stages) {
  if (params.stages == 0) {
    throw std::invalid_argument("FeedForwardArbiterPuf: need >= 1 stage");
  }
  for (const auto& loop : params.loops) {
    if (loop.from >= loop.to || loop.to >= params.stages) {
      throw std::invalid_argument("FeedForwardArbiterPuf: bad loop indices");
    }
  }
  std::sort(params_.loops.begin(), params_.loops.end(),
            [](const auto& a, const auto& b) { return a.from < b.from; });
  support::Xoshiro256pp rng(chip_seed);
  for (std::size_t i = 0; i < params.stages; ++i) {
    straight_top_[i] = rng.gaussian(10.0, params.stage_sigma);
    straight_bot_[i] = rng.gaussian(10.0, params.stage_sigma);
    crossed_top_[i] = rng.gaussian(10.0, params.stage_sigma);
    crossed_bot_[i] = rng.gaussian(10.0, params.stage_sigma);
  }
}

bool FeedForwardArbiterPuf::eval_impl(const BitVector& challenge,
                                      support::Xoshiro256pp* rng) const {
  if (challenge.size() != params_.stages) {
    throw std::invalid_argument("FeedForwardArbiterPuf: wrong challenge length");
  }
  // Track arrival times of the two racing edges through the switch chain.
  double top = 0.0;
  double bot = 0.0;
  // Effective select bits (feed-forward loops may override).
  std::vector<bool> select(params_.stages);
  for (std::size_t i = 0; i < params_.stages; ++i) select[i] = challenge.get(i);

  std::size_t next_loop = 0;
  const auto& loops = params_.loops;  // sorted by `from` in the constructor
  for (std::size_t i = 0; i < params_.stages; ++i) {
    if (select[i]) {
      const double new_top = bot + crossed_top_[i];
      const double new_bot = top + crossed_bot_[i];
      top = new_top;
      bot = new_bot;
    } else {
      top += straight_top_[i];
      bot += straight_bot_[i];
    }
    while (next_loop < loops.size() && loops[next_loop].from == i) {
      // Intermediate arbiter samples the race so far and drives a later
      // stage's select input.
      double gap = bot - top;
      if (rng != nullptr) gap += rng->gaussian(0.0, params_.noise_sigma);
      select[loops[next_loop].to] = gap > 0.0;
      ++next_loop;
    }
  }
  double gap = bot - top;
  if (rng != nullptr) gap += rng->gaussian(0.0, params_.noise_sigma);
  return gap > 0.0;
}

bool FeedForwardArbiterPuf::eval_ideal(const BitVector& challenge) const {
  return eval_impl(challenge, nullptr);
}

bool FeedForwardArbiterPuf::eval(const BitVector& challenge,
                                 support::Xoshiro256pp& rng) const {
  return eval_impl(challenge, &rng);
}

XorArbiterPuf::XorArbiterPuf(std::size_t k, const ArbiterPufParams& params,
                             std::uint64_t chip_seed) {
  if (k == 0) throw std::invalid_argument("XorArbiterPuf: k must be >= 1");
  chains_.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    chains_.emplace_back(params,
                         support::SplitMix64::mix(chip_seed + 0x9E37 * i));
  }
}

bool XorArbiterPuf::eval_ideal(const support::BitVector& challenge) const {
  bool out = false;
  for (const auto& chain : chains_) out = out != chain.eval_ideal(challenge);
  return out;
}

bool XorArbiterPuf::eval(const support::BitVector& challenge,
                         support::Xoshiro256pp& rng) const {
  bool out = false;
  for (const auto& chain : chains_) out = out != chain.eval(challenge, rng);
  return out;
}

}  // namespace pufatt::alupuf
