#include "alupuf/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pufatt::alupuf {

using support::BitVector;

std::vector<Challenge> ChallengeExpander::expand(std::uint64_t x,
                                                 std::size_t width) {
  std::vector<Challenge> out;
  out.reserve(ObfuscationNetwork::kResponsesPerOutput);
  support::SplitMix64 prg(x);
  for (std::size_t r = 0; r < ObfuscationNetwork::kResponsesPerOutput; ++r) {
    Challenge c(2 * width);
    for (std::size_t base = 0; base < 2 * width; base += 64) {
      const std::uint64_t word = prg.next();
      const std::size_t chunk = std::min<std::size_t>(64, 2 * width - base);
      for (std::size_t i = 0; i < chunk; ++i) {
        c.set(base + i, (word >> i) & 1ULL);
      }
    }
    out.push_back(std::move(c));
  }
  return out;
}

PufDevice::PufDevice(const AluPufConfig& config, std::uint64_t chip_seed,
                     const ecc::BinaryCode& code)
    : puf_(config, chip_seed),
      helper_(code),
      obfuscation_(config.width, ObfuscationNetwork::Pairing::kHardened) {
  if (code.n() != config.width) {
    throw std::invalid_argument(
        "PufDevice: code length must equal the PUF response width");
  }
}

PufOutput PufDevice::query(std::uint64_t challenge,
                           const variation::Environment& env,
                           support::Xoshiro256pp& rng,
                           const ClockConstraint* clock) const {
  const auto expanded =
      ChallengeExpander::expand(challenge, puf_.response_bits());
  std::array<Challenge, ObfuscationNetwork::kResponsesPerOutput> challenges;
  std::copy(expanded.begin(), expanded.end(), challenges.begin());
  return query_raw(challenges, env, rng, clock);
}

PufOutput PufDevice::query_raw(
    const std::array<Challenge, ObfuscationNetwork::kResponsesPerOutput>&
        challenges,
    const variation::Environment& env, support::Xoshiro256pp& rng,
    const ClockConstraint* clock) const {
  std::array<BitVector, ObfuscationNetwork::kResponsesPerOutput> responses;
  PufOutput out;
  out.helpers.reserve(responses.size());
  for (std::size_t r = 0; r < responses.size(); ++r) {
    responses[r] = puf_.eval(challenges[r], env, rng, clock);
    out.helpers.push_back(helper_.generate(responses[r]));
  }
  out.z = obfuscation_.obfuscate(responses);
  return out;
}

std::vector<PufOutput> PufDevice::query_batch(
    const std::uint64_t* challenges, std::size_t count,
    const variation::Environment& env, support::Xoshiro256pp& rng,
    const ClockConstraint* clock, AluPufBatchScratch* scratch,
    timingsim::BatchEngine engine) const {
  constexpr std::size_t kPer = ObfuscationNetwork::kResponsesPerOutput;
  std::vector<Challenge> raw;
  raw.reserve(count * kPer);
  for (std::size_t x = 0; x < count; ++x) {
    auto expanded =
        ChallengeExpander::expand(challenges[x], puf_.response_bits());
    for (auto& c : expanded) raw.push_back(std::move(c));
  }
  const auto responses =
      puf_.eval_batch(raw.data(), raw.size(), env, rng, clock, scratch, engine);
  std::vector<PufOutput> outputs;
  outputs.reserve(count);
  for (std::size_t x = 0; x < count; ++x) {
    std::array<BitVector, kPer> group;
    PufOutput out;
    out.helpers.reserve(kPer);
    for (std::size_t r = 0; r < kPer; ++r) {
      group[r] = responses[x * kPer + r];
      out.helpers.push_back(helper_.generate(group[r]));
    }
    out.z = obfuscation_.obfuscate(group);
    outputs.push_back(std::move(out));
  }
  return outputs;
}

PufEmulator::PufEmulator(std::size_t width, variation::DelayTable model,
                         const ecc::BinaryCode& code,
                         netlist::AluPufLayout layout)
    : emulator_(width, std::move(model), layout),
      helper_(code),
      obfuscation_(width, ObfuscationNetwork::Pairing::kHardened) {
  if (code.n() != width) {
    throw std::invalid_argument(
        "PufEmulator: code length must equal the PUF response width");
  }
}

std::optional<BitVector> PufEmulator::emulate(
    std::uint64_t challenge, const std::vector<BitVector>& helpers,
    const variation::Environment& env) const {
  const auto expanded =
      ChallengeExpander::expand(challenge, emulator_.response_bits());
  std::array<Challenge, ObfuscationNetwork::kResponsesPerOutput> challenges;
  std::copy(expanded.begin(), expanded.end(), challenges.begin());
  return emulate_raw(challenges, helpers, env);
}

std::optional<BitVector> PufEmulator::emulate_raw(
    const std::array<Challenge, ObfuscationNetwork::kResponsesPerOutput>&
        challenges,
    const std::vector<BitVector>& helpers,
    const variation::Environment& env) const {
  if (helpers.size() != ObfuscationNetwork::kResponsesPerOutput) {
    return std::nullopt;
  }
  std::array<BitVector, ObfuscationNetwork::kResponsesPerOutput> responses;
  std::size_t call_distance = 0;
  double weighted_distance = 0.0;
  // All 8 soft emulations in one batched pass over the timing engine —
  // bit-identical to per-challenge eval_soft (the emulator is noise-free),
  // and the dominant cost of a verifier job.
  const std::size_t width = emulator_.response_bits();
  std::vector<double> soft;
  emulator_.eval_soft_batch(challenges.data(), challenges.size(), soft, env);
  std::vector<double> reference_llr(width);
  for (std::size_t r = 0; r < responses.size(); ++r) {
    // Soft-decision reconstruction: the emulation's race margins tell the
    // decoder which bits the physical arbiters resolve unreliably.
    std::copy(soft.begin() + r * width, soft.begin() + (r + 1) * width,
              reference_llr.begin());
    const auto reconstructed =
        helper_.reproduce_soft(reference_llr, helpers[r]);
    if (!reconstructed) return std::nullopt;
    // Distance budgets against the reference (sign of the margins): plain
    // Hamming plus the reliability-weighted likelihood-ratio statistic.
    for (std::size_t i = 0; i < reference_llr.size(); ++i) {
      const bool reference_bit = reference_llr[i] < 0.0;
      if (reconstructed->get(i) != reference_bit) {
        ++call_distance;
        weighted_distance += std::abs(reference_llr[i]);
      }
    }
    responses[r] = *reconstructed;
  }
  last_call_stats_ = CallStats{call_distance, weighted_distance};
  if (call_distance > max_call_distance_ ||
      weighted_distance > max_weighted_distance_ps_) {
    return std::nullopt;
  }
  return obfuscation_.obfuscate(responses);
}

}  // namespace pufatt::alupuf
