// The paper's two-phase XOR obfuscation network (Section 2, "Response
// Obfuscation"), functional model.
//
// Phase 1: fold each 2n-bit response y_r to n bits, a_r[i] = y_r[i] XOR
// y_r[i+n]; concatenate pairs into four 2n-bit words b_j = a_{2j}||a_{2j+1}.
// Phase 2: z = b_0 XOR b_1 XOR b_2 XOR b_3.
//
// One obfuscated output therefore consumes kResponsesPerOutput = 8 raw PUF
// responses, which is why a single logical PUF() call in the attestation
// protocol triggers eight physical ALU races.
#pragma once

#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "support/bitvec.hpp"

namespace pufatt::alupuf {

class ObfuscationNetwork {
 public:
  static constexpr std::size_t kResponsesPerOutput = 8;

  /// Phase-1 bit pairing.
  ///
  /// kPaper pairs bit i with bit i+n, exactly as the paper specifies.
  /// Combined with RM(1,5) helper data this pairing is *degenerate*: every
  /// RM(1,5) codeword c satisfies c[i] XOR c[i+n] = const, and every
  /// helper-data reconstruction error is a codeword, so reconstruction
  /// errors fold to all-zero/all-one blocks that frequently cancel in
  /// phase 2 — a verification blind spot we found during reproduction
  /// (DESIGN.md section 6, EXPERIMENTS.md).
  ///
  /// kHardened pairs bits under a fixed pseudorandom matching, so a
  /// codeword error folds to a nonconstant pattern and any reconstruction
  /// error scrambles z.  The attestation pipeline defaults to kHardened;
  /// the figure-reproduction benches use kPaper.
  enum class Pairing { kPaper, kHardened };

  /// `response_bits` (= 2n) must be even.
  explicit ObfuscationNetwork(std::size_t response_bits,
                              Pairing pairing = Pairing::kPaper);

  std::size_t response_bits() const { return two_n_; }
  std::size_t output_bits() const { return two_n_; }
  Pairing pairing() const { return pairing_; }

  /// Phase-1 fold of one raw response: 2n bits -> n bits.
  support::BitVector fold(const support::BitVector& response) const;

  /// Full two-phase obfuscation of 8 raw responses into one 2n-bit output.
  support::BitVector obfuscate(
      const std::array<support::BitVector, kResponsesPerOutput>& responses)
      const;

 private:
  std::size_t two_n_;
  Pairing pairing_;
  /// pair_[k] = {p, q}: fold output bit k = y[p] XOR y[q].
  std::vector<std::pair<std::size_t, std::size_t>> pairs_;
};

}  // namespace pufatt::alupuf
