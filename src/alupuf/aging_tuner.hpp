// Aging-based response tuning (Kong & Koushanfar, IEEE TETC 2013 — the
// paper's reference [13], by the same first author).
//
// Marginal response bits — those whose two raced paths settle within the
// arbiter's metastability window for many challenges — dominate the
// intra-chip Hamming distance.  Directed NBTI stress slows the currently
// *slower* path further, widening the margin in its existing direction and
// freezing the bit's value without changing it.  Tuning happens once,
// post-fabrication, before enrollment (the delay table H is extracted
// afterwards, so the verifier sees the tuned chip).
#pragma once

#include <cstddef>

#include "alupuf/alu_puf.hpp"
#include "variation/aging.hpp"

namespace pufatt::alupuf {

struct AgingTuneParams {
  /// Bits whose mean |margin| over the probe set is below this get tuned.
  double margin_threshold_ps = 5.0;
  /// Stress applied per tuning action (continuous burn-in).
  double stress_hours = 1000.0;
  double stress_duty = 1.0;
  /// Challenges probed per measurement pass.
  std::size_t probe_challenges = 200;
  /// Measure -> stress rounds (stressing a stage shifts downstream bits,
  /// so tuning iterates).
  std::size_t rounds = 4;
  variation::AgingParams aging;
};

struct AgingTuneReport {
  std::size_t stress_actions = 0;      ///< stage stresses applied
  double mean_abs_margin_before = 0.0; ///< ps, averaged over bits/challenges
  double mean_abs_margin_after = 0.0;
  double flip_rate_before = 0.0;       ///< per-bit repeat-eval flip rate
  double flip_rate_after = 0.0;
};

/// Runs the measure-and-stress loop on a physical PUF.  Deterministic given
/// the RNG state.  Returns the before/after stability summary.
AgingTuneReport tune_by_aging(AluPuf& puf, const AgingTuneParams& params,
                              support::Xoshiro256pp& rng);

}  // namespace pufatt::alupuf
