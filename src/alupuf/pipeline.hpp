// The complete PUF() pipeline of the attestation protocol:
//
//   64-bit protocol challenge x
//     -> ChallengeExpander -> 8 raw adder challenges
//     -> AluPuf (physical race, noisy)           -> 8 raw responses y'_r
//     -> SyndromeHelper (per response)           -> 8 helper words h_r
//     -> ObfuscationNetwork                      -> output z
//
// PufDevice is the prover side; PufEmulator is the verifier side, which
// reconstructs each exact y'_r from its emulated reference and h_r, then
// applies the identical obfuscation.  PUF() in the paper's protocol figure
// corresponds to PufDevice::query / PufEmulator::emulate.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "alupuf/alu_puf.hpp"
#include "alupuf/obfuscation.hpp"
#include "ecc/helper_data.hpp"
#include "ecc/linear_code.hpp"

namespace pufatt::alupuf {

/// Deterministically expands a 64-bit protocol challenge into the 8 raw
/// adder challenges one obfuscated output consumes.  Both protocol sides
/// run this expansion, so only 64 bits travel in the protocol.
class ChallengeExpander {
 public:
  static std::vector<Challenge> expand(std::uint64_t x, std::size_t width);
};

/// Result of one PUF() query on the prover.
struct PufOutput {
  support::BitVector z;  ///< obfuscated response (width bits)
  /// Helper data per raw response; rides along with the attestation
  /// response so the verifier can reconstruct the prover's noisy readings.
  std::vector<support::BitVector> helpers;
};

/// Prover-side PUF(): physical ALU PUF + syndrome generator + obfuscation.
class PufDevice {
 public:
  /// `code.n()` must equal `config.width` (e.g. RM(1,5) for width 32).
  /// `code` must outlive the device.
  PufDevice(const AluPufConfig& config, std::uint64_t chip_seed,
            const ecc::BinaryCode& code);

  /// One PUF() call: 8 physical evaluations at `env`.
  PufOutput query(std::uint64_t challenge, const variation::Environment& env,
                  support::Xoshiro256pp& rng,
                  const ClockConstraint* clock = nullptr) const;

  /// Same, but with the 8 raw adder challenges supplied directly — the path
  /// the CPU's PUF port uses (each PUF-mode `add` carries one challenge in
  /// its register operands).
  PufOutput query_raw(
      const std::array<Challenge, ObfuscationNetwork::kResponsesPerOutput>&
          challenges,
      const variation::Environment& env, support::Xoshiro256pp& rng,
      const ClockConstraint* clock = nullptr) const;

  /// Batched PUF(): `count` protocol challenges in one pass over the SoA
  /// timing engine (count*8 physical evaluations).  Follows the
  /// AluPuf::eval_batch RNG contract — one `rng.next()` consumed for the
  /// whole batch, every lane independent of batch split and thread count.
  /// `scratch` as in AluPuf::eval_batch (pass one per worker thread);
  /// `engine` selects the timing kernel (responses are engine-independent).
  std::vector<PufOutput> query_batch(
      const std::uint64_t* challenges, std::size_t count,
      const variation::Environment& env, support::Xoshiro256pp& rng,
      const ClockConstraint* clock = nullptr,
      AluPufBatchScratch* scratch = nullptr,
      timingsim::BatchEngine engine = timingsim::BatchEngine::kAuto) const;

  /// See AluPuf::prewarm — required before multi-threaded use at `env`.
  void prewarm(const variation::Environment& env) const { puf_.prewarm(env); }

  /// Manufacturer enrollment: the delay table H handed to the verifier.
  variation::DelayTable export_model() const { return puf_.export_model(); }

  std::size_t output_bits() const { return obfuscation_.output_bits(); }
  std::size_t helper_bits() const { return helper_.helper_bits(); }
  const AluPuf& raw_puf() const { return puf_; }

 private:
  AluPuf puf_;
  ecc::SyndromeHelper helper_;
  ObfuscationNetwork obfuscation_;
};

/// Verifier-side PUF.Emulate(): delay-table emulation + helper-data
/// reconstruction + obfuscation.
///
/// Besides recomputing z, the emulator enforces a *reconstruction distance
/// budget*: the total Hamming distance between the reconstructed responses
/// and the emulated references over one PUF() call must stay within the
/// honest noise envelope.  This is the paper's "the attack will be detected
/// by ... wrong responses from the ALU PUF": a reverse fuzzy extractor
/// faithfully reconstructs whatever the prover measured, so corrupted
/// (overclocked) or foreign (impostor) responses must be rejected by
/// distance, not by decoding failure.
class PufEmulator {
 public:
  PufEmulator(std::size_t width, variation::DelayTable model,
              const ecc::BinaryCode& code,
              netlist::AluPufLayout layout = {});

  /// Maximum summed HD(reconstructed, reference) per PUF() call (8
  /// responses).  Default 48 sits well above the honest mean (~22 for the
  /// calibrated 32-bit PUF, max ~33 observed) while impostor transcripts
  /// (~64) land beyond it.
  void set_max_call_distance(std::size_t bits) { max_call_distance_ = bits; }
  std::size_t max_call_distance() const { return max_call_distance_; }

  /// Maximum *reliability-weighted* disagreement per PUF() call: the sum of
  /// the emulated race margins (ps) over all bits where the reconstruction
  /// disagrees with the reference.  An honest prover only disagrees on
  /// low-margin (metastable) bits, so this sum stays tiny; corrupted or
  /// foreign responses — and ML-decoding errors that snap onto a nearby
  /// codeword — disagree on high-margin bits and blow the budget.  This is
  /// a per-bit likelihood-ratio test and the protocol's main response
  /// authenticity check (see DESIGN.md).  Default 60 ps = roughly honest
  /// mean + 6 sigma for the calibrated model.
  void set_max_weighted_distance(double ps) { max_weighted_distance_ps_ = ps; }
  double max_weighted_distance() const { return max_weighted_distance_ps_; }

  /// Recomputes z for a challenge given the prover's helper data; nullopt
  /// when reconstruction fails (reference and measurement too far apart —
  /// an honest-prover false negative or a forged transcript).
  std::optional<support::BitVector> emulate(
      std::uint64_t challenge,
      const std::vector<support::BitVector>& helpers,
      const variation::Environment& env =
          variation::Environment::nominal()) const;

  /// Raw-challenge variant matching PufDevice::query_raw.
  std::optional<support::BitVector> emulate_raw(
      const std::array<Challenge, ObfuscationNetwork::kResponsesPerOutput>&
          challenges,
      const std::vector<support::BitVector>& helpers,
      const variation::Environment& env =
          variation::Environment::nominal()) const;

  /// Distance statistics of the most recent emulate/emulate_raw call —
  /// verifiers aggregate these across a whole attestation transcript (the
  /// summed statistic separates marginal overclocking far better than any
  /// per-call threshold).
  struct CallStats {
    std::size_t distance = 0;
    double weighted_ps = 0.0;
  };
  CallStats last_call_stats() const { return last_call_stats_; }

  std::size_t output_bits() const { return obfuscation_.output_bits(); }
  std::size_t helper_bits() const { return helper_.helper_bits(); }
  const AluPufEmulator& raw_emulator() const { return emulator_; }

 private:
  AluPufEmulator emulator_;
  ecc::SyndromeHelper helper_;
  ObfuscationNetwork obfuscation_;
  std::size_t max_call_distance_ = 48;
  double max_weighted_distance_ps_ = 60.0;
  mutable CallStats last_call_stats_{};
};

}  // namespace pufatt::alupuf
