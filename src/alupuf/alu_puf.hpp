// The ALU PUF (paper Section 2): two structurally identical ripple-carry
// adder ALUs race the same challenge; per-bit arbiters decide which ALU's
// sum bit settled first.
//
// AluPuf is the physical device: process variation, per-evaluation jitter,
// arbiter metastability and (optionally) clock-induced setup violations —
// the mechanism behind the paper's overclocking-attack resilience.
// AluPufEmulator is the verifier's PUF.Emulate(): the same race computed
// deterministically from the enrollment delay table H.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/builder.hpp"
#include "support/bitvec.hpp"
#include "support/rng.hpp"
#include "timingsim/arbiter.hpp"
#include "timingsim/timing_sim.hpp"
#include "variation/chip.hpp"

namespace pufatt::alupuf {

/// A PUF challenge: the two add operands, `2*width` bits (a then b), as in
/// the paper ("the add instruction reads the PUF challenge (operands) from
/// the registers inside the CPU").
using Challenge = support::BitVector;

/// A raw (pre-correction, pre-obfuscation) PUF response: `width` bits, one
/// per raced sum bit.
using RawResponse = support::BitVector;

struct AluPufConfig {
  std::size_t width = 32;  ///< adder width = response bits
  variation::TechnologyParams tech;
  variation::QuadTreeConfig quadtree;
  /// Noise and arbiter constants below are calibrated so the simulated
  /// 32-bit PUF reproduces the paper's reported statistics (intra-chip HD
  /// ~11.3%, metastability-dominated — see EXPERIMENTS.md).
  variation::NoiseParams noise{.delay_jitter_ratio = 0.004};
  timingsim::ArbiterParams arbiter{.meta_tau_ps = 0.85};
  netlist::AluPufLayout layout;
};

/// Clock timing constraint for the response capture registers.  When the
/// race has not produced a decision by (cycle - setup), the register
/// latches garbage — the paper's T_ALU + T_set < T_cycle condition.
struct ClockConstraint {
  double cycle_ps = 0.0;   ///< clock period
  double setup_ps = 20.0;  ///< register setup time
};

class AluPuf {
 public:
  /// Builds the dual-ALU circuit and manufactures one chip from
  /// `chip_seed` (every seed is a distinct die).
  AluPuf(const AluPufConfig& config, std::uint64_t chip_seed);

  std::size_t response_bits() const { return config_.width; }
  std::size_t challenge_bits() const { return 2 * config_.width; }

  /// One physical evaluation: evaluation noise plus arbiter metastability.
  /// If `clock` is non-null and a bit's race is undecided by the capture
  /// deadline, that bit latches 0 (setup violation -> wrong response).
  RawResponse eval(const Challenge& challenge,
                   const variation::Environment& env,
                   support::Xoshiro256pp& rng,
                   const ClockConstraint* clock = nullptr) const;

  /// Arrival-time difference (t_alu1 - t_alu0) per response bit, noise
  /// free, at `env`.  Exposed for analysis and calibration.
  std::vector<double> race_deltas(const Challenge& challenge,
                                  const variation::Environment& env) const;

  /// Worst-case settling time of any raced output at `env` (the T_ALU of
  /// the paper's overclocking condition), measured over the all-propagate
  /// challenge that maximizes the carry chain.
  double max_settle_ps(const variation::Environment& env) const;

  /// Manufacturer enrollment: exports the gate-level delay table H.
  variation::DelayTable export_model() const { return chip_.export_delay_table(); }

  /// Ambient aging of the whole die (NBTI drift in the field).
  void age_uniformly(double duty, double hours,
                     const variation::AgingParams& params);

  /// Directed stress of one full-adder stage of one ALU (the mechanism of
  /// aging-based response tuning, paper reference [13]): holding that
  /// stage's inputs under stress raises its gates' Vth, slowing it and
  /// widening the race margin of its (and downstream) bits.
  void apply_stage_stress(std::size_t bit, bool alu1, double duty,
                          double hours, const variation::AgingParams& params);

  const AluPufConfig& config() const { return config_; }
  const variation::ChipInstance& chip() const { return chip_; }
  const netlist::AluPufCircuit& circuit() const { return circuit_; }

 private:
  AluPufConfig config_;
  netlist::AluPufCircuit circuit_;
  variation::ChipInstance chip_;
  timingsim::TimingSimulator sim_;
  timingsim::Arbiter arbiter_;
  // Per-env delay cache: most experiments evaluate millions of challenges
  // at a fixed operating point.
  mutable variation::Environment cached_env_;
  mutable bool has_cache_ = false;
  mutable timingsim::DelaySet cached_nominal_;
  mutable timingsim::DelaySet scratch_delays_;
  mutable std::vector<timingsim::SignalState> scratch_states_;

  const timingsim::DelaySet& nominal_for(const variation::Environment& env) const;
  std::vector<bool> to_input_vector(const Challenge& challenge) const;
};

/// Verifier-side deterministic emulation from the enrollment model H.
class AluPufEmulator {
 public:
  AluPufEmulator(std::size_t width, variation::DelayTable model,
                 netlist::AluPufLayout layout = {});

  std::size_t response_bits() const { return width_; }

  /// Noise-free expected response at `env` (default: nominal conditions —
  /// what the verifier assumes the prover runs at).
  RawResponse eval(const Challenge& challenge,
                   const variation::Environment& env =
                       variation::Environment::nominal()) const;

  /// Soft expected response: per-bit log-likelihood values where a positive
  /// entry means "bit is 0" and the magnitude is the race margin in ps.
  /// Bits the physical arbiter resolves near-randomly (tiny margin) come
  /// out near zero, which is exactly the reliability information the
  /// soft-decision helper-data reconstruction consumes.
  std::vector<double> eval_soft(const Challenge& challenge,
                                const variation::Environment& env =
                                    variation::Environment::nominal()) const;

 private:
  void run_challenge(const Challenge& challenge,
                     const variation::Environment& env) const;

  std::size_t width_;
  netlist::AluPufCircuit circuit_;
  variation::DelayTable model_;
  timingsim::TimingSimulator sim_;
  mutable variation::Environment cached_env_;
  mutable bool has_cache_ = false;
  mutable timingsim::DelaySet cached_delays_;
  mutable std::vector<timingsim::SignalState> scratch_states_;
};

}  // namespace pufatt::alupuf
