// The ALU PUF (paper Section 2): two structurally identical ripple-carry
// adder ALUs race the same challenge; per-bit arbiters decide which ALU's
// sum bit settled first.
//
// AluPuf is the physical device: process variation, per-evaluation jitter,
// arbiter metastability and (optionally) clock-induced setup violations —
// the mechanism behind the paper's overclocking-attack resilience.
// AluPufEmulator is the verifier's PUF.Emulate(): the same race computed
// deterministically from the enrollment delay table H.
#pragma once

#include <cstdint>
#include <vector>

#include <memory>

#include "netlist/builder.hpp"
#include "support/bitvec.hpp"
#include "support/rng.hpp"
#include "timingsim/arbiter.hpp"
#include "timingsim/bitslice.hpp"
#include "timingsim/timing_sim.hpp"
#include "variation/chip.hpp"

namespace pufatt::alupuf {

/// A PUF challenge: the two add operands, `2*width` bits (a then b), as in
/// the paper ("the add instruction reads the PUF challenge (operands) from
/// the registers inside the CPU").
using Challenge = support::BitVector;

/// A raw (pre-correction, pre-obfuscation) PUF response: `width` bits, one
/// per raced sum bit.
using RawResponse = support::BitVector;

struct AluPufConfig {
  std::size_t width = 32;  ///< adder width = response bits
  variation::TechnologyParams tech;
  variation::QuadTreeConfig quadtree;
  /// Noise and arbiter constants below are calibrated so the simulated
  /// 32-bit PUF reproduces the paper's reported statistics (intra-chip HD
  /// ~11.3%, metastability-dominated — see EXPERIMENTS.md).
  variation::NoiseParams noise{.delay_jitter_ratio = 0.004};
  timingsim::ArbiterParams arbiter{.meta_tau_ps = 0.85};
  netlist::AluPufLayout layout;
};

/// Clock timing constraint for the response capture registers.  When the
/// race has not produced a decision by (cycle - setup), the register
/// latches garbage — the paper's T_ALU + T_set < T_cycle condition.
struct ClockConstraint {
  double cycle_ps = 0.0;   ///< clock period
  double setup_ps = 20.0;  ///< register setup time
};

/// Reusable per-worker scratch for AluPuf::eval_batch.  Threaded drivers
/// allocate one per worker slot; single-threaded callers may pass nullptr
/// (the PUF then uses an internal scratch, which is NOT thread-safe).
struct AluPufBatchScratch {
  timingsim::BatchState state;
  timingsim::BatchDelays delays;
  std::vector<std::uint8_t> inputs;
  std::vector<support::Xoshiro256pp> lane_rngs;
  // Bit-sliced path (BatchEngine::kBitslice / large kAuto batches).
  timingsim::BitSliceState slice;
  std::vector<std::uint64_t> input_words;
};

class AluPuf {
 public:
  /// Builds the dual-ALU circuit and manufactures one chip from
  /// `chip_seed` (every seed is a distinct die).
  AluPuf(const AluPufConfig& config, std::uint64_t chip_seed);

  std::size_t response_bits() const { return config_.width; }
  std::size_t challenge_bits() const { return 2 * config_.width; }

  /// One physical evaluation: evaluation noise plus arbiter metastability.
  /// If `clock` is non-null and a bit's race is undecided by the capture
  /// deadline, that bit latches 0 (setup violation -> wrong response).
  RawResponse eval(const Challenge& challenge,
                   const variation::Environment& env,
                   support::Xoshiro256pp& rng,
                   const ClockConstraint* clock = nullptr) const;

  /// Batched physical evaluation over the SoA engine, restricted to the
  /// arbiter cones.  Statistically equivalent to `count` scalar `eval`
  /// calls, with a documented RNG contract instead of stream-for-stream
  /// equality: the batch consumes exactly one `rng.next()` (its
  /// batch_seed), and lane x then draws ALL of its randomness from the
  /// derived generator
  ///   Xoshiro256pp(SplitMix64::mix(batch_seed + kGolden * (x + 1)))
  /// (kGolden = 0x9E3779B97F4A7C15): first one noise deviate per gate in
  /// gate order via the fast ziggurat sampler (gaussian_fast; zero-delay
  /// gates included, see ChipInstance::sample_delays_batch), then the
  /// arbiter/metastability draws bit by bit.  Lane responses are NOT
  /// stream-identical to scalar `eval` (which spends the caller's
  /// generator through the Box-Muller sampler) but follow the identical
  /// distribution, and one batch is fully reproducible from (caller rng
  /// state, challenges).  Note lane seeds depend on the lane index, so
  /// splitting a workload into batches differently yields a different
  /// (equally distributed) noise realization; deterministic drivers must
  /// keep batch boundaries fixed (see support/parallel.hpp).
  ///
  /// `engine` selects the timing kernel only.  The batch_seed draw, the
  /// delay realization and the arbiter sweep are engine-independent, and
  /// all engines compute the same settle-time doubles (the repo's
  /// exactness contract), so responses are byte-identical across engines.
  /// kAuto routes to the bit-sliced engine at >= kBitsliceMinLanes lanes
  /// and to the SoA engine below.
  std::vector<RawResponse> eval_batch(
      const Challenge* challenges, std::size_t count,
      const variation::Environment& env, support::Xoshiro256pp& rng,
      const ClockConstraint* clock = nullptr,
      AluPufBatchScratch* scratch = nullptr,
      timingsim::BatchEngine engine = timingsim::BatchEngine::kAuto) const;

  /// Warms the per-env nominal-delay cache so that subsequent const
  /// evaluations at `env` are read-only (required before sharing *this
  /// across threads — the cache itself is not synchronized).
  void prewarm(const variation::Environment& env) const { nominal_for(env); }

  /// Arrival-time difference (t_alu1 - t_alu0) per response bit, noise
  /// free, at `env`.  Exposed for analysis and calibration.
  std::vector<double> race_deltas(const Challenge& challenge,
                                  const variation::Environment& env) const;

  /// Worst-case settling time of any raced output at `env` (the T_ALU of
  /// the paper's overclocking condition), measured over the all-propagate
  /// challenge that maximizes the carry chain.
  double max_settle_ps(const variation::Environment& env) const;

  /// Manufacturer enrollment: exports the gate-level delay table H.
  variation::DelayTable export_model() const { return chip_.export_delay_table(); }

  /// Ambient aging of the whole die (NBTI drift in the field).
  void age_uniformly(double duty, double hours,
                     const variation::AgingParams& params);

  /// Directed stress of one full-adder stage of one ALU (the mechanism of
  /// aging-based response tuning, paper reference [13]): holding that
  /// stage's inputs under stress raises its gates' Vth, slowing it and
  /// widening the race margin of its (and downstream) bits.
  void apply_stage_stress(std::size_t bit, bool alu1, double duty,
                          double hours, const variation::AgingParams& params);

  const AluPufConfig& config() const { return config_; }
  const variation::ChipInstance& chip() const { return chip_; }
  const netlist::AluPufCircuit& circuit() const { return circuit_; }

 private:
  AluPufConfig config_;
  netlist::AluPufCircuit circuit_;
  variation::ChipInstance chip_;
  timingsim::TimingSimulator sim_;        ///< full netlist (analysis paths)
  timingsim::TimingSimulator batch_sim_;  ///< arbiter-cone restricted
  timingsim::BitSliceEngine slice_sim_;   ///< lane-delay mode, same cone
  timingsim::Arbiter arbiter_;
  // Per-env delay cache: most experiments evaluate millions of challenges
  // at a fixed operating point.
  mutable variation::Environment cached_env_;
  mutable bool has_cache_ = false;
  mutable timingsim::DelaySet cached_nominal_;
  mutable timingsim::DelaySet scratch_delays_;
  mutable std::vector<timingsim::SignalState> scratch_states_;
  mutable AluPufBatchScratch batch_scratch_;  ///< used when caller passes none

  const timingsim::DelaySet& nominal_for(const variation::Environment& env) const;
  void check_challenge(const Challenge& challenge) const;
};

/// Verifier-side deterministic emulation from the enrollment model H.
class AluPufEmulator {
 public:
  AluPufEmulator(std::size_t width, variation::DelayTable model,
                 netlist::AluPufLayout layout = {});

  std::size_t response_bits() const { return width_; }

  /// Noise-free expected response at `env` (default: nominal conditions —
  /// what the verifier assumes the prover runs at).
  RawResponse eval(const Challenge& challenge,
                   const variation::Environment& env =
                       variation::Environment::nominal()) const;

  /// Soft expected response: per-bit log-likelihood values where a positive
  /// entry means "bit is 0" and the magnitude is the race margin in ps.
  /// Bits the physical arbiter resolves near-randomly (tiny margin) come
  /// out near zero, which is exactly the reliability information the
  /// soft-decision helper-data reconstruction consumes.
  std::vector<double> eval_soft(const Challenge& challenge,
                                const variation::Environment& env =
                                    variation::Environment::nominal()) const;

  /// Batched deterministic emulation: bit-identical to `count` `eval`
  /// calls (the emulator is noise-free, so there is no RNG contract to
  /// negotiate — every engine computes the same doubles).  The emulator's
  /// delays are shared across lanes, so kBitslice here uses the
  /// shared-delay BitSliceEngine with its time-representation shortcuts
  /// (the fastest fleet-emulation path).
  std::vector<RawResponse> eval_batch(
      const Challenge* challenges, std::size_t count,
      const variation::Environment& env = variation::Environment::nominal(),
      timingsim::BatchEngine engine = timingsim::BatchEngine::kAuto) const;

  /// Batched soft responses: `out` is resized to count*width, challenge x's
  /// LLRs at `out[x*width .. (x+1)*width)`.  Bit-identical to eval_soft.
  void eval_soft_batch(
      const Challenge* challenges, std::size_t count, std::vector<double>& out,
      const variation::Environment& env = variation::Environment::nominal(),
      timingsim::BatchEngine engine = timingsim::BatchEngine::kAuto) const;

  /// Warms the per-env delay cache (see AluPuf::prewarm).
  void prewarm(const variation::Environment& env =
                   variation::Environment::nominal()) const {
    delays_for(env);
  }

 private:
  void run_challenge(const Challenge& challenge,
                     const variation::Environment& env) const;
  const timingsim::DelaySet& delays_for(const variation::Environment& env) const;
  /// Runs the kBatch or kBitslice kernel (kAuto resolved by lane count)
  /// into batch_state_ / slice_state_; returns the engine that ran.
  /// kScalar never reaches here — callers loop the scalar path themselves.
  timingsim::BatchEngine run_batch(const Challenge* challenges,
                                   std::size_t count,
                                   const variation::Environment& env,
                                   timingsim::BatchEngine engine) const;
  void check_batch(const Challenge* challenges, std::size_t count) const;

  std::size_t width_;
  netlist::AluPufCircuit circuit_;
  variation::DelayTable model_;
  timingsim::TimingSimulator sim_;        ///< full netlist (scalar paths)
  timingsim::TimingSimulator batch_sim_;  ///< arbiter-cone restricted
  mutable variation::Environment cached_env_;
  mutable bool has_cache_ = false;
  mutable timingsim::DelaySet cached_delays_;
  /// Shared-delay bit-sliced engine over the cached DelaySet; rebuilt with
  /// the cache (prewarm builds it too, keeping post-prewarm evaluation
  /// read-only for thread sharing).
  mutable std::unique_ptr<timingsim::BitSliceEngine> cached_slice_;
  mutable std::vector<timingsim::SignalState> scratch_states_;
  mutable timingsim::BatchState batch_state_;
  mutable std::vector<std::uint8_t> batch_inputs_;
  mutable timingsim::BitSliceState slice_state_;
  mutable std::vector<std::uint64_t> slice_words_;
};

}  // namespace pufatt::alupuf
