// Baseline delay PUFs used for the paper's comparisons:
//   * the classic Arbiter PUF (Gassend et al., CCS 2002 — paper ref [7]),
//     which the ALU PUF's construction mirrors;
//   * the Feed-Forward Arbiter PUF (Maes & Verbauwhede — paper ref [17]),
//     the design the paper benchmarks its HD numbers against
//     (38 % inter-chip, 9.8 % intra-chip).
//
// Both use the standard additive linear delay model: each stage contributes
// a challenge-dependent delay difference, and the response is the sign of
// the accumulated difference plus measurement noise.  The linear model is
// also what makes the plain Arbiter PUF learnable by logistic regression
// (Ruehrmair et al., CCS 2010 — paper ref [27]), which the ML-attack bench
// demonstrates.
#pragma once

#include <cstdint>
#include <vector>

#include "support/bitvec.hpp"
#include "support/rng.hpp"

namespace pufatt::alupuf {

struct ArbiterPufParams {
  std::size_t stages = 64;
  double stage_sigma = 1.0;   ///< per-stage delay-difference spread
  double noise_sigma = 0.05;  ///< per-evaluation additive noise (in stage units)
};

class ArbiterPuf {
 public:
  ArbiterPuf(const ArbiterPufParams& params, std::uint64_t chip_seed);

  std::size_t challenge_bits() const { return params_.stages; }

  /// Accumulated delay difference for a challenge (noise free).
  double delta(const support::BitVector& challenge) const;

  /// Noise-free response (sign of delta).
  bool eval_ideal(const support::BitVector& challenge) const;

  /// Noisy physical response.
  bool eval(const support::BitVector& challenge,
            support::Xoshiro256pp& rng) const;

  /// The parity feature map that linearizes the arbiter PUF: phi[i] =
  /// prod_{j>=i} (-1)^{c_j}, plus a constant term.  delta() is an exact
  /// linear function of these features — the handle for modeling attacks.
  static std::vector<double> features(const support::BitVector& challenge);

  const ArbiterPufParams& params() const { return params_; }

 private:
  ArbiterPufParams params_;
  /// Stage weights in the parity-feature domain (stages + 1 values).
  std::vector<double> weights_;
};

struct FeedForwardParams {
  std::size_t stages = 64;
  double stage_sigma = 1.0;
  double noise_sigma = 0.05;
  /// Feed-forward loops: the race outcome at stage `from` overrides the
  /// challenge bit at stage `to` (from < to).
  struct Loop {
    std::size_t from = 0;
    std::size_t to = 0;
  };
  std::vector<Loop> loops{{15, 47}, {31, 63}};
};

class FeedForwardArbiterPuf {
 public:
  FeedForwardArbiterPuf(const FeedForwardParams& params,
                        std::uint64_t chip_seed);

  std::size_t challenge_bits() const { return params_.stages; }

  bool eval_ideal(const support::BitVector& challenge) const;
  bool eval(const support::BitVector& challenge,
            support::Xoshiro256pp& rng) const;

  const FeedForwardParams& params() const { return params_; }

 private:
  /// Evaluates with optional per-evaluation noise injected into every
  /// intermediate arbiter decision as well as the final one.
  bool eval_impl(const support::BitVector& challenge,
                 support::Xoshiro256pp* rng) const;

  FeedForwardParams params_;
  /// Per-stage (top, bottom) segment delays for the two path polarities:
  /// stage i contributes delay_straight_[i] when c_i = 0 (paths go
  /// straight) or delay_crossed_[i] when c_i = 1 (paths cross).
  std::vector<double> straight_top_, straight_bot_;
  std::vector<double> crossed_top_, crossed_bot_;
};

/// XOR Arbiter PUF (Suh & Devadas, DAC 2007 — the paper's reference [34],
/// whose XOR trick the ALU PUF's obfuscation network adopts): k independent
/// arbiter chains evaluate the same challenge and their outputs XOR into
/// one response bit.  Modeling difficulty grows steeply with k, while
/// noise also compounds — the classic reliability/security trade-off.
class XorArbiterPuf {
 public:
  XorArbiterPuf(std::size_t k, const ArbiterPufParams& params,
                std::uint64_t chip_seed);

  std::size_t k() const { return chains_.size(); }
  std::size_t challenge_bits() const { return chains_.front().challenge_bits(); }

  bool eval_ideal(const support::BitVector& challenge) const;
  bool eval(const support::BitVector& challenge,
            support::Xoshiro256pp& rng) const;

 private:
  std::vector<ArbiterPuf> chains_;
};

}  // namespace pufatt::alupuf
