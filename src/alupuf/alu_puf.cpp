#include "alupuf/alu_puf.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hpp"

namespace pufatt::alupuf {

namespace {

bool same_env(const variation::Environment& a, const variation::Environment& b) {
  return a.vdd_scale == b.vdd_scale && a.temperature_c == b.temperature_c;
}

std::vector<netlist::GateId> raced_gates(const netlist::AluPufCircuit& circuit) {
  std::vector<netlist::GateId> observed;
  observed.reserve(circuit.race0.size() + circuit.race1.size());
  observed.insert(observed.end(), circuit.race0.begin(), circuit.race0.end());
  observed.insert(observed.end(), circuit.race1.begin(), circuit.race1.end());
  return observed;
}

/// The eval_batch per-lane generator derivation (see alu_puf.hpp).
constexpr std::uint64_t kLaneGolden = 0x9E3779B97F4A7C15ULL;

support::Xoshiro256pp lane_rng(std::uint64_t batch_seed, std::size_t lane) {
  return support::Xoshiro256pp(
      support::SplitMix64::mix(batch_seed + kLaneGolden * (lane + 1)));
}

}  // namespace

AluPuf::AluPuf(const AluPufConfig& config, std::uint64_t chip_seed)
    : config_(config),
      circuit_(netlist::build_alu_puf_circuit(config.width, config.layout)),
      chip_(circuit_.net, config.tech, config.quadtree, chip_seed),
      sim_(circuit_.net),
      batch_sim_(circuit_.net, raced_gates(circuit_)),
      slice_sim_(batch_sim_.compiled()),
      arbiter_(config.arbiter) {}

void AluPuf::check_challenge(const Challenge& challenge) const {
  if (challenge.size() != challenge_bits()) {
    throw std::invalid_argument("AluPuf: challenge must be 2*width bits");
  }
}

const timingsim::DelaySet& AluPuf::nominal_for(
    const variation::Environment& env) const {
  if (!has_cache_ || !same_env(env, cached_env_)) {
    chip_.nominal_delays(env, cached_nominal_);
    cached_env_ = env;
    has_cache_ = true;
  }
  return cached_nominal_;
}

RawResponse AluPuf::eval(const Challenge& challenge,
                         const variation::Environment& env,
                         support::Xoshiro256pp& rng,
                         const ClockConstraint* clock) const {
  check_challenge(challenge);
  const auto& nominal = nominal_for(env);
  chip_.sample_delays(nominal, config_.noise, rng, scratch_delays_);
  sim_.run(challenge, scratch_delays_, scratch_states_);

  RawResponse response(config_.width);
  const double deadline =
      clock != nullptr ? clock->cycle_ps - clock->setup_ps : 0.0;
  for (std::size_t i = 0; i < config_.width; ++i) {
    const double t0 = scratch_states_[circuit_.race0[i]].time_ps;
    const double t1 = scratch_states_[circuit_.race1[i]].time_ps;
    if (clock != nullptr && std::min(t0, t1) > deadline) {
      // Neither transition reached the arbiter before the capture edge:
      // the register samples a signal mid-flight and resolves metastably —
      // an unbiased coin, wrong half the time regardless of the expected
      // bit.  This is the setup-violation failure mode that defeats
      // overclocking attacks (paper Section 4.2).
      response.set(i, rng.bernoulli(0.5));
      continue;
    }
    response.set(i, arbiter_.sample(t1 - t0, rng));
  }
  return response;
}

std::vector<RawResponse> AluPuf::eval_batch(const Challenge* challenges,
                                            std::size_t count,
                                            const variation::Environment& env,
                                            support::Xoshiro256pp& rng,
                                            const ClockConstraint* clock,
                                            AluPufBatchScratch* scratch,
                                            timingsim::BatchEngine engine) const {
  // The batch_seed draw precedes engine resolution so responses are a
  // function of (rng state, challenges) alone — switching engines cannot
  // change them.
  const std::uint64_t batch_seed = rng.next();
  std::vector<RawResponse> responses;
  responses.reserve(count);
  if (count == 0) return responses;
  for (std::size_t x = 0; x < count; ++x) check_challenge(challenges[x]);

  using timingsim::BatchEngine;
  if (engine == BatchEngine::kAuto) {
    engine = count >= timingsim::kBitsliceMinLanes ? BatchEngine::kBitslice
                                                   : BatchEngine::kBatch;
  }

  // Batch profiling under the global tracer: the delay-sampling loop and
  // the arbiter sweep are the two scalar phases flanking the vectorized
  // timing kernel (which records its own span), so the three children of
  // puf.eval_batch account for the whole evaluation.
  obs::Span eval_span;
  if (obs::global_trace_enabled()) {
    eval_span = obs::global_tracer().span("puf.eval_batch");
    eval_span.note("lanes", static_cast<double>(count));
    eval_span.note("engine", static_cast<double>(engine));
  }

  AluPufBatchScratch& ws = scratch != nullptr ? *scratch : batch_scratch_;
  const auto& nominal = nominal_for(env);

  // Per-lane noisy delay realization: each lane's derived generator feeds
  // the batched ziggurat fill (one deviate per gate, gate order) and stays
  // live for that lane's arbiter draws below.
  ws.lane_rngs.resize(count, support::Xoshiro256pp(0));
  for (std::size_t x = 0; x < count; ++x) {
    ws.lane_rngs[x] = lane_rng(batch_seed, x);
  }
  obs::Span sample_span = eval_span.child("puf.sample_delays");
  chip_.sample_delays_batch(nominal, config_.noise, ws.lane_rngs.data(),
                            count, ws.delays);
  sample_span.end();

  // Run the selected timing kernel.  The scalar reference path keeps its
  // race times in a side buffer; the SoA / bit-sliced states are read in
  // place by the arbiter sweep below.
  std::vector<double> scalar_t0, scalar_t1;
  switch (engine) {
    case BatchEngine::kBitslice:
      timingsim::pack_input_words(challenges, count, challenge_bits(),
                                  ws.input_words);
      slice_sim_.run(ws.input_words.data(), count, ws.delays, ws.slice);
      break;
    case BatchEngine::kScalar: {
      // One cone-restricted scalar run per lane, each with its own column
      // of the sampled delay matrix.  All-local state: the reference path
      // must stay safe under the same thread-sharing rules as the others.
      scalar_t0.resize(count * config_.width);
      scalar_t1.resize(count * config_.width);
      const std::size_t gates = circuit_.net.num_gates();
      timingsim::DelaySet lane_delays;
      lane_delays.rise_ps.resize(gates);
      lane_delays.fall_ps.resize(gates);
      std::vector<timingsim::SignalState> states;
      for (std::size_t x = 0; x < count; ++x) {
        for (std::size_t g = 0; g < gates; ++g) {
          lane_delays.rise_ps[g] = ws.delays.rise_ps[g * count + x];
          lane_delays.fall_ps[g] = ws.delays.fall_ps[g * count + x];
        }
        batch_sim_.run(challenges[x], lane_delays, states);
        for (std::size_t i = 0; i < config_.width; ++i) {
          scalar_t0[x * config_.width + i] = states[circuit_.race0[i]].time_ps;
          scalar_t1[x * config_.width + i] = states[circuit_.race1[i]].time_ps;
        }
      }
      break;
    }
    default:
      timingsim::pack_input_lanes(challenges, count, challenge_bits(),
                                  ws.inputs);
      batch_sim_.run_batch(ws.inputs.data(), count, ws.delays, ws.state);
      break;
  }

  obs::Span arbiter_span = eval_span.child("puf.arbiter");
  const double deadline =
      clock != nullptr ? clock->cycle_ps - clock->setup_ps : 0.0;
  for (std::size_t x = 0; x < count; ++x) {
    support::Xoshiro256pp& lrng = ws.lane_rngs[x];
    RawResponse response(config_.width);
    for (std::size_t i = 0; i < config_.width; ++i) {
      double t0, t1;
      if (engine == BatchEngine::kBitslice) {
        t0 = slice_sim_.time_ps(ws.slice, circuit_.race0[i], x);
        t1 = slice_sim_.time_ps(ws.slice, circuit_.race1[i], x);
      } else if (engine == BatchEngine::kScalar) {
        t0 = scalar_t0[x * config_.width + i];
        t1 = scalar_t1[x * config_.width + i];
      } else {
        t0 = ws.state.time_ps(circuit_.race0[i], x);
        t1 = ws.state.time_ps(circuit_.race1[i], x);
      }
      if (clock != nullptr && std::min(t0, t1) > deadline) {
        response.set(i, lrng.bernoulli(0.5));
        continue;
      }
      response.set(i, arbiter_.sample(t1 - t0, lrng));
    }
    responses.push_back(std::move(response));
  }
  arbiter_span.end();
  return responses;
}

std::vector<double> AluPuf::race_deltas(const Challenge& challenge,
                                        const variation::Environment& env) const {
  check_challenge(challenge);
  sim_.run(challenge, nominal_for(env), scratch_states_);
  std::vector<double> deltas(config_.width);
  for (std::size_t i = 0; i < config_.width; ++i) {
    deltas[i] = scratch_states_[circuit_.race1[i]].time_ps -
                scratch_states_[circuit_.race0[i]].time_ps;
  }
  return deltas;
}

double AluPuf::max_settle_ps(const variation::Environment& env) const {
  // All-propagate challenge: a = all ones, b = 1 -> full-length carry chain.
  Challenge challenge(challenge_bits());
  for (std::size_t i = 0; i < config_.width; ++i) challenge.set(i, true);
  challenge.set(config_.width, true);
  sim_.run(challenge, nominal_for(env), scratch_states_);
  double worst = 0.0;
  for (std::size_t i = 0; i < config_.width; ++i) {
    worst = std::max({worst, scratch_states_[circuit_.race0[i]].time_ps,
                      scratch_states_[circuit_.race1[i]].time_ps});
  }
  return worst;
}

void AluPuf::age_uniformly(double duty, double hours,
                           const variation::AgingParams& params) {
  chip_.age_uniformly(duty, hours, params);
  has_cache_ = false;  // delays changed
}

void AluPuf::apply_stage_stress(std::size_t bit, bool alu1, double duty,
                                double hours,
                                const variation::AgingParams& params) {
  if (bit >= config_.width) {
    throw std::invalid_argument("apply_stage_stress: bit out of range");
  }
  const auto& stage =
      alu1 ? circuit_.stage_gates1[bit] : circuit_.stage_gates0[bit];
  for (const auto gate : stage) {
    chip_.apply_stress(gate, duty, hours, params);
  }
  has_cache_ = false;
}

AluPufEmulator::AluPufEmulator(std::size_t width, variation::DelayTable model,
                               netlist::AluPufLayout layout)
    : width_(width),
      circuit_(netlist::build_alu_puf_circuit(width, layout)),
      model_(std::move(model)),
      sim_(circuit_.net),
      batch_sim_(circuit_.net, raced_gates(circuit_)) {
  if (model_.intrinsic_ps.size() != circuit_.net.num_gates()) {
    throw std::invalid_argument(
        "AluPufEmulator: delay table does not match the PUF circuit "
        "(wrong width or layout?)");
  }
}

const timingsim::DelaySet& AluPufEmulator::delays_for(
    const variation::Environment& env) const {
  if (!has_cache_ || cached_env_.vdd_scale != env.vdd_scale ||
      cached_env_.temperature_c != env.temperature_c) {
    cached_delays_ = variation::delays_from_table(model_, env);
    // Rebuild the shared-delay bit-sliced engine eagerly with the cache:
    // its time-rep classification is a one-off per operating point, and
    // prewarm() must leave nothing left to build lazily (thread sharing).
    cached_slice_ = std::make_unique<timingsim::BitSliceEngine>(
        batch_sim_.compiled(), cached_delays_);
    cached_env_ = env;
    has_cache_ = true;
  }
  return cached_delays_;
}

void AluPufEmulator::run_challenge(const Challenge& challenge,
                                   const variation::Environment& env) const {
  if (challenge.size() != 2 * width_) {
    throw std::invalid_argument("AluPufEmulator: challenge must be 2*width bits");
  }
  sim_.run(challenge, delays_for(env), scratch_states_);
}

void AluPufEmulator::check_batch(const Challenge* challenges,
                                 std::size_t count) const {
  for (std::size_t x = 0; x < count; ++x) {
    if (challenges[x].size() != 2 * width_) {
      throw std::invalid_argument(
          "AluPufEmulator: challenge must be 2*width bits");
    }
  }
}

timingsim::BatchEngine AluPufEmulator::run_batch(
    const Challenge* challenges, std::size_t count,
    const variation::Environment& env, timingsim::BatchEngine engine) const {
  check_batch(challenges, count);
  const auto& delays = delays_for(env);
  using timingsim::BatchEngine;
  if (engine == BatchEngine::kAuto) {
    engine = count >= timingsim::kBitsliceMinLanes ? BatchEngine::kBitslice
                                                   : BatchEngine::kBatch;
  }
  if (engine == BatchEngine::kBitslice) {
    timingsim::pack_input_words(challenges, count, 2 * width_, slice_words_);
    cached_slice_->run(slice_words_.data(), count, slice_state_);
  } else {
    timingsim::pack_input_lanes(challenges, count, 2 * width_, batch_inputs_);
    batch_sim_.run_batch(batch_inputs_.data(), count, delays, batch_state_);
  }
  return engine;
}

std::vector<RawResponse> AluPufEmulator::eval_batch(
    const Challenge* challenges, std::size_t count,
    const variation::Environment& env, timingsim::BatchEngine engine) const {
  std::vector<RawResponse> responses;
  if (count == 0) return responses;
  using timingsim::BatchEngine;
  if (engine == BatchEngine::kScalar) {
    check_batch(challenges, count);
    responses.reserve(count);
    for (std::size_t x = 0; x < count; ++x) {
      responses.push_back(eval(challenges[x], env));
    }
    return responses;
  }
  engine = run_batch(challenges, count, env, engine);
  if (engine == BatchEngine::kBitslice) {
    // Word-parallel arbiter: decide every race 64 lanes at a time, then
    // transpose each lane block back into per-device response vectors.
    responses.assign(count, RawResponse(width_));
    const std::size_t nwords = slice_state_.nwords;
    std::vector<std::uint64_t> race(width_ * nwords);
    for (std::size_t i = 0; i < width_; ++i) {
      cached_slice_->race_words(slice_state_, circuit_.race0[i],
                                circuit_.race1[i], race.data() + i * nwords);
    }
    for (std::size_t w = 0; w < nwords; ++w) {
      const std::size_t lanes = std::min<std::size_t>(64, count - w * 64);
      support::unpack_bit_columns(race.data() + w, width_, nwords,
                                  responses.data() + w * 64, lanes);
    }
    return responses;
  }
  responses.reserve(count);
  for (std::size_t x = 0; x < count; ++x) {
    RawResponse response(width_);
    for (std::size_t i = 0; i < width_; ++i) {
      const double delta = batch_state_.time_ps(circuit_.race1[i], x) -
                           batch_state_.time_ps(circuit_.race0[i], x);
      response.set(i, timingsim::Arbiter::decide(delta));
    }
    responses.push_back(std::move(response));
  }
  return responses;
}

void AluPufEmulator::eval_soft_batch(const Challenge* challenges,
                                     std::size_t count,
                                     std::vector<double>& out,
                                     const variation::Environment& env,
                                     timingsim::BatchEngine engine) const {
  out.resize(count * width_);
  if (count == 0) return;
  using timingsim::BatchEngine;
  if (engine == BatchEngine::kScalar) {
    check_batch(challenges, count);
    for (std::size_t x = 0; x < count; ++x) {
      const auto llr = eval_soft(challenges[x], env);
      std::copy(llr.begin(), llr.end(), out.begin() + x * width_);
    }
    return;
  }
  engine = run_batch(challenges, count, env, engine);
  if (engine == BatchEngine::kBitslice) {
    for (std::size_t x = 0; x < count; ++x) {
      for (std::size_t i = 0; i < width_; ++i) {
        const double delta =
            cached_slice_->time_ps(slice_state_, circuit_.race1[i], x) -
            cached_slice_->time_ps(slice_state_, circuit_.race0[i], x);
        out[x * width_ + i] = -delta;
      }
    }
    return;
  }
  for (std::size_t x = 0; x < count; ++x) {
    for (std::size_t i = 0; i < width_; ++i) {
      const double delta = batch_state_.time_ps(circuit_.race1[i], x) -
                           batch_state_.time_ps(circuit_.race0[i], x);
      out[x * width_ + i] = -delta;
    }
  }
}

RawResponse AluPufEmulator::eval(const Challenge& challenge,
                                 const variation::Environment& env) const {
  run_challenge(challenge, env);
  RawResponse response(width_);
  for (std::size_t i = 0; i < width_; ++i) {
    const double delta = scratch_states_[circuit_.race1[i]].time_ps -
                         scratch_states_[circuit_.race0[i]].time_ps;
    response.set(i, timingsim::Arbiter::decide(delta));
  }
  return response;
}

std::vector<double> AluPufEmulator::eval_soft(
    const Challenge& challenge, const variation::Environment& env) const {
  run_challenge(challenge, env);
  std::vector<double> llr(width_);
  for (std::size_t i = 0; i < width_; ++i) {
    const double delta = scratch_states_[circuit_.race1[i]].time_ps -
                         scratch_states_[circuit_.race0[i]].time_ps;
    // Bit is 1 when delta > 0, and the LLR convention is positive = bit 0.
    llr[i] = -delta;
  }
  return llr;
}

}  // namespace pufatt::alupuf
