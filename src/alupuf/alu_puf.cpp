#include "alupuf/alu_puf.hpp"

#include <algorithm>
#include <stdexcept>

namespace pufatt::alupuf {

namespace {

bool same_env(const variation::Environment& a, const variation::Environment& b) {
  return a.vdd_scale == b.vdd_scale && a.temperature_c == b.temperature_c;
}

}  // namespace

AluPuf::AluPuf(const AluPufConfig& config, std::uint64_t chip_seed)
    : config_(config),
      circuit_(netlist::build_alu_puf_circuit(config.width, config.layout)),
      chip_(circuit_.net, config.tech, config.quadtree, chip_seed),
      sim_(circuit_.net),
      arbiter_(config.arbiter) {}

std::vector<bool> AluPuf::to_input_vector(const Challenge& challenge) const {
  if (challenge.size() != challenge_bits()) {
    throw std::invalid_argument("AluPuf: challenge must be 2*width bits");
  }
  std::vector<bool> in(challenge.size());
  for (std::size_t i = 0; i < challenge.size(); ++i) in[i] = challenge.get(i);
  return in;
}

const timingsim::DelaySet& AluPuf::nominal_for(
    const variation::Environment& env) const {
  if (!has_cache_ || !same_env(env, cached_env_)) {
    chip_.nominal_delays(env, cached_nominal_);
    cached_env_ = env;
    has_cache_ = true;
  }
  return cached_nominal_;
}

RawResponse AluPuf::eval(const Challenge& challenge,
                         const variation::Environment& env,
                         support::Xoshiro256pp& rng,
                         const ClockConstraint* clock) const {
  const auto in = to_input_vector(challenge);
  const auto& nominal = nominal_for(env);
  chip_.sample_delays(nominal, config_.noise, rng, scratch_delays_);
  sim_.run(in, scratch_delays_, scratch_states_);

  RawResponse response(config_.width);
  const double deadline =
      clock != nullptr ? clock->cycle_ps - clock->setup_ps : 0.0;
  for (std::size_t i = 0; i < config_.width; ++i) {
    const double t0 = scratch_states_[circuit_.race0[i]].time_ps;
    const double t1 = scratch_states_[circuit_.race1[i]].time_ps;
    if (clock != nullptr && std::min(t0, t1) > deadline) {
      // Neither transition reached the arbiter before the capture edge:
      // the register samples a signal mid-flight and resolves metastably —
      // an unbiased coin, wrong half the time regardless of the expected
      // bit.  This is the setup-violation failure mode that defeats
      // overclocking attacks (paper Section 4.2).
      response.set(i, rng.bernoulli(0.5));
      continue;
    }
    response.set(i, arbiter_.sample(t1 - t0, rng));
  }
  return response;
}

std::vector<double> AluPuf::race_deltas(const Challenge& challenge,
                                        const variation::Environment& env) const {
  const auto in = to_input_vector(challenge);
  sim_.run(in, nominal_for(env), scratch_states_);
  std::vector<double> deltas(config_.width);
  for (std::size_t i = 0; i < config_.width; ++i) {
    deltas[i] = scratch_states_[circuit_.race1[i]].time_ps -
                scratch_states_[circuit_.race0[i]].time_ps;
  }
  return deltas;
}

double AluPuf::max_settle_ps(const variation::Environment& env) const {
  // All-propagate challenge: a = all ones, b = 1 -> full-length carry chain.
  Challenge challenge(challenge_bits());
  for (std::size_t i = 0; i < config_.width; ++i) challenge.set(i, true);
  challenge.set(config_.width, true);
  const auto in = to_input_vector(challenge);
  sim_.run(in, nominal_for(env), scratch_states_);
  double worst = 0.0;
  for (std::size_t i = 0; i < config_.width; ++i) {
    worst = std::max({worst, scratch_states_[circuit_.race0[i]].time_ps,
                      scratch_states_[circuit_.race1[i]].time_ps});
  }
  return worst;
}

void AluPuf::age_uniformly(double duty, double hours,
                           const variation::AgingParams& params) {
  chip_.age_uniformly(duty, hours, params);
  has_cache_ = false;  // delays changed
}

void AluPuf::apply_stage_stress(std::size_t bit, bool alu1, double duty,
                                double hours,
                                const variation::AgingParams& params) {
  if (bit >= config_.width) {
    throw std::invalid_argument("apply_stage_stress: bit out of range");
  }
  const auto& stage =
      alu1 ? circuit_.stage_gates1[bit] : circuit_.stage_gates0[bit];
  for (const auto gate : stage) {
    chip_.apply_stress(gate, duty, hours, params);
  }
  has_cache_ = false;
}

AluPufEmulator::AluPufEmulator(std::size_t width, variation::DelayTable model,
                               netlist::AluPufLayout layout)
    : width_(width),
      circuit_(netlist::build_alu_puf_circuit(width, layout)),
      model_(std::move(model)),
      sim_(circuit_.net) {
  if (model_.intrinsic_ps.size() != circuit_.net.num_gates()) {
    throw std::invalid_argument(
        "AluPufEmulator: delay table does not match the PUF circuit "
        "(wrong width or layout?)");
  }
}

void AluPufEmulator::run_challenge(const Challenge& challenge,
                                   const variation::Environment& env) const {
  if (challenge.size() != 2 * width_) {
    throw std::invalid_argument("AluPufEmulator: challenge must be 2*width bits");
  }
  if (!has_cache_ || cached_env_.vdd_scale != env.vdd_scale ||
      cached_env_.temperature_c != env.temperature_c) {
    cached_delays_ = variation::delays_from_table(model_, env);
    cached_env_ = env;
    has_cache_ = true;
  }
  std::vector<bool> in(challenge.size());
  for (std::size_t i = 0; i < challenge.size(); ++i) in[i] = challenge.get(i);
  sim_.run(in, cached_delays_, scratch_states_);
}

RawResponse AluPufEmulator::eval(const Challenge& challenge,
                                 const variation::Environment& env) const {
  run_challenge(challenge, env);
  RawResponse response(width_);
  for (std::size_t i = 0; i < width_; ++i) {
    const double delta = scratch_states_[circuit_.race1[i]].time_ps -
                         scratch_states_[circuit_.race0[i]].time_ps;
    response.set(i, timingsim::Arbiter::decide(delta));
  }
  return response;
}

std::vector<double> AluPufEmulator::eval_soft(
    const Challenge& challenge, const variation::Environment& env) const {
  run_challenge(challenge, env);
  std::vector<double> llr(width_);
  for (std::size_t i = 0; i < width_; ++i) {
    const double delta = scratch_states_[circuit_.race1[i]].time_ps -
                         scratch_states_[circuit_.race0[i]].time_ps;
    // Bit is 1 when delta > 0, and the LLR convention is positive = bit 0.
    llr[i] = -delta;
  }
  return llr;
}

}  // namespace pufatt::alupuf
