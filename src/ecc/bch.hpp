// Binary primitive BCH codes with optional shortening.
//
// Construction: generator polynomial g(x) = lcm of the minimal polynomials
// of alpha^1 .. alpha^{2t} over GF(2^m); encoding is systematic (message in
// the high-order coefficients); decoding is syndrome computation +
// Berlekamp-Massey + Chien search.
//
// The paper names "BCH[32,6,16]" for its helper-data code; that parameter
// set is actually the Reed-Muller code RM(1,5) (see reed_muller.hpp and
// DESIGN.md section 6).  The BCH family here is the general ECC substrate
// and provides nearby true-BCH instantiations (e.g. BCH[31,6,t=7]) used in
// the false-negative-rate study.
#pragma once

#include <cstddef>
#include <vector>

#include "ecc/gf2m.hpp"
#include "ecc/linear_code.hpp"

namespace pufatt::ecc {

class BchCode final : public BinaryCode {
 public:
  /// Primitive BCH code of length 2^m - 1 with design correction capacity
  /// `t`, shortened by `shorten` bits (message and codeword both shrink).
  /// Throws std::invalid_argument if the resulting dimension is <= 0.
  BchCode(unsigned m, std::size_t t, std::size_t shorten = 0);

  std::size_t n() const override { return full_n_ - shorten_; }
  std::size_t k() const override { return full_k_ - shorten_; }
  std::size_t guaranteed_correction() const override { return t_; }
  std::size_t min_distance() const override { return 2 * t_ + 1; }

  support::BitVector encode(const support::BitVector& message) const override;
  std::optional<support::BitVector> decode_to_codeword(
      const support::BitVector& word) const override;
  std::optional<support::BitVector> decode(
      const support::BitVector& word) const override;
  const Gf2Matrix& parity_check() const override { return parity_check_; }

  /// Generator polynomial coefficients, bit i = coefficient of x^i.
  const support::BitVector& generator_poly() const { return gen_poly_; }

 private:
  /// Extends a shortened word with zero bits to full length n.
  support::BitVector unshorten(const support::BitVector& word) const;

  GF2m field_;
  std::size_t t_;
  std::size_t shorten_;
  std::size_t full_n_;
  std::size_t full_k_;
  support::BitVector gen_poly_;
  Gf2Matrix parity_check_;
};

}  // namespace pufatt::ecc
