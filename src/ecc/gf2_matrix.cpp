#include "ecc/gf2_matrix.hpp"

#include <stdexcept>

namespace pufatt::ecc {

using support::BitVector;

Gf2Matrix::Gf2Matrix(std::size_t rows, std::size_t cols) : cols_(cols) {
  rows_.assign(rows, BitVector(cols));
}

Gf2Matrix::Gf2Matrix(std::vector<support::BitVector> rows)
    : rows_(std::move(rows)) {
  cols_ = rows_.empty() ? 0 : rows_.front().size();
  for (const auto& r : rows_) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Gf2Matrix: ragged rows");
    }
  }
}

BitVector Gf2Matrix::mul_vector(const BitVector& x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("Gf2Matrix::mul_vector: size mismatch");
  }
  BitVector y(rows_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    y.set(r, (rows_[r] & x).parity());
  }
  return y;
}

namespace {

/// Row-reduces `m` in place; returns the pivot column of each pivot row.
std::vector<std::size_t> row_reduce(std::vector<BitVector>& m,
                                    std::size_t cols) {
  std::vector<std::size_t> pivot_cols;
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < cols && pivot_row < m.size(); ++col) {
    std::size_t sel = pivot_row;
    while (sel < m.size() && !m[sel].get(col)) ++sel;
    if (sel == m.size()) continue;
    std::swap(m[pivot_row], m[sel]);
    for (std::size_t r = 0; r < m.size(); ++r) {
      if (r != pivot_row && m[r].get(col)) m[r] ^= m[pivot_row];
    }
    pivot_cols.push_back(col);
    ++pivot_row;
  }
  return pivot_cols;
}

}  // namespace

std::size_t Gf2Matrix::rank() const {
  auto work = rows_;
  return row_reduce(work, cols_).size();
}

std::vector<BitVector> Gf2Matrix::null_space() const {
  auto work = rows_;
  const auto pivot_cols = row_reduce(work, cols_);
  std::vector<bool> is_pivot(cols_, false);
  for (const auto c : pivot_cols) is_pivot[c] = true;

  std::vector<BitVector> basis;
  for (std::size_t free_col = 0; free_col < cols_; ++free_col) {
    if (is_pivot[free_col]) continue;
    BitVector v(cols_);
    v.set(free_col, true);
    // Back-substitute: pivot variable p (row r) equals sum of free columns
    // set in row r.
    for (std::size_t r = 0; r < pivot_cols.size(); ++r) {
      if (work[r].get(free_col)) v.set(pivot_cols[r], true);
    }
    basis.push_back(std::move(v));
  }
  return basis;
}

std::optional<BitVector> Gf2Matrix::solve(const BitVector& b) const {
  if (b.size() != rows_.size()) {
    throw std::invalid_argument("Gf2Matrix::solve: rhs size mismatch");
  }
  // Augment each row with its rhs bit, then reduce.
  std::vector<BitVector> work;
  work.reserve(rows_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    BitVector aug(cols_ + 1);
    for (std::size_t c = 0; c < cols_; ++c) aug.set(c, rows_[r].get(c));
    aug.set(cols_, b.get(r));
    work.push_back(std::move(aug));
  }
  const auto pivot_cols = row_reduce(work, cols_);
  // Inconsistent if any zero row has rhs 1.
  for (std::size_t r = pivot_cols.size(); r < work.size(); ++r) {
    if (work[r].get(cols_)) return std::nullopt;
  }
  BitVector x(cols_);
  for (std::size_t r = 0; r < pivot_cols.size(); ++r) {
    x.set(pivot_cols[r], work[r].get(cols_));
  }
  return x;
}

Gf2Matrix Gf2Matrix::transposed() const {
  Gf2Matrix t(cols_, rows_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (rows_[r].get(c)) t.set(c, r, true);
    }
  }
  return t;
}

}  // namespace pufatt::ecc
