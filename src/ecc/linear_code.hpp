// Abstract binary linear block code interface.
//
// The helper-data scheme (helper_data.hpp) and the syndrome-generator
// hardware model (netlist/builder.hpp) are code-agnostic: they only need
// encode/decode and a parity-check matrix.  Concrete codes: BchCode
// (bch.hpp) and ReedMuller1 (reed_muller.hpp).
#pragma once

#include <optional>
#include <vector>

#include "ecc/gf2_matrix.hpp"
#include "support/bitvec.hpp"

namespace pufatt::ecc {

class BinaryCode {
 public:
  virtual ~BinaryCode() = default;

  /// Codeword length in bits.
  virtual std::size_t n() const = 0;
  /// Message length in bits.
  virtual std::size_t k() const = 0;
  /// Number of errors the decoder is guaranteed to correct.
  virtual std::size_t guaranteed_correction() const = 0;
  /// Minimum distance of the code.
  virtual std::size_t min_distance() const = 0;

  /// Encodes a k-bit message into an n-bit codeword.
  virtual support::BitVector encode(const support::BitVector& message) const = 0;

  /// Decodes a noisy n-bit word to the nearest codeword; nullopt when the
  /// decoder cannot produce one (bounded-distance decoders only).
  virtual std::optional<support::BitVector> decode_to_codeword(
      const support::BitVector& word) const = 0;

  /// Decodes a noisy n-bit word to the k-bit message.
  virtual std::optional<support::BitVector> decode(
      const support::BitVector& word) const = 0;

  /// Soft-decision decoding: `llr[i]` > 0 means bit i is more likely 0,
  /// with |llr[i]| the confidence.  The default implementation thresholds
  /// to hard bits and calls decode_to_codeword(); codes with efficient
  /// soft decoders (Reed-Muller via weighted Hadamard transform) override.
  /// Used by the verifier-side helper-data reconstruction, where the PUF
  /// emulation provides each bit's race margin as its reliability.
  virtual std::optional<support::BitVector> decode_soft_to_codeword(
      const std::vector<double>& llr) const;

  /// (n-k) x n parity-check matrix; its null space is exactly the code.
  virtual const Gf2Matrix& parity_check() const = 0;

  /// Syndrome of an n-bit word: H * w, an (n-k)-bit vector, zero iff w is
  /// a codeword.  This is the helper data of the PUF post-processing.
  support::BitVector syndrome(const support::BitVector& word) const {
    return parity_check().mul_vector(word);
  }
};

/// Derives a full-rank parity-check matrix from a generator matrix by
/// computing the dual basis (null space of G).
Gf2Matrix parity_from_generator(const Gf2Matrix& generator);

}  // namespace pufatt::ecc
