#include "ecc/helper_data.hpp"

#include <stdexcept>

namespace pufatt::ecc {

using support::BitVector;

SyndromeHelper::SyndromeHelper(const BinaryCode& code) : code_(&code) {
  const auto& h = code.parity_check();
  preimage_.reserve(h.rows());
  for (std::size_t j = 0; j < h.rows(); ++j) {
    BitVector unit(h.rows());
    unit.set(j, true);
    auto solution = h.solve(unit);
    if (!solution) {
      throw std::invalid_argument(
          "SyndromeHelper: parity-check matrix is rank-deficient");
    }
    preimage_.push_back(std::move(*solution));
  }
}

BitVector SyndromeHelper::generate(const BitVector& response) const {
  if (response.size() != code_->n()) {
    throw std::invalid_argument("SyndromeHelper::generate: wrong length");
  }
  return code_->syndrome(response);
}

std::optional<BitVector> SyndromeHelper::reproduce(
    const BitVector& reference, const BitVector& helper) const {
  if (reference.size() != code_->n()) {
    throw std::invalid_argument("SyndromeHelper::reproduce: wrong length");
  }
  if (helper.size() != helper_bits()) {
    throw std::invalid_argument("SyndromeHelper::reproduce: bad helper size");
  }
  // y0: any word with syndrome equal to the helper data.
  BitVector y0(code_->n());
  for (std::size_t j = 0; j < helper.size(); ++j) {
    if (helper.get(j)) y0 ^= preimage_[j];
  }
  // reference XOR y0 = (codeword) XOR (small error); decode it.
  const auto codeword = code_->decode_to_codeword(reference ^ y0);
  if (!codeword) return std::nullopt;
  return *codeword ^ y0;
}

std::optional<BitVector> SyndromeHelper::reproduce_soft(
    const std::vector<double>& reference_llr,
    const BitVector& helper) const {
  if (reference_llr.size() != code_->n()) {
    throw std::invalid_argument("SyndromeHelper::reproduce_soft: wrong length");
  }
  if (helper.size() != helper_bits()) {
    throw std::invalid_argument("SyndromeHelper::reproduce_soft: bad helper");
  }
  BitVector y0(code_->n());
  for (std::size_t j = 0; j < helper.size(); ++j) {
    if (helper.get(j)) y0 ^= preimage_[j];
  }
  // The word to decode is reference XOR y0; XOR with a known bit flips the
  // sign of the soft value.
  std::vector<double> llr = reference_llr;
  for (std::size_t i = 0; i < llr.size(); ++i) {
    if (y0.get(i)) llr[i] = -llr[i];
  }
  const auto codeword = code_->decode_soft_to_codeword(llr);
  if (!codeword) return std::nullopt;
  return *codeword ^ y0;
}

}  // namespace pufatt::ecc
