#include "ecc/reed_muller.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace pufatt::ecc {

using support::BitVector;

namespace {

/// In-place fast Walsh-Hadamard transform.
template <typename T>
void fwht(std::vector<T>& a) {
  for (std::size_t h = 1; h < a.size(); h *= 2) {
    for (std::size_t i = 0; i < a.size(); i += 2 * h) {
      for (std::size_t j = i; j < i + h; ++j) {
        const T x = a[j];
        const T y = a[j + h];
        a[j] = x + y;
        a[j + h] = x - y;
      }
    }
  }
}

}  // namespace

ReedMuller1::ReedMuller1(unsigned m) : m_(m), n_(std::size_t{1} << m) {
  if (m < 2 || m > 16) {
    throw std::invalid_argument("ReedMuller1: m must be in [2,16]");
  }
  // Generator matrix rows: all-ones (u0) plus the m "coordinate" rows.
  Gf2Matrix gen(k(), n());
  for (std::size_t i = 0; i < n_; ++i) gen.set(0, i, true);
  for (unsigned b = 0; b < m_; ++b) {
    for (std::size_t i = 0; i < n_; ++i) {
      if ((i >> b) & 1u) gen.set(b + 1, i, true);
    }
  }
  parity_check_ = parity_from_generator(gen);
}

BitVector ReedMuller1::encode(const BitVector& message) const {
  if (message.size() != k()) {
    throw std::invalid_argument("ReedMuller1::encode: wrong message length");
  }
  const bool u0 = message.get(0);
  std::uint32_t linear = 0;
  for (unsigned b = 0; b < m_; ++b) {
    if (message.get(b + 1)) linear |= (1u << b);
  }
  BitVector cw(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const bool dot =
        (std::popcount(linear & static_cast<std::uint32_t>(i)) & 1) != 0;
    cw.set(i, u0 != dot);
  }
  return cw;
}

BitVector ReedMuller1::decode_message(const BitVector& word) const {
  if (word.size() != n_) {
    throw std::invalid_argument("ReedMuller1::decode: wrong word length");
  }
  // +1 / -1 map, then Hadamard transform: the peak index is the linear
  // part, the peak sign is the affine constant.
  std::vector<int> f(n_);
  for (std::size_t i = 0; i < n_; ++i) f[i] = word.get(i) ? -1 : 1;
  fwht(f);
  std::size_t best = 0;
  int best_mag = std::abs(f[0]);
  for (std::size_t i = 1; i < n_; ++i) {
    if (std::abs(f[i]) > best_mag) {
      best_mag = std::abs(f[i]);
      best = i;
    }
  }
  BitVector msg(k());
  msg.set(0, f[best] < 0);
  for (unsigned b = 0; b < m_; ++b) msg.set(b + 1, ((best >> b) & 1u) != 0);
  return msg;
}

std::optional<BitVector> ReedMuller1::decode_to_codeword(
    const BitVector& word) const {
  return encode(decode_message(word));
}

std::optional<BitVector> ReedMuller1::decode(const BitVector& word) const {
  return decode_message(word);
}

std::optional<BitVector> ReedMuller1::decode_soft_to_codeword(
    const std::vector<double>& llr) const {
  if (llr.size() != n_) {
    throw std::invalid_argument("ReedMuller1::decode_soft: wrong length");
  }
  std::vector<double> f = llr;  // positive = bit 0, as encoded codeword +1
  fwht(f);
  std::size_t best = 0;
  double best_mag = std::abs(f[0]);
  for (std::size_t i = 1; i < n_; ++i) {
    if (std::abs(f[i]) > best_mag) {
      best_mag = std::abs(f[i]);
      best = i;
    }
  }
  BitVector msg(k());
  msg.set(0, f[best] < 0.0);
  for (unsigned b = 0; b < m_; ++b) msg.set(b + 1, ((best >> b) & 1u) != 0);
  return encode(msg);
}

int ReedMuller1::correlation_peak(const BitVector& word) const {
  std::vector<int> f(n_);
  for (std::size_t i = 0; i < n_; ++i) f[i] = word.get(i) ? -1 : 1;
  fwht(f);
  int best = 0;
  for (const auto v : f) best = std::max(best, std::abs(v));
  return best;
}

}  // namespace pufatt::ecc
