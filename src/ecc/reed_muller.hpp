// First-order Reed-Muller codes RM(1, m): parameters [2^m, m+1, 2^{m-1}].
//
// RM(1,5) = [32, 6, 16] is the code the paper's helper-data scheme actually
// uses (the paper calls it "BCH[32,6,16]"; no primitive BCH code has those
// parameters — see DESIGN.md section 6).  Decoding is maximum-likelihood
// via the fast Hadamard transform (the classic "Green machine"), which
// guarantees correction of up to 7 errors for m = 5 and usually succeeds
// well beyond that radius — which is how the paper's "up to 16 bit errors"
// reading can approximately hold in practice.
#pragma once

#include <cstdint>

#include "ecc/linear_code.hpp"

namespace pufatt::ecc {

class ReedMuller1 final : public BinaryCode {
 public:
  /// RM(1, m) for 2 <= m <= 16.
  explicit ReedMuller1(unsigned m);

  std::size_t n() const override { return n_; }
  std::size_t k() const override { return static_cast<std::size_t>(m_) + 1; }
  std::size_t guaranteed_correction() const override {
    return (min_distance() - 1) / 2;
  }
  std::size_t min_distance() const override { return n_ / 2; }

  support::BitVector encode(const support::BitVector& message) const override;

  /// ML decoding never fails to produce a codeword (it may produce the
  /// wrong one beyond the guaranteed radius).
  std::optional<support::BitVector> decode_to_codeword(
      const support::BitVector& word) const override;
  std::optional<support::BitVector> decode(
      const support::BitVector& word) const override;

  /// Soft-decision ML decoding via the real-valued Hadamard transform:
  /// maximizes the reliability-weighted correlation over all codewords.
  /// Corrects far beyond the hard-decision radius when the error bits are
  /// the low-reliability ones (exactly the PUF metastability case).
  std::optional<support::BitVector> decode_soft_to_codeword(
      const std::vector<double>& llr) const override;

  const Gf2Matrix& parity_check() const override { return parity_check_; }

  /// The |correlation| margin of the last-but-stateless decode: returns the
  /// ML correlation peak for `word` (n - 2*distance_to_best_codeword).
  /// Exposed for the false-negative-rate study.
  int correlation_peak(const support::BitVector& word) const;

 private:
  /// Message layout: bit 0 = affine constant u0, bits 1..m = linear part.
  support::BitVector decode_message(const support::BitVector& word) const;

  unsigned m_;
  std::size_t n_;
  Gf2Matrix parity_check_;
};

}  // namespace pufatt::ecc
