#include "ecc/bch.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace pufatt::ecc {

using support::BitVector;

Gf2Matrix parity_from_generator(const Gf2Matrix& generator) {
  // Rows of H = basis of the null space of G (as row space): H must satisfy
  // G * H^T = 0, i.e. every H row is orthogonal to every G row.  null_space
  // of the matrix whose rows are G's rows gives vectors x with G x = 0.
  return Gf2Matrix(generator.null_space());
}

namespace {

/// Multiplies two GF(2) polynomials (bit i = coeff of x^i).
BitVector poly_mul(const BitVector& a, const BitVector& b) {
  BitVector out(a.size() + b.size() - 1);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a.get(i)) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (b.get(j)) out.flip(i + j);
    }
  }
  return out;
}

std::size_t poly_degree(const BitVector& p) {
  for (std::size_t i = p.size(); i > 0; --i) {
    if (p.get(i - 1)) return i - 1;
  }
  return 0;
}

/// Minimal polynomial over GF(2) of alpha^s in GF(2^m): product of
/// (x - alpha^e) over the cyclotomic coset of s.
BitVector minimal_polynomial(const GF2m& field, std::uint32_t s) {
  // Collect the coset {s, 2s, 4s, ...} mod (2^m - 1).
  std::vector<std::uint32_t> coset;
  std::uint32_t e = s % field.order();
  do {
    coset.push_back(e);
    e = static_cast<std::uint32_t>((2ull * e) % field.order());
  } while (e != s % field.order());

  // Multiply (x + alpha^e) factors over GF(2^m).
  std::vector<GF2m::Element> poly{1};  // constant polynomial 1
  for (const auto exp : coset) {
    const GF2m::Element root = field.alpha_pow(exp);
    std::vector<GF2m::Element> next(poly.size() + 1, 0);
    for (std::size_t i = 0; i < poly.size(); ++i) {
      next[i + 1] = field.add(next[i + 1], poly[i]);        // x * poly
      next[i] = field.add(next[i], field.mul(root, poly[i]));  // root * poly
    }
    poly = std::move(next);
  }
  BitVector out(poly.size());
  for (std::size_t i = 0; i < poly.size(); ++i) {
    if (poly[i] > 1) {
      throw std::logic_error("minimal_polynomial: non-binary coefficient");
    }
    out.set(i, poly[i] == 1);
  }
  return out;
}

}  // namespace

BchCode::BchCode(unsigned m, std::size_t t, std::size_t shorten)
    : field_(m), t_(t), shorten_(shorten), full_n_((1u << m) - 1u), full_k_(0) {
  if (t == 0) throw std::invalid_argument("BchCode: t must be >= 1");

  // g(x) = lcm of minimal polynomials of alpha^1..alpha^{2t}: multiply the
  // minimal polynomial of each new cyclotomic coset representative.
  std::set<std::uint32_t> covered;
  BitVector gen(1);
  gen.set(0, true);  // polynomial "1"
  for (std::uint32_t s = 1; s <= 2 * t; ++s) {
    if (covered.count(s % field_.order()) != 0) continue;
    // Mark the whole coset.
    std::uint32_t e = s % field_.order();
    do {
      covered.insert(e);
      e = static_cast<std::uint32_t>((2ull * e) % field_.order());
    } while (e != s % field_.order());
    gen = poly_mul(gen, minimal_polynomial(field_, s));
  }
  const std::size_t deg = poly_degree(gen);
  gen_poly_ = BitVector(deg + 1);
  for (std::size_t i = 0; i <= deg; ++i) gen_poly_.set(i, gen.get(i));

  if (deg >= full_n_) throw std::invalid_argument("BchCode: t too large");
  full_k_ = full_n_ - deg;
  if (shorten_ >= full_k_) {
    throw std::invalid_argument("BchCode: shortening exceeds dimension");
  }

  // Generator matrix of the shortened code (systematic positions retained):
  // row i encodes the message with only bit i set.
  Gf2Matrix gen_matrix(k(), n());
  for (std::size_t i = 0; i < k(); ++i) {
    BitVector msg(k());
    msg.set(i, true);
    const BitVector cw = encode(msg);
    for (std::size_t c = 0; c < n(); ++c) gen_matrix.set(i, c, cw.get(c));
  }
  parity_check_ = parity_from_generator(gen_matrix);
}

BitVector BchCode::encode(const BitVector& message) const {
  if (message.size() != k()) {
    throw std::invalid_argument("BchCode::encode: wrong message length");
  }
  const std::size_t redundancy = full_n_ - full_k_;
  // Systematic encoding: c(x) = m(x) * x^{n-k} + (m(x) * x^{n-k} mod g(x)).
  // Work at full length; the shortened (high) message bits are zero.
  BitVector work(full_n_);
  for (std::size_t i = 0; i < message.size(); ++i) {
    work.set(redundancy + i, message.get(i));
  }
  // Polynomial mod: subtract shifted g(x) from the top down.
  BitVector rem = work;
  const std::size_t gen_deg = poly_degree(gen_poly_);
  for (std::size_t i = full_n_; i-- > gen_deg;) {
    if (!rem.get(i)) continue;
    for (std::size_t j = 0; j <= gen_deg; ++j) {
      if (gen_poly_.get(j)) rem.flip(i - gen_deg + j);
    }
  }
  BitVector cw(n());
  for (std::size_t i = 0; i < redundancy; ++i) cw.set(i, rem.get(i));
  for (std::size_t i = 0; i < message.size(); ++i) {
    cw.set(redundancy + i, message.get(i));
  }
  return cw;
}

BitVector BchCode::unshorten(const BitVector& word) const {
  BitVector full(full_n_);
  for (std::size_t i = 0; i < word.size(); ++i) full.set(i, word.get(i));
  return full;
}

std::optional<BitVector> BchCode::decode_to_codeword(
    const BitVector& word) const {
  if (word.size() != n()) {
    throw std::invalid_argument("BchCode::decode: wrong word length");
  }
  const BitVector full = unshorten(word);

  // Syndromes S_j = r(alpha^j), j = 1..2t.
  std::vector<GF2m::Element> syn(2 * t_ + 1, 0);
  bool all_zero = true;
  for (std::size_t j = 1; j <= 2 * t_; ++j) {
    GF2m::Element s = 0;
    for (std::size_t i = 0; i < full_n_; ++i) {
      if (full.get(i)) {
        s = field_.add(
            s, field_.alpha_pow(static_cast<std::int64_t>(j) *
                                static_cast<std::int64_t>(i)));
      }
    }
    syn[j] = s;
    if (s != 0) all_zero = false;
  }
  if (all_zero) return word;

  // Berlekamp-Massey: find the error-locator polynomial sigma(x).
  std::vector<GF2m::Element> sigma{1};
  std::vector<GF2m::Element> prev_sigma{1};
  GF2m::Element prev_discrepancy = 1;
  std::size_t l = 0;      // current LFSR length
  std::size_t shift = 1;  // x-power gap since last length change
  for (std::size_t r = 1; r <= 2 * t_; ++r) {
    GF2m::Element discrepancy = syn[r];
    for (std::size_t i = 1; i <= l && i < sigma.size(); ++i) {
      if (r >= i + 1 && r - i >= 1) {
        discrepancy =
            field_.add(discrepancy, field_.mul(sigma[i], syn[r - i]));
      }
    }
    if (discrepancy == 0) {
      ++shift;
      continue;
    }
    // sigma_new = sigma - (d / d_prev) * x^shift * prev_sigma
    const GF2m::Element scale = field_.div(discrepancy, prev_discrepancy);
    std::vector<GF2m::Element> next = sigma;
    if (next.size() < prev_sigma.size() + shift) {
      next.resize(prev_sigma.size() + shift, 0);
    }
    for (std::size_t i = 0; i < prev_sigma.size(); ++i) {
      next[i + shift] =
          field_.add(next[i + shift], field_.mul(scale, prev_sigma[i]));
    }
    if (2 * l <= r - 1) {
      prev_sigma = sigma;
      prev_discrepancy = discrepancy;
      l = r - l;
      shift = 1;
    } else {
      ++shift;
    }
    sigma = std::move(next);
  }

  // Trim trailing zero coefficients.
  while (sigma.size() > 1 && sigma.back() == 0) sigma.pop_back();
  const std::size_t num_errors = sigma.size() - 1;
  if (num_errors > t_) return std::nullopt;

  // Chien search: roots alpha^{-i} of sigma(x) mark error positions i.
  BitVector corrected = full;
  std::size_t found = 0;
  for (std::size_t i = 0; i < full_n_; ++i) {
    GF2m::Element acc = 0;
    for (std::size_t d = 0; d < sigma.size(); ++d) {
      if (sigma[d] == 0) continue;
      acc = field_.add(
          acc, field_.mul(sigma[d],
                          field_.alpha_pow(-static_cast<std::int64_t>(d) *
                                           static_cast<std::int64_t>(i))));
    }
    if (acc == 0) {
      if (i >= n()) return std::nullopt;  // error in a shortened (known-0) bit
      corrected.flip(i);
      ++found;
    }
  }
  if (found != num_errors) return std::nullopt;

  BitVector out(n());
  for (std::size_t i = 0; i < n(); ++i) out.set(i, corrected.get(i));
  // Consistency check: the corrected word must be a codeword.
  if (parity_check_.mul_vector(out).popcount() != 0) return std::nullopt;
  return out;
}

std::optional<BitVector> BchCode::decode(const BitVector& word) const {
  const auto cw = decode_to_codeword(word);
  if (!cw) return std::nullopt;
  const std::size_t redundancy = full_n_ - full_k_;
  BitVector msg(k());
  for (std::size_t i = 0; i < k(); ++i) msg.set(i, cw->get(redundancy + i));
  return msg;
}

}  // namespace pufatt::ecc
