#include "ecc/gf2m.hpp"

#include <stdexcept>

namespace pufatt::ecc {

namespace {
// Primitive polynomials over GF(2), one per degree (bit i = coeff of x^i).
std::uint32_t primitive_poly_for(unsigned m) {
  switch (m) {
    case 2: return 0b111;            // x^2+x+1
    case 3: return 0b1011;           // x^3+x+1
    case 4: return 0b10011;          // x^4+x+1
    case 5: return 0b100101;         // x^5+x^2+1
    case 6: return 0b1000011;        // x^6+x+1
    case 7: return 0b10001001;       // x^7+x^3+1
    case 8: return 0b100011101;      // x^8+x^4+x^3+x^2+1
    case 9: return 0b1000010001;     // x^9+x^4+1
    case 10: return 0b10000001001;   // x^10+x^3+1
    case 11: return 0b100000000101;  // x^11+x^2+1
    case 12: return 0b1000001010011; // x^12+x^6+x^4+x+1
    default:
      throw std::invalid_argument("GF2m: m must be in [2,12]");
  }
}
}  // namespace

GF2m::GF2m(unsigned m)
    : m_(m),
      order_((1u << m) - 1u),
      prim_poly_(primitive_poly_for(m)),
      exp_(2 * order_, 0),
      log_(1u << m, 0) {
  Element x = 1;
  for (std::uint32_t i = 0; i < order_; ++i) {
    exp_[i] = x;
    log_[x] = i;
    x <<= 1;
    if (x & (1u << m_)) x ^= prim_poly_;
  }
  for (std::uint32_t i = 0; i < order_; ++i) exp_[order_ + i] = exp_[i];
}

GF2m::Element GF2m::alpha_pow(std::int64_t e) const {
  const auto ord = static_cast<std::int64_t>(order_);
  std::int64_t r = e % ord;
  if (r < 0) r += ord;
  return exp_[static_cast<std::size_t>(r)];
}

std::uint32_t GF2m::log(Element a) const {
  if (a == 0) throw std::domain_error("GF2m::log(0)");
  return log_[a];
}

GF2m::Element GF2m::mul(Element a, Element b) const {
  if (a == 0 || b == 0) return 0;
  return exp_[log_[a] + log_[b]];
}

GF2m::Element GF2m::inv(Element a) const {
  if (a == 0) throw std::domain_error("GF2m::inv(0)");
  return exp_[order_ - log_[a]];
}

GF2m::Element GF2m::div(Element a, Element b) const {
  if (b == 0) throw std::domain_error("GF2m::div by 0");
  if (a == 0) return 0;
  return exp_[log_[a] + order_ - log_[b]];
}

GF2m::Element GF2m::pow(Element a, std::int64_t e) const {
  if (a == 0) {
    if (e == 0) return 1;
    if (e < 0) throw std::domain_error("GF2m::pow(0, negative)");
    return 0;
  }
  const auto ord = static_cast<std::int64_t>(order_);
  std::int64_t r = (static_cast<std::int64_t>(log_[a]) * (e % ord)) % ord;
  if (r < 0) r += ord;
  return exp_[static_cast<std::size_t>(r)];
}

}  // namespace pufatt::ecc
