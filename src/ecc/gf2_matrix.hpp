// Dense linear algebra over GF(2): matrix-vector products, row reduction,
// null spaces and linear solves.  Used to derive parity-check matrices
// (e.g. for RM(1,5)), to compute syndromes, and to invert the syndrome map
// in the helper-data scheme.
#pragma once

#include <optional>
#include <vector>

#include "support/bitvec.hpp"

namespace pufatt::ecc {

/// A rows x cols matrix over GF(2), stored as one BitVector per row.
class Gf2Matrix {
 public:
  Gf2Matrix() = default;
  Gf2Matrix(std::size_t rows, std::size_t cols);

  /// Builds from explicit rows (all must share a length).
  explicit Gf2Matrix(std::vector<support::BitVector> rows);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return cols_; }

  bool get(std::size_t r, std::size_t c) const { return rows_[r].get(c); }
  void set(std::size_t r, std::size_t c, bool v) { rows_[r].set(c, v); }
  const support::BitVector& row(std::size_t r) const { return rows_.at(r); }
  const std::vector<support::BitVector>& row_vectors() const { return rows_; }

  /// y = M * x (x has cols() bits; result has rows() bits; each output bit
  /// is the GF(2) inner product of a row with x).
  support::BitVector mul_vector(const support::BitVector& x) const;

  /// Rank via Gaussian elimination (does not modify *this).
  std::size_t rank() const;

  /// Basis of the null space {x : M x = 0}, one BitVector per basis vector.
  std::vector<support::BitVector> null_space() const;

  /// One particular solution of M x = b, or nullopt if inconsistent.
  std::optional<support::BitVector> solve(const support::BitVector& b) const;

  /// Matrix transpose.
  Gf2Matrix transposed() const;

 private:
  std::size_t cols_ = 0;
  std::vector<support::BitVector> rows_;
};

}  // namespace pufatt::ecc
