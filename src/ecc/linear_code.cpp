#include "ecc/linear_code.hpp"

#include <stdexcept>

namespace pufatt::ecc {

std::optional<support::BitVector> BinaryCode::decode_soft_to_codeword(
    const std::vector<double>& llr) const {
  if (llr.size() != n()) {
    throw std::invalid_argument("decode_soft_to_codeword: wrong length");
  }
  support::BitVector hard(n());
  for (std::size_t i = 0; i < llr.size(); ++i) hard.set(i, llr[i] < 0.0);
  return decode_to_codeword(hard);
}

}  // namespace pufatt::ecc
