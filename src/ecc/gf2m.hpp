// Finite field GF(2^m) arithmetic via log/antilog tables.
// Substrate for the BCH codec (generator-polynomial construction,
// syndrome evaluation, Berlekamp-Massey, Chien search).
#pragma once

#include <cstdint>
#include <vector>

namespace pufatt::ecc {

/// GF(2^m) for 2 <= m <= 12, built over a fixed primitive polynomial per m.
/// Elements are represented as unsigned integers < 2^m (polynomial basis).
class GF2m {
 public:
  using Element = std::uint32_t;

  explicit GF2m(unsigned m);

  unsigned m() const { return m_; }
  /// Field size minus one = multiplicative order = 2^m - 1.
  std::uint32_t order() const { return order_; }
  /// The primitive polynomial used (bit i = coefficient of x^i).
  std::uint32_t primitive_poly() const { return prim_poly_; }

  /// alpha^e (e taken mod order).
  Element alpha_pow(std::int64_t e) const;
  /// Discrete log base alpha; throws std::domain_error for 0.
  std::uint32_t log(Element a) const;

  Element add(Element a, Element b) const { return a ^ b; }
  Element mul(Element a, Element b) const;
  Element inv(Element a) const;
  Element div(Element a, Element b) const;
  Element pow(Element a, std::int64_t e) const;

 private:
  unsigned m_;
  std::uint32_t order_;
  std::uint32_t prim_poly_;
  std::vector<Element> exp_;       // exp_[i] = alpha^i, doubled for wraparound
  std::vector<std::uint32_t> log_; // log_[a] for a in [1, 2^m)
};

}  // namespace pufatt::ecc
