// Syndrome-construction helper data ("reverse fuzzy extractor",
// Herrewege et al., FC 2012 — the paper's reference [8]).
//
// Prover side (cheap, pure hardware): h = H * y', the syndrome of the noisy
// PUF response.  Verifier side: knowing a reference response y_ref with
// HD(y_ref, y') <= t, reconstruct the *exact* y' the prover used:
//     y0   := any word with syndrome h          (precomputed pseudo-inverse)
//     c    := decode_to_codeword(y_ref XOR y0)  (= y' XOR y0 when close)
//     y'   = c XOR y0
// Both parties then run the obfuscation network on the identical y' — the
// paper's requirement that "obfuscation must be performed after error
// correction to maintain verifiability".
#pragma once

#include <optional>
#include <vector>

#include "ecc/linear_code.hpp"
#include "support/bitvec.hpp"

namespace pufatt::ecc {

class SyndromeHelper {
 public:
  /// `code` must outlive this object.
  explicit SyndromeHelper(const BinaryCode& code);

  /// Helper data for a measured response (n bits in, n-k bits out).
  support::BitVector generate(const support::BitVector& response) const;

  /// Reconstructs the prover's response from the verifier's reference and
  /// the received helper data; nullopt if the decoder gives up (reference
  /// too far from the prover's measurement).
  std::optional<support::BitVector> reproduce(
      const support::BitVector& reference,
      const support::BitVector& helper) const;

  /// Soft-decision reconstruction: `reference_llr[i]` > 0 means reference
  /// bit i is 0, with magnitude = reliability.  The PUF emulator supplies
  /// the race margin of each bit as its reliability, which lets the decoder
  /// discount exactly the metastability-prone bits and reconstruct well
  /// beyond the hard-decision radius.
  std::optional<support::BitVector> reproduce_soft(
      const std::vector<double>& reference_llr,
      const support::BitVector& helper) const;

  std::size_t response_bits() const { return code_->n(); }
  std::size_t helper_bits() const { return code_->n() - code_->k(); }

  /// Bits of min-entropy surrendered by publishing the helper data (the
  /// syndrome reveals n-k linear combinations of the response).
  std::size_t leaked_bits() const { return helper_bits(); }

 private:
  const BinaryCode* code_;
  /// preimage_[j] = a fixed word whose syndrome is the j-th unit vector;
  /// any word with syndrome h is the XOR of preimages of h's set bits.
  std::vector<support::BitVector> preimage_;
};

}  // namespace pufatt::ecc
