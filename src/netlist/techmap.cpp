#include "netlist/techmap.hpp"

#include <set>
#include <vector>

namespace pufatt::netlist {

namespace {

bool is_logic(GateKind kind) {
  return kind != GateKind::kInput && kind != GateKind::kConst0 &&
         kind != GateKind::kConst1;
}

}  // namespace

std::size_t estimate_luts(const Netlist& net, const TechmapOptions& options) {
  const auto& gates = net.gates();
  // Fanout counts (outputs count as extra fanout so output drivers are
  // never absorbed into a consumer).
  std::vector<std::size_t> fanout(gates.size(), 0);
  for (const auto& g : gates) {
    for (const auto f : g.fanins) ++fanout[f];
  }
  for (const auto& out : net.outputs()) ++fanout[out.gate];

  // absorbed[i] == true: gate i was merged into its unique consumer's LUT.
  std::vector<bool> absorbed(gates.size(), false);
  // support[i]: set of primary-input/const/unabsorbed-gate ids feeding the
  // LUT rooted at i.
  std::vector<std::set<GateId>> support(gates.size());

  std::size_t luts = 0;
  for (std::size_t id = 0; id < gates.size(); ++id) {
    const Gate& g = gates[id];
    if (!is_logic(g.kind)) continue;

    std::set<GateId>& sup = support[id];
    for (const auto f : g.fanins) {
      const Gate& fg = gates[f];
      const bool mergeable =
          is_logic(fg.kind) && fanout[f] == 1 &&
          !(options.keep_mux_stages && fg.kind == GateKind::kMux);
      if (mergeable && !support[f].empty()) {
        // Tentatively merge the fanin cone.
        std::set<GateId> merged = sup;
        merged.insert(support[f].begin(), support[f].end());
        if (merged.size() <= options.lut_inputs) {
          sup = std::move(merged);
          absorbed[f] = true;
          continue;
        }
      }
      sup.insert(f);
    }
    // Buf/Not over a single net always fit; larger supports that exceed k
    // inputs would need tree decomposition — approximate with a ceil.
    if (sup.size() > options.lut_inputs) {
      // Decompose into a tree of k-LUTs: each extra LUT covers k-1 new
      // inputs after the first k.
      const std::size_t k = options.lut_inputs;
      const std::size_t extra = sup.size() - k;
      luts += 1 + (extra + (k - 2)) / (k - 1);
      continue;
    }
  }

  for (std::size_t id = 0; id < gates.size(); ++id) {
    if (is_logic(gates[id].kind) && !absorbed[id] &&
        support[id].size() <= options.lut_inputs) {
      ++luts;
    }
  }
  return luts;
}

std::size_t count_xor_gates(const Netlist& net) {
  std::size_t n = 0;
  for (const auto& g : net.gates()) {
    if (g.kind == GateKind::kXor || g.kind == GateKind::kXnor) ++n;
  }
  return n;
}

ResourceEstimate estimate_component(const std::string& name,
                                    const Netlist& net,
                                    const SequentialResources& seq,
                                    const TechmapOptions& options) {
  ResourceEstimate est;
  est.component = name;
  est.luts = estimate_luts(net, options);
  est.registers = seq.registers;
  est.xors = count_xor_gates(net);
  est.bram = seq.bram;
  est.fifo = seq.fifo;
  return est;
}

}  // namespace pufatt::netlist
