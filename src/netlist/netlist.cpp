#include "netlist/netlist.hpp"

#include <stdexcept>

namespace pufatt::netlist {

const char* to_string(GateKind kind) {
  switch (kind) {
    case GateKind::kInput: return "INPUT";
    case GateKind::kConst0: return "CONST0";
    case GateKind::kConst1: return "CONST1";
    case GateKind::kBuf: return "BUF";
    case GateKind::kNot: return "NOT";
    case GateKind::kAnd: return "AND";
    case GateKind::kOr: return "OR";
    case GateKind::kNand: return "NAND";
    case GateKind::kNor: return "NOR";
    case GateKind::kXor: return "XOR";
    case GateKind::kXnor: return "XNOR";
    case GateKind::kMux: return "MUX";
  }
  return "?";
}

int required_fanins(GateKind kind) {
  switch (kind) {
    case GateKind::kInput:
    case GateKind::kConst0:
    case GateKind::kConst1:
      return 0;
    case GateKind::kBuf:
    case GateKind::kNot:
      return 1;
    case GateKind::kMux:
      return 3;
    case GateKind::kAnd:
    case GateKind::kOr:
    case GateKind::kNand:
    case GateKind::kNor:
    case GateKind::kXor:
    case GateKind::kXnor:
      return -1;  // any >= 2
  }
  return 0;
}

GateId Netlist::add_input(const std::string& name, Placement place) {
  const auto id = static_cast<GateId>(gates_.size());
  gates_.push_back(Gate{GateKind::kInput, {}, place});
  inputs_.push_back(id);
  input_names_.push_back(name);
  return id;
}

GateId Netlist::add_gate(GateKind kind, std::vector<GateId> fanins,
                         Placement place) {
  if (kind == GateKind::kInput) {
    throw std::invalid_argument("use add_input for primary inputs");
  }
  const int need = required_fanins(kind);
  if (need >= 0 && fanins.size() != static_cast<std::size_t>(need)) {
    throw std::invalid_argument(std::string("wrong fanin count for ") +
                                to_string(kind));
  }
  if (need < 0 && fanins.size() < 2) {
    throw std::invalid_argument(std::string("need >= 2 fanins for ") +
                                to_string(kind));
  }
  const auto id = static_cast<GateId>(gates_.size());
  for (const auto f : fanins) {
    if (f >= id) {
      throw std::invalid_argument("fanin must precede gate (topological order)");
    }
  }
  gates_.push_back(Gate{kind, std::move(fanins), place});
  return id;
}

void Netlist::add_output(const std::string& name, GateId gate) {
  if (gate >= gates_.size()) {
    throw std::invalid_argument("output refers to unknown gate");
  }
  outputs_.push_back(OutputPort{name, gate});
}

const std::string& Netlist::input_name(std::size_t i) const {
  return input_names_.at(i);
}

void Netlist::reorder_inputs(const std::vector<std::size_t>& perm) {
  const std::size_t n = inputs_.size();
  if (perm.size() != n) {
    throw std::invalid_argument("reorder_inputs: wrong permutation size");
  }
  std::vector<bool> seen(n, false);
  for (const std::size_t p : perm) {
    if (p >= n || seen[p]) {
      throw std::invalid_argument("reorder_inputs: not a permutation");
    }
    seen[p] = true;
  }
  std::vector<GateId> inputs(n);
  std::vector<std::string> names(n);
  for (std::size_t k = 0; k < n; ++k) {
    inputs[k] = inputs_[perm[k]];
    names[k] = std::move(input_names_[perm[k]]);
  }
  inputs_ = std::move(inputs);
  input_names_ = std::move(names);
}

std::vector<bool> Netlist::evaluate(
    const std::vector<bool>& input_values) const {
  if (input_values.size() != inputs_.size()) {
    throw std::invalid_argument("evaluate: wrong number of input values");
  }
  std::vector<bool> value(gates_.size(), false);
  // Bind by pin position, not encounter order — the two differ after
  // reorder_inputs.
  for (std::size_t k = 0; k < inputs_.size(); ++k) {
    value[inputs_[k]] = input_values[k];
  }
  for (std::size_t id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    switch (g.kind) {
      case GateKind::kInput:
        break;
      case GateKind::kConst0:
        value[id] = false;
        break;
      case GateKind::kConst1:
        value[id] = true;
        break;
      case GateKind::kBuf:
        value[id] = value[g.fanins[0]];
        break;
      case GateKind::kNot:
        value[id] = !value[g.fanins[0]];
        break;
      case GateKind::kMux:
        value[id] = value[g.fanins[0]] ? value[g.fanins[2]]
                                       : value[g.fanins[1]];
        break;
      case GateKind::kAnd:
      case GateKind::kNand: {
        bool v = true;
        for (const auto f : g.fanins) v = v && value[f];
        value[id] = (g.kind == GateKind::kNand) ? !v : v;
        break;
      }
      case GateKind::kOr:
      case GateKind::kNor: {
        bool v = false;
        for (const auto f : g.fanins) v = v || value[f];
        value[id] = (g.kind == GateKind::kNor) ? !v : v;
        break;
      }
      case GateKind::kXor:
      case GateKind::kXnor: {
        bool v = false;
        for (const auto f : g.fanins) v = v != value[f];
        value[id] = (g.kind == GateKind::kXnor) ? !v : v;
        break;
      }
    }
  }
  return value;
}

std::map<GateKind, std::size_t> Netlist::kind_histogram() const {
  std::map<GateKind, std::size_t> hist;
  for (const auto& g : gates_) ++hist[g.kind];
  return hist;
}

std::size_t Netlist::logic_gate_count() const {
  std::size_t n = 0;
  for (const auto& g : gates_) {
    if (g.kind != GateKind::kInput && g.kind != GateKind::kConst0 &&
        g.kind != GateKind::kConst1) {
      ++n;
    }
  }
  return n;
}

}  // namespace pufatt::netlist
