// Netlist builders for every circuit the paper's system contains:
// full adders, ripple-carry adders, the dual-ALU PUF core, the XOR
// obfuscation network, syndrome-generator XOR trees and programmable delay
// lines (PDLs) for the FPGA model.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"
#include "support/bitvec.hpp"

namespace pufatt::netlist {

/// Result of instantiating one ripple-carry adder.
struct AdderPorts {
  std::vector<GateId> sum;  ///< sum bits, LSB first (size = width)
  GateId carry_out = 0;     ///< final carry
  /// Gates of each full-adder stage (5 per stage).  Needed by the
  /// directed-aging tuner, which stresses one specific stage of one ALU.
  std::vector<std::vector<GateId>> stage_gates;
};

/// Builds a single full adder on existing nets.  Gates are placed at
/// `place`.  Returns {sum, carry_out}.
struct FullAdderPorts {
  GateId sum = 0;
  GateId carry_out = 0;
};
FullAdderPorts build_full_adder(Netlist& net, GateId a, GateId b, GateId cin,
                                Placement place);

/// Builds a `width`-bit ripple-carry adder over existing operand nets
/// (a and b must each have `width` entries, LSB first).  `origin` is the
/// placement of bit 0; successive bits advance +1 in x (carry chains are
/// physically linear, which matters for spatial variation).
AdderPorts build_ripple_carry_adder(Netlist& net,
                                    const std::vector<GateId>& a,
                                    const std::vector<GateId>& b,
                                    GateId carry_in, Placement origin);

/// The ALU PUF circuit of the paper (Figure 1, generalized to any width):
/// two structurally identical ripple-carry adders fed by the *same*
/// challenge inputs; the race between corresponding sum bits drives the
/// arbiters (modeled in src/timingsim, not as gates).
struct AluPufCircuit {
  Netlist net;
  std::size_t width = 0;
  /// 2*width shared challenge inputs: a[0..w-1] then b[0..w-1].
  std::vector<GateId> challenge_inputs;
  /// Sum-bit nets of ALU0 / ALU1 (width entries each) plus carry-out:
  /// response bit i races sum0[i] against sum1[i]; bit `width` races the
  /// carry-outs, giving width+1 racable bits (we use the first
  /// `response_bits` of them).
  std::vector<GateId> race0;
  std::vector<GateId> race1;
  /// Full-adder stage gates per ALU (width entries of 5 gates each), for
  /// the directed-aging response tuner.
  std::vector<std::vector<GateId>> stage_gates0;
  std::vector<std::vector<GateId>> stage_gates1;
};

struct AluPufLayout {
  /// Grid distance between the two ALUs.  The paper places them in close
  /// proximity so coarse-grained (systematic) variation is common-mode.
  double alu_separation = 2.0;
  /// Die origin of the PUF block.
  double origin_x = 0.0;
  double origin_y = 0.0;
};

/// Builds the dual-adder PUF circuit.  The challenge is the concatenation
/// of the two add operands, as in the paper ("the add instruction reads the
/// PUF challenge (operands) from the registers").
AluPufCircuit build_alu_puf_circuit(std::size_t width,
                                    const AluPufLayout& layout = {});

/// The two-phase XOR obfuscation network as a gate netlist (used for
/// resource estimation; the functional model lives in src/alupuf).
/// Inputs: 8 raw responses of `2n` bits each.  Phase 1 folds each response
/// i to n bits (y[i] XOR y[i+n]); phase 2 XORs the four concatenated 2n-bit
/// words.  For 2n=32 this yields exactly the 224 XOR gates of Table 1.
Netlist build_obfuscation_circuit(std::size_t half_width_n);

/// Syndrome generator as combinational XOR trees from a parity-check
/// matrix: output j = XOR of response bits where H(j, i) = 1.
/// `parity_rows` holds one BitVector of length n per syndrome bit.
Netlist build_syndrome_circuit(
    const std::vector<support::BitVector>& parity_rows);

/// A complete multi-operation ALU (the component the paper *reuses*:
/// "modern processors contain redundancies in their ALU structure,
/// resulting in low hardware overhead").  Operations, selected by a 3-bit
/// opcode: 000 ADD, 001 SUB, 010 AND, 011 OR, 100 XOR, 101 NOR,
/// 110 pass-A, 111 pass-B.  The adder core is the same ripple-carry
/// structure the PUF races.
struct AluPorts {
  std::vector<GateId> a_in;
  std::vector<GateId> b_in;
  std::vector<GateId> opcode;  ///< 3 bits
  std::vector<GateId> result;  ///< width bits
  GateId carry_out = 0;        ///< adder/subtractor carry
  /// Sum nets of the internal adder (the PUF's raced signals when the ALU
  /// doubles as a PUF).
  std::vector<GateId> adder_sum;
};
AluPorts build_full_alu(Netlist& net, std::size_t width, Placement origin);

/// A programmable delay line bank: `lines` independent signals each passing
/// through `stages` cascaded MUX stages (select inputs are static
/// configuration, modeled as constants).  Used by the FPGA model for delay
/// tuning (Majzoobi et al., WIFS 2010) and by the Table-1 estimator.
Netlist build_pdl_bank(std::size_t lines, std::size_t stages);

}  // namespace pufatt::netlist
