// FPGA technology mapping estimator.
//
// Maps a gate netlist onto k-input LUTs (Virtex-5 style, k = 6) with a
// greedy single-fanout absorption pass, and reports the resource vector of
// the paper's Table 1 (LUTs / registers / XORs / BRAM / FIFO).  Registers,
// BRAM and FIFO are sequential resources that do not appear in our purely
// combinational netlists; callers pass them through `SequentialResources`.
#pragma once

#include <cstddef>
#include <string>

#include "netlist/netlist.hpp"

namespace pufatt::netlist {

/// Sequential resources supplied by the component model (flip-flops for
/// arbiters/latches/state machines, block RAM for stored matrices, FIFOs
/// for communication cores).
struct SequentialResources {
  std::size_t registers = 0;
  std::size_t bram = 0;
  std::size_t fifo = 0;
};

/// Resource vector matching the columns of the paper's Table 1.
struct ResourceEstimate {
  std::string component;
  std::size_t luts = 0;
  std::size_t registers = 0;
  std::size_t xors = 0;  ///< dedicated XOR/carry resources (response path)
  std::size_t bram = 0;
  std::size_t fifo = 0;
};

struct TechmapOptions {
  std::size_t lut_inputs = 6;  ///< Virtex-5 6-LUT
  /// When true, each MUX stage maps to its own LUT (PDL stages must not be
  /// merged: each stage's distinct physical delay is the whole point).
  bool keep_mux_stages = true;
};

/// Number of k-LUTs after greedy absorption of single-fanout fanins.
std::size_t estimate_luts(const Netlist& net, const TechmapOptions& options = {});

/// Number of XOR gates in the netlist (reported in Table 1's XOR column;
/// on Virtex-5 these map to the dedicated XOR/carry structures).
std::size_t count_xor_gates(const Netlist& net);

/// Full estimate for one named component.
ResourceEstimate estimate_component(const std::string& name,
                                    const Netlist& net,
                                    const SequentialResources& seq,
                                    const TechmapOptions& options = {});

}  // namespace pufatt::netlist
