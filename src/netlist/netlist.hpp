// Gate-level netlist intermediate representation.
//
// This is the substrate for every hardware model in the repository: the ALU
// PUF's raced adders, the syndrome generator, the obfuscation network and the
// FPGA programmable delay lines are all Netlist instances.  The timing
// simulator (src/timingsim) and the variation model (src/variation) consume
// this IR; the technology mapper (techmap.hpp) estimates FPGA resources from
// it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pufatt::netlist {

using GateId = std::uint32_t;

/// Combinational gate kinds.  `kInput` is a primary input; `kConst0/1` are
/// tie-offs; `kMux` selects fanin[1] (sel=0) or fanin[2] (sel=1) with
/// fanin[0] as the select.
enum class GateKind : std::uint8_t {
  kInput,
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
  kMux,
};

/// Printable name of a gate kind.
const char* to_string(GateKind kind);

/// Number of fanins a kind requires; 0 means "any >= 2" (And/Or/...).
int required_fanins(GateKind kind);

/// Physical placement of a gate on the die, in arbitrary grid units.
/// The quad-tree variation model correlates gates by position, so builders
/// must assign meaningful coordinates (two adjacent ALUs share coarse
/// quadrants and therefore see correlated systematic variation — the effect
/// the paper relies on for robustness).
struct Placement {
  double x = 0.0;
  double y = 0.0;
};

/// One gate: kind, fanin gate ids and placement.
struct Gate {
  GateKind kind = GateKind::kInput;
  std::vector<GateId> fanins;
  Placement place;
};

/// A named primary output.
struct OutputPort {
  std::string name;
  GateId gate = 0;
};

/// A combinational netlist.  Gates are stored in topological order by
/// construction: every fanin id must be smaller than the gate's own id
/// (enforced in add_gate), so a single forward pass evaluates the circuit.
class Netlist {
 public:
  /// Adds a primary input and returns its id.
  GateId add_input(const std::string& name, Placement place = {});

  /// Adds a gate; throws std::invalid_argument if the fanin count does not
  /// match the kind or any fanin id is >= the new gate's id.
  GateId add_gate(GateKind kind, std::vector<GateId> fanins,
                  Placement place = {});

  /// Registers a primary output.
  void add_output(const std::string& name, GateId gate);

  /// Rebinds the primary-input pin order: after the call, input position k
  /// is the gate that previously held position perm[k] (names move with
  /// their gates).  Throws std::invalid_argument unless `perm` is a
  /// permutation of [0, num_inputs).  Evaluation (`evaluate`) honors the
  /// new order; the timing engines reject permuted netlists instead (see
  /// timingsim::TimingSimulator).
  void reorder_inputs(const std::vector<std::size_t>& perm);

  std::size_t num_gates() const { return gates_.size(); }
  std::size_t num_inputs() const { return inputs_.size(); }
  const Gate& gate(GateId id) const { return gates_.at(id); }
  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<GateId>& inputs() const { return inputs_; }
  const std::vector<OutputPort>& outputs() const { return outputs_; }

  /// Name of input i (in input-creation order).
  const std::string& input_name(std::size_t i) const;

  /// Pure functional evaluation: values[i] for input i (in input order).
  /// Returns the value of every gate.  Used by tests as the golden model
  /// against the timing simulator.
  std::vector<bool> evaluate(const std::vector<bool>& input_values) const;

  /// Gate count per kind (Input/Const excluded), for reporting.
  std::map<GateKind, std::size_t> kind_histogram() const;

  /// Count of gates excluding inputs and constants.
  std::size_t logic_gate_count() const;

 private:
  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<std::string> input_names_;
  std::vector<OutputPort> outputs_;
};

}  // namespace pufatt::netlist
