#include "netlist/builder.hpp"

#include <stdexcept>
#include <string>

namespace pufatt::netlist {

FullAdderPorts build_full_adder(Netlist& net, GateId a, GateId b, GateId cin,
                                Placement place) {
  // sum = a ^ b ^ cin; cout = (a & b) | ((a ^ b) & cin).
  // Built from 2-input gates so the carry chain has realistic per-stage
  // depth (the delay the PUF races lives in this chain).
  const GateId axb = net.add_gate(GateKind::kXor, {a, b}, place);
  const GateId sum = net.add_gate(GateKind::kXor, {axb, cin}, place);
  const GateId g = net.add_gate(GateKind::kAnd, {a, b}, place);
  const GateId p = net.add_gate(GateKind::kAnd, {axb, cin}, place);
  const GateId cout = net.add_gate(GateKind::kOr, {g, p}, place);
  return FullAdderPorts{sum, cout};
}

AdderPorts build_ripple_carry_adder(Netlist& net,
                                    const std::vector<GateId>& a,
                                    const std::vector<GateId>& b,
                                    GateId carry_in, Placement origin) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("ripple_carry_adder: operand size mismatch");
  }
  AdderPorts ports;
  GateId carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Placement place{origin.x + static_cast<double>(i), origin.y};
    const GateId first = static_cast<GateId>(net.num_gates());
    const auto fa = build_full_adder(net, a[i], b[i], carry, place);
    std::vector<GateId> stage;
    for (GateId g = first; g < net.num_gates(); ++g) stage.push_back(g);
    ports.stage_gates.push_back(std::move(stage));
    ports.sum.push_back(fa.sum);
    carry = fa.carry_out;
  }
  ports.carry_out = carry;
  return ports;
}

AluPufCircuit build_alu_puf_circuit(std::size_t width,
                                    const AluPufLayout& layout) {
  if (width == 0 || width > 64) {
    throw std::invalid_argument("alu_puf_circuit: width must be in [1,64]");
  }
  AluPufCircuit circuit;
  circuit.width = width;
  Netlist& net = circuit.net;

  // Shared challenge inputs (operand a then operand b), placed between the
  // two ALUs so wire asymmetry is minimal by construction.
  std::vector<GateId> a_bits, b_bits;
  for (std::size_t i = 0; i < width; ++i) {
    a_bits.push_back(net.add_input(
        "a" + std::to_string(i),
        Placement{layout.origin_x + static_cast<double>(i),
                  layout.origin_y + layout.alu_separation / 2.0}));
  }
  for (std::size_t i = 0; i < width; ++i) {
    b_bits.push_back(net.add_input(
        "b" + std::to_string(i),
        Placement{layout.origin_x + static_cast<double>(i),
                  layout.origin_y + layout.alu_separation / 2.0}));
  }
  circuit.challenge_inputs = a_bits;
  circuit.challenge_inputs.insert(circuit.challenge_inputs.end(),
                                  b_bits.begin(), b_bits.end());

  const GateId zero = net.add_gate(GateKind::kConst0, {},
                                   Placement{layout.origin_x, layout.origin_y});

  // ALU 0 at y = origin, ALU 1 at y = origin + separation: structurally
  // identical, physically adjacent (the paper's close-proximity argument).
  const auto alu0 = build_ripple_carry_adder(
      net, a_bits, b_bits, zero,
      Placement{layout.origin_x, layout.origin_y});
  const auto alu1 = build_ripple_carry_adder(
      net, a_bits, b_bits, zero,
      Placement{layout.origin_x, layout.origin_y + layout.alu_separation});

  circuit.race0 = alu0.sum;
  circuit.race0.push_back(alu0.carry_out);
  circuit.race1 = alu1.sum;
  circuit.race1.push_back(alu1.carry_out);
  circuit.stage_gates0 = alu0.stage_gates;
  circuit.stage_gates1 = alu1.stage_gates;

  for (std::size_t i = 0; i < circuit.race0.size(); ++i) {
    net.add_output("o" + std::to_string(i), circuit.race0[i]);
    net.add_output("o'" + std::to_string(i), circuit.race1[i]);
  }
  return circuit;
}

Netlist build_obfuscation_circuit(std::size_t half_width_n) {
  const std::size_t n = half_width_n;
  const std::size_t two_n = 2 * n;
  Netlist net;
  // 8 raw responses y_0..y_7 of 2n bits each.
  std::vector<std::vector<GateId>> y(8);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t i = 0; i < two_n; ++i) {
      y[r].push_back(net.add_input(
          "y" + std::to_string(r) + "_" + std::to_string(i),
          Placement{static_cast<double>(i), static_cast<double>(r)}));
    }
  }
  // Phase 1: fold each 2n-bit response to n bits: a_r[i] = y_r[i] ^ y_r[i+n].
  std::vector<std::vector<GateId>> folded(8);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      folded[r].push_back(
          net.add_gate(GateKind::kXor, {y[r][i], y[r][i + n]},
                       Placement{static_cast<double>(i),
                                 static_cast<double>(r) + 0.5}));
    }
  }
  // Concatenate pairs into four 2n-bit words b_0..b_3, then z = XOR of all
  // four (3 XOR levels per output bit = 3*2n gates).
  std::vector<std::vector<GateId>> b(4);
  for (std::size_t j = 0; j < 4; ++j) {
    b[j] = folded[2 * j];
    b[j].insert(b[j].end(), folded[2 * j + 1].begin(), folded[2 * j + 1].end());
  }
  for (std::size_t i = 0; i < two_n; ++i) {
    const GateId x01 = net.add_gate(GateKind::kXor, {b[0][i], b[1][i]},
                                    Placement{static_cast<double>(i), 9.0});
    const GateId x23 = net.add_gate(GateKind::kXor, {b[2][i], b[3][i]},
                                    Placement{static_cast<double>(i), 9.5});
    const GateId z = net.add_gate(GateKind::kXor, {x01, x23},
                                  Placement{static_cast<double>(i), 10.0});
    net.add_output("z" + std::to_string(i), z);
  }
  return net;
}

Netlist build_syndrome_circuit(
    const std::vector<support::BitVector>& parity_rows) {
  if (parity_rows.empty()) {
    throw std::invalid_argument("syndrome_circuit: empty parity matrix");
  }
  const std::size_t n = parity_rows.front().size();
  Netlist net;
  std::vector<GateId> y;
  for (std::size_t i = 0; i < n; ++i) {
    y.push_back(net.add_input("y" + std::to_string(i),
                              Placement{static_cast<double>(i), 0.0}));
  }
  for (std::size_t j = 0; j < parity_rows.size(); ++j) {
    const auto& row = parity_rows[j];
    if (row.size() != n) {
      throw std::invalid_argument("syndrome_circuit: ragged parity matrix");
    }
    std::vector<GateId> terms;
    for (std::size_t i = 0; i < n; ++i) {
      if (row.get(i)) terms.push_back(y[i]);
    }
    GateId out;
    const Placement place{static_cast<double>(j), 2.0};
    if (terms.empty()) {
      out = net.add_gate(GateKind::kConst0, {}, place);
    } else if (terms.size() == 1) {
      out = net.add_gate(GateKind::kBuf, {terms[0]}, place);
    } else {
      // Balanced XOR tree of 2-input gates.
      std::vector<GateId> level = terms;
      while (level.size() > 1) {
        std::vector<GateId> next;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
          next.push_back(
              net.add_gate(GateKind::kXor, {level[i], level[i + 1]}, place));
        }
        if (level.size() % 2 != 0) next.push_back(level.back());
        level = std::move(next);
      }
      out = level[0];
    }
    net.add_output("h" + std::to_string(j), out);
  }
  return net;
}

AluPorts build_full_alu(Netlist& net, std::size_t width, Placement origin) {
  if (width == 0 || width > 64) {
    throw std::invalid_argument("build_full_alu: width must be in [1,64]");
  }
  AluPorts ports;
  for (std::size_t i = 0; i < width; ++i) {
    ports.a_in.push_back(net.add_input(
        "alu_a" + std::to_string(i),
        Placement{origin.x + static_cast<double>(i), origin.y}));
  }
  for (std::size_t i = 0; i < width; ++i) {
    ports.b_in.push_back(net.add_input(
        "alu_b" + std::to_string(i),
        Placement{origin.x + static_cast<double>(i), origin.y}));
  }
  for (int i = 0; i < 3; ++i) {
    ports.opcode.push_back(net.add_input("alu_op" + std::to_string(i),
                                         Placement{origin.x, origin.y}));
  }
  const GateId op0 = ports.opcode[0];
  const GateId op1 = ports.opcode[1];
  const GateId op2 = ports.opcode[2];

  // Subtraction shares the adder: b XOR sub, carry-in = sub.
  // sub is active for opcode 001 (op0=1, op1=0, op2=0); the adder is used
  // for opcodes 00x.
  const GateId not_op1 = net.add_gate(GateKind::kNot, {op1}, origin);
  const GateId not_op2 = net.add_gate(GateKind::kNot, {op2}, origin);
  const GateId is_addsub_hi =
      net.add_gate(GateKind::kAnd, {not_op1, not_op2}, origin);
  const GateId sub = net.add_gate(GateKind::kAnd, {op0, is_addsub_hi}, origin);

  std::vector<GateId> b_eff;
  for (std::size_t i = 0; i < width; ++i) {
    b_eff.push_back(net.add_gate(
        GateKind::kXor, {ports.b_in[i], sub},
        Placement{origin.x + static_cast<double>(i), origin.y + 0.5}));
  }
  const auto adder = build_ripple_carry_adder(
      net, ports.a_in, b_eff, sub,
      Placement{origin.x, origin.y + 1.0});
  ports.adder_sum = adder.sum;
  ports.carry_out = adder.carry_out;

  // Bitwise units + per-bit result mux tree selected by the opcode.
  for (std::size_t i = 0; i < width; ++i) {
    const Placement place{origin.x + static_cast<double>(i), origin.y + 2.0};
    const GateId and_g =
        net.add_gate(GateKind::kAnd, {ports.a_in[i], ports.b_in[i]}, place);
    const GateId or_g =
        net.add_gate(GateKind::kOr, {ports.a_in[i], ports.b_in[i]}, place);
    const GateId xor_g =
        net.add_gate(GateKind::kXor, {ports.a_in[i], ports.b_in[i]}, place);
    const GateId nor_g =
        net.add_gate(GateKind::kNor, {ports.a_in[i], ports.b_in[i]}, place);
    // Level 1 (select by op0): {addsub, addsub} {and, or} {xor, nor} {a, b}.
    const GateId m0 =
        net.add_gate(GateKind::kMux, {op0, adder.sum[i], adder.sum[i]}, place);
    const GateId m1 = net.add_gate(GateKind::kMux, {op0, and_g, or_g}, place);
    const GateId m2 = net.add_gate(GateKind::kMux, {op0, xor_g, nor_g}, place);
    const GateId m3 = net.add_gate(
        GateKind::kMux, {op0, ports.a_in[i], ports.b_in[i]}, place);
    // Level 2 (op1), level 3 (op2).
    const GateId m01 = net.add_gate(GateKind::kMux, {op1, m0, m1}, place);
    const GateId m23 = net.add_gate(GateKind::kMux, {op1, m2, m3}, place);
    const GateId result = net.add_gate(GateKind::kMux, {op2, m01, m23}, place);
    ports.result.push_back(result);
    net.add_output("alu_r" + std::to_string(i), result);
  }
  return ports;
}

Netlist build_pdl_bank(std::size_t lines, std::size_t stages) {
  Netlist net;
  for (std::size_t l = 0; l < lines; ++l) {
    const GateId in = net.add_input("d" + std::to_string(l),
                                    Placement{0.0, static_cast<double>(l)});
    GateId sig = in;
    for (std::size_t s = 0; s < stages; ++s) {
      const Placement place{static_cast<double>(s) + 1.0,
                            static_cast<double>(l)};
      // Each PDL stage is a MUX whose select is a static configuration bit
      // (tied off here; the FPGA model overrides per-stage delays).  Both
      // data inputs carry the same logical signal; only the physical path
      // (and hence delay) differs.
      const GateId sel = net.add_gate(GateKind::kConst0, {}, place);
      sig = net.add_gate(GateKind::kMux, {sel, sig, sig}, place);
    }
    net.add_output("q" + std::to_string(l), sig);
  }
  return net;
}

}  // namespace pufatt::netlist
