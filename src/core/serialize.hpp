// Binary serialization of enrollment state and protocol messages.
//
// A real deployment stores one EnrollmentRecord per device in the
// verifier's database: the delay table H (the only secret in the system),
// the expected memory image and the timing profile.  The format is a
// little-endian tagged container with an explicit version, so databases
// survive library upgrades; readers validate sizes and magic before
// trusting any field.
//
// Protocol messages additionally get a *wire frame* — magic, explicit
// lengths and a trailing CRC-32 — because they cross the unreliable radio:
// the deserializers must turn any truncated, oversized, bit-flipped or
// otherwise malformed byte stream into a clean SerializationError, never
// undefined slicing.  The attestation session layer relies on the CRC to
// classify corrupted frames as transport faults (retryable) rather than
// protocol rejections (evidence).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/enrollment.hpp"
#include "core/protocol.hpp"

namespace pufatt::core {

/// Raised on malformed or incompatible input.
class SerializationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes a record to a binary stream.
void save_record(std::ostream& out, const EnrollmentRecord& record);

/// Reads a record; throws SerializationError on bad magic/version/shape.
EnrollmentRecord load_record(std::istream& in);

/// File-path convenience wrappers.
void save_record_file(const std::string& path, const EnrollmentRecord& record);
EnrollmentRecord load_record_file(const std::string& path);

// --- protocol wire frames ---------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected) over a byte buffer.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

/// Largest helper transcript a verifier will accept on the wire.  Honest
/// transcripts carry 8 words per PUF call; anything bigger than this is an
/// attempted resource-exhaustion, not a response.
constexpr std::size_t kMaxWireHelperWords = 1u << 20;

/// Hard ceiling on any single protocol frame, sized to the largest frame an
/// honest peer can produce: a response carrying kMaxWireHelperWords helper
/// words plus its header and trailing CRC.  Every deserializer rejects a
/// buffer above this bound before touching its contents, and every stream
/// decoder (src/net FrameDecoder) must check a *declared* length against it
/// before allocating or buffering a frame body — an attacker-supplied length
/// field must never size an allocation.
constexpr std::size_t kMaxWireFrameBytes =
    4 + 4 + 8 * 4 + kMaxWireHelperWords * 4 + 4;

/// Request frame: [magic][nonce lo][nonce hi][crc32].
std::vector<std::uint8_t> serialize_request(const AttestationRequest& request);
AttestationRequest deserialize_request(const std::uint8_t* data,
                                       std::size_t size);

/// Response frame: [magic][helper count][checksum x8][helpers...][crc32].
/// Deserialization rejects bad magic, truncated or oversized buffers,
/// helper counts that are absurd or not a multiple of 8 (8 words per PUF
/// call), and any frame whose CRC does not match.
std::vector<std::uint8_t> serialize_response(
    const AttestationResponse& response);
AttestationResponse deserialize_response(const std::uint8_t* data,
                                         std::size_t size);

inline AttestationRequest deserialize_request(
    const std::vector<std::uint8_t>& frame) {
  return deserialize_request(frame.data(), frame.size());
}
inline AttestationResponse deserialize_response(
    const std::vector<std::uint8_t>& frame) {
  return deserialize_response(frame.data(), frame.size());
}

}  // namespace pufatt::core
