// Binary serialization of enrollment state.
//
// A real deployment stores one EnrollmentRecord per device in the
// verifier's database: the delay table H (the only secret in the system),
// the expected memory image and the timing profile.  The format is a
// little-endian tagged container with an explicit version, so databases
// survive library upgrades; readers validate sizes and magic before
// trusting any field.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "core/enrollment.hpp"

namespace pufatt::core {

/// Raised on malformed or incompatible input.
class SerializationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes a record to a binary stream.
void save_record(std::ostream& out, const EnrollmentRecord& record);

/// Reads a record; throws SerializationError on bad magic/version/shape.
EnrollmentRecord load_record(std::istream& in);

/// File-path convenience wrappers.
void save_record_file(const std::string& path, const EnrollmentRecord& record);
EnrollmentRecord load_record_file(const std::string& path);

}  // namespace pufatt::core
