// Fault-injecting wrapper around the analytic channel model.
//
// `Channel` answers "how long does a payload take" on a perfect link; a
// deployed sensor-node radio also *loses* packets, *corrupts* bits and
// *jitters* latency.  FaultyChannel layers a seeded, fully deterministic
// fault process on top of the same bandwidth/latency parameters so that
// protocol-level robustness experiments (false-rejection rate, degraded
// distributed audits) are reproducible from a single seed.
//
// Fault processes:
//   - independent packet loss (per-packet Bernoulli),
//   - bit corruption (per-bit Bernoulli, sampled by geometric skipping so
//     large payloads stay cheap),
//   - latency jitter: mean-preserving lognormal multiplier on the
//     propagation latency (the serialization time is deterministic),
//   - optional Gilbert-Elliott two-state burst/outage model: the channel
//     wanders between a good and a bad state with given transition
//     probabilities, and the bad state applies its own (much worse) loss
//     and corruption rates.  This models radio dead zones and interference
//     bursts, which defeat naive retry policies tuned on i.i.d. loss.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/channel.hpp"
#include "support/rng.hpp"

namespace pufatt::core {

struct FaultParams {
  double loss_prob = 0.0;        ///< per-packet loss probability (good state)
  double bit_error_rate = 0.0;   ///< per-bit corruption probability (good state)
  double jitter_sigma = 0.0;     ///< lognormal sigma on latency (0 = none)

  /// Gilbert-Elliott burst model; disabled unless `burst` is set.
  bool burst = false;
  double p_good_to_bad = 0.01;     ///< per-packet transition into the bad state
  double p_bad_to_good = 0.25;     ///< per-packet recovery probability
  double bad_loss_prob = 0.9;      ///< loss probability while in the bad state
  double bad_bit_error_rate = 0.0; ///< corruption rate while in the bad state

  /// A link with every fault knob at zero behaves exactly like `Channel`.
  bool perfect() const {
    return loss_prob == 0.0 && bit_error_rate == 0.0 && jitter_sigma == 0.0 &&
           !burst;
  }
};

/// Running totals of everything the channel did to traffic.
struct FaultCounters {
  std::size_t packets_sent = 0;
  std::size_t packets_lost = 0;
  std::size_t packets_corrupted = 0;  ///< delivered with >= 1 flipped bit
  std::uint64_t bits_flipped = 0;
  std::size_t bad_state_packets = 0;  ///< packets sent while in the GE bad state
};

class FaultyChannel : public Channel {
 public:
  FaultyChannel(const ChannelParams& params, const FaultParams& faults,
                std::uint64_t seed);

  /// What happened to one packet.
  struct Delivery {
    bool delivered = false;
    std::size_t bits_flipped = 0;  ///< 0 when the frame arrived intact
    double transfer_us = 0.0;      ///< sampled one-way time (when delivered)
  };

  /// Sends `frame` one way.  On a corrupting delivery the frame's bits are
  /// flipped *in place*; the caller's integrity layer (frame CRC) is what
  /// detects it.  `timed_bytes` is the payload size used for the timing
  /// model — by default the frame size, but protocol code passes the
  /// logical payload so the time-bound calibration matches the analytic
  /// `Channel` (framing overhead is part of the link's own accounting).
  Delivery transmit(std::vector<std::uint8_t>& frame);
  Delivery transmit(std::vector<std::uint8_t>& frame, std::size_t timed_bytes);

  /// Loss/jitter-only variant for traffic whose bytes are not modelled.
  Delivery transmit_opaque(std::size_t payload_bytes);

  const FaultParams& faults() const { return faults_; }
  const FaultCounters& counters() const { return counters_; }
  bool in_bad_state() const { return bad_state_; }

 private:
  /// Advances the GE state machine and returns this packet's (loss, ber).
  std::pair<double, double> step_state();
  double sample_transfer_us(std::size_t payload_bytes);
  std::size_t corrupt(std::vector<std::uint8_t>& frame, double ber);

  FaultParams faults_;
  support::Xoshiro256pp rng_;
  FaultCounters counters_;
  bool bad_state_ = false;
};

}  // namespace pufatt::core
