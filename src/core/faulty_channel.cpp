#include "core/faulty_channel.hpp"

#include <cmath>
#include <stdexcept>

namespace pufatt::core {

FaultyChannel::FaultyChannel(const ChannelParams& params,
                             const FaultParams& faults, std::uint64_t seed)
    : Channel(params), faults_(faults), rng_(seed) {
  auto probability = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!probability(faults.loss_prob) || !probability(faults.bit_error_rate) ||
      !probability(faults.p_good_to_bad) ||
      !probability(faults.p_bad_to_good) ||
      !probability(faults.bad_loss_prob) ||
      !probability(faults.bad_bit_error_rate)) {
    throw std::invalid_argument("FaultyChannel: probability out of [0, 1]");
  }
  if (faults.jitter_sigma < 0.0) {
    throw std::invalid_argument("FaultyChannel: negative jitter sigma");
  }
}

std::pair<double, double> FaultyChannel::step_state() {
  if (!faults_.burst) return {faults_.loss_prob, faults_.bit_error_rate};
  if (bad_state_) {
    if (rng_.bernoulli(faults_.p_bad_to_good)) bad_state_ = false;
  } else {
    if (rng_.bernoulli(faults_.p_good_to_bad)) bad_state_ = true;
  }
  if (bad_state_) {
    ++counters_.bad_state_packets;
    return {faults_.bad_loss_prob, faults_.bad_bit_error_rate};
  }
  return {faults_.loss_prob, faults_.bit_error_rate};
}

double FaultyChannel::sample_transfer_us(std::size_t payload_bytes) {
  double latency = params().latency_us;
  if (faults_.jitter_sigma > 0.0) {
    // Mean-preserving lognormal: E[exp(sigma*g - sigma^2/2)] = 1, so the
    // average latency stays at the nominal value the verifier budgets for
    // while the tail stretches out.
    const double s = faults_.jitter_sigma;
    latency *= std::exp(s * rng_.gaussian() - 0.5 * s * s);
  }
  return latency + static_cast<double>(payload_bytes) * 8.0 /
                       params().bandwidth_bps * 1e6;
}

std::size_t FaultyChannel::corrupt(std::vector<std::uint8_t>& frame,
                                   double ber) {
  if (ber <= 0.0 || frame.empty()) return 0;
  const std::size_t total_bits = frame.size() * 8;
  std::size_t flips = 0;
  if (ber >= 1.0) {
    for (auto& byte : frame) byte = static_cast<std::uint8_t>(~byte);
    return total_bits;
  }
  // Geometric skipping: the gap to the next flipped bit is geometric with
  // parameter ber, so cost scales with the number of flips, not the bits.
  const double log1m = std::log1p(-ber);
  std::size_t bit = 0;
  while (true) {
    double u = rng_.uniform();
    if (u <= 0.0) u = 1e-300;  // uniform() is [0,1); guard the log
    bit += static_cast<std::size_t>(std::floor(std::log(u) / log1m));
    if (bit >= total_bits) break;
    frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    ++flips;
    ++bit;
  }
  return flips;
}

FaultyChannel::Delivery FaultyChannel::transmit(
    std::vector<std::uint8_t>& frame) {
  return transmit(frame, frame.size());
}

FaultyChannel::Delivery FaultyChannel::transmit(std::vector<std::uint8_t>& frame,
                                                std::size_t timed_bytes) {
  Delivery delivery;
  ++counters_.packets_sent;
  const auto [loss, ber] = step_state();
  if (rng_.bernoulli(loss)) {
    ++counters_.packets_lost;
    return delivery;
  }
  delivery.delivered = true;
  delivery.transfer_us = sample_transfer_us(timed_bytes);
  delivery.bits_flipped = corrupt(frame, ber);
  if (delivery.bits_flipped > 0) {
    ++counters_.packets_corrupted;
    counters_.bits_flipped += delivery.bits_flipped;
  }
  return delivery;
}

FaultyChannel::Delivery FaultyChannel::transmit_opaque(
    std::size_t payload_bytes) {
  Delivery delivery;
  ++counters_.packets_sent;
  const auto [loss, ber] = step_state();
  (void)ber;  // bits are not modelled for opaque traffic
  if (rng_.bernoulli(loss)) {
    ++counters_.packets_lost;
    return delivery;
  }
  delivery.delivered = true;
  delivery.transfer_us = sample_transfer_us(payload_bytes);
  return delivery;
}

}  // namespace pufatt::core
