// Glue between the CPU's PUF port, the ALU PUF pipeline and the SWAT
// checksum engine.  Keeps cpu/ and swat/ independent of alupuf/.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "alupuf/pipeline.hpp"
#include "cpu/machine.hpp"
#include "support/rng.hpp"
#include "swat/checksum.hpp"

namespace pufatt::core {

/// Packs a 64-bit raw challenge into the PUF's 2*width-bit challenge form;
/// requires width == 32 (the protocol configuration).
alupuf::Challenge challenge_from_u64(std::uint64_t challenge);

/// Converts between helper BitVectors and the 32-bit helper words that
/// travel through the CPU FIFO and the protocol messages.
std::uint32_t helper_to_word(const support::BitVector& helper);
support::BitVector helper_from_word(std::uint32_t word,
                                    std::size_t helper_bits);

/// cpu::PufPort backed by a physical PufDevice: collects the 8 PUF-mode
/// `add` challenges, then runs the full pipeline (races, syndromes,
/// obfuscation) on `pend`.  The capture deadline from the CPU clock is
/// honoured per evaluation, so overclocking corrupts responses exactly as
/// in Section 4.2 of the paper.
class DevicePufPort final : public cpu::PufPort {
 public:
  DevicePufPort(const alupuf::PufDevice& device, variation::Environment env,
                support::Xoshiro256pp& rng);

  void start() override;
  void feed(std::uint64_t challenge, double cycle_ps) override;
  std::uint32_t finish(std::vector<std::uint32_t>& helper_words) override;

  /// Register setup time of the response latch (T_set in the paper's
  /// T_ALU + T_set < T_cycle condition).
  void set_setup_ps(double setup_ps) { setup_ps_ = setup_ps; }

 private:
  const alupuf::PufDevice* device_;
  variation::Environment env_;
  support::Xoshiro256pp* rng_;
  double setup_ps_ = 20.0;
  std::array<alupuf::Challenge, 8> challenges_;
  std::size_t fed_ = 0;
  double cycle_ps_ = 0.0;
};

/// swat::PufQuery adapter over a physical device (native prover path):
/// records the helper words of every call into `transcript`.
swat::PufQuery device_query(const alupuf::PufDevice& device,
                            const variation::Environment& env,
                            support::Xoshiro256pp& rng,
                            std::vector<std::uint32_t>& transcript);

/// swat::PufQuery adapter over the verifier's emulator: consumes helper
/// words from `transcript` in order; yields nullopt on reconstruction
/// failure or transcript exhaustion.  When `total_weighted_ps` is non-null
/// it accumulates the reliability-weighted reconstruction distance over
/// every call, which the verifier checks against a whole-transcript budget.
swat::PufQuery emulator_query(const alupuf::PufEmulator& emulator,
                              const std::vector<std::uint32_t>& transcript,
                              std::size_t& cursor,
                              double* total_weighted_ps = nullptr);

}  // namespace pufatt::core
