// Challenge/response-pair database verification (the paper's first PUF
// verification option, Section 2).
//
// A trusted party records raw CRPs before deployment; later, a verifier
// authenticates the device by replaying stored challenges and comparing
// responses within a noise threshold.  Entries are single-use to prevent
// replay.  The paper notes the drawbacks this module makes concrete:
// storage grows linearly and the number of authentications is bounded —
// which is why PUFatt itself uses the emulation model H instead.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "alupuf/alu_puf.hpp"
#include "support/rng.hpp"

namespace pufatt::core {

class CrpDatabase {
 public:
  /// Records `count` database entries from the genuine device at
  /// enrollment time; each entry holds `challenges_per_entry` CRPs so one
  /// authentication decision aggregates enough response bits to separate
  /// the intra-chip noise (~11%) from the inter-chip distance (~36%)
  /// reliably.  The stored references are single measurements.
  static CrpDatabase collect(const alupuf::AluPuf& device, std::size_t count,
                             support::Xoshiro256pp& rng,
                             std::size_t challenges_per_entry = 8);

  struct AuthResult {
    bool accepted = false;
    bool exhausted = false;    ///< no unused entries left
    std::size_t distance = 0;  ///< summed HD over the entry's challenges
    std::size_t compared_bits = 0;

    /// An exhausted database yields no evidence about the device at all —
    /// tallies must treat it like a starved transport (PR 1's inconclusive
    /// != rejection rule), never as a rejection.  Callers branch on this,
    /// not on `!accepted`.
    bool conclusive() const { return !exhausted; }
  };

  /// Authenticates a device claiming to be the enrolled one: replays the
  /// next unused entry's challenges and accepts iff the summed HD stays
  /// under `threshold_fraction` of the compared bits (default 22%, between
  /// between the intra-chip ~11% and inter-chip ~36% rates).
  AuthResult authenticate(const alupuf::AluPuf& device,
                          support::Xoshiro256pp& rng,
                          double threshold_fraction = 0.22,
                          const variation::Environment& env =
                              variation::Environment::nominal());

  std::size_t size() const { return entries_.size(); }
  /// Unused entries left (O(1): entries are consumed strictly in order, so
  /// a cursor past the last consumed entry is the full accounting).
  std::size_t remaining() const { return entries_.size() - next_unused_; }
  /// Entries consumed so far; entry indices below this are spent.
  std::size_t consumed() const { return next_unused_; }
  /// Storage footprint in bytes (the scalability drawback, quantified).
  std::size_t storage_bytes() const;

  /// Marks every entry up to and including `index` as consumed — the
  /// durable store's WAL replay primitive.  Monotonic (the cursor only
  /// advances) and idempotent, so replaying the same consume marker twice,
  /// or on top of a snapshot that already folded it, is harmless.  Throws
  /// std::out_of_range when `index` is not a valid entry.
  void mark_consumed_through(std::size_t index);

  // --- persistence ----------------------------------------------------------
  // The consume cursor is part of the serialized state: a reloaded
  // database keeps refusing entries that were spent before the save, which
  // is the whole anti-replay point of a single-use database.

  /// Writes the full database (entries + consume cursor) to a binary
  /// stream; byte-stable for a given state.
  void save(std::ostream& out) const;

  /// Reads a database written by save(); throws SerializationError (see
  /// core/serialize.hpp) on malformed input.
  static CrpDatabase load(std::istream& in);

 private:
  struct Entry {
    std::vector<alupuf::Challenge> challenges;
    std::vector<alupuf::RawResponse> references;
    bool used = false;
  };
  std::vector<Entry> entries_;
  /// Index of the next unused entry; everything below it is consumed.
  /// Replaces the O(n) scan each authenticate()/remaining() used to do.
  std::size_t next_unused_ = 0;
};

}  // namespace pufatt::core
