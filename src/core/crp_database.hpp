// Challenge/response-pair database verification (the paper's first PUF
// verification option, Section 2).
//
// A trusted party records raw CRPs before deployment; later, a verifier
// authenticates the device by replaying stored challenges and comparing
// responses within a noise threshold.  Entries are single-use to prevent
// replay.  The paper notes the drawbacks this module makes concrete:
// storage grows linearly and the number of authentications is bounded —
// which is why PUFatt itself uses the emulation model H instead.
#pragma once

#include <cstdint>
#include <vector>

#include "alupuf/alu_puf.hpp"
#include "support/rng.hpp"

namespace pufatt::core {

class CrpDatabase {
 public:
  /// Records `count` database entries from the genuine device at
  /// enrollment time; each entry holds `challenges_per_entry` CRPs so one
  /// authentication decision aggregates enough response bits to separate
  /// the intra-chip noise (~11%) from the inter-chip distance (~36%)
  /// reliably.  The stored references are single measurements.
  static CrpDatabase collect(const alupuf::AluPuf& device, std::size_t count,
                             support::Xoshiro256pp& rng,
                             std::size_t challenges_per_entry = 8);

  struct AuthResult {
    bool accepted = false;
    bool exhausted = false;    ///< no unused entries left
    std::size_t distance = 0;  ///< summed HD over the entry's challenges
    std::size_t compared_bits = 0;
  };

  /// Authenticates a device claiming to be the enrolled one: replays the
  /// next unused entry's challenges and accepts iff the summed HD stays
  /// under `threshold_fraction` of the compared bits (default 22%, between
  /// between the intra-chip ~11% and inter-chip ~36% rates).
  AuthResult authenticate(const alupuf::AluPuf& device,
                          support::Xoshiro256pp& rng,
                          double threshold_fraction = 0.22,
                          const variation::Environment& env =
                              variation::Environment::nominal());

  std::size_t size() const { return entries_.size(); }
  /// Unused entries left (O(1): entries are consumed strictly in order, so
  /// a cursor past the last consumed entry is the full accounting).
  std::size_t remaining() const { return entries_.size() - next_unused_; }
  /// Storage footprint in bytes (the scalability drawback, quantified).
  std::size_t storage_bytes() const;

 private:
  struct Entry {
    std::vector<alupuf::Challenge> challenges;
    std::vector<alupuf::RawResponse> references;
    bool used = false;
  };
  std::vector<Entry> entries_;
  /// Index of the next unused entry; everything below it is consumed.
  /// Replaces the O(n) scan each authenticate()/remaining() used to do.
  std::size_t next_unused_ = 0;
};

}  // namespace pufatt::core
