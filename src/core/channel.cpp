#include "core/channel.hpp"

#include <stdexcept>

namespace pufatt::core {

Channel::Channel(const ChannelParams& params) : params_(params) {
  if (params.bandwidth_bps <= 0.0 || params.latency_us < 0.0) {
    throw std::invalid_argument("Channel: bad parameters");
  }
}

double Channel::transfer_us(std::size_t payload_bytes) const {
  return params_.latency_us +
         static_cast<double>(payload_bytes) * 8.0 / params_.bandwidth_bps * 1e6;
}

double Channel::round_trip_us(std::size_t request_bytes,
                              std::size_t response_bytes) const {
  return transfer_us(request_bytes) + transfer_us(response_bytes);
}

}  // namespace pufatt::core
