#include "core/crp_database.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "core/serialize.hpp"

namespace pufatt::core {

namespace {

// Little-endian primitives, matching core/serialize's record format.
constexpr std::uint32_t kCrpMagic = 0x50435244;  // "PCRD"
constexpr std::uint32_t kCrpVersion = 1;
constexpr std::uint32_t kMaxCrpEntries = 1u << 20;
constexpr std::uint32_t kMaxCrpBits = 1u << 16;

void write_u32(std::ostream& out, std::uint32_t v) {
  unsigned char bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  out.write(reinterpret_cast<const char*>(bytes), 4);
}

std::uint32_t read_u32(std::istream& in) {
  unsigned char bytes[4];
  in.read(reinterpret_cast<char*>(bytes), 4);
  if (!in) throw SerializationError("CrpDatabase: unexpected end of input");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
  }
  return v;
}

void write_bits(std::ostream& out, const support::BitVector& v) {
  write_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const auto word : v.words()) {
    write_u32(out, static_cast<std::uint32_t>(word));
    write_u32(out, static_cast<std::uint32_t>(word >> 32));
  }
}

support::BitVector read_bits(std::istream& in) {
  const std::uint32_t bits = read_u32(in);
  if (bits > kMaxCrpBits) {
    throw SerializationError("CrpDatabase: bit vector too large");
  }
  support::BitVector v(bits);
  const std::size_t words = (bits + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t lo = read_u32(in);
    const std::uint64_t hi = read_u32(in);
    const std::uint64_t word = lo | (hi << 32);
    for (std::size_t b = 0; b < 64; ++b) {
      const std::size_t i = 64 * w + b;
      if (i < bits) v.set(i, (word >> b) & 1);
    }
  }
  return v;
}

}  // namespace

CrpDatabase CrpDatabase::collect(const alupuf::AluPuf& device,
                                 std::size_t count,
                                 support::Xoshiro256pp& rng,
                                 std::size_t challenges_per_entry) {
  CrpDatabase db;
  db.entries_.reserve(count);
  const auto env = variation::Environment::nominal();
  for (std::size_t i = 0; i < count; ++i) {
    Entry entry;
    for (std::size_t c = 0; c < challenges_per_entry; ++c) {
      entry.challenges.push_back(
          support::BitVector::random(device.challenge_bits(), rng));
      entry.references.push_back(device.eval(entry.challenges.back(), env, rng));
    }
    db.entries_.push_back(std::move(entry));
  }
  return db;
}

CrpDatabase::AuthResult CrpDatabase::authenticate(
    const alupuf::AluPuf& device, support::Xoshiro256pp& rng,
    double threshold_fraction, const variation::Environment& env) {
  AuthResult result;
  if (next_unused_ >= entries_.size()) {
    result.exhausted = true;
    return result;
  }
  Entry& entry = entries_[next_unused_++];
  entry.used = true;  // single-use: consumed even on failure (anti-replay)
  for (std::size_t c = 0; c < entry.challenges.size(); ++c) {
    const auto response = device.eval(entry.challenges[c], env, rng);
    result.distance += response.hamming_distance(entry.references[c]);
    result.compared_bits += response.size();
  }
  result.accepted =
      static_cast<double>(result.distance) <=
      threshold_fraction * static_cast<double>(result.compared_bits);
  return result;
}

void CrpDatabase::mark_consumed_through(std::size_t index) {
  if (index >= entries_.size()) {
    throw std::out_of_range("CrpDatabase: consume marker past the last entry");
  }
  for (std::size_t i = next_unused_; i <= index; ++i) entries_[i].used = true;
  next_unused_ = std::max(next_unused_, index + 1);
}

void CrpDatabase::save(std::ostream& out) const {
  write_u32(out, kCrpMagic);
  write_u32(out, kCrpVersion);
  write_u32(out, static_cast<std::uint32_t>(entries_.size()));
  write_u32(out, static_cast<std::uint32_t>(next_unused_));
  for (const auto& entry : entries_) {
    write_u32(out, static_cast<std::uint32_t>(entry.challenges.size()));
    for (std::size_t c = 0; c < entry.challenges.size(); ++c) {
      write_bits(out, entry.challenges[c]);
      write_bits(out, entry.references[c]);
    }
  }
  if (!out) throw SerializationError("CrpDatabase: write failed");
}

CrpDatabase CrpDatabase::load(std::istream& in) {
  if (read_u32(in) != kCrpMagic) {
    throw SerializationError("CrpDatabase: bad magic");
  }
  if (read_u32(in) != kCrpVersion) {
    throw SerializationError("CrpDatabase: unsupported version");
  }
  const std::uint32_t count = read_u32(in);
  if (count > kMaxCrpEntries) {
    throw SerializationError("CrpDatabase: entry count too large");
  }
  const std::uint32_t cursor = read_u32(in);
  if (cursor > count) {
    throw SerializationError("CrpDatabase: consume cursor past the end");
  }
  CrpDatabase db;
  db.entries_.resize(count);
  for (auto& entry : db.entries_) {
    const std::uint32_t challenges = read_u32(in);
    if (challenges > kMaxCrpEntries) {
      throw SerializationError("CrpDatabase: entry too large");
    }
    entry.challenges.reserve(challenges);
    entry.references.reserve(challenges);
    for (std::uint32_t c = 0; c < challenges; ++c) {
      entry.challenges.push_back(read_bits(in));
      entry.references.push_back(read_bits(in));
    }
  }
  db.next_unused_ = cursor;
  for (std::size_t i = 0; i < cursor; ++i) db.entries_[i].used = true;
  return db;
}

std::size_t CrpDatabase::storage_bytes() const {
  if (entries_.empty()) return 0;
  std::size_t bits = 0;
  for (std::size_t c = 0; c < entries_.front().challenges.size(); ++c) {
    bits += entries_.front().challenges[c].size() +
            entries_.front().references[c].size();
  }
  return entries_.size() * ((bits + 7) / 8);
}

}  // namespace pufatt::core
