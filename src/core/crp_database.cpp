#include "core/crp_database.hpp"

namespace pufatt::core {

CrpDatabase CrpDatabase::collect(const alupuf::AluPuf& device,
                                 std::size_t count,
                                 support::Xoshiro256pp& rng,
                                 std::size_t challenges_per_entry) {
  CrpDatabase db;
  db.entries_.reserve(count);
  const auto env = variation::Environment::nominal();
  for (std::size_t i = 0; i < count; ++i) {
    Entry entry;
    for (std::size_t c = 0; c < challenges_per_entry; ++c) {
      entry.challenges.push_back(
          support::BitVector::random(device.challenge_bits(), rng));
      entry.references.push_back(device.eval(entry.challenges.back(), env, rng));
    }
    db.entries_.push_back(std::move(entry));
  }
  return db;
}

CrpDatabase::AuthResult CrpDatabase::authenticate(
    const alupuf::AluPuf& device, support::Xoshiro256pp& rng,
    double threshold_fraction, const variation::Environment& env) {
  AuthResult result;
  if (next_unused_ >= entries_.size()) {
    result.exhausted = true;
    return result;
  }
  Entry& entry = entries_[next_unused_++];
  entry.used = true;  // single-use: consumed even on failure (anti-replay)
  for (std::size_t c = 0; c < entry.challenges.size(); ++c) {
    const auto response = device.eval(entry.challenges[c], env, rng);
    result.distance += response.hamming_distance(entry.references[c]);
    result.compared_bits += response.size();
  }
  result.accepted =
      static_cast<double>(result.distance) <=
      threshold_fraction * static_cast<double>(result.compared_bits);
  return result;
}

std::size_t CrpDatabase::storage_bytes() const {
  if (entries_.empty()) return 0;
  std::size_t bits = 0;
  for (std::size_t c = 0; c < entries_.front().challenges.size(); ++c) {
    bits += entries_.front().challenges[c].size() +
            entries_.front().references[c].size();
  }
  return entries_.size() * ((bits + 7) / 8);
}

}  // namespace pufatt::core
