#include "core/puf_adapter.hpp"

#include <stdexcept>

namespace pufatt::core {

using support::BitVector;

alupuf::Challenge challenge_from_u64(std::uint64_t challenge) {
  return BitVector(64, challenge);
}

std::uint32_t helper_to_word(const BitVector& helper) {
  if (helper.size() > 32) {
    throw std::invalid_argument("helper_to_word: helper exceeds 32 bits");
  }
  return static_cast<std::uint32_t>(helper.to_u64());
}

BitVector helper_from_word(std::uint32_t word, std::size_t helper_bits) {
  return BitVector(helper_bits, word);
}

DevicePufPort::DevicePufPort(const alupuf::PufDevice& device,
                             variation::Environment env,
                             support::Xoshiro256pp& rng)
    : device_(&device), env_(env), rng_(&rng) {
  if (device.raw_puf().response_bits() != 32) {
    throw std::invalid_argument(
        "DevicePufPort: protocol requires a 32-bit PUF (64-bit challenges)");
  }
  for (auto& c : challenges_) c = BitVector(64);
}

void DevicePufPort::start() {
  fed_ = 0;
  cycle_ps_ = 0.0;
}

void DevicePufPort::feed(std::uint64_t challenge, double cycle_ps) {
  if (fed_ < challenges_.size()) {
    challenges_[fed_] = challenge_from_u64(challenge);
  }
  ++fed_;
  cycle_ps_ = cycle_ps;
}

std::uint32_t DevicePufPort::finish(std::vector<std::uint32_t>& helper_words) {
  if (fed_ != challenges_.size()) {
    throw cpu::MachineError(
        "PUF block: pend after " + std::to_string(fed_) +
        " PUF-mode adds (hardware expects exactly 8)");
  }
  const alupuf::ClockConstraint clock{cycle_ps_, setup_ps_};
  const auto out = device_->query_raw(challenges_, env_, *rng_, &clock);
  helper_words.clear();
  for (const auto& h : out.helpers) helper_words.push_back(helper_to_word(h));
  return static_cast<std::uint32_t>(out.z.to_u64());
}

swat::PufQuery device_query(const alupuf::PufDevice& device,
                            const variation::Environment& env,
                            support::Xoshiro256pp& rng,
                            std::vector<std::uint32_t>& transcript) {
  return [&device, env, &rng, &transcript](
             const std::array<std::uint64_t, 8>& challenges)
             -> std::optional<std::uint32_t> {
    std::array<alupuf::Challenge, 8> raw;
    for (std::size_t r = 0; r < 8; ++r) raw[r] = challenge_from_u64(challenges[r]);
    const auto out = device.query_raw(raw, env, rng);
    for (const auto& h : out.helpers) transcript.push_back(helper_to_word(h));
    return static_cast<std::uint32_t>(out.z.to_u64());
  };
}

swat::PufQuery emulator_query(const alupuf::PufEmulator& emulator,
                              const std::vector<std::uint32_t>& transcript,
                              std::size_t& cursor,
                              double* total_weighted_ps) {
  return [&emulator, &transcript, &cursor, total_weighted_ps](
             const std::array<std::uint64_t, 8>& challenges)
             -> std::optional<std::uint32_t> {
    if (cursor + 8 > transcript.size()) return std::nullopt;
    const std::size_t helper_bits = emulator.helper_bits();
    std::vector<support::BitVector> helpers;
    helpers.reserve(8);
    for (std::size_t h = 0; h < 8; ++h) {
      helpers.push_back(helper_from_word(transcript[cursor + h], helper_bits));
    }
    cursor += 8;
    std::array<alupuf::Challenge, 8> raw;
    for (std::size_t r = 0; r < 8; ++r) raw[r] = challenge_from_u64(challenges[r]);
    const auto z = emulator.emulate_raw(raw, helpers);
    if (total_weighted_ps != nullptr) {
      *total_weighted_ps += emulator.last_call_stats().weighted_ps;
    }
    if (!z) return std::nullopt;
    return static_cast<std::uint32_t>(z->to_u64());
  };
}

}  // namespace pufatt::core
