#include "core/protocol.hpp"

#include <stdexcept>

#include "core/puf_adapter.hpp"
#include "cpu/assembler.hpp"
#include "swat/program.hpp"

namespace pufatt::core {

std::uint32_t seed_from_nonce(std::uint64_t nonce) {
  auto seed = static_cast<std::uint32_t>(nonce ^ (nonce >> 32));
  return seed == 0 ? 1u : seed;
}

const char* to_string(VerifyStatus status) {
  switch (status) {
    case VerifyStatus::kAccepted: return "accepted";
    case VerifyStatus::kTimeExceeded: return "time exceeded";
    case VerifyStatus::kChecksumMismatch: return "checksum mismatch";
    case VerifyStatus::kPufReconstructionFailed: return "PUF reconstruction failed";
  }
  return "?";
}

Verifier::Verifier(EnrollmentRecord record, const ecc::BinaryCode& code,
                   const ChannelParams& channel, double slack)
    : record_(std::move(record)),
      emulator_(record_.profile.puf_config.width, record_.model, code,
                record_.profile.puf_config.layout),
      channel_(channel),
      slack_(slack) {
  if (slack < 0.0) throw std::invalid_argument("Verifier: negative slack");
}

AttestationRequest Verifier::make_request(support::Xoshiro256pp& rng) const {
  return AttestationRequest{rng.next()};
}

double Verifier::deadline_us(const AttestationResponse& response) const {
  const double compute_us = static_cast<double>(record_.honest_cycles) /
                            record_.profile.base_clock_mhz;
  return compute_us * (1.0 + slack_) +
         channel_.round_trip_us(sizeof(std::uint64_t), response.wire_bytes());
}

VerifyResult Verifier::verify(const AttestationRequest& request,
                              const AttestationResponse& response,
                              double elapsed_us) const {
  VerifyResult result;
  result.elapsed_us = elapsed_us;
  result.deadline_us = deadline_us(response);

  if (elapsed_us > result.deadline_us) {
    result.status = VerifyStatus::kTimeExceeded;
    return result;
  }

  // Recompute r with PUF.Emulate(), consuming the helper transcript.
  std::size_t cursor = 0;
  double total_weighted_ps = 0.0;
  const auto expected = swat::compute_checksum(
      record_.enrolled_image, seed_from_nonce(request.nonce),
      record_.profile.swat,
      emulator_query(emulator_, response.helper_words, cursor,
                     &total_weighted_ps));
  if (!expected.ok) {
    result.status = VerifyStatus::kPufReconstructionFailed;
    return result;
  }
  // Whole-transcript response-authenticity budget: the summed weighted
  // reconstruction distance must stay within the honest noise envelope.
  if (expected.puf_calls > 0 &&
      total_weighted_ps >
          max_avg_weighted_ps_ * static_cast<double>(expected.puf_calls)) {
    result.status = VerifyStatus::kPufReconstructionFailed;
    return result;
  }
  if (cursor != response.helper_words.size()) {
    // Trailing garbage in the transcript: treat as malformed.
    result.status = VerifyStatus::kPufReconstructionFailed;
    return result;
  }
  result.status = expected.state == response.checksum
                      ? VerifyStatus::kAccepted
                      : VerifyStatus::kChecksumMismatch;
  return result;
}

namespace {

/// Sizes the redirect-attack program: instruction count is independent of
/// the field values (all fit 16-bit immediates), so two passes suffice.
swat::RedirectAttack size_attack(const swat::SwatParams& params,
                                 const swat::SwatLayout& layout,
                                 std::uint32_t copy_addr) {
  swat::RedirectAttack attack;
  attack.protected_words = 1;
  attack.copy_addr = copy_addr;
  const auto probe =
      cpu::assemble(swat::generate_swat_source(params, layout, attack)).words;
  attack.protected_words = static_cast<std::uint32_t>(probe.size());
  const auto sized =
      cpu::assemble(swat::generate_swat_source(params, layout, attack)).words;
  if (sized.size() != probe.size()) {
    throw std::logic_error("redirect attack program size not stable");
  }
  return attack;
}

}  // namespace

CpuProver::CpuProver(const alupuf::PufDevice& device,
                     const EnrollmentRecord& record, Variant variant,
                     std::uint64_t rng_seed, std::optional<double> clock_mhz)
    : device_(&device),
      record_(record),
      variant_(variant),
      rng_(rng_seed),
      clock_mhz_(clock_mhz.value_or(record.profile.base_clock_mhz)) {
  const auto& profile = record_.profile;
  const std::size_t helper_capacity =
      static_cast<std::size_t>(profile.swat.rounds / profile.swat.puf_interval) * 8;
  const std::uint32_t copy_addr = static_cast<std::uint32_t>(
      profile.layout.helper_addr + helper_capacity + 64);

  // Base memory: the enrolled image in the attested region, zeros above.
  std::size_t mem_size = copy_addr + profile.swat.attest_words + 256;
  memory_.assign(mem_size, 0);
  for (std::size_t i = 0; i < record_.enrolled_image.size(); ++i) {
    memory_[i] = record_.enrolled_image[i];
  }

  if (variant_ == Variant::kRedirectMalware) {
    // The adversary replaces the program region with its own code (the
    // "malware"), keeps a pristine copy of the words it destroyed, and
    // redirects checksum reads into that copy.
    const auto attack = size_attack(profile.swat, profile.layout, copy_addr);
    const auto words =
        cpu::assemble(swat::generate_swat_source(profile.swat, profile.layout,
                                                 attack))
            .words;
    for (std::size_t i = 0; i < attack.protected_words; ++i) {
      memory_[copy_addr + i] = record_.enrolled_image[i];
    }
    for (std::size_t i = 0; i < words.size(); ++i) memory_[i] = words[i];
  }
}

CpuProver::Outcome CpuProver::respond(const AttestationRequest& request) {
  const auto& profile = record_.profile;
  cpu::Machine machine(memory_.size());
  machine.load(memory_, 0);
  machine.set_clock_mhz(clock_mhz_);
  machine.set_mem(profile.layout.seed_addr, seed_from_nonce(request.nonce));

  DevicePufPort port(*device_, variation::Environment::nominal(), rng_);
  machine.attach_puf(&port);

  const auto run = machine.run(10'000'000'000ULL);
  if (!run.halted) throw std::runtime_error("prover program did not halt");

  Outcome outcome;
  outcome.cycles = run.cycles;
  outcome.compute_us = machine.wall_time_us(run.cycles);
  for (unsigned i = 0; i < 8; ++i) {
    outcome.response.checksum[i] = machine.mem(profile.layout.result_addr + i);
  }
  const std::uint32_t helper_end = machine.mem(profile.layout.helper_ptr_addr);
  for (std::uint32_t a = profile.layout.helper_addr; a < helper_end; ++a) {
    outcome.response.helper_words.push_back(machine.mem(a));
  }
  return outcome;
}

ProxyOutcome proxy_attack(const alupuf::PufDevice& victim,
                          const EnrollmentRecord& record,
                          const AttestationRequest& request,
                          const ProxyAttackParams& params,
                          support::Xoshiro256pp& rng) {
  // The accomplice computes the checksum natively (it is a fast machine and
  // knows the enrolled image), but every PUF call is a round trip to the
  // victim: 8 challenges out (64 B), z + helper words back (36 B).
  ProxyOutcome outcome;
  std::vector<std::uint32_t> transcript;
  const auto query = device_query(victim, variation::Environment::nominal(),
                                  rng, transcript);
  const auto result =
      swat::compute_checksum(record.enrolled_image,
                             seed_from_nonce(request.nonce),
                             record.profile.swat, query);
  outcome.response.checksum = result.state;
  outcome.response.helper_words = std::move(transcript);
  outcome.oracle_calls = result.puf_calls;

  const Channel oracle(params.oracle_channel);
  const double compute_us =
      static_cast<double>(record.honest_cycles) /
      (record.profile.base_clock_mhz * params.accomplice_speedup);
  outcome.elapsed_us =
      compute_us + static_cast<double>(result.puf_calls) *
                       oracle.round_trip_us(64, 36);
  return outcome;
}

}  // namespace pufatt::core
