#include "core/serialize.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace pufatt::core {

namespace {

constexpr std::uint32_t kMagic = 0x50554154;  // "PUAT"
constexpr std::uint32_t kVersion = 1;
// Sanity bound on record vector lengths: the biggest honest array is a
// firmware image of a few thousand words, so 4M elements is already generous.
// The check fires on the *declared* length, before the allocation it sizes.
constexpr std::size_t kMaxVectorLen = 1u << 22;

void write_u32(std::ostream& out, std::uint32_t v) {
  unsigned char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(bytes), 4);
}

void write_u64(std::ostream& out, std::uint64_t v) {
  write_u32(out, static_cast<std::uint32_t>(v));
  write_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void write_f64(std::ostream& out, double v) {
  static_assert(sizeof(double) == 8);
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  write_u64(out, bits);
}

void write_f64_vector(std::ostream& out, const std::vector<double>& v) {
  write_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const auto x : v) write_f64(out, x);
}

void write_u32_vector(std::ostream& out, const std::vector<std::uint32_t>& v) {
  write_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const auto x : v) write_u32(out, x);
}

std::uint32_t read_u32(std::istream& in) {
  unsigned char bytes[4];
  in.read(reinterpret_cast<char*>(bytes), 4);
  if (!in) throw SerializationError("unexpected end of input");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
  return v;
}

std::uint64_t read_u64(std::istream& in) {
  const std::uint64_t lo = read_u32(in);
  const std::uint64_t hi = read_u32(in);
  return lo | (hi << 32);
}

double read_f64(std::istream& in) {
  const std::uint64_t bits = read_u64(in);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::vector<double> read_f64_vector(std::istream& in) {
  const std::uint32_t n = read_u32(in);
  if (n > kMaxVectorLen) throw SerializationError("vector too large");
  std::vector<double> v(n);
  for (auto& x : v) x = read_f64(in);
  return v;
}

std::vector<std::uint32_t> read_u32_vector(std::istream& in) {
  const std::uint32_t n = read_u32(in);
  if (n > kMaxVectorLen) throw SerializationError("vector too large");
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) x = read_u32(in);
  return v;
}

void write_tech(std::ostream& out, const variation::TechnologyParams& t) {
  for (const double v :
       {t.vdd_nominal_v, t.vth_nominal_v, t.vth_sigma_ratio, t.alpha,
        t.temp_nominal_c, t.vth_temp_coeff, t.vth_temp_coeff_sigma,
        t.mobility_exp, t.wire_fraction_mean, t.wire_fraction_sigma,
        t.wire_temp_coeff, t.rise_fall_asym_sigma, t.design_asym_sigma}) {
    write_f64(out, v);
  }
}

variation::TechnologyParams read_tech(std::istream& in) {
  variation::TechnologyParams t;
  t.vdd_nominal_v = read_f64(in);
  t.vth_nominal_v = read_f64(in);
  t.vth_sigma_ratio = read_f64(in);
  t.alpha = read_f64(in);
  t.temp_nominal_c = read_f64(in);
  t.vth_temp_coeff = read_f64(in);
  t.vth_temp_coeff_sigma = read_f64(in);
  t.mobility_exp = read_f64(in);
  t.wire_fraction_mean = read_f64(in);
  t.wire_fraction_sigma = read_f64(in);
  t.wire_temp_coeff = read_f64(in);
  t.rise_fall_asym_sigma = read_f64(in);
  t.design_asym_sigma = read_f64(in);
  return t;
}

}  // namespace

void save_record(std::ostream& out, const EnrollmentRecord& record) {
  write_u32(out, kMagic);
  write_u32(out, kVersion);

  // Profile.
  const auto& p = record.profile;
  write_u32(out, static_cast<std::uint32_t>(p.puf_config.width));
  write_tech(out, p.puf_config.tech);
  write_f64(out, p.puf_config.noise.delay_jitter_ratio);
  write_f64(out, p.puf_config.arbiter.meta_tau_ps);
  write_u32(out, p.swat.rounds);
  write_u32(out, p.swat.puf_interval);
  write_u32(out, p.swat.attest_words);
  write_u32(out, p.layout.seed_addr);
  write_u32(out, p.layout.result_addr);
  write_u32(out, p.layout.helper_ptr_addr);
  write_u32(out, p.layout.helper_addr);
  write_f64(out, p.base_clock_mhz);
  write_f64(out, p.clock_margin);
  write_f64(out, p.register_setup_ps);

  // Model H.
  write_tech(out, record.model.tech);
  write_f64_vector(out, record.model.intrinsic_ps);
  write_f64_vector(out, record.model.wire_ps);
  write_f64_vector(out, record.model.vth_v);
  write_f64_vector(out, record.model.vth_tempco);
  write_f64_vector(out, record.model.rise_factor);
  write_f64_vector(out, record.model.fall_factor);

  // Image + timing.
  write_u32_vector(out, record.enrolled_image);
  write_u64(out, record.honest_cycles);
}

EnrollmentRecord load_record(std::istream& in) {
  if (read_u32(in) != kMagic) {
    throw SerializationError("bad magic (not an enrollment record)");
  }
  if (read_u32(in) != kVersion) {
    throw SerializationError("unsupported enrollment record version");
  }
  EnrollmentRecord record;
  auto& p = record.profile;
  p.puf_config.width = read_u32(in);
  p.puf_config.tech = read_tech(in);
  p.puf_config.noise.delay_jitter_ratio = read_f64(in);
  p.puf_config.arbiter.meta_tau_ps = read_f64(in);
  p.swat.rounds = read_u32(in);
  p.swat.puf_interval = read_u32(in);
  p.swat.attest_words = read_u32(in);
  p.layout.seed_addr = read_u32(in);
  p.layout.result_addr = read_u32(in);
  p.layout.helper_ptr_addr = read_u32(in);
  p.layout.helper_addr = read_u32(in);
  p.base_clock_mhz = read_f64(in);
  p.clock_margin = read_f64(in);
  p.register_setup_ps = read_f64(in);

  record.model.tech = read_tech(in);
  record.model.intrinsic_ps = read_f64_vector(in);
  record.model.wire_ps = read_f64_vector(in);
  record.model.vth_v = read_f64_vector(in);
  record.model.vth_tempco = read_f64_vector(in);
  record.model.rise_factor = read_f64_vector(in);
  record.model.fall_factor = read_f64_vector(in);

  const std::size_t gates = record.model.intrinsic_ps.size();
  if (record.model.wire_ps.size() != gates ||
      record.model.vth_v.size() != gates ||
      record.model.vth_tempco.size() != gates ||
      record.model.rise_factor.size() != gates ||
      record.model.fall_factor.size() != gates) {
    throw SerializationError("delay table arrays have inconsistent sizes");
  }

  record.enrolled_image = read_u32_vector(in);
  record.honest_cycles = read_u64(in);
  if (record.enrolled_image.size() != record.profile.swat.attest_words) {
    throw SerializationError("image size does not match the attested region");
  }
  return record;
}

namespace {

constexpr std::uint32_t kRequestMagic = 0x50415251;   // "PARQ"
constexpr std::uint32_t kResponseMagic = 0x50415253;  // "PARS"

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t peek_u32(const std::uint8_t* data, std::size_t offset) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data[offset + i]) << (8 * i);
  }
  return v;
}

void append_crc(std::vector<std::uint8_t>& out) {
  append_u32(out, crc32(out.data(), out.size()));
}

/// Validates the trailing CRC over everything before it.
void check_crc(const std::uint8_t* data, std::size_t size) {
  const std::uint32_t stored = peek_u32(data, size - 4);
  if (crc32(data, size - 4) != stored) {
    throw SerializationError("frame CRC mismatch (corrupted in transit)");
  }
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> serialize_request(const AttestationRequest& request) {
  std::vector<std::uint8_t> out;
  out.reserve(16);
  append_u32(out, kRequestMagic);
  append_u32(out, static_cast<std::uint32_t>(request.nonce));
  append_u32(out, static_cast<std::uint32_t>(request.nonce >> 32));
  append_crc(out);
  return out;
}

AttestationRequest deserialize_request(const std::uint8_t* data,
                                       std::size_t size) {
  if (size > kMaxWireFrameBytes) {
    throw SerializationError("frame exceeds wire limit");
  }
  if (size != 16) throw SerializationError("request frame has wrong size");
  if (peek_u32(data, 0) != kRequestMagic) {
    throw SerializationError("bad request magic");
  }
  check_crc(data, size);
  AttestationRequest request;
  request.nonce = static_cast<std::uint64_t>(peek_u32(data, 4)) |
                  (static_cast<std::uint64_t>(peek_u32(data, 8)) << 32);
  return request;
}

std::vector<std::uint8_t> serialize_response(
    const AttestationResponse& response) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + 4 * (8 + response.helper_words.size()) + 4);
  append_u32(out, kResponseMagic);
  append_u32(out, static_cast<std::uint32_t>(response.helper_words.size()));
  for (const auto word : response.checksum) append_u32(out, word);
  for (const auto word : response.helper_words) append_u32(out, word);
  append_crc(out);
  return out;
}

AttestationResponse deserialize_response(const std::uint8_t* data,
                                         std::size_t size) {
  constexpr std::size_t kHeaderBytes = 4 + 4 + 8 * 4;  // magic, count, checksum
  if (size > kMaxWireFrameBytes) {
    throw SerializationError("frame exceeds wire limit");
  }
  if (size < kHeaderBytes + 4) {
    throw SerializationError("response frame truncated");
  }
  if (peek_u32(data, 0) != kResponseMagic) {
    throw SerializationError("bad response magic");
  }
  const std::uint32_t helper_count = peek_u32(data, 4);
  if (helper_count > kMaxWireHelperWords) {
    throw SerializationError("helper transcript exceeds wire limit");
  }
  if (helper_count % 8 != 0) {
    throw SerializationError("helper count is not a multiple of 8");
  }
  const std::size_t expected =
      kHeaderBytes + static_cast<std::size_t>(helper_count) * 4 + 4;
  if (size != expected) {
    throw SerializationError(size < expected
                                 ? "response frame truncated"
                                 : "response frame has trailing bytes");
  }
  check_crc(data, size);
  AttestationResponse response;
  for (unsigned i = 0; i < 8; ++i) {
    response.checksum[i] = peek_u32(data, 8 + 4 * i);
  }
  response.helper_words.resize(helper_count);
  for (std::uint32_t i = 0; i < helper_count; ++i) {
    response.helper_words[i] = peek_u32(data, kHeaderBytes + 4 * i);
  }
  return response;
}

void save_record_file(const std::string& path, const EnrollmentRecord& record) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw SerializationError("cannot open file for writing: " + path);
  save_record(out, record);
  if (!out) throw SerializationError("write failed: " + path);
}

EnrollmentRecord load_record_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializationError("cannot open file: " + path);
  return load_record(in);
}

}  // namespace pufatt::core
