#include "core/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace pufatt::core {

namespace {

constexpr std::uint32_t kMagic = 0x50554154;  // "PUAT"
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kMaxVectorLen = 1u << 24;  // sanity bound on inputs

void write_u32(std::ostream& out, std::uint32_t v) {
  unsigned char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(bytes), 4);
}

void write_u64(std::ostream& out, std::uint64_t v) {
  write_u32(out, static_cast<std::uint32_t>(v));
  write_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void write_f64(std::ostream& out, double v) {
  static_assert(sizeof(double) == 8);
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  write_u64(out, bits);
}

void write_f64_vector(std::ostream& out, const std::vector<double>& v) {
  write_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const auto x : v) write_f64(out, x);
}

void write_u32_vector(std::ostream& out, const std::vector<std::uint32_t>& v) {
  write_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const auto x : v) write_u32(out, x);
}

std::uint32_t read_u32(std::istream& in) {
  unsigned char bytes[4];
  in.read(reinterpret_cast<char*>(bytes), 4);
  if (!in) throw SerializationError("unexpected end of input");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
  return v;
}

std::uint64_t read_u64(std::istream& in) {
  const std::uint64_t lo = read_u32(in);
  const std::uint64_t hi = read_u32(in);
  return lo | (hi << 32);
}

double read_f64(std::istream& in) {
  const std::uint64_t bits = read_u64(in);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::vector<double> read_f64_vector(std::istream& in) {
  const std::uint32_t n = read_u32(in);
  if (n > kMaxVectorLen) throw SerializationError("vector too large");
  std::vector<double> v(n);
  for (auto& x : v) x = read_f64(in);
  return v;
}

std::vector<std::uint32_t> read_u32_vector(std::istream& in) {
  const std::uint32_t n = read_u32(in);
  if (n > kMaxVectorLen) throw SerializationError("vector too large");
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) x = read_u32(in);
  return v;
}

void write_tech(std::ostream& out, const variation::TechnologyParams& t) {
  for (const double v :
       {t.vdd_nominal_v, t.vth_nominal_v, t.vth_sigma_ratio, t.alpha,
        t.temp_nominal_c, t.vth_temp_coeff, t.vth_temp_coeff_sigma,
        t.mobility_exp, t.wire_fraction_mean, t.wire_fraction_sigma,
        t.wire_temp_coeff, t.rise_fall_asym_sigma, t.design_asym_sigma}) {
    write_f64(out, v);
  }
}

variation::TechnologyParams read_tech(std::istream& in) {
  variation::TechnologyParams t;
  t.vdd_nominal_v = read_f64(in);
  t.vth_nominal_v = read_f64(in);
  t.vth_sigma_ratio = read_f64(in);
  t.alpha = read_f64(in);
  t.temp_nominal_c = read_f64(in);
  t.vth_temp_coeff = read_f64(in);
  t.vth_temp_coeff_sigma = read_f64(in);
  t.mobility_exp = read_f64(in);
  t.wire_fraction_mean = read_f64(in);
  t.wire_fraction_sigma = read_f64(in);
  t.wire_temp_coeff = read_f64(in);
  t.rise_fall_asym_sigma = read_f64(in);
  t.design_asym_sigma = read_f64(in);
  return t;
}

}  // namespace

void save_record(std::ostream& out, const EnrollmentRecord& record) {
  write_u32(out, kMagic);
  write_u32(out, kVersion);

  // Profile.
  const auto& p = record.profile;
  write_u32(out, static_cast<std::uint32_t>(p.puf_config.width));
  write_tech(out, p.puf_config.tech);
  write_f64(out, p.puf_config.noise.delay_jitter_ratio);
  write_f64(out, p.puf_config.arbiter.meta_tau_ps);
  write_u32(out, p.swat.rounds);
  write_u32(out, p.swat.puf_interval);
  write_u32(out, p.swat.attest_words);
  write_u32(out, p.layout.seed_addr);
  write_u32(out, p.layout.result_addr);
  write_u32(out, p.layout.helper_ptr_addr);
  write_u32(out, p.layout.helper_addr);
  write_f64(out, p.base_clock_mhz);
  write_f64(out, p.clock_margin);
  write_f64(out, p.register_setup_ps);

  // Model H.
  write_tech(out, record.model.tech);
  write_f64_vector(out, record.model.intrinsic_ps);
  write_f64_vector(out, record.model.wire_ps);
  write_f64_vector(out, record.model.vth_v);
  write_f64_vector(out, record.model.vth_tempco);
  write_f64_vector(out, record.model.rise_factor);
  write_f64_vector(out, record.model.fall_factor);

  // Image + timing.
  write_u32_vector(out, record.enrolled_image);
  write_u64(out, record.honest_cycles);
}

EnrollmentRecord load_record(std::istream& in) {
  if (read_u32(in) != kMagic) {
    throw SerializationError("bad magic (not an enrollment record)");
  }
  if (read_u32(in) != kVersion) {
    throw SerializationError("unsupported enrollment record version");
  }
  EnrollmentRecord record;
  auto& p = record.profile;
  p.puf_config.width = read_u32(in);
  p.puf_config.tech = read_tech(in);
  p.puf_config.noise.delay_jitter_ratio = read_f64(in);
  p.puf_config.arbiter.meta_tau_ps = read_f64(in);
  p.swat.rounds = read_u32(in);
  p.swat.puf_interval = read_u32(in);
  p.swat.attest_words = read_u32(in);
  p.layout.seed_addr = read_u32(in);
  p.layout.result_addr = read_u32(in);
  p.layout.helper_ptr_addr = read_u32(in);
  p.layout.helper_addr = read_u32(in);
  p.base_clock_mhz = read_f64(in);
  p.clock_margin = read_f64(in);
  p.register_setup_ps = read_f64(in);

  record.model.tech = read_tech(in);
  record.model.intrinsic_ps = read_f64_vector(in);
  record.model.wire_ps = read_f64_vector(in);
  record.model.vth_v = read_f64_vector(in);
  record.model.vth_tempco = read_f64_vector(in);
  record.model.rise_factor = read_f64_vector(in);
  record.model.fall_factor = read_f64_vector(in);

  const std::size_t gates = record.model.intrinsic_ps.size();
  if (record.model.wire_ps.size() != gates ||
      record.model.vth_v.size() != gates ||
      record.model.vth_tempco.size() != gates ||
      record.model.rise_factor.size() != gates ||
      record.model.fall_factor.size() != gates) {
    throw SerializationError("delay table arrays have inconsistent sizes");
  }

  record.enrolled_image = read_u32_vector(in);
  record.honest_cycles = read_u64(in);
  if (record.enrolled_image.size() != record.profile.swat.attest_words) {
    throw SerializationError("image size does not match the attested region");
  }
  return record;
}

void save_record_file(const std::string& path, const EnrollmentRecord& record) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw SerializationError("cannot open file for writing: " + path);
  save_record(out, record);
  if (!out) throw SerializationError("write failed: " + path);
}

EnrollmentRecord load_record_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializationError("cannot open file: " + path);
  return load_record(in);
}

}  // namespace pufatt::core
