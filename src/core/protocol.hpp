// The PUFatt remote attestation protocol (paper Section 3, Figure 2).
//
//   Verifier                                   Prover
//   --------                                   ------
//   nonce (x0, r0) ------------------------->  runs SWAT entangled with
//                                              PUF(); collects helper data
//   <------------- r (checksum state), helper transcript
//   checks elapsed <= delta  AND  r == recompute via PUF.Emulate()
//
// Provers come in several flavours: the honest device, the memory-
// redirection malware hider, the overclocker, and the analytic proxy
// (oracle) adversary — one per attack the paper's Section 4.2 analyses.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "alupuf/pipeline.hpp"
#include "core/channel.hpp"
#include "core/enrollment.hpp"
#include "cpu/machine.hpp"
#include "ecc/linear_code.hpp"
#include "support/rng.hpp"

namespace pufatt::core {

struct AttestationRequest {
  std::uint64_t nonce = 0;  ///< carries both x0 and r0 of the paper
};

/// Folds the 64-bit nonce into the 32-bit SWAT seed (never zero).
std::uint32_t seed_from_nonce(std::uint64_t nonce);

struct AttestationResponse {
  std::array<std::uint32_t, 8> checksum{};
  std::vector<std::uint32_t> helper_words;  ///< 8 per PUF call, in order

  /// Payload size on the wire (checksum + helper transcript).
  std::size_t wire_bytes() const {
    return checksum.size() * 4 + helper_words.size() * 4;
  }
};

enum class VerifyStatus {
  kAccepted,
  kTimeExceeded,
  kChecksumMismatch,
  kPufReconstructionFailed,
};

const char* to_string(VerifyStatus status);

struct VerifyResult {
  VerifyStatus status = VerifyStatus::kChecksumMismatch;
  double elapsed_us = 0.0;
  double deadline_us = 0.0;
  bool accepted() const { return status == VerifyStatus::kAccepted; }
};

class Verifier {
 public:
  /// `code` must outlive the verifier (RM(1,5) for the 32-bit protocol).
  /// `slack` is the tolerance on the honest compute time; the channel
  /// budget for the two protocol messages is added on top.
  Verifier(EnrollmentRecord record, const ecc::BinaryCode& code,
           const ChannelParams& channel = {}, double slack = 0.03);

  /// Whole-transcript budget on the average reliability-weighted
  /// reconstruction distance per PUF call (ps).  Summing over all calls
  /// makes the statistic ~sqrt(calls) more sensitive than the per-call
  /// threshold, closing the marginal-overclock window (see DESIGN.md).
  void set_max_avg_weighted_ps(double v) { max_avg_weighted_ps_ = v; }

  AttestationRequest make_request(support::Xoshiro256pp& rng) const;

  /// Total time bound delta (compute + channel), microseconds.
  double deadline_us(const AttestationResponse& response) const;

  /// Verifies a response measured at `elapsed_us` (prover compute time plus
  /// channel time, as seen by the verifier's clock).
  VerifyResult verify(const AttestationRequest& request,
                      const AttestationResponse& response,
                      double elapsed_us) const;

  const EnrollmentRecord& record() const { return record_; }

 private:
  EnrollmentRecord record_;
  alupuf::PufEmulator emulator_;
  Channel channel_;
  double slack_;
  double max_avg_weighted_ps_ = 36.0;
};

/// A prover running the real PR32 machine with an attached physical PUF.
class CpuProver {
 public:
  enum class Variant {
    kHonest,           ///< enrolled image, honest program
    kRedirectMalware,  ///< tampered image + pristine copy + redirection
  };

  /// `device` must outlive the prover.  `clock_mhz` defaults to the
  /// profile's base clock; raising it models the overclocking attack.
  CpuProver(const alupuf::PufDevice& device, const EnrollmentRecord& record,
            Variant variant, std::uint64_t rng_seed,
            std::optional<double> clock_mhz = std::nullopt);

  struct Outcome {
    AttestationResponse response;
    std::uint64_t cycles = 0;
    double compute_us = 0.0;  ///< cycles at the prover's actual clock
  };

  Outcome respond(const AttestationRequest& request);

  double clock_mhz() const { return clock_mhz_; }

 private:
  const alupuf::PufDevice* device_;
  EnrollmentRecord record_;
  Variant variant_;
  support::Xoshiro256pp rng_;
  double clock_mhz_;
  std::vector<std::uint32_t> memory_;  ///< full prover memory image
};

/// The proxy (oracle) adversary of Section 4.2: a powerful remote machine
/// computes the checksum but must query the victim device's PUF over the
/// constrained channel for every PUF call.
struct ProxyAttackParams {
  double accomplice_speedup = 10.0;  ///< relative to the honest prover CPU
  ChannelParams oracle_channel;      ///< victim <-> accomplice link
};

struct ProxyOutcome {
  AttestationResponse response;
  double elapsed_us = 0.0;
  std::size_t oracle_calls = 0;
};

ProxyOutcome proxy_attack(const alupuf::PufDevice& victim,
                          const EnrollmentRecord& record,
                          const AttestationRequest& request,
                          const ProxyAttackParams& params,
                          support::Xoshiro256pp& rng);

}  // namespace pufatt::core
