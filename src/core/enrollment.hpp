// Manufacturer-side enrollment.
//
// At manufacturing time the trusted party (a) extracts the gate-level delay
// table H through the protected test interface (paper Section 2: "only
// accessible by a trusted entity ... permanently disabled by fuses"),
// (b) fixes the software image the device ships with, and (c) measures the
// honest cycle count the verifier will enforce as the time bound.
#pragma once

#include <cstdint>
#include <vector>

#include "alupuf/pipeline.hpp"
#include "swat/checksum.hpp"
#include "swat/program.hpp"
#include "variation/chip.hpp"

namespace pufatt::core {

/// Everything that defines one deployed device model (same for a whole
/// product line; the per-chip part is the delay table).
struct DeviceProfile {
  alupuf::AluPufConfig puf_config;  ///< width must be 32 for the protocol
  swat::SwatParams swat;
  swat::SwatLayout layout;
  /// Filled in per chip by enroll(): the paper's overclocking defence
  /// requires T_ALU + T_set < T_base with *minimal* headroom, so the
  /// manufacturer measures the die's worst-case ALU settle time and sets
  /// the clock just above it ("it is crucial to carefully set the clock
  /// frequency used for attestation").
  double base_clock_mhz = 860.0;
  /// Relative clock-period headroom above T_ALU + T_set (covers evaluation
  /// jitter; any overclock beyond it corrupts PUF responses).
  double clock_margin = 0.06;
  double register_setup_ps = 20.0;

  static DeviceProfile standard();
};

/// The verifier's per-device knowledge.
struct EnrollmentRecord {
  DeviceProfile profile;
  variation::DelayTable model;              ///< emulation model H
  std::vector<std::uint32_t> enrolled_image;  ///< attested memory content
  std::uint64_t honest_cycles = 0;          ///< honest SWAT cycle count
};

/// Builds the enrolled memory image: the honest SWAT program at address 0
/// followed by the device's data/firmware payload, padded/truncated to the
/// attested size.  Throws if the program does not fit.
std::vector<std::uint32_t> make_enrolled_image(
    const DeviceProfile& profile, const std::vector<std::uint32_t>& payload);

/// Performs enrollment for one manufactured device.
EnrollmentRecord enroll(const alupuf::PufDevice& device,
                        const DeviceProfile& profile,
                        std::vector<std::uint32_t> enrolled_image);

}  // namespace pufatt::core
