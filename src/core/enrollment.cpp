#include "core/enrollment.hpp"

#include <stdexcept>

#include "cpu/assembler.hpp"

namespace pufatt::core {

DeviceProfile DeviceProfile::standard() {
  DeviceProfile profile;
  profile.puf_config.width = 32;
  profile.swat.rounds = 2048;
  profile.swat.puf_interval = 64;
  profile.swat.attest_words = 4096;
  profile.layout = swat::SwatLayout::standard(profile.swat);
  return profile;
}

std::vector<std::uint32_t> make_enrolled_image(
    const DeviceProfile& profile, const std::vector<std::uint32_t>& payload) {
  const auto program =
      cpu::assemble(swat::generate_swat_source(profile.swat, profile.layout))
          .words;
  if (program.size() > profile.swat.attest_words) {
    throw std::invalid_argument("SWAT program exceeds the attested region");
  }
  std::vector<std::uint32_t> image(profile.swat.attest_words, 0);
  for (std::size_t i = 0; i < program.size(); ++i) image[i] = program[i];
  const std::size_t payload_space = image.size() - program.size();
  for (std::size_t i = 0; i < payload.size() && i < payload_space; ++i) {
    image[program.size() + i] = payload[i];
  }
  return image;
}

EnrollmentRecord enroll(const alupuf::PufDevice& device,
                        const DeviceProfile& profile,
                        std::vector<std::uint32_t> enrolled_image) {
  if (enrolled_image.size() != profile.swat.attest_words) {
    throw std::invalid_argument("enroll: image size != attested region");
  }
  EnrollmentRecord record;
  record.profile = profile;
  // Tight per-die clock: T_cycle = (T_ALU + T_set) * (1 + margin).  The
  // manufacturer measures this chip's worst-case carry-chain settle; any
  // overclock that would hide checksum overhead then violates the capture
  // deadline and corrupts PUF responses.
  const double t_alu_ps =
      device.raw_puf().max_settle_ps(variation::Environment::nominal());
  const double cycle_ps = (t_alu_ps + profile.register_setup_ps) *
                          (1.0 + profile.clock_margin);
  record.profile.base_clock_mhz = 1e6 / cycle_ps;
  record.model = device.export_model();
  record.enrolled_image = std::move(enrolled_image);
  record.honest_cycles = swat::honest_cycle_estimate(profile.swat);
  return record;
}

}  // namespace pufatt::core
